// Heterogeneous-platform tuning: compares the same training job across
// platform configurations (GPU vs FPGA accelerators, counts, feature
// flags) — the workflow a systems engineer uses to choose a deployment.
//
//   $ ./example_heterogeneous_tuning
//
// Exercises: both platform factories, the Fig.-11 feature flags, the
// performance model for what-if analysis without running anything.
#include <cstdio>
#include <vector>

#include "core/hyscale.hpp"

using namespace hyscale;

namespace {

Seconds measure(const Dataset& dataset, const PlatformSpec& platform, bool hybrid, bool drm,
                PipelineMode mode) {
  HybridTrainerConfig config;
  config.model_kind = GnnKind::kSage;
  config.fanouts = {25, 10};
  config.hybrid = hybrid;
  config.drm = drm;
  config.pipeline = mode;
  config.real_compute = false;  // timing study only
  HybridTrainer trainer(dataset, platform, config);
  trainer.train_epoch();  // let DRM settle
  return trainer.train_epoch().epoch_time;
}

}  // namespace

int main() {
  MaterializeOptions options;
  options.target_vertices = 1 << 11;
  options.label_signal = false;
  const Dataset dataset = materialize_dataset("ogbn-products", options);

  std::printf("GraphSAGE on ogbn-products (paper-scale timing simulation)\n\n");
  std::printf("%-34s  %s\n", "configuration", "epoch time (s)");

  struct Config {
    const char* label;
    PlatformSpec platform;
    bool hybrid, drm;
    PipelineMode mode;
  };
  const std::vector<Config> configs = {
      {"4x GPU, offload only", cpu_gpu_platform(4), false, false, PipelineMode::kSequential},
      {"4x GPU, hybrid+DRM+TFP", cpu_gpu_platform(4), true, true,
       PipelineMode::kTwoStagePrefetch},
      {"4x FPGA, offload only", cpu_fpga_platform(4), false, false, PipelineMode::kSequential},
      {"4x FPGA, hybrid+DRM+TFP", cpu_fpga_platform(4), true, true,
       PipelineMode::kTwoStagePrefetch},
      {"8x FPGA, hybrid+DRM+TFP", cpu_fpga_platform(8), true, true,
       PipelineMode::kTwoStagePrefetch},
  };
  for (const Config& c : configs) {
    std::printf("%-34s  %.3f\n", c.label, measure(dataset, c.platform, c.hybrid, c.drm, c.mode));
  }

  // What-if analysis with the pure performance model (no simulation):
  std::printf("\nWhat-if (Section V model, no execution): FPGA count sweep\n");
  ModelConfig model;
  model.kind = GnnKind::kSage;
  model.dims = {dataset.info.f0, dataset.info.f1, dataset.info.f2};
  for (int k : {1, 2, 4, 8, 16}) {
    PerformanceModel pm(cpu_fpga_platform(k), model, dataset.info, {25, 10});
    const WorkloadAssignment w = initial_task_mapping(pm);
    std::printf("  %2d FPGAs: predicted epoch %.3f s, throughput %.0f MTEPS\n", k,
                pm.predict_epoch(w, PipelineMode::kTwoStagePrefetch),
                pm.throughput_mteps(w, PipelineMode::kTwoStagePrefetch));
  }
  return 0;
}
