// hyscale_cli — command-line driver for the library, the binary a
// downstream user actually runs.
//
// Training (default mode):
//   $ ./example_hyscale_cli --dataset ogbn-products --model sage \
//        --platform fpga --accels 4 --epochs 3 --fanouts 25,10 \
//        [--no-hybrid] [--no-drm] [--no-tfp] [--int8] [--trace out.json]
//
// Online inference serving (train briefly or load a checkpoint, then
// run a closed-loop load-generator session against the server):
//   $ ./example_hyscale_cli serve --dataset ogbn-products --workers 4 \
//        --clients 8 --requests 64 --fanouts 10,5 --cache-rows 512 \
//        [--checkpoint ckpt.bin] [--save-checkpoint ckpt.bin]
//
// Live serving over an evolving graph (concurrent update stream with a
// configurable insert/delete/update mix + query load against the
// streaming subsystem; background annihilate-then-fold compaction, an
// SLO publisher bounding staleness, and optional TTL eviction):
//   $ ./example_hyscale_cli stream --dataset ogbn-products --workers 4 \
//        --clients 8 --requests 64 --updates 512 \
//        [--delete-frac 0.3] [--vertex-delete-frac 0.05] \
//        [--delete-recent-frac 0.7] [--update-threads 2] \
//        [--compact-edges N] [--compact-ratio R] [--no-annihilate] \
//        [--slo-ms 5] [--ttl-ms 50] [--sweep-ms 10] [--publish-every N]
//
// Prints per-epoch reports (train), p50/p99 latency, QPS, batch-size
// and cache statistics (serve), plus ingest rate, publish lag and
// queue-wait/compute split (stream).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/strutil.hpp"
#include "core/hyscale.hpp"

using namespace hyscale;

namespace {

struct CliOptions {
  std::string dataset = "ogbn-products";
  std::string model = "sage";
  std::string platform = "fpga";
  int accels = 4;
  int epochs = 2;
  std::vector<int> fanouts = {25, 10};
  bool hybrid = true;
  bool drm = true;
  bool tfp = true;
  bool int8 = false;
  std::string trace_path;
  VertexId scale = 1 << 11;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--dataset NAME] [--model gcn|sage|gat] [--platform gpu|fpga]\n"
      "          [--accels K] [--epochs N] [--fanouts a,b,...] [--scale V]\n"
      "          [--no-hybrid] [--no-drm] [--no-tfp] [--int8] [--trace FILE]\n",
      argv0);
}

bool parse_args(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--dataset") {
      const char* v = next();
      if (!v) return false;
      options.dataset = v;
    } else if (arg == "--model") {
      const char* v = next();
      if (!v) return false;
      options.model = v;
    } else if (arg == "--platform") {
      const char* v = next();
      if (!v) return false;
      options.platform = v;
    } else if (arg == "--accels") {
      const char* v = next();
      if (!v) return false;
      options.accels = std::atoi(v);
    } else if (arg == "--epochs") {
      const char* v = next();
      if (!v) return false;
      options.epochs = std::atoi(v);
    } else if (arg == "--scale") {
      const char* v = next();
      if (!v) return false;
      options.scale = std::atoll(v);
    } else if (arg == "--fanouts") {
      const char* v = next();
      if (!v) return false;
      options.fanouts.clear();
      for (const std::string& tok : split(v, ',')) {
        options.fanouts.push_back(std::atoi(tok.c_str()));
      }
    } else if (arg == "--no-hybrid") {
      options.hybrid = false;
    } else if (arg == "--no-drm") {
      options.drm = false;
    } else if (arg == "--no-tfp") {
      options.tfp = false;
    } else if (arg == "--int8") {
      options.int8 = true;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return false;
      options.trace_path = v;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// ------------------------------------------------------------- serve mode

struct ServeOptions {
  std::string dataset = "ogbn-products";
  std::string model = "sage";
  VertexId scale = 1 << 11;
  int train_epochs = 1;
  std::string checkpoint;       ///< load instead of relying on training
  std::string save_checkpoint;  ///< write trained weights before serving
  std::vector<int> fanouts = {10, 5};  ///< empty via --full: exact inference
  int workers = 4;
  std::int64_t cache_rows = 512;
  /// Device-row wire precision for the feature cache (and, in stream
  /// mode, the mutable store's host rows): fp32 or int8.
  TransferPrecision precision = TransferPrecision::kFp32;
  std::int64_t max_batch = 16;
  double max_wait_ms = 2.0;
  std::int64_t queue_cap = 1024;
  int clients = 8;
  int requests = 64;
  int seeds_per_request = 4;
  std::uint64_t seed = 1;
  std::string metrics_out;      ///< JSON-lines telemetry dump; "-" = stderr
  int metrics_interval_ms = 0;  ///< periodic exporter cadence; 0 = final dump only
  bool stage_trace = false;     ///< per-request / lifecycle stage tracing
  std::string flight_record_out;  ///< post-mortem JSON bundle; "-" = stderr

  bool telemetry_enabled() const {
    return !metrics_out.empty() || stage_trace || !flight_record_out.empty();
  }
};

void serve_usage(const char* argv0) {
  std::printf(
      "usage: %s serve [--dataset NAME] [--model gcn|sage|gat] [--scale V]\n"
      "          [--train-epochs N] [--checkpoint FILE] [--save-checkpoint FILE]\n"
      "          [--fanouts a,b,...|--full] [--workers K] [--cache-rows R]\n"
      "          [--precision fp32|int8] [--max-batch B] [--max-wait-ms MS] [--queue-cap Q]\n"
      "          [--clients C] [--requests N] [--seeds-per-request S] [--seed X]\n"
      "          [--metrics-out FILE|-] [--metrics-interval-ms MS] [--trace]\n"
      "          [--flight-record-out FILE|-]\n"
      "\n"
      "telemetry: --metrics-out dumps registry snapshots + lifecycle events as\n"
      "JSON lines (one final snapshot, or every --metrics-interval-ms; '-' =\n"
      "stderr); --trace also records per-request stage spans, summarized in the\n"
      "snapshot lines; --flight-record-out arms a liveness watchdog + flight\n"
      "recorder that dumps a post-mortem JSON bundle (metrics, journal tail,\n"
      "heartbeat ages, slowest-request traces) on a stall, an SLO breach, or\n"
      "teardown.\n",
      argv0);
}

// Probe an output path at parse time so a typo'd directory fails
// before minutes of load generation, not after.  "-" means stderr and
// the empty string means "unset"; both always pass.
bool probe_writable(const std::string& path, const char* flag) {
  if (path.empty() || path == "-") return true;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "%s: cannot open '%s' for writing\n", flag, path.c_str());
    return false;
  }
  std::fclose(f);
  return true;
}

bool parse_serve_args(int argc, char** argv, ServeOptions& options) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--dataset") {
      const char* v = next();
      if (!v) return false;
      options.dataset = v;
    } else if (arg == "--model") {
      const char* v = next();
      if (!v) return false;
      options.model = v;
    } else if (arg == "--scale") {
      const char* v = next();
      if (!v) return false;
      options.scale = std::atoll(v);
    } else if (arg == "--train-epochs") {
      const char* v = next();
      if (!v) return false;
      options.train_epochs = std::atoi(v);
    } else if (arg == "--checkpoint") {
      const char* v = next();
      if (!v) return false;
      options.checkpoint = v;
    } else if (arg == "--save-checkpoint") {
      const char* v = next();
      if (!v) return false;
      options.save_checkpoint = v;
    } else if (arg == "--fanouts") {
      const char* v = next();
      if (!v) return false;
      options.fanouts.clear();
      for (const std::string& tok : split(v, ',')) {
        options.fanouts.push_back(std::atoi(tok.c_str()));
      }
    } else if (arg == "--full") {
      options.fanouts.clear();
    } else if (arg == "--workers") {
      const char* v = next();
      if (!v) return false;
      options.workers = std::atoi(v);
    } else if (arg == "--cache-rows") {
      const char* v = next();
      if (!v) return false;
      options.cache_rows = std::atoll(v);
    } else if (arg == "--precision") {
      const char* v = next();
      if (!v) return false;
      if (std::string(v) == "fp32") {
        options.precision = TransferPrecision::kFp32;
      } else if (std::string(v) == "int8") {
        options.precision = TransferPrecision::kInt8;
      } else {
        std::fprintf(stderr, "--precision must be fp32 or int8 (got %s)\n", v);
        return false;
      }
    } else if (arg == "--max-batch") {
      const char* v = next();
      if (!v) return false;
      options.max_batch = std::atoll(v);
    } else if (arg == "--max-wait-ms") {
      const char* v = next();
      if (!v) return false;
      options.max_wait_ms = std::atof(v);
    } else if (arg == "--queue-cap") {
      const char* v = next();
      if (!v) return false;
      options.queue_cap = std::atoll(v);
    } else if (arg == "--clients") {
      const char* v = next();
      if (!v) return false;
      options.clients = std::atoi(v);
    } else if (arg == "--requests") {
      const char* v = next();
      if (!v) return false;
      options.requests = std::atoi(v);
    } else if (arg == "--seeds-per-request") {
      const char* v = next();
      if (!v) return false;
      options.seeds_per_request = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      options.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return false;
      options.metrics_out = v;
      if (!probe_writable(options.metrics_out, "--metrics-out")) return false;
    } else if (arg == "--metrics-interval-ms") {
      const char* v = next();
      if (!v) return false;
      options.metrics_interval_ms = std::atoi(v);
      // 0 is only meaningful as the default (final dump only); an
      // EXPLICIT non-positive cadence is a mistake, not a request.
      if (options.metrics_interval_ms <= 0) {
        std::fprintf(stderr, "--metrics-interval-ms must be a positive cadence (got %s)\n", v);
        return false;
      }
    } else if (arg == "--flight-record-out") {
      const char* v = next();
      if (!v) return false;
      options.flight_record_out = v;
      if (!probe_writable(options.flight_record_out, "--flight-record-out")) return false;
    } else if (arg == "--trace") {
      options.stage_trace = true;
    } else if (arg == "--help" || arg == "-h") {
      serve_usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// Telemetry stack for a CLI session: registry (+ stage tracer when
// --trace), the JSON-lines exporter when --metrics-out is given, and
// a flight recorder + liveness watchdog when --flight-record-out is.
// Declaration order is teardown order reversed: the watchdog stops
// sweeping first (no trips into a dying recorder), the recorder then
// writes its teardown bundle, the exporter its final snapshot, and
// only then does the registry go away; component callback gauges
// freeze on detach, so a dump after session teardown still reads
// their last values.
struct CliTelemetry {
  std::unique_ptr<Telemetry> telemetry;
  std::unique_ptr<TelemetryExporter> exporter;
  std::unique_ptr<FlightRecorder> flight;
  std::unique_ptr<Watchdog> watchdog;

  Telemetry* get() const { return telemetry.get(); }
};

CliTelemetry make_telemetry(const ServeOptions& options) {
  CliTelemetry out;
  if (!options.telemetry_enabled()) return out;
  TelemetryConfig config;
  config.tracing = options.stage_trace;
  out.telemetry = std::make_unique<Telemetry>(config);
  if (!options.metrics_out.empty()) {
    ExporterConfig exporter;
    exporter.path = options.metrics_out == "-" ? "" : options.metrics_out;
    exporter.interval_ms = options.metrics_interval_ms;
    out.exporter = std::make_unique<TelemetryExporter>(*out.telemetry, exporter);
  }
  if (!options.flight_record_out.empty()) {
    FlightRecorderConfig flight;
    flight.path = options.flight_record_out;
    out.flight = std::make_unique<FlightRecorder>(*out.telemetry, flight);
    out.watchdog = std::make_unique<Watchdog>(*out.telemetry);
  }
  return out;
}

void print_telemetry_summary(const CliTelemetry& telemetry, const ServeOptions& options) {
  if (!telemetry.telemetry) return;
  std::printf("telemetry:");
  if (options.stage_trace) {
    const StageTracer& tracer = telemetry.telemetry->tracer();
    std::printf(" %lld stage spans recorded (%lld dropped),",
                static_cast<long long>(tracer.recorded()),
                static_cast<long long>(tracer.dropped()));
  }
  if (!options.metrics_out.empty()) {
    std::printf(" JSON lines -> %s",
                options.metrics_out == "-" ? "stderr" : options.metrics_out.c_str());
  } else {
    std::printf(" metrics in-process only (pass --metrics-out to export)");
  }
  if (telemetry.watchdog) {
    std::printf(", watchdog %lld stalls", static_cast<long long>(telemetry.watchdog->stalls()));
  }
  if (telemetry.flight) {
    std::printf(", flight record -> %s (%lld dumps so far + teardown)",
                options.flight_record_out == "-" ? "stderr" : options.flight_record_out.c_str(),
                static_cast<long long>(telemetry.flight->dumps()));
  }
  std::printf("\n");
}

// ------------------------------------------------------------ stream mode

struct StreamOptions {
  ServeOptions serve;  ///< shared knobs (dataset, model, workers, batching…)
  std::int64_t updates = 512;
  int update_threads = 1;
  /// 0 (default): the SLO publisher paces visibility; > 0 restores the
  /// fixed every-N-ops cadence.
  std::int64_t publish_every = 0;
  double vertex_add_fraction = 0.05;
  double vertex_delete_fraction = 0.0;
  double feature_update_fraction = 0.10;
  double edge_delete_fraction = 0.0;
  double delete_recent_fraction = 0.0;
  EdgeId compact_edges = 1 << 15;
  double compact_ratio = 0.25;
  bool annihilate = true;    ///< in-place tombstone GC before full rebuilds
  double slo_ms = 5.0;       ///< staleness budget; <= 0 disables the publisher
  double ttl_ms = -1.0;      ///< idle budget for streamed-in entities; < 0 = no TTL
  double sweep_ms = 10.0;    ///< TTL sweep interval
  bool cache_rerank = true;  ///< hit-driven cache re-rank at each fold's REBASE
  int shards = 1;            ///< > 1 serves through the sharded stack
  std::string partitioner = "hash";  ///< base partition for the shards: hash | bfs
  std::int64_t rerank_rows = 0;      ///< traffic-triggered re-rank cadence (0 = fold-only)
};

void stream_usage(const char* argv0) {
  std::printf(
      "usage: %s stream [--dataset NAME] [--model gcn|sage|gat] [--scale V]\n"
      "          [--train-epochs N] [--fanouts a,b,...|--full] [--workers K]\n"
      "          [--cache-rows R] [--precision fp32|int8] [--cache-rerank on|off]\n"
      "          [--clients C] [--requests N] [--seed X]\n"
      "          [--updates U] [--update-threads T] [--publish-every P]\n"
      "          [--vertex-add-frac F] [--feature-update-frac F]\n"
      "          [--delete-frac F] [--vertex-delete-frac F] [--delete-recent-frac F]\n"
      "          [--compact-edges E] [--compact-ratio R] [--no-annihilate]\n"
      "          [--slo-ms MS] [--ttl-ms MS] [--sweep-ms MS]\n"
      "          [--shards N] [--partitioner hash|bfs] [--rerank-rows R]\n"
      "          [--metrics-out FILE|-] [--metrics-interval-ms MS] [--trace]\n"
      "          [--flight-record-out FILE|-]\n"
      "\n"
      "lifecycle: --slo-ms bounds staleness (background publisher; 0 = caller-paced\n"
      "via --publish-every), --ttl-ms retires streamed-in entities idle that long\n"
      "(swept every --sweep-ms), --no-annihilate disables in-place tombstone GC.\n"
      "sharding: --shards N > 1 splits the evolving graph into N partition-routed\n"
      "shards (--partitioner picks the base assignment) with per-shard compaction\n"
      "and publishing; queries sample a consistent cross-shard cut, and --ttl-ms\n"
      "runs ONE facade-wide sweeper so shard vertex spaces stay in lockstep.\n"
      "--rerank-rows re-ranks the device cache every R gathered rows regardless\n"
      "of fold cadence.\n",
      argv0);
}

bool parse_stream_args(int argc, char** argv, StreamOptions& options) {
  // Reuse the serve parser for the shared flags by filtering out the
  // stream-only ones first.
  std::vector<char*> passthrough = {argv[0], argv[1]};
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--updates") {
      const char* v = next();
      if (!v) return false;
      options.updates = std::atoll(v);
    } else if (arg == "--update-threads") {
      const char* v = next();
      if (!v) return false;
      options.update_threads = std::atoi(v);
    } else if (arg == "--publish-every") {
      const char* v = next();
      if (!v) return false;
      options.publish_every = std::atoll(v);
    } else if (arg == "--vertex-add-frac") {
      const char* v = next();
      if (!v) return false;
      options.vertex_add_fraction = std::atof(v);
    } else if (arg == "--feature-update-frac") {
      const char* v = next();
      if (!v) return false;
      options.feature_update_fraction = std::atof(v);
    } else if (arg == "--delete-frac") {
      const char* v = next();
      if (!v) return false;
      options.edge_delete_fraction = std::atof(v);
    } else if (arg == "--vertex-delete-frac") {
      const char* v = next();
      if (!v) return false;
      options.vertex_delete_fraction = std::atof(v);
    } else if (arg == "--delete-recent-frac") {
      const char* v = next();
      if (!v) return false;
      options.delete_recent_fraction = std::atof(v);
    } else if (arg == "--compact-edges") {
      const char* v = next();
      if (!v) return false;
      options.compact_edges = std::atoll(v);
    } else if (arg == "--compact-ratio") {
      const char* v = next();
      if (!v) return false;
      options.compact_ratio = std::atof(v);
    } else if (arg == "--no-annihilate") {
      options.annihilate = false;
    } else if (arg == "--slo-ms") {
      const char* v = next();
      if (!v) return false;
      options.slo_ms = std::atof(v);
    } else if (arg == "--ttl-ms") {
      const char* v = next();
      if (!v) return false;
      options.ttl_ms = std::atof(v);
    } else if (arg == "--sweep-ms") {
      const char* v = next();
      if (!v) return false;
      options.sweep_ms = std::atof(v);
    } else if (arg == "--shards") {
      const char* v = next();
      if (!v) return false;
      options.shards = std::atoi(v);
    } else if (arg == "--partitioner") {
      const char* v = next();
      if (!v) return false;
      options.partitioner = v;
      if (options.partitioner != "hash" && options.partitioner != "bfs") {
        std::fprintf(stderr, "--partitioner must be hash or bfs (got %s)\n", v);
        return false;
      }
    } else if (arg == "--rerank-rows") {
      const char* v = next();
      if (!v) return false;
      options.rerank_rows = std::atoll(v);
    } else if (arg == "--cache-rerank") {
      const char* v = next();
      if (!v) return false;
      if (std::string(v) == "on") {
        options.cache_rerank = true;
      } else if (std::string(v) == "off") {
        options.cache_rerank = false;
      } else {
        std::fprintf(stderr, "--cache-rerank must be on or off (got %s)\n", v);
        return false;
      }
    } else if (arg == "--help" || arg == "-h") {
      stream_usage(argv[0]);
      std::exit(0);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  return parse_serve_args(static_cast<int>(passthrough.size()), passthrough.data(),
                          options.serve);
}

int run_stream_impl(const StreamOptions& options);

int run_stream(int argc, char** argv) {
  StreamOptions options;
  if (!parse_stream_args(argc, argv, options)) {
    stream_usage(argv[0]);
    return 2;
  }
  try {
    return run_stream_impl(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

int run_stream_impl(const StreamOptions& options) {
  const ServeOptions& serve = options.serve;
  MaterializeOptions materialize;
  materialize.target_vertices = serve.scale;
  Dataset dataset;
  try {
    dataset = materialize_dataset(serve.dataset, materialize);
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "unknown dataset '%s'\n", serve.dataset.c_str());
    return 2;
  }

  HybridTrainerConfig train_config;
  train_config.model_kind = parse_gnn_kind(serve.model);
  train_config.seed = serve.seed;
  HyScale system(dataset, cpu_fpga_platform(2), train_config);
  for (int e = 0; e < serve.train_epochs; ++e) {
    const EpochReport report = system.train_epoch();
    std::printf("train epoch %d: loss %.4f acc %.3f\n", e, report.loss, report.train_accuracy);
  }

  ServingConfig serving;
  serving.fanouts = serve.fanouts;
  serving.num_workers = serve.workers;
  serving.cache_capacity_rows = serve.cache_rows;
  serving.transfer_precision = serve.precision;
  serving.seed = serve.seed;
  serving.batch.max_batch_requests = serve.max_batch;
  serving.batch.max_wait = serve.max_wait_ms * 1e-3;
  serving.batch.queue_capacity = static_cast<std::size_t>(serve.queue_cap);
  serving.cache_rerank_every_rows = options.rerank_rows;

  CliTelemetry telemetry = make_telemetry(serve);
  serving.telemetry = telemetry.get();
  StreamingConfig streaming;
  streaming.telemetry = telemetry.get();
  streaming.cache_rerank = options.cache_rerank;

  CompactionPolicy compaction;
  compaction.max_overlay_edges = options.compact_edges;
  compaction.max_overlay_ratio = options.compact_ratio;
  compaction.annihilate_first = options.annihilate;
  PublisherPolicy publisher;
  publisher.staleness_budget = options.slo_ms * 1e-3;  // <= 0 disables
  // A tiny --slo-ms (sub-poll-floor budgets are legitimate for breach
  // demos) must not trip the poll_floor <= budget precondition.
  if (publisher.staleness_budget > 0.0)
    publisher.poll_floor = std::min(publisher.poll_floor, publisher.staleness_budget / 2.0);
  ExpiryPolicy expiry;
  expiry.ttl = options.ttl_ms < 0.0 ? -1.0 : options.ttl_ms * 1e-3;
  expiry.sweep_interval = options.sweep_ms * 1e-3;

  if (options.shards > 1) {
    ShardedConfig sharded;
    sharded.num_shards = options.shards;
    sharded.partitioner = options.partitioner == "bfs" ? ShardedConfig::Partitioner::kBfs
                                                       : ShardedConfig::Partitioner::kHash;
    sharded.stream = streaming;
    // One facade-wide TTL sweeper, paced through the ServingBackend
    // seam — retirement broadcasts to every shard so the vertex spaces
    // stay in lockstep.
    ShardedStreamingSession session =
        system.stream_sharded(sharded, serving, compaction, publisher, {}, expiry);

    const Partition& partition = session.shards().partition();
    std::printf("\nsharded streaming %s: %d shards (%s partition, imbalance %.3f, "
                "edge-cut %.1f%%), %d workers, wire=%s, rerank-rows=%lld\n",
                dataset.info.name.c_str(), options.shards, options.partitioner.c_str(),
                partition.imbalance(),
                partition.edge_cut_fraction(dataset.graph.num_edges()) * 100.0,
                serve.workers, transfer_precision_name(serve.precision),
                static_cast<long long>(options.rerank_rows));
    if (session.sweeper != nullptr) {
      std::printf("expiry:   ttl %.1f ms, sweep every %.1f ms (facade-wide)\n",
                  options.ttl_ms, options.sweep_ms);
    }

    UpdateGeneratorConfig updates;
    updates.operations = options.updates;
    updates.num_threads = options.update_threads;
    updates.publish_every = options.publish_every;
    updates.vertex_add_fraction = options.vertex_add_fraction;
    updates.vertex_delete_fraction = options.vertex_delete_fraction;
    updates.feature_update_fraction = options.feature_update_fraction;
    updates.edge_delete_fraction = options.edge_delete_fraction;
    updates.delete_recent_fraction = options.delete_recent_fraction;
    updates.seed = serve.seed + 2;
    ShardedUpdateDriver update_driver(session.shards(), updates);
    UpdateReport update_report;
    std::thread update_thread([&] { update_report = update_driver.run(); });

    LoadGeneratorConfig load;
    load.num_clients = serve.clients;
    load.requests_per_client = serve.requests;
    load.seeds_per_request = serve.seeds_per_request;
    load.seed = serve.seed + 1;
    load.telemetry = telemetry.get();
    LoadGenerator generator(*session.server, dataset, load);
    const LoadReport report = generator.run();
    update_thread.join();
    if (telemetry.exporter) telemetry.exporter->flush("load_drained");

    const ShardedStats sharded_stats = session.shards().stats();
    const ServingSnapshot& stats = report.server;
    std::printf("\nqueries:  %s\n", report.to_string().c_str());
    std::printf("updates:  %s\n", update_report.to_string().c_str());
    std::printf("sharded:  %s\n", sharded_stats.to_string().c_str());
    std::printf("latency:  p50 %.3f ms  p99 %.3f ms  (queue p99 %.3f ms, compute mean "
                "%.3f ms)\n",
                stats.latency_p50 * 1e3, stats.latency_p99 * 1e3,
                stats.queue_wait_p99 * 1e3, stats.compute_mean * 1e3);
    for (std::size_t s = 0; s < session.publishers.size(); ++s) {
      std::printf("shard %zu:  %lld publishes (worst staleness %.3f ms)\n", s,
                  static_cast<long long>(session.publishers[s]->publishes()),
                  session.publishers[s]->worst_staleness() * 1e3);
    }
    std::printf("adopter:  %lld cut adoptions (cut %llu served)\n",
                static_cast<long long>(session.adopter->adoptions()),
                static_cast<unsigned long long>(session.server->last_served_version()));
    if (session.sweeper != nullptr) {
      std::printf("expiry:   %lld retired in %lld sweeps\n",
                  static_cast<long long>(session.sweeper->retired()),
                  static_cast<long long>(session.sweeper->sweeps()));
    }
    if (options.rerank_rows > 0) {
      std::printf("rerank:   %lld traffic-triggered re-ranks\n",
                  static_cast<long long>(session.server->traffic_reranks()));
    }
    print_telemetry_summary(telemetry, serve);
    return 0;
  }

  StreamingSession session = system.stream(serving, streaming, compaction, publisher, expiry);

  std::printf("\nstreaming %s on %d workers (%lld base edges, compact at %lld overlay "
              "edges or %.0f%%, wire=%s, rerank=%s)\n",
              dataset.info.name.c_str(), serve.workers,
              static_cast<long long>(dataset.graph.num_edges()),
              static_cast<long long>(options.compact_edges), options.compact_ratio * 100.0,
              transfer_precision_name(serve.precision),
              options.cache_rerank ? "on" : "off");
  if (session.publisher() != nullptr) {
    std::printf("publisher: staleness budget %.3f ms\n", options.slo_ms);
  } else if (options.publish_every > 0) {
    std::printf("publisher: off (fixed cadence, publish every %lld ops)\n",
                static_cast<long long>(options.publish_every));
  } else {
    std::printf("publisher: off and no cadence — updates stay invisible until the "
                "final publish (pass --slo-ms or --publish-every)\n");
  }
  if (session.sweeper != nullptr) {
    std::printf("expiry:    ttl %.1f ms, sweep every %.1f ms\n", options.ttl_ms,
                options.sweep_ms);
  }

  UpdateGeneratorConfig updates;
  updates.operations = options.updates;
  updates.num_threads = options.update_threads;
  updates.publish_every = options.publish_every;
  updates.vertex_add_fraction = options.vertex_add_fraction;
  updates.vertex_delete_fraction = options.vertex_delete_fraction;
  updates.feature_update_fraction = options.feature_update_fraction;
  updates.edge_delete_fraction = options.edge_delete_fraction;
  updates.delete_recent_fraction = options.delete_recent_fraction;
  updates.seed = serve.seed + 2;
  UpdateGenerator update_generator(session.stream(), updates);
  UpdateReport update_report;
  std::thread update_thread([&] { update_report = update_generator.run(); });

  LoadGeneratorConfig load;
  load.num_clients = serve.clients;
  load.requests_per_client = serve.requests;
  load.seeds_per_request = serve.seeds_per_request;
  load.seed = serve.seed + 1;
  load.telemetry = telemetry.get();
  LoadGenerator generator(*session.server, dataset, load);
  const LoadReport report = generator.run();
  update_thread.join();
  if (telemetry.exporter) telemetry.exporter->flush("load_drained");

  const StreamStats stream_stats = session.stream().stats();
  const ServingSnapshot& stats = report.server;
  std::printf("\nqueries:  %s\n", report.to_string().c_str());
  std::printf("updates:  %s\n", update_report.to_string().c_str());
  std::printf("stream:   %s\n", stream_stats.to_string().c_str());
  std::printf("latency:  p50 %.3f ms  p99 %.3f ms  (queue p99 %.3f ms, compute mean %.3f ms)\n",
              stats.latency_p50 * 1e3, stats.latency_p99 * 1e3, stats.queue_wait_p99 * 1e3,
              stats.compute_mean * 1e3);
  std::printf("graph:    %lld vertices (%lld dead, %lld recycled), version %llu, "
              "%lld compactions\n",
              static_cast<long long>(session.stream().num_vertices()),
              static_cast<long long>(stream_stats.dead_vertices),
              static_cast<long long>(stream_stats.recycled_vertices),
              static_cast<unsigned long long>(stream_stats.version_id),
              static_cast<long long>(stream_stats.compactions));
  std::printf("lifecycle: %lld ops annihilated in %lld passes, %lld expired",
              static_cast<long long>(stream_stats.annihilated_ops),
              static_cast<long long>(stream_stats.annihilations),
              static_cast<long long>(stream_stats.expired_vertices));
  if (session.publisher() != nullptr) {
    std::printf(", publisher %lld publishes (worst staleness %.3f ms)",
                static_cast<long long>(session.publisher()->publishes()),
                session.publisher()->worst_staleness() * 1e3);
  }
  std::printf("\n");
  if (serve.cache_rows > 0) {
    const StaticFeatureCache* cache = session.server->cache();
    std::printf("cache:    hit_rate %.3f  since_invalidate %.3f (%lld invalidations)\n",
                cache->totals().hit_rate(), cache->since_invalidate().hit_rate(),
                static_cast<long long>(cache->invalidations()));
  }
  print_telemetry_summary(telemetry, serve);
  return 0;
}

int run_serve_impl(const ServeOptions& options);

int run_serve(int argc, char** argv) {
  ServeOptions options;
  if (!parse_serve_args(argc, argv, options)) {
    serve_usage(argv[0]);
    return 2;
  }
  try {
    return run_serve_impl(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

int run_serve_impl(const ServeOptions& options) {
  // Static serving applies --precision to the device cache; fail before
  // training runs, not in the server constructor minutes later.
  if (options.precision != TransferPrecision::kFp32 && options.cache_rows <= 0) {
    std::fprintf(stderr, "--precision %s needs --cache-rows > 0 in serve mode\n",
                 transfer_precision_name(options.precision));
    return 2;
  }
  MaterializeOptions materialize;
  materialize.target_vertices = options.scale;
  Dataset dataset;
  try {
    dataset = materialize_dataset(options.dataset, materialize);
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "unknown dataset '%s'\n", options.dataset.c_str());
    return 2;
  }

  HybridTrainerConfig train_config;
  train_config.model_kind = parse_gnn_kind(options.model);
  train_config.seed = options.seed;
  HybridTrainer trainer(dataset, cpu_fpga_platform(2), train_config);
  if (!options.checkpoint.empty()) {
    load_checkpoint(trainer.model(), options.checkpoint);
    std::printf("weights:  loaded from %s\n", options.checkpoint.c_str());
  } else {
    for (int e = 0; e < options.train_epochs; ++e) {
      const EpochReport report = trainer.train_epoch();
      std::printf("train epoch %d: loss %.4f acc %.3f\n", e, report.loss,
                  report.train_accuracy);
    }
  }
  if (!options.save_checkpoint.empty()) {
    save_checkpoint(trainer.model(), options.save_checkpoint);
    std::printf("weights:  saved to %s\n", options.save_checkpoint.c_str());
  }

  ServingConfig serving;
  serving.fanouts = options.fanouts;
  serving.num_workers = options.workers;
  serving.cache_capacity_rows = options.cache_rows;
  serving.transfer_precision = options.precision;
  serving.seed = options.seed;
  serving.batch.max_batch_requests = options.max_batch;
  serving.batch.max_wait = options.max_wait_ms * 1e-3;
  serving.batch.queue_capacity = static_cast<std::size_t>(options.queue_cap);

  CliTelemetry telemetry = make_telemetry(options);
  serving.telemetry = telemetry.get();

  const ModelSnapshot snapshot(trainer.model());
  InferenceServer server(dataset, snapshot, serving);

  std::printf("\nserving %s on %d workers (", dataset.info.name.c_str(), options.workers);
  if (serving.fanouts.empty()) {
    std::printf("full neighborhood");
  } else {
    std::printf("fanouts");
    for (int f : serving.fanouts) std::printf(" %d", f);
  }
  std::printf(", max_batch=%lld, max_wait=%.1fms, cache_rows=%lld, wire=%s)\n",
              static_cast<long long>(options.max_batch), options.max_wait_ms,
              static_cast<long long>(options.cache_rows),
              transfer_precision_name(options.precision));

  LoadGeneratorConfig load;
  load.num_clients = options.clients;
  load.requests_per_client = options.requests;
  load.seeds_per_request = options.seeds_per_request;
  load.seed = options.seed + 1;
  load.telemetry = telemetry.get();
  LoadGenerator generator(server, dataset, load);
  const LoadReport report = generator.run();
  if (telemetry.exporter) telemetry.exporter->flush("load_drained");

  std::printf("\n%s\n", report.to_string().c_str());
  const ServingSnapshot& stats = report.server;
  std::printf("latency:  p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  max %.3f ms\n",
              stats.latency_p50 * 1e3, stats.latency_p95 * 1e3, stats.latency_p99 * 1e3,
              stats.latency_max * 1e3);
  std::printf("qps:      %.1f requests/s (%.1f seeds/s)\n", report.qps,
              report.qps * options.seeds_per_request);
  std::printf("batches:  %lld (mean %.2f requests, min %lld, max %lld)\n",
              static_cast<long long>(stats.completed_batches), stats.mean_batch_requests,
              static_cast<long long>(stats.min_batch_requests),
              static_cast<long long>(stats.max_batch_requests));
  std::printf("cache:    hit_rate %.3f (%s device, %s host)\n", stats.cache_hit_rate,
              format_bytes(stats.device_bytes).c_str(), format_bytes(stats.host_bytes).c_str());
  print_telemetry_summary(telemetry, options);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "serve") == 0) return run_serve(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "stream") == 0) return run_stream(argc, argv);
  CliOptions options;
  if (!parse_args(argc, argv, options)) {
    usage(argv[0]);
    return 2;
  }

  MaterializeOptions materialize;
  materialize.target_vertices = options.scale;
  Dataset dataset;
  try {
    dataset = materialize_dataset(options.dataset, materialize);
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "unknown dataset '%s'; known datasets:\n", options.dataset.c_str());
    for (const auto& info : paper_datasets()) std::fprintf(stderr, "  %s\n", info.name.c_str());
    return 2;
  }

  const PlatformSpec platform = options.platform == "gpu"
                                    ? cpu_gpu_platform(options.accels)
                                    : cpu_fpga_platform(options.accels);

  HybridTrainerConfig config;
  config.model_kind = parse_gnn_kind(options.model);
  config.fanouts = options.fanouts;
  config.hybrid = options.hybrid;
  config.drm = options.drm;
  config.pipeline = options.tfp ? PipelineMode::kTwoStagePrefetch
                                : PipelineMode::kSinglePrefetch;
  config.transfer_precision =
      options.int8 ? TransferPrecision::kInt8 : TransferPrecision::kFp32;
  config.trajectory_cap = options.trace_path.empty() ? 0 : 256;

  std::printf("dataset:  %s (paper scale: %llu vertices / %llu edges)\n",
              dataset.info.name.c_str(),
              static_cast<unsigned long long>(dataset.info.num_vertices),
              static_cast<unsigned long long>(dataset.info.num_edges));
  std::printf("platform: %s\n", platform.name.c_str());
  std::printf("model:    %s, fanouts", gnn_kind_name(config.model_kind));
  for (int f : config.fanouts) std::printf(" %d", f);
  std::printf(", hybrid=%d drm=%d tfp=%d wire=%s\n\n", config.hybrid, config.drm, options.tfp,
              transfer_precision_name(config.transfer_precision));

  HybridTrainer trainer(dataset, platform, config);
  std::printf("initial mapping: %s\n", trainer.workload().to_string().c_str());
  std::printf("predicted epoch: %.3f s\n\n", trainer.predicted_epoch_time());

  EpochReport last;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    last = trainer.train_epoch();
    std::printf("epoch %2d: %8.3f s  %7.0f MTEPS  loss %.4f  acc %.3f\n", epoch,
                last.epoch_time, last.mteps, last.loss, last.train_accuracy);
  }
  std::printf("\nfinal workload: %s\n", last.final_workload.to_string().c_str());
  std::printf("mean stage times: %s\n", last.mean_times.to_string().c_str());

  if (!options.trace_path.empty()) {
    write_chrome_trace(last, config.pipeline, options.trace_path);
    std::printf("pipeline trace written to %s (open in chrome://tracing)\n",
                options.trace_path.c_str());
  }
  return 0;
}
