// hyscale_cli — command-line driver for the library, the binary a
// downstream user actually runs.
//
//   $ ./example_hyscale_cli --dataset ogbn-products --model sage \
//        --platform fpga --accels 4 --epochs 3 --fanouts 25,10 \
//        [--no-hybrid] [--no-drm] [--no-tfp] [--int8] [--trace out.json]
//
// Prints per-epoch reports and (optionally) a chrome://tracing JSON of
// the pipeline schedule.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/strutil.hpp"
#include "core/hyscale.hpp"

using namespace hyscale;

namespace {

struct CliOptions {
  std::string dataset = "ogbn-products";
  std::string model = "sage";
  std::string platform = "fpga";
  int accels = 4;
  int epochs = 2;
  std::vector<int> fanouts = {25, 10};
  bool hybrid = true;
  bool drm = true;
  bool tfp = true;
  bool int8 = false;
  std::string trace_path;
  VertexId scale = 1 << 11;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--dataset NAME] [--model gcn|sage|gat] [--platform gpu|fpga]\n"
      "          [--accels K] [--epochs N] [--fanouts a,b,...] [--scale V]\n"
      "          [--no-hybrid] [--no-drm] [--no-tfp] [--int8] [--trace FILE]\n",
      argv0);
}

bool parse_args(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--dataset") {
      const char* v = next();
      if (!v) return false;
      options.dataset = v;
    } else if (arg == "--model") {
      const char* v = next();
      if (!v) return false;
      options.model = v;
    } else if (arg == "--platform") {
      const char* v = next();
      if (!v) return false;
      options.platform = v;
    } else if (arg == "--accels") {
      const char* v = next();
      if (!v) return false;
      options.accels = std::atoi(v);
    } else if (arg == "--epochs") {
      const char* v = next();
      if (!v) return false;
      options.epochs = std::atoi(v);
    } else if (arg == "--scale") {
      const char* v = next();
      if (!v) return false;
      options.scale = std::atoll(v);
    } else if (arg == "--fanouts") {
      const char* v = next();
      if (!v) return false;
      options.fanouts.clear();
      for (const std::string& tok : split(v, ',')) {
        options.fanouts.push_back(std::atoi(tok.c_str()));
      }
    } else if (arg == "--no-hybrid") {
      options.hybrid = false;
    } else if (arg == "--no-drm") {
      options.drm = false;
    } else if (arg == "--no-tfp") {
      options.tfp = false;
    } else if (arg == "--int8") {
      options.int8 = true;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return false;
      options.trace_path = v;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse_args(argc, argv, options)) {
    usage(argv[0]);
    return 2;
  }

  MaterializeOptions materialize;
  materialize.target_vertices = options.scale;
  Dataset dataset;
  try {
    dataset = materialize_dataset(options.dataset, materialize);
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "unknown dataset '%s'; known datasets:\n", options.dataset.c_str());
    for (const auto& info : paper_datasets()) std::fprintf(stderr, "  %s\n", info.name.c_str());
    return 2;
  }

  const PlatformSpec platform = options.platform == "gpu"
                                    ? cpu_gpu_platform(options.accels)
                                    : cpu_fpga_platform(options.accels);

  HybridTrainerConfig config;
  config.model_kind = parse_gnn_kind(options.model);
  config.fanouts = options.fanouts;
  config.hybrid = options.hybrid;
  config.drm = options.drm;
  config.pipeline = options.tfp ? PipelineMode::kTwoStagePrefetch
                                : PipelineMode::kSinglePrefetch;
  config.transfer_precision =
      options.int8 ? TransferPrecision::kInt8 : TransferPrecision::kFp32;
  config.trajectory_cap = options.trace_path.empty() ? 0 : 256;

  std::printf("dataset:  %s (paper scale: %llu vertices / %llu edges)\n",
              dataset.info.name.c_str(),
              static_cast<unsigned long long>(dataset.info.num_vertices),
              static_cast<unsigned long long>(dataset.info.num_edges));
  std::printf("platform: %s\n", platform.name.c_str());
  std::printf("model:    %s, fanouts", gnn_kind_name(config.model_kind));
  for (int f : config.fanouts) std::printf(" %d", f);
  std::printf(", hybrid=%d drm=%d tfp=%d wire=%s\n\n", config.hybrid, config.drm, options.tfp,
              transfer_precision_name(config.transfer_precision));

  HybridTrainer trainer(dataset, platform, config);
  std::printf("initial mapping: %s\n", trainer.workload().to_string().c_str());
  std::printf("predicted epoch: %.3f s\n\n", trainer.predicted_epoch_time());

  EpochReport last;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    last = trainer.train_epoch();
    std::printf("epoch %2d: %8.3f s  %7.0f MTEPS  loss %.4f  acc %.3f\n", epoch,
                last.epoch_time, last.mteps, last.loss, last.train_accuracy);
  }
  std::printf("\nfinal workload: %s\n", last.final_workload.to_string().c_str());
  std::printf("mean stage times: %s\n", last.mean_times.to_string().c_str());

  if (!options.trace_path.empty()) {
    write_chrome_trace(last, config.pipeline, options.trace_path);
    std::printf("pipeline trace written to %s (open in chrome://tracing)\n",
                options.trace_path.c_str());
  }
  return 0;
}
