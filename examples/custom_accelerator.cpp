// Porting guide in code: adapting the Processor-Accelerator Training
// Protocol (§III-C) to a NEW accelerator type — here a fictional
// AI-specific accelerator ("NPU") — without touching the runtime.
//
//   $ ./example_custom_accelerator
//
// The protocol is defined at the application layer, so a port needs:
//   1. a DeviceSpec (platform metadata),
//   2. a TrainerCostModel (how fast it aggregates/updates),
//   3. registration on a PlatformSpec.
// Everything else — task mapping, DRM, prefetching, synchronisation —
// is accelerator-agnostic.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/hyscale.hpp"

using namespace hyscale;

namespace {

// 1. The fictional NPU: dense-tensor monster, mediocre gather bandwidth.
DeviceSpec npu_spec() {
  DeviceSpec spec;
  spec.name = "Fictional NPU-900";
  spec.kind = DeviceKind::kGpu;  // closest built-in programming model
  spec.peak_tflops = 100.0;
  spec.mem_bw_gbps = 400.0;
  spec.onchip_mb = 128.0;
  spec.freq_ghz = 1.2;
  spec.device_mem_gb = 32.0;
  return spec;
}

// 2. Its cost model: systolic update at high efficiency, aggregation
// through an on-chip scratchpad that captures half the reuse.
class NpuTrainerModel final : public TrainerCostModel {
 public:
  explicit NpuTrainerModel(DeviceSpec spec) : spec_(std::move(spec)) {}

  Seconds aggregate_time(std::int64_t edges, std::int64_t unique_sources,
                         int f_in) const override {
    // Scratchpad catches ~50% of repeated sources: traffic is the mean of
    // the O(E) and O(V) extremes.
    const double traffic =
        0.5 * (static_cast<double>(edges) + static_cast<double>(unique_sources)) * f_in * 4.0;
    return traffic / (spec_.mem_bw() * 0.25);
  }
  Seconds update_time(std::int64_t num_dst, int f_agg, int f_out) const override {
    const double macs = static_cast<double>(num_dst) * f_agg * f_out;
    return macs / (spec_.peak_flops() / 2.0 * 0.8);
  }
  bool pipelined() const override { return true; }
  const DeviceSpec& spec() const override { return spec_; }

 private:
  DeviceSpec spec_;
};

}  // namespace

int main() {
  // 3. Put four NPUs on the standard dual-socket host.
  PlatformSpec platform;
  platform.name = "2x EPYC 7763 + 4x NPU-900";
  platform.cpu = epyc7763_spec();
  platform.num_sockets = 2;
  platform.cpu_threads = 128;
  platform.accelerators.assign(4, npu_spec());
  platform.pcie_bw_gbps = 25.0;
  platform.cpu_mem_bw_gbps = 205.0;

  MaterializeOptions options;
  options.target_vertices = 1 << 11;
  const Dataset dataset = materialize_dataset("ogbn-papers100M", options);

  // The protocol pieces in isolation — exactly Listing 1's handshake:
  std::printf("protocol demo: 3 trainers, 2 iterations\n");
  TrainingProtocol protocol(3);
  std::vector<std::thread> trainers;
  for (int t = 0; t < 3; ++t) {
    trainers.emplace_back([&protocol, t] {
      for (int i = 0; i < 2; ++i) {
        std::printf("  trainer %d: gradients ready (iter %d)\n", t, i);
        protocol.trainer_done();
        protocol.wait_ack();
      }
    });
  }
  for (int i = 0; i < 2; ++i) {
    protocol.wait_all_done();
    std::printf("  synchronizer: all DONE, averaging + broadcasting ACK\n");
    const std::int64_t generation = protocol.broadcast_ack();
    protocol.wait_iteration_complete(generation);
  }
  for (auto& t : trainers) t.join();

  // Full hybrid training on the custom platform (cost model supplied by
  // the generic GPU path here; a production port would plug
  // NpuTrainerModel into make_trainer_model).
  NpuTrainerModel npu_model(npu_spec());
  BatchStats stats = NeighborSampler::expected_stats(1024, {25, 10},
                                                     dataset.info.mean_degree(),
                                                     dataset.info.num_vertices);
  ModelConfig model;
  model.kind = GnnKind::kSage;
  model.dims = {dataset.info.f0, dataset.info.f1, dataset.info.f2};
  std::printf("\nNPU trainer propagation time on a 1024-seed batch: %.3f ms\n",
              npu_model.propagation_time(stats, model) * 1e3);

  HybridTrainerConfig config;
  config.model_kind = GnnKind::kSage;
  config.real_iterations_cap = 1;
  HybridTrainer trainer(dataset, platform, config);
  const EpochReport report = trainer.train_epoch();
  std::printf("hybrid epoch on %s: %.2f s (sim), %.0f MTEPS\n", platform.name.c_str(),
              report.epoch_time, report.mteps);
  return 0;
}
