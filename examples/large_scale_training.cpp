// Large-scale scenario: the workload the paper's introduction motivates —
// training on a billion-edge graph (ogbn-papers100M) whose features
// cannot fit any device memory, so the graph lives in host DRAM and the
// accelerators are fed through the two-stage prefetch pipeline.
//
//   $ ./example_large_scale_training [num_fpgas]
//
// Shows: dataset registry at paper scale, the performance-model-seeded
// task mapping, per-stage time breakdown, DRM adjustments, and the
// simulated epoch time / MTEPS on the CPU-FPGA platform.
#include <cstdio>
#include <cstdlib>

#include "core/hyscale.hpp"

int main(int argc, char** argv) {
  using namespace hyscale;
  const int num_fpgas = argc > 1 ? std::atoi(argv[1]) : 4;

  // Paper-scale statistics drive the simulated platform; a
  // degree-preserving scaled-down RMAT graph carries the real numerics.
  MaterializeOptions options;
  options.target_vertices = 1 << 12;
  const Dataset dataset = materialize_dataset("ogbn-papers100M", options);
  std::printf("dataset (paper scale): %s — %llu vertices, %llu edges, features %.1f GB\n",
              dataset.info.name.c_str(),
              static_cast<unsigned long long>(dataset.info.num_vertices),
              static_cast<unsigned long long>(dataset.info.num_edges),
              dataset.info.feature_bytes() / 1e9);
  std::printf("materialised stand-in: %lld vertices, %lld edges\n\n",
              static_cast<long long>(dataset.num_vertices()),
              static_cast<long long>(dataset.graph.num_edges()));

  const PlatformSpec platform = cpu_fpga_platform(num_fpgas);
  HybridTrainerConfig config;
  config.model_kind = GnnKind::kGcn;
  config.fanouts = {25, 10};         // the paper's sampler configuration
  config.per_trainer_batch = 1024;   // per-trainer mini-batch
  config.real_iterations_cap = 2;    // a couple of real iterations per epoch

  HybridTrainer trainer(dataset, platform, config);
  std::printf("initial task mapping: %s\n", trainer.workload().to_string().c_str());
  std::printf("predicted epoch time (Section V model): %.2f s\n\n",
              trainer.predicted_epoch_time());

  for (int epoch = 0; epoch < 3; ++epoch) {
    const EpochReport report = trainer.train_epoch();
    std::printf("epoch %d: %.2f s (sim), %ld iterations, %.0f MTEPS, loss %.3f\n", epoch,
                report.epoch_time, report.iterations, report.mteps, report.loss);
    std::printf("  mean stage times: %s\n", report.mean_times.to_string().c_str());
    std::printf("  workload after DRM: %s\n", report.final_workload.to_string().c_str());
  }
  return 0;
}
