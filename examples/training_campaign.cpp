// Training campaign: the end-to-end workflow for a real run — multi-
// epoch session with early stopping, best-model checkpointing, CSV
// metrics for offline analysis, and a pipeline trace of the final epoch.
//
//   $ ./example_training_campaign [output_dir]
#include <cstdio>
#include <string>

#include "core/hyscale.hpp"
#include "runtime/csv_report.hpp"
#include "runtime/training_session.hpp"

int main(int argc, char** argv) {
  using namespace hyscale;
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  const Dataset dataset = make_community_dataset(/*num_classes=*/5,
                                                 /*vertices_per_class=*/128,
                                                 /*feature_dim=*/24,
                                                 /*seed=*/2026);

  HybridTrainerConfig trainer_config;
  trainer_config.model_kind = GnnKind::kSage;
  trainer_config.fanouts = {10, 5};
  trainer_config.learning_rate = 0.25;
  trainer_config.real_batch_total = 128;
  trainer_config.real_iterations_cap = 30;
  trainer_config.per_trainer_batch = 256;
  trainer_config.trajectory_cap = 128;
  HybridTrainer trainer(dataset, cpu_fpga_platform(2), trainer_config);

  SessionConfig session_config;
  session_config.max_epochs = 12;
  session_config.patience = 4;
  session_config.checkpoint_path = out_dir + "/campaign_best.ckpt";
  session_config.csv_path = out_dir + "/campaign_metrics.csv";

  TrainingSession session(trainer, session_config);
  const SessionResult result = session.run();

  std::printf("epochs run:      %d%s\n", result.epochs_run,
              result.early_stopped ? " (early stopped)" : "");
  std::printf("best accuracy:   %.3f (epoch %d)\n", result.best_accuracy, result.best_epoch);
  std::printf("metrics CSV:     %s\n", session_config.csv_path.c_str());
  std::printf("best checkpoint: %s\n", session_config.checkpoint_path.c_str());

  // Restore the best model into a fresh replica (e.g. for serving).
  GnnModel best(trainer.model().config());
  load_checkpoint(best, session_config.checkpoint_path);
  std::printf("checkpoint restored: %lld parameters\n",
              static_cast<long long>(best.num_parameters()));

  // Trace of the last epoch's pipeline schedule.
  const std::string trace_path = out_dir + "/campaign_trace.json";
  write_chrome_trace(result.reports.back(), trainer_config.pipeline, trace_path);
  std::printf("pipeline trace:  %s (open in chrome://tracing)\n", trace_path.c_str());
  return result.best_accuracy > 0.6 ? 0 : 1;
}
