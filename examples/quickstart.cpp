// Quickstart: train a 2-layer GraphSAGE model on a community-structured
// synthetic graph with the full HyScale-GNN runtime (hybrid CPU + 2
// simulated FPGAs), and watch the loss converge.
//
//   $ ./example_quickstart
//
// Demonstrates the minimal public-API workflow:
//   1. build (or load) a Dataset,
//   2. pick a platform (cpu_fpga_platform / cpu_gpu_platform),
//   3. construct HyScale and call train().
#include <cstdio>

#include "core/hyscale.hpp"

int main() {
  using namespace hyscale;

  // 1. A small learnable dataset: 4 communities, strong label signal.
  const Dataset dataset = make_community_dataset(/*num_classes=*/4,
                                                 /*vertices_per_class=*/128,
                                                 /*feature_dim=*/16,
                                                 /*seed=*/42);
  std::printf("dataset: %lld vertices, %lld edges, %zu train seeds\n",
              static_cast<long long>(dataset.num_vertices()),
              static_cast<long long>(dataset.graph.num_edges()), dataset.train_ids.size());

  // 2. Platform: dual-socket host + 2 (simulated) Alveo U250s.
  const PlatformSpec platform = cpu_fpga_platform(2);
  std::printf("platform: %s (%.1f TFLOPS aggregate)\n\n", platform.name.c_str(),
              platform.total_tflops());

  // 3. Configure and train.
  HybridTrainerConfig config;
  config.model_kind = GnnKind::kSage;
  config.fanouts = {10, 5};
  config.learning_rate = 0.3;
  config.real_batch_total = 128;
  config.real_iterations_cap = 40;   // run real numerics for the whole epoch
  config.per_trainer_batch = 256;

  HyScale system(dataset, platform, config);
  std::printf("%-6s  %-10s  %-10s  %-12s  %-10s\n", "epoch", "loss", "train_acc",
              "sim_epoch(s)", "MTEPS");
  for (int epoch = 0; epoch < 8; ++epoch) {
    const EpochReport report = system.train_epoch();
    std::printf("%-6d  %-10.4f  %-10.3f  %-12.4f  %-10.1f\n", epoch, report.loss,
                report.train_accuracy, report.epoch_time, report.mteps);
  }

  const double final_accuracy = system.runtime().evaluate_accuracy();
  std::printf("\nfinal train accuracy: %.3f\n", final_accuracy);
  std::printf("final workload split: %s\n",
              system.runtime().workload().to_string().c_str());
  return final_accuracy > 0.8 ? 0 : 1;
}
