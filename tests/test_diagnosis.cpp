// Tests for the diagnosis plane (PR 7): per-request critical-path
// reconstruction via the TraceAssembler, tail-exemplar retention, the
// liveness watchdog — both directions: it DETECTS an artificially
// parked compactor fold, and it stays silent across a healthy
// multi-second run with the default calibration — and the flight
// recorder: trip-driven dumps, rate limiting, teardown ordering, and
// a trip racing the recorder's destruction.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/hyscale.hpp"

namespace hyscale {
namespace {

const Dataset& community() {
  static const Dataset ds = make_community_dataset(3, 32, 8, 2);
  return ds;
}

ModelConfig small_model_config() {
  ModelConfig config;
  config.kind = GnnKind::kSage;
  config.dims = {8, 16, 3};
  config.seed = 11;
  return config;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void wait_until(const std::function<bool()>& done, Seconds timeout = 5.0) {
  Timer t;
  while (!done() && t.elapsed() < timeout)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
}

// ------------------------------------------- critical-path reconstruction

TEST(TraceAssembler, ReconstructsExactCriticalPathPerRequest) {
  Telemetry telemetry;
  const Dataset& ds = community();
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);

  ServingConfig config;
  config.fanouts = {5, 5};
  config.num_workers = 1;
  config.telemetry = &telemetry;
  InferenceServer server(ds, snapshot, config);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(server.infer({0, 17, 40}).request_id);

  // infer() returns when the promise is fulfilled; the worker records
  // the reply span (and offers the exemplar) just after.  Re-collect
  // until the last request's trace has landed in the rings.
  std::optional<TraceAssembler> maybe;
  wait_until([&] {
    maybe.emplace(telemetry.tracer().collect());
    for (const std::uint64_t id : ids) {
      const std::optional<RequestTrace> trace = maybe->request(id);
      if (!trace.has_value() || !trace->complete()) return false;
    }
    return true;
  });
  const TraceAssembler& assembler = *maybe;
  // EVERY submitted request reconstructs — exact set equality on ids,
  // not just "some requests came back".
  const std::vector<RequestTrace> traces = assembler.assemble();
  std::set<std::uint64_t> reconstructed;
  for (const RequestTrace& trace : traces) reconstructed.insert(trace.request_id);
  EXPECT_EQ(reconstructed, std::set<std::uint64_t>(ids.begin(), ids.end()));

  for (const std::uint64_t id : ids) {
    const std::optional<RequestTrace> trace = assembler.request(id);
    ASSERT_TRUE(trace.has_value()) << "request " << id << " not reconstructed";
    EXPECT_EQ(trace->request_id, id);
    EXPECT_TRUE(trace->complete())
        << "request " << id << " is missing a stage span";
    // The path is exact: queue ends at worker pickup, then the batch
    // stages tile forward in order on the same steady clock, and the
    // trace's total is precisely enqueue -> reply-done.
    EXPECT_EQ(trace->enqueue_ns, trace->queue.begin_ns);
    EXPECT_LE(trace->queue.begin_ns, trace->queue.end_ns);
    EXPECT_LE(trace->queue.end_ns, trace->sample.begin_ns);
    EXPECT_LE(trace->sample.begin_ns, trace->sample.end_ns);
    EXPECT_LE(trace->sample.end_ns, trace->gather.begin_ns);
    EXPECT_LE(trace->gather.begin_ns, trace->gather.end_ns);
    EXPECT_LE(trace->gather.end_ns, trace->forward.begin_ns);
    EXPECT_LE(trace->forward.begin_ns, trace->forward.end_ns);
    EXPECT_LE(trace->forward.end_ns, trace->reply.begin_ns);
    EXPECT_LE(trace->reply.begin_ns, trace->reply.end_ns);
    EXPECT_EQ(trace->done_ns, trace->reply.end_ns);
    EXPECT_EQ(trace->total_ns(), trace->reply.end_ns - trace->queue.begin_ns);
    EXPECT_GT(trace->total_ns(), 0);
    // Single in-flight request on one worker: the batch is exactly it.
    EXPECT_EQ(trace->batch_requests, 1);
    EXPECT_EQ(trace->batch_seeds, 3);
  }

  // Unknown ids are a miss, not a zero-filled trace.
  EXPECT_FALSE(assembler.request(0xdeadbeef).has_value());
}

TEST(TraceAssembler, RequestWithoutBatchSpansIsIncomplete) {
  // A queue span whose batch stages were overwritten still reports,
  // with the lost stages marked absent.
  std::vector<TraceRecord> records(1);
  records[0].stage = TraceStage::kQueue;
  records[0].begin_ns = 100;
  records[0].end_ns = 250;
  records[0].context = 7;   // batch id
  records[0].aux = 42;      // request id
  const TraceAssembler assembler(std::move(records));
  const std::optional<RequestTrace> trace = assembler.request(42);
  ASSERT_TRUE(trace.has_value());
  EXPECT_TRUE(trace->queue.present);
  EXPECT_FALSE(trace->sample.present);
  EXPECT_FALSE(trace->complete());
  EXPECT_EQ(trace->batch_id, 7u);
}

// ----------------------------------------------------------- exemplar ring

RequestTrace trace_with_total(std::uint64_t id, std::int64_t total_ns) {
  RequestTrace trace;
  trace.request_id = id;
  trace.enqueue_ns = 0;
  trace.done_ns = total_ns;
  return trace;
}

TEST(ExemplarRing, RetainsSlowestAndRaisesThreshold) {
  ExemplarRing ring(/*capacity=*/3);
  EXPECT_EQ(ring.threshold_ns(), 0);
  // Fill: everything admits while there is room.
  EXPECT_TRUE(ring.offer(trace_with_total(1, 100)));
  EXPECT_TRUE(ring.offer(trace_with_total(2, 300)));
  EXPECT_TRUE(ring.offer(trace_with_total(3, 200)));
  // Full: threshold is the fastest retained total.
  EXPECT_EQ(ring.threshold_ns(), 100);
  // At-or-below threshold is rejected on the fast path.
  EXPECT_FALSE(ring.offer(trace_with_total(4, 100)));
  EXPECT_FALSE(ring.offer(trace_with_total(5, 50)));
  // Slower than the fastest retained: evicts it, threshold rises.
  EXPECT_TRUE(ring.offer(trace_with_total(6, 250)));
  EXPECT_EQ(ring.threshold_ns(), 200);

  const std::vector<RequestTrace> slowest = ring.slowest();
  ASSERT_EQ(slowest.size(), 3u);
  EXPECT_EQ(slowest[0].request_id, 2u);  // 300
  EXPECT_EQ(slowest[1].request_id, 6u);  // 250
  EXPECT_EQ(slowest[2].request_id, 3u);  // 200
  EXPECT_EQ(ring.offered(), 6);
  EXPECT_EQ(ring.admitted(), 4);
}

TEST(ExemplarRing, ServingWorkersFeedTheRing) {
  Telemetry telemetry;
  const Dataset& ds = community();
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);

  ServingConfig config;
  config.fanouts = {5, 5};
  config.num_workers = 1;
  config.telemetry = &telemetry;
  InferenceServer server(ds, snapshot, config);
  for (int i = 0; i < 8; ++i) (void)server.infer({0, 17, 40});

  // The worker offers the exemplar after fulfilling the reply promise;
  // give the last offer a moment to land.
  wait_until([&] { return telemetry.exemplars().offered() >= 8; });
  EXPECT_EQ(telemetry.exemplars().offered(), 8);
  const std::vector<RequestTrace> slowest = telemetry.exemplars().slowest();
  ASSERT_FALSE(slowest.empty());
  for (const RequestTrace& trace : slowest) {
    EXPECT_TRUE(trace.complete());
    EXPECT_GT(trace.total_ns(), 0);
  }
}

// --------------------------------------------------------------- watchdog

TEST(Watchdog, DetectsParkedCompactorFoldAndJournalsRecovery) {
  Telemetry telemetry;
  StreamingConfig config;
  config.telemetry = &telemetry;
  StreamingGraph graph(community(), config);

  Xoshiro256 rng(29);
  const auto n = static_cast<std::uint64_t>(graph.num_vertices());
  for (int i = 0; i < 256; ++i) {
    graph.add_edge(static_cast<VertexId>(rng.bounded(n)), static_cast<VertexId>(rng.bounded(n)));
  }
  (void)graph.publish();

  // Park the next fold inside its off-lock BUILD phase: the compactor
  // thread is genuinely wedged — busy, not idle — which is exactly the
  // signature the watchdog must flag.
  std::mutex mutex;
  std::condition_variable cv;
  bool parked = false, release = false;
  graph.set_fold_hook([&] {
    std::unique_lock lock(mutex);
    parked = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });

  CompactionPolicy compaction;
  compaction.max_overlay_edges = 64;  // 256 pending ops: triggers immediately
  compaction.poll_interval = 2e-3;
  Compactor compactor(graph, compaction);

  WatchdogConfig wcfg;
  wcfg.check_interval_ns = 5'000'000;  // sweep every 5 ms
  wcfg.min_stall_ns = 50'000'000;      // flag after 50 ms of busy silence
  Watchdog watchdog(telemetry, wcfg);

  {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return parked; });
  }
  wait_until([&] { return watchdog.stalls() >= 1; });
  EXPECT_GE(watchdog.stalls(), 1);
  EXPECT_DOUBLE_EQ(telemetry.registry().snapshot().value("watchdog.stalls"),
                   static_cast<double>(watchdog.stalls()));

  bool journaled_stall = false;
  for (const JournalEvent& event : telemetry.journal().events()) {
    if (event.kind == "watchdog_stall" &&
        event.detail.find("stream.compactor") != std::string::npos) {
      journaled_stall = true;
    }
  }
  EXPECT_TRUE(journaled_stall) << "stall not journaled against stream.compactor";

  bool tripped = false;
  for (const TripRecord& trip : telemetry.trips()) {
    if (trip.reason == "watchdog_stall:stream.compactor") tripped = true;
  }
  EXPECT_TRUE(tripped) << "stall did not escalate through the trip channel";

  // Release the fold; the compactor beats again and the watchdog
  // journals the recovery.
  {
    std::lock_guard lock(mutex);
    release = true;
  }
  cv.notify_all();
  wait_until([&] {
    for (const JournalEvent& event : telemetry.journal().events()) {
      if (event.kind == "watchdog_recovered" &&
          event.detail.find("stream.compactor") != std::string::npos) {
        return true;
      }
    }
    return false;
  });
  compactor.stop();
  watchdog.stop();
  graph.set_fold_hook(nullptr);

  bool recovered = false;
  for (const JournalEvent& event : telemetry.journal().events()) {
    if (event.kind == "watchdog_recovered" &&
        event.detail.find("stream.compactor") != std::string::npos) {
      recovered = true;
    }
  }
  EXPECT_TRUE(recovered) << "recovery not journaled after the fold was released";
}

TEST(Watchdog, NoFalsePositivesOverHealthyMultiSecondRun) {
  // Default calibration (250 ms floor, 8x hint) against a live mixed
  // workload: serving workers cycling busy/idle, a compactor and
  // publisher and sweeper on their normal cadences.  A healthy run
  // must produce ZERO stall episodes — this is the false-positive
  // bound the watchdog's thresholds are calibrated for.
  Telemetry telemetry;
  StreamingConfig stream_config;
  stream_config.telemetry = &telemetry;
  StreamingGraph graph(community(), stream_config);

  CompactionPolicy compaction;
  compaction.max_overlay_edges = 512;
  Compactor compactor(graph, compaction);
  PublisherPolicy publisher_policy;
  publisher_policy.staleness_budget = 5e-3;
  Publisher publisher(graph, publisher_policy);
  ExpiryPolicy expiry;
  expiry.ttl = 1.0;
  expiry.sweep_interval = 5e-3;
  expiry.pending_op_budget = 0;
  ExpirySweeper sweeper(graph, expiry);

  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);
  ServingConfig serving;
  serving.fanouts = {5, 5};
  serving.num_workers = 2;
  serving.telemetry = &telemetry;
  InferenceServer server(community(), snapshot, serving);

  Watchdog watchdog(telemetry);  // default config

  Xoshiro256 rng(31);
  const auto n = static_cast<std::uint64_t>(graph.num_vertices());
  Timer wall;
  while (wall.elapsed() < 2.5) {
    for (int i = 0; i < 8; ++i) {
      graph.add_edge(static_cast<VertexId>(rng.bounded(n)),
                     static_cast<VertexId>(rng.bounded(n)));
    }
    (void)server.infer({0, 17, 40});
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  EXPECT_GT(watchdog.sweeps(), 50) << "watchdog barely ran; bound not exercised";
  EXPECT_EQ(watchdog.stalls(), 0) << "false positive on a healthy run";
  // The publisher may legitimately trip slo_breach under test-machine
  // load; only watchdog escalations count as false positives here.
  for (const TripRecord& trip : telemetry.trips()) {
    EXPECT_EQ(trip.reason.rfind("watchdog_stall", 0), std::string::npos)
        << "watchdog trip on a healthy run: " << trip.reason;
  }
  // Many hearts actually participated: 2 workers + compactor +
  // publisher + sweeper.
  EXPECT_GE(telemetry.heartbeats().size(), 5u);
}

// --------------------------------------------------------- flight recorder

TEST(FlightRecorder, TripDumpsRateLimitAndExplicitDumpDoesNot) {
  const std::string path = "diagnosis_flight_test.json";
  Telemetry telemetry;
  telemetry.registry().counter("serving.requests_completed").add(3);
  telemetry.registry().histogram("serving.latency_ms").observe_ms(2.5);
  telemetry.journal().log("publish", "version=1 overlay_ops=9");
  telemetry.heartbeats().register_thread("test.thread", 1'000'000).beat();
  (void)telemetry.exemplars().offer(trace_with_total(5, 2'000'000));

  FlightRecorderConfig config;
  config.path = path;
  config.min_dump_gap_ns = 3'600'000'000'000;  // 1 h: second trip must suppress
  config.dump_on_teardown = false;
  {
    FlightRecorder recorder(telemetry, config);
    telemetry.trip("slo_breach");
    EXPECT_EQ(recorder.dumps(), 1);
    telemetry.trip("slo_breach");  // inside the gap
    EXPECT_EQ(recorder.dumps(), 1);
    EXPECT_EQ(recorder.suppressed(), 1);
    // Explicit dumps bypass the limiter.
    EXPECT_TRUE(recorder.dump("operator_request"));
    EXPECT_EQ(recorder.dumps(), 2);
  }

  const std::string body = read_file(path);
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body.front(), '{');
  EXPECT_EQ(body[body.size() - 2], '}');  // trailing newline after the object
  for (const char* key :
       {"\"type\":\"flight_record\"", "\"reason\":\"operator_request\"",
        "\"trips\":", "\"slo_breach\"", "\"metrics\":", "\"journal\":",
        "\"heartbeats\":", "\"test.thread\"", "\"exemplars\":",
        "\"request_id\":5", "\"journal.dropped_events\""}) {
    EXPECT_NE(body.find(key), std::string::npos) << "missing " << key;
  }
  std::remove(path.c_str());
}

TEST(FlightRecorder, TeardownDumpCompletesMidExporterInterval) {
  // The exporter thread is parked mid-interval (long cadence) when the
  // recorder tears down: the dump must complete with the exporter
  // still alive, and the exporter's own final snapshot must still land
  // afterwards — teardown order recorder -> exporter -> telemetry.
  const std::string flight_path = "diagnosis_teardown_flight.json";
  const std::string jsonl_path = "diagnosis_teardown_metrics.jsonl";
  Telemetry telemetry;
  telemetry.registry().counter("serving.requests_completed").add(1);
  {
    TelemetryExporter exporter(telemetry, {jsonl_path, /*interval_ms=*/60'000});
    {
      FlightRecorderConfig config;
      config.path = flight_path;
      FlightRecorder recorder(telemetry, config);
      telemetry.journal().log("fold", "version=2");
    }  // teardown dump, exporter mid-wait
    const std::string body = read_file(flight_path);
    ASSERT_FALSE(body.empty());
    EXPECT_NE(body.find("\"reason\":\"teardown\""), std::string::npos);
    // The exporter heart is registered and idle in its interval wait.
    EXPECT_NE(body.find("\"obs.exporter\""), std::string::npos);
  }  // exporter stops: final snapshot
  bool final_snapshot = false;
  std::ifstream in(jsonl_path);
  for (std::string line; std::getline(in, line);) {
    if (line.find("\"reason\":\"final\"") != std::string::npos) final_snapshot = true;
  }
  EXPECT_TRUE(final_snapshot);
  std::remove(flight_path.c_str());
  std::remove(jsonl_path.c_str());
}

TEST(FlightRecorder, TripsRacingDestructionAreSafe) {
  // Hammer the trip channel from another thread while recorders come
  // and go: the handler clears under the trip mutex, so a trip either
  // lands in a live recorder or records history-only — never a
  // use-after-free.  (This test's teeth are under TSan in CI.)
  const std::string path = "diagnosis_race_flight.json";
  Telemetry telemetry;
  std::atomic<bool> stop{false};
  std::thread tripper([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      telemetry.trip("race_trip_" + std::to_string(i++));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  for (int round = 0; round < 20; ++round) {
    FlightRecorderConfig config;
    config.path = path;
    config.min_dump_gap_ns = 1;  // dump eagerly: maximize handler activity
    config.dump_on_teardown = false;
    FlightRecorder recorder(telemetry, config);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  tripper.join();
  // Bounded history survived the storm.
  EXPECT_LE(telemetry.trips().size(), 64u);
  EXPECT_FALSE(telemetry.trips().empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hyscale
