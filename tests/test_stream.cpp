// Tests for the streaming dynamic-graph subsystem (src/stream/):
// delta-store epoch stamping and duplicate rejection, copy-on-publish
// version linearizability under concurrent ingest AND retraction,
// overlay-sampler distribution vs. a rebuilt CSR, tombstone edge cases
// (double delete, delete-pending, delete-then-reinsert across a
// compaction boundary, isolated vertices, vertex retirement + id
// recycling), compaction exactness for unchanged vertices,
// cache-invalidation/eviction freshness, and the queue-wait/compute
// split in ServingStats.  The randomized stream-vs-rebuild harness
// lives in test_stream_differential.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/hyscale.hpp"

namespace hyscale {
namespace {

std::shared_ptr<const CsrGraph> shared_csr(VertexId n,
                                           std::vector<std::pair<VertexId, VertexId>> edges,
                                           const EdgeListOptions& options = {}) {
  return std::make_shared<const CsrGraph>(build_csr(n, std::move(edges), options));
}

ModelConfig small_model_config() {
  ModelConfig config;
  config.kind = GnnKind::kSage;
  config.dims = {8, 16, 3};
  config.seed = 11;
  return config;
}

/// Two disjoint rings (0..19 and 20..39) so updates confined to one
/// component provably leave the other's L-hop neighborhoods unchanged.
Dataset two_component_dataset() {
  Dataset ds;
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 0; v < 20; ++v) edges.emplace_back(v, (v + 1) % 20);
  for (VertexId v = 0; v < 20; ++v) edges.emplace_back(20 + v, 20 + (v + 1) % 20);
  ds.graph = build_csr(40, std::move(edges));
  ds.features.resize(40, 8);
  Xoshiro256 rng(99);
  for (float& x : ds.features.flat()) x = static_cast<float>(rng.normal());
  ds.labels.assign(40, 0);
  for (VertexId v = 20; v < 40; ++v) ds.labels[static_cast<std::size_t>(v)] = 1;
  for (VertexId v = 0; v < 40; ++v) ds.train_ids.push_back(v);
  ds.info.name = "two-component";
  ds.info.num_vertices = 40;
  ds.info.num_edges = static_cast<std::uint64_t>(ds.graph.num_edges());
  ds.info.f0 = 8;
  ds.info.f2 = 3;
  return ds;
}

const Dataset& community() {
  static const Dataset ds = make_community_dataset(3, 32, 8, 2);
  return ds;
}

// -------------------------------------------------------------- DeltaStore

TEST(DeltaStore, RejectsSelfLoopsAndDuplicates) {
  auto base = shared_csr(4, {{0, 1}});  // symmetrized: 0-1
  DeltaStore store(base);
  EXPECT_FALSE(store.add_edge(2, 2));    // self loop
  EXPECT_FALSE(store.add_edge(0, 1));    // already in base
  EXPECT_TRUE(store.add_edge(0, 2));
  EXPECT_FALSE(store.add_edge(0, 2));    // already pending
  EXPECT_TRUE(store.add_edge(2, 0));     // reverse direction is distinct
  EXPECT_EQ(store.delta_edges(), 2);
  EXPECT_THROW(store.add_edge(0, 99), std::invalid_argument);
}

TEST(DeltaStore, EpochStampedSnapshotAndPrefixTruncate) {
  auto base = shared_csr(6, {});
  DeltaStore store(base);
  ASSERT_TRUE(store.add_edge(0, 1));
  ASSERT_TRUE(store.add_edge(0, 2));
  const DeltaStore::Snapshot first = store.snapshot(/*advance_epoch=*/true);
  EXPECT_EQ(first.num_inserts, 2);
  EXPECT_EQ(first.num_removes, 0);

  // Edges after the cut carry the advanced epoch and survive truncation.
  ASSERT_TRUE(store.add_edge(0, 3));
  ASSERT_TRUE(store.add_edge(4, 5));
  store.truncate(first.epoch);
  EXPECT_EQ(store.delta_edges(), 2);
  const DeltaStore::Snapshot second = store.snapshot(false);
  std::vector<VertexId> remaining(second.inserts);
  std::sort(remaining.begin(), remaining.end());
  EXPECT_EQ(remaining, (std::vector<VertexId>{3, 5}));
}

TEST(DeltaStore, AddVerticesExtendsSpace) {
  auto base = shared_csr(3, {{0, 1}});
  DeltaStore store(base);
  const VertexId first = store.add_vertices(2);
  EXPECT_EQ(first, 3);
  EXPECT_EQ(store.num_vertices(), 5);
  EXPECT_TRUE(store.add_edge(4, 0));  // new vertex can receive edges
}

TEST(DeltaStore, RebaseSwapsDuplicateCheckBaseAndTruncates) {
  auto base = shared_csr(4, {});
  DeltaStore store(base);
  ASSERT_TRUE(store.add_edge(0, 1));
  const DeltaStore::Snapshot snap = store.snapshot(true);
  auto merged = shared_csr(4, {{0, 1}});
  store.rebase(merged, snap.epoch);
  EXPECT_EQ(store.delta_edges(), 0);
  EXPECT_FALSE(store.add_edge(0, 1));  // now a duplicate of the NEW base
  EXPECT_EQ(store.base().get(), merged.get());
}

// ---------------------------------------------------------- StreamingGraph

TEST(StreamingGraph, PublishMakesIngestVisible) {
  StreamingGraph graph(community());
  const auto before = graph.current();
  VertexId u = 0, v = 0;
  // Find a non-edge to insert.
  for (v = 1; v < graph.num_vertices(); ++v) {
    const auto neighbors = before->base_neighbors(u);
    if (std::find(neighbors.begin(), neighbors.end(), v) == neighbors.end()) break;
  }
  ASSERT_TRUE(graph.add_edge(u, v));
  // Not visible until publish.
  EXPECT_EQ(graph.current()->overlay_edges(), 0);
  const auto after = graph.publish();
  EXPECT_EQ(after->overlay_edges(), 2);  // symmetric insert
  EXPECT_EQ(after->degree(u), before->degree(u) + 1);
  EXPECT_EQ(after->degree(v), before->degree(v) + 1);
  EXPECT_TRUE(after->validate());
  // The old version is an immutable snapshot.
  EXPECT_EQ(before->overlay_edges(), 0);
  EXPECT_GT(after->id(), before->id());
}

TEST(StreamingGraph, DuplicateInsertsAreRejectedSymmetrically) {
  StreamingGraph graph(two_component_dataset());
  ASSERT_TRUE(graph.add_edge(0, 5));
  EXPECT_FALSE(graph.add_edge(0, 5));
  EXPECT_FALSE(graph.add_edge(5, 0));  // canonical order catches the reverse
  EXPECT_FALSE(graph.add_edge(0, 1));  // base ring edge
  EXPECT_EQ(graph.stats().duplicate_edges, 3);
  EXPECT_EQ(graph.stats().ingested_edges, 2);
}

TEST(StreamingGraph, AddVertexCarriesFeaturesIntoPublishedVersion) {
  StreamingGraph graph(two_component_dataset());
  std::vector<float> row(8, 2.5f);
  const VertexId v = graph.add_vertex(row);
  EXPECT_EQ(v, 40);
  ASSERT_TRUE(graph.add_edge(v, 0));
  const auto version = graph.publish();
  EXPECT_EQ(version->num_vertices(), 41);
  EXPECT_EQ(version->degree(v), 1);
  Tensor out;
  const VertexId nodes[1] = {v};
  graph.gather(std::span<const VertexId>(nodes, 1), out);
  for (std::int64_t j = 0; j < 8; ++j) EXPECT_FLOAT_EQ(out.at(0, j), 2.5f);
}

TEST(StreamingGraph, CompactFoldsOverlayIntoFreshBase) {
  const Dataset ds = two_component_dataset();
  StreamingGraph graph(ds);
  ASSERT_TRUE(graph.add_edge(0, 5));
  ASSERT_TRUE(graph.add_edge(3, 11));
  const auto overlay_version = graph.publish();
  ASSERT_EQ(overlay_version->overlay_edges(), 4);

  ASSERT_TRUE(graph.compact());
  const auto compacted = graph.current();
  EXPECT_EQ(compacted->overlay_edges(), 0);
  EXPECT_EQ(graph.overlay_edges(), 0);
  EXPECT_EQ(compacted->num_edges(), overlay_version->num_edges());
  EXPECT_TRUE(compacted->validate());

  // The merged base equals a one-shot build over the union edge list.
  std::vector<std::pair<VertexId, VertexId>> union_edges;
  for (VertexId v = 0; v < ds.graph.num_vertices(); ++v) {
    for (VertexId u : ds.graph.neighbors(v)) union_edges.emplace_back(v, u);
  }
  union_edges.emplace_back(0, 5);
  union_edges.emplace_back(5, 0);
  union_edges.emplace_back(3, 11);
  union_edges.emplace_back(11, 3);
  EdgeListOptions options;
  options.symmetrize = false;
  const CsrGraph rebuilt = build_csr(ds.graph.num_vertices(), std::move(union_edges), options);
  EXPECT_EQ(compacted->base().indptr(), rebuilt.indptr());
  EXPECT_EQ(compacted->base().indices(), rebuilt.indices());

  // Nothing left to merge.
  EXPECT_FALSE(graph.compact());
}

TEST(StreamingGraph, ConcurrentIngestAndQueryLinearizability) {
  StreamingGraph graph(community());
  const VertexId n = graph.num_vertices();
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> violations{0};

  // Readers: a snapshot must always be internally consistent (never a
  // half-published version) and version ids monotone per observer.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_id = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto version = graph.current();
        if (!version->validate()) violations.fetch_add(1);
        if (version->id() < last_id) violations.fetch_add(1);
        last_id = version->id();
        if (version->num_edges() != version->base_edges() + version->overlay_edges() -
                                        version->removed_edges())
          violations.fetch_add(1);
      }
    });
  }

  // Writers: random symmetric inserts AND retractions; one thread also
  // publishes and compacts so base swaps (including tombstone folds)
  // happen under read load.
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      Xoshiro256 rng(1000 + static_cast<std::uint64_t>(w));
      for (int i = 0; i < 400; ++i) {
        const auto u = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
        const auto v = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
        if (rng.uniform() < 0.3) {
          graph.remove_edge(u, v);
        } else {
          graph.add_edge(u, v);
        }
        if (i % 50 == 0) graph.publish();
        if (w == 0 && i % 150 == 0) graph.compact();
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0);
  graph.publish();
  EXPECT_TRUE(graph.current()->validate());
  // Conservation: every accepted directed insert landed in base or
  // overlay, every accepted retraction took exactly one edge back out.
  const StreamStats stats = graph.stats();
  EXPECT_EQ(graph.current()->num_edges(),
            community().graph.num_edges() + stats.ingested_edges - stats.removed_edges);
}

// ---------------------------------------------------------- OverlaySampler

TEST(OverlaySampler, BitIdenticalToNeighborSamplerOnEmptyOverlay) {
  const Dataset& ds = community();
  StreamingGraph graph(ds);
  NeighborSampler reference(ds.graph, {4, 3}, 77);
  OverlaySampler overlay(graph.current(), {4, 3}, 77);
  const std::vector<VertexId> seeds = {0, 7, 19, 42};
  for (int round = 0; round < 3; ++round) {
    const MiniBatch expected = reference.sample(seeds);
    const MiniBatch actual = overlay.sample(seeds);
    ASSERT_EQ(actual.blocks.size(), expected.blocks.size());
    for (std::size_t l = 0; l < expected.blocks.size(); ++l) {
      EXPECT_EQ(actual.blocks[l].src_nodes, expected.blocks[l].src_nodes);
      EXPECT_EQ(actual.blocks[l].indptr, expected.blocks[l].indptr);
      EXPECT_EQ(actual.blocks[l].indices, expected.blocks[l].indices);
      EXPECT_EQ(actual.blocks[l].src_degrees, expected.blocks[l].src_degrees);
    }
  }
}

TEST(OverlaySampler, DistributionMatchesRebuiltCsrWithinTolerance) {
  // Star: vertex 0 with 5 base neighbors and 5 overlay neighbors; a
  // fanout-3 sample must hit every neighbor with probability 3/10,
  // matching a sampler over the rebuilt 10-neighbor CSR.
  const VertexId n = 11;
  std::vector<std::pair<VertexId, VertexId>> base_edges;
  for (VertexId v = 1; v <= 5; ++v) base_edges.emplace_back(0, v);
  Dataset ds;
  ds.graph = build_csr(n, base_edges);
  ds.features.resize(n, 4);
  ds.labels.assign(static_cast<std::size_t>(n), 0);
  ds.info.f0 = 4;
  ds.info.f2 = 2;

  StreamingGraph graph(ds);
  for (VertexId v = 6; v <= 10; ++v) ASSERT_TRUE(graph.add_edge(0, v));
  const auto version = graph.publish();
  ASSERT_EQ(version->degree(0), 10);

  std::vector<std::pair<VertexId, VertexId>> union_edges = base_edges;
  for (VertexId v = 6; v <= 10; ++v) union_edges.emplace_back(0, v);
  const CsrGraph rebuilt = build_csr(n, union_edges);

  constexpr int kTrials = 20000;
  OverlaySampler overlay(version, {3}, 0);
  NeighborSampler reference(rebuilt, {3}, 0);
  std::map<VertexId, int> overlay_counts;
  std::map<VertexId, int> rebuilt_counts;
  for (int t = 0; t < kTrials; ++t) {
    overlay.reseed(static_cast<std::uint64_t>(t));
    reference.reseed(static_cast<std::uint64_t>(t));
    const MiniBatch o = overlay.sample({0});
    const MiniBatch r = reference.sample({0});
    const LayerBlock& ob = o.blocks[0];
    for (EdgeId e = ob.indptr[0]; e < ob.indptr[1]; ++e) {
      ++overlay_counts[ob.src_nodes[static_cast<std::size_t>(
          ob.indices[static_cast<std::size_t>(e)])]];
    }
    const LayerBlock& rb = r.blocks[0];
    for (EdgeId e = rb.indptr[0]; e < rb.indptr[1]; ++e) {
      ++rebuilt_counts[rb.src_nodes[static_cast<std::size_t>(
          rb.indices[static_cast<std::size_t>(e)])]];
    }
  }
  const double expected = 3.0 / 10.0 * kTrials;
  for (VertexId v = 1; v <= 10; ++v) {
    EXPECT_NEAR(overlay_counts[v], expected, expected * 0.08) << "neighbor " << v;
    EXPECT_NEAR(overlay_counts[v], rebuilt_counts[v], expected * 0.08) << "neighbor " << v;
  }
}

TEST(OverlaySampler, SrcDegreesReportCombinedDegree) {
  StreamingGraph graph(two_component_dataset());
  ASSERT_TRUE(graph.add_edge(0, 5));
  const auto version = graph.publish();
  OverlaySampler sampler(version, {16}, 3);
  const MiniBatch mb = sampler.sample({0});
  ASSERT_FALSE(mb.blocks.empty());
  const LayerBlock& block = mb.blocks[0];
  ASSERT_EQ(block.src_nodes[0], 0);
  EXPECT_EQ(block.src_degrees[0], 3);  // ring degree 2 + streamed edge
}

TEST(OverlaySampler, SampleFullOverlayTakesEveryNeighbor) {
  StreamingGraph graph(two_component_dataset());
  ASSERT_TRUE(graph.add_edge(0, 5));
  ASSERT_TRUE(graph.add_edge(0, 7));
  const auto version = graph.publish();
  const MiniBatch mb = sample_full_overlay(*version, {0}, 1);
  const LayerBlock& block = mb.blocks[0];
  std::vector<VertexId> sampled;
  for (EdgeId e = block.indptr[0]; e < block.indptr[1]; ++e) {
    sampled.push_back(
        block.src_nodes[static_cast<std::size_t>(block.indices[static_cast<std::size_t>(e)])]);
  }
  std::sort(sampled.begin(), sampled.end());
  EXPECT_EQ(sampled, (std::vector<VertexId>{1, 5, 7, 19}));
}

// ------------------------------------------------------ streaming serving

TEST(StreamingServing, MatchesStaticServerBeforeAnyUpdates) {
  const Dataset& ds = community();
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);

  ServingConfig config;       // full neighborhood: exact logits
  config.num_workers = 1;
  InferenceServer static_server(ds, snapshot, config);
  StreamingGraph graph(ds);
  InferenceServer streaming_server(graph, snapshot, config);
  EXPECT_TRUE(streaming_server.streaming());

  const std::vector<VertexId> seeds = {1, 17, 33};
  const InferenceResult expected = static_server.infer(seeds);
  const InferenceResult actual = streaming_server.infer(seeds);
  EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(actual.logits, expected.logits), 0.0);
}

TEST(StreamingServing, QueriesSeePublishedUpdates) {
  Dataset ds = two_component_dataset();
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);

  ServingConfig config;
  config.num_workers = 1;
  StreamingGraph graph(ds);
  InferenceServer server(graph, snapshot, config);

  const std::vector<VertexId> seeds = {0};
  const InferenceResult before = server.infer(seeds);
  ASSERT_TRUE(graph.add_edge(0, 10));
  graph.publish();
  // Fold the overlay so adjacency enumeration matches a one-shot build,
  // then the served logits must EXACTLY equal a static server over the
  // updated graph.
  ASSERT_TRUE(graph.compact());
  const InferenceResult after = server.infer(seeds);
  EXPECT_GT(Tensor::max_abs_diff(after.logits, before.logits), 0.0);

  std::vector<std::pair<VertexId, VertexId>> union_edges;
  for (VertexId v = 0; v < ds.graph.num_vertices(); ++v) {
    for (VertexId u : ds.graph.neighbors(v)) union_edges.emplace_back(v, u);
  }
  union_edges.emplace_back(0, 10);
  Dataset updated = two_component_dataset();
  updated.graph = build_csr(ds.graph.num_vertices(), std::move(union_edges));
  InferenceServer reference(updated, snapshot, config);
  const InferenceResult expected = reference.infer(seeds);
  EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(after.logits, expected.logits), 0.0);
}

TEST(StreamingServing, CompactionPreservesExactLogitsForUnchangedVertices) {
  Dataset ds = two_component_dataset();
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);

  ServingConfig config;  // full neighborhood: deterministic by construction
  config.num_workers = 2;
  StreamingGraph graph(ds);
  InferenceServer server(graph, snapshot, config);

  // Mutate component A only (vertices < 20).
  ASSERT_TRUE(graph.add_edge(0, 5));
  ASSERT_TRUE(graph.add_edge(3, 11));
  ASSERT_TRUE(graph.add_edge(8, 14));
  graph.publish();

  // Component B (vertices >= 20) is untouched at ANY hop distance.
  const std::vector<VertexId> unchanged = {25, 31, 38};
  const InferenceResult before = server.infer(unchanged);
  ASSERT_TRUE(graph.compact());
  const InferenceResult after = server.infer(unchanged);
  EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(after.logits, before.logits), 0.0);

  // Changed vertices still serve valid (finite) logits.
  const InferenceResult changed = server.infer({0, 3});
  for (float x : changed.logits.flat()) EXPECT_TRUE(std::isfinite(x));
}

TEST(StreamingServing, CacheInvalidationPreventsStaleFeatures) {
  Dataset ds = two_component_dataset();
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);

  ServingConfig config;
  config.num_workers = 1;
  config.cache_capacity_rows = ds.graph.num_vertices();  // everything pinned
  StreamingGraph graph(ds);
  InferenceServer server(graph, snapshot, config);

  const std::vector<VertexId> seeds = {22};
  const InferenceResult before = server.infer(seeds);

  // Rewrite the features of the seed and its ring neighbors.
  Xoshiro256 rng(4242);
  Dataset updated = two_component_dataset();
  for (VertexId v : {21, 22, 23}) {
    std::vector<float> row(8);
    for (float& x : row) x = static_cast<float>(rng.normal());
    graph.update_feature(v, row);
    std::copy(row.begin(), row.end(), updated.features.row(v).begin());
  }

  const InferenceResult after = server.infer(seeds);
  EXPECT_GT(Tensor::max_abs_diff(after.logits, before.logits), 0.0);

  // Freshness is exact: identical to a static server over the updated
  // dataset (all rows pinned, so every gather goes through the device
  // copies the invalidation hook refreshed).
  InferenceServer reference(updated, snapshot, config);
  const InferenceResult expected = reference.infer(seeds);
  EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(after.logits, expected.logits), 0.0);
  EXPECT_EQ(server.cache()->invalidations(), 3);
  EXPECT_GT(server.cache()->since_invalidate().hits, 0);
}

TEST(FeatureCacheInvalidate, RefreshesDeviceRowsAndResetsWindow) {
  const Dataset& ds = community();
  Tensor features = ds.features;  // mutable host copy
  StaticFeatureCache cache(ds.graph, features, ds.graph.num_vertices());

  std::vector<float> fresh(static_cast<std::size_t>(features.cols()), 7.5f);
  std::vector<float> out(static_cast<std::size_t>(features.cols()));
  NeighborSampler sampler(ds.graph, {3}, 1);
  Tensor x;
  cache.load(sampler.sample({3}), x);  // pre-invalidation traffic
  // Host mutation alone leaves the device copy stale…
  std::copy(fresh.begin(), fresh.end(), features.row(3).begin());
  ASSERT_TRUE(cache.copy_if_cached(3, out));
  EXPECT_NE(out[0], 7.5f);
  // …invalidate refreshes it.
  const VertexId ids[1] = {3};
  EXPECT_EQ(cache.invalidate(std::span<const VertexId>(ids, 1)), 1);
  ASSERT_TRUE(cache.copy_if_cached(3, out));
  for (float x : out) EXPECT_FLOAT_EQ(x, 7.5f);

  EXPECT_EQ(cache.invalidations(), 1);
  EXPECT_EQ(cache.invalidated_rows(), 1);
  EXPECT_EQ(cache.since_invalidate().hits, 0);  // window reset
  cache.load(sampler.sample({3}), x);
  EXPECT_GT(cache.since_invalidate().hits, 0);
  EXPECT_GT(cache.totals().hits, cache.since_invalidate().hits);
}

TEST(ServingStats, SplitsQueueWaitFromCompute) {
  ServingStats stats;
  stats.record_completion(/*latency=*/0.010, /*queue_wait=*/0.004);
  stats.record_completion(/*latency=*/0.020, /*queue_wait=*/0.012);
  const ServingSnapshot s = stats.snapshot();
  EXPECT_DOUBLE_EQ(s.latency_mean, 0.015);
  EXPECT_DOUBLE_EQ(s.queue_wait_mean, 0.008);
  EXPECT_DOUBLE_EQ(s.compute_mean, 0.007);
  EXPECT_DOUBLE_EQ(s.queue_wait_max, 0.012);
  EXPECT_DOUBLE_EQ(s.queue_wait_p50, 0.004);
  EXPECT_DOUBLE_EQ(s.queue_wait_p99, 0.012);
  stats.reset();
  EXPECT_DOUBLE_EQ(stats.snapshot().queue_wait_mean, 0.0);
}

// -------------------------------------------------------------- tombstones

TEST(Tombstones, DoubleDeleteOfBaseEdgeIsRejected) {
  StreamingGraph graph(two_component_dataset());
  ASSERT_TRUE(graph.remove_edge(0, 1));   // base ring edge
  EXPECT_FALSE(graph.remove_edge(0, 1));  // double delete
  EXPECT_FALSE(graph.remove_edge(1, 0));  // reverse direction is the same edge
  EXPECT_FALSE(graph.remove_edge(0, 5));  // never existed
  const StreamStats stats = graph.stats();
  EXPECT_EQ(stats.removed_edges, 2);  // one undirected edge, both directions
  EXPECT_EQ(stats.rejected_removals, 3);
  const auto version = graph.publish();
  EXPECT_EQ(version->degree(0), 1);  // ring degree 2 minus the retraction
  EXPECT_EQ(version->num_edges(), two_component_dataset().graph.num_edges() - 2);
  EXPECT_TRUE(version->validate());
}

TEST(Tombstones, DeletingPendingInsertionCancelsIt) {
  StreamingGraph graph(two_component_dataset());
  ASSERT_TRUE(graph.add_edge(0, 5));     // pending, never published
  ASSERT_TRUE(graph.remove_edge(0, 5));  // retract before any publish
  EXPECT_FALSE(graph.remove_edge(0, 5));
  const auto version = graph.publish();
  // The pair cancelled: no net overlay, no tombstone, original topology.
  EXPECT_EQ(version->overlay_edges(), 0);
  EXPECT_EQ(version->removed_edges(), 0);
  EXPECT_EQ(version->num_edges(), two_component_dataset().graph.num_edges());
  EXPECT_EQ(version->degree(0), 2);
  EXPECT_TRUE(version->validate());
  // A cancelled pair must also fold to a no-op.
  ASSERT_TRUE(graph.compact());
  EXPECT_EQ(graph.current()->num_edges(), two_component_dataset().graph.num_edges());
}

TEST(Tombstones, DeleteThenReinsertAcrossCompactionBoundary) {
  // DeltaStore-level: deterministic interleaving of a retraction whose
  // snapshot is mid-compaction when the re-insert arrives.
  auto base = shared_csr(4, {{0, 1}});  // symmetrized: 0-1 both directions
  DeltaStore store(base);
  ASSERT_EQ(store.remove_edge_pair(0, 1), 2);
  const DeltaStore::Snapshot snap = store.snapshot(/*advance_epoch=*/true);
  EXPECT_EQ(snap.num_removes, 2);

  // Re-insert lands while the compactor is still folding the tombstone.
  ASSERT_EQ(store.add_edge_pair(0, 1), 2);

  // Compactor folds the captured prefix: tombstone drops the base edge.
  auto merged = shared_csr(4, {});
  store.rebase(merged, snap.epoch);

  // The post-snapshot insert survived the truncate and now applies
  // against the merged (edge-less) base: the edge is live again.
  const DeltaStore::Snapshot after = store.snapshot(false);
  EXPECT_EQ(after.num_inserts, 2);
  EXPECT_EQ(after.num_removes, 0);
  // ...and is a duplicate for further inserts, but removable.
  EXPECT_EQ(store.add_edge_pair(0, 1), 0);
  EXPECT_EQ(store.remove_edge_pair(0, 1), 2);
}

TEST(Tombstones, DeleteThenReinsertRoundTripMatchesRebuild) {
  const Dataset ds = two_component_dataset();
  StreamingGraph graph(ds);
  ASSERT_TRUE(graph.remove_edge(3, 4));
  ASSERT_TRUE(graph.compact());  // fold the tombstone into a fresh base
  ASSERT_TRUE(graph.add_edge(3, 4));  // reinsert across the boundary
  ASSERT_TRUE(graph.compact());
  // Round trip: identical to a one-shot build of the original topology.
  const auto version = graph.current();
  EXPECT_EQ(version->base().indptr(), ds.graph.indptr());
  EXPECT_EQ(version->base().indices(), ds.graph.indices());
  EXPECT_TRUE(version->validate());
}

TEST(Tombstones, DeletingLastEdgeIsolatesVertex) {
  StreamingGraph graph(two_component_dataset());
  // Vertex 0's ring edges are {0,1} and {0,19}.
  ASSERT_TRUE(graph.remove_edge(0, 1));
  ASSERT_TRUE(graph.remove_edge(19, 0));
  const auto version = graph.publish();
  EXPECT_EQ(version->degree(0), 0);
  EXPECT_TRUE(version->alive(0));  // isolated, not dead
  std::vector<VertexId> live;
  version->append_neighbors(0, live);
  EXPECT_TRUE(live.empty());
  // Sampling an isolated vertex yields an empty neighborhood, not an error.
  OverlaySampler sampler(version, {4}, 7);
  const MiniBatch mb = sampler.sample({0});
  EXPECT_EQ(mb.blocks[0].indptr, (std::vector<EdgeId>{0, 0}));
  EXPECT_EQ(mb.blocks[0].src_degrees[0], 0);
  // The isolated vertex survives compaction (ids are stable handles).
  ASSERT_TRUE(graph.compact());
  EXPECT_EQ(graph.current()->num_vertices(), 40);
  EXPECT_EQ(graph.current()->degree(0), 0);
  EXPECT_TRUE(graph.current()->validate());
}

TEST(Tombstones, RemoveVertexRetractsBothDirectionsAndMarksDead) {
  const Dataset ds = two_component_dataset();
  StreamingGraph graph(ds);
  ASSERT_TRUE(graph.remove_vertex(0));
  EXPECT_FALSE(graph.remove_vertex(0));        // already dead
  EXPECT_FALSE(graph.add_edge(0, 5));          // dead endpoints reject edge ops
  EXPECT_FALSE(graph.remove_edge(1, 0));       // its edges are already gone
  const auto version = graph.publish();
  EXPECT_FALSE(version->alive(0));
  EXPECT_EQ(version->num_dead(), 1);
  EXPECT_EQ(version->degree(0), 0);
  EXPECT_EQ(version->degree(1), 1);   // lost its edge to 0
  EXPECT_EQ(version->degree(19), 1);
  EXPECT_EQ(version->num_edges(), ds.graph.num_edges() - 4);
  EXPECT_TRUE(version->validate());
  // The feature row is zeroed so the retracted entity gathers zeros.
  Tensor out;
  const VertexId nodes[1] = {0};
  graph.gather(std::span<const VertexId>(nodes, 1), out);
  for (std::int64_t j = 0; j < out.cols(); ++j) EXPECT_FLOAT_EQ(out.at(0, j), 0.0f);
}

TEST(Tombstones, StreamedVertexIdIsRecycledAfterCompaction) {
  StreamingGraph graph(two_component_dataset());
  std::vector<float> row(8, 1.0f);
  const VertexId v = graph.add_vertex(row);
  ASSERT_EQ(v, 40);
  ASSERT_TRUE(graph.add_edge(v, 0));
  ASSERT_TRUE(graph.add_edge(v, 25));
  ASSERT_TRUE(graph.remove_vertex(v));
  // Not recyclable until a compaction folds the death.
  std::vector<float> other(8, 2.0f);
  const VertexId fresh = graph.add_vertex(other);
  EXPECT_EQ(fresh, 41);
  ASSERT_TRUE(graph.compact());
  EXPECT_TRUE(graph.current()->validate());
  EXPECT_EQ(graph.current()->degree(0), 2);  // v's attachment edges folded away

  // Now the dead id comes back with a fresh feature row.
  std::vector<float> recycled_row(8, 3.0f);
  const VertexId recycled = graph.add_vertex(recycled_row);
  EXPECT_EQ(recycled, v);
  EXPECT_EQ(graph.stats().recycled_vertices, 1);
  const auto version = graph.publish();
  EXPECT_TRUE(version->alive(v));
  EXPECT_EQ(version->degree(v), 0);
  Tensor out;
  const VertexId nodes[1] = {v};
  graph.gather(std::span<const VertexId>(nodes, 1), out);
  for (std::int64_t j = 0; j < 8; ++j) EXPECT_FLOAT_EQ(out.at(0, j), 3.0f);
  // Dataset vertices are never recycled: retire a base vertex, compact,
  // and the next add still grows the space.
  ASSERT_TRUE(graph.remove_vertex(7));
  ASSERT_TRUE(graph.compact());
  EXPECT_EQ(graph.add_vertex(row), 42);
}

TEST(Tombstones, AsymmetricRemoveVertexRetractsOnlyLiveDirections) {
  // Directed (asymmetric) ingest: retiring a vertex with a one-way
  // pending out-edge must not tombstone the non-existent reverse — a
  // tombstone for a non-edge would reduce to a phantom insertion.
  StreamingConfig config;
  config.symmetric = false;
  const Dataset ds = two_component_dataset();
  StreamingGraph graph(ds, config);
  ASSERT_TRUE(graph.add_edge(5, 7));  // directed 5 -> 7 only
  ASSERT_TRUE(graph.remove_vertex(5));
  const auto version = graph.publish();
  // Retracted: out-edges 5->4, 5->6, 5->7 plus live reverses 4->5, 6->5.
  EXPECT_EQ(graph.stats().removed_edges, 5);
  EXPECT_EQ(version->degree(5), 0);
  EXPECT_EQ(version->degree(7), 2);  // ring neighbors 6, 8 — no phantom 7->5
  std::vector<VertexId> live;
  version->append_neighbors(7, live);
  EXPECT_EQ(live, (std::vector<VertexId>{6, 8}));
  EXPECT_EQ(version->num_edges(), ds.graph.num_edges() + 1 - 5);
  EXPECT_TRUE(version->validate());
  ASSERT_TRUE(graph.compact());
  EXPECT_TRUE(graph.current()->validate());
  EXPECT_EQ(graph.current()->num_edges(), ds.graph.num_edges() + 1 - 5);

  // A dangling directed in-edge of a dead vertex stays retractable —
  // removals are decided by membership, not endpoint liveness.
  ASSERT_TRUE(graph.add_edge(8, 10));          // directed, not a ring edge
  ASSERT_TRUE(graph.remove_vertex(10));        // 8 -> 10 is not discoverable from 10
  EXPECT_TRUE(graph.remove_edge(8, 10));       // ...but cleanup is still possible
  EXPECT_FALSE(graph.remove_edge(8, 10));
  EXPECT_FALSE(graph.add_edge(8, 10));         // re-insert to a dead vertex stays rejected

  // Directed ingest cannot prove a retirement scrubbed every in-edge,
  // so ids are never recycled in asymmetric mode.
  std::vector<float> row(8, 1.0f);
  const VertexId streamed = graph.add_vertex(row);
  ASSERT_TRUE(graph.remove_vertex(streamed));
  EXPECT_FALSE(graph.has_pending_scrubs());
  ASSERT_TRUE(graph.compact());
  EXPECT_EQ(graph.add_vertex(row), streamed + 1);  // fresh id, no reuse
}

TEST(Tombstones, DeadVertexRefusesFeatureUpdates) {
  StreamingGraph graph(two_component_dataset());
  std::vector<float> fresh(8, 9.0f);
  ASSERT_TRUE(graph.remove_vertex(3));
  EXPECT_FALSE(graph.update_feature(3, fresh));  // retracted entity stays zeroed
  EXPECT_TRUE(graph.update_feature(4, fresh));
  Tensor out;
  const VertexId nodes[2] = {3, 4};
  graph.gather(std::span<const VertexId>(nodes, 2), out);
  for (std::int64_t j = 0; j < 8; ++j) {
    EXPECT_FLOAT_EQ(out.at(0, j), 0.0f);
    EXPECT_FLOAT_EQ(out.at(1, j), 9.0f);
  }
  EXPECT_EQ(graph.stats().feature_updates, 1);  // the rejected write is not counted
}

TEST(Tombstones, CompactorFoldsOpLessRetirementForRecycling) {
  // Retiring an already-isolated streamed-in vertex appends zero edge
  // ops; the background compactor must still fold it (pending-scrub
  // trigger) or the id and feature row would never be recycled.
  StreamingGraph graph(two_component_dataset());
  std::vector<float> row(8, 1.5f);
  const VertexId v = graph.add_vertex(row);  // no edges: already isolated
  ASSERT_TRUE(graph.compact());              // fold the vertex-space growth
  ASSERT_TRUE(graph.remove_vertex(v));       // op-less retirement
  EXPECT_EQ(graph.overlay_ops(), 0);
  EXPECT_TRUE(graph.has_pending_scrubs());

  CompactionPolicy policy;
  policy.max_overlay_edges = 1 << 20;  // unreachable: only the scrub trigger fires
  policy.max_overlay_ratio = 1e9;
  policy.poll_interval = 5e-4;
  Compactor compactor(graph, policy);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (graph.has_pending_scrubs() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  compactor.stop();
  EXPECT_FALSE(graph.has_pending_scrubs());
  EXPECT_GE(compactor.compactions(), 1);
  // The id is recyclable now.
  std::vector<float> fresh(8, 2.5f);
  EXPECT_EQ(graph.add_vertex(fresh), v);
  EXPECT_EQ(graph.stats().recycled_vertices, 1);
}

TEST(Tombstones, SamplerSkipsTombstonesWithCorrectDistribution) {
  // Star: vertex 0 with 8 base neighbors; delete 3 and insert 2, so the
  // live adjacency is 7 wide.  A fanout-3 sample must hit every LIVE
  // neighbor with probability 3/7 and a deleted neighbor never, exactly
  // like a sampler over the rebuilt 7-neighbor CSR.
  const VertexId n = 11;
  std::vector<std::pair<VertexId, VertexId>> base_edges;
  for (VertexId v = 1; v <= 8; ++v) base_edges.emplace_back(0, v);
  Dataset ds;
  ds.graph = build_csr(n, base_edges);
  ds.features.resize(n, 4);
  ds.labels.assign(static_cast<std::size_t>(n), 0);
  ds.info.f0 = 4;
  ds.info.f2 = 2;

  StreamingGraph graph(ds);
  for (VertexId v : {2, 5, 7}) ASSERT_TRUE(graph.remove_edge(0, v));
  for (VertexId v : {9, 10}) ASSERT_TRUE(graph.add_edge(0, v));
  const auto version = graph.publish();
  ASSERT_EQ(version->degree(0), 7);

  std::vector<std::pair<VertexId, VertexId>> live_edges;
  for (VertexId v : {1, 3, 4, 6, 8, 9, 10}) live_edges.emplace_back(VertexId{0}, v);
  const CsrGraph rebuilt = build_csr(n, live_edges);

  constexpr int kTrials = 20000;
  OverlaySampler overlay(version, {3}, 0);
  NeighborSampler reference(rebuilt, {3}, 0);
  std::map<VertexId, int> overlay_counts;
  std::map<VertexId, int> rebuilt_counts;
  for (int t = 0; t < kTrials; ++t) {
    overlay.reseed(static_cast<std::uint64_t>(t));
    reference.reseed(static_cast<std::uint64_t>(t));
    const MiniBatch o = overlay.sample({0});
    const LayerBlock& ob = o.blocks[0];
    for (EdgeId e = ob.indptr[0]; e < ob.indptr[1]; ++e) {
      ++overlay_counts[ob.src_nodes[static_cast<std::size_t>(
          ob.indices[static_cast<std::size_t>(e)])]];
    }
    const MiniBatch r = reference.sample({0});
    const LayerBlock& rb = r.blocks[0];
    for (EdgeId e = rb.indptr[0]; e < rb.indptr[1]; ++e) {
      ++rebuilt_counts[rb.src_nodes[static_cast<std::size_t>(
          rb.indices[static_cast<std::size_t>(e)])]];
    }
  }
  const double expected = 3.0 / 7.0 * kTrials;
  for (VertexId v : {1, 3, 4, 6, 8, 9, 10}) {
    EXPECT_NEAR(overlay_counts[v], expected, expected * 0.08) << "neighbor " << v;
    // Identical live adjacency + identical RNG discipline: the overlay
    // sample is bit-identical to the rebuilt sample, not just close.
    EXPECT_EQ(overlay_counts[v], rebuilt_counts[v]) << "neighbor " << v;
  }
  for (VertexId v : {2, 5, 7}) EXPECT_EQ(overlay_counts[v], 0) << "tombstoned neighbor " << v;
}

TEST(FeatureCacheEvict, DeletedVertexIsNeverServedFromCache) {
  // Regression: remove_vertex must evict the pinned device row, not
  // just rely on invalidate-from-update_feature — otherwise a query for
  // the retracted entity is served its stale pinned features.
  Dataset ds = two_component_dataset();
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);

  ServingConfig config;  // full neighborhood: exact logits
  config.num_workers = 1;
  config.cache_capacity_rows = ds.graph.num_vertices();  // everything pinned
  StreamingGraph graph(ds);
  InferenceServer server(graph, snapshot, config);

  ASSERT_TRUE(server.cache()->cached(21));
  ASSERT_TRUE(graph.remove_vertex(21));
  graph.publish();
  EXPECT_FALSE(server.cache()->cached(21));
  EXPECT_EQ(server.cache()->evictions(), 1);

  // Reference: a static server over the dataset with 21's edges dropped
  // and its feature row zeroed — what a correct retraction must serve.
  Dataset updated = two_component_dataset();
  std::vector<std::pair<VertexId, VertexId>> live;
  for (VertexId v = 0; v < ds.graph.num_vertices(); ++v) {
    if (v == 21) continue;
    for (VertexId u : ds.graph.neighbors(v)) {
      if (u != 21) live.emplace_back(v, u);
    }
  }
  EdgeListOptions options;
  options.symmetrize = false;
  updated.graph = build_csr(ds.graph.num_vertices(), std::move(live), options);
  for (std::int64_t j = 0; j < updated.features.cols(); ++j) updated.features.at(21, j) = 0.0f;
  InferenceServer reference(updated, snapshot, config);

  // The dead vertex itself and its ex-neighbors must match exactly.
  for (const std::vector<VertexId>& seeds :
       {std::vector<VertexId>{21}, std::vector<VertexId>{20, 22}}) {
    const InferenceResult actual = server.infer(seeds);
    const InferenceResult expected = reference.infer(seeds);
    EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(actual.logits, expected.logits), 0.0);
  }
}

// ----------------------------------------------- compactor + update driver

TEST(Compactor, BackgroundThreadFoldsOverlayPastThreshold) {
  StreamingGraph graph(community());
  CompactionPolicy policy;
  policy.max_overlay_edges = 64;
  policy.max_overlay_ratio = 1e9;  // size-triggered only
  policy.poll_interval = 5e-4;
  Compactor compactor(graph, policy);

  Xoshiro256 rng(7);
  const VertexId n = graph.num_vertices();
  for (int i = 0; i < 600; ++i) {
    graph.add_edge(static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n))),
                   static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n))));
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (graph.overlay_edges() >= policy.max_overlay_edges &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  compactor.stop();
  EXPECT_GE(compactor.compactions(), 1);
  EXPECT_LT(graph.overlay_edges(), policy.max_overlay_edges);
  EXPECT_TRUE(graph.current()->validate());
}

TEST(UpdateGenerator, ReportMatchesGraphCounters) {
  StreamingGraph graph(community());
  UpdateGeneratorConfig config;
  config.operations = 300;
  config.num_threads = 2;
  config.publish_every = 32;
  config.edge_delete_fraction = 0.20;
  config.vertex_delete_fraction = 0.05;
  config.seed = 5;
  UpdateGenerator generator(graph, config);
  const UpdateReport report = generator.run();

  EXPECT_EQ(report.operations, 300);
  const StreamStats stats = graph.stats();
  EXPECT_EQ(stats.ingested_edges, report.accepted_edges);
  EXPECT_EQ(stats.removed_edges, report.removed_edges);
  EXPECT_EQ(stats.rejected_removals, report.rejected_removals);
  EXPECT_EQ(stats.added_vertices, report.added_vertices);
  EXPECT_EQ(stats.removed_vertices, report.removed_vertices);
  EXPECT_EQ(stats.feature_updates, report.feature_updates);
  EXPECT_EQ(stats.publishes, report.publishes);
  EXPECT_GT(report.removed_edges, 0);
  EXPECT_GT(report.edges_per_second, 0.0);
  EXPECT_GT(stats.publish_lag_max, 0.0);
  // Everything accepted is visible after the trailing publish, and
  // every accepted retraction took exactly one directed edge back out.
  EXPECT_EQ(graph.current()->num_edges(),
            community().graph.num_edges() + report.accepted_edges - report.removed_edges);
  EXPECT_TRUE(graph.current()->validate());
}

TEST(StreamingSession, FacadeServesMixedLoadEndToEnd) {
  const Dataset& ds = community();
  HybridTrainerConfig train_config;
  train_config.fanouts = {4, 4};
  train_config.real_batch_total = 64;
  train_config.real_iterations_cap = 1;
  HyScale system(ds, cpu_fpga_platform(2), train_config);
  system.train_epoch();

  ServingConfig serving;
  serving.fanouts = {4, 4};
  serving.num_workers = 2;
  serving.cache_capacity_rows = 32;
  CompactionPolicy compaction;
  compaction.max_overlay_edges = 128;
  StreamingSession session = system.stream(serving, {}, compaction);

  UpdateGeneratorConfig updates;
  updates.operations = 150;
  updates.publish_every = 16;
  UpdateGenerator update_generator(session.stream(), updates);
  UpdateReport update_report;
  std::thread update_thread([&] { update_report = update_generator.run(); });

  LoadGeneratorConfig load;
  load.num_clients = 3;
  load.requests_per_client = 20;
  load.seeds_per_request = 2;
  LoadGenerator generator(*session.server, ds, load);
  const LoadReport report = generator.run();
  update_thread.join();

  EXPECT_EQ(report.completed_requests, 60);
  EXPECT_GT(update_report.accepted_edges, 0);
  EXPECT_GT(report.server.completed_batches, 0);
  EXPECT_TRUE(session.stream().current()->validate());
  // Queue wait and compute are both populated and bounded by latency.
  EXPECT_GE(report.server.queue_wait_mean, 0.0);
  EXPECT_GT(report.server.compute_mean, 0.0);
  EXPECT_LE(report.server.queue_wait_mean, report.server.latency_mean);
}

}  // namespace
}  // namespace hyscale
