// Cross-module integration tests: end-to-end relations the paper's
// evaluation depends on, exercised through the public API.
#include <gtest/gtest.h>

#include "baselines/distdgl.hpp"
#include "baselines/pagraph.hpp"
#include "baselines/pyg.hpp"
#include "core/hyscale.hpp"

namespace hyscale {
namespace {

const Dataset& products() {
  static const Dataset ds = [] {
    MaterializeOptions options;
    options.target_vertices = 1 << 11;
    options.label_signal = false;
    return materialize_dataset("ogbn-products", options);
  }();
  return ds;
}

Seconds hyscale_fpga_epoch(const Dataset& ds, GnnKind kind, std::vector<int> fanouts) {
  HybridTrainerConfig config;
  config.model_kind = kind;
  config.fanouts = std::move(fanouts);
  config.real_compute = false;
  HybridTrainer trainer(ds, cpu_fpga_platform(4), config);
  trainer.train_epoch();
  return trainer.train_epoch().epoch_time;
}

TEST(CrossSystem, HyScaleFpgaBeatsPygBaseline) {
  // The Fig. 10 headline relation, end to end through the public API.
  PygMultiGpuBaseline pyg(cpu_gpu_platform(4));
  BaselineWorkload w;
  w.dataset = products().info;
  w.model = GnnKind::kGcn;
  const Seconds baseline = pyg.evaluate(w).epoch_time;
  const Seconds ours = hyscale_fpga_epoch(products(), GnnKind::kGcn, {25, 10});
  EXPECT_GT(baseline / ours, 4.0);   // paper: 8.87x; require the win
  EXPECT_LT(baseline / ours, 40.0);  // ...but not absurdly so
}

TEST(CrossSystem, HyScaleBeatsPaGraphModel) {
  // Table VI sign: faster than PaGraph in PaGraph's configuration.
  PaGraphBaseline pagraph;
  BaselineWorkload w;
  w.dataset = products().info;
  w.model = GnnKind::kGcn;
  const Seconds baseline = pagraph.evaluate(w).epoch_time;
  const Seconds ours = hyscale_fpga_epoch(products(), GnnKind::kGcn, {25, 10});
  EXPECT_GT(baseline / ours, 1.0);
}

TEST(CrossSystem, DistDglSixtyFourGpusBeatsFourFpgas) {
  // Table VI sign: DistDGLv2 on 64 T4s WINS against 4 FPGAs (paper:
  // HyScale reaches only 0.45x of its performance).
  DistDglBaseline distdgl;
  BaselineWorkload w;
  w.dataset = products().info;
  w.model = GnnKind::kSage;
  w.fanouts = {15, 10, 5};
  const Seconds baseline = distdgl.evaluate(w).epoch_time;
  const Seconds ours = hyscale_fpga_epoch(products(), GnnKind::kSage, {15, 10, 5});
  EXPECT_LT(baseline, ours);
}

TEST(CrossSystem, ScalabilitySaturatesButNeverRegressesMuch) {
  // Fig. 9 shape: speedup grows to 8 accelerators; at 16 it may
  // saturate but must not collapse below the 8-accelerator level by
  // more than a small margin.
  auto epoch_at = [&](int k) {
    HybridTrainerConfig config;
    config.real_compute = false;
    HybridTrainer trainer(products(), cpu_fpga_platform(k), config);
    trainer.train_epoch();
    return trainer.train_epoch().epoch_time;
  };
  const Seconds e1 = epoch_at(1);
  const Seconds e4 = epoch_at(4);
  const Seconds e8 = epoch_at(8);
  const Seconds e16 = epoch_at(16);
  EXPECT_GT(e1 / e4, 2.0);
  EXPECT_GT(e1 / e8, e1 / e4);
  EXPECT_GT(e1 / e16, 0.85 * (e1 / e8));
}

TEST(CrossSystem, Fp16TransfersBetweenFp32AndInt8) {
  // Quantization monotonicity: epoch(int8) <= epoch(fp16) <= epoch(fp32)
  // on a transfer-sensitive configuration.
  auto epoch_with = [&](TransferPrecision precision) {
    HybridTrainerConfig config;
    config.model_kind = GnnKind::kGcn;
    config.real_compute = false;
    config.drm = false;
    config.transfer_precision = precision;
    HybridTrainer trainer(products(), cpu_fpga_platform(4), config);
    return trainer.train_epoch().epoch_time;
  };
  const Seconds fp32 = epoch_with(TransferPrecision::kFp32);
  const Seconds fp16 = epoch_with(TransferPrecision::kFp16);
  const Seconds int8 = epoch_with(TransferPrecision::kInt8);
  EXPECT_LE(fp16, fp32 * 1.001);
  EXPECT_LE(int8, fp16 * 1.001);
}

TEST(CrossSystem, ThroughputGrowsWithAccelerators) {
  ModelConfig model;
  model.kind = GnnKind::kGcn;
  model.dims = {100, 256, 47};
  double previous = 0.0;
  for (int k : {1, 2, 4}) {
    PerformanceModel pm(cpu_fpga_platform(k), model, products().info, {25, 10});
    const WorkloadAssignment w = initial_task_mapping(pm);
    const double mteps = pm.throughput_mteps(w, PipelineMode::kTwoStagePrefetch);
    EXPECT_GT(mteps, previous);
    previous = mteps;
  }
}

TEST(CrossSystem, TransferPrecisionSetterValidates) {
  ModelConfig model;
  model.kind = GnnKind::kGcn;
  model.dims = {100, 256, 47};
  PerformanceModel pm(cpu_fpga_platform(2), model, products().info, {25, 10});
  EXPECT_THROW(pm.set_transfer_bytes_per_element(0.0), std::invalid_argument);
  EXPECT_THROW(pm.set_transfer_bytes_per_element(8.0), std::invalid_argument);
  pm.set_transfer_bytes_per_element(2.0);
  EXPECT_DOUBLE_EQ(pm.transfer_bytes_per_element(), 2.0);
}

}  // namespace
}  // namespace hyscale
