// Cross-checks of mini-batch propagation against whole-graph semantics:
// with full-neighborhood sampling, the sampled computation graph must
// reproduce exactly the convolution over the whole graph restricted to
// the seeds (the "optimizations do not alter the semantics" claim, §IV).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generator.hpp"
#include "nn/model.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "tensor/init.hpp"

namespace hyscale {
namespace {

// Dense whole-graph GCN layer reference: for each vertex,
// a_v = sum_{u in N(v) u {v}} h_u / sqrt((d_u+1)(d_v+1)), h' = a W + b
// with TRUE graph degrees (full sampling makes block-local == true).
Tensor whole_graph_gcn(const CsrGraph& g, const Tensor& h, const Tensor& w, const Tensor& b,
                       bool relu) {
  Tensor out(g.num_vertices(), w.cols());
  Tensor agg(g.num_vertices(), h.cols());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const double nv = 1.0 / std::sqrt(static_cast<double>(g.degree(v)) + 1.0);
    float* row = agg.data() + v * h.cols();
    const float* self = h.data() + v * h.cols();
    for (std::int64_t j = 0; j < h.cols(); ++j)
      row[j] = static_cast<float>(nv * nv) * self[j];
    for (VertexId u : g.neighbors(v)) {
      const double nu = 1.0 / std::sqrt(static_cast<double>(g.degree(u)) + 1.0);
      const auto weight = static_cast<float>(nv * nu);
      const float* src = h.data() + u * h.cols();
      for (std::int64_t j = 0; j < h.cols(); ++j) row[j] += weight * src[j];
    }
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (std::int64_t c = 0; c < w.cols(); ++c) {
      double acc = b.at(0, c);
      for (std::int64_t k = 0; k < h.cols(); ++k) {
        acc += static_cast<double>(agg.at(v, k)) * w.at(k, c);
      }
      out.at(v, c) = relu ? std::max(0.0f, static_cast<float>(acc)) : static_cast<float>(acc);
    }
  }
  return out;
}

TEST(FullGraphEquivalence, OneLayerGcnMatchesWholeGraph) {
  RmatParams params;
  params.scale = 6;
  params.edge_factor = 4;
  const CsrGraph g = generate_rmat(params);

  Tensor h(g.num_vertices(), 5);
  uniform_init(h, -1.0f, 1.0f, 3);

  ModelConfig config;
  config.kind = GnnKind::kGcn;
  config.dims = {5, 4};
  config.seed = 8;
  GnnModel model(config);

  std::vector<VertexId> seeds;
  for (VertexId v = 0; v < g.num_vertices() && seeds.size() < 10; ++v) seeds.push_back(v);
  const MiniBatch batch = sample_full(g, seeds, 1);

  // Gather X' over the batch's input nodes.
  Tensor x(batch.blocks.front().num_src(), 5);
  for (std::size_t i = 0; i < batch.input_nodes().size(); ++i) {
    const VertexId v = batch.input_nodes()[i];
    for (std::int64_t j = 0; j < 5; ++j) x.at(static_cast<std::int64_t>(i), j) = h.at(v, j);
  }
  const Tensor sampled_out = model.forward(batch, x);

  const auto params_list = model.parameters();
  const Tensor whole = whole_graph_gcn(g, h, params_list[0]->value, params_list[1]->value,
                                       /*relu=*/false);

  // BUT: the block-local degree of a dst equals its true degree only when
  // full sampling took every neighbor — which sample_full guarantees.
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (std::int64_t c = 0; c < sampled_out.cols(); ++c) {
      EXPECT_NEAR(sampled_out.at(static_cast<std::int64_t>(i), c), whole.at(seeds[i], c), 2e-4)
          << "seed " << i << " col " << c;
    }
  }
}

TEST(FullGraphEquivalence, TwoLayerGcnMatchesWholeGraph) {
  RmatParams params;
  params.scale = 5;
  params.edge_factor = 3;
  const CsrGraph g = generate_rmat(params);

  Tensor h(g.num_vertices(), 4);
  uniform_init(h, -1.0f, 1.0f, 5);

  ModelConfig config;
  config.kind = GnnKind::kGcn;
  config.dims = {4, 6, 3};
  config.seed = 12;
  GnnModel model(config);

  std::vector<VertexId> seeds = {0, 3, 7};
  const MiniBatch batch = sample_full(g, seeds, 2);
  Tensor x(batch.blocks.front().num_src(), 4);
  for (std::size_t i = 0; i < batch.input_nodes().size(); ++i) {
    const VertexId v = batch.input_nodes()[i];
    for (std::int64_t j = 0; j < 4; ++j) x.at(static_cast<std::int64_t>(i), j) = h.at(v, j);
  }
  const Tensor sampled_out = model.forward(batch, x);

  const auto p = model.parameters();
  const Tensor layer1 = whole_graph_gcn(g, h, p[0]->value, p[1]->value, /*relu=*/true);
  const Tensor whole = whole_graph_gcn(g, layer1, p[2]->value, p[3]->value, /*relu=*/false);

  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (std::int64_t c = 0; c < sampled_out.cols(); ++c) {
      EXPECT_NEAR(sampled_out.at(static_cast<std::int64_t>(i), c), whole.at(seeds[i], c), 5e-4);
    }
  }
}

TEST(FullGraphEquivalence, SageMeanMatchesWholeGraph) {
  RmatParams params;
  params.scale = 5;
  params.edge_factor = 4;
  const CsrGraph g = generate_rmat(params);
  Tensor h(g.num_vertices(), 3);
  uniform_init(h, -1.0f, 1.0f, 7);

  ModelConfig config;
  config.kind = GnnKind::kSage;
  config.dims = {3, 4};
  config.seed = 9;
  GnnModel model(config);

  std::vector<VertexId> seeds = {1, 2};
  const MiniBatch batch = sample_full(g, seeds, 1);
  Tensor x(batch.blocks.front().num_src(), 3);
  for (std::size_t i = 0; i < batch.input_nodes().size(); ++i) {
    const VertexId v = batch.input_nodes()[i];
    for (std::int64_t j = 0; j < 3; ++j) x.at(static_cast<std::int64_t>(i), j) = h.at(v, j);
  }
  const Tensor out = model.forward(batch, x);

  // Reference: [self || mean(neighbors)] W + b for each seed.
  const auto p = model.parameters();
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const VertexId v = seeds[i];
    std::vector<double> cat(6, 0.0);
    for (std::int64_t j = 0; j < 3; ++j) cat[static_cast<std::size_t>(j)] = h.at(v, j);
    const auto neighbors = g.neighbors(v);
    for (VertexId u : neighbors) {
      for (std::int64_t j = 0; j < 3; ++j)
        cat[static_cast<std::size_t>(3 + j)] += h.at(u, j);
    }
    if (!neighbors.empty()) {
      for (int j = 3; j < 6; ++j)
        cat[static_cast<std::size_t>(j)] /= static_cast<double>(neighbors.size());
    }
    for (std::int64_t c = 0; c < 4; ++c) {
      double acc = p[1]->value.at(0, c);
      for (int k = 0; k < 6; ++k)
        acc += cat[static_cast<std::size_t>(k)] * p[0]->value.at(k, c);
      EXPECT_NEAR(out.at(static_cast<std::int64_t>(i), c), acc, 2e-4);
    }
  }
}

}  // namespace
}  // namespace hyscale
