// Tests for runtime/: stage-time composition (Fig. 7 pipeline), the DRM
// engine (every Algorithm-1 branch), the training protocol handshake,
// the synchronizer, the performance model and the task mapper.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "graph/datasets.hpp"
#include "nn/model.hpp"
#include "runtime/drm.hpp"
#include "runtime/perf_model.hpp"
#include "runtime/protocol.hpp"
#include "runtime/stage_times.hpp"
#include "runtime/sync.hpp"
#include "runtime/task_mapper.hpp"
#include "tensor/init.hpp"

namespace hyscale {
namespace {

StageTimes times_ms(double sc, double sa, double load, double tran, double tc, double ta,
                    double sync = 0.1) {
  StageTimes t;
  t.sample_cpu = sc * 1e-3;
  t.sample_accel = sa * 1e-3;
  t.load = load * 1e-3;
  t.transfer = tran * 1e-3;
  t.train_cpu = tc * 1e-3;
  t.train_accel = ta * 1e-3;
  t.sync = sync * 1e-3;
  return t;
}

TEST(StageTimes, BundleAndPropagation) {
  const StageTimes t = times_ms(1, 2, 3, 4, 5, 6, 0.5);
  EXPECT_DOUBLE_EQ(t.accel_bundle(), 6e-3);       // max(tran, ta)
  EXPECT_DOUBLE_EQ(t.sampling(), 2e-3);           // max(sc, sa)
  EXPECT_NEAR(t.propagation(), 6.5e-3, 1e-12);    // max(tc, ta) + sync
}

TEST(StageTimes, IterationTimeOrderingAcrossModes) {
  const StageTimes t = times_ms(2, 0, 3, 4, 5, 6, 0.5);
  const Seconds seq = iteration_time(t, PipelineMode::kSequential);
  const Seconds single = iteration_time(t, PipelineMode::kSinglePrefetch);
  const Seconds two = iteration_time(t, PipelineMode::kTwoStagePrefetch);
  // More pipelining never hurts steady-state iteration time.
  EXPECT_LE(two, single);
  EXPECT_LE(single, seq);
  EXPECT_NEAR(seq, (2 + 3 + 4 + 6.5) * 1e-3, 1e-12);
  EXPECT_NEAR(single, std::max(3.0 + 4.0, 6.5) * 1e-3, 1e-12);
  EXPECT_NEAR(two, 6.5e-3, 1e-12);
}

TEST(StageTimes, TwoStageDecouplesLoadAndTransfer) {
  // Load 5 ms and transfer 5 ms: fused they dominate (10 ms); two-stage
  // pipelining hides one behind the other (the §IV-B motivation).
  const StageTimes t = times_ms(1, 0, 5, 5, 1, 6, 0);
  EXPECT_NEAR(iteration_time(t, PipelineMode::kSinglePrefetch), 10e-3, 1e-12);
  EXPECT_NEAR(iteration_time(t, PipelineMode::kTwoStagePrefetch), 6e-3, 1e-12);
}

TEST(StageTimes, EpochTimeAccountsFillAndIterations) {
  const StageTimes t = times_ms(1, 0, 1, 1, 0, 2, 0);
  const Seconds one = epoch_time(t, PipelineMode::kTwoStagePrefetch, 1);
  const Seconds hundred = epoch_time(t, PipelineMode::kTwoStagePrefetch, 100);
  EXPECT_GT(one, iteration_time(t, PipelineMode::kTwoStagePrefetch));
  EXPECT_NEAR(hundred, 100 * 2e-3 + (1 + 1 + 1 + 2 - 2) * 1e-3, 1e-9);
  EXPECT_DOUBLE_EQ(epoch_time(t, PipelineMode::kTwoStagePrefetch, 0), 0.0);
}

TEST(StageTimes, Names) {
  EXPECT_STREQ(stage_name(Stage::kLoad), "TLoad");
  EXPECT_STREQ(pipeline_mode_name(PipelineMode::kTwoStagePrefetch), "two-stage prefetch");
  EXPECT_FALSE(times_ms(1, 1, 1, 1, 1, 1).to_string().empty());
}

// ------------------------------------------------------------------ DRM --

WorkloadAssignment default_workload() {
  WorkloadAssignment w;
  w.cpu_batch = 512;
  w.accel_batch = 1024;
  w.num_accelerators = 4;
  w.threads = {128, 32, 32, 64};
  return w;
}

TEST(Drm, AccelBottleneckMovesWorkToCpu) {
  DrmEngine drm;
  WorkloadAssignment w = default_workload();
  const std::int64_t total = w.total_batch();
  // Accelerator bundle (train 20 ms) dominates; CPU trainer is fast.
  const DrmAction action = drm.step(times_ms(1, 0, 2, 3, 4, 20), w);
  EXPECT_EQ(action.kind, DrmAction::Kind::kBalanceWork);
  EXPECT_EQ(action.bottleneck, Stage::kTrainAccel);
  EXPECT_LT(action.batch_moved, 0);  // accel -> CPU
  EXPECT_GT(w.cpu_batch, 512);
  EXPECT_EQ(w.total_batch(), total);  // §IV-A invariant
}

TEST(Drm, TransferBottleneckAlsoShrinksAccelWork) {
  // Algorithm 1 bundles TTran with TTA: a PCIe-bound system sheds
  // accelerator work (the paper's stated limitation).
  DrmEngine drm;
  WorkloadAssignment w = default_workload();
  drm.step(times_ms(1, 0, 2, 30, 4, 3), w);
  EXPECT_GT(w.cpu_batch, 512);
}

TEST(Drm, LoadBottleneckMovesThreadsToLoader) {
  DrmEngine drm;
  WorkloadAssignment w = default_workload();
  const int loader_before = w.threads.loader;
  const int total_before = w.threads.used();
  const DrmAction action = drm.step(times_ms(1, 0, 20, 3, 2, 4), w);
  EXPECT_EQ(action.kind, DrmAction::Kind::kBalanceThread);
  EXPECT_EQ(action.thread_to, Stage::kLoad);
  EXPECT_EQ(action.thread_from, Stage::kSampleCpu);  // fastest CPU task
  EXPECT_GT(w.threads.loader, loader_before);
  EXPECT_EQ(w.threads.used(), total_before);  // threads conserved
}

TEST(Drm, CpuSamplerBottleneckShiftsToAccelWhenAccelFastest) {
  DrmConfig config;
  config.accel_sampling_available = true;
  DrmEngine drm(config);
  WorkloadAssignment w = default_workload();
  w.accel_sample_fraction = 0.0;
  // TSC dominates, TSA is the global fastest.
  const DrmAction action = drm.step(times_ms(20, 0.1, 3, 4, 5, 6), w);
  EXPECT_EQ(action.kind, DrmAction::Kind::kBalanceSampling);
  EXPECT_GT(w.accel_sample_fraction, 0.0);
}

TEST(Drm, CpuSamplerBottleneckLookaheadCase) {
  // Fastest = T_Accel, second = TSA  -> still shift sampling to accel
  // (Algorithm 1 lines 20-21).
  DrmConfig config;
  config.accel_sampling_available = true;
  DrmEngine drm(config);
  WorkloadAssignment w = default_workload();
  const DrmAction action = drm.step(times_ms(20, 0.5, 3, 0.1, 5, 0.2), w);
  EXPECT_EQ(action.kind, DrmAction::Kind::kBalanceSampling);
}

TEST(Drm, CpuSamplerBottleneckFallsBackToThreads) {
  DrmEngine drm;  // no accel sampling
  WorkloadAssignment w = default_workload();
  const int sampler_before = w.threads.sampler;
  const DrmAction action = drm.step(times_ms(20, 0, 3, 4, 0.5, 6), w);
  EXPECT_EQ(action.kind, DrmAction::Kind::kBalanceThread);
  EXPECT_EQ(action.thread_to, Stage::kSampleCpu);
  EXPECT_GT(w.threads.sampler, sampler_before);
}

TEST(Drm, CpuTrainerBottleneckMovesWorkWhenAccelFastest) {
  DrmEngine drm;
  WorkloadAssignment w = default_workload();
  const std::int64_t cpu_before = w.cpu_batch;
  // TTC dominates; T_Accel is fastest -> balance_work toward accel.
  const DrmAction action = drm.step(times_ms(2, 0, 3, 0.2, 20, 0.3), w);
  EXPECT_EQ(action.kind, DrmAction::Kind::kBalanceWork);
  EXPECT_LT(w.cpu_batch, cpu_before);
}

TEST(Drm, CpuTrainerBottleneckFallsBackToThreads) {
  DrmEngine drm;
  WorkloadAssignment w = default_workload();
  // TTC dominates; fastest is TLoad (a CPU task) -> balance_thread.
  const DrmAction action = drm.step(times_ms(5, 0, 0.1, 4, 20, 6), w);
  EXPECT_EQ(action.kind, DrmAction::Kind::kBalanceThread);
  EXPECT_EQ(action.thread_to, Stage::kTrainCpu);
}

TEST(Drm, AccelSamplerBottleneckShiftsSamplingBack) {
  DrmConfig config;
  config.accel_sampling_available = true;
  DrmEngine drm(config);
  WorkloadAssignment w = default_workload();
  w.accel_sample_fraction = 0.5;
  const DrmAction action = drm.step(times_ms(1, 20, 3, 4, 5, 6), w);
  EXPECT_EQ(action.kind, DrmAction::Kind::kBalanceSampling);
  EXPECT_LT(w.accel_sample_fraction, 0.5);
}

TEST(Drm, ThreadMoveKeepsOneThreadMinimum) {
  DrmConfig config;
  config.thread_step = 100;
  DrmEngine drm(config);
  WorkloadAssignment w = default_workload();
  w.threads = {128, 2, 2, 124};
  // Load bottleneck; fastest CPU task has only 2 threads -> moves 1.
  drm.step(times_ms(0.1, 0, 20, 3, 0.2, 4), w);
  EXPECT_GE(w.threads.sampler, 1);
  EXPECT_GE(w.threads.trainer, 1);
}

TEST(Drm, ConvergesToBalancedSplit) {
  // Synthetic platform: the CPU trainer processes 50 seeds/ms at 64
  // threads (linear in threads); each accelerator 200 seeds/ms.  Both DRM
  // moves are live here — balance_work shifts seeds, balance_thread
  // re-allocates trainer threads — and iterating the engine must drive
  // the CPU and accelerator stage times together.
  DrmEngine drm;
  WorkloadAssignment w = default_workload();
  const std::int64_t total = w.total_batch();
  auto cpu_time = [&](const WorkloadAssignment& wl) {
    const double rate = 50e3 * static_cast<double>(wl.threads.trainer) / 64.0;
    return static_cast<double>(wl.cpu_batch) / rate;
  };
  StageTimes t;
  for (int i = 0; i < 60; ++i) {
    t = StageTimes{};
    t.train_cpu = cpu_time(w);
    t.train_accel = static_cast<double>(w.accel_batch) / 200e3;
    t.transfer = t.train_accel * 0.5;
    t.sample_cpu = 1e-6;
    t.load = 1e-6;
    drm.step(t, w);
  }
  EXPECT_EQ(w.total_batch(), total);
  const double t_cpu = cpu_time(w);
  const double t_accel = static_cast<double>(w.accel_batch) / 200e3;
  // Converged: the bottleneck gap has closed to a modest factor.
  EXPECT_NEAR(t_cpu / t_accel, 1.0, 0.35);
}

TEST(Drm, RejectsBadConfig) {
  DrmConfig bad;
  bad.work_gain = 0.0;
  EXPECT_THROW(DrmEngine{bad}, std::invalid_argument);
  bad = DrmConfig{};
  bad.thread_step = 0;
  EXPECT_THROW(DrmEngine{bad}, std::invalid_argument);
}

TEST(Workload, TotalAndValidity) {
  WorkloadAssignment w = default_workload();
  EXPECT_EQ(w.total_batch(), 512 + 4 * 1024);
  EXPECT_TRUE(w.threads.valid());
  w.threads.sampler = -1;
  EXPECT_FALSE(w.threads.valid());
  EXPECT_FALSE(w.to_string().empty());
}

// ------------------------------------------------------------- Protocol --

TEST(Protocol, HandshakeCompletesAcrossIterations) {
  constexpr int kTrainers = 4;
  constexpr int kIterations = 25;
  TrainingProtocol protocol(kTrainers);
  std::vector<int> work_done(kTrainers, 0);

  std::vector<std::thread> trainers;
  for (int t = 0; t < kTrainers; ++t) {
    trainers.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        ++work_done[static_cast<std::size_t>(t)];
        protocol.trainer_done();
        protocol.wait_ack();
      }
    });
  }
  for (int i = 0; i < kIterations; ++i) {
    protocol.wait_all_done();
    const std::int64_t generation = protocol.broadcast_ack();
    protocol.wait_iteration_complete(generation);
  }
  for (auto& t : trainers) t.join();
  for (int done : work_done) EXPECT_EQ(done, kIterations);
  EXPECT_EQ(protocol.iteration(), kIterations);
}

TEST(Protocol, MisuseThrows) {
  TrainingProtocol protocol(1);
  EXPECT_THROW(protocol.broadcast_ack(), std::logic_error);  // before DONE
  protocol.trainer_done();
  EXPECT_THROW(protocol.trainer_done(), std::logic_error);  // extra DONE
  EXPECT_THROW(TrainingProtocol(0), std::invalid_argument);
}

// ---------------------------------------------------------- Synchronizer --

ModelConfig small_model() {
  ModelConfig config;
  config.kind = GnnKind::kGcn;
  config.dims = {4, 3};
  config.seed = 5;
  return config;
}

TEST(Synchronizer, WeightedAverageIsExact) {
  GnnModel a(small_model()), b(small_model());
  // Grads: a = 1 everywhere, b = 4 everywhere; weights 1 and 3 ->
  // average (1*1 + 3*4)/4 = 3.25.
  for (auto* p : a.parameters()) p->grad.fill(1.0f);
  for (auto* p : b.parameters()) p->grad.fill(4.0f);
  std::vector<GnnModel*> replicas = {&a, &b};
  Synchronizer::allreduce(replicas, {1, 3});
  for (auto* p : a.parameters()) {
    for (float g : p->grad.flat()) EXPECT_FLOAT_EQ(g, 3.25f);
  }
  for (auto* p : b.parameters()) {
    for (float g : p->grad.flat()) EXPECT_FLOAT_EQ(g, 3.25f);
  }
}

TEST(Synchronizer, ZeroWeightReplicaReceivesButDoesNotContribute) {
  GnnModel a(small_model()), b(small_model());
  for (auto* p : a.parameters()) p->grad.fill(2.0f);
  for (auto* p : b.parameters()) p->grad.fill(999.0f);
  std::vector<GnnModel*> replicas = {&a, &b};
  Synchronizer::allreduce(replicas, {5, 0});
  for (auto* p : b.parameters()) {
    for (float g : p->grad.flat()) EXPECT_FLOAT_EQ(g, 2.0f);
  }
}

TEST(Synchronizer, UniformOverloadMatchesManual) {
  GnnModel a(small_model()), b(small_model());
  for (auto* p : a.parameters()) p->grad.fill(1.0f);
  for (auto* p : b.parameters()) p->grad.fill(3.0f);
  std::vector<GnnModel*> replicas = {&a, &b};
  Synchronizer::allreduce(replicas);
  for (auto* p : a.parameters()) {
    for (float g : p->grad.flat()) EXPECT_FLOAT_EQ(g, 2.0f);
  }
}

TEST(Synchronizer, AllZeroWeightsIsNoop) {
  GnnModel a(small_model());
  for (auto* p : a.parameters()) p->grad.fill(7.0f);
  std::vector<GnnModel*> replicas = {&a};
  Synchronizer::allreduce(replicas, {0});
  for (auto* p : a.parameters()) {
    for (float g : p->grad.flat()) EXPECT_FLOAT_EQ(g, 7.0f);
  }
}

TEST(Synchronizer, MismatchedWeightsThrow) {
  GnnModel a(small_model());
  std::vector<GnnModel*> replicas = {&a};
  EXPECT_THROW(Synchronizer::allreduce(replicas, {1, 2}), std::invalid_argument);
  EXPECT_THROW(Synchronizer::allreduce(replicas, {-1}), std::invalid_argument);
}

// ------------------------------------------------------ PerformanceModel --

PerformanceModel papers_fpga_model() {
  ModelConfig model;
  model.kind = GnnKind::kGcn;
  model.dims = {128, 256, 172};
  return PerformanceModel(cpu_fpga_platform(4), model, dataset_info("ogbn-papers100M"),
                          {25, 10});
}

TEST(PerfModel, StageTimesPositive) {
  const PerformanceModel pm = papers_fpga_model();
  WorkloadAssignment w = default_workload();
  const StageTimes t = pm.stage_times(w);
  EXPECT_GT(t.sample_cpu, 0.0);
  EXPECT_GT(t.load, 0.0);
  EXPECT_GT(t.transfer, 0.0);
  EXPECT_GT(t.train_cpu, 0.0);
  EXPECT_GT(t.train_accel, 0.0);
  EXPECT_GT(t.sync, 0.0);
}

TEST(PerfModel, IterationsPerEpoch) {
  const PerformanceModel pm = papers_fpga_model();
  WorkloadAssignment w = default_workload();  // total 4608
  const long iters = pm.iterations_per_epoch(w);
  EXPECT_EQ(iters, static_cast<long>((1207179 + 4608 - 1) / 4608));
}

TEST(PerfModel, MorePipeliningNeverSlower) {
  const PerformanceModel pm = papers_fpga_model();
  WorkloadAssignment w = default_workload();
  EXPECT_LE(pm.predict_iteration(w, PipelineMode::kTwoStagePrefetch),
            pm.predict_iteration(w, PipelineMode::kSinglePrefetch));
  EXPECT_LE(pm.predict_iteration(w, PipelineMode::kSinglePrefetch),
            pm.predict_iteration(w, PipelineMode::kSequential));
}

TEST(PerfModel, ThroughputPositiveAndConsistent) {
  const PerformanceModel pm = papers_fpga_model();
  WorkloadAssignment w = default_workload();
  const double mteps = pm.throughput_mteps(w, PipelineMode::kTwoStagePrefetch);
  EXPECT_GT(mteps, 0.0);
}

TEST(PerfModel, EpochScalesDownWithMoreAccelerators) {
  ModelConfig model;
  model.kind = GnnKind::kGcn;
  model.dims = {128, 256, 172};
  const DatasetInfo info = dataset_info("ogbn-papers100M");
  Seconds previous = 1e18;
  for (int k : {1, 2, 4, 8}) {
    PerformanceModel pm(cpu_fpga_platform(k), model, info, {25, 10});
    WorkloadAssignment w;
    w.cpu_batch = 512;
    w.accel_batch = 1024;
    w.num_accelerators = k;
    w.threads = {128, 32, 32, 64};
    const Seconds epoch = pm.predict_epoch(w, PipelineMode::kTwoStagePrefetch);
    EXPECT_LT(epoch, previous);
    previous = epoch;
  }
}

TEST(PerfModel, ModelParamBytes) {
  ModelConfig gcn;
  gcn.kind = GnnKind::kGcn;
  gcn.dims = {128, 256, 172};
  // GCN: (128*256 + 256) + (256*172 + 172) params * 4 bytes.
  EXPECT_DOUBLE_EQ(model_param_bytes(gcn), (128.0 * 256 + 256 + 256 * 172 + 172) * 4.0);
  ModelConfig sage = gcn;
  sage.kind = GnnKind::kSage;
  EXPECT_GT(model_param_bytes(sage), model_param_bytes(gcn));
}

TEST(PerfModel, RejectsMismatchedFanouts) {
  ModelConfig model;
  model.dims = {128, 256, 172};
  EXPECT_THROW(
      PerformanceModel(cpu_fpga_platform(4), model, dataset_info("ogbn-papers100M"), {25}),
      std::invalid_argument);
}

// ----------------------------------------------------------- TaskMapper --

TEST(TaskMapper, HybridMappingAssignsCpuWork) {
  const PerformanceModel pm = papers_fpga_model();
  TaskMapperOptions options;
  options.hybrid = true;
  const WorkloadAssignment w = initial_task_mapping(pm, options);
  EXPECT_EQ(w.num_accelerators, 4);
  EXPECT_EQ(w.accel_batch, 1024);
  EXPECT_GE(w.cpu_batch, 0);
  EXPECT_TRUE(w.threads.valid());
}

TEST(TaskMapper, NonHybridMappingHasNoCpuTrainer) {
  const PerformanceModel pm = papers_fpga_model();
  TaskMapperOptions options;
  options.hybrid = false;
  const WorkloadAssignment w = initial_task_mapping(pm, options);
  EXPECT_EQ(w.cpu_batch, 0);
}

TEST(TaskMapper, CpuOnlyPlatformStillTrains) {
  ModelConfig model;
  model.kind = GnnKind::kGcn;
  model.dims = {128, 256, 172};
  PerformanceModel pm(cpu_fpga_platform(0), model, dataset_info("ogbn-papers100M"), {25, 10});
  const WorkloadAssignment w = initial_task_mapping(pm);
  EXPECT_EQ(w.num_accelerators, 0);
  EXPECT_GT(w.cpu_batch, 0);
}

}  // namespace
}  // namespace hyscale
