// Tests for the online inference serving subsystem (src/serving/):
// micro-batch coalescing and deadlines, bounded-queue backpressure,
// served-vs-direct logit equivalence, determinism under a fixed seed,
// checkpoint -> ModelSnapshot round-trips, and concurrent use of the
// shared StaticFeatureCache.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/hyscale.hpp"

namespace hyscale {
namespace {

const Dataset& community() {
  static const Dataset ds = make_community_dataset(3, 32, 8, 2);
  return ds;
}

ModelConfig small_model_config() {
  ModelConfig config;
  config.kind = GnnKind::kSage;
  config.dims = {8, 16, 3};
  config.seed = 11;
  return config;
}

/// Exact reference: full-neighborhood sample + plain gather + forward.
Tensor direct_forward(GnnModel& model, const Dataset& ds, const std::vector<VertexId>& seeds) {
  const MiniBatch batch = sample_full(ds.graph, seeds, model.config().num_layers());
  FeatureLoader loader(ds.features);
  Tensor x;
  loader.load(batch, x);
  return model.forward(batch, x);
}

InferenceRequest make_request(std::vector<VertexId> seeds) {
  InferenceRequest request;
  request.seeds = std::move(seeds);
  request.enqueue_time = std::chrono::steady_clock::now();
  return request;
}

// ------------------------------------------------------------------ stats

TEST(ServingStats, NearestRankPercentilesUseOneBasedRanks) {
  // Regression for the nearest-rank off-by-one: ceil(q * n) is a
  // 1-BASED rank and must be converted to a 0-based index.  Over the
  // sorted samples {1, 2, 3, 4} ms, p50 is the 2nd smallest (rank
  // ceil(0.5 * 4) = 2) — the buggy direct-index read served the 3rd.
  ServingStats stats;
  for (const Seconds latency : {0.004, 0.002, 0.001, 0.003}) {
    stats.record_completion(latency, /*queue_wait=*/latency / 2);
  }
  const ServingSnapshot s = stats.snapshot();
  EXPECT_DOUBLE_EQ(s.latency_p50, 0.002);
  EXPECT_DOUBLE_EQ(s.latency_p95, 0.004);  // rank ceil(0.95 * 4) = 4 -> largest
  EXPECT_DOUBLE_EQ(s.latency_p99, 0.004);
  EXPECT_DOUBLE_EQ(s.queue_wait_p50, 0.001);
}

TEST(ServingStats, PercentilesOfSingleSampleAreThatSample) {
  ServingStats stats;
  stats.record_completion(0.007);
  const ServingSnapshot s = stats.snapshot();
  EXPECT_DOUBLE_EQ(s.latency_p50, 0.007);
  EXPECT_DOUBLE_EQ(s.latency_p95, 0.007);
  EXPECT_DOUBLE_EQ(s.latency_p99, 0.007);
}

TEST(ServingStats, PercentilesMatchNearestRankOnHundredSamples) {
  // 1..100 ms: nearest-rank pN is exactly the Nth smallest sample.
  ServingStats stats;
  for (int i = 100; i >= 1; --i) stats.record_completion(static_cast<Seconds>(i) * 1e-3);
  const ServingSnapshot s = stats.snapshot();
  EXPECT_DOUBLE_EQ(s.latency_p50, 0.050);
  EXPECT_DOUBLE_EQ(s.latency_p95, 0.095);
  EXPECT_DOUBLE_EQ(s.latency_p99, 0.099);
}

TEST(ServingStats, ReservoirPercentilesStayStablePastTheCap) {
  // Regression for the latency-retention policy: the reservoir
  // (Vitter's Algorithm R, bounded to kLatencyWindow samples) keeps a
  // uniform sample of the WHOLE run, so percentiles past the cap stay
  // near the true distribution instead of sliding to a recent window.
  // Feed a scrambled permutation of {1..n} µs at 4x the cap: every
  // true quantile is exact by construction.
  ServingStats stats;
  const std::int64_t n = 4 * (1 << 16);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t k = (i * 92821) % n + 1;  // odd stride: a permutation of 1..n
    const Seconds latency = static_cast<Seconds>(k) * 1e-6;
    stats.record_completion(latency, /*queue_wait=*/latency / 2);
  }
  const ServingSnapshot s = stats.snapshot();
  EXPECT_EQ(s.completed_requests, n);
  // Means and max are exact (tracked over ALL completions, not sampled).
  EXPECT_DOUBLE_EQ(s.latency_max, static_cast<Seconds>(n) * 1e-6);
  EXPECT_NEAR(s.latency_mean, 0.5 * (n + 1) * 1e-6, 1e-9 * n);
  // Percentile estimates from the reservoir: the sampling error of a
  // quantile over 2^16 uniform samples is ~0.2% of the range; +-2% is
  // far outside any plausible noise but catches a windowed/biased
  // retention scheme (a sliding window would read ~top-25% here).
  const double tol = 0.02 * static_cast<double>(n) * 1e-6;
  EXPECT_NEAR(s.latency_p50, 0.50 * n * 1e-6, tol);
  EXPECT_NEAR(s.latency_p95, 0.95 * n * 1e-6, tol);
  EXPECT_NEAR(s.latency_p99, 0.99 * n * 1e-6, tol);
  // The queue-wait reservoir is replaced in lockstep (same draw), so
  // its quantiles track half the latency distribution.
  EXPECT_NEAR(s.queue_wait_p50, 0.25 * n * 1e-6, tol);
  EXPECT_NEAR(s.queue_wait_p99, 0.495 * n * 1e-6, tol);
}

// ---------------------------------------------------------------- batcher

TEST(DynamicBatcher, BoundedQueueRejectsWhenFull) {
  BatchPolicy policy;
  policy.queue_capacity = 2;
  policy.max_wait = 0.0;
  DynamicBatcher batcher(policy);
  EXPECT_TRUE(batcher.submit(make_request({0})));
  EXPECT_TRUE(batcher.submit(make_request({1})));
  EXPECT_FALSE(batcher.submit(make_request({2})));  // full
  EXPECT_EQ(batcher.depth(), 2u);

  // Draining one batch frees capacity again.
  std::vector<InferenceRequest> batch;
  ASSERT_TRUE(batcher.next_batch(batch));
  EXPECT_TRUE(batcher.submit(make_request({2})));
  batcher.shutdown();
  EXPECT_FALSE(batcher.submit(make_request({3})));  // stopped
}

TEST(DynamicBatcher, CoalescesUpToRequestLimit) {
  BatchPolicy policy;
  policy.max_batch_requests = 3;
  policy.max_wait = 10.0;  // never the trigger here
  DynamicBatcher batcher(policy);
  for (VertexId v = 0; v < 6; ++v) ASSERT_TRUE(batcher.submit(make_request({v})));

  std::vector<InferenceRequest> batch;
  ASSERT_TRUE(batcher.next_batch(batch));
  EXPECT_EQ(batch.size(), 3u);  // closed by the request limit, not the deadline
  ASSERT_TRUE(batcher.next_batch(batch));
  EXPECT_EQ(batch.size(), 3u);
  batcher.shutdown();
  EXPECT_FALSE(batcher.next_batch(batch));
}

TEST(DynamicBatcher, DeadlineDispatchesPartialBatch) {
  BatchPolicy policy;
  policy.max_batch_requests = 64;
  policy.max_wait = 0.02;  // 20ms
  DynamicBatcher batcher(policy);
  ASSERT_TRUE(batcher.submit(make_request({0, 1})));

  std::vector<InferenceRequest> batch;
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(batcher.next_batch(batch));
  const Seconds waited = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0).count();
  EXPECT_EQ(batch.size(), 1u);   // partial batch, released by the deadline
  EXPECT_LT(waited, 5.0);        // and nowhere near "wait forever"
  batcher.shutdown();
}

TEST(DynamicBatcher, SeedBudgetClosesBatchAndOversizedRequestStillServed) {
  BatchPolicy policy;
  policy.max_batch_requests = 64;
  policy.max_batch_seeds = 4;
  policy.max_wait = 10.0;
  DynamicBatcher batcher(policy);
  ASSERT_TRUE(batcher.submit(make_request({0, 1, 2})));
  ASSERT_TRUE(batcher.submit(make_request({3, 4, 5})));
  ASSERT_TRUE(batcher.submit(make_request({6, 7, 8, 9, 10, 11})));  // > max alone

  // The budget is a ceiling: adding the second 3-seed request would
  // exceed 4, so each closes its own batch; the 6-seed request exceeds
  // the budget alone and must still be served (batches never wedge).
  std::vector<InferenceRequest> batch;
  ASSERT_TRUE(batcher.next_batch(batch));
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.front().seeds.size(), 3u);
  ASSERT_TRUE(batcher.next_batch(batch));
  EXPECT_EQ(batch.size(), 1u);
  ASSERT_TRUE(batcher.next_batch(batch));
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.front().seeds.size(), 6u);
  batcher.shutdown();
}

TEST(DynamicBatcher, ShutdownDrainsAcceptedRequests) {
  BatchPolicy policy;
  policy.max_batch_requests = 2;
  policy.max_wait = 10.0;
  DynamicBatcher batcher(policy);
  for (VertexId v = 0; v < 3; ++v) ASSERT_TRUE(batcher.submit(make_request({v})));
  batcher.shutdown();
  std::vector<InferenceRequest> batch;
  std::size_t drained = 0;
  while (batcher.next_batch(batch)) drained += batch.size();
  EXPECT_EQ(drained, 3u);  // nothing accepted is ever dropped
}

// ----------------------------------------------------------------- server

TEST(InferenceServer, ServedLogitsMatchDirectForward) {
  const Dataset& ds = community();
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);

  ServingConfig config;  // empty fanouts = full neighborhood (exact)
  config.num_workers = 2;
  InferenceServer server(ds, snapshot, config);

  const std::vector<VertexId> seeds = {0, 17, 40, 95};
  const InferenceResult result = server.infer(seeds);
  const Tensor expected = direct_forward(model, ds, seeds);
  ASSERT_EQ(result.logits.rows(), expected.rows());
  EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(result.logits, expected), 0.0);
  ASSERT_EQ(result.predictions.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    int best = 0;
    for (std::int64_t c = 1; c < expected.cols(); ++c) {
      if (expected.at(static_cast<std::int64_t>(i), c) >
          expected.at(static_cast<std::int64_t>(i), best))
        best = static_cast<int>(c);
    }
    EXPECT_EQ(result.predictions[i], best);
  }
}

TEST(InferenceServer, CoalescesConcurrentRequestsIntoOneMicroBatch) {
  const Dataset& ds = community();
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);

  ServingConfig config;
  config.num_workers = 1;
  config.batch.max_batch_requests = 4;
  config.batch.max_wait = 0.5;  // generous: submissions land well inside it
  InferenceServer server(ds, snapshot, config);

  std::vector<std::future<InferenceResult>> futures;
  for (VertexId v = 0; v < 4; ++v) {
    auto f = server.try_submit({v, v + 4});
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  std::vector<InferenceResult> results;
  for (auto& f : futures) results.push_back(f.get());
  for (const auto& r : results) {
    EXPECT_EQ(r.batch_id, results.front().batch_id);
    EXPECT_EQ(r.batch_requests, 4);
    EXPECT_EQ(r.batch_seeds, 8);
  }
  const ServingSnapshot stats = server.stats();
  EXPECT_EQ(stats.completed_requests, 4);
  EXPECT_EQ(stats.completed_batches, 1);
  EXPECT_DOUBLE_EQ(stats.mean_batch_requests, 4.0);
}

TEST(InferenceServer, RespectsDeadlineForLonelyRequest) {
  const Dataset& ds = community();
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);

  ServingConfig config;
  config.num_workers = 1;
  config.batch.max_batch_requests = 64;  // never filled by one request
  config.batch.max_wait = 0.02;
  InferenceServer server(ds, snapshot, config);

  const InferenceResult result = server.infer({3});
  EXPECT_EQ(result.batch_requests, 1);
  EXPECT_GE(result.latency, 0.0);
  EXPECT_LT(result.latency, 5.0);
}

TEST(InferenceServer, BackpressureRejectsAndRecovers) {
  const Dataset& ds = community();
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);

  ServingConfig config;
  config.num_workers = 1;
  config.batch.max_batch_requests = 1;
  config.batch.max_wait = 0.0;
  config.batch.queue_capacity = 1;
  InferenceServer server(ds, snapshot, config);

  std::vector<std::future<InferenceResult>> accepted;
  std::int64_t rejected = 0;
  for (int i = 0; i < 500 && rejected < 5; ++i) {
    auto f = server.try_submit({static_cast<VertexId>(i % ds.graph.num_vertices())});
    if (f) {
      accepted.push_back(std::move(*f));
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);  // a 1-deep queue must push back on a tight loop
  for (auto& f : accepted) f.get();  // accepted requests all complete
  const ServingSnapshot stats = server.stats();
  EXPECT_EQ(stats.rejected_requests, rejected);
  EXPECT_EQ(stats.completed_requests, static_cast<std::int64_t>(accepted.size()));
}

TEST(InferenceServer, SampledFanoutsAreDeterministicUnderFixedSeed) {
  const Dataset& ds = community();
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);

  ServingConfig config;
  config.fanouts = {3, 3};
  config.seed = 99;
  config.num_workers = 2;  // determinism must not depend on which worker serves
  const std::vector<VertexId> seeds = {5, 44, 80};

  InferenceServer server_a(ds, snapshot, config);
  const Tensor first = server_a.infer(seeds).logits;
  const Tensor again = server_a.infer(seeds).logits;  // same server, later batch
  EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(first, again), 0.0);

  InferenceServer server_b(ds, snapshot, config);  // fresh server, same seed
  EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(first, server_b.infer(seeds).logits), 0.0);
}

TEST(InferenceServer, InvalidSubmissionsThrow) {
  const Dataset& ds = community();
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);
  InferenceServer server(ds, snapshot, {});
  EXPECT_THROW(server.try_submit({}), std::invalid_argument);
  EXPECT_THROW(server.try_submit({ds.graph.num_vertices()}), std::invalid_argument);
  EXPECT_THROW(server.try_submit({-1}), std::invalid_argument);

  ServingConfig bad;
  bad.fanouts = {3};  // model has 2 layers
  EXPECT_THROW(InferenceServer(ds, snapshot, bad), std::invalid_argument);
}

TEST(InferenceServer, CachedGathersMatchUncachedAndReportTraffic) {
  const Dataset& ds = community();
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);

  ServingConfig cached;
  cached.cache_capacity_rows = ds.graph.num_vertices() / 4;
  InferenceServer cached_server(ds, snapshot, cached);
  InferenceServer plain_server(ds, snapshot, {});

  const std::vector<VertexId> seeds = {2, 31, 64, 90};
  const Tensor a = cached_server.infer(seeds).logits;
  const Tensor b = plain_server.infer(seeds).logits;
  EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(a, b), 0.0);

  const ServingSnapshot stats = cached_server.stats();
  EXPECT_GT(stats.cache_hits + stats.cache_misses, 0);
  EXPECT_GT(stats.cache_hit_rate, 0.0);  // degree-ordered cache must hit some
  EXPECT_GT(stats.host_bytes + stats.device_bytes, 0.0);
}

// ------------------------------------------------- checkpoint round-trip

TEST(ModelSnapshot, CheckpointRoundTripServesIdenticalLogits) {
  MaterializeOptions options;
  options.target_vertices = 1 << 10;
  const Dataset ds = materialize_dataset("ogbn-products", options);

  HybridTrainerConfig train_config;
  train_config.fanouts = {5, 5};
  train_config.real_batch_total = 64;
  train_config.real_iterations_cap = 2;
  HybridTrainer trainer(ds, cpu_fpga_platform(2), train_config);
  trainer.train_epoch();  // real compute moves the weights off their init

  const std::string path = "/tmp/hyscale_serving_ckpt.bin";
  save_checkpoint(trainer.model(), path);
  const ModelSnapshot snapshot(trainer.model().config(), path);
  std::remove(path.c_str());

  InferenceServer server(ds, snapshot, {});
  const std::vector<VertexId> seeds = {1, 7, 100, 555};
  const Tensor served = server.infer(seeds).logits;
  const Tensor expected = direct_forward(trainer.model(), ds, seeds);
  EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(served, expected), 0.0);
}

TEST(ModelSnapshot, MissingCheckpointThrows) {
  EXPECT_THROW(ModelSnapshot(small_model_config(), "/tmp/definitely_missing_ckpt.bin"),
               std::runtime_error);
}

// ------------------------------------------------------- cache under load

TEST(StaticFeatureCache, ConcurrentLoadsKeepTotalsConsistent) {
  const Dataset& ds = community();
  NeighborSampler sampler(ds.graph, {3, 3}, 4);
  const MiniBatch batch = sampler.sample({0, 10, 20, 30});
  StaticFeatureCache cache(ds.graph, ds.features, ds.graph.num_vertices() / 2);

  const StaticFeatureCache::LoadStats one = [&] {
    Tensor x;
    return cache.load(batch, x);
  }();
  const std::int64_t rows_per_load = one.hits + one.misses;

  constexpr int kThreads = 4;
  constexpr int kLoads = 64;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Tensor x;  // per-caller output, per the API contract
      for (int i = 0; i < kLoads; ++i) cache.load(batch, x);
    });
  }
  for (auto& t : threads) t.join();

  const auto totals = cache.totals();
  EXPECT_EQ(totals.hits + totals.misses, rows_per_load * (kThreads * kLoads + 1));
  EXPECT_EQ(totals.hits, one.hits * (kThreads * kLoads + 1));
}

// ------------------------------------------------------------ end to end

TEST(LoadGenerator, ClosedLoopSessionCompletesAllRequests) {
  const Dataset& ds = community();
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);

  ServingConfig config;
  config.fanouts = {3, 3};
  config.num_workers = 2;
  config.batch.max_wait = 1e-3;
  config.cache_capacity_rows = 24;
  InferenceServer server(ds, snapshot, config);

  LoadGeneratorConfig load;
  load.num_clients = 3;
  load.requests_per_client = 20;
  load.seeds_per_request = 2;
  LoadGenerator generator(server, ds, load);
  const LoadReport report = generator.run();

  EXPECT_EQ(report.completed_requests, 60);
  EXPECT_GT(report.qps, 0.0);
  EXPECT_GT(report.wall_time, 0.0);
  EXPECT_EQ(report.server.completed_requests, 60);
  EXPECT_GT(report.server.latency_p99, 0.0);
  EXPECT_GE(report.server.latency_p99, report.server.latency_p50);
  EXPECT_GE(report.server.max_batch_requests, 1);
  EXPECT_FALSE(report.to_string().empty());
}

TEST(HyScaleFacade, TrainThenServe) {
  MaterializeOptions options;
  options.target_vertices = 1 << 10;
  const Dataset ds = materialize_dataset("ogbn-products", options);

  HybridTrainerConfig train_config;
  train_config.fanouts = {5, 5};
  train_config.real_batch_total = 64;
  train_config.real_iterations_cap = 2;
  HyScale system(ds, cpu_fpga_platform(2), train_config);
  system.train_epoch();

  ServingConfig serving;
  serving.fanouts = {5, 5};
  serving.cache_capacity_rows = 128;
  auto server = system.serve(serving);
  const InferenceResult result = server->infer({0, 42});
  EXPECT_EQ(result.logits.rows(), 2);
  EXPECT_EQ(result.logits.cols(), ds.info.f2);
  EXPECT_EQ(result.predictions.size(), 2u);
}

}  // namespace
}  // namespace hyscale
