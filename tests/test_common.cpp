// Tests for common/: RNG, strings, timers, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "common/strutil.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace hyscale {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, BoundedStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Rng, BoundedOneIsAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespected) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Xoshiro256 rng(17);
  constexpr int kN = 20000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.08);
}

TEST(Rng, JumpDecorrelatesStreams) {
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Strutil, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(-2.5, 1), "-2.5");
}

TEST(Strutil, FormatBytes) {
  EXPECT_EQ(format_bytes(512.0), "512.0 B");
  EXPECT_EQ(format_bytes(2048.0), "2.0 KB");
  EXPECT_EQ(format_bytes(3.5 * 1024 * 1024), "3.5 MB");
}

TEST(Strutil, FormatCount) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1615685872ULL), "1,615,685,872");
}

TEST(Strutil, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcdef", 4), "abcdef");
}

TEST(Strutil, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Timer, AccumulatorSumsIntervals) {
  Accumulator acc;
  acc.add(1.5);
  acc.add(2.5);
  EXPECT_DOUBLE_EQ(acc.total(), 4.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
  EXPECT_EQ(acc.count(), 2);
  acc.reset();
  EXPECT_DOUBLE_EQ(acc.total(), 0.0);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleThreadPoolStillRuns) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(0, 100, [&](std::size_t lo, std::size_t hi) {
    counter += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForSumMatchesSerial) {
  std::vector<long> values(10000);
  std::iota(values.begin(), values.end(), 0L);
  std::atomic<long> sum{0};
  parallel_for(0, values.size(), [&](std::size_t lo, std::size_t hi) {
    long local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += values[i];
    sum += local;
  });
  EXPECT_EQ(sum.load(), 10000L * 9999L / 2);
}

}  // namespace
}  // namespace hyscale
