// Tests for tensor/: Tensor, GEMM (vs. naive reference), ops, init.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace hyscale {
namespace {

Tensor random_tensor(std::int64_t r, std::int64_t c, std::uint64_t seed) {
  Tensor t(r, c);
  uniform_init(t, -1.0f, 1.0f, seed);
  return t;
}

// Naive triple-loop reference.
Tensor naive_gemm(const Tensor& a, bool ta, const Tensor& b, bool tb, float alpha,
                  float beta, const Tensor& c0) {
  const std::int64_t m = ta ? a.cols() : a.rows();
  const std::int64_t k = ta ? a.rows() : a.cols();
  const std::int64_t n = tb ? b.rows() : b.cols();
  Tensor c = c0;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = ta ? a.at(p, i) : a.at(i, p);
        const float bv = tb ? b.at(j, p) : b.at(p, j);
        sum += static_cast<double>(av) * bv;
      }
      c.at(i, j) = static_cast<float>(alpha * sum + beta * c0.at(i, j));
    }
  }
  return c;
}

TEST(Tensor, ShapeAndFill) {
  Tensor t(3, 4, 2.0f);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.size(), 12);
  EXPECT_FLOAT_EQ(t.at(2, 3), 2.0f);
  t.zero();
  EXPECT_FLOAT_EQ(t.at(0, 0), 0.0f);
}

TEST(Tensor, RowSpanIsContiguous) {
  Tensor t(2, 3);
  t.at(1, 0) = 5.0f;
  t.at(1, 2) = 7.0f;
  auto row = t.row(1);
  EXPECT_FLOAT_EQ(row[0], 5.0f);
  EXPECT_FLOAT_EQ(row[2], 7.0f);
}

TEST(Tensor, NormAndDiff) {
  Tensor a(1, 2);
  a.at(0, 0) = 3.0f;
  a.at(0, 1) = 4.0f;
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  Tensor b = a;
  b.at(0, 1) = 6.0f;
  EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(a, b), 2.0);
  Tensor c(2, 1);
  EXPECT_THROW(Tensor::max_abs_diff(a, c), std::invalid_argument);
}

TEST(Tensor, NegativeShapeThrows) {
  EXPECT_THROW(Tensor(-1, 2), std::invalid_argument);
}

struct GemmCase {
  std::int64_t m, k, n;
  bool ta, tb;
  float alpha, beta;
};

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesNaiveReference) {
  const GemmCase params = GetParam();
  const Tensor a = params.ta ? random_tensor(params.k, params.m, 1)
                             : random_tensor(params.m, params.k, 1);
  const Tensor b = params.tb ? random_tensor(params.n, params.k, 2)
                             : random_tensor(params.k, params.n, 2);
  Tensor c = random_tensor(params.m, params.n, 3);
  const Tensor expected = naive_gemm(a, params.ta, b, params.tb, params.alpha, params.beta, c);
  gemm(a, params.ta, b, params.tb, c, params.alpha, params.beta);
  EXPECT_LT(Tensor::max_abs_diff(c, expected), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmTest,
    ::testing::Values(GemmCase{4, 5, 6, false, false, 1.0f, 0.0f},
                      GemmCase{4, 5, 6, true, false, 1.0f, 0.0f},
                      GemmCase{4, 5, 6, false, true, 1.0f, 0.0f},
                      GemmCase{4, 5, 6, true, true, 1.0f, 0.0f},
                      GemmCase{1, 1, 1, false, false, 2.0f, 0.5f},
                      GemmCase{17, 33, 9, false, false, 1.0f, 1.0f},
                      GemmCase{64, 200, 48, false, false, 1.0f, 0.0f},
                      GemmCase{100, 64, 32, true, false, 1.0f, 1.0f},
                      GemmCase{3, 300, 2, false, true, -1.0f, 0.0f}));

TEST(Gemm, RejectsShapeMismatch) {
  Tensor a(2, 3), b(4, 5), c(2, 5);
  EXPECT_THROW(gemm(a, false, b, false, c), std::invalid_argument);
  Tensor b2(3, 5), c_bad(3, 5);
  EXPECT_THROW(gemm(a, false, b2, false, c_bad), std::invalid_argument);
}

TEST(Gemm, LinearForwardAddsBias) {
  Tensor x(2, 3, 1.0f), w(3, 2, 1.0f), bias(1, 2);
  bias.at(0, 0) = 10.0f;
  bias.at(0, 1) = -1.0f;
  Tensor y;
  linear_forward(x, w, bias, y);
  EXPECT_FLOAT_EQ(y.at(0, 0), 13.0f);
  EXPECT_FLOAT_EQ(y.at(1, 1), 2.0f);
}

TEST(Ops, GatherRows) {
  Tensor src(4, 2);
  for (std::int64_t i = 0; i < 4; ++i) src.at(i, 0) = static_cast<float>(i);
  const std::vector<std::int64_t> index = {3, 0, 3};
  Tensor out;
  gather_rows(src, index, out);
  ASSERT_EQ(out.rows(), 3);
  EXPECT_FLOAT_EQ(out.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(2, 0), 3.0f);
}

TEST(Ops, ScatterAddAccumulates) {
  Tensor src(3, 2, 1.0f);
  Tensor dst(2, 2, 0.0f);
  const std::vector<std::int64_t> index = {0, 0, 1};
  scatter_add_rows(src, index, dst);
  EXPECT_FLOAT_EQ(dst.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(dst.at(1, 0), 1.0f);
}

TEST(Ops, ReluForwardBackward) {
  Tensor x(1, 4);
  x.at(0, 0) = -1.0f;
  x.at(0, 1) = 2.0f;
  x.at(0, 2) = 0.0f;
  x.at(0, 3) = -3.0f;
  Tensor y;
  relu_forward(x, y);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2.0f);
  Tensor dy(1, 4, 1.0f), dx;
  relu_backward(x, dy, dx);
  EXPECT_FLOAT_EQ(dx.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 2), 0.0f);  // gradient at exactly 0 is 0
}

TEST(Ops, DropoutKeepsExpectedValue) {
  Tensor x(100, 100, 1.0f);
  Tensor mask;
  dropout_forward(x, mask, 0.7, 99);
  double sum = 0.0;
  for (float v : x.flat()) sum += v;
  // Inverted dropout preserves the mean.
  EXPECT_NEAR(sum / 10000.0, 1.0, 0.05);
  // Backward scales gradients by the same mask.
  Tensor grad(100, 100, 1.0f);
  dropout_backward(mask, grad);
  EXPECT_LT(Tensor::max_abs_diff(grad, x), 1e-6);
}

TEST(Ops, DropoutKeepProbOneIsIdentity) {
  Tensor x(3, 3, 2.0f), mask;
  dropout_forward(x, mask, 1.0, 1);
  for (float v : x.flat()) EXPECT_FLOAT_EQ(v, 2.0f);
}

TEST(Ops, DropoutRejectsBadProb) {
  Tensor x(1, 1), mask;
  EXPECT_THROW(dropout_forward(x, mask, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(dropout_forward(x, mask, 1.5, 1), std::invalid_argument);
}

TEST(Ops, ConcatAndSplitRoundTrip) {
  const Tensor a = random_tensor(5, 3, 4);
  const Tensor b = random_tensor(5, 2, 5);
  Tensor cat;
  concat_cols(a, b, cat);
  ASSERT_EQ(cat.cols(), 5);
  Tensor da, db;
  split_cols(cat, 3, da, db);
  EXPECT_LT(Tensor::max_abs_diff(da, a), 1e-7);
  EXPECT_LT(Tensor::max_abs_diff(db, b), 1e-7);
}

TEST(Ops, ScaleRows) {
  Tensor x(2, 2, 1.0f);
  const std::vector<float> scale = {2.0f, 3.0f};
  Tensor y;
  scale_rows(x, scale, y);
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.at(1, 1), 3.0f);
}

TEST(Ops, AxpyAccumulates) {
  Tensor x(1, 3, 1.0f), y(1, 3, 2.0f);
  axpy(0.5f, x, y);
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.5f);
}

TEST(Init, XavierBoundsRespectFanInOut) {
  Tensor w(100, 50);
  xavier_uniform(w, 1);
  const double bound = std::sqrt(6.0 / 150.0);
  for (float v : w.flat()) {
    EXPECT_LE(std::abs(v), bound + 1e-6);
  }
  // Not all zero.
  EXPECT_GT(w.norm(), 0.1);
}

TEST(Init, NormalStddev) {
  Tensor w(200, 200);
  normal_init(w, 0.5f, 3);
  double sum2 = 0.0;
  for (float v : w.flat()) sum2 += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(sum2 / 40000.0), 0.5, 0.02);
}

TEST(Init, Deterministic) {
  Tensor a(10, 10), b(10, 10);
  xavier_uniform(a, 7);
  xavier_uniform(b, 7);
  EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(a, b), 0.0);
}

}  // namespace
}  // namespace hyscale
