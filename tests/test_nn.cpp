// Tests for nn/: convolution layers (finite-difference gradient checks),
// model forward/backward, loss, optimizers, metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "graph/generator.hpp"
#include "nn/conv.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "tensor/init.hpp"

namespace hyscale {
namespace {

// A tiny hand-built block: 2 dst, 4 src (dst prefix), edges:
//   d0 <- {s2, s3},  d1 <- {s0}
LayerBlock tiny_block() {
  LayerBlock block;
  block.num_dst = 2;
  block.src_nodes = {100, 101, 102, 103};
  block.indptr = {0, 2, 3};
  block.indices = {2, 3, 0};
  EXPECT_TRUE(block.validate());
  return block;
}

MiniBatch tiny_batch() {
  MiniBatch batch;
  batch.blocks.push_back(tiny_block());
  batch.seeds = {100, 101};
  return batch;
}

double loss_of(GnnModel& model, const MiniBatch& batch, const Tensor& x,
               const std::vector<int>& labels) {
  const Tensor logits = model.forward(batch, x);
  return softmax_cross_entropy(logits, labels).loss;
}

// Central-difference gradient check over every parameter of `model`.
void check_gradients(GnnModel& model, const MiniBatch& batch, const Tensor& x,
                     const std::vector<int>& labels) {
  model.zero_grad();
  const Tensor logits = model.forward(batch, x);
  const LossResult loss = softmax_cross_entropy(logits, labels);
  model.backward(batch, loss.d_logits);

  // Central differences on float32 with ReLU layers: individual entries
  // can sit exactly on a kink, so require that the overwhelming majority
  // of sampled coordinates agree and none disagrees grossly.
  const float eps = 2e-3f;
  int checked = 0, mismatched = 0;
  for (Param* param : model.parameters()) {
    // Check a subset of entries to bound runtime; stride covers the tensor.
    const std::int64_t n = param->value.size();
    const std::int64_t stride = std::max<std::int64_t>(1, n / 7);
    for (std::int64_t j = 0; j < n; j += stride) {
      float& w = param->value.data()[j];
      const float original = w;
      w = original + eps;
      const double up = loss_of(model, batch, x, labels);
      w = original - eps;
      const double down = loss_of(model, batch, x, labels);
      w = original;
      const double numeric = (up - down) / (2.0 * eps);
      const double analytic = param->grad.data()[j];
      const double tolerance = 2e-3 + 0.05 * std::abs(numeric);
      if (std::abs(analytic - numeric) > tolerance) {
        ++mismatched;
        // Even a kink-straddling coordinate must not be wildly off.
        EXPECT_LT(std::abs(analytic - numeric), 20.0 * tolerance)
            << param->name << "[" << j << "] analytic=" << analytic
            << " numeric=" << numeric;
      }
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
  EXPECT_LE(mismatched, std::max(1, checked / 10))
      << mismatched << " of " << checked << " coordinates disagree";
}

TEST(ConvLayer, GcnForwardShape) {
  ConvLayer layer(ConvKind::kGcn, 3, 5, true, 1);
  const LayerBlock block = tiny_block();
  Tensor x(4, 3);
  uniform_init(x, -1.0f, 1.0f, 2);
  Tensor y;
  layer.forward(block, x, y);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.cols(), 5);
  // ReLU active: no negatives.
  for (float v : y.flat()) EXPECT_GE(v, 0.0f);
}

TEST(ConvLayer, SageAggregationIsSelfConcatMean) {
  // Identity-like check with W untouched: inspect the aggregate via a
  // 1-neighbor destination.
  ConvLayer layer(ConvKind::kSage, 2, 2, false, 3);
  LayerBlock block;
  block.num_dst = 1;
  block.src_nodes = {0, 1};
  block.indptr = {0, 1};
  block.indices = {1};
  Tensor x(2, 2);
  x.at(0, 0) = 1.0f;
  x.at(0, 1) = 2.0f;
  x.at(1, 0) = 3.0f;
  x.at(1, 1) = 4.0f;
  // Set W = I over the concat so output = [self | mean].
  layer.weight().value.zero();
  layer.weight().value.at(0, 0) = 1.0f;  // self -> out0
  layer.weight().value.at(2, 1) = 1.0f;  // mean(col0) -> out1
  Tensor y;
  layer.forward(block, x, y);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.0f);  // self feature, col 0
  EXPECT_FLOAT_EQ(y.at(0, 1), 3.0f);  // neighbor mean, col 0
}

TEST(ConvLayer, SageMeanOfIsolatedVertexIsZero) {
  ConvLayer layer(ConvKind::kSage, 2, 2, false, 3);
  LayerBlock block;
  block.num_dst = 1;
  block.src_nodes = {0};
  block.indptr = {0, 0};
  block.indices = {};
  Tensor x(1, 2, 1.0f);
  layer.weight().value.zero();
  layer.weight().value.at(2, 0) = 1.0f;  // mean part only
  Tensor y;
  layer.forward(block, x, y);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
}

TEST(ConvLayer, RejectsBadShapes) {
  ConvLayer layer(ConvKind::kGcn, 3, 5, true, 1);
  const LayerBlock block = tiny_block();
  Tensor wrong(4, 2);
  Tensor y;
  EXPECT_THROW(layer.forward(block, wrong, y), std::invalid_argument);
  EXPECT_THROW(ConvLayer(ConvKind::kGcn, 0, 5, true, 1), std::invalid_argument);
}

class GradCheckTest : public ::testing::TestWithParam<GnnKind> {};

TEST_P(GradCheckTest, SingleLayerGradientsMatchFiniteDifference) {
  ModelConfig config;
  config.kind = GetParam();
  config.dims = {3, 4};
  config.seed = 11;
  GnnModel model(config);
  const MiniBatch batch = tiny_batch();
  Tensor x(4, 3);
  uniform_init(x, -1.0f, 1.0f, 5);
  check_gradients(model, batch, x, {1, 3});
}

TEST_P(GradCheckTest, TwoLayerGradientsMatchFiniteDifference) {
  // Two chained blocks on a small sampled graph.
  RmatParams rp;
  rp.scale = 6;
  rp.edge_factor = 4;
  const CsrGraph g = generate_rmat(rp);
  std::vector<VertexId> seeds;
  for (VertexId v = 0; v < g.num_vertices() && seeds.size() < 3; ++v) {
    if (g.degree(v) > 1) seeds.push_back(v);
  }
  ASSERT_GE(seeds.size(), 2u);
  NeighborSampler sampler(g, {3, 2}, 4);
  const MiniBatch batch = sampler.sample(seeds);

  ModelConfig config;
  config.kind = GetParam();
  config.dims = {3, 4, 3};
  config.seed = 21;
  GnnModel model(config);
  Tensor x(batch.blocks.front().num_src(), 3);
  uniform_init(x, -1.0f, 1.0f, 6);
  std::vector<int> labels(batch.seeds.size());
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<int>(i % 3);
  check_gradients(model, batch, x, labels);
}

INSTANTIATE_TEST_SUITE_P(Models, GradCheckTest,
                         ::testing::Values(GnnKind::kGcn, GnnKind::kSage, GnnKind::kGat),
                         [](const auto& info) {
                           switch (info.param) {
                             case GnnKind::kGcn: return "GCN";
                             case GnnKind::kSage: return "SAGE";
                             case GnnKind::kGat: return "GAT";
                           }
                           return "?";
                         });

TEST(GatLayer, AttentionCoefficientsFormDistribution) {
  // After forward, the per-destination attention (self + neighbors) must
  // be a probability distribution; verify indirectly: if all inputs are
  // identical, attention is uniform and the output equals z for any
  // neighborhood size.
  ModelConfig config;
  config.kind = GnnKind::kGat;
  config.dims = {3, 4};
  config.seed = 31;
  GnnModel model(config);
  const MiniBatch batch = tiny_batch();
  Tensor x(4, 3, 1.0f);  // identical rows
  const Tensor out = model.forward(batch, x);
  // Both destinations aggregate the same z rows -> identical outputs.
  for (std::int64_t j = 0; j < out.cols(); ++j) {
    EXPECT_NEAR(out.at(0, j), out.at(1, j), 1e-5f);
  }
}

TEST(GatLayer, HasAttentionParameters) {
  ModelConfig config;
  config.kind = GnnKind::kGat;
  config.dims = {3, 4, 2};
  GnnModel model(config);
  // Per layer: W, b, a_l, a_r -> 8 params for 2 layers.
  EXPECT_EQ(model.parameters().size(), 8u);
  EXPECT_EQ(parse_gnn_kind("gat"), GnnKind::kGat);
  EXPECT_STREQ(gnn_kind_name(GnnKind::kGat), "GAT");
}

TEST(GnnModel, ForwardShapeAndDeterminism) {
  ModelConfig config;
  config.dims = {3, 8, 2};
  GnnModel model(config);
  RmatParams rp;
  rp.scale = 6;
  const CsrGraph g = generate_rmat(rp);
  NeighborSampler sampler(g, {4, 4}, 2);
  std::vector<VertexId> seeds = {0, 1, 2, 3};
  const MiniBatch batch = sampler.sample(seeds);
  Tensor x(batch.blocks.front().num_src(), 3);
  uniform_init(x, -1.0f, 1.0f, 9);
  const Tensor a = model.forward(batch, x);
  const Tensor b = model.forward(batch, x);
  EXPECT_EQ(a.rows(), 4);
  EXPECT_EQ(a.cols(), 2);
  EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(a, b), 0.0);
}

TEST(GnnModel, ParameterPlumbing) {
  ModelConfig config;
  config.kind = GnnKind::kSage;
  config.dims = {3, 8, 2};
  GnnModel model(config);
  const auto params = model.parameters();
  ASSERT_EQ(params.size(), 4u);  // W0, b0, W1, b1
  EXPECT_EQ(params[0]->value.rows(), 6);  // SAGE: 2 * f_in
  EXPECT_EQ(params[0]->value.cols(), 8);
  EXPECT_GT(model.num_parameters(), 0);
  EXPECT_DOUBLE_EQ(model.model_bytes(), model.num_parameters() * 4.0);

  GnnModel other(config);
  normal_init(other.parameters()[0]->value, 1.0f, 99);
  model.copy_values_from(other);
  EXPECT_DOUBLE_EQ(
      Tensor::max_abs_diff(model.parameters()[0]->value, other.parameters()[0]->value), 0.0);
}

TEST(GnnModel, ZeroGradClearsAccumulation) {
  ModelConfig config;
  config.dims = {3, 4};
  GnnModel model(config);
  const MiniBatch batch = tiny_batch();
  Tensor x(4, 3);
  uniform_init(x, -1.0f, 1.0f, 5);
  const Tensor logits = model.forward(batch, x);
  const LossResult loss = softmax_cross_entropy(logits, std::vector<int>{0, 1});
  model.backward(batch, loss.d_logits);
  EXPECT_GT(model.parameters()[0]->grad.norm(), 0.0);
  model.zero_grad();
  EXPECT_DOUBLE_EQ(model.parameters()[0]->grad.norm(), 0.0);
}

TEST(ParseGnnKind, AcceptsAliases) {
  EXPECT_EQ(parse_gnn_kind("gcn"), GnnKind::kGcn);
  EXPECT_EQ(parse_gnn_kind("GCN"), GnnKind::kGcn);
  EXPECT_EQ(parse_gnn_kind("GraphSAGE"), GnnKind::kSage);
  EXPECT_EQ(parse_gnn_kind("sage"), GnnKind::kSage);
  EXPECT_EQ(parse_gnn_kind("GAT"), GnnKind::kGat);
  EXPECT_THROW(parse_gnn_kind("gin"), std::invalid_argument);
}

TEST(Loss, UniformLogitsGiveLogC) {
  Tensor logits(2, 4, 0.0f);
  const LossResult result = softmax_cross_entropy(logits, std::vector<int>{0, 3});
  EXPECT_NEAR(result.loss, std::log(4.0), 1e-6);
}

TEST(Loss, GradientSumsToZeroPerRow) {
  Tensor logits(3, 5);
  uniform_init(logits, -2.0f, 2.0f, 8);
  const LossResult result = softmax_cross_entropy(logits, std::vector<int>{1, 0, 4});
  for (std::int64_t i = 0; i < 3; ++i) {
    double sum = 0.0;
    for (std::int64_t j = 0; j < 5; ++j) sum += result.d_logits.at(i, j);
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(Loss, PerfectPredictionLowLoss) {
  Tensor logits(1, 3, 0.0f);
  logits.at(0, 2) = 50.0f;
  const LossResult result = softmax_cross_entropy(logits, std::vector<int>{2});
  EXPECT_LT(result.loss, 1e-6);
  EXPECT_EQ(result.correct, 1);
}

TEST(Loss, RejectsBadLabels) {
  Tensor logits(1, 3, 0.0f);
  EXPECT_THROW(softmax_cross_entropy(logits, std::vector<int>{3}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, std::vector<int>{-1}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, std::vector<int>{0, 1}), std::invalid_argument);
}

TEST(Loss, NumericallyStableWithHugeLogits) {
  Tensor logits(1, 2, 0.0f);
  logits.at(0, 0) = 1e4f;
  logits.at(0, 1) = -1e4f;
  const LossResult result = softmax_cross_entropy(logits, std::vector<int>{0});
  EXPECT_TRUE(std::isfinite(result.loss));
  EXPECT_LT(result.loss, 1e-6);
}

TEST(Optimizer, SgdStepMovesAgainstGradient) {
  Param p("w", 1, 1);
  p.value.at(0, 0) = 1.0f;
  p.grad.at(0, 0) = 2.0f;
  SgdOptimizer opt(0.1);
  std::vector<Param*> params = {&p};
  opt.step(params);
  EXPECT_NEAR(p.value.at(0, 0), 0.8f, 1e-6);
}

TEST(Optimizer, SgdMomentumAccumulates) {
  Param p("w", 1, 1);
  p.grad.at(0, 0) = 1.0f;
  SgdOptimizer opt(0.1, 0.9);
  std::vector<Param*> params = {&p};
  opt.step(params);  // v=1,   w -= 0.1
  opt.step(params);  // v=1.9, w -= 0.19
  EXPECT_NEAR(p.value.at(0, 0), -0.29f, 1e-5);
}

TEST(Optimizer, WeightDecayShrinksWeights) {
  Param p("w", 1, 1);
  p.value.at(0, 0) = 10.0f;
  p.grad.at(0, 0) = 0.0f;
  SgdOptimizer opt(0.1, 0.0, 0.5);
  std::vector<Param*> params = {&p};
  opt.step(params);
  EXPECT_LT(p.value.at(0, 0), 10.0f);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  // minimize f(w) = (w - 3)^2 with grad = 2(w - 3).
  Param p("w", 1, 1);
  p.value.at(0, 0) = 0.0f;
  AdamOptimizer opt(0.1);
  std::vector<Param*> params = {&p};
  for (int i = 0; i < 300; ++i) {
    p.grad.at(0, 0) = 2.0f * (p.value.at(0, 0) - 3.0f);
    opt.step(params);
  }
  EXPECT_NEAR(p.value.at(0, 0), 3.0f, 0.05f);
}

TEST(Optimizer, RejectsNonPositiveLr) {
  EXPECT_THROW(SgdOptimizer(0.0), std::invalid_argument);
  EXPECT_THROW(AdamOptimizer(-1.0), std::invalid_argument);
}

TEST(Metrics, AccuracyCountsArgmax) {
  Tensor logits(3, 2, 0.0f);
  logits.at(0, 1) = 1.0f;  // predicts 1
  logits.at(1, 0) = 1.0f;  // predicts 0
  logits.at(2, 1) = 1.0f;  // predicts 1
  const std::vector<int> labels = {1, 0, 0};
  EXPECT_NEAR(accuracy(logits, labels), 2.0 / 3.0, 1e-9);
}

TEST(Metrics, AccuracyEmptyIsZero) {
  Tensor logits(0, 3);
  EXPECT_DOUBLE_EQ(accuracy(logits, std::vector<int>{}), 0.0);
}

}  // namespace
}  // namespace hyscale
