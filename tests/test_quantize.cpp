// Tests for tensor/quantize: the §VIII data-quantization extension.
#include <gtest/gtest.h>

#include <cfenv>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "graph/datasets.hpp"
#include "runtime/hybrid_trainer.hpp"
#include "tensor/init.hpp"
#include "tensor/quantize.hpp"

namespace hyscale {
namespace {

TEST(Quantize, RoundTripErrorBoundedByHalfStep) {
  Tensor x(32, 64);
  uniform_init(x, -5.0f, 5.0f, 1);
  Tensor original = x;
  const double error = quantize_roundtrip_int8(x);
  // Per-row error bound: scale/2 = max|row| / 254.
  for (std::int64_t i = 0; i < original.rows(); ++i) {
    float max_abs = 0.0f;
    for (std::int64_t j = 0; j < original.cols(); ++j)
      max_abs = std::max(max_abs, std::abs(original.at(i, j)));
    for (std::int64_t j = 0; j < original.cols(); ++j) {
      EXPECT_LE(std::abs(original.at(i, j) - x.at(i, j)), max_abs / 254.0f + 1e-6f);
    }
  }
  EXPECT_GT(error, 0.0);
  EXPECT_LT(error, 5.0 / 127.0 + 1e-6);
}

TEST(Quantize, ZeroRowsSurviveExactly) {
  Tensor x(3, 4, 0.0f);
  const double error = quantize_roundtrip_int8(x);
  EXPECT_DOUBLE_EQ(error, 0.0);
  for (float v : x.flat()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Quantize, ExtremesMapToFullRange) {
  Tensor x(1, 2);
  x.at(0, 0) = 127.0f;
  x.at(0, 1) = -127.0f;
  const QuantizedRows q = quantize_int8(x);
  EXPECT_EQ(q.values[0], 127);
  EXPECT_EQ(q.values[1], -127);
  EXPECT_FLOAT_EQ(q.scales[0], 1.0f);
}

TEST(Quantize, WireBytesAreElementPlusScales) {
  Tensor x(10, 16);
  uniform_init(x, -1, 1, 2);
  const QuantizedRows q = quantize_int8(x);
  EXPECT_DOUBLE_EQ(q.wire_bytes(), 10.0 * 16.0 + 10.0 * 4.0);
  // 4x smaller than fp32 (minus scale overhead).
  EXPECT_LT(q.wire_bytes(), x.size() * 4.0 / 3.0);
}

TEST(Quantize, PrecisionNamesAndWireBytes) {
  EXPECT_STREQ(transfer_precision_name(TransferPrecision::kInt8), "int8");
  EXPECT_DOUBLE_EQ(wire_bytes_per_element(TransferPrecision::kFp32), 4.0);
  EXPECT_DOUBLE_EQ(wire_bytes_per_element(TransferPrecision::kFp16), 2.0);
  EXPECT_DOUBLE_EQ(wire_bytes_per_element(TransferPrecision::kInt8), 1.0);
}

TEST(Quantize, RoundingIsIndependentOfFpRoundingMode) {
  // Regression: quantize used std::nearbyint, which honors the ambient
  // FP rounding mode — a thread (or library) that flips the mode would
  // silently change quantized features.  std::round is pinned to
  // half-away-from-zero under every mode.
  const float src[6] = {2.5f, -2.5f, 1.5f, -1.5f, 0.5f, -0.5f};
  const std::int8_t expected[6] = {3, -3, 2, -2, 1, -1};
  const int modes[] = {FE_TONEAREST, FE_DOWNWARD, FE_UPWARD, FE_TOWARDZERO};
  const int saved = std::fegetround();
  for (const int mode : modes) {
    ASSERT_EQ(std::fesetround(mode), 0);
    std::int8_t dst[6] = {};
    quantize_row_int8(src, 6, 1.0f, dst);
    for (int j = 0; j < 6; ++j) {
      EXPECT_EQ(dst[j], expected[j]) << "mode=" << mode << " j=" << j;
    }
  }
  std::fesetround(saved);
}

TEST(Quantize, SharedRowRuleMatchesBulkQuantizer) {
  Tensor x(4, 17);
  uniform_init(x, -3.0f, 3.0f, 7);
  const QuantizedRows q = quantize_int8(x);
  for (std::int64_t i = 0; i < x.rows(); ++i) {
    const float scale = int8_row_scale(x.row(i).data(), x.cols());
    EXPECT_FLOAT_EQ(scale, q.scales[static_cast<std::size_t>(i)]);
    // The fused wire round-trip must reproduce quantize+dequantize
    // exactly — it is what makes cache hits and host misses agree.
    std::vector<float> fused(static_cast<std::size_t>(x.cols()));
    wire_roundtrip_row_int8(x.row(i).data(), fused.data(), x.cols());
    for (std::int64_t j = 0; j < x.cols(); ++j) {
      const auto qv = q.values[static_cast<std::size_t>(i * x.cols() + j)];
      EXPECT_FLOAT_EQ(fused[static_cast<std::size_t>(j)], static_cast<float>(qv) * scale);
    }
  }
}

TEST(Quantize, DequantizeHonorsPresizedDestination) {
  Tensor x(5, 8);
  uniform_init(x, -2.0f, 2.0f, 3);
  const QuantizedRows q = quantize_int8(x);

  Tensor presized(5, 8, 42.0f);
  const float* storage = presized.flat().data();
  dequantize_int8(q, presized);
  // Written in place: same storage, no reallocation, values overwritten.
  EXPECT_EQ(presized.flat().data(), storage);
  EXPECT_LT(Tensor::max_abs_diff(presized, x), 2.0f / 127.0f + 1e-6f);

  Tensor empty;
  dequantize_int8(q, empty);  // empty destinations are resized, as before
  EXPECT_EQ(empty.rows(), 5);
  EXPECT_EQ(empty.cols(), 8);

  Tensor wrong(3, 8, 0.0f);  // regression: was silently resized away
  EXPECT_THROW(dequantize_int8(q, wrong), std::invalid_argument);
}

TEST(Quantize, Int8TransfersShrinkTransferStage) {
  MaterializeOptions options;
  options.target_vertices = 1 << 11;
  options.label_signal = false;
  const Dataset ds = materialize_dataset("ogbn-products", options);

  auto transfer_time = [&](TransferPrecision precision) {
    HybridTrainerConfig config;
    config.real_compute = false;
    config.drm = false;
    config.transfer_precision = precision;
    HybridTrainer trainer(ds, cpu_fpga_platform(4), config);
    return trainer.train_epoch().mean_times.transfer;
  };
  const Seconds fp32 = transfer_time(TransferPrecision::kFp32);
  const Seconds int8 = transfer_time(TransferPrecision::kInt8);
  EXPECT_LT(int8, fp32);
  EXPECT_GT(int8, fp32 / 6.0);  // topology bytes and latency remain
}

TEST(Quantize, Int8TrainingStillConverges) {
  const Dataset ds = make_community_dataset(3, 96, 12, 5);
  HybridTrainerConfig config;
  config.model_kind = GnnKind::kSage;
  config.fanouts = {5, 5};
  config.learning_rate = 0.3;
  config.real_batch_total = 96;
  config.real_iterations_cap = 30;
  config.per_trainer_batch = 256;
  config.transfer_precision = TransferPrecision::kInt8;
  HybridTrainer trainer(ds, cpu_fpga_platform(2), config);
  const double first = trainer.train_epoch().loss;
  for (int e = 0; e < 5; ++e) trainer.train_epoch();
  const double last = trainer.train_epoch().loss;
  EXPECT_LT(last, first);
  EXPECT_GT(trainer.evaluate_accuracy(), 0.55);
}

}  // namespace
}  // namespace hyscale
