// Randomized stream-vs-rebuild differential harness for the streaming
// subsystem (src/stream/), the deletion-correctness backstop.
//
// A seeded driver interleaves edge insertions, edge retractions, vertex
// arrivals (with id recycling), vertex retirements, feature refreshes,
// publishes and compactions against a StreamingGraph, while a SHADOW
// MODEL — a plain undirected edge set plus alive flags — tracks the
// intended live graph.  Every accept/reject decision is asserted
// against the shadow's expectation, and at every publish point the
// published GraphVersion is checked against a from-scratch CSR rebuilt
// from the shadow:
//
//   * per-vertex live adjacency element-identical to the rebuild
//     (tombstone skips + overlay merge = one-shot build_csr),
//   * sampled MiniBatches BIT-IDENTICAL between OverlaySampler on the
//     version and NeighborSampler on the rebuild (same fanouts, same
//     seed) — the strongest possible "sampling distribution" check,
//   * full-neighborhood computation graphs identical and the forward
//     pass EXACTLY equal (bitwise) on shared weights and features,
//   * edge-count conservation: base + ingested - removed.
//
// Deletion logic is notoriously easy to get subtly wrong (double
// delete, delete-then-reinsert across a compaction boundary, sampling
// weight drift); 1000+ randomized interleaved steps per seed hunt the
// interleavings the hand-written property tests in test_stream.cpp
// cannot enumerate.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/hyscale.hpp"

namespace hyscale {
namespace {

ModelConfig small_model_config() {
  ModelConfig config;
  config.kind = GnnKind::kSage;
  config.dims = {8, 16, 3};
  config.seed = 11;
  return config;
}

/// Intended live graph: canonical (lo, hi) undirected edges with O(1)
/// uniform pick (swap-remove vector + position map) and alive flags.
class ShadowModel {
 public:
  explicit ShadowModel(const CsrGraph& base) : n_(base.num_vertices()) {
    alive_.assign(static_cast<std::size_t>(n_), 1);
    for (VertexId v = 0; v < n_; ++v) {
      for (VertexId u : base.neighbors(v)) {
        if (v < u) insert(v, u);
      }
    }
  }

  VertexId num_vertices() const { return n_; }
  bool alive(VertexId v) const { return alive_[static_cast<std::size_t>(v)] != 0; }
  std::int64_t num_alive_streamed(VertexId dataset_vertices) const {
    std::int64_t count = 0;
    for (VertexId v = dataset_vertices; v < n_; ++v) count += alive(v);
    return count;
  }

  bool has(VertexId u, VertexId v) const { return pos_.count(canonical(u, v)) != 0; }

  bool expect_insert(VertexId u, VertexId v) const {
    return u != v && alive(u) && alive(v) && !has(u, v);
  }
  bool expect_remove(VertexId u, VertexId v) const { return u != v && has(u, v); }

  void insert(VertexId u, VertexId v) {
    const auto edge = canonical(u, v);
    pos_.emplace(edge, edges_.size());
    edges_.push_back(edge);
  }

  void erase(VertexId u, VertexId v) {
    const auto it = pos_.find(canonical(u, v));
    ASSERT_NE(it, pos_.end());
    const std::size_t slot = it->second;
    pos_.erase(it);
    if (slot + 1 != edges_.size()) {
      edges_[slot] = edges_.back();
      pos_[edges_[slot]] = slot;
    }
    edges_.pop_back();
  }

  /// Marks v dead after dropping its incident edges.
  void kill(VertexId v) {
    std::vector<std::pair<VertexId, VertexId>> incident;
    for (const auto& e : edges_) {
      if (e.first == v || e.second == v) incident.push_back(e);
    }
    for (const auto& e : incident) erase(e.first, e.second);
    alive_[static_cast<std::size_t>(v)] = 0;
  }

  void revive(VertexId v) {
    if (v == n_) {
      ++n_;
      alive_.push_back(1);
      return;
    }
    ASSERT_LT(v, n_);
    ASSERT_FALSE(alive(v));
    alive_[static_cast<std::size_t>(v)] = 1;
  }

  std::pair<VertexId, VertexId> pick_edge(Xoshiro256& rng) const {
    return edges_[static_cast<std::size_t>(
        rng.bounded(static_cast<std::uint64_t>(edges_.size())))];
  }
  bool empty() const { return edges_.empty(); }
  std::int64_t directed_edges() const { return static_cast<std::int64_t>(2 * edges_.size()); }

  CsrGraph rebuild() const {
    std::vector<std::pair<VertexId, VertexId>> edges = edges_;
    return build_csr(n_, std::move(edges));  // symmetrize + sort + dedup
  }

 private:
  static std::pair<VertexId, VertexId> canonical(VertexId u, VertexId v) {
    return {std::min(u, v), std::max(u, v)};
  }

  VertexId n_ = 0;
  std::vector<char> alive_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
  std::map<std::pair<VertexId, VertexId>, std::size_t> pos_;
};

void expect_blocks_equal(const MiniBatch& actual, const MiniBatch& expected) {
  ASSERT_EQ(actual.blocks.size(), expected.blocks.size());
  for (std::size_t l = 0; l < expected.blocks.size(); ++l) {
    EXPECT_EQ(actual.blocks[l].num_dst, expected.blocks[l].num_dst) << "layer " << l;
    EXPECT_EQ(actual.blocks[l].src_nodes, expected.blocks[l].src_nodes) << "layer " << l;
    EXPECT_EQ(actual.blocks[l].indptr, expected.blocks[l].indptr) << "layer " << l;
    EXPECT_EQ(actual.blocks[l].indices, expected.blocks[l].indices) << "layer " << l;
    EXPECT_EQ(actual.blocks[l].src_degrees, expected.blocks[l].src_degrees) << "layer " << l;
  }
}

/// Full stream-vs-rebuild check at one publish point.
void verify_against_rebuild(const StreamingGraph& graph, const GraphVersion& version,
                            const ShadowModel& shadow, GnnModel& model, std::uint64_t check_seed,
                            std::int64_t step) {
  SCOPED_TRACE("step " + std::to_string(step));
  ASSERT_EQ(version.num_vertices(), shadow.num_vertices());
  const CsrGraph rebuilt = shadow.rebuild();
  ASSERT_EQ(version.num_edges(), rebuilt.num_edges());
  ASSERT_TRUE(version.validate());

  // Per-vertex live adjacency: element-identical to the rebuild (the
  // overlay merge and skip-over-tombstone iteration both preserve the
  // sorted order build_csr produces).
  std::vector<VertexId> live;
  for (VertexId v = 0; v < shadow.num_vertices(); ++v) {
    ASSERT_EQ(version.degree(v), rebuilt.degree(v)) << "vertex " << v;
    ASSERT_EQ(version.alive(v), shadow.alive(v)) << "vertex " << v;
    live.clear();
    version.append_neighbors(v, live);
    const auto expected = rebuilt.neighbors(v);
    ASSERT_TRUE(std::equal(live.begin(), live.end(), expected.begin(), expected.end()))
        << "vertex " << v;
  }

  // Probe seeds: deterministic spread over the id space; dead vertices
  // are fair game (they serve an isolated, zero-feature entity).
  Xoshiro256 rng(check_seed);
  std::vector<VertexId> seeds;
  for (int i = 0; i < 4; ++i) {
    seeds.push_back(
        static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(shadow.num_vertices()))));
  }

  // Sampled mode: bit-identical MiniBatch for the same fanouts + seed.
  OverlaySampler overlay(
      std::shared_ptr<const GraphVersion>(&version, [](const GraphVersion*) {}), {4, 3},
      check_seed);
  NeighborSampler reference(rebuilt, {4, 3}, check_seed);
  expect_blocks_equal(overlay.sample(seeds), reference.sample(seeds));

  // Exact mode: identical full-neighborhood computation graphs, then
  // bitwise-equal logits on shared weights and the live feature store.
  const MiniBatch full_stream = sample_full_overlay(version, seeds, /*num_layers=*/2);
  const MiniBatch full_rebuilt = sample_full(rebuilt, seeds, /*num_layers=*/2);
  expect_blocks_equal(full_stream, full_rebuilt);
  Tensor x;
  const auto& nodes = full_stream.input_nodes();
  graph.gather(std::span<const VertexId>(nodes.data(), nodes.size()), x);
  const Tensor logits_stream = model.forward(full_stream, x);
  const Tensor logits_rebuilt = model.forward(full_rebuilt, x);
  EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(logits_stream, logits_rebuilt), 0.0);
}

struct MixConfig {
  double insert = 0.30;
  double remove = 0.22;
  double vertex_add = 0.06;
  double vertex_remove = 0.05;
  double feature = 0.08;
  double annihilate = 0.0;  ///< in-place cancelled-pair GC (net no-op)
  double ttl_sweep = 0.0;   ///< TTL expiry pass; shadow mirrors per-vertex expiry
  double publish = 0.17;
  double compact = 0.08;
  /// Parked-fold interleaving: cut a fold, hold its off-lock build open
  /// (test hook), and land churn + a gated annihilation pass + a
  /// VERIFIED publish against the in-flight cut before the rebase.
  double fold_interleave = 0.0;
  // remainder: publish + compact back to back
};

void run_differential(std::uint64_t seed, std::int64_t steps, const MixConfig& mix) {
  const Dataset ds = make_community_dataset(3, 32, 8, 2);
  const VertexId dataset_vertices = ds.graph.num_vertices();
  StreamingGraph graph(ds);
  ShadowModel shadow(ds.graph);
  GnnModel model(small_model_config());
  Xoshiro256 rng(seed);

  std::int64_t publish_points = 0;
  std::int64_t accepted_inserts = 0;
  std::int64_t accepted_removes = 0;
  std::vector<float> row(8);

  auto try_insert = [&](VertexId u, VertexId v) {
    const bool expected = shadow.expect_insert(u, v);
    ASSERT_EQ(graph.add_edge(u, v), expected) << u << "-" << v;
    if (expected) {
      shadow.insert(u, v);
      accepted_inserts += 2;
    }
  };

  for (std::int64_t step = 0; step < steps; ++step) {
    const double r = rng.uniform();
    const VertexId n = shadow.num_vertices();
    const double c_insert = mix.insert;
    const double c_remove = c_insert + mix.remove;
    const double c_vadd = c_remove + mix.vertex_add;
    const double c_vdel = c_vadd + mix.vertex_remove;
    const double c_feat = c_vdel + mix.feature;
    const double c_annihilate = c_feat + mix.annihilate;
    const double c_sweep = c_annihilate + mix.ttl_sweep;
    const double c_publish = c_sweep + mix.publish;
    const double c_compact = c_publish + mix.compact;
    const double c_fold = c_compact + mix.fold_interleave;

    if (r < c_insert) {
      const auto u = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
      const auto v = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
      try_insert(u, v);
    } else if (r < c_remove) {
      // Mostly retract real edges; sometimes probe a random pair so
      // double deletes and never-existed edges stay covered.
      if (!shadow.empty() && rng.uniform() < 0.8) {
        const auto [u, v] = shadow.pick_edge(rng);
        ASSERT_TRUE(graph.remove_edge(u, v)) << u << "-" << v;
        shadow.erase(u, v);
        accepted_removes += 2;
      } else {
        const auto u = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
        const auto v = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
        const bool expected = shadow.expect_remove(u, v);
        ASSERT_EQ(graph.remove_edge(u, v), expected) << u << "-" << v;
        if (expected) {
          shadow.erase(u, v);
          accepted_removes += 2;
        }
      }
    } else if (r < c_vadd) {
      for (float& x : row) x = static_cast<float>(rng.normal());
      const VertexId v = graph.add_vertex(row);
      // Either the space grew or a scrubbed streamed-in id came back.
      if (v != shadow.num_vertices()) {
        ASSERT_GE(v, dataset_vertices);
        ASSERT_FALSE(shadow.alive(v));
      }
      shadow.revive(v);
      // A couple of attachment edges so new vertices join the topology.
      for (int e = 0; e < 2; ++e) {
        const auto u = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
        try_insert(v, u);
      }
    } else if (r < c_vdel) {
      // Retire any alive vertex — dataset or streamed-in.
      const auto start = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
      VertexId victim = -1;
      for (VertexId probe = 0; probe < n; ++probe) {
        const VertexId v = (start + probe) % n;
        if (shadow.alive(v)) {
          victim = v;
          break;
        }
      }
      if (victim >= 0) {
        const std::int64_t before = shadow.directed_edges();
        ASSERT_TRUE(graph.remove_vertex(victim));
        ASSERT_FALSE(graph.remove_vertex(victim));  // double retire rejected
        shadow.kill(victim);
        accepted_removes += before - shadow.directed_edges();
      }
    } else if (r < c_feat) {
      const auto v = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
      for (float& x : row) x = static_cast<float>(rng.normal());
      // Dead vertices refuse feature writes — their zeroed row must
      // never be repopulated.
      ASSERT_EQ(graph.update_feature(v, row), shadow.alive(v)) << v;
    } else if (r < c_annihilate) {
      // In-place cancelled-pair GC: net topology unchanged, so the
      // shadow is untouched — the next publish point proves it.
      graph.annihilate();
    } else if (r < c_sweep) {
      // TTL sweep at ttl 0 (everything idle expires) with a small
      // burst cap: deterministic ascending-id retirement of streamed-in
      // entities, mirrored by per-vertex expiry in the shadow.
      constexpr std::int64_t kSweepCap = 2;
      const std::int64_t alive_streamed = shadow.num_alive_streamed(dataset_vertices);
      const std::int64_t retired = graph.sweep_expired(/*ttl=*/0.0, kSweepCap);
      ASSERT_EQ(retired, std::min<std::int64_t>(kSweepCap, alive_streamed));
      std::int64_t killed = 0;
      for (VertexId v = dataset_vertices; v < shadow.num_vertices() && killed < retired; ++v) {
        if (!shadow.alive(v)) continue;
        const std::int64_t before = shadow.directed_edges();
        shadow.kill(v);
        accepted_removes += before - shadow.directed_edges();
        ++killed;
      }
    } else if (r < c_publish) {
      const auto version = graph.publish();
      verify_against_rebuild(graph, *version, shadow, model, seed ^ (0xabcdULL + step), step);
      ++publish_points;
    } else if (r < c_compact) {
      graph.compact();
      verify_against_rebuild(graph, *graph.current(), shadow, model, seed ^ (0x1234ULL + step),
                             step);
      ++publish_points;
    } else if (r < c_fold) {
      // Parked-fold interleaving: cut a fold and hold its off-lock
      // build open while churn, a gated annihilation pass and a publish
      // land against it.  The mid-fold publish must STILL be
      // bit-identical to a from-scratch rebuild (old base + complete
      // overlay), and so must the state the rebase leaves behind.
      if (graph.overlay_ops() == 0 && !graph.has_pending_scrubs()) {
        // Nothing for the fold to merge — compact() would no-op before
        // reaching the park point; take a verified publish instead.
        verify_against_rebuild(graph, *graph.publish(), shadow, model,
                               seed ^ (0x7777ULL + step), step);
        ++publish_points;
      } else {
        std::mutex fold_mutex;
        std::condition_variable fold_cv;
        bool parked = false;
        bool release = false;
        std::atomic<bool> done{false};
        graph.set_fold_hook([&] {
          std::unique_lock lock(fold_mutex);
          parked = true;
          fold_cv.notify_all();
          fold_cv.wait(lock, [&] { return release; });
        });
        std::thread folder([&] {
          graph.compact();
          {
            // Under the mutex so the no-op case cannot slip a lost
            // wakeup between the waiter's predicate check and its block.
            std::lock_guard lock(fold_mutex);
            done.store(true);
          }
          fold_cv.notify_all();
        });
        {
          std::unique_lock lock(fold_mutex);
          fold_cv.wait(lock, [&] { return parked || done.load(); });
        }
        if (parked) {
          // NOTE: only EXPECT_* between spawn and join — a fatal
          // failure returning early would abandon a joinable thread.
          for (int i = 0; i < 3; ++i) {
            const auto u = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
            const auto v = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
            const bool expected = shadow.expect_insert(u, v);
            EXPECT_EQ(graph.add_edge(u, v), expected) << u << "-" << v;
            if (expected) {
              shadow.insert(u, v);
              accepted_inserts += 2;
            }
          }
          if (!shadow.empty()) {
            const auto [u, v] = shadow.pick_edge(rng);
            EXPECT_TRUE(graph.remove_edge(u, v)) << u << "-" << v;
            shadow.erase(u, v);
            accepted_removes += 2;
          }
          graph.annihilate();           // clamped to the in-flight cut
          EXPECT_FALSE(graph.compact());  // second fold refused, not blocked
          const auto mid = graph.publish();
          verify_against_rebuild(graph, *mid, shadow, model, seed ^ (0x2222ULL + step), step);
          ++publish_points;
          {
            std::lock_guard lock(fold_mutex);
            release = true;
          }
          fold_cv.notify_all();
        }
        folder.join();
        graph.set_fold_hook(nullptr);
        verify_against_rebuild(graph, *graph.current(), shadow, model,
                               seed ^ (0x3333ULL + step), step);
        ++publish_points;
      }
    } else {
      graph.publish();
      graph.compact();
      verify_against_rebuild(graph, *graph.current(), shadow, model, seed ^ (0x5678ULL + step),
                             step);
      ++publish_points;
    }
    if (::testing::Test::HasFatalFailure()) return;
  }

  // Trailing publish: conservation + one final full check.
  const auto version = graph.publish();
  verify_against_rebuild(graph, *version, shadow, model, seed ^ 0x9999ULL, steps);
  ++publish_points;
  const StreamStats stats = graph.stats();
  EXPECT_EQ(stats.ingested_edges, accepted_inserts);
  EXPECT_EQ(stats.removed_edges, accepted_removes);
  EXPECT_EQ(version->num_edges(),
            ds.graph.num_edges() + stats.ingested_edges - stats.removed_edges);
  EXPECT_EQ(version->num_edges(), shadow.directed_edges());
  // The mix must actually have exercised the machinery.
  EXPECT_GT(publish_points, 20);
  EXPECT_GT(stats.removed_edges, 0);
  EXPECT_GT(stats.removed_vertices, 0);
  EXPECT_GT(stats.compactions, 0);
}

TEST(StreamDifferential, InterleavedChurnMatchesRebuildSeed17) {
  run_differential(/*seed=*/17, /*steps=*/1200, MixConfig{});
}

TEST(StreamDifferential, DeleteHeavyChurnMatchesRebuildSeed91) {
  MixConfig mix;
  mix.insert = 0.22;
  mix.remove = 0.30;       // delete-heavy: retractions outnumber inserts
  mix.vertex_add = 0.07;
  mix.vertex_remove = 0.07;
  mix.compact = 0.12;      // more compaction boundaries under churn
  run_differential(/*seed=*/91, /*steps=*/1000, mix);
}

TEST(StreamDifferential, LifecycleChurnWithAnnihilationAndTtlSeed53) {
  // The PR-4 lifecycle mix: annihilation passes and capped TTL sweeps
  // interleave with churn, compactions and publishes — every publish
  // point must still be bit-identical to a from-scratch rebuild of the
  // shadow (which models per-vertex expiry explicitly).
  MixConfig mix;
  mix.insert = 0.24;
  mix.remove = 0.24;
  mix.vertex_add = 0.08;   // feed entities for the sweeps to retire
  mix.vertex_remove = 0.03;
  mix.feature = 0.06;
  mix.annihilate = 0.08;
  mix.ttl_sweep = 0.05;
  mix.publish = 0.14;
  mix.compact = 0.06;
  run_differential(/*seed=*/53, /*steps=*/1100, mix);
}

TEST(StreamDifferential, PublishAndChurnDuringParkedFoldsSeed71) {
  // The non-blocking-fold mix: folds are cut and PARKED mid-build while
  // inserts, retractions, a gated annihilation pass and a publish land
  // against the in-flight cut — the publish must match a from-scratch
  // rebuild both before and after the rebase, at every such step.
  MixConfig mix;
  mix.insert = 0.24;
  mix.remove = 0.20;
  mix.vertex_add = 0.06;
  mix.vertex_remove = 0.04;
  mix.feature = 0.06;
  mix.annihilate = 0.06;
  mix.ttl_sweep = 0.03;
  mix.publish = 0.12;
  mix.compact = 0.05;
  mix.fold_interleave = 0.10;
  run_differential(/*seed=*/71, /*steps=*/700, mix);
}

TEST(StreamDifferential, RecyclingPressureKeepsIdsConsistent) {
  // Tight add/retire/compact loop: the same ids die, fold, recycle and
  // re-attach over and over; every publish must still match a rebuild.
  const Dataset ds = make_community_dataset(2, 24, 8, 2);
  StreamingGraph graph(ds);
  ShadowModel shadow(ds.graph);
  GnnModel model(small_model_config());
  Xoshiro256 rng(7);
  std::vector<float> row(8);
  std::int64_t recycled_total = 0;

  for (int round = 0; round < 40; ++round) {
    std::vector<VertexId> streamed;
    for (int i = 0; i < 3; ++i) {
      for (float& x : row) x = static_cast<float>(rng.normal());
      const VertexId v = graph.add_vertex(row);
      shadow.revive(v);
      streamed.push_back(v);
      const auto u = static_cast<VertexId>(
          rng.bounded(static_cast<std::uint64_t>(ds.graph.num_vertices())));
      if (shadow.expect_insert(v, u)) {
        ASSERT_TRUE(graph.add_edge(v, u));
        shadow.insert(v, u);
      }
    }
    const auto version = graph.publish();
    verify_against_rebuild(graph, *version, shadow, model, 1000 + round, round);
    for (VertexId v : streamed) {
      ASSERT_TRUE(graph.remove_vertex(v));
      shadow.kill(v);
    }
    ASSERT_TRUE(graph.compact());
    verify_against_rebuild(graph, *graph.current(), shadow, model, 2000 + round, round);
    if (::testing::Test::HasFatalFailure()) return;
  }
  recycled_total = graph.stats().recycled_vertices;
  // The extension area stopped growing: later rounds were served by
  // recycled ids, and the vertex space stayed bounded.
  EXPECT_GT(recycled_total, 60);
  EXPECT_LE(graph.num_vertices(), ds.graph.num_vertices() + 60);
  EXPECT_GT(graph.features().released_rows(), 0);
}

}  // namespace
}  // namespace hyscale
