// Tests for graph/: CSR, builder, generators, reordering, partitioning, I/O.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>
#include <set>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/generator.hpp"
#include "graph/io.hpp"
#include "graph/partition.hpp"
#include "graph/reorder.hpp"

namespace hyscale {
namespace {

CsrGraph triangle_plus_leaf() {
  // 0-1, 1-2, 2-0, 2-3 (undirected).
  return build_csr(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
}

TEST(Csr, BasicAccessors) {
  const CsrGraph g = triangle_plus_leaf();
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 8);  // symmetrized
  EXPECT_EQ(g.degree(2), 3);
  EXPECT_EQ(g.degree(3), 1);
  EXPECT_EQ(g.max_degree(), 3);
  EXPECT_DOUBLE_EQ(g.mean_degree(), 2.0);
  EXPECT_TRUE(g.validate());
}

TEST(Csr, NeighborsSortedAndCorrect) {
  const CsrGraph g = triangle_plus_leaf();
  const auto n2 = g.neighbors(2);
  const std::vector<VertexId> expected = {0, 1, 3};
  EXPECT_TRUE(std::equal(n2.begin(), n2.end(), expected.begin(), expected.end()));
}

TEST(Csr, TransposeOfSymmetricGraphIsIdentical) {
  const CsrGraph g = triangle_plus_leaf();
  const CsrGraph t = g.transpose();
  EXPECT_EQ(t.indptr(), g.indptr());
  EXPECT_EQ(t.indices(), g.indices());
}

TEST(Csr, TransposeDirected) {
  EdgeListOptions opts;
  opts.symmetrize = false;
  const CsrGraph g = build_csr(3, {{0, 1}, {0, 2}, {1, 2}}, opts);
  const CsrGraph t = g.transpose();
  EXPECT_EQ(t.degree(0), 0);
  EXPECT_EQ(t.degree(2), 2);
  EXPECT_TRUE(t.validate());
}

TEST(Csr, ConstructorRejectsCorruptInputs) {
  EXPECT_THROW(CsrGraph({}, {}), std::invalid_argument);
  EXPECT_THROW(CsrGraph({1, 2}, {0}), std::invalid_argument);   // indptr[0] != 0
  EXPECT_THROW(CsrGraph({0, 2}, {0}), std::invalid_argument);   // back mismatch
}

TEST(Csr, EmptyGraph) {
  const CsrGraph g(std::vector<EdgeId>{0}, {});
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.validate());
  EXPECT_EQ(g.max_degree(), 0);
}

TEST(Builder, RemovesSelfLoopsAndDuplicates) {
  const CsrGraph g = build_csr(3, {{0, 0}, {0, 1}, {0, 1}, {1, 0}});
  EXPECT_EQ(g.num_edges(), 2);  // only 0-1 both ways
  EXPECT_EQ(g.degree(2), 0);
}

TEST(Builder, KeepsDirectedWhenAsked) {
  EdgeListOptions opts;
  opts.symmetrize = false;
  const CsrGraph g = build_csr(3, {{0, 1}, {0, 2}}, opts);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(1), 0);
}

TEST(Builder, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(build_csr(2, {{0, 2}}), std::invalid_argument);
  EXPECT_THROW(build_csr(2, {{-1, 0}}), std::invalid_argument);
  EXPECT_THROW(build_csr(-1, {}), std::invalid_argument);
}

// The streaming compactor merges base + delta edge lists through
// build_csr and relies on degree_order/apply_permutation staying exact
// on the awkward shapes real deltas produce: isolated vertices (beyond
// the last edge endpoint) and duplicated edges in the union.

TEST(Builder, IsolatedAndDuplicateEdgeVertices) {
  // Vertices 4..6 isolated; 0-1 appears three times (both orientations).
  const CsrGraph g = build_csr(7, {{0, 1}, {1, 0}, {0, 1}, {2, 3}});
  EXPECT_EQ(g.num_vertices(), 7);
  EXPECT_EQ(g.num_edges(), 4);  // 0-1 and 2-3, each both ways
  EXPECT_EQ(g.degree(0), 1);
  for (VertexId v = 4; v < 7; ++v) EXPECT_EQ(g.degree(v), 0);
  EXPECT_TRUE(g.validate());
}

TEST(Builder, CompactionStyleMergeEqualsOneShotBuild) {
  // Incremental: build base, then rebuild from base-CSR + delta edges
  // (what StreamingGraph::compact does) — must equal building the union
  // in one shot, including duplicate-heavy deltas and isolated tails.
  const std::vector<std::pair<VertexId, VertexId>> base_edges = {{0, 1}, {1, 2}, {2, 0}};
  const std::vector<std::pair<VertexId, VertexId>> delta_edges = {
      {0, 3}, {3, 0}, {0, 1},  // duplicate of a base edge
      {5, 6}};
  const CsrGraph base = build_csr(8, base_edges);

  std::vector<std::pair<VertexId, VertexId>> merged_edges;
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    for (VertexId u : base.neighbors(v)) merged_edges.emplace_back(v, u);
  }
  merged_edges.insert(merged_edges.end(), delta_edges.begin(), delta_edges.end());
  const CsrGraph merged = build_csr(8, merged_edges);

  std::vector<std::pair<VertexId, VertexId>> union_edges = base_edges;
  union_edges.insert(union_edges.end(), delta_edges.begin(), delta_edges.end());
  const CsrGraph one_shot = build_csr(8, union_edges);

  EXPECT_EQ(merged.indptr(), one_shot.indptr());
  EXPECT_EQ(merged.indices(), one_shot.indices());
  EXPECT_EQ(merged.degree(7), 0);  // isolated tail survives
}

TEST(Reorder, RoundTripWithIsolatedAndDuplicateEdgeVertices) {
  // Relabel by degree and relabel back: bit-identical CSR (builder and
  // apply_permutation both emit sorted adjacency).
  const CsrGraph g = build_csr(9, {{0, 1}, {1, 0}, {0, 1}, {0, 2}, {0, 3}, {2, 3}, {4, 5}});
  ASSERT_EQ(g.degree(6), 0);  // isolated vertices in the middle of the range
  const std::vector<VertexId> perm = degree_order(g);
  const CsrGraph relabeled = apply_permutation(g, perm);
  EXPECT_TRUE(relabeled.validate());
  EXPECT_EQ(relabeled.num_edges(), g.num_edges());
  // Isolated vertices sort to the tail under degree order.
  for (VertexId v = relabeled.num_vertices() - 3; v < relabeled.num_vertices(); ++v) {
    EXPECT_EQ(relabeled.degree(v), 0);
  }
  const CsrGraph restored = apply_permutation(relabeled, invert_permutation(perm));
  EXPECT_EQ(restored.indptr(), g.indptr());
  EXPECT_EQ(restored.indices(), g.indices());
}

TEST(Generator, RmatDeterministicPerSeed) {
  RmatParams p;
  p.scale = 8;
  p.edge_factor = 4;
  const CsrGraph a = generate_rmat(p);
  const CsrGraph b = generate_rmat(p);
  EXPECT_EQ(a.indices(), b.indices());
  p.seed = 2;
  const CsrGraph c = generate_rmat(p);
  EXPECT_NE(a.indices(), c.indices());
}

TEST(Generator, RmatShape) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  const CsrGraph g = generate_rmat(p);
  EXPECT_EQ(g.num_vertices(), 1024);
  EXPECT_TRUE(g.validate());
  // Symmetrized and deduplicated: at most 2x requested edges.
  EXPECT_LE(g.num_edges(), 2 * 8 * 1024);
  EXPECT_GT(g.num_edges(), 4 * 1024);
}

TEST(Generator, RmatDegreeSkew) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 8;
  const CsrGraph g = generate_rmat(p);
  // Power-law-ish: the max degree far exceeds the mean.
  EXPECT_GT(static_cast<double>(g.max_degree()), 10.0 * g.mean_degree());
}

TEST(Generator, RmatRejectsBadParameters) {
  RmatParams p;
  p.scale = 0;
  EXPECT_THROW(generate_rmat(p), std::invalid_argument);
  p.scale = 8;
  p.a = 0.9;
  p.b = 0.2;  // a+b+c > 1
  EXPECT_THROW(generate_rmat(p), std::invalid_argument);
}

TEST(Generator, SbmBlocksDenserInside) {
  SbmParams p;
  p.vertices_per_block = 64;
  p.num_blocks = 3;
  const CsrGraph g = generate_sbm(p);
  EXPECT_EQ(g.num_vertices(), 192);
  EdgeId intra = 0, inter = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      if (u / p.vertices_per_block == v / p.vertices_per_block) ++intra; else ++inter;
    }
  }
  EXPECT_GT(intra, 4 * inter);
}

TEST(Generator, ErdosRenyiEdgeCountNearExpectation) {
  const VertexId n = 400;
  const double p = 0.05;
  const CsrGraph g = generate_erdos_renyi(n, p, 3);
  const double expected = p * n * (n - 1);  // symmetrized directed count
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 0.15 * expected);
  EXPECT_TRUE(g.validate());
}

TEST(Generator, ErdosRenyiZeroP) {
  const CsrGraph g = generate_erdos_renyi(100, 0.0, 1);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Generator, ErdosRenyiRejectsBadP) {
  EXPECT_THROW(generate_erdos_renyi(10, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(generate_erdos_renyi(10, 1.5, 1), std::invalid_argument);
}

TEST(Reorder, InvertPermutationRoundTrip) {
  const std::vector<VertexId> perm = {2, 0, 3, 1};
  const auto inv = invert_permutation(perm);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(inv[static_cast<std::size_t>(perm[i])], static_cast<VertexId>(i));
  }
}

TEST(Reorder, InvertRejectsNonPermutation) {
  EXPECT_THROW(invert_permutation({0, 0}), std::invalid_argument);
  EXPECT_THROW(invert_permutation({0, 5}), std::invalid_argument);
}

TEST(Reorder, DegreeOrderDescending) {
  const CsrGraph g = triangle_plus_leaf();
  const auto perm = degree_order(g);
  EXPECT_EQ(perm.front(), 2);  // degree 3
  EXPECT_EQ(perm.back(), 3);   // degree 1
}

TEST(Reorder, ApplyPermutationPreservesStructure) {
  RmatParams p;
  p.scale = 7;
  p.edge_factor = 4;
  const CsrGraph g = generate_rmat(p);
  const auto perm = degree_order(g);
  const CsrGraph h = apply_permutation(g, perm);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  // Degree multiset preserved.
  std::multiset<EdgeId> dg, dh;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    dg.insert(g.degree(v));
    dh.insert(h.degree(v));
  }
  EXPECT_EQ(dg, dh);
  // Hot vertices first after degree ordering.
  EXPECT_EQ(h.degree(0), g.max_degree());
}

class PartitionerTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionerTest, HashPartitionCoversAllVertices) {
  RmatParams rp;
  rp.scale = 9;
  const CsrGraph g = generate_rmat(rp);
  const int parts = GetParam();
  const Partition part = partition_hash(g, parts, 1);
  EXPECT_EQ(part.num_parts, parts);
  VertexId total = 0;
  for (VertexId s : part.part_sizes) total += s;
  EXPECT_EQ(total, g.num_vertices());
  for (int a : part.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, parts);
  }
}

TEST_P(PartitionerTest, BfsPartitionCutsLessThanHash) {
  RmatParams rp;
  rp.scale = 10;
  rp.edge_factor = 8;
  const CsrGraph g = generate_rmat(rp);
  const int parts = GetParam();
  const Partition hash = partition_hash(g, parts, 1);
  const Partition bfs = partition_bfs(g, parts, 1);
  EXPECT_LT(bfs.edge_cut, hash.edge_cut);
  EXPECT_LE(bfs.imbalance(), 1.6);
}

INSTANTIATE_TEST_SUITE_P(Parts, PartitionerTest, ::testing::Values(2, 4, 8));

TEST(Partition, StatsOnKnownGraph) {
  // Path 0-1-2-3 split as {0,1} | {2,3}: cut = 1 undirected = 2 directed.
  const CsrGraph g = build_csr(4, {{0, 1}, {1, 2}, {2, 3}});
  Partition part;
  part.num_parts = 2;
  part.assignment = {0, 0, 1, 1};
  compute_partition_stats(g, part);
  EXPECT_EQ(part.edge_cut, 2);
  EXPECT_EQ(part.part_sizes[0], 2);
  EXPECT_EQ(part.halo_sizes[0], 1);  // part 0 needs vertex 2
  EXPECT_EQ(part.halo_sizes[1], 1);  // part 1 needs vertex 1
}

TEST(Partition, RejectsBadPartCount) {
  const CsrGraph g = triangle_plus_leaf();
  EXPECT_THROW(partition_hash(g, 0, 1), std::invalid_argument);
  EXPECT_THROW(partition_bfs(g, -1, 1), std::invalid_argument);
}

// The router calls imbalance()/edge_cut_fraction() on every rebalance
// decision; degenerate shapes must report well-defined values, never
// divide by zero.
TEST(Partition, DegenerateInputsAreWellDefined) {
  Partition empty;  // default-constructed: no stats computed yet
  EXPECT_DOUBLE_EQ(empty.imbalance(), 1.0);
  EXPECT_DOUBLE_EQ(empty.edge_cut_fraction(0), 0.0);

  // Empty graph, real part count: every part size 0 => mean 0 => 1.0.
  const CsrGraph g0 = build_csr(0, {});
  const Partition p0 = partition_hash(g0, 4, 1);
  EXPECT_DOUBLE_EQ(p0.imbalance(), 1.0);
  EXPECT_DOUBLE_EQ(p0.edge_cut_fraction(g0.num_edges()), 0.0);
  const Partition b0 = partition_bfs(g0, 4, 1);
  EXPECT_DOUBLE_EQ(b0.imbalance(), 1.0);
  EXPECT_EQ(b0.edge_cut, 0);

  // Edgeless (but non-empty) graph: nothing to cut.
  const CsrGraph g1 = build_csr(8, {});
  const Partition p1 = partition_bfs(g1, 2, 1);
  EXPECT_DOUBLE_EQ(p1.edge_cut_fraction(g1.num_edges()), 0.0);
  VertexId total = 0;
  for (VertexId s : p1.part_sizes) total += s;
  EXPECT_EQ(total, 8);
}

TEST(Partition, StatsRejectMalformedAssignment) {
  const CsrGraph g = triangle_plus_leaf();
  Partition bad_count;
  bad_count.num_parts = 0;
  bad_count.assignment = {0, 0, 0, 0};
  EXPECT_THROW(compute_partition_stats(g, bad_count), std::invalid_argument);

  Partition bad_size;
  bad_size.num_parts = 2;
  bad_size.assignment = {0, 1};  // graph has 4 vertices
  EXPECT_THROW(compute_partition_stats(g, bad_size), std::invalid_argument);

  Partition bad_part;
  bad_part.num_parts = 2;
  bad_part.assignment = {0, 1, 2, -1};  // out-of-range ids
  EXPECT_THROW(compute_partition_stats(g, bad_part), std::invalid_argument);
}

// Property tests over seeded random graphs: every vertex assigned
// exactly once, the BFS capacity cap holds, and the halo/edge-cut
// accounting matches a brute-force recount.
TEST(Partition, PropertiesOnSeededRandomGraphs) {
  for (const std::uint64_t seed : {3ULL, 29ULL, 151ULL}) {
    RmatParams rp;
    rp.scale = 8;
    rp.edge_factor = 6;
    rp.seed = seed;
    const CsrGraph g = generate_rmat(rp);
    const VertexId n = g.num_vertices();
    for (const int parts : {2, 3, 5}) {
      for (const bool bfs : {false, true}) {
        const Partition part = bfs ? partition_bfs(g, parts, seed + 7)
                                   : partition_hash(g, parts, seed + 7);
        // Exactly-once assignment: sizes sum to n and every id in range.
        ASSERT_EQ(part.assignment.size(), static_cast<std::size_t>(n));
        std::vector<VertexId> sizes(static_cast<std::size_t>(parts), 0);
        for (int a : part.assignment) {
          ASSERT_GE(a, 0);
          ASSERT_LT(a, parts);
          ++sizes[static_cast<std::size_t>(a)];
        }
        EXPECT_EQ(sizes, std::vector<VertexId>(part.part_sizes.begin(), part.part_sizes.end()));
        // BFS respects the ceil(n / parts) capacity cap.
        if (bfs) {
          const VertexId capacity = (n + parts - 1) / parts;
          for (VertexId s : part.part_sizes) EXPECT_LE(s, capacity);
        }
        // Brute-force recount of edge cut and per-part halo sets.
        EdgeId cut = 0;
        std::vector<std::set<VertexId>> halos(static_cast<std::size_t>(parts));
        for (VertexId v = 0; v < n; ++v) {
          const int pv = part.assignment[static_cast<std::size_t>(v)];
          for (VertexId u : g.neighbors(v)) {
            if (part.assignment[static_cast<std::size_t>(u)] != pv) {
              ++cut;
              halos[static_cast<std::size_t>(pv)].insert(u);
            }
          }
        }
        EXPECT_EQ(part.edge_cut, cut);
        for (int p = 0; p < parts; ++p) {
          EXPECT_EQ(part.halo_sizes[static_cast<std::size_t>(p)],
                    static_cast<VertexId>(halos[static_cast<std::size_t>(p)].size()));
        }
      }
    }
  }
}

TEST(GraphIo, RoundTrip) {
  RmatParams p;
  p.scale = 8;
  const CsrGraph g = generate_rmat(p);
  const std::string path = "/tmp/hyscale_io_test.bin";
  save_csr(g, path);
  const CsrGraph loaded = load_csr(path);
  EXPECT_EQ(loaded.indptr(), g.indptr());
  EXPECT_EQ(loaded.indices(), g.indices());
  std::remove(path.c_str());
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(load_csr("/tmp/does_not_exist_hyscale.bin"), std::runtime_error);
}

TEST(GraphIo, CorruptHeaderThrows) {
  const std::string path = "/tmp/hyscale_io_corrupt.bin";
  FILE* f = std::fopen(path.c_str(), "wb");
  const char junk[32] = "not a graph";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_THROW(load_csr(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hyscale
