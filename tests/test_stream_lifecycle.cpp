// Churn-lifecycle tests (src/stream/): in-place tombstone annihilation
// (including the annihilation-vs-in-flight-snapshot safety properties —
// a cancelled pair straddling a compaction cut must never be erased, or
// the fold resurrects the edge), the NON-BLOCKING fold state machine
// (publishes, ingest and gated annihilation interleaving with a parked
// off-lock CSR build; a second fold refused, not blocked), TTL eviction
// sweeps and their tombstone-burst pacing (including read-path gather
// touches), the SLO-driven background Publisher and its completion-time
// staleness accounting, the compactor's annihilate-before-fold
// escalation and refused-fold backoff, and the update generator's
// starvation-proof publish cadence.  The randomized stream-vs-rebuild
// harness that interleaves these steps lives in
// test_stream_differential.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/hyscale.hpp"

namespace hyscale {
namespace {

const Dataset& community() {
  static const Dataset ds = make_community_dataset(3, 32, 8, 2);
  return ds;
}

std::vector<float> random_row(Xoshiro256& rng, std::int64_t cols) {
  std::vector<float> row(static_cast<std::size_t>(cols));
  for (float& x : row) x = static_cast<float>(rng.normal());
  return row;
}

/// A pair of vertices with no live edge between them in the current
/// version (scanning deterministically from the given start id),
/// avoiding the listed vertices so disjoint pairs can be requested.
std::pair<VertexId, VertexId> absent_edge(const GraphVersion& version, VertexId u0 = 0,
                                          std::initializer_list<VertexId> avoid = {}) {
  const auto avoided = [&](VertexId x) {
    return std::find(avoid.begin(), avoid.end(), x) != avoid.end();
  };
  std::vector<VertexId> adjacency;
  for (VertexId u = u0; u < version.num_vertices(); ++u) {
    if (avoided(u)) continue;
    adjacency.clear();
    version.append_neighbors(u, adjacency);
    for (VertexId v = 0; v < version.num_vertices(); ++v) {
      if (v == u || avoided(v)) continue;
      if (!std::binary_search(adjacency.begin(), adjacency.end(), v)) return {u, v};
    }
  }
  throw std::logic_error("absent_edge: graph is complete");
}

/// Holds a StreamingGraph fold open at its off-lock park point — the
/// test seam between the merged-CSR build and the rebase critical
/// section.  start() launches compact() on a background thread and
/// returns once the fold is parked (cut taken, build done, rebase
/// pending, maintenance mutex RELEASED); finish() lands it.  The graph
/// must have something to fold before start(), or compact() no-ops
/// without ever reaching the park point.
class FoldPark {
 public:
  explicit FoldPark(StreamingGraph& graph) : graph_(graph) {
    graph_.set_fold_hook([this] {
      std::unique_lock lock(mutex_);
      parked_ = true;
      cv_.notify_all();
      cv_.wait(lock, [this] { return released_; });
    });
  }

  ~FoldPark() {
    if (thread_.joinable()) finish();
    graph_.set_fold_hook(nullptr);
  }

  void start() {
    thread_ = std::thread([this] { result_ = graph_.compact(); });
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return parked_; });
  }

  bool finish() {
    {
      std::lock_guard lock(mutex_);
      released_ = true;
    }
    cv_.notify_all();
    thread_.join();
    return result_;
  }

 private:
  StreamingGraph& graph_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool parked_ = false;
  bool released_ = false;
  bool result_ = false;
  std::thread thread_;
};

// ------------------------------------------------------------ annihilation

TEST(Annihilation, CancelsMatchedPairsWithoutRebuild) {
  StreamingGraph graph(community());
  const EdgeId base_edges = graph.current()->num_edges();
  const auto [u, v] = absent_edge(*graph.current());

  ASSERT_TRUE(graph.add_edge(u, v));
  ASSERT_TRUE(graph.remove_edge(u, v));
  EXPECT_EQ(graph.overlay_ops(), 4);  // symmetric: 2 inserts + 2 tombstones

  EXPECT_EQ(graph.annihilate(), 4);
  EXPECT_EQ(graph.overlay_ops(), 0);
  const StreamStats stats = graph.stats();
  EXPECT_EQ(stats.annihilations, 1);
  EXPECT_EQ(stats.annihilated_ops, 4);
  EXPECT_EQ(stats.compactions, 0);

  const auto version = graph.publish();
  EXPECT_EQ(version->num_edges(), base_edges);
  EXPECT_EQ(version->overlay_edges(), 0);
  EXPECT_TRUE(version->validate());
}

TEST(Annihilation, KeepsUnmatchedSuffixOps) {
  StreamingGraph graph(community());
  const EdgeId base_edges = graph.current()->num_edges();
  const auto [u1, v1] = absent_edge(*graph.current());
  // A second absent pair disjoint from the first.
  const auto [u2, v2] = absent_edge(*graph.current(), u1 + 1, {u1, v1});

  ASSERT_TRUE(graph.add_edge(u1, v1));  // survives
  ASSERT_TRUE(graph.add_edge(u2, v2));  // cancelled below
  ASSERT_TRUE(graph.remove_edge(u2, v2));

  EXPECT_EQ(graph.annihilate(), 4);
  EXPECT_EQ(graph.overlay_ops(), 2);  // the surviving insert pair

  const auto version = graph.publish();
  EXPECT_EQ(version->num_edges(), base_edges + 2);
  std::vector<VertexId> adjacency;
  version->append_neighbors(u1, adjacency);
  EXPECT_TRUE(std::binary_search(adjacency.begin(), adjacency.end(), v1));
  adjacency.clear();
  version->append_neighbors(u2, adjacency);
  EXPECT_FALSE(std::binary_search(adjacency.begin(), adjacency.end(), v2));
  EXPECT_TRUE(version->validate());
}

TEST(Annihilation, PairAcrossPublishStaysCorrectThroughCompaction) {
  // Publish-only snapshots own copies of their spans, so a pair whose
  // insert was captured by a PUBLISH (not a fold cut) is still
  // erasable: the old version keeps serving the edge, and the next
  // publish/compaction sees the correct net absence.
  StreamingGraph graph(community());
  const EdgeId base_edges = graph.current()->num_edges();
  const auto [u, v] = absent_edge(*graph.current());

  ASSERT_TRUE(graph.add_edge(u, v));
  const auto with_edge = graph.publish();
  EXPECT_EQ(with_edge->num_edges(), base_edges + 2);
  ASSERT_TRUE(graph.remove_edge(u, v));

  EXPECT_EQ(graph.annihilate(), 4);
  EXPECT_EQ(graph.overlay_ops(), 0);
  // The already-published version is immutable and still serves the edge.
  EXPECT_EQ(with_edge->num_edges(), base_edges + 2);

  const auto version = graph.publish();
  EXPECT_EQ(version->num_edges(), base_edges);
  // The annihilation emptied the delta, so there may be nothing left
  // for the fold to merge — either way the folded view must agree.
  graph.compact();
  EXPECT_EQ(graph.current()->num_edges(), base_edges);
  std::vector<VertexId> adjacency;
  graph.current()->append_neighbors(u, adjacency);
  EXPECT_FALSE(std::binary_search(adjacency.begin(), adjacency.end(), v));
  EXPECT_TRUE(graph.current()->validate());
}

TEST(Annihilation, DeltaStoreRefusesPairStraddlingSnapshotCut) {
  // DeltaStore-level safety property: after a snapshot (a potential
  // compaction cut) captures the insert, the standalone annihilate()
  // must NOT erase the insert/tombstone pair — the fold merges the
  // captured insert into the base, and an erased tombstone would
  // resurrect the edge.
  auto base = std::make_shared<const CsrGraph>(
      build_csr(4, {{0, 1}, {1, 0}, {1, 2}, {2, 1}}, {}));
  DeltaStore store(base, 4);

  ASSERT_TRUE(store.add_edge(0, 3));
  ASSERT_TRUE(store.add_edge(3, 0));
  const DeltaStore::Snapshot cut = store.snapshot(/*advance_epoch=*/true);
  EXPECT_EQ(cut.num_inserts, 2);
  ASSERT_TRUE(store.remove_edge(0, 3));
  ASSERT_TRUE(store.remove_edge(3, 0));

  // The tombstones are the whole unsnapshotted suffix: odd per-pair
  // runs, nothing to cancel.
  EXPECT_EQ(store.annihilate(), 0);
  EXPECT_EQ(store.delta_removes(), 2);

  // Complete the fold: merged base contains the captured inserts, the
  // rebase truncates the captured prefix — and the surviving
  // tombstones still retract the edge.
  auto merged = std::make_shared<const CsrGraph>(
      build_csr(4, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 3}, {3, 0}}, {}));
  store.rebase(merged, cut.epoch);
  const DeltaStore::Snapshot after = store.snapshot(/*advance_epoch=*/false);
  EXPECT_EQ(after.num_removes, 2);
  EXPECT_EQ(after.num_inserts, 0);
}

TEST(Annihilation, UnsnapshottedPairIsErasableAtDeltaStoreLevel) {
  auto base = std::make_shared<const CsrGraph>(build_csr(4, {{0, 1}, {1, 0}}, {}));
  DeltaStore store(base, 4);
  store.snapshot(/*advance_epoch=*/true);  // advance past construction epoch

  ASSERT_TRUE(store.add_edge(2, 3));
  ASSERT_TRUE(store.remove_edge(2, 3));
  ASSERT_TRUE(store.add_edge(0, 2));  // unmatched: must survive
  EXPECT_EQ(store.annihilate(), 2);
  EXPECT_EQ(store.delta_ops(), 1);
  const DeltaStore::Snapshot snap = store.snapshot(/*advance_epoch=*/false);
  EXPECT_EQ(snap.num_inserts, 1);
  EXPECT_EQ(snap.num_removes, 0);
  EXPECT_EQ(store.annihilated_ops(), 2);
}

TEST(Annihilation, RandomizedChurnNeverDivergesFromNet) {
  // Property sweep: random insert/remove churn on a small pair pool
  // with annihilation and publishes interleaved — every published
  // version's edge count must equal base + net accepted ops, and a
  // final compaction must agree.
  StreamingGraph graph(community());
  const EdgeId base_edges = graph.current()->num_edges();
  Xoshiro256 rng(41);
  // Small pair pool so the same edges toggle repeatedly — the mix that
  // actually produces cancellable pairs.
  constexpr std::uint64_t kPool = 12;
  std::int64_t net_directed = 0;
  for (int step = 0; step < 400; ++step) {
    const auto u = static_cast<VertexId>(rng.bounded(kPool));
    const auto v = static_cast<VertexId>(rng.bounded(kPool));
    if (rng.uniform() < 0.5) {
      if (graph.add_edge(u, v)) net_directed += 2;
    } else {
      if (graph.remove_edge(u, v)) net_directed -= 2;
    }
    if (rng.uniform() < 0.15) graph.annihilate();
    if (rng.uniform() < 0.10) {
      EXPECT_EQ(graph.publish()->num_edges(), base_edges + net_directed) << "step " << step;
    }
  }
  graph.annihilate();
  graph.compact();
  EXPECT_EQ(graph.publish()->num_edges(), base_edges + net_directed);
  EXPECT_TRUE(graph.current()->validate());
  EXPECT_GT(graph.stats().annihilated_ops, 0);
}

// ------------------------------------------------------ non-blocking folds

TEST(NonBlockingFold, PublishProceedsWhileFoldParkedOffLock) {
  // The tentpole property: a publish issued while a fold's O(base)
  // build is in flight completes against the OLD base + full overlay —
  // it would deadlock here if the build still held the maintenance
  // mutex — and the landed rebase then folds the cut prefix into the
  // new base without losing the mid-build arrival.
  StreamingGraph graph(community());
  const EdgeId base_edges = graph.current()->num_edges();
  const auto [u1, v1] = absent_edge(*graph.current());
  ASSERT_TRUE(graph.add_edge(u1, v1));  // captured by the cut

  FoldPark park(graph);
  park.start();
  EXPECT_TRUE(graph.fold_in_flight());

  const auto [u2, v2] = absent_edge(*graph.current(), 0, {u1, v1});
  ASSERT_TRUE(graph.add_edge(u2, v2));  // lands mid-build, stamped past the cut
  const auto mid = graph.publish();
  EXPECT_EQ(mid->num_edges(), base_edges + 4);  // both pairs visible before the rebase
  EXPECT_TRUE(mid->validate());
  EXPECT_TRUE(graph.fold_in_flight());

  EXPECT_TRUE(park.finish());
  EXPECT_FALSE(graph.fold_in_flight());
  const auto after = graph.current();
  EXPECT_EQ(after->num_edges(), base_edges + 4);
  EXPECT_EQ(after->base_edges(), base_edges + 2);     // cut pair folded into the base
  EXPECT_EQ(after->overlay_edges(), 2);               // mid-build pair rides the overlay
  EXPECT_TRUE(after->validate());
  EXPECT_EQ(graph.stats().compactions, 1);
}

TEST(NonBlockingFold, SecondFoldRefusedNotBlockedWhileOneIsInFlight) {
  StreamingGraph graph(community());
  const auto [u, v] = absent_edge(*graph.current());
  ASSERT_TRUE(graph.add_edge(u, v));

  FoldPark park(graph);
  park.start();
  // Refused immediately — one fold frontier at a time; a blocking wait
  // here would deadlock the test.
  EXPECT_FALSE(graph.compact());
  EXPECT_TRUE(park.finish());
  EXPECT_EQ(graph.stats().compactions, 1);
  // With the fold landed (and the overlay drained) a fresh compact is a
  // clean no-op, not a refusal artifact.
  EXPECT_FALSE(graph.compact());
  EXPECT_TRUE(graph.current()->validate());
}

TEST(NonBlockingFold, AnnihilationDuringFoldSparesStraddlingPair) {
  // The pair whose insert the fold captured and whose tombstone landed
  // mid-build STRADDLES the cut: annihilation while the build is parked
  // must pin it (erasing it would resurrect the edge at rebase), while
  // a pair cancelled entirely after the cut is still erasable.
  StreamingGraph graph(community());
  const EdgeId base_edges = graph.current()->num_edges();
  const auto [u1, v1] = absent_edge(*graph.current());
  ASSERT_TRUE(graph.add_edge(u1, v1));  // insert: pre-cut

  FoldPark park(graph);
  park.start();
  ASSERT_TRUE(graph.remove_edge(u1, v1));  // tombstone: post-cut — straddles
  const auto [u2, v2] = absent_edge(*graph.current(), 0, {u1, v1});
  ASSERT_TRUE(graph.add_edge(u2, v2));  // cancelled pair entirely post-cut
  ASSERT_TRUE(graph.remove_edge(u2, v2));

  EXPECT_EQ(graph.annihilate(), 4);           // only the post-cut pair went
  EXPECT_EQ(graph.overlay_tombstones(), 2);   // straddling tombstones pinned
  EXPECT_TRUE(park.finish());

  // The rebase folded the captured insert into the base; the surviving
  // tombstones retract it, so the net graph is exactly the original.
  const auto version = graph.publish();
  EXPECT_EQ(version->num_edges(), base_edges);
  std::vector<VertexId> adjacency;
  version->append_neighbors(u1, adjacency);
  EXPECT_FALSE(std::binary_search(adjacency.begin(), adjacency.end(), v1));
  EXPECT_TRUE(version->validate());
  graph.compact();
  EXPECT_EQ(graph.current()->num_edges(), base_edges);
  EXPECT_TRUE(graph.current()->validate());
}

TEST(NonBlockingFold, DeltaStoreFoldGateClampsAnnihilationToTheCut) {
  // DeltaStore-level property: begin_fold pins ops at or below the cut
  // against ANY annihilation gate (even the expert gate-0 form), rebase
  // re-validates the declared cut, and abort_fold restores the full
  // erasure license.
  auto base = std::make_shared<const CsrGraph>(build_csr(6, {{0, 1}, {1, 0}}, {}));
  DeltaStore store(base, 4);

  ASSERT_TRUE(store.add_edge(2, 3));
  ASSERT_TRUE(store.add_edge(3, 2));
  const DeltaStore::Snapshot cut = store.snapshot(/*advance_epoch=*/true);
  store.begin_fold(cut.epoch);
  EXPECT_TRUE(store.fold_in_flight());
  EXPECT_THROW(store.begin_fold(cut.epoch), std::logic_error);  // one fold at a time

  ASSERT_TRUE(store.remove_edge(2, 3));  // straddles the cut with its insert
  ASSERT_TRUE(store.remove_edge(3, 2));
  ASSERT_TRUE(store.add_edge(4, 5));     // cancelled entirely post-cut
  ASSERT_TRUE(store.remove_edge(4, 5));

  // Gate 0 asks for "erase everything matched"; the in-flight fold
  // clamps it to the cut, so only the post-cut pair (2 ops) goes.
  EXPECT_EQ(store.annihilate(/*gate=*/0), 2);
  EXPECT_EQ(store.delta_removes(), 2);

  // The rebase must present the exact frontier begin_fold declared.
  auto merged = std::make_shared<const CsrGraph>(
      build_csr(6, {{0, 1}, {1, 0}, {2, 3}, {3, 2}}, {}));
  EXPECT_THROW(store.rebase(merged, cut.epoch + 1), std::logic_error);
  EXPECT_TRUE(store.fold_in_flight());  // failed re-validation keeps the guard
  store.rebase(merged, cut.epoch);
  EXPECT_FALSE(store.fold_in_flight());

  // The straddling tombstones survived to retract the folded edge.
  const DeltaStore::Snapshot after = store.snapshot(/*advance_epoch=*/false);
  EXPECT_EQ(after.num_removes, 2);
  EXPECT_EQ(after.num_inserts, 0);
}

TEST(NonBlockingFold, AbortFoldRestoresFullAnnihilationLicense) {
  auto base = std::make_shared<const CsrGraph>(build_csr(4, {{0, 1}, {1, 0}}, {}));
  DeltaStore store(base, 4);
  ASSERT_TRUE(store.add_edge(2, 3));
  const DeltaStore::Snapshot cut = store.snapshot(/*advance_epoch=*/true);
  store.begin_fold(cut.epoch);
  ASSERT_TRUE(store.remove_edge(2, 3));
  EXPECT_EQ(store.annihilate(/*gate=*/0), 0);  // straddles the in-flight cut
  store.abort_fold();
  EXPECT_FALSE(store.fold_in_flight());
  // Build abandoned: nothing was merged, so the matched pair is free
  // again under the expert gate (no snapshot->rebase window remains).
  EXPECT_EQ(store.annihilate(/*gate=*/0), 2);
  EXPECT_EQ(store.delta_ops(), 0);
}

// ------------------------------------------------------------- TTL expiry

TEST(Expiry, SweepRetiresIdleStreamedEntitiesDeterministically) {
  StreamingGraph graph(community());
  const VertexId dataset_vertices = community().graph.num_vertices();
  Xoshiro256 rng(7);
  std::vector<VertexId> streamed;
  for (int i = 0; i < 5; ++i) {
    streamed.push_back(graph.add_vertex(random_row(rng, graph.features().cols())));
    ASSERT_TRUE(graph.add_edge(streamed.back(), static_cast<VertexId>(i)));
  }
  graph.publish();

  // ttl 0: everything idle at sweep time expires; dataset vertices are
  // never candidates.
  EXPECT_EQ(graph.sweep_expired(/*ttl=*/0.0, /*max_retire=*/64), 5);
  EXPECT_EQ(graph.stats().expired_vertices, 5);
  EXPECT_EQ(graph.stats().removed_vertices, 5);
  const auto version = graph.publish();
  for (VertexId v : streamed) {
    EXPECT_FALSE(version->alive(v)) << v;
    EXPECT_EQ(version->degree(v), 0) << v;
  }
  for (VertexId v = 0; v < dataset_vertices; ++v) ASSERT_TRUE(version->alive(v)) << v;
  // Nothing left to expire.
  EXPECT_EQ(graph.sweep_expired(0.0, 64), 0);
  EXPECT_TRUE(version->validate());
}

TEST(Expiry, TtlSparesRecentlyTouchedEntities) {
  StreamingGraph graph(community());
  Xoshiro256 rng(9);
  const VertexId stale = graph.add_vertex(random_row(rng, graph.features().cols()));
  const VertexId fresh = graph.add_vertex(random_row(rng, graph.features().cols()));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  // Touch one entity; the 30 ms TTL now separates the two.
  ASSERT_TRUE(graph.update_feature(fresh, random_row(rng, graph.features().cols())));
  EXPECT_EQ(graph.sweep_expired(/*ttl=*/0.030, /*max_retire=*/64), 1);
  const auto version = graph.publish();
  EXPECT_FALSE(version->alive(stale));
  EXPECT_TRUE(version->alive(fresh));
}

TEST(Expiry, MaxRetirePerSweepPacesTombstoneBursts) {
  StreamingGraph graph(community());
  Xoshiro256 rng(11);
  std::vector<VertexId> streamed;
  for (int i = 0; i < 10; ++i) {
    streamed.push_back(graph.add_vertex(random_row(rng, graph.features().cols())));
  }
  // Ascending-id scan: each capped sweep retires the lowest eligible
  // ids, so the schedule is deterministic.
  EXPECT_EQ(graph.sweep_expired(0.0, 4), 4);
  EXPECT_EQ(graph.sweep_expired(0.0, 4), 4);
  EXPECT_EQ(graph.sweep_expired(0.0, 4), 2);
  EXPECT_EQ(graph.sweep_expired(0.0, 4), 0);
  EXPECT_EQ(graph.stats().expired_vertices, 10);
  const auto version = graph.publish();
  for (VertexId v : streamed) EXPECT_FALSE(version->alive(v)) << v;
}

TEST(Expiry, PendingOpBudgetYieldsToCompactionPressure) {
  StreamingGraph graph(community());
  Xoshiro256 rng(13);
  for (int i = 0; i < 4; ++i) graph.add_vertex(random_row(rng, graph.features().cols()));
  const auto [u, v] = absent_edge(*graph.current());
  ASSERT_TRUE(graph.add_edge(u, v));  // 2 pending ops
  // Overlay already at/over the budget: the sweep defers entirely.
  EXPECT_EQ(graph.sweep_expired(0.0, 64, /*pending_op_budget=*/2), 0);
  EXPECT_EQ(graph.stats().expired_vertices, 0);
  // With headroom the sweep stops as soon as the budget is crossed
  // mid-pass (each retirement here adds no ops — isolated vertices —
  // so all four go; the budget re-check is per victim).
  EXPECT_EQ(graph.sweep_expired(0.0, 64, /*pending_op_budget=*/1000), 4);
}

TEST(ExpirySweeper, BackgroundSweepRetiresIdleEntities) {
  StreamingGraph graph(community());
  Xoshiro256 rng(15);
  std::vector<VertexId> streamed;
  for (int i = 0; i < 4; ++i) {
    streamed.push_back(graph.add_vertex(random_row(rng, graph.features().cols())));
  }
  ExpiryPolicy policy;
  policy.ttl = 0.0;
  policy.sweep_interval = 1e-3;
  policy.max_retire_per_sweep = 2;
  policy.pending_op_budget = 0;
  ExpirySweeper sweeper(graph, policy);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (graph.stats().expired_vertices < 4 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sweeper.stop();
  EXPECT_EQ(graph.stats().expired_vertices, 4);
  EXPECT_EQ(sweeper.retired(), 4);
  EXPECT_GE(sweeper.sweeps(), 2);  // max_retire_per_sweep forces at least two passes
  const auto version = graph.publish();
  for (VertexId v : streamed) EXPECT_FALSE(version->alive(v)) << v;
}

TEST(ExpirySweeper, RejectsUnusablePolicies) {
  StreamingGraph graph(community());
  ExpiryPolicy disabled;  // default ttl < 0
  EXPECT_THROW(ExpirySweeper(graph, disabled), std::invalid_argument);
  ExpiryPolicy unresolved;
  unresolved.ttl = 0.010;  // pending_op_budget left at kDeriveFromCompaction
  EXPECT_THROW(ExpirySweeper(graph, unresolved), std::invalid_argument);
  ExpiryPolicy bad_interval;
  bad_interval.ttl = 0.010;
  bad_interval.pending_op_budget = 0;
  bad_interval.sweep_interval = 0.0;
  EXPECT_THROW(ExpirySweeper(graph, bad_interval), std::invalid_argument);
}

TEST(Expiry, ExplicitTouchKeepsEntityAliveLikeAnLruRead) {
  // MutableFeatureStore::touch is the read-path hook for LRU-style
  // policies: refreshing the stamp without writing spares the entity.
  StreamingGraph graph(community());
  Xoshiro256 rng(21);
  const VertexId stale = graph.add_vertex(random_row(rng, graph.features().cols()));
  const VertexId read = graph.add_vertex(random_row(rng, graph.features().cols()));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  graph.features().touch(read);
  EXPECT_EQ(graph.sweep_expired(/*ttl=*/0.030, /*max_retire=*/64), 1);
  const auto version = graph.publish();
  EXPECT_FALSE(version->alive(stale));
  EXPECT_TRUE(version->alive(read));
}

TEST(Expiry, GatherTouchKeepsReadHotVertexAliveAcrossSweep) {
  // The serving read path: a streamed-in entity that is GATHERED every
  // request but never re-written must survive TTL sweeps — gather()
  // batch-refreshes last-touch stamps (true LRU), so only the genuinely
  // idle entity is retired.
  StreamingGraph graph(community());
  Xoshiro256 rng(25);
  const VertexId idle = graph.add_vertex(random_row(rng, graph.features().cols()));
  const VertexId hot = graph.add_vertex(random_row(rng, graph.features().cols()));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  // Read-only access, as a serving worker would issue it; the dataset
  // vertex in the batch exercises the base-row skip.
  Tensor out;
  const VertexId ids[2] = {0, hot};
  graph.gather(std::span<const VertexId>(ids, 2), out);

  EXPECT_EQ(graph.sweep_expired(/*ttl=*/0.030, /*max_retire=*/64), 1);
  const auto version = graph.publish();
  EXPECT_FALSE(version->alive(idle));
  EXPECT_TRUE(version->alive(hot));
  // The gather did not disturb the dataset vertex either way — base
  // rows are never TTL candidates.
  EXPECT_TRUE(version->alive(0));
}

TEST(Expiry, RecycledEntityGetsFreshTtl) {
  // An id recycled through add_vertex must not inherit the retired
  // entity's last-touch stamp: reuse_row re-stamps it.
  StreamingGraph graph(community());
  Xoshiro256 rng(17);
  const VertexId v = graph.add_vertex(random_row(rng, graph.features().cols()));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  ASSERT_EQ(graph.sweep_expired(/*ttl=*/0.020, /*max_retire=*/64), 1);
  ASSERT_TRUE(graph.compact());  // fold the death so the id recycles
  const VertexId reused = graph.add_vertex(random_row(rng, graph.features().cols()));
  EXPECT_EQ(reused, v);
  // Fresh stamp: a sweep at the same TTL spares the recycled entity.
  EXPECT_EQ(graph.sweep_expired(/*ttl=*/0.020, /*max_retire=*/64), 0);
  EXPECT_TRUE(graph.publish()->alive(reused));
}

// ---------------------------------------------------------- SLO publisher

TEST(Publisher, MakesIngestVisibleWithinBudgetWithoutCallerPublishes) {
  StreamingGraph graph(community());
  const std::uint64_t version_before = graph.current()->id();
  const EdgeId edges_before = graph.current()->num_edges();
  PublisherPolicy policy;
  policy.staleness_budget = 2e-3;
  Publisher publisher(graph, policy);

  const auto [u, v] = absent_edge(*graph.current());
  ASSERT_TRUE(graph.add_edge(u, v));
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (graph.current()->num_edges() == edges_before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  publisher.stop();
  EXPECT_EQ(graph.current()->num_edges(), edges_before + 2);
  EXPECT_GT(graph.current()->id(), version_before);
  EXPECT_GE(publisher.publishes(), 1);
  EXPECT_GT(publisher.worst_staleness(), 0.0);
  EXPECT_EQ(graph.pending_staleness(), 0.0);
}

TEST(Publisher, IdlesWhenNothingIsPending) {
  StreamingGraph graph(community());
  PublisherPolicy policy;
  policy.staleness_budget = 1e-3;
  Publisher publisher(graph, policy);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  publisher.stop();
  // Never publishes empty versions — a quiet graph keeps its version.
  EXPECT_EQ(publisher.publishes(), 0);
  EXPECT_EQ(graph.stats().publishes, 0);
}

TEST(Publisher, SlowPublishCountsAsBreachAtCompletion) {
  // Staleness is about VISIBILITY: an op accepted just before a publish
  // STARTS has near-zero age then, but if the publish itself takes 4x
  // the budget the op was invisible 4x the budget — that must be
  // recorded as the staleness and counted as a breach.  (The pre-fix
  // accounting sampled age before publish() and would report ~0 here.)
  StreamingGraph graph(community());
  PublisherPolicy policy;
  policy.staleness_budget = 5e-3;
  constexpr auto kStall = std::chrono::milliseconds(20);
  graph.set_publish_hook([kStall] { std::this_thread::sleep_for(kStall); });
  Publisher publisher(graph, policy);

  const auto [u, v] = absent_edge(*graph.current());
  ASSERT_TRUE(graph.add_edge(u, v));
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (publisher.publishes() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  publisher.stop();
  graph.set_publish_hook(nullptr);

  ASSERT_GE(publisher.publishes(), 1);
  EXPECT_GE(publisher.breaches(), 1);
  // Completion-time staleness includes the full publish cost.
  EXPECT_GE(publisher.worst_staleness(),
            std::chrono::duration<double>(kStall).count());
}

TEST(Publisher, RejectsUnusablePolicies) {
  StreamingGraph graph(community());
  PublisherPolicy disabled;
  disabled.staleness_budget = 0.0;
  EXPECT_THROW(Publisher(graph, disabled), std::invalid_argument);
  PublisherPolicy inverted;
  inverted.staleness_budget = 1e-3;
  inverted.poll_floor = 2e-3;
  EXPECT_THROW(Publisher(graph, inverted), std::invalid_argument);
}

TEST(Publisher, DrivesGeneratorVisibilityAsTheDefault) {
  // publish_every = 0 (the new default): mid-run visibility comes from
  // the background publisher alone; run() adds only the final publish.
  StreamingGraph graph(community());
  PublisherPolicy policy;
  policy.staleness_budget = 2e-3;
  Publisher publisher(graph, policy);

  UpdateGeneratorConfig config;
  config.operations = 200;
  config.seed = 3;
  config.pacing = 2e-4;  // ~40 ms of ingest: many budget windows
  EXPECT_EQ(config.publish_every, 0);  // SLO publishing is the default
  UpdateGenerator generator(graph, config);
  const UpdateReport report = generator.run();
  publisher.stop();

  EXPECT_GT(publisher.publishes(), 0);
  EXPECT_GT(report.accepted_edges, 0);
  // Everything accepted is visible and exact after the final publish.
  EXPECT_EQ(graph.current()->num_edges(),
            community().graph.num_edges() + graph.stats().ingested_edges -
                graph.stats().removed_edges);
  EXPECT_TRUE(graph.current()->validate());
}

// ------------------------------------------------- compactor + generator

TEST(Compactor, AnnihilationResolvesCancelledChurnWithoutRebuild) {
  StreamingGraph graph(community());
  CompactionPolicy policy;
  policy.max_overlay_edges = 256;
  policy.max_overlay_ratio = 1e9;
  Compactor compactor(graph, policy);
  compactor.stop();  // park the thread; drive decide() deterministically by hand

  const auto [u, v] = absent_edge(*graph.current());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(graph.add_edge(u, v));
    ASSERT_TRUE(graph.remove_edge(u, v));
  }
  EXPECT_EQ(graph.overlay_ops(), 400);
  EXPECT_EQ(compactor.decide(), Compactor::Maintenance::kAnnihilate);
  EXPECT_TRUE(compactor.should_compact());

  EXPECT_EQ(graph.annihilate(), 400);
  EXPECT_EQ(compactor.decide(), Compactor::Maintenance::kNone);
  EXPECT_EQ(graph.stats().compactions, 0);  // the rebuild never happened
  EXPECT_EQ(graph.publish()->num_edges(), community().graph.num_edges());
}

TEST(Compactor, FoldOnlyPolicyStillDemandsRebuild) {
  StreamingGraph graph(community());
  CompactionPolicy policy;
  policy.max_overlay_edges = 8;
  policy.max_overlay_ratio = 1e9;
  policy.annihilate_first = false;
  Compactor compactor(graph, policy);
  compactor.stop();  // decide() only
  const auto [u, v] = absent_edge(*graph.current());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(graph.add_edge(u, v));
    ASSERT_TRUE(graph.remove_edge(u, v));
  }
  EXPECT_EQ(compactor.decide(), Compactor::Maintenance::kFold);
}

TEST(Compactor, InsertOnlyOverlayGoesStraightToFold) {
  // No tombstones -> nothing cancellable: even with annihilate_first
  // on (the default), an insert-only overlay skips the no-op pass.
  StreamingGraph graph(community());
  CompactionPolicy policy;
  policy.max_overlay_edges = 8;
  policy.max_overlay_ratio = 1e9;
  Compactor compactor(graph, policy);
  compactor.stop();  // decide() only
  const VertexId n = graph.num_vertices();
  for (VertexId u = 0; u < n && graph.overlay_ops() < policy.max_overlay_edges; ++u) {
    for (VertexId v = u + 1; v < n && graph.overlay_ops() < policy.max_overlay_edges; ++v) {
      graph.add_edge(u, v);  // already-live pairs are rejected, the rest pile up pending
    }
  }
  ASSERT_GE(graph.overlay_ops(), policy.max_overlay_edges);
  ASSERT_EQ(graph.overlay_tombstones(), 0);
  EXPECT_EQ(compactor.decide(), Compactor::Maintenance::kFold);
}

TEST(Compactor, BackgroundAnnihilationKeepsOverlayBoundedUnderCancelledChurn) {
  StreamingGraph graph(community());
  CompactionPolicy policy;
  policy.max_overlay_edges = 64;
  policy.max_overlay_ratio = 1e9;
  policy.poll_interval = 5e-4;
  Compactor compactor(graph, policy);

  const auto [u, v] = absent_edge(*graph.current());
  for (int i = 0; i < 400; ++i) {
    // Each iteration nets zero; annihilation (not rebuilds) must keep
    // draining the buffers.
    if (graph.add_edge(u, v)) graph.remove_edge(u, v);
    if (i % 8 == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (graph.overlay_ops() >= policy.max_overlay_edges &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  compactor.stop();
  EXPECT_LT(graph.overlay_ops(), policy.max_overlay_edges);
  EXPECT_GT(graph.stats().annihilated_ops, 0);
  EXPECT_GE(compactor.annihilation_passes(), 1);
  EXPECT_EQ(graph.publish()->num_edges(), community().graph.num_edges());
  EXPECT_TRUE(graph.current()->validate());
}

TEST(Compactor, DecideNeverDemandsSecondFoldWhileOneIsInFlight) {
  // With a fold parked mid-build, pressure that would normally demand
  // kFold must not: a second fold would only be refused (spurious
  // refused_folds + backoff growth).  The gated annihilation pass is
  // still offered when there is something it could cancel.
  StreamingGraph graph(community());
  CompactionPolicy fold_only;
  fold_only.max_overlay_edges = 2;
  fold_only.max_overlay_ratio = 1e9;
  fold_only.annihilate_first = false;
  Compactor compactor(graph, fold_only);
  compactor.stop();  // decide() only

  const auto [u1, v1] = absent_edge(*graph.current());
  ASSERT_TRUE(graph.add_edge(u1, v1));
  ASSERT_GE(graph.overlay_ops(), fold_only.max_overlay_edges);
  EXPECT_EQ(compactor.decide(), Compactor::Maintenance::kFold);

  FoldPark park(graph);
  park.start();
  EXPECT_EQ(compactor.decide(), Compactor::Maintenance::kNone);  // fold already running

  // Tombstones pending mid-build: an annihilate-first policy still
  // offers the (cut-gated) in-place pass.
  CompactionPolicy annihilating = fold_only;
  annihilating.annihilate_first = true;
  Compactor annihilator(graph, annihilating);
  annihilator.stop();
  ASSERT_TRUE(graph.remove_edge(u1, v1));
  EXPECT_EQ(annihilator.decide(), Compactor::Maintenance::kAnnihilate);

  EXPECT_TRUE(park.finish());
  EXPECT_EQ(graph.stats().compactions, 1);
}

TEST(Compactor, BackoffScheduleDoublesToCapAndValidates) {
  CompactionPolicy policy;
  policy.poll_interval = 2e-3;
  policy.max_backoff = 10e-3;
  Seconds backoff = 0.0;
  backoff = Compactor::next_backoff(backoff, policy);
  EXPECT_DOUBLE_EQ(backoff, 2e-3);  // first refusal: one extra poll tick
  backoff = Compactor::next_backoff(backoff, policy);
  EXPECT_DOUBLE_EQ(backoff, 4e-3);
  backoff = Compactor::next_backoff(backoff, policy);
  EXPECT_DOUBLE_EQ(backoff, 8e-3);
  backoff = Compactor::next_backoff(backoff, policy);
  EXPECT_DOUBLE_EQ(backoff, 10e-3);  // capped
  backoff = Compactor::next_backoff(backoff, policy);
  EXPECT_DOUBLE_EQ(backoff, 10e-3);

  StreamingGraph graph(community());
  CompactionPolicy bad;
  bad.max_backoff = -1.0;
  EXPECT_THROW(Compactor(graph, bad), std::invalid_argument);
}

TEST(UpdateGenerator, RejectionStormCannotStarveFixedCadencePublishing) {
  // Adversarial mix: a complete graph rejects every insert (duplicate)
  // — if the cadence counted ACCEPTED ops only, publishing would
  // starve forever.  It counts attempted ops, so every boundary fires.
  Dataset ds;
  std::vector<std::pair<VertexId, VertexId>> edges;
  const VertexId k = 12;
  for (VertexId a = 0; a < k; ++a) {
    for (VertexId b = a + 1; b < k; ++b) edges.emplace_back(a, b);
  }
  ds.graph = build_csr(k, std::move(edges));
  ds.features.resize(k, 4);
  ds.labels.assign(static_cast<std::size_t>(k), 0);
  ds.info.name = "complete-graph";
  ds.info.num_vertices = k;
  ds.info.num_edges = static_cast<std::uint64_t>(ds.graph.num_edges());
  StreamingGraph graph(ds);

  UpdateGeneratorConfig config;
  config.operations = 64;
  config.publish_every = 8;
  config.vertex_add_fraction = 0.0;
  config.feature_update_fraction = 0.0;
  config.seed = 19;
  UpdateGenerator generator(graph, config);
  const UpdateReport report = generator.run();

  EXPECT_EQ(report.accepted_edges, 0);
  EXPECT_EQ(report.duplicate_edges, 64);
  // 64/8 cadence publishes plus the final one.
  EXPECT_EQ(report.publishes, 9);
}

TEST(UpdateGenerator, RecentDeleteChurnProducesAnnihilatableOps) {
  // delete_recent_fraction makes the feed cancel its own writes — the
  // insert/tombstone-pair pattern annihilation erases without a
  // rebuild — while staying exactly countable.
  StreamingGraph graph(community());
  UpdateGeneratorConfig config;
  config.operations = 300;
  config.edge_delete_fraction = 0.45;
  config.delete_recent_fraction = 1.0;
  config.vertex_add_fraction = 0.0;
  config.feature_update_fraction = 0.0;
  config.seed = 29;
  UpdateGenerator generator(graph, config);
  const UpdateReport report = generator.run();

  EXPECT_GT(report.removed_edges, 0);
  EXPECT_GT(graph.annihilate(), 0);
  // Annihilation never changes the net: accepted counters still
  // reconcile exactly against the published edge count.
  const StreamStats stats = graph.stats();
  EXPECT_EQ(graph.publish()->num_edges(),
            community().graph.num_edges() + stats.ingested_edges - stats.removed_edges);
  EXPECT_TRUE(graph.current()->validate());

  UpdateGeneratorConfig bad;
  bad.delete_recent_fraction = 1.5;
  EXPECT_THROW(UpdateGenerator(graph, bad), std::invalid_argument);
}

// -------------------------------------------------------- session facade

TEST(StreamingSession, LifecycleThreadsServeChurnEndToEnd) {
  const Dataset& ds = community();
  HybridTrainerConfig train_config;
  train_config.fanouts = {4, 4};
  train_config.real_batch_total = 64;
  train_config.real_iterations_cap = 1;
  HyScale system(ds, cpu_fpga_platform(2), train_config);
  system.train_epoch();

  ServingConfig serving;
  serving.fanouts = {4, 4};
  serving.num_workers = 2;
  CompactionPolicy compaction;
  compaction.max_overlay_edges = 128;
  PublisherPolicy publisher;
  publisher.staleness_budget = 2e-3;
  ExpiryPolicy expiry;
  expiry.ttl = 0.020;
  expiry.sweep_interval = 2e-3;
  StreamingSession session = system.stream(serving, {}, compaction, publisher, expiry);
  ASSERT_NE(session.publisher(), nullptr);
  ASSERT_NE(session.sweeper, nullptr);
  // kDeriveFromCompaction resolved against the compaction trigger.
  EXPECT_EQ(session.sweeper->policy().pending_op_budget, compaction.max_overlay_edges / 2);

  UpdateGeneratorConfig updates;
  updates.operations = 200;
  updates.vertex_add_fraction = 0.25;  // feed entities for the TTL sweep to retire
  updates.edge_delete_fraction = 0.20;
  updates.pacing = 2e-4;
  UpdateGenerator update_generator(session.stream(), updates);
  UpdateReport update_report;
  std::thread update_thread([&] { update_report = update_generator.run(); });

  LoadGeneratorConfig load;
  load.num_clients = 2;
  load.requests_per_client = 20;
  load.seeds_per_request = 2;
  LoadGenerator generator(*session.server, ds, load);
  const LoadReport report = generator.run();
  update_thread.join();

  // Let the sweeper catch the entities that outlived the generator.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (session.stream().stats().expired_vertices == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  EXPECT_EQ(report.completed_requests, 40);
  EXPECT_GT(update_report.accepted_edges, 0);
  EXPECT_GT(session.publisher()->publishes(), 0);
  EXPECT_GT(session.stream().stats().expired_vertices, 0);
  EXPECT_GT(session.server->last_served_version(), 0u);
  EXPECT_TRUE(session.stream().current()->validate());
}

}  // namespace
}  // namespace hyscale
