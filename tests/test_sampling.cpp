// Tests for sampling/: neighbor sampler, mini-batch invariants, SAINT
// sampler, source-sorted edge blocks.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "graph/generator.hpp"
#include "sampling/minibatch.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "sampling/saint_sampler.hpp"
#include "sampling/sorted_edges.hpp"

namespace hyscale {
namespace {

CsrGraph test_graph() {
  RmatParams p;
  p.scale = 9;  // 512 vertices
  p.edge_factor = 8;
  return generate_rmat(p);
}

std::vector<VertexId> some_seeds(const CsrGraph& g, std::size_t count) {
  std::vector<VertexId> seeds;
  for (VertexId v = 0; v < g.num_vertices() && seeds.size() < count; ++v) {
    if (g.degree(v) > 0) seeds.push_back(v);
  }
  return seeds;
}

struct SamplerCase {
  std::vector<int> fanouts;
  std::size_t num_seeds;
};

class NeighborSamplerTest : public ::testing::TestWithParam<SamplerCase> {};

TEST_P(NeighborSamplerTest, ProducesValidChainedBlocks) {
  const CsrGraph g = test_graph();
  NeighborSampler sampler(g, GetParam().fanouts, 1);
  const MiniBatch batch = sampler.sample(some_seeds(g, GetParam().num_seeds));
  EXPECT_TRUE(batch.validate());
  EXPECT_EQ(batch.num_layers(), static_cast<int>(GetParam().fanouts.size()));
}

TEST_P(NeighborSamplerTest, FanoutCapsDegrees) {
  const CsrGraph g = test_graph();
  const auto& fanouts = GetParam().fanouts;
  NeighborSampler sampler(g, fanouts, 2);
  const MiniBatch batch = sampler.sample(some_seeds(g, GetParam().num_seeds));
  for (std::size_t l = 0; l < batch.blocks.size(); ++l) {
    const auto& block = batch.blocks[l];
    for (std::int64_t d = 0; d < block.num_dst; ++d) {
      const EdgeId sampled = block.indptr[static_cast<std::size_t>(d) + 1] -
                             block.indptr[static_cast<std::size_t>(d)];
      EXPECT_LE(sampled, fanouts[l]);
      EXPECT_LE(sampled, g.degree(block.src_nodes[static_cast<std::size_t>(d)]));
    }
  }
}

TEST_P(NeighborSamplerTest, SampledEdgesAreRealEdges) {
  const CsrGraph g = test_graph();
  NeighborSampler sampler(g, GetParam().fanouts, 3);
  const MiniBatch batch = sampler.sample(some_seeds(g, GetParam().num_seeds));
  for (const auto& block : batch.blocks) {
    for (std::int64_t d = 0; d < block.num_dst; ++d) {
      const VertexId dst_global = block.src_nodes[static_cast<std::size_t>(d)];
      const auto neighbors = g.neighbors(dst_global);
      for (EdgeId e = block.indptr[static_cast<std::size_t>(d)];
           e < block.indptr[static_cast<std::size_t>(d) + 1]; ++e) {
        const VertexId src_global =
            block.src_nodes[static_cast<std::size_t>(block.indices[static_cast<std::size_t>(e)])];
        EXPECT_TRUE(std::binary_search(neighbors.begin(), neighbors.end(), src_global));
      }
    }
  }
}

TEST_P(NeighborSamplerTest, NoDuplicateNeighborsPerDestination) {
  const CsrGraph g = test_graph();
  NeighborSampler sampler(g, GetParam().fanouts, 4);
  const MiniBatch batch = sampler.sample(some_seeds(g, GetParam().num_seeds));
  for (const auto& block : batch.blocks) {
    for (std::int64_t d = 0; d < block.num_dst; ++d) {
      std::set<std::int64_t> seen;
      for (EdgeId e = block.indptr[static_cast<std::size_t>(d)];
           e < block.indptr[static_cast<std::size_t>(d) + 1]; ++e) {
        EXPECT_TRUE(seen.insert(block.indices[static_cast<std::size_t>(e)]).second);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, NeighborSamplerTest,
                         ::testing::Values(SamplerCase{{25, 10}, 32},
                                           SamplerCase{{5}, 16},
                                           SamplerCase{{15, 10, 5}, 24},
                                           SamplerCase{{2, 2}, 64},
                                           SamplerCase{{1, 1, 1, 1}, 8}));

TEST(NeighborSampler, DeterministicPerSeed) {
  const CsrGraph g = test_graph();
  NeighborSampler a(g, {5, 5}, 7);
  NeighborSampler b(g, {5, 5}, 7);
  const auto seeds = some_seeds(g, 16);
  const MiniBatch ba = a.sample(seeds);
  const MiniBatch bb = b.sample(seeds);
  ASSERT_EQ(ba.blocks.size(), bb.blocks.size());
  for (std::size_t l = 0; l < ba.blocks.size(); ++l) {
    EXPECT_EQ(ba.blocks[l].src_nodes, bb.blocks[l].src_nodes);
    EXPECT_EQ(ba.blocks[l].indices, bb.blocks[l].indices);
  }
}

TEST(NeighborSampler, ConsecutiveCallsDiffer) {
  const CsrGraph g = test_graph();
  NeighborSampler sampler(g, {3, 3}, 7);
  const auto seeds = some_seeds(g, 16);
  const MiniBatch a = sampler.sample(seeds);
  const MiniBatch b = sampler.sample(seeds);
  // Same seeds, advancing stream: almost surely different frontiers.
  EXPECT_NE(a.blocks.front().src_nodes, b.blocks.front().src_nodes);
}

TEST(NeighborSampler, DstPrefixConvention) {
  const CsrGraph g = test_graph();
  NeighborSampler sampler(g, {4, 4}, 5);
  const auto seeds = some_seeds(g, 10);
  const MiniBatch batch = sampler.sample(seeds);
  // Top block's dst prefix == seeds.
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(batch.blocks.back().src_nodes[i], seeds[i]);
  }
}

TEST(NeighborSampler, RejectsBadInputs) {
  const CsrGraph g = test_graph();
  EXPECT_THROW(NeighborSampler(g, {}, 1), std::invalid_argument);
  EXPECT_THROW(NeighborSampler(g, {0}, 1), std::invalid_argument);
  NeighborSampler sampler(g, {2}, 1);
  EXPECT_THROW(sampler.sample({}), std::invalid_argument);
  EXPECT_THROW(sampler.sample({g.num_vertices()}), std::invalid_argument);
}

TEST(NeighborSampler, StatsMatchBlocks) {
  const CsrGraph g = test_graph();
  NeighborSampler sampler(g, {25, 10}, 6);
  const MiniBatch batch = sampler.sample(some_seeds(g, 20));
  const BatchStats stats = batch.stats();
  ASSERT_EQ(stats.vertices_per_layer.size(), 3u);
  ASSERT_EQ(stats.edges_per_layer.size(), 2u);
  EXPECT_EQ(stats.vertices_per_layer[0], batch.blocks[0].num_src());
  EXPECT_EQ(stats.vertices_per_layer[2], static_cast<std::int64_t>(batch.seeds.size()));
  EXPECT_EQ(stats.edges_per_layer[0], batch.blocks[0].num_edges());
  EXPECT_EQ(stats.input_vertices(), batch.blocks[0].num_src());
}

TEST(NeighborSampler, ExpectedStatsGrowAndCap) {
  const auto stats = NeighborSampler::expected_stats(1024, {25, 10}, 50.0, 1000000);
  ASSERT_EQ(stats.vertices_per_layer.size(), 3u);
  EXPECT_EQ(stats.vertices_per_layer[2], 1024);
  EXPECT_GT(stats.vertices_per_layer[1], stats.vertices_per_layer[2]);
  EXPECT_GT(stats.vertices_per_layer[0], stats.vertices_per_layer[1]);
  // Cap at dataset size.
  const auto capped = NeighborSampler::expected_stats(1024, {25, 10}, 50.0, 2000);
  EXPECT_LE(capped.vertices_per_layer[0], 2000);
}

TEST(NeighborSampler, ExpectedStatsUseMeanDegreeWhenSmall) {
  // fanout 25 but mean degree 3: effective fanout is 3.
  const auto stats = NeighborSampler::expected_stats(100, {25}, 3.0, 1000000);
  EXPECT_EQ(stats.edges_per_layer[0], 300);
}

TEST(BatchStats, SumAggregatesElementwise) {
  BatchStats a, b;
  a.vertices_per_layer = {10, 5};
  a.edges_per_layer = {20};
  b.vertices_per_layer = {1, 2};
  b.edges_per_layer = {3};
  const BatchStats s = BatchStats::sum({a, b});
  EXPECT_EQ(s.vertices_per_layer[0], 11);
  EXPECT_EQ(s.edges_per_layer[0], 23);
  EXPECT_EQ(s.total_edges(), 23);
}

TEST(FullSampler, TakesAllNeighbors) {
  const CsrGraph g = test_graph();
  const auto seeds = some_seeds(g, 4);
  const MiniBatch batch = sample_full(g, seeds, 1);
  const auto& block = batch.blocks.front();
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(block.indptr[i + 1] - block.indptr[i], g.degree(seeds[i]));
  }
}

TEST(SaintSampler, InducedSubgraphEdgesExistInParent) {
  const CsrGraph g = test_graph();
  SaintConfig config;
  config.num_roots = 32;
  config.walk_length = 3;
  SaintRandomWalkSampler sampler(g, config);
  const Subgraph sub = sampler.sample();
  EXPECT_GT(sub.num_nodes(), 0);
  EXPECT_TRUE(sub.adjacency.validate());
  for (VertexId local = 0; local < sub.adjacency.num_vertices(); ++local) {
    const VertexId global = sub.nodes[static_cast<std::size_t>(local)];
    const auto parent_neighbors = g.neighbors(global);
    for (VertexId nb_local : sub.adjacency.neighbors(local)) {
      const VertexId nb_global = sub.nodes[static_cast<std::size_t>(nb_local)];
      EXPECT_TRUE(
          std::binary_search(parent_neighbors.begin(), parent_neighbors.end(), nb_global));
    }
  }
}

TEST(SaintSampler, DeterministicThenAdvances) {
  const CsrGraph g = test_graph();
  SaintConfig config;
  config.num_roots = 16;
  SaintRandomWalkSampler a(g, config), b(g, config);
  EXPECT_EQ(a.sample().nodes, b.sample().nodes);
  // Second draw differs from the first.
  SaintRandomWalkSampler c(g, config);
  const auto first = c.sample().nodes;
  const auto second = c.sample().nodes;
  EXPECT_NE(first, second);
}

TEST(SaintSampler, RejectsBadConfig) {
  const CsrGraph g = test_graph();
  SaintConfig bad;
  bad.num_roots = 0;
  EXPECT_THROW(SaintRandomWalkSampler(g, bad), std::invalid_argument);
}

TEST(SortedEdges, SortedBySourceWithCorrectCounts) {
  const CsrGraph g = test_graph();
  NeighborSampler sampler(g, {10, 5}, 9);
  const MiniBatch batch = sampler.sample(some_seeds(g, 24));
  for (const auto& block : batch.blocks) {
    const SortedEdgeBlock sorted = sort_edges_by_source(block);
    EXPECT_EQ(sorted.num_edges(), block.num_edges());
    EXPECT_TRUE(std::is_sorted(sorted.src.begin(), sorted.src.end()));
    // unique_sources matches a direct count.
    std::unordered_set<std::int64_t> uniq(block.indices.begin(), block.indices.end());
    EXPECT_EQ(sorted.unique_sources, static_cast<std::int64_t>(uniq.size()));
    // The FPGA reuse claim: reads with duplication <= reads without.
    EXPECT_LE(sorted.reads_with_reuse(), sorted.reads_without_reuse());
    EXPECT_GE(sorted.max_run, sorted.num_edges() > 0 ? 1 : 0);
  }
}

TEST(SortedEdges, MaxRunOnKnownBlock) {
  LayerBlock block;
  block.num_dst = 3;
  block.src_nodes = {10, 11, 12, 13};
  block.indptr = {0, 2, 3, 4};
  block.indices = {3, 3, 3, 0};  // edges: (3->d0) x2, (3->d1), (0->d2)
  ASSERT_TRUE(block.validate());
  const SortedEdgeBlock sorted = sort_edges_by_source(block);
  EXPECT_EQ(sorted.unique_sources, 2);
  EXPECT_EQ(sorted.max_run, 3);
}

TEST(LayerBlock, ValidateCatchesCorruption) {
  LayerBlock block;
  block.num_dst = 1;
  block.src_nodes = {0, 1};
  block.indptr = {0, 1};
  block.indices = {5};  // out of range
  EXPECT_FALSE(block.validate());
  block.indices = {1};
  EXPECT_TRUE(block.validate());
  block.indptr = {1, 0};  // non-monotone / wrong front
  EXPECT_FALSE(block.validate());
}

}  // namespace
}  // namespace hyscale
