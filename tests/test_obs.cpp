// Tests for the telemetry plane (src/obs/): registry determinism and
// thread-safety, fixed-bucket histogram percentiles, callback-gauge
// freeze-on-detach, trace-ring wraparound and seqlock consistency
// under concurrent writers, end-to-end stage reconstruction for a
// served request (queue -> sample -> gather -> forward -> reply) and a
// compaction fold (CUT -> BUILD -> REBASE), the lifecycle journal's
// bounded ring, and the JSON-lines exporter — including a snapshot
// taken while a fold is parked in flight.
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/hyscale.hpp"

namespace hyscale {
namespace {

const Dataset& community() {
  static const Dataset ds = make_community_dataset(3, 32, 8, 2);
  return ds;
}

ModelConfig small_model_config() {
  ModelConfig config;
  config.kind = GnnKind::kSage;
  config.dims = {8, 16, 3};
  config.seed = 11;
  return config;
}

// --------------------------------------------------------------- registry

TEST(MetricsRegistry, SnapshotReportsInstrumentsInRegistrationOrder) {
  MetricsRegistry registry;
  registry.counter("b.count").add(2);
  registry.gauge("a.gauge").set(1.5);
  registry.counter("c.count").add(3);
  registry.histogram("d.hist").observe_ms(1.0);

  const MetricsSnapshot snap = registry.snapshot();
  std::vector<std::string> names;
  for (const auto& [name, value] : snap.scalars()) names.push_back(name);
  // Registration order, NOT lexicographic: two runs of the same binary
  // wire instruments in the same order, so records diff cleanly.
  EXPECT_EQ(names, (std::vector<std::string>{"b.count", "a.gauge", "c.count"}));
  EXPECT_DOUBLE_EQ(snap.value("b.count"), 2.0);
  EXPECT_DOUBLE_EQ(snap.value("a.gauge"), 1.5);
  ASSERT_EQ(snap.histograms().size(), 1u);
  EXPECT_EQ(snap.histograms()[0].name, "d.hist");
}

TEST(MetricsRegistry, LookupReturnsSameInstrumentAndKindMismatchThrows) {
  MetricsRegistry registry;
  Counter& c1 = registry.counter("x");
  Counter& c2 = registry.counter("x");
  EXPECT_EQ(&c1, &c2);
  EXPECT_THROW(registry.gauge("x"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("x"), std::invalid_argument);
}

TEST(MetricsSnapshot, UnknownScalarThrowsInsteadOfReturningZero) {
  MetricsRegistry registry;
  registry.counter("known").add(1);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_TRUE(snap.has("known"));
  EXPECT_FALSE(snap.has("typo"));
  EXPECT_THROW(snap.value("typo"), std::out_of_range);
  EXPECT_THROW(snap.percentile_ms("typo", 0.5), std::out_of_range);
  EXPECT_EQ(snap.histogram("typo"), nullptr);
}

TEST(MetricsRegistry, ConcurrentCounterIncrementsAreExact) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("hits");
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::int64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  // Snapshot concurrently with the writers: must never block or tear
  // (each read is a relaxed per-shard sum).
  for (int i = 0; i < 50; ++i) (void)registry.snapshot();
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(registry.snapshot().value("hits"),
                   static_cast<double>(kThreads * kPerThread));
}

TEST(Histogram, PercentilesInterpolateWithinBucketResolution) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat");
  for (int i = 1; i <= 1000; ++i) h.observe_ms(static_cast<double>(i) * 0.01);  // 0.01..10 ms
  const MetricsSnapshot snap = registry.snapshot();
  const MetricsSnapshot::HistogramView* view = snap.histogram("lat");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->count, 1000);
  EXPECT_DOUBLE_EQ(view->max_ms, 10.0);
  // Buckets grow ~15% per step: the estimate must land within one
  // bucket (+-20%) of the true quantile.
  EXPECT_NEAR(snap.percentile_ms("lat", 0.50), 5.0, 1.0);
  EXPECT_NEAR(snap.percentile_ms("lat", 0.99), 9.9, 2.0);
  // The top of the distribution is capped by the exact max.
  EXPECT_LE(snap.percentile_ms("lat", 1.0), 10.0);
}

TEST(MetricsRegistry, CallbackGaugeFreezesOnDetach) {
  MetricsRegistry registry;
  int live_value = 42;
  const int owner = 0;
  registry.register_callback("cb", &owner, [&live_value] {
    return static_cast<double>(live_value);
  });
  EXPECT_DOUBLE_EQ(registry.snapshot().value("cb"), 42.0);
  live_value = 43;
  registry.detach(&owner);  // evaluates once more and freezes
  live_value = 99;          // must never be read again
  EXPECT_DOUBLE_EQ(registry.snapshot().value("cb"), 43.0);
}

// ----------------------------------------------------------------- tracer

TEST(StageTracer, RingWraparoundKeepsWellFormedRecentSpans) {
  StageTracer tracer(/*enabled=*/true, /*ring_capacity=*/64, /*max_threads=*/4);
  constexpr std::uint64_t kSpans = 1000;
  for (std::uint64_t i = 0; i < kSpans; ++i) {
    tracer.record(TraceStage::kSample, /*context=*/i, /*aux=*/i,
                  static_cast<std::int64_t>(i), static_cast<std::int64_t>(i) + 1);
  }
  EXPECT_EQ(tracer.recorded(), static_cast<std::int64_t>(kSpans));
  EXPECT_EQ(tracer.dropped(), 0);
  const std::vector<TraceRecord> records = tracer.collect();
  ASSERT_EQ(records.size(), 64u);  // bounded by the ring, oldest overwritten
  for (const TraceRecord& r : records) {
    EXPECT_EQ(r.stage, TraceStage::kSample);
    EXPECT_EQ(r.end_ns, r.begin_ns + 1);
    EXPECT_EQ(r.context, static_cast<std::uint64_t>(r.begin_ns));
    EXPECT_GE(r.context, kSpans - 64);  // the retained set is the most recent
  }
}

TEST(StageTracer, ConcurrentWritersAndCollectorSeeOnlyConsistentRecords) {
  StageTracer tracer(/*enabled=*/true, /*ring_capacity=*/128, /*max_threads=*/8);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&tracer, &stop, t] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Invariants a torn read would break: end = begin + 1,
        // aux = context.
        const auto ctx = (static_cast<std::uint64_t>(t) << 32) | i++;
        tracer.record(TraceStage::kGather, ctx, ctx, static_cast<std::int64_t>(i),
                      static_cast<std::int64_t>(i) + 1);
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    for (const TraceRecord& r : tracer.collect()) {
      ASSERT_EQ(r.end_ns, r.begin_ns + 1);
      ASSERT_EQ(r.aux, r.context);
      ASSERT_EQ(r.stage, TraceStage::kGather);
    }
  }
  stop.store(true);
  for (auto& writer : writers) writer.join();
  EXPECT_EQ(tracer.dropped(), 0);
}

TEST(StageTracer, DisabledTracerRecordsNothing) {
  StageTracer tracer(/*enabled=*/false);
  { StageTracer::Scope span(&tracer, TraceStage::kSample, 1); }
  tracer.record(TraceStage::kSample, 1, 0, 0, 1);
  EXPECT_EQ(tracer.recorded(), 0);
  EXPECT_TRUE(tracer.collect().empty());
}

// --------------------------------------------- end-to-end reconstruction

TEST(StageTracer, ServedRequestReconstructsQueueSampleGatherForwardPath) {
  Telemetry telemetry;
  const Dataset& ds = community();
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);

  ServingConfig config;
  config.fanouts = {5, 5};
  config.num_workers = 1;
  config.telemetry = &telemetry;
  InferenceServer server(ds, snapshot, config);
  for (int i = 0; i < 4; ++i) (void)server.infer({0, 17, 40});

  // Group spans by batch context and find a fully-traced batch.
  std::set<std::uint64_t> contexts;
  for (const TraceRecord& r : telemetry.tracer().collect()) {
    if (r.stage == TraceStage::kSample) contexts.insert(r.context);
  }
  ASSERT_FALSE(contexts.empty());
  bool reconstructed = false;
  for (const std::uint64_t context : contexts) {
    const std::vector<TraceRecord> path = telemetry.tracer().context_path(context);
    std::map<TraceStage, TraceRecord> by_stage;
    for (const TraceRecord& r : path) by_stage[r.stage] = r;
    if (!by_stage.count(TraceStage::kQueue) || !by_stage.count(TraceStage::kSample) ||
        !by_stage.count(TraceStage::kGather) || !by_stage.count(TraceStage::kForward) ||
        !by_stage.count(TraceStage::kReply)) {
      continue;
    }
    reconstructed = true;
    for (const TraceRecord& r : path) EXPECT_LE(r.begin_ns, r.end_ns);
    const TraceRecord& queue = by_stage[TraceStage::kQueue];
    const TraceRecord& sample = by_stage[TraceStage::kSample];
    const TraceRecord& gather = by_stage[TraceStage::kGather];
    const TraceRecord& forward = by_stage[TraceStage::kForward];
    const TraceRecord& reply = by_stage[TraceStage::kReply];
    // The stages are strictly phased: each begins at or after the
    // previous one ends (all on the same steady clock).
    EXPECT_LE(queue.end_ns, sample.begin_ns);
    EXPECT_LE(sample.end_ns, gather.begin_ns);
    EXPECT_LE(gather.end_ns, forward.begin_ns);
    EXPECT_LE(forward.end_ns, reply.end_ns);
  }
  EXPECT_TRUE(reconstructed) << "no batch carried the full stage path";
}

TEST(StageTracer, FoldReconstructsCutBuildRebasePhases) {
  Telemetry telemetry;
  StreamingConfig config;
  config.telemetry = &telemetry;
  StreamingGraph graph(community(), config);

  Xoshiro256 rng(7);
  const auto n = static_cast<std::uint64_t>(graph.num_vertices());
  for (int i = 0; i < 256; ++i) {
    graph.add_edge(static_cast<VertexId>(rng.bounded(n)), static_cast<VertexId>(rng.bounded(n)));
  }
  (void)graph.publish();
  ASSERT_TRUE(graph.compact());

  // Find the fold context from its CUT span and reconstruct the phases.
  std::uint64_t fold_ctx = 0;
  bool found = false;
  for (const TraceRecord& r : telemetry.tracer().collect()) {
    if (r.stage == TraceStage::kCut) {
      fold_ctx = r.context;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  const std::vector<TraceRecord> path = telemetry.tracer().context_path(fold_ctx);
  std::map<TraceStage, TraceRecord> by_stage;
  for (const TraceRecord& r : path) by_stage[r.stage] = r;
  ASSERT_TRUE(by_stage.count(TraceStage::kCut));
  ASSERT_TRUE(by_stage.count(TraceStage::kBuild));
  ASSERT_TRUE(by_stage.count(TraceStage::kRebase));
  const TraceRecord& cut = by_stage[TraceStage::kCut];
  const TraceRecord& build = by_stage[TraceStage::kBuild];
  const TraceRecord& rebase = by_stage[TraceStage::kRebase];
  EXPECT_LE(cut.begin_ns, cut.end_ns);
  EXPECT_LE(build.begin_ns, build.end_ns);
  EXPECT_LE(rebase.begin_ns, rebase.end_ns);
  // Phases are disjoint and ordered: the off-lock build starts after
  // the cut's critical section, the rebase after the build completes.
  EXPECT_LE(cut.end_ns, build.begin_ns);
  EXPECT_LE(build.end_ns, rebase.begin_ns);

  // The registry mirrored the fold and the journal logged it.
  EXPECT_DOUBLE_EQ(telemetry.registry().snapshot().value("stream.compactions"), 1.0);
  bool journaled = false;
  for (const JournalEvent& event : telemetry.journal().events()) {
    if (event.kind == "fold") journaled = true;
  }
  EXPECT_TRUE(journaled);
}

// ---------------------------------------------------------------- journal

TEST(EventJournal, BoundedRingDropsOldestAndCountsDrops) {
  EventJournal journal(/*capacity=*/4);
  for (int i = 0; i < 6; ++i) journal.log("k" + std::to_string(i), "d");
  EXPECT_EQ(journal.dropped(), 2);
  const std::vector<JournalEvent> events = journal.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().kind, "k2");  // k0, k1 evicted
  EXPECT_EQ(events.back().kind, "k5");
  EXPECT_EQ(journal.drain().size(), 4u);
  EXPECT_TRUE(journal.events().empty());
}

// --------------------------------------------------------------- exporter

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(TelemetryExporter, EmitsOneJsonObjectPerLine) {
  const std::string path = "obs_exporter_test.jsonl";
  Telemetry telemetry;
  telemetry.registry().counter("serving.requests_completed").add(5);
  telemetry.registry().histogram("serving.latency_ms").observe_ms(2.0);
  telemetry.journal().log("publish", "version=1 overlay_ops=3");
  {
    TelemetryExporter exporter(telemetry, {path, /*interval_ms=*/0});
    exporter.flush("tick");
  }  // destructor appends the "final" snapshot
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_GE(lines.size(), 3u);  // event + tick snapshot + final snapshot
  int snapshots = 0, events = 0;
  for (const std::string& line : lines) {
    // CI re-parses with json.loads; here we hold the line discipline.
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"type\":"), std::string::npos);
    if (line.find("\"type\":\"snapshot\"") != std::string::npos) {
      ++snapshots;
      EXPECT_NE(line.find("\"metrics\":"), std::string::npos);
      EXPECT_NE(line.find("serving.requests_completed"), std::string::npos);
      EXPECT_NE(line.find("\"trace\":"), std::string::npos);
    }
    if (line.find("\"type\":\"event\"") != std::string::npos) {
      ++events;
      EXPECT_NE(line.find("\"kind\":\"publish\""), std::string::npos);
    }
  }
  EXPECT_EQ(snapshots, 2);
  EXPECT_EQ(events, 1);
  std::remove(path.c_str());
}

TEST(TelemetryExporter, SnapshotDuringInFlightFoldIsConsistent) {
  const std::string path = "obs_exporter_midfold_test.jsonl";
  Telemetry telemetry;
  StreamingConfig config;
  config.telemetry = &telemetry;
  StreamingGraph graph(community(), config);

  Xoshiro256 rng(13);
  const auto n = static_cast<std::uint64_t>(graph.num_vertices());
  for (int i = 0; i < 256; ++i) {
    graph.add_edge(static_cast<VertexId>(rng.bounded(n)), static_cast<VertexId>(rng.bounded(n)));
  }
  (void)graph.publish();

  std::mutex mutex;
  std::condition_variable cv;
  bool parked = false, release = false;
  graph.set_fold_hook([&] {
    std::unique_lock lock(mutex);
    parked = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });
  std::thread folder([&graph] { EXPECT_TRUE(graph.compact()); });
  {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return parked; });
  }

  // The fold is parked off-lock between BUILD and REBASE.  A snapshot
  // taken now must not block and must see CUT + BUILD but no REBASE.
  {
    TelemetryExporter exporter(telemetry, {path, /*interval_ms=*/0});
    exporter.flush("mid_fold");
  }
  const MetricsSnapshot snap = telemetry.registry().snapshot();
  EXPECT_TRUE(snap.has("stream.overlay_edges"));  // callback gauges still live
  EXPECT_DOUBLE_EQ(snap.value("stream.compactions"), 0.0);  // fold not yet landed
  bool cut = false, build = false, rebase = false;
  for (const TraceRecord& r : telemetry.tracer().collect()) {
    if (r.stage == TraceStage::kCut) cut = true;
    if (r.stage == TraceStage::kBuild) build = true;
    if (r.stage == TraceStage::kRebase) rebase = true;
  }
  EXPECT_TRUE(cut);
  EXPECT_TRUE(build);
  EXPECT_FALSE(rebase);

  {
    std::lock_guard lock(mutex);
    release = true;
  }
  cv.notify_all();
  folder.join();
  graph.set_fold_hook(nullptr);
  EXPECT_DOUBLE_EQ(telemetry.registry().snapshot().value("stream.compactions"), 1.0);

  for (const std::string& line : read_lines(path)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hyscale
