// Tests for graph/datasets: Table III registry + synthetic materialisation.
#include <gtest/gtest.h>

#include <set>

#include "graph/datasets.hpp"

namespace hyscale {
namespace {

TEST(Datasets, TableThreeRegistry) {
  const auto& all = paper_datasets();
  ASSERT_EQ(all.size(), 3u);

  const DatasetInfo& products = dataset_info("ogbn-products");
  EXPECT_EQ(products.num_vertices, 2449029ULL);
  EXPECT_EQ(products.num_edges, 61859140ULL);
  EXPECT_EQ(products.f0, 100);
  EXPECT_EQ(products.f1, 256);
  EXPECT_EQ(products.f2, 47);

  const DatasetInfo& papers = dataset_info("ogbn-papers100M");
  EXPECT_EQ(papers.num_vertices, 111059956ULL);
  EXPECT_EQ(papers.num_edges, 1615685872ULL);
  EXPECT_EQ(papers.f0, 128);
  EXPECT_EQ(papers.f2, 172);

  const DatasetInfo& mag = dataset_info("MAG240M (homo)");
  EXPECT_EQ(mag.num_edges, 1297748926ULL);
  EXPECT_EQ(mag.f0, 756);
  EXPECT_EQ(mag.f2, 153);
}

TEST(Datasets, UnknownNameThrows) {
  EXPECT_THROW(dataset_info("ogbn-nope"), std::out_of_range);
}

TEST(Datasets, DerivedStatistics) {
  const DatasetInfo& papers = dataset_info("ogbn-papers100M");
  EXPECT_NEAR(papers.mean_degree(), 14.55, 0.05);
  // 111M x 128 x 4 B ~ 56.9 GB of features.
  EXPECT_NEAR(papers.feature_bytes() / 1e9, 56.9, 0.2);
  EXPECT_GT(papers.train_count, 1000000ULL);
}

TEST(Datasets, MaterializePreservesPaperInfoButScalesGraph) {
  MaterializeOptions options;
  options.target_vertices = 1 << 10;
  const Dataset ds = materialize_dataset("ogbn-products", options);
  EXPECT_EQ(ds.info.num_vertices, 2449029ULL);  // paper-scale metadata intact
  EXPECT_EQ(ds.num_vertices(), 1024);           // materialised graph scaled
  EXPECT_EQ(ds.features.rows(), 1024);
  EXPECT_EQ(ds.features.cols(), 100);
  EXPECT_EQ(ds.labels.size(), 1024u);
  EXPECT_FALSE(ds.train_ids.empty());
  EXPECT_TRUE(ds.graph.validate());
}

TEST(Datasets, MaterializeDeterministic) {
  MaterializeOptions options;
  options.target_vertices = 512;
  const Dataset a = materialize_dataset("ogbn-papers100M", options);
  const Dataset b = materialize_dataset("ogbn-papers100M", options);
  EXPECT_EQ(a.graph.indices(), b.graph.indices());
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.train_ids, b.train_ids);
}

TEST(Datasets, LabelsWithinClassRange) {
  MaterializeOptions options;
  options.target_vertices = 512;
  const Dataset ds = materialize_dataset("ogbn-papers100M", options);
  for (int label : ds.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, ds.info.f2);
  }
  for (VertexId v : ds.train_ids) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, ds.num_vertices());
  }
}

TEST(Datasets, DensityTracksPaperDataset) {
  MaterializeOptions options;
  options.target_vertices = 1 << 12;
  const Dataset ds = materialize_dataset("ogbn-products", options);
  // ogbn-products mean degree ~25; the scaled graph should be in the same
  // regime (symmetrization/dedup move it somewhat).
  EXPECT_GT(ds.graph.mean_degree(), 8.0);
  EXPECT_LT(ds.graph.mean_degree(), 60.0);
}

TEST(Datasets, CommunityDatasetHasCleanStructure) {
  const Dataset ds = make_community_dataset(4, 64, 16, 7);
  EXPECT_EQ(ds.num_vertices(), 256);
  EXPECT_EQ(ds.info.f2, 4);
  std::set<int> labels(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(labels.size(), 4u);
  // Labels follow block id.
  EXPECT_EQ(ds.labels[0], 0);
  EXPECT_EQ(ds.labels[255], 3);
  EXPECT_THROW(make_community_dataset(0, 10, 4, 1), std::invalid_argument);
}

}  // namespace
}  // namespace hyscale
