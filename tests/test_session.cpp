// Tests for runtime/csv_report and runtime/training_session.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strutil.hpp"
#include "graph/datasets.hpp"
#include "nn/checkpoint.hpp"
#include "runtime/csv_report.hpp"
#include "runtime/training_session.hpp"

namespace hyscale {
namespace {

HybridTrainerConfig session_trainer_config() {
  HybridTrainerConfig config;
  config.fanouts = {5, 5};
  config.learning_rate = 0.3;
  config.real_batch_total = 96;
  config.real_iterations_cap = 20;
  config.per_trainer_batch = 128;
  return config;
}

TEST(CsvReport, HeaderAndRowsAlign) {
  const Dataset ds = make_community_dataset(3, 64, 8, 21);
  HybridTrainer trainer(ds, cpu_fpga_platform(2), session_trainer_config());
  const std::vector<EpochReport> reports = trainer.train(2);
  const std::string csv = to_csv(reports);

  std::stringstream lines(csv);
  std::string line;
  std::getline(lines, line);
  const std::size_t header_cols = split(line, ',').size();
  EXPECT_EQ(line, csv_header());
  int rows = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(split(line, ',').size(), header_cols);
    ++rows;
  }
  EXPECT_EQ(rows, 2);
}

TEST(CsvReport, RowContainsEpochMetrics) {
  const Dataset ds = make_community_dataset(3, 64, 8, 22);
  HybridTrainer trainer(ds, cpu_fpga_platform(1), session_trainer_config());
  const EpochReport report = trainer.train_epoch();
  const std::string row = csv_row(7, report);
  EXPECT_EQ(row.substr(0, 2), "7,");
  EXPECT_NE(row.find(format_double(report.epoch_time, 6)), std::string::npos);
}

TEST(CsvReport, WriteCsvCreatesFile) {
  const Dataset ds = make_community_dataset(3, 64, 8, 23);
  HybridTrainer trainer(ds, cpu_fpga_platform(1), session_trainer_config());
  const std::string path = "/tmp/hyscale_csv_test.csv";
  write_csv(trainer.train(1), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, csv_header());
  std::remove(path.c_str());
}

TEST(TrainingSession, RunsAndTracksBestAccuracy) {
  const Dataset ds = make_community_dataset(4, 96, 12, 24);
  HybridTrainer trainer(ds, cpu_fpga_platform(2), session_trainer_config());
  SessionConfig config;
  config.max_epochs = 6;
  config.patience = 0;  // no early stop
  TrainingSession session(trainer, config);
  const SessionResult result = session.run();
  EXPECT_EQ(result.epochs_run, 6);
  EXPECT_EQ(result.reports.size(), 6u);
  EXPECT_GT(result.best_accuracy, 0.3);
  EXPECT_GE(result.best_epoch, 0);
  EXPECT_FALSE(result.early_stopped);
}

TEST(TrainingSession, EarlyStopsOnPlateau) {
  // A trainer with real compute disabled never improves accuracy, so the
  // session must stop after `patience` epochs.
  MaterializeOptions options;
  options.target_vertices = 1 << 10;
  const Dataset ds = materialize_dataset("ogbn-products", options);
  HybridTrainerConfig trainer_config = session_trainer_config();
  trainer_config.real_compute = false;
  HybridTrainer trainer(ds, cpu_fpga_platform(2), trainer_config);
  SessionConfig config;
  config.max_epochs = 50;
  config.patience = 3;
  TrainingSession session(trainer, config);
  const SessionResult result = session.run();
  EXPECT_TRUE(result.early_stopped);
  EXPECT_LE(result.epochs_run, 10);
}

TEST(TrainingSession, WritesCheckpointAndCsv) {
  const Dataset ds = make_community_dataset(3, 64, 8, 25);
  HybridTrainer trainer(ds, cpu_fpga_platform(1), session_trainer_config());
  SessionConfig config;
  config.max_epochs = 2;
  config.checkpoint_path = "/tmp/hyscale_session_ckpt.bin";
  config.csv_path = "/tmp/hyscale_session.csv";
  TrainingSession session(trainer, config);
  const SessionResult result = session.run();
  EXPECT_GE(result.best_epoch, 0);
  // Checkpoint is loadable into a fresh model of the same architecture.
  GnnModel restored(trainer.model().config());
  load_checkpoint(restored, config.checkpoint_path);
  std::ifstream csv(config.csv_path);
  EXPECT_TRUE(csv.good());
  std::remove(config.checkpoint_path.c_str());
  std::remove(config.csv_path.c_str());
}

TEST(TrainingSession, RejectsBadConfig) {
  const Dataset ds = make_community_dataset(3, 64, 8, 26);
  HybridTrainer trainer(ds, cpu_fpga_platform(1), session_trainer_config());
  SessionConfig bad;
  bad.max_epochs = 0;
  EXPECT_THROW(TrainingSession(trainer, bad), std::invalid_argument);
  bad = SessionConfig{};
  bad.patience = -1;
  EXPECT_THROW(TrainingSession(trainer, bad), std::invalid_argument);
}

}  // namespace
}  // namespace hyscale
