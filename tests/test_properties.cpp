// Randomised property tests across module boundaries: sampler/mini-batch
// invariants over random graphs and fanouts, DRM conservation laws under
// fuzzed stage times, pipeline-algebra identities, and the synchronous-
// SGD equivalence over varying replica counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "graph/generator.hpp"
#include "nn/model.hpp"
#include "runtime/drm.hpp"
#include "runtime/stage_times.hpp"
#include "runtime/sync.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "sampling/sorted_edges.hpp"
#include "tensor/init.hpp"

namespace hyscale {
namespace {

// ------------------------------------------------ sampler over random graphs

class RandomGraphSampling : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphSampling, MiniBatchInvariantsHold) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  RmatParams params;
  params.scale = 7 + static_cast<int>(rng.bounded(3));
  params.edge_factor = 2.0 + static_cast<double>(rng.bounded(8));
  params.seed = seed;
  const CsrGraph g = generate_rmat(params);

  std::vector<int> fanouts;
  const int layers = 1 + static_cast<int>(rng.bounded(3));
  for (int l = 0; l < layers; ++l) fanouts.push_back(1 + static_cast<int>(rng.bounded(12)));

  std::vector<VertexId> seeds;
  for (VertexId v = 0; v < g.num_vertices() && seeds.size() < 17; ++v) {
    if (g.degree(v) > 0) seeds.push_back(v);
  }
  ASSERT_FALSE(seeds.empty());

  NeighborSampler sampler(g, fanouts, seed);
  for (int round = 0; round < 3; ++round) {
    const MiniBatch batch = sampler.sample(seeds);
    ASSERT_TRUE(batch.validate());
    const BatchStats stats = batch.stats();
    // |V^l| is non-increasing toward the output layer; |V^0| >= seeds.
    for (std::size_t l = 1; l < stats.vertices_per_layer.size(); ++l) {
      EXPECT_GE(stats.vertices_per_layer[l - 1], stats.vertices_per_layer[l]);
    }
    EXPECT_EQ(stats.vertices_per_layer.back(), static_cast<std::int64_t>(seeds.size()));
    // Sorted-edge view agrees with the block on every layer.
    for (const auto& block : batch.blocks) {
      const SortedEdgeBlock sorted = sort_edges_by_source(block);
      EXPECT_EQ(sorted.num_edges(), block.num_edges());
      EXPECT_LE(sorted.unique_sources, block.num_src());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphSampling,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// --------------------------------------------------------- DRM conservation

class DrmFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DrmFuzz, ConservesBatchAndThreadsUnderRandomTimes) {
  Xoshiro256 rng(GetParam());
  DrmConfig config;
  config.accel_sampling_available = rng.uniform() < 0.5;
  DrmEngine drm(config);

  WorkloadAssignment w;
  w.cpu_batch = 256 + static_cast<std::int64_t>(rng.bounded(1024));
  w.accel_batch = 512 + static_cast<std::int64_t>(rng.bounded(1024));
  w.num_accelerators = 1 + static_cast<int>(rng.bounded(8));
  w.threads = {128, 32, 32, 64};
  const std::int64_t total_batch = w.total_batch();
  const int total_threads = w.threads.used();

  for (int i = 0; i < 200; ++i) {
    StageTimes t;
    t.sample_cpu = rng.uniform(0.0, 10e-3);
    t.sample_accel = rng.uniform(0.0, 10e-3);
    t.load = rng.uniform(0.0, 10e-3);
    t.transfer = rng.uniform(0.0, 10e-3);
    t.train_cpu = rng.uniform(0.0, 10e-3);
    t.train_accel = rng.uniform(0.0, 10e-3);
    t.sync = rng.uniform(0.0, 1e-3);
    drm.step(t, w);

    ASSERT_EQ(w.total_batch(), total_batch) << "iteration " << i;
    ASSERT_EQ(w.threads.used(), total_threads) << "iteration " << i;
    ASSERT_TRUE(w.threads.valid()) << "iteration " << i;
    ASSERT_GE(w.cpu_batch, 0);
    ASSERT_GE(w.accel_batch, 0);
    ASSERT_GE(w.accel_sample_fraction, 0.0);
    ASSERT_LE(w.accel_sample_fraction, 1.0);
    ASSERT_GE(w.threads.sampler, 1);
    ASSERT_GE(w.threads.loader, 1);
    ASSERT_GE(w.threads.trainer, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DrmFuzz, ::testing::Values(11u, 22u, 33u, 44u, 55u));

// ------------------------------------------------------- pipeline identities

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzz, AlgebraicIdentities) {
  Xoshiro256 rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    StageTimes t;
    t.sample_cpu = rng.uniform(0.0, 5e-3);
    t.sample_accel = rng.uniform(0.0, 5e-3);
    t.load = rng.uniform(0.0, 5e-3);
    t.transfer = rng.uniform(0.0, 5e-3);
    t.train_cpu = rng.uniform(0.0, 5e-3);
    t.train_accel = rng.uniform(0.0, 5e-3);
    t.sync = rng.uniform(0.0, 1e-3);

    const Seconds seq = iteration_time(t, PipelineMode::kSequential);
    const Seconds single = iteration_time(t, PipelineMode::kSinglePrefetch);
    const Seconds two = iteration_time(t, PipelineMode::kTwoStagePrefetch);
    // Pipelining can only help, and two-stage equals the max stage (Eq. 6).
    ASSERT_LE(two, single + 1e-15);
    ASSERT_LE(single, seq + 1e-15);
    ASSERT_DOUBLE_EQ(
        two, std::max({t.sampling(), t.load, t.transfer, t.propagation()}));
    // Epoch time is monotone in iteration count.
    ASSERT_LE(epoch_time(t, PipelineMode::kTwoStagePrefetch, 10),
              epoch_time(t, PipelineMode::kTwoStagePrefetch, 11) + 1e-15);
    // Epoch >= iterations * steady state.
    ASSERT_GE(epoch_time(t, PipelineMode::kTwoStagePrefetch, 50), 50.0 * two - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz, ::testing::Values(7u, 77u, 777u));

// ------------------------------------------- sync-SGD equivalence, k replicas

class ReplicaEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ReplicaEquivalence, WeightedAverageEqualsConcatenation) {
  const int k = GetParam();
  ModelConfig config;
  config.kind = GnnKind::kSage;
  config.dims = {6, 8, 3};
  config.seed = 9;

  // Synthetic per-replica gradients with distinct magnitudes and random
  // weights; the weighted average must equal the hand-computed one.
  std::vector<std::unique_ptr<GnnModel>> models;
  std::vector<GnnModel*> views;
  std::vector<std::int64_t> weights;
  Xoshiro256 rng(static_cast<std::uint64_t>(k) * 101);
  double expected_numerator = 0.0;
  double weight_sum = 0.0;
  for (int r = 0; r < k; ++r) {
    models.push_back(std::make_unique<GnnModel>(config));
    const auto fill = static_cast<float>(r + 1);
    for (auto* p : models.back()->parameters()) p->grad.fill(fill);
    const auto weight = static_cast<std::int64_t>(1 + rng.bounded(100));
    weights.push_back(weight);
    views.push_back(models.back().get());
    expected_numerator += static_cast<double>(weight) * fill;
    weight_sum += static_cast<double>(weight);
  }
  Synchronizer::allreduce(views, weights);
  const auto expected = static_cast<float>(expected_numerator / weight_sum);
  for (auto* model : views) {
    for (auto* p : model->parameters()) {
      for (float g : p->grad.flat()) ASSERT_NEAR(g, expected, 1e-5f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Replicas, ReplicaEquivalence, ::testing::Values(2, 3, 5, 8));

}  // namespace
}  // namespace hyscale
