// Tests for baselines/: each comparator model produces coherent results,
// and the cross-system relations of Tables VI/VII hold in shape.
#include <gtest/gtest.h>

#include "baselines/distdgl.hpp"
#include "baselines/p3.hpp"
#include "baselines/pagraph.hpp"
#include "baselines/pyg.hpp"
#include "graph/datasets.hpp"

namespace hyscale {
namespace {

BaselineWorkload products_sage() {
  BaselineWorkload w;
  w.dataset = dataset_info("ogbn-products");
  w.model = GnnKind::kSage;
  return w;
}

BaselineWorkload papers_gcn() {
  BaselineWorkload w;
  w.dataset = dataset_info("ogbn-papers100M");
  w.model = GnnKind::kGcn;
  return w;
}

TEST(Baselines, PygProducesPositiveBreakdown) {
  PygMultiGpuBaseline pyg(cpu_gpu_platform(4));
  const BaselineResult result = pyg.evaluate(papers_gcn());
  EXPECT_GT(result.iterations, 0);
  EXPECT_GT(result.per_iteration.sample, 0.0);
  EXPECT_GT(result.per_iteration.load, 0.0);
  EXPECT_GT(result.per_iteration.transfer, 0.0);
  EXPECT_GT(result.per_iteration.train, 0.0);
  EXPECT_GT(result.per_iteration.framework, 0.0);
  EXPECT_GT(result.epoch_time, 0.0);
  EXPECT_NEAR(result.platform_tflops, 118.4, 1e-6);
}

TEST(Baselines, PygEpochInPaperBallpark) {
  // Fig. 10 reference bars: products ~4 s, papers100M ~20 s.  Require
  // same order of magnitude (the criterion is shape, not seconds).
  PygMultiGpuBaseline pyg(cpu_gpu_platform(4));
  const Seconds products = pyg.evaluate(products_sage()).epoch_time;
  const Seconds papers = pyg.evaluate(papers_gcn()).epoch_time;
  EXPECT_GT(products, 1.0);
  EXPECT_LT(products, 15.0);
  EXPECT_GT(papers, 6.0);
  EXPECT_LT(papers, 80.0);
  EXPECT_GT(papers, products);  // bigger dataset, longer epoch
}

TEST(Baselines, PygRequiresGpus) {
  EXPECT_THROW(PygMultiGpuBaseline{cpu_fpga_platform(4)}, std::invalid_argument);
}

TEST(Baselines, PaGraphCacheHelpsSmallGraphsMore) {
  // products' features fit the V100 caches entirely; papers100M does not.
  // PaGraph should therefore be much closer to compute-bound on products.
  PaGraphBaseline pagraph;
  const BaselineResult products = pagraph.evaluate(products_sage());
  const BaselineResult papers = pagraph.evaluate(papers_gcn());
  const double products_pcie_share =
      (products.per_iteration.load + products.per_iteration.transfer) /
      products.per_iteration.iteration();
  const double papers_pcie_share =
      (papers.per_iteration.load + papers.per_iteration.transfer) /
      papers.per_iteration.iteration();
  EXPECT_LT(products_pcie_share, papers_pcie_share);
  EXPECT_GT(papers.epoch_time, products.epoch_time);
}

TEST(Baselines, P3NetworkBoundOnActivations) {
  P3Baseline p3;
  const BaselineResult result = p3.evaluate(papers_gcn());
  EXPECT_GT(result.per_iteration.network, 0.0);
  EXPECT_GT(result.epoch_time, 0.0);
  // P3 runs hidden=32 in the paper precisely because activations are the
  // traffic: verify hidden=256 costs more network time than hidden=32.
  BaselineWorkload wide = papers_gcn();
  wide.hidden_dim = 256;
  BaselineWorkload narrow = papers_gcn();
  narrow.hidden_dim = 32;
  EXPECT_GT(p3.evaluate(wide).per_iteration.network,
            p3.evaluate(narrow).per_iteration.network);
}

TEST(Baselines, DistDglScalesButPaysNetwork) {
  DistDglBaseline distdgl;
  BaselineWorkload w = products_sage();
  w.fanouts = {15, 10, 5};  // its Table V configuration
  const BaselineResult result = distdgl.evaluate(w);
  EXPECT_GT(result.per_iteration.network, 0.0);
  EXPECT_GT(result.epoch_time, 0.0);
  // 64 GPUs: far fewer iterations per epoch than a 4-GPU system.
  EXPECT_LT(result.iterations, 10);
}

TEST(Baselines, NormalizedMetricMatchesDefinition) {
  PygMultiGpuBaseline pyg(cpu_gpu_platform(4));
  const BaselineResult result = pyg.evaluate(products_sage());
  EXPECT_DOUBLE_EQ(result.normalized_epoch(), result.epoch_time * result.platform_tflops);
}

TEST(Baselines, ModelConfigFollowsTableFive) {
  BaselineWorkload w = papers_gcn();
  w.hidden_dim = 32;
  const ModelConfig two_layer = baseline_model_config(w);
  ASSERT_EQ(two_layer.dims.size(), 3u);
  EXPECT_EQ(two_layer.dims[0], 128);
  EXPECT_EQ(two_layer.dims[1], 32);
  EXPECT_EQ(two_layer.dims[2], 172);

  w.fanouts = {15, 10, 5};
  w.hidden_dim = 256;
  const ModelConfig three_layer = baseline_model_config(w);
  ASSERT_EQ(three_layer.dims.size(), 4u);
  EXPECT_EQ(three_layer.dims[1], 256);
  EXPECT_EQ(three_layer.dims[2], 256);
}

TEST(Baselines, PlatformTflopsMatchTableSeven) {
  // Table VII's normalisation factors are recoverable from its ratios:
  // PaGraph ~114, P3 ~149, DistDGL ~544 TFLOPS.
  PaGraphBaseline pagraph;
  EXPECT_NEAR(pagraph.evaluate(products_sage()).platform_tflops, 129.4, 5.0);
  P3Baseline p3;
  EXPECT_NEAR(p3.evaluate(products_sage()).platform_tflops, 151.6, 5.0);
  DistDglBaseline distdgl;
  EXPECT_NEAR(distdgl.evaluate(products_sage()).platform_tflops, 542.4, 25.0);
}

}  // namespace
}  // namespace hyscale
