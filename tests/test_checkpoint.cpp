// Tests for nn/checkpoint and the feature loader's accounting.
#include <gtest/gtest.h>

#include <cstdio>

#include "graph/datasets.hpp"
#include "nn/checkpoint.hpp"
#include "nn/model.hpp"
#include "runtime/feature_loader.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "tensor/init.hpp"

namespace hyscale {
namespace {

ModelConfig sage_config() {
  ModelConfig config;
  config.kind = GnnKind::kSage;
  config.dims = {12, 16, 5};
  config.seed = 3;
  return config;
}

TEST(Checkpoint, RoundTripRestoresExactWeights) {
  GnnModel model(sage_config());
  const std::string path = "/tmp/hyscale_ckpt_test.bin";
  save_checkpoint(model, path);

  GnnModel other(sage_config());
  // Perturb, then restore.
  for (auto* p : other.parameters()) normal_init(p->value, 1.0f, 777);
  load_checkpoint(other, path);

  const auto a = model.parameters();
  const auto b = other.parameters();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(a[i]->value, b[i]->value), 0.0);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, ArchitectureMismatchThrows) {
  GnnModel model(sage_config());
  const std::string path = "/tmp/hyscale_ckpt_mismatch.bin";
  save_checkpoint(model, path);

  ModelConfig different = sage_config();
  different.dims = {12, 32, 5};  // wider hidden layer
  GnnModel other(different);
  EXPECT_THROW(load_checkpoint(other, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingAndCorruptFilesThrow) {
  GnnModel model(sage_config());
  EXPECT_THROW(load_checkpoint(model, "/tmp/does_not_exist_ckpt.bin"), std::runtime_error);
  const std::string path = "/tmp/hyscale_ckpt_corrupt.bin";
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("garbage", f);
  std::fclose(f);
  EXPECT_THROW(load_checkpoint(model, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(FeatureLoader, GathersCorrectRowsAndCountsBytes) {
  const Dataset ds = make_community_dataset(3, 32, 8, 2);
  NeighborSampler sampler(ds.graph, {3, 3}, 1);
  std::vector<VertexId> seeds = {0, 5, 40};
  const MiniBatch batch = sampler.sample(seeds);

  FeatureLoader loader(ds.features);
  Tensor x;
  loader.load(batch, x);
  ASSERT_EQ(x.rows(), batch.blocks.front().num_src());
  ASSERT_EQ(x.cols(), 8);
  // Row i of X' is the feature row of input node i.
  for (std::size_t i = 0; i < batch.input_nodes().size(); ++i) {
    const VertexId v = batch.input_nodes()[i];
    for (std::int64_t j = 0; j < 8; ++j) {
      EXPECT_FLOAT_EQ(x.at(static_cast<std::int64_t>(i), j), ds.features.at(v, j));
    }
  }
  EXPECT_DOUBLE_EQ(loader.last_bytes(), static_cast<double>(x.size()) * 4.0);
  const double first = loader.total_bytes();
  loader.load(batch, x);
  EXPECT_DOUBLE_EQ(loader.total_bytes(), first + loader.last_bytes());
}

}  // namespace
}  // namespace hyscale
