// Tests for device/: specs (Table II), trainer cost models (Eqs. 10-12),
// FPGA resource model (Table IV), link models (Eqs. 7/8/13), sampler model.
#include <gtest/gtest.h>

#include "device/cost_model.hpp"
#include "device/fpga_model.hpp"
#include "device/link.hpp"
#include "device/sampler_model.hpp"
#include "device/spec.hpp"
#include "sampling/neighbor_sampler.hpp"

namespace hyscale {
namespace {

// papers100M-like expected batch statistics for 1024 seeds, fanout (25,10).
BatchStats paper_stats() {
  return NeighborSampler::expected_stats(1024, {25, 10}, 14.5, 111059956ULL);
}

ModelConfig gcn_papers() {
  ModelConfig config;
  config.kind = GnnKind::kGcn;
  config.dims = {128, 256, 172};
  return config;
}

TEST(Spec, TableTwoValues) {
  const DeviceSpec cpu = epyc7763_spec();
  EXPECT_DOUBLE_EQ(cpu.peak_tflops, 3.6);
  EXPECT_DOUBLE_EQ(cpu.mem_bw_gbps, 205.0);
  EXPECT_DOUBLE_EQ(cpu.freq_ghz, 2.45);

  const DeviceSpec gpu = a5000_spec();
  EXPECT_DOUBLE_EQ(gpu.peak_tflops, 27.8);
  EXPECT_DOUBLE_EQ(gpu.mem_bw_gbps, 768.0);

  const DeviceSpec fpga = u250_spec();
  EXPECT_DOUBLE_EQ(fpga.peak_tflops, 0.6);
  EXPECT_DOUBLE_EQ(fpga.mem_bw_gbps, 77.0);
  EXPECT_DOUBLE_EQ(fpga.freq_ghz, 0.3);
}

TEST(Spec, PlatformAggregateTflops) {
  // 2 x 3.6 + 4 x 0.6 = 9.6 — the Table VII normalisation for This Work.
  EXPECT_NEAR(cpu_fpga_platform(4).total_tflops(), 9.6, 1e-9);
  // 2 x 3.6 + 4 x 27.8 = 118.4.
  EXPECT_NEAR(cpu_gpu_platform(4).total_tflops(), 118.4, 1e-9);
}

TEST(Spec, FactoryShapes) {
  const PlatformSpec p = cpu_gpu_platform(2);
  EXPECT_EQ(p.num_accelerators(), 2);
  EXPECT_EQ(p.accelerators.front().kind, DeviceKind::kGpu);
  EXPECT_EQ(p.cpu_threads, 128);
  EXPECT_STREQ(device_kind_name(DeviceKind::kFpga), "FPGA");
}

TEST(CostModel, CpuTimeScalesInverselyWithThreads) {
  const PlatformSpec platform = cpu_fpga_platform(4);
  CpuTrainerModel model(platform, 32);
  const Seconds t32 = model.propagation_time(paper_stats(), gcn_papers());
  model.set_threads(64);
  const Seconds t64 = model.propagation_time(paper_stats(), gcn_papers());
  EXPECT_NEAR(t32 / t64, 2.0, 1e-6);
}

TEST(CostModel, CpuZeroThreadsStalls) {
  const PlatformSpec platform = cpu_fpga_platform(4);
  CpuTrainerModel model(platform, 0);
  EXPECT_GT(model.aggregate_time(1000, 500, 128), 1e6);
}

TEST(CostModel, FpgaIsPipelinedOthersAreNot) {
  const PlatformSpec platform = cpu_fpga_platform(4);
  FpgaTrainerModel fpga(u250_spec(), 8, 2048);
  GpuTrainerModel gpu(a5000_spec());
  CpuTrainerModel cpu(platform, 64);
  EXPECT_TRUE(fpga.pipelined());
  EXPECT_FALSE(gpu.pipelined());
  EXPECT_FALSE(cpu.pipelined());
}

TEST(CostModel, FpgaChargesUniqueSourcesNotEdges) {
  FpgaTrainerModel fpga(u250_spec(), 8, 2048);
  // Same edges, fewer unique sources -> strictly cheaper aggregation
  // (when memory-bound).
  const Seconds many = fpga.aggregate_time(100000, 100000, 256);
  const Seconds few = fpga.aggregate_time(100000, 10000, 256);
  EXPECT_LT(few, many);
}

TEST(CostModel, GpuIgnoresUniqueSources) {
  GpuTrainerModel gpu(a5000_spec());
  EXPECT_DOUBLE_EQ(gpu.aggregate_time(100000, 100000, 256),
                   gpu.aggregate_time(100000, 10, 256));
}

TEST(CostModel, FpgaBeatsGpuOnPaperWorkload) {
  // The §VI-E1 headline: the FPGA trainer's propagation time is several
  // times shorter than the GPU trainer's on the same batch, because the
  // GPU pays degraded gather bandwidth + per-layer spills.
  FpgaTrainerModel fpga(u250_spec(), 8, 2048);
  GpuTrainerModel gpu(a5000_spec());
  const Seconds t_fpga = fpga.propagation_time(paper_stats(), gcn_papers());
  const Seconds t_gpu = gpu.propagation_time(paper_stats(), gcn_papers());
  EXPECT_GT(t_gpu / t_fpga, 3.0);
  EXPECT_LT(t_gpu / t_fpga, 25.0);
}

TEST(CostModel, PropagationPositiveAndFiniteForAll) {
  const PlatformSpec gpu_platform = cpu_gpu_platform(4);
  const PlatformSpec fpga_platform = cpu_fpga_platform(4);
  for (const DeviceSpec& spec :
       {gpu_platform.accelerators.front(), fpga_platform.accelerators.front()}) {
    const auto model = make_trainer_model(fpga_platform, spec);
    const Seconds t = model->propagation_time(paper_stats(), gcn_papers());
    EXPECT_GT(t, 0.0);
    EXPECT_LT(t, 1.0);
  }
}

TEST(CostModel, SageCostsMoreThanGcn) {
  // SAGE's concat doubles the update GEMM width.
  FpgaTrainerModel fpga(u250_spec(), 8, 2048);
  ModelConfig sage = gcn_papers();
  sage.kind = GnnKind::kSage;
  EXPECT_GT(fpga.update_time(1024, 2 * 128, 256), fpga.update_time(1024, 128, 256));
}

TEST(CostModel, RejectsWrongDeviceKind) {
  EXPECT_THROW(GpuTrainerModel{u250_spec()}, std::invalid_argument);
  EXPECT_THROW(FpgaTrainerModel(a5000_spec(), 8, 2048), std::invalid_argument);
  EXPECT_THROW(FpgaTrainerModel(u250_spec(), 0, 2048), std::invalid_argument);
}

TEST(CostModel, StatsLayerMismatchThrows) {
  FpgaTrainerModel fpga(u250_spec(), 8, 2048);
  BatchStats short_stats;
  short_stats.vertices_per_layer = {100, 10};
  short_stats.edges_per_layer = {500};
  EXPECT_THROW(fpga.propagation_time(short_stats, gcn_papers()), std::invalid_argument);
}

TEST(FpgaModel, TableFourDesignPoint) {
  // The paper's (n=8, m=2048) point: LUT 72%, DSP 90%, URAM 48%, BRAM 40%.
  const FpgaUtilization u = estimate_utilization({8, 2048});
  EXPECT_NEAR(u.lut_fraction, 0.72, 0.03);
  EXPECT_NEAR(u.dsp_fraction, 0.90, 0.02);
  EXPECT_NEAR(u.uram_fraction, 0.48, 0.03);
  EXPECT_NEAR(u.bram_fraction, 0.40, 0.03);
  EXPECT_TRUE(u.fits());
  EXPECT_DOUBLE_EQ(u.max_fraction(), u.dsp_fraction);
}

TEST(FpgaModel, UtilizationMonotoneInParallelism) {
  const FpgaUtilization small = estimate_utilization({4, 512});
  const FpgaUtilization large = estimate_utilization({16, 4096});
  EXPECT_LT(small.dsp_fraction, large.dsp_fraction);
  EXPECT_LT(small.lut_fraction, large.lut_fraction);
  EXPECT_FALSE(large.fits());  // 4096 MACs blow the DSP budget
}

TEST(FpgaModel, MaxMacUnitsIsTableFourScale) {
  const int m = max_mac_units(8);
  EXPECT_EQ(m, 2048);  // the paper's design point is the largest pow-2 fit
}

TEST(FpgaModel, RejectsNonPositiveDesign) {
  EXPECT_THROW(estimate_utilization({0, 16}), std::invalid_argument);
}

TEST(Link, PcieTransferLinearInBytes) {
  PcieLink link(25.0, 0.0);
  EXPECT_NEAR(link.transfer_time(25e9), 1.0, 1e-9);
  EXPECT_NEAR(link.transfer_time(0.0), 0.0, 1e-12);
  EXPECT_THROW(link.transfer_time(-1.0), std::invalid_argument);
}

TEST(Link, AllreduceCrossesTwice) {
  PcieLink link(10.0, 0.0);
  EXPECT_NEAR(link.allreduce_time(10e9), 2.0, 1e-9);
}

TEST(Link, HostChannelSaturates) {
  HostMemoryChannel host(205.0, 4.0, 0.8);
  // 10 threads: 40 GB/s; 100 threads: capped at 164 GB/s.
  EXPECT_NEAR(host.effective_bandwidth(10), 40e9, 1e-3);
  EXPECT_NEAR(host.effective_bandwidth(100), 164e9, 1e-3);
  EXPECT_DOUBLE_EQ(host.effective_bandwidth(0), 0.0);
  EXPECT_GT(host.load_time(1e9, 0), 1e6);  // stalls with no threads
}

TEST(Link, RejectsBadParameters) {
  EXPECT_THROW(PcieLink(0.0), std::invalid_argument);
  EXPECT_THROW(HostMemoryChannel(-1.0), std::invalid_argument);
}

TEST(SamplerModel, CpuTimeScalesWithThreadsAndEdges) {
  SamplerModel model;
  const Seconds one = model.cpu_sample_time(1000000, 1);
  const Seconds four = model.cpu_sample_time(1000000, 4);
  EXPECT_NEAR(one / four, 4.0, 1e-9);
  EXPECT_GT(model.cpu_sample_time(2000000, 1), one);
  EXPECT_GT(model.cpu_sample_time(100, 0), 1e6);
}

TEST(SamplerModel, AcceleratorRates) {
  EXPECT_GT(SamplerModel::accelerator_rate(a5000_spec()), 0.0);
  EXPECT_GT(SamplerModel::accelerator_rate(u250_spec()), 0.0);
  EXPECT_DOUBLE_EQ(SamplerModel::accelerator_rate(epyc7763_spec()), 0.0);
  // GPU samples faster than FPGA.
  EXPECT_GT(SamplerModel::accelerator_rate(a5000_spec()),
            SamplerModel::accelerator_rate(u250_spec()));
}

TEST(SamplerModel, Calibration) {
  SamplerModel model;
  model.calibrate_cpu_rate(1e6);
  EXPECT_DOUBLE_EQ(model.cpu_rate(), 1e6);
  EXPECT_NEAR(model.cpu_sample_time(1e6, 1), 1.0, 1e-9);
  EXPECT_THROW(SamplerModel(-5.0), std::invalid_argument);
}

}  // namespace
}  // namespace hyscale
