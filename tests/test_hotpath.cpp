// Hot-path gather overhaul tests (PR 8):
//   * SIMD-vs-scalar bit-identity for the dispatched kernels across odd
//     row widths and unaligned spans (the differential harness's fp32
//     guarantee depends on it);
//   * GEMM bit-identity under the force_scalar seam;
//   * int8 device rows: hit/miss value consistency, wire-byte ratio
//     (>= 3x vs fp32 at feature widths >= 12), and end-to-end logit
//     exactness against an explicitly round-tripped reference;
//   * adaptive cache re-ranking: observed-traffic admission recovers
//     the hit rate after churn, and slots freed by evict() are refilled;
//   * TSan regression: cached()/copy_if_cached() racing
//     evict()/invalidate()/rerank().
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "core/hyscale.hpp"
#include "tensor/gemm.hpp"
#include "tensor/init.hpp"
#include "tensor/simd.hpp"

namespace hyscale {
namespace {

/// Restores the dispatching backend even when an assertion fails.
struct ScalarGuard {
  ~ScalarGuard() { simd::force_scalar(false); }
};

/// 96 vertices, 32-dim features (wide enough that int8's cols + 4 wire
/// rows beat fp32's 4 * cols by more than 3x).
const Dataset& hotpath_dataset() {
  static const Dataset ds = make_community_dataset(3, 32, 32, 5);
  return ds;
}

ModelConfig hotpath_model_config() {
  ModelConfig config;
  config.kind = GnnKind::kSage;
  config.dims = {32, 16, 3};
  config.seed = 13;
  return config;
}

std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-8.0f, 8.0f);
  std::vector<float> out(n);
  for (auto& v : out) v = dist(rng);
  // Salt in the awkward cases: zeros, tiny magnitudes, exact halves.
  if (n > 0) out[0] = 0.0f;
  if (n > 2) out[2] = 1e-38f;
  if (n > 4) out[4] = -2.5f;
  return out;
}

const std::int64_t kWidths[] = {1, 3, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100};
const std::size_t kOffsets[] = {0, 1, 3};

// -------------------------------------------------------------- simd kernels

TEST(Simd, BackendNameIsKnownAndForceScalarSticks) {
  ScalarGuard guard;
  const std::string name = simd::backend_name();
  EXPECT_TRUE(name == "avx2" || name == "neon" || name == "scalar") << name;
  simd::force_scalar(true);
  EXPECT_TRUE(simd::forced_scalar());
  EXPECT_STREQ(simd::backend_name(), "scalar");
  simd::force_scalar(false);
  EXPECT_FALSE(simd::forced_scalar());
}

TEST(Simd, CopyBitIdenticalAcrossWidthsAndAlignments) {
  ScalarGuard guard;
  for (const std::int64_t n : kWidths) {
    for (const std::size_t off : kOffsets) {
      const auto src = random_floats(off + static_cast<std::size_t>(n), 11u + off);
      std::vector<float> vec(static_cast<std::size_t>(n), -1.0f);
      std::vector<float> ref(static_cast<std::size_t>(n), -2.0f);
      simd::force_scalar(false);
      simd::copy(src.data() + off, vec.data(), n);
      simd::copy_scalar(src.data() + off, ref.data(), n);
      EXPECT_EQ(std::memcmp(vec.data(), ref.data(), ref.size() * sizeof(float)), 0)
          << "n=" << n << " off=" << off;
    }
  }
}

TEST(Simd, AxpyBitIdenticalAcrossWidthsAndAlignments) {
  ScalarGuard guard;
  for (const std::int64_t n : kWidths) {
    for (const std::size_t off : kOffsets) {
      const auto x = random_floats(off + static_cast<std::size_t>(n), 23u + off);
      const auto y0 = random_floats(static_cast<std::size_t>(n), 29u * off + 7u);
      std::vector<float> vec = y0;
      std::vector<float> ref = y0;
      simd::force_scalar(false);
      simd::axpy(0.773f, x.data() + off, vec.data(), n);
      simd::axpy_scalar(0.773f, x.data() + off, ref.data(), n);
      EXPECT_EQ(std::memcmp(vec.data(), ref.data(), ref.size() * sizeof(float)), 0)
          << "n=" << n << " off=" << off;
    }
  }
}

TEST(Simd, DequantBitIdenticalAcrossWidthsAndAlignments) {
  ScalarGuard guard;
  for (const std::int64_t n : kWidths) {
    for (const std::size_t off : kOffsets) {
      std::vector<std::int8_t> q(off + static_cast<std::size_t>(n));
      std::mt19937_64 rng(41u + off);
      for (auto& v : q) v = static_cast<std::int8_t>(static_cast<int>(rng() % 255) - 127);
      std::vector<float> vec(static_cast<std::size_t>(n), 1.0f);
      std::vector<float> ref(static_cast<std::size_t>(n), 2.0f);
      simd::force_scalar(false);
      simd::dequant(q.data() + off, 0.0317f, vec.data(), n);
      simd::dequant_scalar(q.data() + off, 0.0317f, ref.data(), n);
      EXPECT_EQ(std::memcmp(vec.data(), ref.data(), ref.size() * sizeof(float)), 0)
          << "n=" << n << " off=" << off;
    }
  }
}

TEST(Simd, MaxAbsBitIdenticalAcrossWidthsAndAlignments) {
  ScalarGuard guard;
  for (const std::int64_t n : kWidths) {
    for (const std::size_t off : kOffsets) {
      const auto src = random_floats(off + static_cast<std::size_t>(n), 53u + off);
      simd::force_scalar(false);
      const float vec = simd::max_abs(src.data() + off, n);
      const float ref = simd::max_abs_scalar(src.data() + off, n);
      EXPECT_EQ(std::memcmp(&vec, &ref, sizeof(float)), 0) << "n=" << n << " off=" << off;
    }
  }
}

TEST(Simd, ForcedScalarDispatchMatchesVectorDispatch) {
  // The per-call seam really flips the backend: both routes produce the
  // same bits, so the differential tests can trust either.
  ScalarGuard guard;
  const std::int64_t n = 100;
  const auto x = random_floats(static_cast<std::size_t>(n), 61);
  const auto y0 = random_floats(static_cast<std::size_t>(n), 67);
  std::vector<float> vec = y0;
  std::vector<float> forced = y0;
  simd::force_scalar(false);
  simd::axpy(-1.25f, x.data(), vec.data(), n);
  simd::force_scalar(true);
  simd::axpy(-1.25f, x.data(), forced.data(), n);
  EXPECT_EQ(std::memcmp(vec.data(), forced.data(), forced.size() * sizeof(float)), 0);
}

TEST(Simd, GemmBitIdenticalUnderForcedScalar) {
  ScalarGuard guard;
  Tensor a(7, 13);
  Tensor b(13, 9);
  Tensor c0(7, 9);
  uniform_init(a, -2.0f, 2.0f, 1);
  uniform_init(b, -2.0f, 2.0f, 2);
  uniform_init(c0, -2.0f, 2.0f, 3);

  Tensor c_vec = c0;
  simd::force_scalar(false);
  gemm(a, false, b, false, c_vec, 1.3f, 0.7f);

  Tensor c_ref = c0;
  simd::force_scalar(true);
  gemm(a, false, b, false, c_ref, 1.3f, 0.7f);

  ASSERT_EQ(c_vec.flat().size(), c_ref.flat().size());
  EXPECT_EQ(std::memcmp(c_vec.flat().data(), c_ref.flat().data(),
                        c_ref.flat().size() * sizeof(float)),
            0);
  EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(c_vec, c_ref), 0.0);
}

// ------------------------------------------------------------ int8 hot path

TEST(HotPathInt8, WireBytesRatioAtLeastThree) {
  const Dataset& ds = hotpath_dataset();
  ASSERT_GE(ds.features.cols(), 12);  // cols + 4 vs 4 * cols needs cols >= 12
  StaticFeatureCache fp32(ds.graph, ds.features, 8, TransferPrecision::kFp32);
  StaticFeatureCache int8(ds.graph, ds.features, 8, TransferPrecision::kInt8);
  EXPECT_GE(fp32.device_row_wire_bytes() / int8.device_row_wire_bytes(), 3.0);

  MutableFeatureStore store(ds.features);
  const double host_fp32 = store.row_wire_bytes();
  store.set_transfer_precision(TransferPrecision::kInt8);
  EXPECT_GE(host_fp32 / store.row_wire_bytes(), 3.0);
}

TEST(HotPathInt8, Fp16DeviceRowsAreRejected) {
  // The messages are PINNED: operators grep logs for them, and a silent
  // rewording (or a swapped throw site) would break the runbooks that
  // tell users which knob to change.
  const Dataset& ds = hotpath_dataset();
  try {
    StaticFeatureCache cache(ds.graph, ds.features, 8, TransferPrecision::kFp16);
    FAIL() << "fp16 device rows must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "StaticFeatureCache: fp16 device rows not implemented (use fp32 or int8)");
  }
  MutableFeatureStore store(ds.features);
  try {
    store.set_transfer_precision(TransferPrecision::kFp16);
    FAIL() << "fp16 wire precision must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "MutableFeatureStore: fp16 wire precision not implemented (use fp32 or int8)");
  }
  // A failed set leaves the store on its previous (fp32) precision.
  EXPECT_DOUBLE_EQ(store.row_wire_bytes(),
                   static_cast<double>(ds.features.cols()) * sizeof(float));
}

TEST(HotPathInt8, CacheHitMatchesHostMissExactly) {
  // One quantization rule on both sides: a row served from the pinned
  // int8 device copy must be bit-identical to the same row fetched from
  // the host through the int8 wire simulation — hit/miss composition
  // can never change logits.
  const Dataset& ds = hotpath_dataset();
  StreamingGraph stream(ds);
  stream.features().set_transfer_precision(TransferPrecision::kInt8);
  StaticFeatureCache cache(ds.graph, stream.features().base(), 16, TransferPrecision::kInt8);
  stream.attach_cache(&cache);

  const std::int64_t cols = ds.features.cols();
  for (VertexId v = 0; v < ds.graph.num_vertices(); ++v) {
    if (!cache.cached(v)) continue;
    std::vector<float> from_cache(static_cast<std::size_t>(cols));
    ASSERT_TRUE(cache.copy_if_cached(v, from_cache));
    std::vector<float> from_wire(static_cast<std::size_t>(cols));
    wire_roundtrip_row_int8(ds.features.row(v).data(), from_wire.data(), cols);
    EXPECT_EQ(std::memcmp(from_cache.data(), from_wire.data(), from_wire.size() * sizeof(float)),
              0)
        << "v=" << v;
  }
}

TEST(HotPathInt8, ServedLogitsMatchRoundTrippedReferenceWithinTolerance) {
  const Dataset& ds = hotpath_dataset();
  GnnModel model(hotpath_model_config());
  const ModelSnapshot snapshot(model);

  auto serve_logits = [&](TransferPrecision precision) {
    StreamingGraph stream(ds);
    ServingConfig config;  // empty fanouts = full neighborhood (exact)
    config.num_workers = 1;
    config.cache_capacity_rows = 48;  // half the graph: hits AND misses
    config.transfer_precision = precision;
    InferenceServer server(stream, snapshot, config);
    return server.infer({0, 17, 40, 65, 95}).logits;
  };

  const Tensor fp32 = serve_logits(TransferPrecision::kFp32);
  const Tensor int8 = serve_logits(TransferPrecision::kInt8);

  // Exactness: the int8 serve equals a forward over the explicitly
  // round-tripped feature matrix — the gather introduced exactly the
  // wire error, nothing else (hits and misses included).
  Tensor round_tripped = ds.features;
  quantize_roundtrip_int8(round_tripped);
  const std::vector<VertexId> seeds = {0, 17, 40, 65, 95};
  const MiniBatch mb = sample_full(ds.graph, seeds, model.config().num_layers());
  FeatureLoader loader(round_tripped);
  Tensor x;
  loader.load(mb, x);
  const Tensor reference = model.forward(mb, x);
  EXPECT_LE(Tensor::max_abs_diff(int8, reference), 1e-6);

  // Tolerance: int8 logits stay within the documented bound of fp32
  // (the bound BENCH_hotpath.json gates on), and fp32 serving is
  // untouched by the quantization machinery.
  const double drift = Tensor::max_abs_diff(int8, fp32);
  EXPECT_GT(drift, 0.0);
  EXPECT_LE(drift, 0.05);

  const Tensor direct = model.forward(mb, [&] {
    FeatureLoader exact(ds.features);
    Tensor xf;
    exact.load(mb, xf);
    return xf;
  }());
  EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(fp32, direct), 0.0);
}

// ------------------------------------------------------------- cache rerank

std::vector<VertexId> uncached_vertices(const StaticFeatureCache& cache, VertexId limit,
                                        std::size_t count) {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < limit && out.size() < count; ++v) {
    if (!cache.cached(v)) out.push_back(v);
  }
  return out;
}

/// Accepts the first edge the graph will take from a probe sequence, so
/// compact() has something to fold.
void ingest_one_edge(StreamingGraph& stream) {
  const VertexId n = stream.dataset().graph.num_vertices();
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 2; v < n; v += 7) {
      if (stream.add_edge(u, v)) return;
    }
  }
  FAIL() << "no insertable edge found";
}

TEST(CacheRerank, FoldRecoversHitRateOnShiftedWorkload) {
  const Dataset& ds = hotpath_dataset();
  StreamingGraph stream(ds);
  StaticFeatureCache cache(ds.graph, stream.features().base(), 16);
  stream.attach_cache(&cache);

  // A workload aimed squarely at vertices the degree-ordered admission
  // did NOT pin: every gather misses.
  const std::vector<VertexId> targets =
      uncached_vertices(cache, ds.graph.num_vertices(), 16);
  ASSERT_EQ(targets.size(), 16u);
  Tensor out;
  for (int i = 0; i < 20; ++i) {
    stream.gather(std::span<const VertexId>(targets.data(), targets.size()), out);
  }
  const auto before = cache.totals();
  EXPECT_EQ(before.hits, 0);
  EXPECT_GT(before.misses, 0);

  // A fold rewrites the base — and triggers the observed-traffic rerank.
  ingest_one_edge(stream);
  ASSERT_TRUE(stream.compact());
  EXPECT_EQ(cache.reranks(), 1);
  EXPECT_GT(cache.readmitted_rows(), 0);
  for (const VertexId v : targets) {
    EXPECT_TRUE(cache.cached(v)) << "v=" << v;
  }

  // The same workload now hits: post-rerank rate strictly above the
  // pre-rerank rate (the delta the bench gate asserts is >= 0).
  for (int i = 0; i < 20; ++i) {
    stream.gather(std::span<const VertexId>(targets.data(), targets.size()), out);
  }
  const auto after = cache.totals();
  const double before_rate = before.hit_rate();
  const double window_hits = static_cast<double>(after.hits - before.hits);
  const double window_total = static_cast<double>((after.hits + after.misses) -
                                                  (before.hits + before.misses));
  const double after_rate = window_hits / window_total;
  EXPECT_GT(after_rate, before_rate);
  EXPECT_DOUBLE_EQ(after_rate, 1.0);
}

TEST(CacheRerank, SlotsFreedByEvictionAreReadmitted) {
  const Dataset& ds = hotpath_dataset();
  StreamingGraph stream(ds);
  StaticFeatureCache cache(ds.graph, stream.features().base(), 8);
  stream.attach_cache(&cache);

  // Retire a pinned vertex: its slot is freed and — before rerank() —
  // would have leaked forever.
  VertexId pinned = -1;
  for (VertexId v = 0; v < ds.graph.num_vertices(); ++v) {
    if (cache.cached(v)) {
      pinned = v;
      break;
    }
  }
  ASSERT_GE(pinned, 0);
  ASSERT_TRUE(stream.remove_vertex(pinned));
  EXPECT_FALSE(cache.cached(pinned));
  EXPECT_GE(cache.evictions(), 1);

  // Make one cold vertex hot, then fold (the retraction ops are enough
  // for compact() to have work).
  const std::vector<VertexId> hot = uncached_vertices(cache, ds.graph.num_vertices(), 1);
  ASSERT_EQ(hot.size(), 1u);
  Tensor out;
  for (int i = 0; i < 10; ++i) {
    stream.gather(std::span<const VertexId>(hot.data(), hot.size()), out);
  }
  ASSERT_TRUE(stream.compact());

  EXPECT_GE(cache.readmitted_rows(), 1);
  EXPECT_TRUE(cache.cached(hot[0]));
  // The dead vertex must never re-enter, however hot its counter was.
  EXPECT_FALSE(cache.cached(pinned));
}

TEST(CacheRerank, DisabledConfigKeepsConstructionAdmission) {
  const Dataset& ds = hotpath_dataset();
  StreamingConfig config;
  config.cache_rerank = false;
  StreamingGraph stream(ds, config);
  StaticFeatureCache cache(ds.graph, stream.features().base(), 8);
  stream.attach_cache(&cache);

  const std::vector<VertexId> targets = uncached_vertices(cache, ds.graph.num_vertices(), 8);
  Tensor out;
  for (int i = 0; i < 10; ++i) {
    stream.gather(std::span<const VertexId>(targets.data(), targets.size()), out);
  }
  ingest_one_edge(stream);
  ASSERT_TRUE(stream.compact());
  EXPECT_EQ(cache.reranks(), 0);
  for (const VertexId v : targets) EXPECT_FALSE(cache.cached(v));
}

// ------------------------------------------------------------ concurrency

TEST(CacheRace, MembershipReadsRaceMutatorsCleanly) {
  // TSan regression: cached() used to read an unsynchronised bitmap
  // while evict()/invalidate() rewrote it.  Readers hammer membership
  // and row copies while a mutator cycles evict -> invalidate -> rerank.
  const Dataset& ds = hotpath_dataset();
  StaticFeatureCache cache(ds.graph, ds.features, 16);
  const VertexId n = ds.graph.num_vertices();
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> observed_hits{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      std::vector<float> row(static_cast<std::size_t>(ds.features.cols()));
      std::mt19937_64 rng(100u + static_cast<unsigned>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        const VertexId v = static_cast<VertexId>(rng() % static_cast<std::uint64_t>(n));
        if (cache.cached(v)) observed_hits.fetch_add(1, std::memory_order_relaxed);
        cache.copy_if_cached(v, row);
      }
    });
  }

  std::vector<VertexId> hot;
  for (VertexId v = n - 1; v >= 0 && hot.size() < 16; --v) hot.push_back(v);
  for (int round = 0; round < 200; ++round) {
    const VertexId ids[2] = {static_cast<VertexId>(round % n),
                             static_cast<VertexId>((round * 7) % n)};
    cache.evict(std::span<const VertexId>(ids, 2));
    cache.invalidate(std::span<const VertexId>(ids, 2));
    cache.rerank(hot);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& reader : readers) reader.join();

  EXPECT_GT(cache.reranks(), 0);
  EXPECT_GE(observed_hits.load(), 0);
}

}  // namespace
}  // namespace hyscale
