// End-to-end tests of the HybridTrainer runtime: epoch reports, feature
// flags (the Fig. 11 ablation ordering), DRM trajectories, convergence,
// and the synchronous-SGD equivalence property (§II-B).
#include <gtest/gtest.h>

#include <memory>

#include "baselines/reference_trainer.hpp"
#include "graph/datasets.hpp"
#include "runtime/hybrid_trainer.hpp"

namespace hyscale {
namespace {

const Dataset& small_products() {
  static const Dataset ds = [] {
    MaterializeOptions options;
    options.target_vertices = 1 << 11;
    return materialize_dataset("ogbn-products", options);
  }();
  return ds;
}

HybridTrainerConfig fast_config() {
  HybridTrainerConfig config;
  config.fanouts = {5, 5};
  config.real_batch_total = 64;
  config.real_iterations_cap = 2;
  config.trajectory_cap = 64;
  return config;
}

TEST(HybridTrainer, EpochReportIsCoherent) {
  HybridTrainer trainer(small_products(), cpu_fpga_platform(4), fast_config());
  const EpochReport report = trainer.train_epoch();
  EXPECT_GT(report.iterations, 0);
  EXPECT_GT(report.epoch_time, 0.0);
  EXPECT_LT(report.epoch_time, 3600.0);
  EXPECT_GT(report.mteps, 0.0);
  EXPECT_GT(report.loss, 0.0);
  EXPECT_FALSE(report.trajectory.empty());
  EXPECT_EQ(report.final_workload.total_batch(), trainer.workload().total_batch());
}

TEST(HybridTrainer, PredictedEpochWithinModelErrorBand) {
  // Fig. 8: predicted vs actual within ~5-15%; our "actual" adds launch
  // and flush overheads to the same analytic skeleton, so the band holds
  // by construction — this guards against the two paths drifting apart.
  HybridTrainerConfig config = fast_config();
  config.drm = false;  // keep the workload static for the comparison
  config.real_compute = false;
  HybridTrainer trainer(small_products(), cpu_fpga_platform(4), config);
  const Seconds predicted = trainer.predicted_epoch_time();
  const EpochReport report = trainer.train_epoch();
  const double error = std::abs(report.epoch_time - predicted) / report.epoch_time;
  EXPECT_LT(error, 0.30);
  EXPECT_GT(report.epoch_time, predicted);  // overheads only ever add time
}

TEST(HybridTrainer, AblationOrderingMatchesFigEleven) {
  // Baseline (static offload) <= +hybrid <= +DRM <= +TFP in throughput.
  const Dataset& ds = small_products();
  const PlatformSpec platform = cpu_fpga_platform(4);

  auto epoch_with = [&](bool hybrid, bool drm, PipelineMode mode) {
    HybridTrainerConfig config = fast_config();
    config.hybrid = hybrid;
    config.drm = drm;
    config.pipeline = mode;
    config.real_compute = false;
    HybridTrainer trainer(ds, platform, config);
    // Two epochs so DRM settles before measuring.
    trainer.train_epoch();
    return trainer.train_epoch().epoch_time;
  };

  const Seconds baseline = epoch_with(false, false, PipelineMode::kSinglePrefetch);
  const Seconds hybrid = epoch_with(true, false, PipelineMode::kSinglePrefetch);
  const Seconds hybrid_drm = epoch_with(true, true, PipelineMode::kSinglePrefetch);
  const Seconds hybrid_drm_tfp = epoch_with(true, true, PipelineMode::kTwoStagePrefetch);

  // Each optimization may be neutral on some dataset/model combinations
  // (the paper sees that too) but must never hurt by more than noise.
  EXPECT_LE(hybrid, baseline * 1.05);
  EXPECT_LE(hybrid_drm, hybrid * 1.05);
  EXPECT_LE(hybrid_drm_tfp, hybrid_drm * 1.05);
  // And the full stack is a real improvement.
  EXPECT_LT(hybrid_drm_tfp, baseline * 0.98);
}

TEST(HybridTrainer, DrmRecordsActionsInTrajectory) {
  HybridTrainerConfig config = fast_config();
  config.drm = true;
  config.real_compute = false;
  // Start from the uninformed mapping so DRM has something to correct.
  config.use_task_mapper = false;
  HybridTrainer trainer(small_products(), cpu_fpga_platform(4), config);
  const EpochReport report = trainer.train_epoch();
  bool any_action = false;
  for (const auto& record : report.trajectory) {
    if (record.drm_action.kind != DrmAction::Kind::kNone) any_action = true;
    EXPECT_EQ(record.workload.total_batch(), trainer.workload().total_batch());
  }
  EXPECT_TRUE(any_action);
}

TEST(HybridTrainer, LossDecreasesOnLearnableData) {
  const Dataset ds = make_community_dataset(4, 128, 16, 3);
  HybridTrainerConfig config;
  config.fanouts = {5, 5};
  config.real_batch_total = 128;
  config.real_iterations_cap = 50;
  config.learning_rate = 0.3;
  config.per_trainer_batch = 256;  // few simulated iterations per epoch
  HybridTrainer trainer(ds, cpu_fpga_platform(2), config);
  const EpochReport first = trainer.train_epoch();
  for (int e = 0; e < 6; ++e) trainer.train_epoch();
  const EpochReport last = trainer.train_epoch();
  EXPECT_LT(last.loss, first.loss * 0.8);
  EXPECT_GT(trainer.evaluate_accuracy(), 0.6);
}

TEST(HybridTrainer, GpuAndFpgaPlatformsBothRun) {
  for (const PlatformSpec& platform : {cpu_gpu_platform(2), cpu_fpga_platform(2)}) {
    HybridTrainerConfig config = fast_config();
    config.real_compute = false;
    HybridTrainer trainer(small_products(), platform, config);
    const EpochReport report = trainer.train_epoch();
    EXPECT_GT(report.epoch_time, 0.0);
  }
}

TEST(HybridTrainer, FpgaPlatformFasterThanGpuPlatform) {
  // The §VI-E1 headline, end to end: same dataset and model, the
  // CPU-FPGA platform finishes epochs faster than CPU-GPU.
  auto run = [&](const PlatformSpec& platform) {
    HybridTrainerConfig config = fast_config();
    config.fanouts = {25, 10};
    config.real_compute = false;
    HybridTrainer trainer(small_products(), platform, config);
    trainer.train_epoch();
    return trainer.train_epoch().epoch_time;
  };
  EXPECT_LT(run(cpu_fpga_platform(4)), run(cpu_gpu_platform(4)));
}

TEST(HybridTrainer, ThreeLayerFanoutsSupported) {
  HybridTrainerConfig config = fast_config();
  config.fanouts = {4, 3, 2};
  config.real_iterations_cap = 1;
  HybridTrainer trainer(small_products(), cpu_fpga_platform(2), config);
  const EpochReport report = trainer.train_epoch();
  EXPECT_GT(report.epoch_time, 0.0);
  EXPECT_GT(report.loss, 0.0);
}

TEST(HybridTrainer, GcnSageAndGatAllTrain) {
  for (GnnKind kind : {GnnKind::kGcn, GnnKind::kSage, GnnKind::kGat}) {
    HybridTrainerConfig config = fast_config();
    config.model_kind = kind;
    HybridTrainer trainer(small_products(), cpu_fpga_platform(2), config);
    const EpochReport report = trainer.train_epoch();
    EXPECT_GT(report.loss, 0.0);
  }
}

TEST(Equivalence, HybridMatchesSingleDeviceLargeBatch) {
  // §II-B: synchronous SGD on k trainers with batch b each is
  // algorithmically equivalent to one trainer with batch k*b.  Drive a
  // 2-trainer hybrid system and a reference trainer with identical
  // initial weights and identical seed batches; weights must track.
  const Dataset ds = make_community_dataset(3, 64, 8, 9);

  ReferenceTrainerConfig ref_config;
  ref_config.fanouts = {4, 4};
  ref_config.learning_rate = 0.1;
  ref_config.seed = 1234;  // same model init seed as the hybrid replicas
  ReferenceTrainer reference(ds, ref_config);

  HybridTrainerConfig config;
  config.fanouts = {4, 4};
  config.learning_rate = 0.1;
  config.seed = 1234;
  config.real_batch_total = 64;
  config.real_iterations_cap = 4;
  config.per_trainer_batch = 1024;
  HybridTrainer hybrid(ds, cpu_fpga_platform(1), config);

  // Identical initialisation by construction (same ModelConfig seed).
  const auto hybrid_params = hybrid.model().parameters();
  const auto ref_params = reference.model().parameters();
  ASSERT_EQ(hybrid_params.size(), ref_params.size());
  for (std::size_t i = 0; i < ref_params.size(); ++i) {
    EXPECT_DOUBLE_EQ(
        Tensor::max_abs_diff(hybrid_params[i]->value, ref_params[i]->value), 0.0);
  }
  // The two runs sample different mini-batches (different streams), so we
  // check the *statistical* equivalence instead of bitwise: losses land
  // in the same regime after the same number of updates.
  hybrid.train_epoch();
  const double hybrid_loss = hybrid.train_epoch().loss;
  reference.train_epoch();
  const ReferenceEpochReport ref_report = reference.train_epoch();
  EXPECT_NEAR(hybrid_loss, ref_report.loss, 0.8);
}

TEST(Equivalence, WeightedAllReduceEqualsConcatenatedBatch) {
  // Exact check of the §II-B claim at the gradient level: two replicas
  // processing disjoint halves, weighted-averaged, give the same
  // gradient as one model processing the concatenated batch.
  const Dataset ds = make_community_dataset(3, 64, 8, 9);
  ReferenceTrainerConfig config;
  config.fanouts = {4, 4};
  config.seed = 77;

  // Build three trainers sharing init: two halves + one whole.
  ReferenceTrainer left(ds, config), right(ds, config), whole(ds, config);

  std::vector<VertexId> seeds_left(ds.train_ids.begin(), ds.train_ids.begin() + 16);
  std::vector<VertexId> seeds_right(ds.train_ids.begin() + 16, ds.train_ids.begin() + 32);
  std::vector<VertexId> seeds_all(ds.train_ids.begin(), ds.train_ids.begin() + 32);

  // One SGD step each (same lr); after the step the weighted average of
  // (left, right) parameter deltas equals the whole-batch delta, because
  // grad(whole) = (grad(left) + grad(right)) / 2 for equal halves...
  // provided the sampled neighborhoods match.  Use full-neighbor fanouts
  // (>= max degree) so sampling is deterministic.
  const EdgeId max_deg = ds.graph.max_degree();
  ReferenceTrainerConfig full = config;
  full.fanouts = {static_cast<int>(max_deg), static_cast<int>(max_deg)};
  ReferenceTrainer l2(ds, full), r2(ds, full), w2(ds, full);
  l2.train_on_seeds(seeds_left);
  r2.train_on_seeds(seeds_right);
  w2.train_on_seeds(seeds_all);

  const auto pl = l2.model().parameters();
  const auto pr = r2.model().parameters();
  const auto pw = w2.model().parameters();
  for (std::size_t i = 0; i < pw.size(); ++i) {
    Tensor averaged(pl[i]->value.rows(), pl[i]->value.cols());
    for (std::int64_t j = 0; j < averaged.size(); ++j) {
      averaged.data()[j] = 0.5f * (pl[i]->value.data()[j] + pr[i]->value.data()[j]);
    }
    EXPECT_LT(Tensor::max_abs_diff(averaged, pw[i]->value), 5e-4)
        << "param " << i;
  }
}

}  // namespace
}  // namespace hyscale
