// Randomized sharded-vs-flat differential harness — the PR-3 standard
// applied to the N-shard stack.
//
// A seeded driver applies the SAME interleaved op sequence (edge
// insertions/retractions, vertex arrivals/retirements, feature
// refreshes, per-shard compactions) to a ShardedStreamingGraph and to
// one flat StreamingGraph oracle (id recycling off, so the vertex
// spaces stay aligned).  Every accept/reject decision must agree, and
// at every adopted cut:
//
//   * per-vertex live adjacency on the cut is element-identical to the
//     flat published version (owner shards hold complete
//     neighborhoods),
//   * sampled MiniBatches are BIT-IDENTICAL between ShardedSampler on
//     the cut and OverlaySampler on the flat version (same fanouts,
//     same seed — the RNG disciplines are clones),
//   * full-neighborhood computation graphs match even though the two
//     samplers use different take-everything fanout bounds,
//   * feature blocks gathered through EVERY home shard are bitwise
//     equal to the flat gather — at fp32 and at int8 wire precision
//     (halo mirrors and owner fetches apply the same per-row rule),
//   * forward logits are exactly equal on shared weights,
//   * logical edge counters agree between ShardedStats and StreamStats.
//
// Cross-shard edges, dirty halo windows, and independently-compacted
// shard bases are exactly where a sharded overlay can drift from the
// flat truth; randomized interleavings hunt those corners.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/hyscale.hpp"

namespace hyscale {
namespace {

ModelConfig small_model_config() {
  ModelConfig config;
  config.kind = GnnKind::kSage;
  config.dims = {8, 16, 3};
  config.seed = 11;
  return config;
}

void expect_blocks_equal(const MiniBatch& actual, const MiniBatch& expected) {
  ASSERT_EQ(actual.blocks.size(), expected.blocks.size());
  for (std::size_t l = 0; l < expected.blocks.size(); ++l) {
    EXPECT_EQ(actual.blocks[l].num_dst, expected.blocks[l].num_dst) << "layer " << l;
    EXPECT_EQ(actual.blocks[l].src_nodes, expected.blocks[l].src_nodes) << "layer " << l;
    EXPECT_EQ(actual.blocks[l].indptr, expected.blocks[l].indptr) << "layer " << l;
    EXPECT_EQ(actual.blocks[l].indices, expected.blocks[l].indices) << "layer " << l;
    EXPECT_EQ(actual.blocks[l].src_degrees, expected.blocks[l].src_degrees) << "layer " << l;
  }
}

/// Full cut-vs-flat check at one adoption point.
void verify_cut_vs_flat(const ShardedStreamingGraph& sharded, const ShardedCut& cut,
                        const StreamingGraph& flat, const GraphVersion& version,
                        GnnModel& model, std::uint64_t check_seed, std::int64_t step) {
  SCOPED_TRACE("step " + std::to_string(step));
  ASSERT_EQ(cut.num_vertices(), version.num_vertices());

  // Adjacency leg: the cut's owner-routed reads match the flat version
  // for EVERY vertex — degrees, liveness, and element order.
  std::vector<VertexId> cut_nbrs, flat_nbrs;
  for (VertexId v = 0; v < version.num_vertices(); ++v) {
    ASSERT_EQ(cut.degree(v), version.degree(v)) << "vertex " << v;
    ASSERT_EQ(cut.alive(v), version.alive(v)) << "vertex " << v;
    cut_nbrs.clear();
    flat_nbrs.clear();
    cut.append_neighbors(v, cut_nbrs);
    version.append_neighbors(v, flat_nbrs);
    ASSERT_EQ(cut_nbrs, flat_nbrs) << "vertex " << v;
  }

  Xoshiro256 rng(check_seed);
  std::vector<VertexId> seeds;
  for (int i = 0; i < 4; ++i) {
    seeds.push_back(
        static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(version.num_vertices()))));
  }

  // Sampling leg: bit-identical minibatches at sampled fanouts...
  ShardedSampler sampled(
      std::shared_ptr<const ShardedCut>(&cut, [](const ShardedCut*) {}), {4, 3}, check_seed);
  OverlaySampler reference(
      std::shared_ptr<const GraphVersion>(&version, [](const GraphVersion*) {}), {4, 3},
      check_seed);
  expect_blocks_equal(sampled.sample(seeds), reference.sample(seeds));

  // ...and identical full-neighborhood graphs despite the two samplers
  // deriving different take-everything fanout bounds.
  const MiniBatch full_cut = sample_full_sharded(cut, seeds, /*num_layers=*/2);
  const MiniBatch full_flat = sample_full_overlay(version, seeds, /*num_layers=*/2);
  expect_blocks_equal(full_cut, full_flat);

  // Feature leg: every home-shard route must assemble the exact block
  // the flat stack serves (wire precision and halo state included).
  Tensor x_flat;
  const auto& nodes = full_flat.input_nodes();
  flat.gather(std::span<const VertexId>(nodes.data(), nodes.size()), x_flat);
  std::vector<char> scratch;
  for (int home = 0; home < sharded.num_shards(); ++home) {
    Tensor x_cut;
    sharded.gather(home, std::span<const VertexId>(nodes.data(), nodes.size()), x_cut,
                   scratch);
    ASSERT_DOUBLE_EQ(Tensor::max_abs_diff(x_flat, x_cut), 0.0) << "home " << home;
  }

  // Model leg: exactly equal logits end to end.
  const Tensor logits_flat = model.forward(full_flat, x_flat);
  Tensor x_cut;
  sharded.gather(0, std::span<const VertexId>(nodes.data(), nodes.size()), x_cut, scratch);
  const Tensor logits_cut = model.forward(full_cut, x_cut);
  EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(logits_cut, logits_flat), 0.0);
}

struct MixConfig {
  double insert = 0.32;
  double remove = 0.18;
  double vertex_add = 0.07;
  double vertex_remove = 0.04;
  double feature = 0.12;
  double gather_probe = 0.06;  ///< mid-window gather parity, dirty halos live
  double shard_compact = 0.05; ///< fold ONE shard's base out from under the cut
  // remainder: publish_all + full verification
};

void run_sharded_differential(std::uint64_t seed, std::int64_t steps, int num_shards,
                              ShardedConfig::Partitioner partitioner,
                              TransferPrecision wire, const MixConfig& mix = {}) {
  const Dataset ds = make_community_dataset(3, 32, 8, 2);
  ShardedConfig config;
  config.num_shards = num_shards;
  config.partitioner = partitioner;
  ShardedStreamingGraph sharded(ds, config);
  StreamingConfig flat_config;
  flat_config.recycle_ids = false;  // keep both vertex spaces append-only
  StreamingGraph flat(ds, flat_config);
  if (wire != TransferPrecision::kFp32) {
    flat.features().set_transfer_precision(wire);
    for (int s = 0; s < sharded.num_shards(); ++s) {
      sharded.shard(s).features().set_transfer_precision(wire);
    }
  }
  GnnModel model(small_model_config());
  Xoshiro256 rng(seed);

  // Live-edge pool for targeted retractions; stale entries (edges a
  // vertex retirement already dropped) are pruned when both stacks
  // reject them.
  std::vector<std::pair<VertexId, VertexId>> live_edges;
  std::int64_t adoption_points = 0;
  std::int64_t probes = 0;
  std::vector<float> row(8);

  for (std::int64_t step = 0; step < steps; ++step) {
    const double r = rng.uniform();
    const VertexId n = flat.num_vertices();
    const double c_insert = mix.insert;
    const double c_remove = c_insert + mix.remove;
    const double c_vadd = c_remove + mix.vertex_add;
    const double c_vdel = c_vadd + mix.vertex_remove;
    const double c_feat = c_vdel + mix.feature;
    const double c_probe = c_feat + mix.gather_probe;
    const double c_compact = c_probe + mix.shard_compact;

    if (r < c_insert) {
      const auto u = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
      const auto v = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
      const bool flat_accepted = flat.add_edge(u, v);
      ASSERT_EQ(sharded.add_edge(u, v), flat_accepted) << u << "-" << v;
      if (flat_accepted) live_edges.emplace_back(u, v);
    } else if (r < c_remove) {
      VertexId u, v;
      if (!live_edges.empty() && rng.uniform() < 0.8) {
        const auto slot = static_cast<std::size_t>(
            rng.bounded(static_cast<std::uint64_t>(live_edges.size())));
        std::tie(u, v) = live_edges[slot];
        live_edges[slot] = live_edges.back();
        live_edges.pop_back();
      } else {
        u = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
        v = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
      }
      ASSERT_EQ(sharded.remove_edge(u, v), flat.remove_edge(u, v)) << u << "-" << v;
    } else if (r < c_vadd) {
      for (float& x : row) x = static_cast<float>(rng.normal());
      const VertexId flat_id = flat.add_vertex(row);
      ASSERT_EQ(sharded.add_vertex(row), flat_id);  // append-only lockstep
      const auto u = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
      const bool attached = flat.add_edge(flat_id, u);
      ASSERT_EQ(sharded.add_edge(flat_id, u), attached);
      if (attached) live_edges.emplace_back(flat_id, u);
    } else if (r < c_vdel) {
      const auto v = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
      ASSERT_EQ(sharded.remove_vertex(v), flat.remove_vertex(v)) << v;
    } else if (r < c_feat) {
      const auto v = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
      for (float& x : row) x = static_cast<float>(rng.normal());
      ASSERT_EQ(sharded.update_feature(v, row), flat.update_feature(v, row)) << v;
    } else if (r < c_probe) {
      // Mid-window gather parity: dirty halo rows are still pending
      // (no adopt), so remote reads exercise the owner-fetch path and
      // must STILL match the flat store exactly.
      std::vector<VertexId> nodes;
      for (int i = 0; i < 6; ++i) {
        nodes.push_back(static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n))));
      }
      Tensor x_flat, x_cut;
      std::vector<char> scratch;
      flat.gather(std::span<const VertexId>(nodes.data(), nodes.size()), x_flat);
      const auto home = static_cast<int>(
          rng.bounded(static_cast<std::uint64_t>(sharded.num_shards())));
      sharded.gather(home, std::span<const VertexId>(nodes.data(), nodes.size()), x_cut,
                     scratch);
      ASSERT_DOUBLE_EQ(Tensor::max_abs_diff(x_flat, x_cut), 0.0) << "home " << home;
      ++probes;
    } else if (r < c_compact) {
      // Fold one shard's base while the others keep their overlays: the
      // next adopted cut mixes compacted and overlay-heavy shard
      // versions and must still match the flat truth.
      const auto s = static_cast<int>(
          rng.bounded(static_cast<std::uint64_t>(sharded.num_shards())));
      sharded.shard(s).compact();
      if (rng.uniform() < 0.5) flat.compact();
    } else {
      const auto cut = sharded.publish_all();
      const auto version = flat.publish();
      verify_cut_vs_flat(sharded, *cut, flat, *version, model, seed ^ (0xabcdULL + step),
                         step);
      ++adoption_points;
    }
    if (::testing::Test::HasFatalFailure()) return;
  }

  // Trailing adoption: one final full check + counter conservation.
  const auto cut = sharded.publish_all();
  const auto version = flat.publish();
  verify_cut_vs_flat(sharded, *cut, flat, *version, model, seed ^ 0x9999ULL, steps);
  ++adoption_points;

  const ShardedStats sharded_stats = sharded.stats();
  const StreamStats flat_stats = flat.stats();
  EXPECT_EQ(sharded_stats.ingested_edges, flat_stats.ingested_edges);
  EXPECT_EQ(sharded_stats.duplicate_edges, flat_stats.duplicate_edges);
  EXPECT_EQ(sharded_stats.removed_edges, flat_stats.removed_edges);
  EXPECT_EQ(sharded_stats.rejected_removals, flat_stats.rejected_removals);
  EXPECT_EQ(sharded_stats.added_vertices, flat_stats.added_vertices);
  EXPECT_EQ(sharded_stats.removed_vertices, flat_stats.removed_vertices);
  EXPECT_EQ(sharded_stats.feature_updates, flat_stats.feature_updates);
  EXPECT_EQ(sharded.dirty_rows(), 0);
  // The mix must actually have exercised the machinery.
  EXPECT_GT(adoption_points, 20);
  EXPECT_GT(probes, 10);
  EXPECT_GT(sharded_stats.removed_edges, 0);
  EXPECT_GT(sharded_stats.removed_vertices, 0);
  EXPECT_GT(sharded_stats.halo_refreshed_rows, 0);
}

TEST(ShardDifferential, TwoShardsHashMatchFlatSeed17) {
  run_sharded_differential(/*seed=*/17, /*steps=*/900, /*num_shards=*/2,
                           ShardedConfig::Partitioner::kHash, TransferPrecision::kFp32);
}

TEST(ShardDifferential, TwoShardsBfsInt8WireMatchesFlatSeed91) {
  // BFS partition concentrates communities per shard (small halo) while
  // int8 makes every gather byte-comparable through the quantized wire.
  run_sharded_differential(/*seed=*/91, /*steps=*/900, /*num_shards=*/2,
                           ShardedConfig::Partitioner::kBfs, TransferPrecision::kInt8);
}

TEST(ShardDifferential, FourShardsDeleteHeavyMatchFlatSeed53) {
  MixConfig mix;
  mix.insert = 0.24;
  mix.remove = 0.28;       // delete-heavy: retractions outnumber inserts
  mix.vertex_add = 0.07;
  mix.vertex_remove = 0.06;
  mix.feature = 0.10;
  mix.gather_probe = 0.05;
  mix.shard_compact = 0.07;
  run_sharded_differential(/*seed=*/53, /*steps=*/800, /*num_shards=*/4,
                           ShardedConfig::Partitioner::kHash, TransferPrecision::kFp32, mix);
}

TEST(ShardDifferential, FourShardsBfsFeatureHeavySeed71) {
  // Feature-heavy mix: the halo plane carries most of the traffic —
  // wide dirty windows, frequent refresh sweeps, int8 wire.
  MixConfig mix;
  mix.insert = 0.22;
  mix.remove = 0.14;
  mix.vertex_add = 0.05;
  mix.vertex_remove = 0.03;
  mix.feature = 0.28;
  mix.gather_probe = 0.10;
  mix.shard_compact = 0.04;
  run_sharded_differential(/*seed=*/71, /*steps=*/700, /*num_shards=*/4,
                           ShardedConfig::Partitioner::kBfs, TransferPrecision::kInt8, mix);
}

}  // namespace
}  // namespace hyscale
