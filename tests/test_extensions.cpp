// Tests for the extension modules: static feature cache, classification
// report, chrome-trace export.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "graph/datasets.hpp"
#include "nn/metrics.hpp"
#include "runtime/feature_cache.hpp"
#include "runtime/trace.hpp"
#include "sampling/neighbor_sampler.hpp"

namespace hyscale {
namespace {

// ------------------------------------------------------------ FeatureCache

Dataset cache_dataset() { return make_community_dataset(3, 64, 8, 17); }

TEST(FeatureCache, ZeroCapacityAllMisses) {
  const Dataset ds = cache_dataset();
  StaticFeatureCache cache(ds.graph, ds.features, 0);
  NeighborSampler sampler(ds.graph, {4, 4}, 1);
  Tensor x;
  const auto stats = cache.load(sampler.sample({0, 1, 2, 3}), x);
  EXPECT_EQ(stats.hits, 0);
  EXPECT_GT(stats.misses, 0);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(stats.device_bytes, 0.0);
}

TEST(FeatureCache, FullCapacityAllHits) {
  const Dataset ds = cache_dataset();
  StaticFeatureCache cache(ds.graph, ds.features, ds.num_vertices());
  NeighborSampler sampler(ds.graph, {4, 4}, 1);
  Tensor x;
  const auto stats = cache.load(sampler.sample({0, 1, 2, 3}), x);
  EXPECT_EQ(stats.misses, 0);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 1.0);
}

TEST(FeatureCache, LoadIsNumericallyIdenticalToPlainGather) {
  const Dataset ds = cache_dataset();
  StaticFeatureCache cache(ds.graph, ds.features, 32);
  NeighborSampler sampler(ds.graph, {4, 4}, 5);
  const MiniBatch batch = sampler.sample({10, 20, 30});
  Tensor cached_out;
  cache.load(batch, cached_out);
  for (std::size_t i = 0; i < batch.input_nodes().size(); ++i) {
    const VertexId v = batch.input_nodes()[i];
    for (std::int64_t j = 0; j < ds.features.cols(); ++j) {
      EXPECT_FLOAT_EQ(cached_out.at(static_cast<std::int64_t>(i), j), ds.features.at(v, j));
    }
  }
}

TEST(FeatureCache, DegreeOrderedCachingBeatsExpectationOnSkewedGraphs) {
  // On a power-law graph, caching 10% of vertices by degree must cover
  // far more than 10% of sampled feature accesses.  Keep the frontier
  // well below the graph size so sampling doesn't saturate (which would
  // flatten the hit rate back to the cache fraction).
  MaterializeOptions options;
  options.target_vertices = 1 << 13;
  options.label_signal = false;
  const Dataset ds = materialize_dataset("ogbn-products", options);
  StaticFeatureCache cache(ds.graph, ds.features, ds.num_vertices() / 10);
  NeighborSampler sampler(ds.graph, {10, 5}, 3);
  std::vector<VertexId> seeds;
  for (VertexId v = 0; v < ds.num_vertices() && seeds.size() < 16; ++v) {
    if (ds.graph.degree(v) > 0) seeds.push_back(v);
  }
  Tensor x;
  for (int round = 0; round < 5; ++round) cache.load(sampler.sample(seeds), x);
  EXPECT_GT(cache.totals().hit_rate(), 0.25);  // >> 0.1
}

TEST(FeatureCache, RejectsBadConstruction) {
  const Dataset ds = cache_dataset();
  Tensor wrong(ds.num_vertices() + 1, 8);
  EXPECT_THROW(StaticFeatureCache(ds.graph, wrong, 4), std::invalid_argument);
  EXPECT_THROW(StaticFeatureCache(ds.graph, ds.features, -1), std::invalid_argument);
}

// ---------------------------------------------------- ClassificationReport

TEST(Metrics, ReportOnHandComputedExample) {
  // 4 samples, 2 classes. logits -> predictions {1, 0, 1, 1},
  // labels {1, 0, 0, 1}: class0: tp=1 fp=0 fn=1; class1: tp=2 fp=1 fn=0.
  Tensor logits(4, 2, 0.0f);
  logits.at(0, 1) = 1.0f;
  logits.at(1, 0) = 1.0f;
  logits.at(2, 1) = 1.0f;
  logits.at(3, 1) = 1.0f;
  const std::vector<int> labels = {1, 0, 0, 1};
  const ClassificationReport report = classification_report(logits, labels);
  EXPECT_DOUBLE_EQ(report.accuracy, 0.75);
  ASSERT_EQ(report.per_class.size(), 2u);
  EXPECT_DOUBLE_EQ(report.per_class[0].precision(), 1.0);
  EXPECT_DOUBLE_EQ(report.per_class[0].recall(), 0.5);
  EXPECT_NEAR(report.per_class[0].f1(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(report.per_class[1].precision(), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(report.per_class[1].recall(), 1.0);
  EXPECT_NEAR(report.per_class[1].f1(), 0.8, 1e-12);
  EXPECT_NEAR(report.macro_f1, (2.0 / 3.0 + 0.8) / 2.0, 1e-12);
}

TEST(Metrics, ReportMatchesAccuracyFunction) {
  Tensor logits(50, 5);
  for (std::int64_t i = 0; i < logits.size(); ++i)
    logits.data()[i] = static_cast<float>((i * 37 % 11) - 5);
  std::vector<int> labels(50);
  for (std::size_t i = 0; i < 50; ++i) labels[i] = static_cast<int>(i % 5);
  const ClassificationReport report = classification_report(logits, labels);
  EXPECT_DOUBLE_EQ(report.accuracy, accuracy(logits, labels));
}

TEST(Metrics, ReportRejectsBadLabels) {
  Tensor logits(1, 3, 0.0f);
  EXPECT_THROW(classification_report(logits, std::vector<int>{5}), std::invalid_argument);
  EXPECT_THROW(classification_report(logits, std::vector<int>{0, 1}), std::invalid_argument);
}

TEST(Metrics, EmptyClassHasZeroF1NotNan) {
  Tensor logits(2, 3, 0.0f);
  logits.at(0, 0) = 1.0f;
  logits.at(1, 0) = 1.0f;
  const ClassificationReport report = classification_report(logits, std::vector<int>{0, 0});
  EXPECT_DOUBLE_EQ(report.per_class[2].f1(), 0.0);
  EXPECT_FALSE(std::isnan(report.macro_f1));
}

// -------------------------------------------------------------- ChromeTrace

EpochReport small_report() {
  MaterializeOptions options;
  options.target_vertices = 1 << 10;
  options.label_signal = false;
  static const Dataset ds = materialize_dataset("ogbn-products", options);
  HybridTrainerConfig config;
  config.real_compute = false;
  config.trajectory_cap = 16;
  HybridTrainer trainer(ds, cpu_fpga_platform(2), config);
  return trainer.train_epoch();
}

TEST(ChromeTrace, ContainsOneEventPerStagePerIteration) {
  const EpochReport report = small_report();
  const std::string trace = to_chrome_trace(report, PipelineMode::kTwoStagePrefetch);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  std::size_t events = 0;
  for (std::size_t pos = trace.find("\"ph\": \"X\""); pos != std::string::npos;
       pos = trace.find("\"ph\": \"X\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, report.trajectory.size() * 4);
}

TEST(ChromeTrace, SequentialModeSerialisesStages) {
  const EpochReport report = small_report();
  const std::string two = to_chrome_trace(report, PipelineMode::kTwoStagePrefetch);
  const std::string seq = to_chrome_trace(report, PipelineMode::kSequential);
  EXPECT_NE(two, seq);
}

TEST(ChromeTrace, WritesFile) {
  const EpochReport report = small_report();
  const std::string path = "/tmp/hyscale_trace_test.json";
  write_chrome_trace(report, PipelineMode::kTwoStagePrefetch, path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hyscale
