// Refactor guard for the ServingBackend seam (src/serving/backend.hpp)
// plus live model hot-swap.
//
// Equivalence leg: the compat constructors (dataset / StreamingGraph /
// ShardedStreamingGraph) and the explicit seam constructor
// (make_*_backend + InferenceServer(backend, ...)) must produce
// BIT-IDENTICAL logits in all three modes, at full-neighborhood
// exactness and at sampled fanouts through an int8 device cache — the
// refactor moved every mode branch behind the seam, and this suite is
// what keeps the move value-neutral.
//
// Hot-swap leg: swap_model() under concurrent traffic must never tear
// a batch — every served result matches exactly one of the staged
// epochs' oracles (run under TSan via the sanitizer presets).
//
// Expiry leg: the backend is an ExpiryTarget, so ONE ExpirySweeper
// paces facade-wide TTL retirement in sharded mode (ROADMAP 1(d)) —
// bursts capped by max_retire_per_sweep, shard vertex spaces in
// lockstep afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/hyscale.hpp"

namespace hyscale {
namespace {

const Dataset& community() {
  static const Dataset ds = make_community_dataset(3, 32, 8, 2);
  return ds;
}

ModelConfig small_model_config() {
  ModelConfig config;
  config.kind = GnnKind::kSage;
  config.dims = {8, 16, 3};
  config.seed = 11;
  return config;
}

/// Exact reference: full-neighborhood sample + plain gather + forward.
Tensor direct_forward(GnnModel& model, const Dataset& ds, const std::vector<VertexId>& seeds) {
  const MiniBatch batch = sample_full(ds.graph, seeds, model.config().num_layers());
  FeatureLoader loader(ds.features);
  Tensor x;
  loader.load(batch, x);
  return model.forward(batch, x);
}

/// The seed sets every equivalence test serves; deliberately reuses
/// ids across sets so cache state diverging between the two paths
/// would show up as a logit diff at int8 wire precision.
std::vector<std::vector<VertexId>> probe_seed_sets(VertexId limit) {
  std::vector<std::vector<VertexId>> sets = {
      {0, 17, 40}, {5, 17, 63, 90}, {0, 40, 90}, {2}, {31, 32, 33, 64, 65}};
  for (auto& seeds : sets)
    for (VertexId& v : seeds) v %= limit;
  return sets;
}

/// Serves every probe set through `server` and returns the logits.
std::vector<Tensor> serve_probes(InferenceServer& server,
                                 const std::vector<std::vector<VertexId>>& sets) {
  std::vector<Tensor> logits;
  logits.reserve(sets.size());
  for (const auto& seeds : sets) logits.push_back(server.infer(seeds).logits);
  return logits;
}

void expect_bit_identical(const std::vector<Tensor>& actual,
                          const std::vector<Tensor>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual[i].rows(), expected[i].rows()) << "probe " << i;
    EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(actual[i], expected[i]), 0.0) << "probe " << i;
  }
}

/// Two serving configs per mode: exact full-neighborhood fp32, and
/// sampled fanouts through an int8 device cache (the hot path the
/// refactor actually moved).
std::vector<ServingConfig> probe_configs() {
  ServingConfig exact;
  exact.num_workers = 2;

  ServingConfig sampled;
  sampled.num_workers = 2;
  sampled.fanouts = {4, 3};
  sampled.cache_capacity_rows = 48;
  sampled.transfer_precision = TransferPrecision::kInt8;
  return {exact, sampled};
}

// ----------------------------------------------------- equivalence: static

TEST(BackendEquivalence, StaticSeamMatchesLegacyCtor) {
  const Dataset& ds = community();
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);
  const auto sets = probe_seed_sets(ds.graph.num_vertices());

  for (const ServingConfig& config : probe_configs()) {
    std::vector<Tensor> legacy;
    {
      InferenceServer server(ds, snapshot, config);
      EXPECT_STREQ(server.backend().name(), "static");
      EXPECT_FALSE(server.streaming());
      EXPECT_FALSE(server.sharded());
      legacy = serve_probes(server, sets);
    }
    auto backend = make_static_backend(ds, config);
    InferenceServer server(*backend, snapshot, config);
    expect_bit_identical(serve_probes(server, sets), legacy);
  }
}

// -------------------------------------------------- equivalence: streaming

/// A deterministic splash of churn: streamed-in vertices wired into the
/// topology, edge inserts across communities, and a retraction — then a
/// publish so queries can see it.
void churn_and_publish(StreamingGraph& graph) {
  const std::vector<float> row(8, 0.25f);
  const VertexId a = graph.add_vertex(row);
  const VertexId b = graph.add_vertex(row);
  ASSERT_TRUE(graph.add_edge(a, 0));
  ASSERT_TRUE(graph.add_edge(b, 33));
  ASSERT_TRUE(graph.add_edge(a, b));
  ASSERT_TRUE(graph.add_edge(5, 70));
  ASSERT_TRUE(graph.remove_edge(a, 0));
  graph.publish();
}

TEST(BackendEquivalence, StreamingSeamMatchesLegacyCtor) {
  const Dataset& ds = community();
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);

  for (const ServingConfig& config : probe_configs()) {
    StreamingGraph graph(ds, {});
    churn_and_publish(graph);
    const auto sets = probe_seed_sets(graph.current()->num_vertices());

    std::vector<Tensor> legacy;
    {
      // Sequential servers: the backend attaches the device cache to
      // the graph and detaches it on destruction, so the seam server
      // below starts from the same clean attach state.
      InferenceServer server(graph, snapshot, config);
      EXPECT_STREQ(server.backend().name(), "streaming");
      EXPECT_TRUE(server.streaming());
      legacy = serve_probes(server, sets);
    }
    auto backend = make_streaming_backend(graph, config);
    InferenceServer server(*backend, snapshot, config);
    expect_bit_identical(serve_probes(server, sets), legacy);
    EXPECT_GT(server.last_served_version(), 0u);
  }
}

// ---------------------------------------------------- equivalence: sharded

TEST(BackendEquivalence, ShardedSeamMatchesLegacyCtor) {
  const Dataset& ds = community();
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);

  for (const ServingConfig& config : probe_configs()) {
    ShardedConfig sharded_config;
    sharded_config.num_shards = 3;
    ShardedStreamingGraph sharded(ds, sharded_config);
    const std::vector<float> row(8, 0.25f);
    const VertexId a = sharded.add_vertex(row);
    ASSERT_TRUE(sharded.add_edge(a, 0));
    ASSERT_TRUE(sharded.add_edge(7, 64));
    sharded.publish_all();
    const auto sets = probe_seed_sets(sharded.current_cut()->num_vertices());

    std::vector<Tensor> legacy;
    {
      InferenceServer server(sharded, snapshot, config);
      EXPECT_STREQ(server.backend().name(), "sharded");
      EXPECT_TRUE(server.sharded());
      legacy = serve_probes(server, sets);
    }
    auto backend = make_sharded_backend(sharded, config);
    InferenceServer server(*backend, snapshot, config);
    expect_bit_identical(serve_probes(server, sets), legacy);
  }
}

// ------------------------------------------------------- journal labelling

TEST(BackendSeam, ServingStartJournalsBackendLabel) {
  const Dataset& ds = community();
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);

  StreamingGraph graph(ds, {});
  ShardedConfig sharded_config;
  sharded_config.num_shards = 2;
  ShardedStreamingGraph sharded(ds, sharded_config);
  sharded.publish_all();

  const auto start_detail = [&](auto& target) {
    Telemetry telemetry;
    ServingConfig config;
    config.num_workers = 1;
    config.telemetry = &telemetry;
    InferenceServer server(target, snapshot, config);
    for (const JournalEvent& event : telemetry.journal().events()) {
      if (event.kind == "serving_start") return event.detail;
    }
    return std::string();
  };
  EXPECT_NE(start_detail(ds).find("backend=static"), std::string::npos);
  EXPECT_NE(start_detail(graph).find("backend=streaming"), std::string::npos);
  EXPECT_NE(start_detail(sharded).find("backend=sharded"), std::string::npos);
}

// ------------------------------------------------------------ model swap

TEST(ModelHotSwap, NextBatchServesTheNewEpoch) {
  const Dataset& ds = community();
  GnnModel model_a(small_model_config());
  ModelConfig config_b = small_model_config();
  config_b.seed = 97;  // same architecture, different weights
  GnnModel model_b(config_b);

  ServingConfig config;  // full neighborhood: exact, oracle-comparable
  config.num_workers = 2;
  InferenceServer server(ds, ModelSnapshot(model_a), config);
  EXPECT_EQ(server.model_epoch(), 1u);

  const std::vector<VertexId> seeds = {0, 17, 40, 95};
  EXPECT_DOUBLE_EQ(
      Tensor::max_abs_diff(server.infer(seeds).logits, direct_forward(model_a, ds, seeds)),
      0.0);

  EXPECT_EQ(server.swap_model(ModelSnapshot(model_b)), 2u);
  EXPECT_EQ(server.model_epoch(), 2u);
  EXPECT_DOUBLE_EQ(
      Tensor::max_abs_diff(server.infer(seeds).logits, direct_forward(model_b, ds, seeds)),
      0.0);

  // Swaps stack: back to A's weights at epoch 3.
  EXPECT_EQ(server.swap_model(ModelSnapshot(model_a)), 3u);
  EXPECT_DOUBLE_EQ(
      Tensor::max_abs_diff(server.infer(seeds).logits, direct_forward(model_a, ds, seeds)),
      0.0);
}

TEST(ModelHotSwap, RejectsMismatchedArchitecture) {
  const Dataset& ds = community();
  GnnModel model(small_model_config());
  InferenceServer server(ds, ModelSnapshot(model), {});

  ModelConfig wrong_classes = small_model_config();
  wrong_classes.dims = {8, 16, 4};
  GnnModel more_classes(wrong_classes);
  EXPECT_THROW(server.swap_model(ModelSnapshot(more_classes)), std::invalid_argument);

  ModelConfig wrong_depth = small_model_config();
  wrong_depth.dims = {8, 12, 16, 3};
  GnnModel deeper(wrong_depth);
  EXPECT_THROW(server.swap_model(ModelSnapshot(deeper)), std::invalid_argument);

  EXPECT_EQ(server.model_epoch(), 1u);  // failed swaps do not bump the epoch
}

TEST(ModelHotSwap, ConcurrentTrafficNeverTearsABatch) {
  // Hammer the server from client threads while the main thread swaps
  // epochs A -> B -> A -> ...  Full-neighborhood mode is exact, so
  // every result must be BITWISE one of the two oracles — a batch that
  // mixed weights mid-flight would match neither.  (The interesting
  // data race — workers re-reading the staged snapshot while swaps
  // publish it — is what the TSan preset checks.)
  const Dataset& ds = community();
  GnnModel model_a(small_model_config());
  ModelConfig config_b = small_model_config();
  config_b.seed = 97;
  GnnModel model_b(config_b);

  const std::vector<std::vector<VertexId>> sets = probe_seed_sets(ds.graph.num_vertices());
  std::vector<Tensor> oracle_a, oracle_b;
  for (const auto& seeds : sets) {
    oracle_a.push_back(direct_forward(model_a, ds, seeds));
    oracle_b.push_back(direct_forward(model_b, ds, seeds));
  }

  ServingConfig config;
  config.num_workers = 3;
  // One request per micro-batch: coalescing merges computation graphs
  // and shifts float rounding ~1e-7, which would drown the bitwise
  // oracle check this test is actually about.
  config.batch.max_batch_requests = 1;
  InferenceServer server(ds, ModelSnapshot(model_a), config);

  std::atomic<int> torn{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 40; ++i) {
        const std::size_t probe = static_cast<std::size_t>(t + i) % sets.size();
        const Tensor logits = server.infer(sets[probe]).logits;
        const bool is_a = Tensor::max_abs_diff(logits, oracle_a[probe]) == 0.0;
        const bool is_b = Tensor::max_abs_diff(logits, oracle_b[probe]) == 0.0;
        if (!is_a && !is_b) torn.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int swap = 0; swap < 16; ++swap) {
    server.swap_model(ModelSnapshot(swap % 2 == 0 ? model_b : model_a));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& client : clients) client.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(server.model_epoch(), 17u);  // construction epoch + 16 swaps
}

// ------------------------------------------------- sharded TTL via backend

TEST(ShardedExpiry, BackendSweeperRetiresFacadeWideWithPacing) {
  // ROADMAP 1(d): TTL expiry in sharded mode used to be caller-paced
  // because a per-shard sweeper would let vertex spaces drift.  The
  // backend seam closes it — the ShardedBackend forwards sweep_expired
  // to the facade's broadcast retirement, so ONE sweeper serves the
  // whole deployment.
  const Dataset& ds = community();
  ShardedConfig sharded_config;
  sharded_config.num_shards = 3;
  ShardedStreamingGraph sharded(ds, sharded_config);

  const std::vector<float> row(8, 0.5f);
  constexpr int kStreamedIn = 6;
  for (int i = 0; i < kStreamedIn; ++i) sharded.add_vertex(row);
  sharded.publish_all();
  const VertexId base = ds.graph.num_vertices();
  const VertexId grown = sharded.num_vertices();
  ASSERT_EQ(grown, base + kStreamedIn);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));  // let them go idle

  ServingConfig serving;
  serving.num_workers = 1;
  auto backend = make_sharded_backend(sharded, serving);
  EXPECT_STREQ(backend->expiry_scope(), "sharded");

  ExpiryPolicy policy;
  policy.ttl = 0.0;  // everything idle at sweep time expires
  policy.sweep_interval = 1e-3;
  policy.max_retire_per_sweep = 2;  // force pacing across passes
  policy.pending_op_budget = 0;
  ExpirySweeper sweeper(*backend, policy);

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (sweeper.retired() < kStreamedIn && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sweeper.stop();

  EXPECT_EQ(sweeper.retired(), kStreamedIn);
  // Pacing: 6 retirements at <= 2 per pass is at least 3 passes.
  EXPECT_GE(sweeper.sweeps(), 3);
  EXPECT_EQ(sharded.stats().expired_vertices, kStreamedIn);

  // Broadcast retirement kept every shard's vertex space in lockstep,
  // and the next cut sees the retirees dead.
  for (int s = 0; s < sharded.num_shards(); ++s) {
    EXPECT_EQ(sharded.shard(s).num_vertices(), grown) << "shard " << s;
  }
  const auto cut = sharded.publish_all();
  for (VertexId v = base; v < grown; ++v) EXPECT_FALSE(cut->alive(v)) << "vertex " << v;
}

}  // namespace
}  // namespace hyscale
