// Tests for the sharded streaming serving tier (src/shard/): owner
// routing and lockstep vertex spaces across shards, halo mirror
// refresh at cut adoption, consistent-cut semantics (staleness
// detection, monotone cut ids, no-op adoption), the background
// CutAdopter, the facade update driver, and the serving tier's
// sharded mode (per-shard caches, routed gathers, traffic-triggered
// cache re-ranks).  Bit-level parity against the flat stack lives in
// test_shard_differential.cpp.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/hyscale.hpp"

namespace hyscale {
namespace {

const Dataset& community() {
  static const Dataset ds = make_community_dataset(3, 32, 8, 2);
  return ds;
}

ModelConfig small_model_config() {
  ModelConfig config;
  config.kind = GnnKind::kSage;
  config.dims = {8, 16, 3};
  config.seed = 11;
  return config;
}

ShardedConfig sharded_config(int shards,
                             ShardedConfig::Partitioner partitioner =
                                 ShardedConfig::Partitioner::kHash) {
  ShardedConfig config;
  config.num_shards = shards;
  config.partitioner = partitioner;
  return config;
}

// ------------------------------------------------------------ facade basics

TEST(ShardedGraph, RejectsDegenerateConfigs) {
  EXPECT_THROW(ShardedStreamingGraph(community(), sharded_config(0)),
               std::invalid_argument);
  ShardedConfig asymmetric = sharded_config(2);
  asymmetric.stream.symmetric = false;
  EXPECT_THROW(ShardedStreamingGraph(community(), asymmetric), std::invalid_argument);
}

TEST(ShardedGraph, OwnerShardHoldsCompleteAdjacency) {
  // The bit-identity contract's topology leg: shard s's base keeps every
  // edge incident to a vertex it owns, so the owner's version serves the
  // vertex's FULL live neighborhood, element-identical to the dataset.
  const Dataset& ds = community();
  for (const auto partitioner :
       {ShardedConfig::Partitioner::kHash, ShardedConfig::Partitioner::kBfs}) {
    ShardedStreamingGraph graph(ds, sharded_config(3, partitioner));
    const auto cut = graph.current_cut();
    std::vector<VertexId> live;
    for (VertexId v = 0; v < ds.graph.num_vertices(); ++v) {
      EXPECT_EQ(graph.owner(v), graph.partition().assignment[static_cast<std::size_t>(v)]);
      ASSERT_EQ(cut->degree(v), ds.graph.degree(v)) << "vertex " << v;
      live.clear();
      cut->append_neighbors(v, live);
      const auto expected = ds.graph.neighbors(v);
      ASSERT_TRUE(std::equal(live.begin(), live.end(), expected.begin(), expected.end()))
          << "vertex " << v;
    }
  }
}

TEST(ShardedGraph, SingleShardDegeneratesToFlatBehaviour) {
  ShardedStreamingGraph graph(community(), sharded_config(1));
  EXPECT_EQ(graph.num_shards(), 1);
  EXPECT_TRUE(graph.add_edge(0, 9));
  EXPECT_FALSE(graph.add_edge(0, 9));  // duplicate
  graph.publish_all();
  EXPECT_EQ(graph.current_cut()->degree(0), community().graph.degree(0) + 1);
}

TEST(ShardedGraph, VertexSpacesStayInLockstep) {
  ShardedStreamingGraph graph(community(), sharded_config(3));
  const VertexId before = graph.num_vertices();
  const std::vector<float> row(8, 0.5f);
  const VertexId a = graph.add_vertex(row);
  const VertexId b = graph.add_vertex(row);
  EXPECT_EQ(a, before);
  EXPECT_EQ(b, before + 1);
  for (int s = 0; s < graph.num_shards(); ++s) {
    EXPECT_EQ(graph.shard(s).num_vertices(), before + 2) << "shard " << s;
  }
  // Streamed-in vertices have a deterministic hashed owner and can be
  // wired into the topology through the facade.
  const int owner = graph.owner(a);
  EXPECT_GE(owner, 0);
  EXPECT_LT(owner, graph.num_shards());
  EXPECT_EQ(owner, graph.owner(a));  // stable
  EXPECT_TRUE(graph.add_edge(a, 0));
  EXPECT_TRUE(graph.remove_vertex(a));
  EXPECT_FALSE(graph.remove_vertex(a));  // double retirement rejected
  graph.publish_all();
  EXPECT_FALSE(graph.current_cut()->alive(a));
  EXPECT_TRUE(graph.current_cut()->alive(b));
}

TEST(ShardedGraph, EdgeOpsRouteToBothEndpointOwners) {
  const Dataset& ds = community();
  ShardedStreamingGraph graph(ds, sharded_config(2));
  // Find a cross-shard vertex pair with no existing edge.
  VertexId u = -1, v = -1;
  for (VertexId a = 0; a < ds.graph.num_vertices() && u < 0; ++a) {
    for (VertexId b = 0; b < ds.graph.num_vertices(); ++b) {
      if (a == b || graph.owner(a) == graph.owner(b)) continue;
      const auto nbrs = ds.graph.neighbors(a);
      if (std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end()) continue;
      u = a;
      v = b;
      break;
    }
  }
  ASSERT_GE(u, 0) << "community dataset should have a cross-shard non-edge";
  EXPECT_TRUE(graph.add_edge(u, v));
  EXPECT_FALSE(graph.add_edge(v, u));  // duplicate through either endpoint
  graph.publish_all();
  const auto cut = graph.current_cut();
  // Both owners serve the edge: degree grew on each endpoint's owner row.
  std::vector<VertexId> nbrs;
  cut->append_neighbors(u, nbrs);
  EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), v), nbrs.end());
  nbrs.clear();
  cut->append_neighbors(v, nbrs);
  EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), u), nbrs.end());
  EXPECT_TRUE(graph.remove_edge(u, v));
  EXPECT_FALSE(graph.remove_edge(u, v));
  const ShardedStats stats = graph.stats();
  EXPECT_EQ(stats.ingested_edges, 2);  // logical count: one undirected insert
  EXPECT_EQ(stats.removed_edges, 2);
  EXPECT_EQ(stats.duplicate_edges, 1);
  EXPECT_EQ(stats.rejected_removals, 1);
}

// ------------------------------------------------------------ halo plane

TEST(ShardedGraph, DirtyHaloRowsServeOwnerDataUntilAdopted) {
  const Dataset& ds = community();
  ShardedStreamingGraph graph(ds, sharded_config(2));
  // A vertex owned by shard 0, gathered through home shard 1: before the
  // refresh the row is dirty and must come from the owner's store.
  VertexId v = 0;
  while (graph.owner(v) != 0) ++v;
  std::vector<float> fresh(8);
  for (std::size_t i = 0; i < fresh.size(); ++i) fresh[i] = static_cast<float>(i) + 0.25f;
  ASSERT_TRUE(graph.update_feature(v, fresh));
  EXPECT_GT(graph.dirty_rows(), 0);

  Tensor out;
  std::vector<char> scratch;
  const std::vector<VertexId> nodes = {v};
  graph.gather(/*home_shard=*/1, std::span<const VertexId>(nodes.data(), nodes.size()), out,
               scratch);
  for (std::size_t c = 0; c < fresh.size(); ++c) {
    EXPECT_FLOAT_EQ(out.at(0, static_cast<std::int64_t>(c)), fresh[c]) << "col " << c;
  }
  const ShardedStats mid = graph.stats();
  EXPECT_GT(mid.cross_shard_rows, 0);  // dirty remote row fetched from its owner

  // Adoption refreshes every mirror and drains the dirty set; the same
  // cross-shard gather now hits the local mirror.
  graph.publish_all();
  EXPECT_EQ(graph.dirty_rows(), 0);
  graph.gather(/*home_shard=*/1, std::span<const VertexId>(nodes.data(), nodes.size()), out,
               scratch);
  for (std::size_t c = 0; c < fresh.size(); ++c) {
    EXPECT_FLOAT_EQ(out.at(0, static_cast<std::int64_t>(c)), fresh[c]) << "col " << c;
  }
  const ShardedStats after = graph.stats();
  EXPECT_GT(after.halo_refreshed_rows, 0);
  EXPECT_GT(after.halo_hits, mid.halo_hits);
}

TEST(ShardedGraph, GatherIsHomeShardInvariant) {
  // The routing tier may pick ANY home shard; the assembled feature
  // block must not depend on the choice (fresh mirrors + dirty-row
  // patching make every home equivalent).
  const Dataset& ds = community();
  ShardedStreamingGraph graph(ds, sharded_config(3));
  std::vector<float> row(8, -1.5f);
  ASSERT_TRUE(graph.update_feature(5, row));  // leave a dirty row in play
  std::vector<VertexId> nodes;
  for (VertexId v = 0; v < ds.graph.num_vertices(); v += 3) nodes.push_back(v);
  Tensor reference;
  std::vector<char> scratch;
  graph.gather(0, std::span<const VertexId>(nodes.data(), nodes.size()), reference, scratch);
  for (int home = 1; home < graph.num_shards(); ++home) {
    Tensor out;
    graph.gather(home, std::span<const VertexId>(nodes.data(), nodes.size()), out, scratch);
    EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(reference, out), 0.0) << "home " << home;
  }
}

// ------------------------------------------------------------ cuts

TEST(ShardedGraph, CutsAdvanceMonotonicallyAndNoOpWhenQuiet) {
  ShardedStreamingGraph graph(community(), sharded_config(2));
  const auto first = graph.current_cut();
  EXPECT_FALSE(graph.cut_stale());
  // Quiet adopt: nothing published, nothing dirty — the SAME cut object
  // stays installed (pointer equality, no counter burn).
  EXPECT_EQ(graph.adopt(), first);
  EXPECT_EQ(graph.current_cut()->cut_id(), first->cut_id());

  ASSERT_TRUE(graph.add_edge(0, 17));
  // The op lives in some shard's unpublished overlay; the cut is only
  // stale once that shard PUBLISHES a version the cut does not contain.
  graph.shard(graph.owner(0)).publish();
  EXPECT_TRUE(graph.cut_stale());
  const auto second = graph.publish_all();
  EXPECT_GT(second->cut_id(), first->cut_id());
  EXPECT_FALSE(graph.cut_stale());
}

TEST(ShardedGraph, SnapshotIsolationAcrossAdoptions) {
  // A cut handed to a query stays frozen while newer cuts are adopted —
  // the sharded analogue of per-batch snapshot isolation.
  ShardedStreamingGraph graph(community(), sharded_config(2));
  const auto cut = graph.publish_all();
  const EdgeId degree_before = cut->degree(3);
  ASSERT_TRUE(graph.add_edge(3, 19));
  graph.publish_all();
  EXPECT_EQ(cut->degree(3), degree_before);  // old cut unchanged
  EXPECT_EQ(graph.current_cut()->degree(3), degree_before + 1);
}

TEST(CutAdopterTest, BackgroundThreadAdoptsPublishedVersions) {
  ShardedStreamingGraph graph(community(), sharded_config(2));
  CutAdopterPolicy policy;
  policy.poll_interval = 0.0005;
  CutAdopter adopter(graph, policy);
  const std::uint64_t before = graph.current_cut()->cut_id();
  ASSERT_TRUE(graph.add_edge(1, 22));
  for (int s = 0; s < graph.num_shards(); ++s) graph.shard(s).publish();
  // The adopter must fold the per-shard publishes into a new cut without
  // any publish_all() from us.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (graph.current_cut()->cut_id() == before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(graph.current_cut()->cut_id(), before);
  EXPECT_GE(adopter.adoptions(), 1);
  adopter.stop();
}

TEST(CutAdopterTest, RejectsNonPositivePollInterval) {
  ShardedStreamingGraph graph(community(), sharded_config(2));
  CutAdopterPolicy policy;
  policy.poll_interval = 0.0;
  EXPECT_THROW(CutAdopter(graph, policy), std::invalid_argument);
}

// ------------------------------------------------------------ update driver

TEST(ShardedUpdateDriverTest, ReportMatchesFacadeCounters) {
  ShardedStreamingGraph graph(community(), sharded_config(2));
  UpdateGeneratorConfig config;
  config.operations = 400;
  config.num_threads = 2;
  config.publish_every = 64;
  config.vertex_add_fraction = 0.08;
  config.vertex_delete_fraction = 0.04;
  config.feature_update_fraction = 0.10;
  config.edge_delete_fraction = 0.15;
  config.seed = 23;
  ShardedUpdateDriver driver(graph, config);
  const UpdateReport report = driver.run();
  const ShardedStats stats = graph.stats();
  EXPECT_EQ(report.operations, 400);
  EXPECT_EQ(report.accepted_edges, stats.ingested_edges);
  EXPECT_EQ(report.removed_edges, stats.removed_edges);
  EXPECT_EQ(report.feature_updates, stats.feature_updates);
  EXPECT_EQ(report.recycled_vertices, 0);
  EXPECT_GT(report.accepted_edges, 0);
  EXPECT_GT(report.publishes, 0);  // cut adoptions from the cadence
  EXPECT_FALSE(graph.cut_stale()); // final publish_all left nothing behind
  EXPECT_EQ(graph.dirty_rows(), 0);
}

// ------------------------------------------------------------ serving tier

TEST(ShardedServing, ServerRoutesAndMatchesDirectForward) {
  const Dataset& ds = community();
  ShardedStreamingGraph graph(ds, sharded_config(2, ShardedConfig::Partitioner::kBfs));
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);
  ServingConfig config;
  config.num_workers = 2;
  InferenceServer server(graph, snapshot, config);
  EXPECT_TRUE(server.sharded());
  EXPECT_FALSE(server.streaming());

  // Full-neighborhood mode over the untouched base: logits must be
  // EXACTLY the direct computation on the dataset.
  const std::vector<VertexId> seeds = {1, 9, 33};
  const InferenceResult result = server.infer(seeds);
  const MiniBatch direct = sample_full(ds.graph, seeds, model.config().num_layers());
  FeatureLoader loader(ds.features);
  Tensor x;
  loader.load(direct, x);
  const Tensor expected = model.forward(direct, x);
  ASSERT_EQ(result.logits.rows(), static_cast<std::int64_t>(seeds.size()));
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (std::int64_t c = 0; c < expected.cols(); ++c) {
      EXPECT_DOUBLE_EQ(result.logits.at(static_cast<std::int64_t>(i), c),
                       expected.at(static_cast<std::int64_t>(i), c));
    }
  }
  EXPECT_GT(server.last_served_version(), 0u);  // cut id, not version id
}

TEST(ShardedServing, PerShardCachesAttachAndDetach) {
  const Dataset& ds = community();
  ShardedStreamingGraph graph(ds, sharded_config(2));
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);
  ServingConfig config;
  config.num_workers = 1;
  config.cache_capacity_rows = 16;
  config.transfer_precision = TransferPrecision::kInt8;
  {
    InferenceServer server(graph, snapshot, config);
    for (int s = 0; s < graph.num_shards(); ++s) {
      ASSERT_NE(server.shard_cache(s), nullptr) << "shard " << s;
    }
    EXPECT_EQ(server.cache(), nullptr);  // flat cache unused in sharded mode
    (void)server.infer({0, 5, 40});
    // Invalidation reaches the right shard's cache through the facade.
    std::vector<float> row(8, 2.0f);
    ASSERT_TRUE(graph.update_feature(0, row));
  }
  // Server gone: a feature update must not touch a dangling cache.
  std::vector<float> row(8, 3.0f);
  EXPECT_TRUE(graph.update_feature(1, row));
}

TEST(ShardedServing, TrafficRerankCadenceFiresWithoutFolds) {
  // Satellite: the re-rank cadence is TRAFFIC-driven — no compaction
  // fold ever runs here, yet the caches re-rank every N gathered rows.
  const Dataset& ds = community();
  ShardedStreamingGraph graph(ds, sharded_config(2));
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);
  ServingConfig config;
  config.num_workers = 1;
  config.cache_capacity_rows = 8;
  config.cache_rerank_every_rows = 32;
  InferenceServer server(graph, snapshot, config);
  for (int i = 0; i < 12; ++i) {
    (void)server.infer({static_cast<VertexId>(i), static_cast<VertexId>(i + 20)});
  }
  EXPECT_GT(server.traffic_reranks(), 0);
  std::int64_t cache_reranks = 0;
  for (int s = 0; s < graph.num_shards(); ++s) {
    cache_reranks += server.shard_cache(s)->reranks();
  }
  EXPECT_GT(cache_reranks, 0);
}

TEST(ShardedServing, StaticModeTrafficRerankUsesAccessCounters) {
  // The same cadence in STATIC mode: no StreamingGraph at all, the
  // server re-ranks its own cache from traffic counters + dataset
  // degrees.
  const Dataset& ds = community();
  GnnModel model(small_model_config());
  const ModelSnapshot snapshot(model);
  ServingConfig config;
  config.num_workers = 1;
  config.cache_capacity_rows = 8;
  config.cache_rerank_every_rows = 24;
  InferenceServer server(ds, snapshot, config);
  for (int i = 0; i < 10; ++i) {
    (void)server.infer({static_cast<VertexId>(ds.graph.num_vertices() - 1 - i)});
  }
  EXPECT_GT(server.traffic_reranks(), 0);
  EXPECT_GT(server.cache()->reranks(), 0);
}

TEST(ShardedServing, SessionLifecycleRunsCleanly) {
  // HyScale::stream_sharded end to end: per-shard compactors +
  // publishers + the adopter, concurrent ingest and queries, clean
  // teardown in reverse dependency order.
  const Dataset& ds = community();
  HyScale system(ds, cpu_fpga_platform(2));
  system.train_epoch();
  ShardedConfig sharded = sharded_config(2);
  ServingConfig serving;
  serving.num_workers = 2;
  PublisherPolicy publisher;
  publisher.staleness_budget = 0.002;
  publisher.poll_floor = 0.001;
  CutAdopterPolicy adopter;
  adopter.poll_interval = 0.001;
  ShardedStreamingSession session =
      system.stream_sharded(sharded, serving, CompactionPolicy{}, publisher, adopter);
  EXPECT_EQ(session.compactors.size(), 2u);
  EXPECT_EQ(session.publishers.size(), 2u);

  UpdateGeneratorConfig updates;
  updates.operations = 200;
  updates.num_threads = 2;
  updates.feature_update_fraction = 0.2;
  updates.seed = 5;
  ShardedUpdateDriver driver(session.shards(), updates);
  UpdateReport update_report;
  std::thread ingest([&] { update_report = driver.run(); });
  for (int i = 0; i < 20; ++i) {
    const InferenceResult r = session.infer({static_cast<VertexId>(i % 60)});
    EXPECT_EQ(r.predictions.size(), 1u);
  }
  ingest.join();
  EXPECT_GT(update_report.accepted_edges, 0);
  EXPECT_EQ(session.shards().dirty_rows(), 0);  // final publish_all drained halos
}

}  // namespace
}  // namespace hyscale
