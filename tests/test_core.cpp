// Tests for the core/ public facade.
#include <gtest/gtest.h>

#include "core/hyscale.hpp"

namespace hyscale {
namespace {

TEST(Core, VersionIsSet) { EXPECT_STREQ(kVersion, "1.0.0"); }

TEST(Core, FacadeTrainsEndToEnd) {
  const Dataset dataset = make_community_dataset(3, 48, 8, 4);
  HybridTrainerConfig config;
  config.fanouts = {4, 4};
  config.real_batch_total = 48;
  config.real_iterations_cap = 2;
  config.per_trainer_batch = 128;
  HyScale system(dataset, cpu_fpga_platform(2), config);

  const auto reports = system.train(2);
  ASSERT_EQ(reports.size(), 2u);
  for (const auto& report : reports) {
    EXPECT_GT(report.epoch_time, 0.0);
    EXPECT_GT(report.iterations, 0);
  }
  EXPECT_GT(system.model().num_parameters(), 0);
  EXPECT_GE(system.runtime().num_trainers(), 3);  // CPU + 2 accelerators
}

TEST(Core, FacadeExposesRuntimeKnobs) {
  const Dataset dataset = make_community_dataset(3, 48, 8, 4);
  HybridTrainerConfig config;
  config.fanouts = {4, 4};
  config.real_compute = false;
  HyScale system(dataset, cpu_gpu_platform(1), config);
  WorkloadAssignment w = system.runtime().workload();
  w.accel_batch = 2048;
  system.runtime().set_workload(w);
  EXPECT_EQ(system.runtime().workload().accel_batch, 2048);
  EXPECT_GT(system.runtime().predicted_epoch_time(), 0.0);
}

}  // namespace
}  // namespace hyscale
