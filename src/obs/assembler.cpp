#include "obs/assembler.hpp"

#include <algorithm>
#include <map>

namespace hyscale {

const StageSpanView& RequestTrace::stage(TraceStage s) const {
  switch (s) {
    case TraceStage::kQueue: return queue;
    case TraceStage::kSample: return sample;
    case TraceStage::kGather: return gather;
    case TraceStage::kForward: return forward;
    default: return reply;
  }
}

TraceAssembler::TraceAssembler(std::vector<TraceRecord> records)
    : records_(std::move(records)) {}

RequestTrace TraceAssembler::build(const TraceRecord& queue_record) const {
  RequestTrace trace;
  trace.request_id = queue_record.aux;
  trace.batch_id = queue_record.context;
  trace.enqueue_ns = queue_record.begin_ns;
  trace.queue = {queue_record.begin_ns, queue_record.end_ns, true};
  trace.done_ns = queue_record.end_ns;  // until the reply span is found
  // Batch stages correlate by context.  The ring can retain spans from
  // a context-colliding earlier life only if batch ids repeat, which
  // they do not within one server (monotone counter), so first match
  // per stage wins.
  for (const TraceRecord& r : records_) {
    if (r.context != queue_record.context) continue;
    StageSpanView view{r.begin_ns, r.end_ns, true};
    switch (r.stage) {
      case TraceStage::kSample:
        if (!trace.sample.present) { trace.sample = view; trace.batch_seeds = static_cast<std::int64_t>(r.aux); }
        break;
      case TraceStage::kGather:
        if (!trace.gather.present) trace.gather = view;
        break;
      case TraceStage::kForward:
        if (!trace.forward.present) { trace.forward = view; trace.batch_requests = static_cast<std::int64_t>(r.aux); }
        break;
      case TraceStage::kReply:
        if (!trace.reply.present) { trace.reply = view; trace.done_ns = r.end_ns; }
        break;
      default:
        break;
    }
  }
  return trace;
}

std::vector<RequestTrace> TraceAssembler::assemble() const {
  // request id -> its queue span; a map keeps the output sorted.
  std::map<std::uint64_t, const TraceRecord*> queues;
  for (const TraceRecord& r : records_) {
    if (r.stage == TraceStage::kQueue) queues.emplace(r.aux, &r);
  }
  std::vector<RequestTrace> out;
  out.reserve(queues.size());
  for (const auto& [id, record] : queues) out.push_back(build(*record));
  return out;
}

std::optional<RequestTrace> TraceAssembler::request(std::uint64_t request_id) const {
  for (const TraceRecord& r : records_) {
    if (r.stage == TraceStage::kQueue && r.aux == request_id) return build(r);
  }
  return std::nullopt;
}

bool ExemplarRing::offer(const RequestTrace& trace) {
  if (capacity_ == 0) return false;
  offered_.fetch_add(1, std::memory_order_relaxed);
  // Fast path: the ring is full and this request is faster than the
  // fastest retained exemplar — a stale read of the threshold only
  // costs one spurious lock acquisition, never a wrong rejection of a
  // genuinely slower trace (the threshold is monotone non-decreasing).
  if (trace.total_ns() <= threshold_ns_.load(std::memory_order_relaxed)) return false;
  std::lock_guard lock(mutex_);
  if (traces_.size() < capacity_) {
    traces_.push_back(trace);
  } else {
    auto fastest = std::min_element(
        traces_.begin(), traces_.end(),
        [](const RequestTrace& a, const RequestTrace& b) { return a.total_ns() < b.total_ns(); });
    if (fastest->total_ns() >= trace.total_ns()) return false;
    *fastest = trace;
  }
  if (traces_.size() == capacity_) {
    auto fastest = std::min_element(
        traces_.begin(), traces_.end(),
        [](const RequestTrace& a, const RequestTrace& b) { return a.total_ns() < b.total_ns(); });
    threshold_ns_.store(fastest->total_ns(), std::memory_order_relaxed);
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::vector<RequestTrace> ExemplarRing::slowest() const {
  std::lock_guard lock(mutex_);
  std::vector<RequestTrace> out = traces_;
  std::sort(out.begin(), out.end(), [](const RequestTrace& a, const RequestTrace& b) {
    return a.total_ns() > b.total_ns();
  });
  return out;
}

}  // namespace hyscale
