// The telemetry bundle every subsystem wires against: one registry,
// one tracer, one journal — plus the diagnosis plane built on them:
// tail exemplars (full traces of the slowest requests), a heartbeat
// registry for the liveness watchdog, and the trip channel that turns
// a watchdog stall or SLO breach into a flight-recorder dump.
//
// Ownership: the application (bench binary, CLI, test) declares a
// Telemetry before building the serving/streaming session and hands a
// raw pointer down through the config structs (ServingConfig.telemetry,
// StreamingConfig.telemetry, ...).  A null pointer everywhere means
// telemetry off — instruments are never consulted and spans cost one
// branch — so the hot path pays nothing by default.
//
// Components that register snapshot-time callbacks against the
// registry must registry.detach(this) in their destructor; see
// obs/metrics.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/assembler.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"

namespace hyscale {

struct TelemetryConfig {
  bool tracing = true;                 ///< allocate + fill trace rings
  std::size_t trace_ring_capacity = 4096;  ///< spans retained per thread
  std::size_t trace_max_threads = 64;
  std::size_t journal_capacity = 1024;
  std::size_t exemplar_capacity = 16;  ///< slowest-request traces retained; 0 disables
};

/// One escalation: a watchdog stall, a publisher SLO breach, or an
/// explicit operator request.
struct TripRecord {
  std::int64_t t_ns = 0;
  std::string reason;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {})
      : tracer_(config.tracing, config.trace_ring_capacity, config.trace_max_threads),
        journal_(config.journal_capacity),
        exemplars_(config.exemplar_capacity) {
    // Journal overflow is otherwise silent; surfacing the drop count as
    // a registry instrument puts it in every exporter snapshot line and
    // every flight record.  Registered first so it precedes all
    // component instruments in registration order.
    registry_.register_callback("journal.dropped_events", this,
                                [this] { return static_cast<double>(journal_.dropped()); });
  }
  ~Telemetry() { registry_.detach(this); }

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  StageTracer& tracer() { return tracer_; }
  const StageTracer& tracer() const { return tracer_; }
  EventJournal& journal() { return journal_; }
  const EventJournal& journal() const { return journal_; }
  ExemplarRing& exemplars() { return exemplars_; }
  const ExemplarRing& exemplars() const { return exemplars_; }
  HeartbeatRegistry& heartbeats() { return heartbeats_; }
  const HeartbeatRegistry& heartbeats() const { return heartbeats_; }

  /// Escalation channel.  trip() records the reason (bounded history)
  /// and invokes the handler — the FlightRecorder's dump — UNDER the
  /// trip mutex, so a handler owner that clears itself in its
  /// destructor (clear_trip_handler below) can never be destroyed
  /// mid-invocation.  The mutex is recursive because the handler reads
  /// back through this API (a flight record includes trips()); only
  /// same-thread re-entry is allowed, the cross-thread destructor
  /// guarantee is unchanged.
  void trip(const std::string& reason) {
    std::lock_guard lock(trip_mutex_);
    if (trips_.size() >= kMaxTrips) trips_.erase(trips_.begin());
    trips_.push_back(TripRecord{StageTracer::now_ns(), reason});
    if (trip_handler_) trip_handler_(reason);
  }
  void set_trip_handler(std::function<void(const std::string&)> handler) {
    std::lock_guard lock(trip_mutex_);
    trip_handler_ = std::move(handler);
  }
  void clear_trip_handler() {
    std::lock_guard lock(trip_mutex_);
    trip_handler_ = nullptr;
  }
  std::vector<TripRecord> trips() const {
    std::lock_guard lock(trip_mutex_);
    return trips_;
  }

 private:
  static constexpr std::size_t kMaxTrips = 64;

  MetricsRegistry registry_;
  StageTracer tracer_;
  EventJournal journal_;
  ExemplarRing exemplars_;
  HeartbeatRegistry heartbeats_;

  mutable std::recursive_mutex trip_mutex_;
  std::function<void(const std::string&)> trip_handler_;
  std::vector<TripRecord> trips_;
};

}  // namespace hyscale
