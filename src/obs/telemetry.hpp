// The telemetry bundle every subsystem wires against: one registry,
// one tracer, one journal.
//
// Ownership: the application (bench binary, CLI, test) declares a
// Telemetry before building the serving/streaming session and hands a
// raw pointer down through the config structs (ServingConfig.telemetry,
// StreamingConfig.telemetry, ...).  A null pointer everywhere means
// telemetry off — instruments are never consulted and spans cost one
// branch — so the hot path pays nothing by default.
//
// Components that register snapshot-time callbacks against the
// registry must registry.detach(this) in their destructor; see
// obs/metrics.hpp.
#pragma once

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hyscale {

struct TelemetryConfig {
  bool tracing = true;                 ///< allocate + fill trace rings
  std::size_t trace_ring_capacity = 4096;  ///< spans retained per thread
  std::size_t trace_max_threads = 64;
  std::size_t journal_capacity = 1024;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {})
      : tracer_(config.tracing, config.trace_ring_capacity, config.trace_max_threads),
        journal_(config.journal_capacity) {}

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  StageTracer& tracer() { return tracer_; }
  const StageTracer& tracer() const { return tracer_; }
  EventJournal& journal() { return journal_; }
  const EventJournal& journal() const { return journal_; }

 private:
  MetricsRegistry registry_;
  StageTracer tracer_;
  EventJournal journal_;
};

}  // namespace hyscale
