// Unified metrics plane: named counters, gauges, and fixed-bucket
// histograms behind one registry, so every subsystem reports through a
// single substrate instead of inventing its own stats struct.
//
// Design constraints, in order:
//   1. The hot path (per-request, per-edge) must afford an increment:
//      counters are sharded across cache-line-padded atomic cells and a
//      thread picks its shard once (thread-local), so concurrent
//      workers never bounce a line.  Mirrors the fixed-layout
//      shared-memory control blocks of the IPS substrate this repo's
//      perf model is calibrated against: all telemetry storage is
//      allocated at registration time, never on the record path.
//   2. Snapshots are deterministic: instruments are reported in
//      registration order, and registration order is fixed by wiring
//      (constructors run in a defined order), so two runs of the same
//      binary produce field-for-field comparable snapshots.
//   3. Readers never block writers: snapshot() sums shards with relaxed
//      loads; it is a point-in-time view, not a linearizable one, which
//      is all a periodic exporter or a bench record needs.
//
// Callback gauges (register_callback) pull a value from a component at
// snapshot time — overlay size, live tombstones — and MUST be detached
// (detach(owner)) before the component dies; detach evaluates the
// callback one last time and freezes that value so late exporters see
// the final state instead of a dangling pointer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace hyscale {

/// Monotone event count.  add() is wait-free after the first call on a
/// thread; value() is a relaxed sum across shards.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::int64_t n = 1) {
    shards_[shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    std::int64_t total = 0;
    for (const auto& shard : shards_) total += shard.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> value{0};
  };
  static std::size_t shard_index();
  Shard shards_[kShards];
};

/// Last-writer-wins scalar (queue depth, current version id).  set_max
/// keeps a high-water mark without a lock.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void set_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void add(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed exponential-bucket histogram.  Bucket bounds are identical for
/// every histogram (milliseconds, ~15% growth per bucket from 1 µs to
/// ~60 s), so recording is a binary search into a shared bounds table
/// plus one relaxed fetch_add — no allocation, no lock, bounded memory.
class Histogram {
 public:
  /// Buckets below the table plus one overflow bucket.
  static constexpr std::size_t kBuckets = 128;

  /// Shared bucket upper bounds in milliseconds; bucket i covers
  /// (bounds[i-1], bounds[i]], bucket kBuckets catches the overflow.
  static const std::vector<double>& bucket_bounds_ms();

  void observe_ms(double ms);
  /// Convenience for the Seconds vocabulary used across the repo.
  void observe_seconds(double s) { observe_ms(s * 1e3); }

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum_ms() const { return sum_ms_.load(std::memory_order_relaxed); }
  double max_ms() const { return max_ms_.load(std::memory_order_relaxed); }
  std::int64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> buckets_[kBuckets + 1] = {};
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_ms_{0.0};
  std::atomic<double> max_ms_{0.0};
};

/// Point-in-time copy of every instrument, in registration order.
class MetricsSnapshot {
 public:
  struct HistogramView {
    std::string name;
    std::vector<std::int64_t> buckets;  ///< kBuckets + 1 counts
    std::int64_t count = 0;
    double sum_ms = 0.0;
    double max_ms = 0.0;

    double mean_ms() const { return count ? sum_ms / static_cast<double>(count) : 0.0; }
    /// Interpolated percentile estimate (q in [0,1]) from the bucket
    /// cumulative counts; exact max is substituted at the top bucket so
    /// p100 never over-reports.
    double percentile_ms(double q) const;
  };

  /// Scalar instruments (counters as exact integers widened to double,
  /// gauges verbatim, detached callbacks frozen) in registration order.
  const std::vector<std::pair<std::string, double>>& scalars() const { return scalars_; }
  const std::vector<HistogramView>& histograms() const { return histograms_; }

  bool has(const std::string& name) const { return index_.count(name) != 0; }
  /// Value of a scalar instrument; throws std::out_of_range on a name
  /// that was never registered — benches want typos loud, not zero.
  double value(const std::string& name) const;
  /// Histogram lookup by name; nullptr when absent.
  const HistogramView* histogram(const std::string& name) const;
  /// percentile_ms shorthand; throws on an unknown histogram.
  double percentile_ms(const std::string& name, double q) const;

 private:
  friend class MetricsRegistry;
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<HistogramView> histograms_;
  std::unordered_map<std::string, std::size_t> index_;       ///< into scalars_
  std::unordered_map<std::string, std::size_t> hist_index_;  ///< into histograms_
};

class MetricsRegistry {
 public:
  /// Look up or create an instrument.  References stay valid for the
  /// registry's lifetime (instruments live in deques); callers cache
  /// the reference and never pay the lock again.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// A gauge whose value is pulled from `fn` at snapshot time.  `owner`
  /// keys detachment: detach(owner) evaluates each of that owner's
  /// callbacks once more and freezes the result, after which `fn` is
  /// never called again.  Components register in their constructor and
  /// detach in their destructor.
  void register_callback(const std::string& name, const void* owner,
                         std::function<double()> fn);
  void detach(const void* owner);

  MetricsSnapshot snapshot() const;

 private:
  struct Entry {
    enum class Kind { kCounter, kGauge, kHistogram, kCallback } kind;
    std::string name;
    std::size_t index;  ///< into the deque/vector for `kind`
  };
  struct Callback {
    const void* owner;
    std::function<double()> fn;  ///< empty once detached
    double frozen = 0.0;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;          ///< registration order
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::deque<Callback> callbacks_;
  std::unordered_map<std::string, std::size_t> by_name_;  ///< into entries_
};

}  // namespace hyscale
