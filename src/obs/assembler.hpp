// Per-request critical-path reconstruction + tail exemplars.
//
// The StageTracer records flat spans: one kQueue span per request
// (context = batch id, aux = request id, begin = enqueue, end = worker
// pickup) and one kSample/kGather/kForward/kReply span per micro-batch
// (context = batch id).  The TraceAssembler joins them back into
// per-request RequestTraces — which stage ate the time between a
// request's enqueue and its reply — so "p99 doubled" has an answer in
// milliseconds per stage, not just a number.
//
// The ExemplarRing retains the full assembled trace of the slowest N
// requests seen so far.  Admission is by latency threshold: once the
// ring is full, the threshold is the total latency of the fastest
// retained exemplar, read with one relaxed atomic load on the offer
// fast path — requests below it never take the lock, so the hot path
// pays one load + one compare per request in the common case.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "obs/trace.hpp"

namespace hyscale {

/// One stage's slice of a request's critical path.  `present` is false
/// when the span was overwritten in the tracer ring before collection.
struct StageSpanView {
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
  bool present = false;

  double ms() const { return present ? static_cast<double>(end_ns - begin_ns) * 1e-6 : 0.0; }
};

/// A request's reconstructed end-to-end critical path.  Queue is
/// per-request (enqueue -> pickup); sample/gather/forward/reply are the
/// serving micro-batch's stages — the request waited on all of them, so
/// they ARE its critical path (attribution, not exclusive blame).
struct RequestTrace {
  std::uint64_t request_id = 0;
  std::uint64_t batch_id = 0;
  std::int64_t enqueue_ns = 0;
  std::int64_t done_ns = 0;  ///< end of the batch's reply span

  StageSpanView queue;
  StageSpanView sample;
  StageSpanView gather;
  StageSpanView forward;
  StageSpanView reply;

  std::int64_t batch_requests = 0;  ///< requests coalesced into the batch
  std::int64_t batch_seeds = 0;     ///< seeds across the batch

  /// All five stages recovered from the rings.
  bool complete() const {
    return queue.present && sample.present && gather.present && forward.present &&
           reply.present;
  }
  /// Enqueue -> reply-done wall time.
  double total_ms() const { return static_cast<double>(done_ns - enqueue_ns) * 1e-6; }
  std::int64_t total_ns() const { return done_ns - enqueue_ns; }
  const StageSpanView& stage(TraceStage s) const;
};

/// Reconstructs RequestTraces from a flat StageTracer::collect() dump.
/// Spans may arrive unordered and partially overwritten; a request
/// whose kQueue span survived is always reported (batch stages marked
/// absent when lost).
class TraceAssembler {
 public:
  explicit TraceAssembler(std::vector<TraceRecord> records);

  /// Every reconstructable request, sorted by request id.
  std::vector<RequestTrace> assemble() const;
  /// One request's trace, or nullopt when its queue span was lost.
  std::optional<RequestTrace> request(std::uint64_t request_id) const;

 private:
  RequestTrace build(const TraceRecord& queue_record) const;

  std::vector<TraceRecord> records_;
};

/// Fixed-size ring of the slowest requests' full traces.  offer() is
/// called once per completed request from the serving workers; readers
/// (flight recorder, tests) take the lock.
class ExemplarRing {
 public:
  explicit ExemplarRing(std::size_t capacity = 16) : capacity_(capacity) {}

  /// Admits `trace` when the ring has room or the trace is slower than
  /// the fastest retained exemplar (which it evicts).  Returns true on
  /// admission.
  bool offer(const RequestTrace& trace);

  /// Retained exemplars, slowest first.
  std::vector<RequestTrace> slowest() const;

  std::size_t capacity() const { return capacity_; }
  std::int64_t offered() const { return offered_.load(std::memory_order_relaxed); }
  std::int64_t admitted() const { return admitted_.load(std::memory_order_relaxed); }
  /// Current admission threshold in ns (0 until the ring fills).
  std::int64_t threshold_ns() const { return threshold_ns_.load(std::memory_order_relaxed); }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<RequestTrace> traces_;
  std::atomic<std::int64_t> threshold_ns_{0};
  std::atomic<std::int64_t> offered_{0};
  std::atomic<std::int64_t> admitted_{0};
};

}  // namespace hyscale
