#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hyscale {

std::size_t Counter::shard_index() {
  // One shard per thread, assigned round-robin on first use; 16 shards
  // cover the worker counts this stack runs (benches top out at 4-8
  // threads), and a collision only costs a shared line, not wrongness.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return mine;
}

const std::vector<double>& Histogram::bucket_bounds_ms() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b(kBuckets);
    // 1 µs growing ~15% per bucket; bucket 127 lands near 55 s, which
    // caps anything this stack times (publish costs, request latency).
    double bound = 1e-3;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      b[i] = bound;
      bound *= 1.15;
    }
    return b;
  }();
  return bounds;
}

void Histogram::observe_ms(double ms) {
  if (!(ms >= 0.0)) ms = 0.0;  // NaN / negative guards collapse to zero
  const auto& bounds = bucket_bounds_ms();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), ms);
  const std::size_t idx = static_cast<std::size_t>(it - bounds.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_ms_.load(std::memory_order_relaxed);
  while (!sum_ms_.compare_exchange_weak(cur, cur + ms, std::memory_order_relaxed)) {
  }
  cur = max_ms_.load(std::memory_order_relaxed);
  while (ms > cur &&
         !max_ms_.compare_exchange_weak(cur, ms, std::memory_order_relaxed)) {
  }
}

double MetricsSnapshot::HistogramView::percentile_ms(double q) const {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank target over the cumulative bucket counts, matching the
  // 1-based convention ServingStats pins in its tests.
  const std::int64_t rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(q * static_cast<double>(count))));
  const auto& bounds = Histogram::bucket_bounds_ms();
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const std::int64_t next = cumulative + buckets[i];
    if (rank <= next) {
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      // The overflow bucket has no table bound and the bucket holding
      // the largest sample need not be full-width: cap the interpolation
      // ceiling by the exact max so p100 never over-reports.
      double upper = i < bounds.size() ? bounds[i] : max_ms;
      if (max_ms > lower && max_ms < upper) upper = max_ms;
      const double frac = static_cast<double>(rank - cumulative) /
                          static_cast<double>(buckets[i]);
      return lower + (upper - lower) * frac;
    }
    cumulative = next;
  }
  return max_ms;
}

double MetricsSnapshot::value(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end())
    throw std::out_of_range("MetricsSnapshot: no scalar instrument '" + name + "'");
  return scalars_[it->second].second;
}

const MetricsSnapshot::HistogramView* MetricsSnapshot::histogram(
    const std::string& name) const {
  const auto it = hist_index_.find(name);
  return it == hist_index_.end() ? nullptr : &histograms_[it->second];
}

double MetricsSnapshot::percentile_ms(const std::string& name, double q) const {
  const HistogramView* view = histogram(name);
  if (view == nullptr)
    throw std::out_of_range("MetricsSnapshot: no histogram '" + name + "'");
  return view->percentile_ms(q);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    const Entry& entry = entries_[it->second];
    if (entry.kind != Entry::Kind::kCounter)
      throw std::invalid_argument("MetricsRegistry: '" + name + "' is not a counter");
    return counters_[entry.index];
  }
  counters_.emplace_back();
  by_name_.emplace(name, entries_.size());
  entries_.push_back({Entry::Kind::kCounter, name, counters_.size() - 1});
  return counters_.back();
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    const Entry& entry = entries_[it->second];
    if (entry.kind != Entry::Kind::kGauge)
      throw std::invalid_argument("MetricsRegistry: '" + name + "' is not a gauge");
    return gauges_[entry.index];
  }
  gauges_.emplace_back();
  by_name_.emplace(name, entries_.size());
  entries_.push_back({Entry::Kind::kGauge, name, gauges_.size() - 1});
  return gauges_.back();
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    const Entry& entry = entries_[it->second];
    if (entry.kind != Entry::Kind::kHistogram)
      throw std::invalid_argument("MetricsRegistry: '" + name + "' is not a histogram");
    return histograms_[entry.index];
  }
  histograms_.emplace_back();
  by_name_.emplace(name, entries_.size());
  entries_.push_back({Entry::Kind::kHistogram, name, histograms_.size() - 1});
  return histograms_.back();
}

void MetricsRegistry::register_callback(const std::string& name, const void* owner,
                                        std::function<double()> fn) {
  std::lock_guard lock(mutex_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    const Entry& entry = entries_[it->second];
    if (entry.kind != Entry::Kind::kCallback)
      throw std::invalid_argument("MetricsRegistry: '" + name + "' is not a callback gauge");
    // Re-registration (a component recreated under the same registry)
    // takes the slot over, keeping the original snapshot position.
    callbacks_[entry.index] = Callback{owner, std::move(fn), 0.0};
    return;
  }
  callbacks_.push_back(Callback{owner, std::move(fn), 0.0});
  by_name_.emplace(name, entries_.size());
  entries_.push_back({Entry::Kind::kCallback, name, callbacks_.size() - 1});
}

void MetricsRegistry::detach(const void* owner) {
  std::lock_guard lock(mutex_);
  for (auto& cb : callbacks_) {
    if (cb.owner != owner || !cb.fn) continue;
    cb.frozen = cb.fn();
    cb.fn = nullptr;
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  for (const Entry& entry : entries_) {
    switch (entry.kind) {
      case Entry::Kind::kCounter:
        snap.index_.emplace(entry.name, snap.scalars_.size());
        snap.scalars_.emplace_back(
            entry.name, static_cast<double>(counters_[entry.index].value()));
        break;
      case Entry::Kind::kGauge:
        snap.index_.emplace(entry.name, snap.scalars_.size());
        snap.scalars_.emplace_back(entry.name, gauges_[entry.index].value());
        break;
      case Entry::Kind::kCallback: {
        const Callback& cb = callbacks_[entry.index];
        snap.index_.emplace(entry.name, snap.scalars_.size());
        snap.scalars_.emplace_back(entry.name, cb.fn ? cb.fn() : cb.frozen);
        break;
      }
      case Entry::Kind::kHistogram: {
        const Histogram& h = histograms_[entry.index];
        MetricsSnapshot::HistogramView view;
        view.name = entry.name;
        view.buckets.resize(Histogram::kBuckets + 1);
        for (std::size_t i = 0; i <= Histogram::kBuckets; ++i)
          view.buckets[i] = h.bucket(i);
        view.sum_ms = h.sum_ms();
        view.max_ms = h.max_ms();
        // Derive the count from the copied buckets rather than the live
        // count_ so the view is internally consistent even if an
        // observe lands mid-copy.
        view.count = 0;
        for (const std::int64_t c : view.buckets) view.count += c;
        snap.hist_index_.emplace(entry.name, snap.histograms_.size());
        snap.histograms_.push_back(std::move(view));
        break;
      }
    }
  }
  return snap;
}

}  // namespace hyscale
