#include "obs/journal.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/telemetry.hpp"

namespace hyscale {

void EventJournal::log(std::string kind, std::string detail) {
  std::lock_guard lock(mutex_);
  if (events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(JournalEvent{StageTracer::now_ns(), std::move(kind), std::move(detail)});
}

std::vector<JournalEvent> EventJournal::drain() {
  std::lock_guard lock(mutex_);
  std::vector<JournalEvent> out(events_.begin(), events_.end());
  events_.clear();
  return out;
}

std::vector<JournalEvent> EventJournal::events() const {
  std::lock_guard lock(mutex_);
  return std::vector<JournalEvent>(events_.begin(), events_.end());
}

std::int64_t EventJournal::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// JSON has no inf/nan; non-finite values (an empty histogram's mean)
// export as 0 so every line stays loadable.
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

void append_int(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

}  // namespace

TelemetryExporter::TelemetryExporter(Telemetry& telemetry, ExporterConfig config)
    : telemetry_(telemetry), config_(std::move(config)) {
  if (config_.path.empty()) {
    file_ = stderr;
  } else {
    file_ = std::fopen(config_.path.c_str(), "w");
    if (file_ == nullptr)
      throw std::runtime_error("TelemetryExporter: cannot open " + config_.path);
    owns_file_ = true;
  }
  if (config_.interval_ms > 0) {
    heart_ = &telemetry_.heartbeats().register_thread(
        "obs.exporter", static_cast<std::int64_t>(config_.interval_ms) * 1'000'000);
    thread_ = std::thread([this] { loop(); });
  }
}

TelemetryExporter::~TelemetryExporter() { stop(); }

void TelemetryExporter::stop() {
  {
    std::lock_guard lock(wake_mutex_);
    if (stopped_) return;
    stop_requested_ = true;
    stopped_ = true;
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  flush("final");
  if (owns_file_ && file_ != nullptr) {
    std::fclose(static_cast<std::FILE*>(file_));
    file_ = nullptr;
  }
}

void TelemetryExporter::loop() {
  std::unique_lock lock(wake_mutex_);
  while (!stop_requested_) {
    if (heart_ != nullptr) heart_->idle_enter();
    wake_cv_.wait_for(lock, std::chrono::milliseconds(config_.interval_ms),
                      [this] { return stop_requested_; });
    if (heart_ != nullptr) heart_->idle_exit();
    if (stop_requested_) break;
    lock.unlock();
    flush("periodic");
    if (heart_ != nullptr) heart_->beat();
    lock.lock();
  }
  if (heart_ != nullptr) heart_->retire();
}

void TelemetryExporter::flush(const std::string& reason) {
  // Events first so a reader replaying the stream sees causes before
  // the snapshot that aggregates them.
  for (const JournalEvent& event : telemetry_.journal().drain())
    write_line(event_line(event));
  write_line(snapshot_line(reason));
}

void TelemetryExporter::write_line(const std::string& line) {
  std::lock_guard lock(io_mutex_);
  if (file_ == nullptr) return;
  std::FILE* f = static_cast<std::FILE*>(file_);
  std::fwrite(line.data(), 1, line.size(), f);
  std::fputc('\n', f);
  std::fflush(f);
  ++lines_;
}

std::int64_t TelemetryExporter::lines_written() const {
  std::lock_guard lock(io_mutex_);
  return lines_;
}

std::string TelemetryExporter::event_line(const JournalEvent& event) {
  std::string out = "{\"type\":\"event\",\"t_ns\":";
  append_int(out, event.t_ns);
  out += ",\"kind\":\"";
  out += json_escape(event.kind);
  out += "\",\"detail\":\"";
  out += json_escape(event.detail);
  out += "\"}";
  return out;
}

std::string TelemetryExporter::snapshot_line(const std::string& reason) {
  const MetricsSnapshot snap = telemetry_.registry().snapshot();
  std::string out = "{\"type\":\"snapshot\",\"reason\":\"";
  out += json_escape(reason);
  out += "\",\"t_ns\":";
  append_int(out, StageTracer::now_ns());
  out += ",\"metrics\":{";
  bool first = true;
  for (const auto& [name, value] : snap.scalars()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":";
    append_number(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& view : snap.histograms()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(view.name);
    out += "\":{\"count\":";
    append_int(out, view.count);
    out += ",\"mean_ms\":";
    append_number(out, view.mean_ms());
    out += ",\"p50_ms\":";
    append_number(out, view.percentile_ms(0.50));
    out += ",\"p95_ms\":";
    append_number(out, view.percentile_ms(0.95));
    out += ",\"p99_ms\":";
    append_number(out, view.percentile_ms(0.99));
    out += ",\"max_ms\":";
    append_number(out, view.max_ms);
    out += '}';
  }
  out += "},\"trace\":{\"recorded\":";
  append_int(out, telemetry_.tracer().recorded());
  out += ",\"retained\":";
  append_int(out, static_cast<std::int64_t>(telemetry_.tracer().collect().size()));
  out += ",\"dropped\":";
  append_int(out, telemetry_.tracer().dropped());
  out += ",\"journal_dropped\":";
  append_int(out, telemetry_.journal().dropped());
  out += "}}";
  return out;
}

}  // namespace hyscale
