// SLO flight recorder: one-file post-mortem bundles.
//
// On a trip (watchdog stall, publisher SLO breach, explicit call) or at
// teardown, dump() writes a single JSON object capturing the state an
// operator needs to diagnose the episode after the fact:
//   * the trip history and the reason for THIS dump,
//   * a full registry snapshot (scalars + histogram summaries),
//   * the journal's retained events (non-consuming — the exporter's
//     periodic drain still sees them) and the journal drop count,
//   * per-thread heartbeat ages (who was busy, who was idle, who had
//     stopped beating),
//   * the exemplar ring's slowest-request traces with per-stage
//     latency attribution,
//   * tracer occupancy (recorded / retained / dropped spans).
//
// The recorder registers itself as the Telemetry trip handler at
// construction; trips are rate-limited (min_dump_gap_ns) so a breach
// storm costs one file write per window, not one per breach.  The
// destructor writes a final `teardown` dump (ignoring the rate limit)
// and unregisters — under the same trip mutex the handler runs under,
// so a trip can never race the recorder's destruction.
//
// The file at `path` is OVERWRITTEN on every dump: the latest record
// wins, and a crash between dumps still leaves the previous complete
// bundle on disk (write is to the final path via one buffered stream,
// closed before dump() returns).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace hyscale {

class Telemetry;

struct FlightRecorderConfig {
  std::string path;                    ///< output file; "-" = stderr, empty disables dumps
  std::size_t max_journal_events = 256;  ///< newest events included per dump
  std::size_t max_exemplars = 8;       ///< slowest traces included per dump
  bool dump_on_teardown = true;
  std::int64_t min_dump_gap_ns = 100'000'000;  ///< trip rate limit (100 ms)
};

class FlightRecorder {
 public:
  /// `telemetry` must outlive the recorder.  Installs itself as the
  /// trip handler (replacing any previous one).
  FlightRecorder(Telemetry& telemetry, FlightRecorderConfig config);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Explicit dump; returns false when the path is empty or the file
  /// cannot be written.  Not rate-limited.
  bool dump(const std::string& reason);

  std::int64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }
  /// Trips skipped by the rate limiter.
  std::int64_t suppressed() const { return suppressed_.load(std::memory_order_relaxed); }
  const std::string& path() const { return config_.path; }

 private:
  void on_trip(const std::string& reason);
  std::string render(const std::string& reason) const;

  Telemetry& telemetry_;
  FlightRecorderConfig config_;
  mutable std::mutex io_mutex_;  ///< explicit dump() can race a trip dump
  std::atomic<std::int64_t> dumps_{0};
  std::atomic<std::int64_t> suppressed_{0};
  std::atomic<std::int64_t> last_dump_ns_{0};
};

}  // namespace hyscale
