// Hot-path stage tracer: lock-free per-thread ring buffers of spans.
//
// A span is one stage of work — a request's queue wait, a batch's
// sample/gather/forward, a fold's CUT/BUILD/REBASE — stamped with
// steady-clock nanoseconds and a correlation context (batch id, version
// id) so collect() can reconstruct a request's critical path or a
// publish's phase breakdown after the fact.
//
// Memory is bounded by construction: each writer thread owns one
// fixed-size ring (single writer per slot), old records are overwritten
// in place, and threads beyond the slot budget count drops instead of
// allocating.  Records use a per-record seqlock (odd = write in
// flight) over all-atomic relaxed fields, so a concurrent collect()
// either reads a consistent record or skips it — no locks touch the
// record path and the scheme is clean under ThreadSanitizer.
//
// `TraceStage` (not `Stage`) because runtime/stage_times.hpp already
// claims `Stage` for the training pipeline's stage clock.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hyscale {

enum class TraceStage : std::uint8_t {
  kQueue = 0,    ///< request enqueue -> worker pickup
  kSample,       ///< neighbourhood sampling for a batch
  kGather,       ///< feature gather (cache or store)
  kForward,      ///< model forward
  kReply,        ///< scatter results + completion accounting
  kPublish,      ///< StreamingGraph::publish snapshot section
  kCut,          ///< fold phase 1: cut the op log under the lock
  kBuild,        ///< fold phase 2: rebuild base off-lock
  kRebase,       ///< fold phase 3: swap + rebase under the lock
  kAnnihilate,   ///< in-place insert/tombstone pair GC
  kTtlSweep,     ///< ExpirySweeper retirement pass
  kAdopt,        ///< cross-shard cut adoption (version-vector swap + halo refresh)
};

const char* trace_stage_name(TraceStage stage);

/// One completed span.  `context` correlates spans of the same unit of
/// work (batch id for request stages, version/epoch for lifecycle
/// stages); `aux` carries a stage-specific extra (request id, op count).
struct TraceRecord {
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
  std::uint64_t context = 0;
  std::uint64_t aux = 0;
  TraceStage stage = TraceStage::kQueue;
};

class StageTracer {
 public:
  /// `ring_capacity` records per writer thread, `max_threads` writer
  /// slots; both fix total memory at construction.  A disabled tracer
  /// (enabled = false) makes record() a single branch.
  explicit StageTracer(bool enabled = true, std::size_t ring_capacity = 4096,
                       std::size_t max_threads = 64);

  bool enabled() const { return enabled_; }

  /// Steady-clock nanoseconds; the one clock every span shares.
  static std::int64_t now_ns();

  void record(TraceStage stage, std::uint64_t context, std::uint64_t aux,
              std::int64_t begin_ns, std::int64_t end_ns);

  /// Seqlock-consistent copy of every retained record, unordered.
  std::vector<TraceRecord> collect() const;
  /// Records for one correlation context, sorted by begin_ns — the
  /// reconstructed critical path of that batch/publish/fold.
  std::vector<TraceRecord> context_path(std::uint64_t context) const;

  /// Spans discarded because the writer-slot budget was exhausted.
  std::int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  /// Spans ever recorded (retained or since overwritten).
  std::int64_t recorded() const { return recorded_.load(std::memory_order_relaxed); }

  /// RAII span: stamps begin at construction, records at destruction.
  /// No-op (not even a clock read) when the tracer is null or disabled.
  class Scope {
   public:
    Scope(StageTracer* tracer, TraceStage stage, std::uint64_t context,
          std::uint64_t aux = 0)
        : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
          stage_(stage), context_(context), aux_(aux),
          begin_ns_(tracer_ != nullptr ? now_ns() : 0) {}
    ~Scope() {
      if (tracer_ != nullptr)
        tracer_->record(stage_, context_, aux_, begin_ns_, now_ns());
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    StageTracer* tracer_;
    TraceStage stage_;
    std::uint64_t context_;
    std::uint64_t aux_;
    std::int64_t begin_ns_;
  };

 private:
  // Per-record seqlock: seq odd while a write is in flight.  All fields
  // are atomics accessed relaxed; the fences in record()/collect() give
  // the read its consistency.
  struct Cell {
    std::atomic<std::uint32_t> seq{0};
    std::atomic<std::int64_t> begin_ns{0};
    std::atomic<std::int64_t> end_ns{0};
    std::atomic<std::uint64_t> context{0};
    std::atomic<std::uint64_t> aux{0};
    std::atomic<std::uint8_t> stage{0};
  };
  struct alignas(64) Ring {
    std::unique_ptr<Cell[]> cells;
    std::atomic<std::uint64_t> head{0};  ///< next write index (monotone)
  };

  std::size_t slot_index() const;

  bool enabled_;
  std::size_t capacity_;
  std::size_t max_threads_;
  std::vector<Ring> rings_;
  mutable std::atomic<std::uint64_t> id_{0};  ///< process-unique, lazily stamped
  mutable std::atomic<std::size_t> next_slot_{0};
  std::atomic<std::int64_t> dropped_{0};
  std::atomic<std::int64_t> recorded_{0};
};

}  // namespace hyscale
