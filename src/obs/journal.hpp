// Lifecycle event journal + JSON-lines exporter.
//
// The journal is a bounded ring of discrete lifecycle events (version
// published, fold completed, SLO breach, TTL sweep) that the exporter
// drains into JSON lines.  The exporter runs an optional periodic
// thread — each tick emits one `snapshot` line (every registry
// instrument plus a trace summary) and one `event` line per journal
// entry since the last tick — and always writes a final `snapshot`
// line with reason "final" when stopped, so even a crash-adjacent run
// leaves a parseable record of its last state.
//
// Output is strictly one JSON object per line (JSON-lines), to a file
// or stderr; CI parses it back with `json.loads` per line.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace hyscale {

class Telemetry;
class Heartbeat;

/// One discrete lifecycle occurrence.  `detail` is free text (it is
/// JSON-escaped on export, so any content is safe).
struct JournalEvent {
  std::int64_t t_ns = 0;  ///< StageTracer::now_ns() at log time
  std::string kind;       ///< e.g. "publish", "fold", "slo_breach"
  std::string detail;
};

/// Mutex-guarded bounded ring of events; oldest entries are dropped
/// once `capacity` is reached (the drop count is retained).
class EventJournal {
 public:
  explicit EventJournal(std::size_t capacity = 1024) : capacity_(capacity) {}

  void log(std::string kind, std::string detail);

  /// Removes and returns every retained event (exporter ticks).
  std::vector<JournalEvent> drain();
  /// Copy without consuming (tests, end-of-run summaries).
  std::vector<JournalEvent> events() const;
  std::int64_t dropped() const;

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::deque<JournalEvent> events_;
  std::int64_t dropped_ = 0;
};

/// Minimal JSON string escaping for exporter output.
std::string json_escape(const std::string& raw);

struct ExporterConfig {
  std::string path;        ///< output file; empty = stderr
  int interval_ms = 0;     ///< 0 = no periodic thread, final dump only
};

class TelemetryExporter {
 public:
  /// `telemetry` must outlive the exporter.  Throws std::runtime_error
  /// if `config.path` cannot be opened.
  TelemetryExporter(Telemetry& telemetry, ExporterConfig config);
  ~TelemetryExporter();  ///< stops the thread and writes the final dump

  /// Emits pending event lines plus one snapshot line tagged `reason`.
  void flush(const std::string& reason);
  /// Stops the periodic thread and writes the "final" snapshot; safe to
  /// call more than once (the destructor calls it too).
  void stop();

  std::int64_t lines_written() const;

 private:
  void loop();
  void write_line(const std::string& line);
  std::string snapshot_line(const std::string& reason);
  std::string event_line(const JournalEvent& event);

  Telemetry& telemetry_;
  ExporterConfig config_;
  Heartbeat* heart_ = nullptr;  ///< liveness stamp for the periodic thread
  mutable std::mutex io_mutex_;
  void* file_ = nullptr;  ///< FILE*; stderr when config_.path is empty
  bool owns_file_ = false;
  std::int64_t lines_ = 0;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace hyscale
