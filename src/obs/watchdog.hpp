// Liveness watchdog: heartbeat registry + missed-beat stall detection.
//
// Every background thread (serving workers, Compactor, Publisher,
// ExpirySweeper, TelemetryExporter, load-generator clients) registers a
// Heartbeat and stamps it on every unit of work.  Threads that block
// legitimately — a worker parked on an empty queue, a publisher asleep
// between deadlines — bracket the blocking section with idle_enter() /
// idle_exit(), so the watchdog only judges hearts that claim to be
// BUSY.  A busy heart whose last beat is older than its stall
// threshold is a wedged thread: a fold parked mid-BUILD, a publish
// stuck on the rebase endpoint, a worker deadlocked in gather.
//
// False-positive calibration: a heart is flagged only when
//   age > max(min_stall, stall_multiplier x interval_hint)
// where interval_hint is the longest gap the thread expects between
// beats while busy.  With the defaults (250 ms floor, 8x multiplier)
// the bound is at least an order of magnitude above the worst
// scheduler wakeup lateness observed on the 1-core bench host (~10+ ms
// tails, see bench_streaming's SLO budget note), so a healthy run
// never trips — asserted over a multi-second session in
// test_diagnosis.  Detection latency for a real stall is threshold +
// one check interval.
//
// On a stall transition the watchdog bumps the `watchdog.stalls`
// counter, journals a `watchdog_stall` event, and calls
// Telemetry::trip() — which the FlightRecorder turns into a post-mortem
// dump.  Recovery (the heart beats again) is journaled too, and the
// same heart can trip again on a later episode.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

namespace hyscale {

class Telemetry;

/// One background thread's liveness stamp.  All stores are seq_cst so
/// the watchdog can never observe busy + a pre-block beat: idle_exit()
/// beats BEFORE clearing the idle flag.
class Heartbeat {
 public:
  void beat();
  /// About to block legitimately (queue wait, timed sleep).
  void idle_enter();
  /// Back from the block; beats first so a sampling watchdog sees
  /// either idle or a fresh stamp, never busy + stale.
  void idle_exit();
  /// Thread exiting for good; the watchdog skips retired hearts.
  void retire() { retired_.store(true); }

  const std::string& name() const { return name_; }
  std::int64_t last_beat_ns() const { return last_beat_ns_.load(); }
  std::int64_t interval_hint_ns() const { return interval_hint_ns_; }
  std::int64_t beats() const { return beats_.load(std::memory_order_relaxed); }
  bool idle() const { return idle_.load(); }
  bool retired() const { return retired_.load(); }

  /// Construct through HeartbeatRegistry::register_thread (public only
  /// because deque::emplace_back cannot reach a private constructor).
  Heartbeat(std::string name, std::int64_t interval_hint_ns)
      : name_(std::move(name)), interval_hint_ns_(interval_hint_ns) {}
  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

 private:
  std::string name_;
  std::int64_t interval_hint_ns_;
  std::atomic<std::int64_t> last_beat_ns_{0};
  std::atomic<std::int64_t> beats_{0};
  std::atomic<bool> idle_{false};
  std::atomic<bool> retired_{false};
};

class HeartbeatRegistry {
 public:
  /// Registers a heart; the reference stays valid for the registry's
  /// lifetime (hearts live in a deque and are never removed — a dead
  /// thread retires its heart instead).  `interval_hint_ns` is the
  /// longest beat-to-beat gap the thread expects while busy.
  Heartbeat& register_thread(std::string name, std::int64_t interval_hint_ns);

  struct View {
    std::string name;
    std::int64_t last_beat_ns = 0;
    std::int64_t interval_hint_ns = 0;
    std::int64_t beats = 0;
    bool idle = false;
    bool retired = false;
  };
  std::vector<View> views() const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::deque<Heartbeat> hearts_;
};

struct WatchdogConfig {
  std::int64_t check_interval_ns = 20'000'000;  ///< 20 ms between sweeps
  double stall_multiplier = 8.0;  ///< threshold = multiplier x interval_hint
  std::int64_t min_stall_ns = 250'000'000;  ///< 250 ms floor under the threshold
};

class Watchdog {
 public:
  /// `telemetry` must outlive the watchdog; the thread starts
  /// immediately and sweeps telemetry.heartbeats() every
  /// check_interval.
  explicit Watchdog(Telemetry& telemetry, WatchdogConfig config = {});
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void stop();
  /// Stall episodes detected so far (transitions into stalled, not
  /// sweeps spent stalled).
  std::int64_t stalls() const { return stalls_.load(std::memory_order_relaxed); }
  std::int64_t sweeps() const { return sweeps_.load(std::memory_order_relaxed); }

 private:
  void loop();
  void sweep();

  Telemetry& telemetry_;
  WatchdogConfig config_;
  std::atomic<std::int64_t> stalls_{0};
  std::atomic<std::int64_t> sweeps_{0};
  std::unordered_set<std::string> stalled_;  ///< loop-thread only

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace hyscale
