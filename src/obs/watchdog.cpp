#include "obs/watchdog.hpp"

#include <algorithm>
#include <chrono>

#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace hyscale {

void Heartbeat::beat() {
  last_beat_ns_.store(StageTracer::now_ns());
  beats_.fetch_add(1, std::memory_order_relaxed);
}

void Heartbeat::idle_enter() {
  last_beat_ns_.store(StageTracer::now_ns());
  idle_.store(true);
}

void Heartbeat::idle_exit() {
  beat();
  idle_.store(false);
}

Heartbeat& HeartbeatRegistry::register_thread(std::string name,
                                              std::int64_t interval_hint_ns) {
  std::lock_guard lock(mutex_);
  return hearts_.emplace_back(std::move(name), interval_hint_ns);
}

std::vector<HeartbeatRegistry::View> HeartbeatRegistry::views() const {
  std::lock_guard lock(mutex_);
  std::vector<View> out;
  out.reserve(hearts_.size());
  for (const Heartbeat& h : hearts_) {
    out.push_back(View{h.name(), h.last_beat_ns(), h.interval_hint_ns(), h.beats(),
                       h.idle(), h.retired()});
  }
  return out;
}

std::size_t HeartbeatRegistry::size() const {
  std::lock_guard lock(mutex_);
  return hearts_.size();
}

Watchdog::Watchdog(Telemetry& telemetry, WatchdogConfig config)
    : telemetry_(telemetry), config_(config) {
  thread_ = std::thread([this] { loop(); });
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::loop() {
  std::unique_lock lock(mutex_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::nanoseconds(config_.check_interval_ns),
                 [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    sweep();
    lock.lock();
  }
}

void Watchdog::sweep() {
  sweeps_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t now = StageTracer::now_ns();
  for (const HeartbeatRegistry::View& h : telemetry_.heartbeats().views()) {
    // Idle hearts are blocked on purpose; a heart that never beat is a
    // thread that has not started its loop yet — neither is a stall.
    if (h.retired || h.idle || h.beats == 0) {
      // A stalled thread that reached its idle wait (or exited) has
      // worked through whatever wedged it — close the episode in the
      // journal rather than dropping it silently.
      if (stalled_.erase(h.name) > 0)
        telemetry_.journal().log("watchdog_recovered", "thread=" + h.name);
      continue;
    }
    const std::int64_t threshold =
        std::max(config_.min_stall_ns,
                 static_cast<std::int64_t>(config_.stall_multiplier *
                                           static_cast<double>(h.interval_hint_ns)));
    const std::int64_t age = now - h.last_beat_ns;
    if (age <= threshold) {
      if (stalled_.erase(h.name) > 0)
        telemetry_.journal().log("watchdog_recovered", "thread=" + h.name);
      continue;
    }
    // Report once per episode: the set holds currently-stalled names.
    if (!stalled_.insert(h.name).second) continue;
    stalls_.fetch_add(1, std::memory_order_relaxed);
    telemetry_.registry().counter("watchdog.stalls").add(1);
    telemetry_.journal().log(
        "watchdog_stall", "thread=" + h.name +
                              " age_ms=" + std::to_string(static_cast<double>(age) * 1e-6) +
                              " threshold_ms=" +
                              std::to_string(static_cast<double>(threshold) * 1e-6));
    telemetry_.trip("watchdog_stall:" + h.name);
  }
}

}  // namespace hyscale
