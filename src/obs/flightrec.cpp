#include "obs/flightrec.hpp"

#include <cmath>
#include <cstdio>

#include "obs/telemetry.hpp"

namespace hyscale {

namespace {

// Same non-finite policy as the exporter: JSON has no inf/nan.
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

void append_int(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

void append_string(std::string& out, const std::string& s) {
  out += '"';
  out += json_escape(s);
  out += '"';
}

void append_stage(std::string& out, const char* key, const StageSpanView& span) {
  out += '"';
  out += key;
  out += "\":";
  if (span.present) {
    append_number(out, span.ms());
  } else {
    out += "null";
  }
}

}  // namespace

FlightRecorder::FlightRecorder(Telemetry& telemetry, FlightRecorderConfig config)
    : telemetry_(telemetry), config_(std::move(config)) {
  telemetry_.set_trip_handler([this](const std::string& reason) { on_trip(reason); });
}

FlightRecorder::~FlightRecorder() {
  // Unregister under the trip mutex first: after this line no trip can
  // be mid-invocation on another thread, so the teardown dump below
  // reads a recorder no one else touches.
  telemetry_.clear_trip_handler();
  if (config_.dump_on_teardown) dump("teardown");
}

void FlightRecorder::on_trip(const std::string& reason) {
  const std::int64_t now = StageTracer::now_ns();
  const std::int64_t last = last_dump_ns_.load(std::memory_order_relaxed);
  if (last != 0 && now - last < config_.min_dump_gap_ns) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  dump(reason);
}

bool FlightRecorder::dump(const std::string& reason) {
  if (config_.path.empty()) return false;
  const std::string body = render(reason);
  std::lock_guard lock(io_mutex_);
  const bool to_stderr = config_.path == "-";
  std::FILE* f = to_stderr ? stderr : std::fopen(config_.path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(body.data(), 1, body.size(), f);
  std::fputc('\n', f);
  if (to_stderr)
    std::fflush(f);
  else
    std::fclose(f);
  last_dump_ns_.store(StageTracer::now_ns(), std::memory_order_relaxed);
  dumps_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::string FlightRecorder::render(const std::string& reason) const {
  const std::int64_t now = StageTracer::now_ns();
  std::string out = "{\"type\":\"flight_record\",\"reason\":";
  append_string(out, reason);
  out += ",\"t_ns\":";
  append_int(out, now);

  out += ",\"trips\":[";
  bool first = true;
  for (const TripRecord& trip : telemetry_.trips()) {
    if (!first) out += ',';
    first = false;
    out += "{\"t_ns\":";
    append_int(out, trip.t_ns);
    out += ",\"reason\":";
    append_string(out, trip.reason);
    out += '}';
  }
  out += "],\"suppressed_trips\":";
  append_int(out, suppressed());

  const MetricsSnapshot snap = telemetry_.registry().snapshot();
  out += ",\"metrics\":{";
  first = true;
  for (const auto& [name, value] : snap.scalars()) {
    if (!first) out += ',';
    first = false;
    append_string(out, name);
    out += ':';
    append_number(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& view : snap.histograms()) {
    if (!first) out += ',';
    first = false;
    append_string(out, view.name);
    out += ":{\"count\":";
    append_int(out, view.count);
    out += ",\"mean_ms\":";
    append_number(out, view.mean_ms());
    out += ",\"p50_ms\":";
    append_number(out, view.percentile_ms(0.50));
    out += ",\"p99_ms\":";
    append_number(out, view.percentile_ms(0.99));
    out += ",\"max_ms\":";
    append_number(out, view.max_ms);
    out += '}';
  }
  out += '}';

  // Newest journal events, non-consuming: the exporter's drain cadence
  // is unaffected and the record still shows recent causes.
  std::vector<JournalEvent> events = telemetry_.journal().events();
  const std::size_t skip =
      events.size() > config_.max_journal_events ? events.size() - config_.max_journal_events
                                                 : 0;
  out += ",\"journal\":{\"dropped\":";
  append_int(out, telemetry_.journal().dropped());
  out += ",\"events\":[";
  first = true;
  for (std::size_t i = skip; i < events.size(); ++i) {
    if (!first) out += ',';
    first = false;
    out += "{\"t_ns\":";
    append_int(out, events[i].t_ns);
    out += ",\"kind\":";
    append_string(out, events[i].kind);
    out += ",\"detail\":";
    append_string(out, events[i].detail);
    out += '}';
  }
  out += "]}";

  out += ",\"heartbeats\":[";
  first = true;
  for (const HeartbeatRegistry::View& h : telemetry_.heartbeats().views()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_string(out, h.name);
    out += ",\"age_ms\":";
    append_number(out, h.beats > 0 ? static_cast<double>(now - h.last_beat_ns) * 1e-6 : -1.0);
    out += ",\"interval_hint_ms\":";
    append_number(out, static_cast<double>(h.interval_hint_ns) * 1e-6);
    out += ",\"beats\":";
    append_int(out, h.beats);
    out += ",\"idle\":";
    out += h.idle ? "true" : "false";
    out += ",\"retired\":";
    out += h.retired ? "true" : "false";
    out += '}';
  }
  out += ']';

  const ExemplarRing& ring = telemetry_.exemplars();
  out += ",\"exemplars\":{\"offered\":";
  append_int(out, ring.offered());
  out += ",\"admitted\":";
  append_int(out, ring.admitted());
  out += ",\"threshold_ms\":";
  append_number(out, static_cast<double>(ring.threshold_ns()) * 1e-6);
  out += ",\"slowest\":[";
  first = true;
  std::size_t emitted = 0;
  for (const RequestTrace& trace : ring.slowest()) {
    if (emitted++ >= config_.max_exemplars) break;
    if (!first) out += ',';
    first = false;
    out += "{\"request_id\":";
    append_int(out, static_cast<std::int64_t>(trace.request_id));
    out += ",\"batch_id\":";
    append_int(out, static_cast<std::int64_t>(trace.batch_id));
    out += ",\"total_ms\":";
    append_number(out, trace.total_ms());
    out += ",\"complete\":";
    out += trace.complete() ? "true" : "false";
    out += ",\"batch_requests\":";
    append_int(out, trace.batch_requests);
    out += ",\"batch_seeds\":";
    append_int(out, trace.batch_seeds);
    out += ",\"stages\":{";
    append_stage(out, "queue_ms", trace.queue);
    out += ',';
    append_stage(out, "sample_ms", trace.sample);
    out += ',';
    append_stage(out, "gather_ms", trace.gather);
    out += ',';
    append_stage(out, "forward_ms", trace.forward);
    out += ',';
    append_stage(out, "reply_ms", trace.reply);
    out += "}}";
  }
  out += "]}";

  out += ",\"trace\":{\"recorded\":";
  append_int(out, telemetry_.tracer().recorded());
  out += ",\"retained\":";
  append_int(out, static_cast<std::int64_t>(telemetry_.tracer().collect().size()));
  out += ",\"dropped\":";
  append_int(out, telemetry_.tracer().dropped());
  out += "}}";
  return out;
}

}  // namespace hyscale
