#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

namespace hyscale {

const char* trace_stage_name(TraceStage stage) {
  switch (stage) {
    case TraceStage::kQueue: return "queue";
    case TraceStage::kSample: return "sample";
    case TraceStage::kGather: return "gather";
    case TraceStage::kForward: return "forward";
    case TraceStage::kReply: return "reply";
    case TraceStage::kPublish: return "publish";
    case TraceStage::kCut: return "cut";
    case TraceStage::kBuild: return "build";
    case TraceStage::kRebase: return "rebase";
    case TraceStage::kAnnihilate: return "annihilate";
    case TraceStage::kTtlSweep: return "ttl_sweep";
    case TraceStage::kAdopt: return "adopt";
  }
  return "unknown";
}

StageTracer::StageTracer(bool enabled, std::size_t ring_capacity,
                         std::size_t max_threads)
    : enabled_(enabled),
      capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      max_threads_(max_threads == 0 ? 1 : max_threads),
      rings_(max_threads_) {
  if (!enabled_) return;
  for (Ring& ring : rings_) ring.cells = std::make_unique<Cell[]>(capacity_);
}

std::int64_t StageTracer::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t StageTracer::slot_index() const {
  // Tracer identity, not address, keys the thread-local slot cache so a
  // tracer reallocated at a dead tracer's address can never alias into
  // a slot another thread now owns (single-writer-per-ring invariant).
  static std::atomic<std::uint64_t> next_id{1};
  static thread_local std::uint64_t cached_tracer = 0;
  static thread_local std::size_t cached_slot = 0;
  // Lazily stamp this tracer with a unique id.
  if (id_ == 0) {
    std::uint64_t expect = 0;
    id_.compare_exchange_strong(expect, next_id.fetch_add(1, std::memory_order_relaxed),
                                std::memory_order_relaxed);
  }
  const std::uint64_t id = id_.load(std::memory_order_relaxed);
  if (cached_tracer != id) {
    cached_tracer = id;
    cached_slot = next_slot_.fetch_add(1, std::memory_order_relaxed);
  }
  return cached_slot;
}

void StageTracer::record(TraceStage stage, std::uint64_t context, std::uint64_t aux,
                         std::int64_t begin_ns, std::int64_t end_ns) {
  if (!enabled_) return;
  const std::size_t slot = slot_index();
  if (slot >= max_threads_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Ring& ring = rings_[slot];
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  Cell& cell = ring.cells[head % capacity_];
  // Canonical atomic seqlock write (Boehm): odd seq marks the write in
  // flight, the release fence orders it before the field stores, the
  // release store of the even seq publishes them.
  const std::uint32_t seq = cell.seq.load(std::memory_order_relaxed);
  cell.seq.store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  cell.begin_ns.store(begin_ns, std::memory_order_relaxed);
  cell.end_ns.store(end_ns, std::memory_order_relaxed);
  cell.context.store(context, std::memory_order_relaxed);
  cell.aux.store(aux, std::memory_order_relaxed);
  cell.stage.store(static_cast<std::uint8_t>(stage), std::memory_order_relaxed);
  cell.seq.store(seq + 2, std::memory_order_release);
  ring.head.store(head + 1, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceRecord> StageTracer::collect() const {
  std::vector<TraceRecord> out;
  if (!enabled_) return out;
  for (const Ring& ring : rings_) {
    if (!ring.cells) continue;
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    const std::uint64_t retained = std::min<std::uint64_t>(head, capacity_);
    for (std::uint64_t i = 0; i < retained; ++i) {
      const Cell& cell = ring.cells[i];
      TraceRecord rec;
      bool consistent = false;
      for (int attempt = 0; attempt < 4 && !consistent; ++attempt) {
        const std::uint32_t s1 = cell.seq.load(std::memory_order_acquire);
        if (s1 & 1u) continue;  // write in flight
        rec.begin_ns = cell.begin_ns.load(std::memory_order_relaxed);
        rec.end_ns = cell.end_ns.load(std::memory_order_relaxed);
        rec.context = cell.context.load(std::memory_order_relaxed);
        rec.aux = cell.aux.load(std::memory_order_relaxed);
        rec.stage = static_cast<TraceStage>(cell.stage.load(std::memory_order_relaxed));
        std::atomic_thread_fence(std::memory_order_acquire);
        consistent = cell.seq.load(std::memory_order_relaxed) == s1;
      }
      // A cell being overwritten right now is simply skipped; the span
      // it held was about to be evicted anyway.
      if (consistent) out.push_back(rec);
    }
  }
  return out;
}

std::vector<TraceRecord> StageTracer::context_path(std::uint64_t context) const {
  std::vector<TraceRecord> all = collect();
  std::vector<TraceRecord> path;
  for (const TraceRecord& rec : all)
    if (rec.context == context) path.push_back(rec);
  std::sort(path.begin(), path.end(), [](const TraceRecord& a, const TraceRecord& b) {
    return a.begin_ns != b.begin_ns ? a.begin_ns < b.begin_ns : a.end_ns < b.end_ns;
  });
  return path;
}

}  // namespace hyscale
