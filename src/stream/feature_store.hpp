// Mutable, growable feature storage for an evolving graph.
//
// The base feature matrix (copied from the dataset at construction) is
// updatable row-in-place; vertices streamed in later get appended rows
// in an extension area.  A shared_mutex arbitrates gathers (shared)
// against row updates and appends (exclusive) so serving workers never
// read a row mid-write — the property the TSan CI job checks.
//
// Deleted vertices release their rows: release_row() zero-fills (so a
// retracted entity can only ever gather zeros) and, for extension rows,
// marks the slot reclaimable; reuse_row() re-initialises a released
// extension row when StreamingGraph recycles the vertex id.  Base rows
// are zeroed but never reclaimed — their ids are permanent.
//
// All writes to base rows must go through StreamingGraph::update_feature
// so the StaticFeatureCache invalidation hook fires; this class only
// enforces the memory-safety half of that contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "tensor/quantize.hpp"
#include "tensor/tensor.hpp"

namespace hyscale {

class MutableFeatureStore {
 public:
  /// Copies `base` (rows = base graph vertices).
  explicit MutableFeatureStore(const Tensor& base);

  std::int64_t cols() const { return cols_; }
  std::int64_t base_rows() const { return base_rows_; }
  std::int64_t rows() const;  ///< base + appended

  /// The base matrix; its address is stable for the store's lifetime
  /// (appends land in the extension area, updates are in place), so a
  /// StaticFeatureCache may hold a reference to it.
  const Tensor& base() const { return base_; }

  /// Overwrites row v (base or extension).  Throws on range/size
  /// mismatch.
  void update_row(VertexId v, std::span<const float> values);

  /// Appends one extension row; returns its row index (== old rows()).
  std::int64_t append_row(std::span<const float> values);

  /// Reclaims row v for a deleted vertex: zero-fills it so gathers of
  /// the retracted entity serve zeros, and (extension rows only) marks
  /// it reusable by reuse_row().  Idempotent per release/reuse cycle.
  void release_row(VertexId v);

  /// Re-initialises a released extension row for a recycled vertex id.
  /// Throws std::logic_error when v is a base row or was not released —
  /// recycling must only hand out scrubbed ids.
  void reuse_row(VertexId v, std::span<const float> values);

  /// Extension rows currently released and awaiting reuse.
  std::int64_t released_rows() const;

  /// Monotonic (steady-clock) nanosecond timestamp of the last write to
  /// row v — construction, append, update, reuse, or an explicit
  /// touch().  The TTL eviction sweep retires entities whose last touch
  /// is older than the configured idle budget.
  std::int64_t last_touch_ns(VertexId v) const;

  /// Refreshes row v's last-touch stamp without changing its values —
  /// for LRU-style policies that want reads to keep an entity alive.
  void touch(VertexId v);

  /// Batched read-path touch: re-stamps every EXTENSION row in `nodes`
  /// under one exclusive lock (base rows are skipped — dataset vertices
  /// never expire, and stamping them would only lengthen the critical
  /// section; out-of-range ids are ignored).  When `nodes` holds no
  /// extension rows the call takes no lock at all, so static serving
  /// pays nothing.  Const because touch stamps are eviction metadata,
  /// not feature data — this is the gather hot path's hook.
  void touch_rows(std::span<const VertexId> nodes) const;

  /// Current steady-clock timestamp on the last-touch scale.
  static std::int64_t now_ns();

  /// Copies row v into `dst` (size cols()).  Always full-precision —
  /// this is a host-side read (invalidation refreshes, tests), not the
  /// wire path.
  void copy_row(VertexId v, std::span<float> dst) const;

  /// Wire precision applied by gather() — the host -> device transfer
  /// this store models.  At kInt8 every gathered row is round-tripped
  /// through per-row symmetric int8 (quantize + dequantize fused, no
  /// int8 buffer), so gathered features carry exactly the error an int8
  /// PCIe transfer would; the same per-row rule as the device cache, so
  /// hit/miss composition never changes logits.  kFp16 is rejected
  /// (knob is {fp32, int8}).  Default kFp32 (lossless).
  void set_transfer_precision(TransferPrecision precision);
  TransferPrecision transfer_precision() const {
    return precision_.load(std::memory_order_relaxed);
  }
  /// Bytes one gathered row moves on the wire at the current precision:
  /// 4*cols at fp32, cols + 4 (values + scale) at int8.
  double row_wire_bytes() const;

  /// Gathers rows `nodes` into `out` ([nodes.size(), cols()]) under one
  /// shared lock, applying transfer_precision() to every copied row.
  /// Rows whose `already_filled` flag is set are skipped (the streaming
  /// gather serves those from the cache's device copy).
  void gather(std::span<const VertexId> nodes, Tensor& out,
              const std::vector<char>* already_filled = nullptr) const;

 private:
  std::span<const float> row_unlocked(VertexId v) const;

  Tensor base_;
  std::vector<float> extension_;  ///< appended rows, row-major
  std::vector<char> released_;    ///< per extension row: awaiting reuse
  /// Per row (base + extension): last write/read-touch stamp.  Mutable
  /// so the const gather path can batch-refresh it under the lock.
  mutable std::vector<std::int64_t> touch_ns_;
  std::int64_t base_rows_ = 0;
  std::int64_t extension_rows_ = 0;
  std::int64_t released_count_ = 0;
  std::int64_t cols_ = 0;
  /// Wire precision for gather(); atomic so the hot path reads it with
  /// one relaxed load instead of widening the shared-lock section.
  std::atomic<TransferPrecision> precision_{TransferPrecision::kFp32};
  mutable std::shared_mutex mutex_;
};

}  // namespace hyscale
