// The surface the ExpirySweeper paces TTL retirement over.
//
// TTL expiry used to be wired to StreamingGraph alone, which left
// sharded deployments caller-paced: retirement must be FACADE-wide
// (broadcast remove_vertex keeps every shard's vertex space in
// lockstep), so a per-shard sweeper would be wrong, and no sweeper at
// all meant nothing expired.  This tiny interface is the fix: anything
// that can retire idle streamed-in vertices under the standard pacing
// contract — a flat StreamingGraph, the ShardedStreamingGraph facade,
// or a ServingBackend forwarding to whichever of those it serves —
// can sit behind one background ExpirySweeper.
#pragma once

#include <cstdint>

#include "common/timer.hpp"
#include "graph/csr.hpp"

namespace hyscale {

class Telemetry;

class ExpiryTarget {
 public:
  virtual ~ExpiryTarget() = default;

  /// One paced TTL pass: retire up to `max_retire` streamed-in vertices
  /// idle past `ttl`, stopping early once `pending_op_budget` (> 0)
  /// pending ops are queued so retirement bursts never stampede the
  /// compaction trigger.  Returns the number of vertices retired.
  virtual std::int64_t sweep_expired(Seconds ttl, std::int64_t max_retire,
                                     EdgeId pending_op_budget) = 0;

  /// Telemetry plane the sweeper registers its instruments on; null =
  /// telemetry off.
  virtual Telemetry* telemetry() const = 0;

  /// Instrument-name prefix for the sweeper's heartbeat ("stream",
  /// "sharded") — kept stable per target so dashboards and the
  /// liveness watchdog see consistent thread names.
  virtual const char* expiry_scope() const = 0;
};

}  // namespace hyscale
