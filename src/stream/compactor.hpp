// Background delta-to-CSR compaction.
//
// Watches a StreamingGraph's overlay and, when its pending op count
// (insertions + tombstones) exceeds a size or base-ratio threshold,
// runs the cheapest maintenance that clears the pressure:
//
//   1. an in-place ANNIHILATION pass (StreamingGraph::annihilate) that
//      erases cancelled insert/tombstone pairs without touching the
//      base — under delete-heavy churn most pending ops reduce to
//      nothing, and a full rebuild whose only effect is truncation is
//      wasted work;
//   2. only if the overlay is still over threshold, a full fold of the
//      delta into a fresh base CSR (StreamingGraph::compact ->
//      graph/builder) with an atomic version swap.
//
// Keeping the overlay small bounds the per-vertex membership scans on
// the ingest path and the merge/skip work on the sampling path, which
// is what keeps p99 query latency flat as updates accumulate; folding
// tombstones also releases deleted streamed-in vertex ids for
// recycling.  When a fold is refused (compact() returns false — e.g.
// the overlay drained between the trigger check and the snapshot) while
// the trigger still reads true, the loop backs off exponentially
// instead of busy-retrying every poll tick.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/timer.hpp"
#include "stream/streaming_graph.hpp"

namespace hyscale {

struct CompactionPolicy {
  EdgeId max_overlay_edges = 1 << 15;  ///< absolute trigger (insert + tombstone ops)
  double max_overlay_ratio = 0.25;     ///< ops/base edge-count trigger
  Seconds poll_interval = 2e-3;
  /// Run the in-place annihilation pass before resorting to a full
  /// rebuild.  Off reproduces the fold-only behaviour (kept as a bench
  /// comparison point).
  bool annihilate_first = true;
  /// Extra wait added after a refused fold doubles per failure up to
  /// this cap and resets on the next success or idle tick.
  Seconds max_backoff = 64e-3;
};

class Compactor {
 public:
  /// What the policy asks for right now.
  enum class Maintenance {
    kNone,        ///< overlay under both thresholds, no pending scrubs
    kAnnihilate,  ///< over threshold with tombstones pending — try the in-place pass first
    kFold,        ///< over threshold and nothing cancellable (no tombstones, scrub-driven,
                  ///< or annihilation disabled / insufficient)
  };

  /// `graph` must outlive the compactor.  The background thread starts
  /// immediately and stops (joined) on destruction or stop().
  explicit Compactor(StreamingGraph& graph, CompactionPolicy policy = {});
  ~Compactor();

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  void stop();

  /// Whether the policy would trigger right now (also used by tests).
  bool should_compact() const { return decide() != Maintenance::kNone; }

  /// The action the loop would take right now: annihilate suffices as a
  /// first resort whenever it is enabled; a fold is demanded only when
  /// annihilation is off — or, inside the loop, when a pass just ran
  /// and the overlay is still over threshold.  While a fold is already
  /// in flight (off-lock build), kFold is never returned: the pending
  /// rebase will clear the pressure, so the loop annihilates (gated)
  /// or waits instead of stacking refused folds and backoff.
  Maintenance decide() const;

  /// Pure backoff schedule: the extra wait after one more refused fold.
  static Seconds next_backoff(Seconds current, const CompactionPolicy& policy);

  std::int64_t compactions() const { return compactions_.load(std::memory_order_relaxed); }
  /// Triggered maintenance rounds the annihilation pass resolved alone
  /// (no rebuild needed).
  std::int64_t annihilation_passes() const {
    return annihilation_passes_.load(std::memory_order_relaxed);
  }
  /// Folds refused by the graph while the trigger stayed hot (each one
  /// grows the backoff).
  std::int64_t refused_folds() const { return refused_folds_.load(std::memory_order_relaxed); }
  const CompactionPolicy& policy() const { return policy_; }

 private:
  void loop();

  StreamingGraph& graph_;
  CompactionPolicy policy_;
  // Registry mirrors from graph_.telemetry(); null when telemetry off.
  Counter* m_compactions_ = nullptr;
  Counter* m_annihilation_passes_ = nullptr;
  Counter* m_refused_folds_ = nullptr;
  Heartbeat* heart_ = nullptr;  ///< liveness stamp when telemetry on
  std::atomic<std::int64_t> compactions_{0};
  std::atomic<std::int64_t> annihilation_passes_{0};
  std::atomic<std::int64_t> refused_folds_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;  ///< keep last: starts in the constructor's tail
};

}  // namespace hyscale
