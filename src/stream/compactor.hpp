// Background delta-to-CSR compaction.
//
// Watches a StreamingGraph's overlay and, when its pending op count
// (insertions + tombstones) exceeds a size or base-ratio threshold,
// folds the delta into a fresh base CSR (StreamingGraph::compact ->
// graph/builder) and atomically swaps versions.  Keeping the overlay
// small bounds the per-vertex membership scans on the ingest path and
// the merge/skip work on the sampling path, which is what keeps p99
// query latency flat as updates accumulate; folding tombstones also
// releases deleted streamed-in vertex ids for recycling.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/timer.hpp"
#include "stream/streaming_graph.hpp"

namespace hyscale {

struct CompactionPolicy {
  EdgeId max_overlay_edges = 1 << 15;  ///< absolute trigger (insert + tombstone ops)
  double max_overlay_ratio = 0.25;     ///< ops/base edge-count trigger
  Seconds poll_interval = 2e-3;
};

class Compactor {
 public:
  /// `graph` must outlive the compactor.  The background thread starts
  /// immediately and stops (joined) on destruction or stop().
  explicit Compactor(StreamingGraph& graph, CompactionPolicy policy = {});
  ~Compactor();

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  void stop();

  /// Whether the policy would trigger right now (also used by tests).
  bool should_compact() const;

  std::int64_t compactions() const { return compactions_.load(std::memory_order_relaxed); }
  const CompactionPolicy& policy() const { return policy_; }

 private:
  void loop();

  StreamingGraph& graph_;
  CompactionPolicy policy_;
  std::atomic<std::int64_t> compactions_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;  ///< keep last: starts in the constructor's tail
};

}  // namespace hyscale
