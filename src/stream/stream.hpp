// Umbrella header for the streaming dynamic-graph subsystem.
//
//   DeltaStore          — epoch-stamped, lock-striped insertion buffers
//   GraphVersion        — immutable base-CSR + overlay snapshot
//   StreamingGraph      — ingest, copy-on-publish versions, compaction
//   MutableFeatureStore — row-updatable / growable feature storage
//   OverlaySampler      — degree-correct sampling over base + overlay
//   Compactor           — background delta -> fresh-CSR merges
//   UpdateGenerator     — seeded mixed update-stream driver
#pragma once

#include "stream/compactor.hpp"
#include "stream/delta_store.hpp"
#include "stream/feature_store.hpp"
#include "stream/overlay_sampler.hpp"
#include "stream/streaming_graph.hpp"
#include "stream/update_generator.hpp"
