// Umbrella header for the streaming dynamic-graph subsystem.
//
//   DeltaStore          — epoch-stamped, lock-striped edge-op buffers
//                         (insertions + tombstones, dead vertices)
//   GraphVersion        — immutable base-CSR + overlay snapshot; live
//                         adjacency = base minus tombstones plus inserts
//   StreamingGraph      — ingest/retract, copy-on-publish versions,
//                         tombstone-folding compaction, id recycling
//   MutableFeatureStore — row-updatable / growable / reclaimable storage
//                         with per-row last-touch stamps (TTL input)
//   OverlaySampler      — degree-correct sampling over the live adjacency
//   Compactor           — background annihilate-then-fold maintenance
//   Publisher           — SLO-driven background publishing (staleness budget)
//   ExpirySweeper       — TTL retirement of idle streamed-in entities
//   UpdateGenerator     — seeded mixed insert/delete/update driver
#pragma once

#include "stream/compactor.hpp"
#include "stream/delta_store.hpp"
#include "stream/expiry.hpp"
#include "stream/feature_store.hpp"
#include "stream/overlay_sampler.hpp"
#include "stream/publisher.hpp"
#include "stream/streaming_graph.hpp"
#include "stream/update_generator.hpp"
