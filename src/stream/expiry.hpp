// TTL eviction for streamed-in entities.
//
// Deletions reclaim rows and ids (PR 3), but nothing EXPIRES entities
// on its own: fraud/recommendation entities age out of the feed and
// should be retired automatically.  The ExpirySweeper is a background
// thread that periodically runs its target's sweep_expired — retiring
// (remove_vertex) streamed-in vertices whose feature row has not been
// touched (appended/updated/reused, per
// MutableFeatureStore::last_touch_ns) for longer than the TTL.  The
// target is any ExpiryTarget: a flat StreamingGraph, the
// ShardedStreamingGraph facade (whose pass retires facade-wide, keeping
// the shards' vertex spaces in lockstep), or a ServingBackend
// forwarding to whichever it serves.
//
// A retirement is a tombstone burst (every live incident edge is
// retracted), so an unpaced sweep over a large idle population would
// stampede the compactor into back-to-back rebuilds.  Two pacing knobs
// prevent that: `max_retire_per_sweep` caps the burst per pass, and
// `pending_op_budget` stops a pass early once the overlay already
// holds that many ops — the sweep yields to the compactor/annihilator
// and picks the survivors up next interval.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/timer.hpp"
#include "stream/expiry_target.hpp"

namespace hyscale {

class Counter;
class Heartbeat;

struct ExpiryPolicy {
  static constexpr EdgeId kDeriveFromCompaction = -1;

  /// Idle budget: a streamed-in vertex untouched for longer than this
  /// is retired.  < 0 disables TTL eviction (StreamingSession skips
  /// the sweeper); 0 expires everything idle at sweep time (tests).
  Seconds ttl = -1.0;
  Seconds sweep_interval = 10e-3;
  /// Tombstone-burst pacing: retirements per sweep pass.
  std::int64_t max_retire_per_sweep = 64;
  /// Stop a pass once the overlay holds this many pending ops, so a
  /// sweep never pushes the compaction trigger into a rebuild storm.
  /// 0 = no op-budget pacing; kDeriveFromCompaction lets
  /// StreamingSession substitute half the compaction threshold.
  EdgeId pending_op_budget = kDeriveFromCompaction;

  bool enabled() const { return ttl >= 0.0; }
};

class ExpirySweeper {
 public:
  /// `target` must outlive the sweeper.  Requires policy.enabled(); the
  /// background thread starts immediately and stops (joined) on
  /// destruction or stop().
  explicit ExpirySweeper(ExpiryTarget& target, ExpiryPolicy policy);
  ~ExpirySweeper();

  ExpirySweeper(const ExpirySweeper&) = delete;
  ExpirySweeper& operator=(const ExpirySweeper&) = delete;

  void stop();

  std::int64_t sweeps() const { return sweeps_.load(std::memory_order_relaxed); }
  std::int64_t retired() const { return retired_.load(std::memory_order_relaxed); }
  const ExpiryPolicy& policy() const { return policy_; }

 private:
  void loop();

  ExpiryTarget& target_;
  ExpiryPolicy policy_;
  // Registry mirrors from target_.telemetry(); null when telemetry off.
  Counter* m_sweeps_ = nullptr;
  Counter* m_retired_ = nullptr;
  Heartbeat* heart_ = nullptr;  ///< liveness stamp when telemetry on
  std::atomic<std::int64_t> sweeps_{0};
  std::atomic<std::int64_t> retired_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;  ///< keep last: starts in the constructor's tail
};

}  // namespace hyscale
