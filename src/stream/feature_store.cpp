#include "stream/feature_store.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <stdexcept>

#include "tensor/simd.hpp"

namespace hyscale {

std::int64_t MutableFeatureStore::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

MutableFeatureStore::MutableFeatureStore(const Tensor& base)
    : base_rows_(base.rows()), cols_(base.cols()) {
  base_.resize(base.rows(), base.cols());
  std::copy(base.flat().begin(), base.flat().end(), base_.flat().begin());
  touch_ns_.assign(static_cast<std::size_t>(base_rows_), now_ns());
}

std::int64_t MutableFeatureStore::rows() const {
  std::shared_lock lock(mutex_);
  return base_rows_ + extension_rows_;
}

std::span<const float> MutableFeatureStore::row_unlocked(VertexId v) const {
  if (v < 0 || v >= base_rows_ + extension_rows_)
    throw std::out_of_range("MutableFeatureStore: row out of range");
  if (v < base_rows_) return base_.row(v);
  const auto offset = static_cast<std::size_t>((v - base_rows_) * cols_);
  return {extension_.data() + offset, static_cast<std::size_t>(cols_)};
}

void MutableFeatureStore::update_row(VertexId v, std::span<const float> values) {
  if (static_cast<std::int64_t>(values.size()) != cols_)
    throw std::invalid_argument("MutableFeatureStore::update_row: wrong row length");
  std::unique_lock lock(mutex_);
  if (v < 0 || v >= base_rows_ + extension_rows_)
    throw std::out_of_range("MutableFeatureStore: row out of range");
  float* dst = v < base_rows_
                   ? base_.row(v).data()
                   : extension_.data() + static_cast<std::size_t>((v - base_rows_) * cols_);
  std::copy(values.begin(), values.end(), dst);
  touch_ns_[static_cast<std::size_t>(v)] = now_ns();
}

std::int64_t MutableFeatureStore::append_row(std::span<const float> values) {
  if (static_cast<std::int64_t>(values.size()) != cols_)
    throw std::invalid_argument("MutableFeatureStore::append_row: wrong row length");
  std::unique_lock lock(mutex_);
  extension_.insert(extension_.end(), values.begin(), values.end());
  released_.push_back(0);
  touch_ns_.push_back(now_ns());
  ++extension_rows_;
  return base_rows_ + extension_rows_ - 1;
}

void MutableFeatureStore::release_row(VertexId v) {
  std::unique_lock lock(mutex_);
  if (v < 0 || v >= base_rows_ + extension_rows_)
    throw std::out_of_range("MutableFeatureStore: row out of range");
  float* dst = v < base_rows_
                   ? base_.row(v).data()
                   : extension_.data() + static_cast<std::size_t>((v - base_rows_) * cols_);
  std::fill(dst, dst + cols_, 0.0f);
  if (v >= base_rows_) {
    char& flag = released_[static_cast<std::size_t>(v - base_rows_)];
    if (flag == 0) {
      flag = 1;
      ++released_count_;
    }
  }
}

void MutableFeatureStore::reuse_row(VertexId v, std::span<const float> values) {
  if (static_cast<std::int64_t>(values.size()) != cols_)
    throw std::invalid_argument("MutableFeatureStore::reuse_row: wrong row length");
  std::unique_lock lock(mutex_);
  if (v < base_rows_ || v >= base_rows_ + extension_rows_)
    throw std::logic_error("MutableFeatureStore::reuse_row: not an extension row");
  char& flag = released_[static_cast<std::size_t>(v - base_rows_)];
  if (flag == 0)
    throw std::logic_error("MutableFeatureStore::reuse_row: row was not released");
  flag = 0;
  --released_count_;
  std::copy(values.begin(), values.end(),
            extension_.begin() + static_cast<std::ptrdiff_t>((v - base_rows_) * cols_));
  touch_ns_[static_cast<std::size_t>(v)] = now_ns();
}

std::int64_t MutableFeatureStore::released_rows() const {
  std::shared_lock lock(mutex_);
  return released_count_;
}

std::int64_t MutableFeatureStore::last_touch_ns(VertexId v) const {
  std::shared_lock lock(mutex_);
  if (v < 0 || v >= base_rows_ + extension_rows_)
    throw std::out_of_range("MutableFeatureStore: row out of range");
  return touch_ns_[static_cast<std::size_t>(v)];
}

void MutableFeatureStore::touch(VertexId v) {
  std::unique_lock lock(mutex_);
  if (v < 0 || v >= base_rows_ + extension_rows_)
    throw std::out_of_range("MutableFeatureStore: row out of range");
  touch_ns_[static_cast<std::size_t>(v)] = now_ns();
}

void MutableFeatureStore::touch_rows(std::span<const VertexId> nodes) const {
  // Lock-free pre-scan: base_rows_ is immutable after construction, so
  // a request that names no extension rows (static serving, cache-hot
  // dataset traffic) is detected and skipped without touching the
  // mutex.
  bool any = false;
  for (VertexId v : nodes) {
    if (v >= base_rows_) {
      any = true;
      break;
    }
  }
  if (!any) return;
  // One stamp and one exclusive section per gather batch: duplicates
  // are re-stamped harmlessly, and everything in the batch shares the
  // same "read now" instant.
  const std::int64_t now = now_ns();
  std::unique_lock lock(mutex_);
  const std::int64_t end = base_rows_ + extension_rows_;
  for (VertexId v : nodes) {
    if (v >= base_rows_ && v < end) touch_ns_[static_cast<std::size_t>(v)] = now;
  }
}

void MutableFeatureStore::copy_row(VertexId v, std::span<float> dst) const {
  std::shared_lock lock(mutex_);
  const std::span<const float> src = row_unlocked(v);
  std::copy(src.begin(), src.end(), dst.begin());
}

void MutableFeatureStore::set_transfer_precision(TransferPrecision precision) {
  if (precision == TransferPrecision::kFp16)
    throw std::invalid_argument(
        "MutableFeatureStore: fp16 wire precision not implemented (use fp32 or int8)");
  precision_.store(precision, std::memory_order_relaxed);
}

double MutableFeatureStore::row_wire_bytes() const {
  const auto cols = static_cast<double>(cols_);
  return transfer_precision() == TransferPrecision::kInt8 ? cols + 4.0 : cols * 4.0;
}

void MutableFeatureStore::gather(std::span<const VertexId> nodes, Tensor& out,
                                 const std::vector<char>* already_filled) const {
  // Tensor::resize zero-fills; skip it when `out` is already shaped so
  // rows the caller pre-filled (cache hits) survive.
  if (out.rows() != static_cast<std::int64_t>(nodes.size()) || out.cols() != cols_) {
    out.resize(static_cast<std::int64_t>(nodes.size()), cols_);
  }
  const bool int8_wire = transfer_precision() == TransferPrecision::kInt8;
  std::shared_lock lock(mutex_);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (already_filled != nullptr && (*already_filled)[i]) continue;
    const std::span<const float> src = row_unlocked(nodes[i]);
    float* dst = out.row(static_cast<std::int64_t>(i)).data();
    if (int8_wire) {
      // Fused quantize+dequantize: the row lands with exactly the error
      // an int8 wire transfer would introduce, no int8 staging buffer.
      wire_roundtrip_row_int8(src.data(), dst, cols_);
    } else {
      simd::copy(src.data(), dst, cols_);
    }
  }
}

}  // namespace hyscale
