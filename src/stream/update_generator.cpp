#include "stream/update_generator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/strutil.hpp"

namespace hyscale {

UpdateGenerator::UpdateGenerator(StreamingGraph& graph, UpdateGeneratorConfig config)
    : graph_(graph), config_(config) {
  if (config_.operations < 0) throw std::invalid_argument("UpdateGenerator: negative operations");
  if (config_.num_threads < 1)
    throw std::invalid_argument("UpdateGenerator: num_threads must be >= 1");
  if (config_.edges_per_op < 1)
    throw std::invalid_argument("UpdateGenerator: edges_per_op must be >= 1");
}

UpdateReport UpdateGenerator::run() {
  const std::int64_t cols = graph_.features().cols();
  std::atomic<std::int64_t> completed_ops{0};

  // The graph's own counters are the single source of truth; the report
  // is the delta over this run (assumes no other writer is active,
  // which is how the benches and tests drive it).
  const StreamStats before = graph_.stats();
  Timer wall;
  auto worker = [&](int t, std::int64_t ops) {
    Xoshiro256 rng(config_.seed + static_cast<std::uint64_t>(t) * 0x9e3779b97f4a7c15ULL);
    std::vector<float> row(static_cast<std::size_t>(cols));
    for (std::int64_t op = 0; op < ops; ++op) {
      const double kind = rng.uniform();
      const VertexId n = graph_.num_vertices();
      if (kind < config_.vertex_add_fraction) {
        for (float& x : row) x = static_cast<float>(rng.normal());
        const VertexId v = graph_.add_vertex(row);
        for (int e = 0; e < config_.edges_per_new_vertex; ++e) {
          graph_.add_edge(v, static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n))));
        }
      } else if (kind < config_.vertex_add_fraction + config_.feature_update_fraction) {
        const auto v = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
        for (float& x : row) x = static_cast<float>(rng.normal());
        graph_.update_feature(v, row);
      } else {
        for (int e = 0; e < config_.edges_per_op; ++e) {
          const auto u = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
          const auto v = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
          graph_.add_edge(u, v);
        }
      }
      const std::int64_t done = completed_ops.fetch_add(1, std::memory_order_relaxed) + 1;
      if (config_.publish_every > 0 && done % config_.publish_every == 0) {
        graph_.publish();
      }
      if (config_.pacing > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(config_.pacing));
      }
    }
  };

  std::vector<std::thread> threads;
  const std::int64_t per_thread = config_.operations / config_.num_threads;
  const std::int64_t remainder = config_.operations % config_.num_threads;
  for (int t = 0; t < config_.num_threads; ++t) {
    const std::int64_t ops = per_thread + (t < remainder ? 1 : 0);
    threads.emplace_back(worker, t, ops);
  }
  for (auto& thread : threads) thread.join();

  // Final publish so every accepted update is visible to queries.
  graph_.publish();

  const StreamStats after = graph_.stats();
  UpdateReport report;
  report.wall_time = wall.elapsed();
  report.operations = config_.operations;
  report.accepted_edges = after.ingested_edges - before.ingested_edges;
  report.duplicate_edges = after.duplicate_edges - before.duplicate_edges;
  report.added_vertices = after.added_vertices - before.added_vertices;
  report.feature_updates = after.feature_updates - before.feature_updates;
  report.publishes = after.publishes - before.publishes;
  report.edges_per_second =
      report.wall_time > 0.0 ? static_cast<double>(report.accepted_edges) / report.wall_time : 0.0;
  return report;
}

std::string UpdateReport::to_string() const {
  std::string out;
  out += "ops=" + format_count(static_cast<std::uint64_t>(operations));
  out += " edges=" + format_count(static_cast<std::uint64_t>(accepted_edges));
  out += " dup=" + format_count(static_cast<std::uint64_t>(duplicate_edges));
  out += " vertices+=" + format_count(static_cast<std::uint64_t>(added_vertices));
  out += " feat=" + format_count(static_cast<std::uint64_t>(feature_updates));
  out += " publishes=" + format_count(static_cast<std::uint64_t>(publishes));
  out += " rate=" + format_double(edges_per_second, 0) + " e/s";
  return out;
}

}  // namespace hyscale
