#include "stream/expiry.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

#include "obs/telemetry.hpp"

namespace hyscale {

ExpirySweeper::ExpirySweeper(ExpiryTarget& target, ExpiryPolicy policy)
    : target_(target), policy_(policy) {
  if (!policy_.enabled())
    throw std::invalid_argument("ExpirySweeper: ttl must be >= 0 (policy disabled)");
  if (policy_.sweep_interval <= 0.0)
    throw std::invalid_argument("ExpirySweeper: sweep_interval must be positive");
  if (policy_.max_retire_per_sweep <= 0)
    throw std::invalid_argument("ExpirySweeper: max_retire_per_sweep must be positive");
  if (policy_.pending_op_budget < 0)
    throw std::invalid_argument(
        "ExpirySweeper: pending_op_budget must be resolved (>= 0) before construction");
  if (Telemetry* telemetry = target_.telemetry(); telemetry != nullptr) {
    MetricsRegistry& reg = telemetry->registry();
    m_sweeps_ = &reg.counter("expiry.sweeps");
    m_retired_ = &reg.counter("expiry.retired");
    heart_ = &telemetry->heartbeats().register_thread(
        std::string(target_.expiry_scope()) + ".expiry_sweeper",
        std::max<std::int64_t>(static_cast<std::int64_t>(policy_.sweep_interval * 1e9),
                               1'000'000));
  }
  thread_ = std::thread([this] { loop(); });
}

ExpirySweeper::~ExpirySweeper() { stop(); }

void ExpirySweeper::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void ExpirySweeper::loop() {
  std::unique_lock lock(mutex_);
  while (!stop_) {
    if (heart_ != nullptr) heart_->idle_enter();
    cv_.wait_for(lock, std::chrono::duration<double>(policy_.sweep_interval),
                 [this] { return stop_; });
    if (heart_ != nullptr) heart_->idle_exit();
    if (stop_) break;
    lock.unlock();
    const std::int64_t swept = target_.sweep_expired(policy_.ttl, policy_.max_retire_per_sweep,
                                                     policy_.pending_op_budget);
    if (heart_ != nullptr) heart_->beat();
    sweeps_.fetch_add(1, std::memory_order_relaxed);
    retired_.fetch_add(swept, std::memory_order_relaxed);
    if (m_sweeps_ != nullptr) {
      m_sweeps_->add(1);
      m_retired_->add(swept);
    }
    lock.lock();
  }
}

}  // namespace hyscale
