// GraphSAGE neighbor sampler over a versioned dynamic graph.
//
// Draws uniform without-replacement neighbor samples from a
// GraphVersion's LIVE adjacency — base CSR minus tombstones, merged
// with the delta insertions — with correct degree weighting: a vertex
// with b base, t tombstoned and d inserted neighbors is sampled exactly
// as if its b - t + d live edges lived in one rebuilt CSR.  Because the
// version's merged adjacency is element-identical to a from-scratch
// build_csr over the live edge set, and the expansion mirrors
// NeighborSampler (same partial Fisher-Yates, same RNG stream
// discipline — see sampling/fanout_core.hpp, where that discipline
// lives exactly once, shared with ShardedSampler), the produced
// MiniBatch is BIT-IDENTICAL to NeighborSampler over the rebuilt CSR
// for any fanout and seed — the invariant the stream-vs-rebuild
// differential harness asserts at every publish point (and, with an
// empty overlay, the original base-equivalence the distribution tests
// pin down).
//
// The sampler is single-threaded like NeighborSampler; serving workers
// each own one and point it at the latest published version per
// micro-batch via set_version().
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sampling/fanout_core.hpp"
#include "sampling/minibatch.hpp"
#include "stream/streaming_graph.hpp"

namespace hyscale {

class OverlaySampler : public FanoutSamplerCore<GraphVersion> {
 public:
  /// `fanouts` ordered input-layer first, like NeighborSampler.
  OverlaySampler(std::shared_ptr<const GraphVersion> version, std::vector<int> fanouts,
                 std::uint64_t seed)
      : FanoutSamplerCore(std::move(version), std::move(fanouts), seed,
                          {"OverlaySampler", "set_version", "version"}) {}

  /// Points the sampler at a newer version (scratch is re-sized for the
  /// grown vertex space).  Cheap when the vertex count is unchanged.
  void set_version(std::shared_ptr<const GraphVersion> version) {
    set_view(std::move(version));
  }

  const GraphVersion& version() const { return view(); }
};

/// Full-neighborhood (exact) computation graph over a version; the
/// streaming analogue of sample_full, used by exact serving mode and the
/// compaction-equivalence tests.
MiniBatch sample_full_overlay(const GraphVersion& version, const std::vector<VertexId>& seeds,
                              int num_layers);

}  // namespace hyscale
