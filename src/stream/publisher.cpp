#include "stream/publisher.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace hyscale {

Publisher::Publisher(StreamingGraph& graph, PublisherPolicy policy)
    : graph_(graph), policy_(policy) {
  if (policy_.staleness_budget <= 0.0)
    throw std::invalid_argument("Publisher: staleness_budget must be positive");
  if (policy_.poll_floor <= 0.0 || policy_.poll_floor > policy_.staleness_budget)
    throw std::invalid_argument("Publisher: poll_floor must be in (0, staleness_budget]");
  if (Telemetry* telemetry = graph_.telemetry(); telemetry != nullptr) {
    MetricsRegistry& reg = telemetry->registry();
    // Instruments inherit the graph's shard prefix so per-shard
    // publishers sharing one registry stay distinguishable.
    const std::string& prefix = graph_.config().metric_prefix;
    m_publishes_ = &reg.counter(prefix + "publisher.publishes");
    m_breaches_ = &reg.counter(prefix + "publisher.breaches");
    m_worst_staleness_ = &reg.gauge(prefix + "publisher.worst_staleness_ms");
    m_worst_cost_ = &reg.gauge(prefix + "publisher.worst_publish_cost_ms");
    m_staleness_ = &reg.histogram(prefix + "publisher.visible_staleness_ms");
    journal_ = &telemetry->journal();
    telemetry_ = telemetry;
    // Busy time is one publish; the budget is the natural hint (floored
    // so a sub-ms budget does not make the 250 ms stall floor moot).
    heart_ = &telemetry->heartbeats().register_thread(
        prefix + "stream.publisher",
        std::max<std::int64_t>(static_cast<std::int64_t>(policy_.staleness_budget * 1e9),
                               1'000'000));
  }
  thread_ = std::thread([this] { loop(); });
}

Publisher::~Publisher() { stop(); }

void Publisher::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

Seconds Publisher::worst_staleness() const {
  std::lock_guard lock(stats_mutex_);
  return worst_staleness_;
}

Seconds Publisher::worst_publish_cost() const {
  std::lock_guard lock(stats_mutex_);
  return worst_publish_cost_;
}

void Publisher::loop() {
  std::unique_lock lock(mutex_);
  // Decaying high-waters, loop-thread only.  The op becomes visible
  // when publish() RETURNS and the loop only regains control when the
  // scheduler actually wakes it, so the deadline must be undercut by
  // BOTH terms: the worst recent publish cost and how late wakeups
  // actually fire on this host.  High-waters (decayed 10% per cycle)
  // rather than means: one tardy wakeup predicts the next, and a
  // one-off hiccup fades instead of pinning the publisher at maximum
  // paranoia forever.
  Seconds cost_high = 0.0;
  Seconds wake_late_high = 0.0;
  // Aim to COMPLETE by 3/4 of the budget: the high-waters below model
  // the stalls this loop has SEEN, and the reserved quarter is for the
  // one it hasn't yet — the budget is an upper bound, so finishing
  // early is always correct, it just publishes slightly smaller
  // batches.
  const Seconds deadline = policy_.staleness_budget * 0.75;
  while (!stop_) {
    const Seconds age = graph_.pending_staleness();
    // Start-early margin: aim to START the publish this far before the
    // deadline so it COMPLETES by it.  Clamped to 80% of the deadline —
    // past that the publisher degenerates into publish-per-op without
    // being able to honour the budget anyway.
    const Seconds margin =
        std::min(std::max(policy_.poll_floor, cost_high + wake_late_high), deadline * 0.8);
    Seconds wait;
    if (age <= 0.0) {
      // Nothing pending: idle short enough that an op landing right
      // after this check is still detected with the margin to spare.
      wait = std::max(policy_.poll_floor, (deadline - margin) * 0.5);
    } else {
      const Seconds slack = deadline - margin - age;
      if (slack <= policy_.poll_floor) {
        lock.unlock();
        // The SLO is about VISIBILITY: an op is stale until publish()
        // RETURNS, so staleness is sampled at completion — the age the
        // oldest op had reached when the publish started, plus the
        // publish cost itself.  Recording the pre-publish age instead
        // under-reports by exactly the publish duration and lets a slow
        // publish (e.g. one stalled on the rebase endpoint) blow the
        // budget without ever counting as a breach.
        const Seconds start_age = graph_.pending_staleness();
        Timer cost;
        graph_.publish();
        const Seconds took = cost.elapsed();
        cost_high = std::max(cost_high * 0.9, took);
        {
          std::lock_guard stats(stats_mutex_);
          worst_publish_cost_ = std::max(worst_publish_cost_, took);
        }
        if (m_worst_cost_ != nullptr) m_worst_cost_->set_max(took * 1e3);
        // start_age can read 0 when a caller-paced publish raced us and
        // already made everything visible; nothing waited, so nothing
        // is accounted.
        if (start_age > 0.0) {
          const Seconds visible_age = start_age + took;
          {
            std::lock_guard stats(stats_mutex_);
            worst_staleness_ = std::max(worst_staleness_, visible_age);
          }
          if (m_worst_staleness_ != nullptr) m_worst_staleness_->set_max(visible_age * 1e3);
          if (m_staleness_ != nullptr) m_staleness_->observe_seconds(visible_age);
          if (visible_age > policy_.staleness_budget) {
            breaches_.fetch_add(1, std::memory_order_relaxed);
            if (m_breaches_ != nullptr) m_breaches_->add(1);
            if (journal_ != nullptr)
              journal_->log("slo_breach",
                            "visible_staleness_ms=" + std::to_string(visible_age * 1e3) +
                                " budget_ms=" +
                                std::to_string(policy_.staleness_budget * 1e3));
            // Escalate: the flight recorder (when installed) captures a
            // post-mortem of the breach while the evidence is fresh.
            if (telemetry_ != nullptr) telemetry_->trip("slo_breach");
          }
        }
        publishes_.fetch_add(1, std::memory_order_relaxed);
        if (m_publishes_ != nullptr) m_publishes_->add(1);
        lock.lock();
        continue;
      }
      // Halve the remaining slack each wakeup: O(log) checks per cycle
      // and a fresh burst is still re-sampled with margin to spare.
      wait = std::max(policy_.poll_floor, slack * 0.5);
    }
    Timer slept;
    if (heart_ != nullptr) heart_->idle_enter();
    cv_.wait_for(lock, std::chrono::duration<double>(wait), [this] { return stop_; });
    if (heart_ != nullptr) heart_->idle_exit();
    // How late past the requested wait the wakeup actually fired; a
    // stop() wake can come early, in which case only the decay applies.
    wake_late_high = std::max(wake_late_high * 0.9, slept.elapsed() - wait);
  }
  if (heart_ != nullptr) heart_->retire();
}

}  // namespace hyscale
