#include "stream/publisher.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace hyscale {

Publisher::Publisher(StreamingGraph& graph, PublisherPolicy policy)
    : graph_(graph), policy_(policy) {
  if (policy_.staleness_budget <= 0.0)
    throw std::invalid_argument("Publisher: staleness_budget must be positive");
  if (policy_.poll_floor <= 0.0 || policy_.poll_floor > policy_.staleness_budget)
    throw std::invalid_argument("Publisher: poll_floor must be in (0, staleness_budget]");
  thread_ = std::thread([this] { loop(); });
}

Publisher::~Publisher() { stop(); }

void Publisher::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

Seconds Publisher::worst_staleness() const {
  std::lock_guard lock(stats_mutex_);
  return worst_staleness_;
}

void Publisher::loop() {
  std::unique_lock lock(mutex_);
  while (!stop_) {
    const Seconds age = graph_.pending_staleness();
    Seconds wait;
    if (age <= 0.0) {
      // Nothing pending: idle at a quarter budget so an op arriving
      // right after the check still has three quarters of slack left.
      wait = policy_.staleness_budget * 0.25;
    } else {
      // Start early enough that the publish COMPLETES by the deadline:
      // budget less a cost margin from recent publish durations.
      const Seconds margin = std::min(std::max(policy_.poll_floor, publish_cost_ema_ * 2.0),
                                      policy_.staleness_budget * 0.5);
      const Seconds slack = policy_.staleness_budget - margin - age;
      if (slack <= policy_.poll_floor) {
        lock.unlock();
        {
          std::lock_guard stats(stats_mutex_);
          worst_staleness_ = std::max(worst_staleness_, age);
        }
        if (age > policy_.staleness_budget) breaches_.fetch_add(1, std::memory_order_relaxed);
        Timer cost;
        graph_.publish();
        publish_cost_ema_ = 0.7 * publish_cost_ema_ + 0.3 * cost.elapsed();
        publishes_.fetch_add(1, std::memory_order_relaxed);
        lock.lock();
        continue;
      }
      // Halve the remaining slack each wakeup: O(log) checks per cycle
      // and a fresh burst is still re-sampled with margin to spare.
      wait = std::max(policy_.poll_floor, slack * 0.5);
    }
    cv_.wait_for(lock, std::chrono::duration<double>(wait), [this] { return stop_; });
  }
}

}  // namespace hyscale
