#include "stream/compactor.hpp"

#include <chrono>
#include <stdexcept>

namespace hyscale {

Compactor::Compactor(StreamingGraph& graph, CompactionPolicy policy)
    : graph_(graph), policy_(policy) {
  if (policy_.max_overlay_edges <= 0)
    throw std::invalid_argument("Compactor: max_overlay_edges must be positive");
  if (policy_.max_overlay_ratio <= 0.0)
    throw std::invalid_argument("Compactor: max_overlay_ratio must be positive");
  thread_ = std::thread([this] { loop(); });
}

Compactor::~Compactor() { stop(); }

void Compactor::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool Compactor::should_compact() const {
  // Pending ops of either sign: tombstones cost sampling-path skips
  // just like insertions cost merges, so both count toward the fold.
  // Pending scrubs (op-less vertex retirements) also trigger, else
  // their ids and feature rows would never be recycled — but only once
  // the free pool is dry, so a sustained retirement stream batches
  // into one fold per pool refill instead of one rebuild per death.
  return graph_.overlay_ops() >= policy_.max_overlay_edges ||
         graph_.overlay_ratio() >= policy_.max_overlay_ratio ||
         (graph_.has_pending_scrubs() && graph_.recyclable_vertices() == 0);
}

void Compactor::loop() {
  std::unique_lock lock(mutex_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::duration<double>(policy_.poll_interval),
                 [this] { return stop_; });
    if (stop_) break;
    if (!should_compact()) continue;
    lock.unlock();
    if (graph_.compact()) compactions_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
}

}  // namespace hyscale
