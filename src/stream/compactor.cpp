#include "stream/compactor.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace hyscale {

Compactor::Compactor(StreamingGraph& graph, CompactionPolicy policy)
    : graph_(graph), policy_(policy) {
  if (policy_.max_overlay_edges <= 0)
    throw std::invalid_argument("Compactor: max_overlay_edges must be positive");
  if (policy_.max_overlay_ratio <= 0.0)
    throw std::invalid_argument("Compactor: max_overlay_ratio must be positive");
  if (policy_.max_backoff < 0.0)
    throw std::invalid_argument("Compactor: max_backoff must be non-negative");
  if (Telemetry* telemetry = graph_.telemetry(); telemetry != nullptr) {
    MetricsRegistry& reg = telemetry->registry();
    // Instruments inherit the graph's shard prefix so per-shard
    // compactors sharing one registry stay distinguishable.
    const std::string& prefix = graph_.config().metric_prefix;
    m_compactions_ = &reg.counter(prefix + "compactor.folds");
    m_annihilation_passes_ = &reg.counter(prefix + "compactor.annihilation_passes");
    m_refused_folds_ = &reg.counter(prefix + "compactor.refused_folds");
    // Hint = poll cadence: between maintenance rounds the loop beats
    // once per wakeup, so a heart stale for many multiples of this
    // while busy means the thread is wedged inside a fold.
    heart_ = &telemetry->heartbeats().register_thread(
        prefix + "stream.compactor",
        std::max<std::int64_t>(static_cast<std::int64_t>(policy_.poll_interval * 1e9),
                               1'000'000));
  }
  thread_ = std::thread([this] { loop(); });
}

Compactor::~Compactor() { stop(); }

void Compactor::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

Compactor::Maintenance Compactor::decide() const {
  // Pending ops of either sign: tombstones cost sampling-path skips
  // just like insertions cost merges, so both count toward the fold.
  // Pending scrubs (op-less vertex retirements) also trigger, else
  // their ids and feature rows would never be recycled — but only once
  // the free pool is dry, so a sustained retirement stream batches
  // into one fold per pool refill instead of one rebuild per death.
  const bool op_pressure = graph_.overlay_ops() >= policy_.max_overlay_edges ||
                           graph_.overlay_ratio() >= policy_.max_overlay_ratio;
  const bool scrub_pressure = graph_.has_pending_scrubs() && graph_.recyclable_vertices() == 0;
  if (!op_pressure && !scrub_pressure) return Maintenance::kNone;
  // Annihilation only shrinks op buffers, and only ever erases
  // insert/tombstone PAIRS — with zero tombstones pending there is
  // nothing to cancel, so an insert-only overlay goes straight to the
  // fold instead of paying an exclusive no-op bucket scan.  A
  // scrub-driven trigger needs the fold regardless (the free pool
  // refills only on rebase).
  if (op_pressure && policy_.annihilate_first && graph_.overlay_tombstones() > 0)
    return Maintenance::kAnnihilate;
  // A fold is already in flight (its O(base) build runs off-lock, so
  // this loop keeps running meanwhile): its rebase will clear the
  // pressure, and starting a second fold would only be refused.  The
  // gated annihilation above is still worthwhile — it erases pairs
  // cancelled entirely after the in-flight cut.
  if (graph_.fold_in_flight()) return Maintenance::kNone;
  return Maintenance::kFold;
}

Seconds Compactor::next_backoff(Seconds current, const CompactionPolicy& policy) {
  const Seconds grown = current <= 0.0 ? policy.poll_interval : current * 2.0;
  return std::min(grown, policy.max_backoff);
}

void Compactor::loop() {
  Seconds backoff = 0.0;
  std::unique_lock lock(mutex_);
  while (!stop_) {
    if (heart_ != nullptr) heart_->idle_enter();
    cv_.wait_for(lock, std::chrono::duration<double>(policy_.poll_interval + backoff),
                 [this] { return stop_; });
    if (heart_ != nullptr) heart_->idle_exit();
    if (stop_) break;
    const Maintenance action = decide();
    if (action == Maintenance::kNone) {
      backoff = 0.0;
      continue;
    }
    lock.unlock();
    if (action == Maintenance::kAnnihilate) {
      const EdgeId erased = graph_.annihilate();
      if (heart_ != nullptr) heart_->beat();
      const Maintenance after = decide();
      const bool folding = graph_.fold_in_flight();
      if (after == Maintenance::kNone) {
        // Pressure gone — the in-place pass resolved the round (unless
        // decide() only read kNone because a fold is mid-flight, in
        // which case the rebase gets the credit).
        if (!folding) {
          annihilation_passes_.fetch_add(1, std::memory_order_relaxed);
          if (m_annihilation_passes_ != nullptr) m_annihilation_passes_->add(1);
        }
        backoff = 0.0;
        lock.lock();
        continue;
      }
      if (after == Maintenance::kAnnihilate && folding) {
        // The landing rebase will clear the pressure — do not stack a
        // fold that would only be refused.  A pass that erased nothing
        // (every cancelled pair straddles the in-flight cut, so all of
        // it is pinned) also widens the wait: a long build should not
        // be punctuated by a fruitless exclusive bucket scan per tick.
        backoff = erased > 0 ? 0.0 : next_backoff(backoff, policy_);
        lock.lock();
        continue;
      }
      // Pressure remains and no fold is in flight: escalate to the
      // rebuild exactly as the pre-annihilation policy would.
    }
    // The heart stays BUSY across the fold: a hook- or lock-parked
    // compact() stops beating without going idle, which is exactly the
    // signature the watchdog flags.
    if (graph_.compact()) {
      if (heart_ != nullptr) heart_->beat();
      compactions_.fetch_add(1, std::memory_order_relaxed);
      if (m_compactions_ != nullptr) m_compactions_->add(1);
      backoff = 0.0;
    } else if (should_compact()) {
      // Fold refused while the trigger stays hot (e.g. a long-lived
      // structural race): widen the next wait instead of spinning one
      // refused snapshot per poll tick.
      refused_folds_.fetch_add(1, std::memory_order_relaxed);
      if (m_refused_folds_ != nullptr) m_refused_folds_->add(1);
      backoff = next_backoff(backoff, policy_);
      if (heart_ != nullptr) heart_->beat();
    } else {
      backoff = 0.0;
      if (heart_ != nullptr) heart_->beat();
    }
    lock.lock();
  }
  if (heart_ != nullptr) heart_->retire();
}

}  // namespace hyscale
