#include "stream/delta_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace hyscale {

namespace {

/// Walks equal runs of a SORTED op list and invokes fn(neighbor) for
/// every odd-length run — the store's one membership-parity reduction,
/// shared by snapshot() and remove_vertex() so ingest-time liveness and
/// snapshot reduction can never desynchronize.
template <typename Fn>
void for_each_odd_parity_run(const std::vector<VertexId>& sorted, Fn&& fn) {
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    if (((j - i) & 1) != 0) fn(sorted[i]);
    i = j;
  }
}

}  // namespace

DeltaStore::DeltaStore(std::shared_ptr<const CsrGraph> base, std::size_t num_stripes,
                       bool symmetric)
    : base_(std::move(base)),
      stripes_(std::max<std::size_t>(1, num_stripes)),
      symmetric_(symmetric) {
  if (!base_) throw std::invalid_argument("DeltaStore: null base graph");
  buckets_.resize(static_cast<std::size_t>(base_->num_vertices()));
  dead_since_.resize(static_cast<std::size_t>(base_->num_vertices()), 0);
  reclaim_floor_ = base_->num_vertices();
  num_vertices_.store(base_->num_vertices(), std::memory_order_relaxed);
}

bool DeltaStore::base_contains(VertexId u, VertexId v) const {
  if (u >= base_->num_vertices()) return false;
  const auto neighbors = base_->neighbors(u);
  return std::find(neighbors.begin(), neighbors.end(), v) != neighbors.end();
}

bool DeltaStore::live_unlocked(VertexId u, VertexId v) const {
  // Per-pair ops strictly alternate, so membership is base XOR parity.
  const Bucket& bucket = buckets_[static_cast<std::size_t>(u)];
  std::size_t pending = 0;
  for (VertexId x : bucket.neighbors) pending += (x == v);
  return base_contains(u, v) ^ ((pending & 1) != 0);
}

bool DeltaStore::edge_op_locked(Stripe& stripe, VertexId u, VertexId v, bool remove) {
  Bucket& bucket = buckets_[static_cast<std::size_t>(u)];
  if (live_unlocked(u, v) != remove) return false;
  bucket.neighbors.push_back(v);
  bucket.epochs.push_back(epoch_.load(std::memory_order_relaxed));
  bucket.removes.push_back(remove ? 1 : 0);
  if (!bucket.listed) {
    bucket.listed = true;
    stripe.touched.push_back(u);
  }
  (remove ? delta_removes_ : delta_inserts_).fetch_add(1, std::memory_order_relaxed);
  return true;
}

void DeltaStore::check_range_unlocked(VertexId u, VertexId v) const {
  const VertexId n = num_vertices_.load(std::memory_order_relaxed);
  if (u < 0 || u >= n || v < 0 || v >= n)
    throw std::invalid_argument("DeltaStore: edge endpoint out of range");
}

bool DeltaStore::edge_op(VertexId u, VertexId v, bool remove) {
  if (u == v) return false;
  std::shared_lock structure(structure_mutex_);
  check_range_unlocked(u, v);
  // Inserts require live endpoints; removals are decided by membership
  // alone, so a dangling directed in-edge of a dead vertex (possible
  // only under asymmetric ingest) stays retractable.
  if (!remove && (dead_unlocked(u) || dead_unlocked(v))) return false;
  Stripe& stripe = stripe_for(u);
  std::lock_guard stripe_lock(stripe.mutex);
  return edge_op_locked(stripe, u, v, remove);
}

bool DeltaStore::add_edge(VertexId u, VertexId v) { return edge_op(u, v, /*remove=*/false); }

bool DeltaStore::remove_edge(VertexId u, VertexId v) { return edge_op(u, v, /*remove=*/true); }

int DeltaStore::edge_pair_op(VertexId u, VertexId v, bool remove) {
  if (u == v) return 0;
  const VertexId lo = std::min(u, v);
  const VertexId hi = std::max(u, v);
  std::shared_lock structure(structure_mutex_);
  check_range_unlocked(lo, hi);
  if (!remove && (dead_unlocked(lo) || dead_unlocked(hi))) return 0;
  // Both stripes for the whole pair: a racing opposite-sign pair op on
  // the same {u, v} serialises entirely before or after this one, so
  // the two directions can never diverge.  std::scoped_lock orders the
  // acquisitions deadlock-free.
  Stripe& a = stripe_for(lo);
  Stripe& b = stripe_for(hi);
  if (&a == &b) {
    std::lock_guard lock(a.mutex);
    if (!edge_op_locked(a, lo, hi, remove)) return 0;
    return edge_op_locked(b, hi, lo, remove) ? 2 : 1;
  }
  std::scoped_lock lock(a.mutex, b.mutex);
  if (!edge_op_locked(a, lo, hi, remove)) return 0;
  return edge_op_locked(b, hi, lo, remove) ? 2 : 1;
}

int DeltaStore::add_edge_pair(VertexId u, VertexId v) {
  return edge_pair_op(u, v, /*remove=*/false);
}

int DeltaStore::remove_edge_pair(VertexId u, VertexId v) {
  return edge_pair_op(u, v, /*remove=*/true);
}

VertexId DeltaStore::add_vertices(std::int64_t count) {
  if (count <= 0) throw std::invalid_argument("DeltaStore::add_vertices: count must be positive");
  std::unique_lock structure(structure_mutex_);
  const VertexId first = num_vertices_.load(std::memory_order_relaxed);
  buckets_.resize(buckets_.size() + static_cast<std::size_t>(count));
  dead_since_.resize(dead_since_.size() + static_cast<std::size_t>(count), 0);
  num_vertices_.store(first + count, std::memory_order_relaxed);
  return first;
}

std::int64_t DeltaStore::remove_vertex(VertexId v) {
  std::unique_lock structure(structure_mutex_);
  const VertexId n = num_vertices_.load(std::memory_order_relaxed);
  if (v < 0 || v >= n) throw std::invalid_argument("DeltaStore::remove_vertex: id out of range");
  if (dead_unlocked(v)) return -1;

  // Live adjacency of v: base neighbors not tombstoned by an
  // odd-parity pending run, plus odd-parity pending inserts.
  Bucket& bucket = buckets_[static_cast<std::size_t>(v)];
  std::vector<VertexId> pending(bucket.neighbors);
  std::sort(pending.begin(), pending.end());
  std::vector<VertexId> live;
  std::vector<VertexId> tombstoned;
  for_each_odd_parity_run(pending, [&](VertexId u) {
    (base_contains(v, u) ? tombstoned : live).push_back(u);
  });
  if (v < base_->num_vertices()) {
    for (VertexId u : base_->neighbors(v)) {
      if (!std::binary_search(tombstoned.begin(), tombstoned.end(), u)) live.push_back(u);
    }
  }

  const Epoch now = epoch_.load(std::memory_order_relaxed);
  auto append = [&](VertexId from, VertexId to) {
    Bucket& b = buckets_[static_cast<std::size_t>(from)];
    b.neighbors.push_back(to);
    b.epochs.push_back(now);
    b.removes.push_back(1);
    if (!b.listed) {
      b.listed = true;
      stripe_for(from).touched.push_back(from);
    }
  };
  std::int64_t retracted = 0;
  for (VertexId u : live) {
    append(v, u);
    ++retracted;
    // The reverse direction is retracted only when it actually exists:
    // over an asymmetric base (or directed ingest) u -> v may not be
    // live, and a tombstone for a non-edge would reduce to a phantom
    // INSERT at the next snapshot.  In-edges of v with no live v -> u
    // counterpart are not discoverable from v's adjacency and stay —
    // symmetric deployments (every dataset here) never have any.
    if (live_unlocked(u, v)) {
      append(u, v);
      ++retracted;
    }
  }
  delta_removes_.fetch_add(static_cast<EdgeId>(retracted), std::memory_order_relaxed);

  dead_since_[static_cast<std::size_t>(v)] = now;
  dead_pos_.emplace(v, dead_list_.size());
  dead_list_.push_back(v);
  // Recycling is only safe when retirement provably scrubbed every
  // reference — guaranteed by symmetric adjacency, not by directed
  // ingest (an undiscovered in-edge would be inherited by the reuser).
  if (symmetric_ && v >= reclaim_floor_) pending_dead_.push_back(v);
  return retracted;
}

bool DeltaStore::is_dead(VertexId v) const {
  std::shared_lock structure(structure_mutex_);
  if (v < 0 || v >= num_vertices_.load(std::memory_order_relaxed)) return false;
  return dead_unlocked(v);
}

VertexId DeltaStore::reclaim_vertex() {
  std::unique_lock structure(structure_mutex_);
  if (free_ids_.empty()) return -1;
  const VertexId v = free_ids_.back();
  free_ids_.pop_back();
  dead_since_[static_cast<std::size_t>(v)] = 0;
  // Swap-remove via the position index: dataset-vertex deaths stay on
  // the list forever, so a linear find would degrade every recycle.
  const auto it = dead_pos_.find(v);
  const std::size_t slot = it->second;
  dead_pos_.erase(it);
  if (slot + 1 != dead_list_.size()) {
    dead_list_[slot] = dead_list_.back();
    dead_pos_[dead_list_[slot]] = slot;
  }
  dead_list_.pop_back();
  return v;
}

VertexId DeltaStore::annihilate_bucket(Bucket& bucket, Epoch gate, EdgeId& dropped_inserts,
                                       EdgeId& dropped_removes) {
  // Eligible suffix: ops stamped strictly after the newest snapshot.
  // Stamps are nondecreasing per bucket, so the suffix is contiguous.
  const auto cut = std::upper_bound(bucket.epochs.begin(), bucket.epochs.end(), gate);
  const auto start = static_cast<std::size_t>(cut - bucket.epochs.begin());
  const std::size_t size = bucket.neighbors.size();
  if (start >= size) return 0;

  // Per-neighbor occurrence counts within the suffix.  Ops of one pair
  // alternate, so an even-length run reduces to nothing and an
  // odd-length run reduces to its LAST op (whose recorded sign is the
  // correct successor of the pre-suffix membership state).
  std::unordered_map<VertexId, std::pair<std::size_t, std::size_t>> runs;  // total, seen
  for (std::size_t i = start; i < size; ++i) ++runs[bucket.neighbors[i]].first;

  std::size_t write = start;
  for (std::size_t i = start; i < size; ++i) {
    auto& run = runs[bucket.neighbors[i]];
    ++run.second;
    const bool keep = (run.first & 1) != 0 && run.second == run.first;
    if (keep) {
      bucket.neighbors[write] = bucket.neighbors[i];
      bucket.epochs[write] = bucket.epochs[i];
      bucket.removes[write] = bucket.removes[i];
      ++write;
    } else {
      (bucket.removes[i] != 0 ? dropped_removes : dropped_inserts) += 1;
    }
  }
  const auto erased = static_cast<VertexId>(size - write);
  bucket.neighbors.resize(write);
  bucket.epochs.resize(write);
  bucket.removes.resize(write);
  return erased;
}

EdgeId DeltaStore::annihilate() {
  std::unique_lock structure(structure_mutex_);
  return annihilate_unlocked(last_snapshot_epoch_);
}

EdgeId DeltaStore::annihilate(Epoch gate) {
  std::unique_lock structure(structure_mutex_);
  // An in-flight fold owns the prefix at or below its cut: the merged
  // base being built off-lock already contains those ops, so erasing
  // one here would desynchronise the rebase.  Clamp whatever the caller
  // passed — gate 0 is only an "erase everything matched" license when
  // no cut is outstanding.
  if (fold_in_flight_) gate = std::max(gate, fold_cut_);
  return annihilate_unlocked(gate);
}

void DeltaStore::begin_fold(Epoch cut) {
  std::unique_lock structure(structure_mutex_);
  if (fold_in_flight_) throw std::logic_error("DeltaStore::begin_fold: fold already in flight");
  fold_in_flight_ = true;
  fold_cut_ = cut;
}

void DeltaStore::abort_fold() {
  std::unique_lock structure(structure_mutex_);
  fold_in_flight_ = false;
  fold_cut_ = 0;
}

bool DeltaStore::fold_in_flight() const {
  std::shared_lock structure(structure_mutex_);
  return fold_in_flight_;
}

EdgeId DeltaStore::annihilate_unlocked(Epoch gate) {
  EdgeId dropped_inserts = 0;
  EdgeId dropped_removes = 0;
  for (Stripe& stripe : stripes_) {
    std::vector<VertexId> survivors;
    for (VertexId v : stripe.touched) {
      Bucket& bucket = buckets_[static_cast<std::size_t>(v)];
      annihilate_bucket(bucket, gate, dropped_inserts, dropped_removes);
      if (bucket.neighbors.empty()) {
        bucket.listed = false;
      } else {
        survivors.push_back(v);
      }
    }
    stripe.touched = std::move(survivors);
  }
  delta_inserts_.fetch_sub(dropped_inserts, std::memory_order_relaxed);
  delta_removes_.fetch_sub(dropped_removes, std::memory_order_relaxed);
  const EdgeId erased = dropped_inserts + dropped_removes;
  annihilated_ops_.fetch_add(erased, std::memory_order_relaxed);
  return erased;
}

EdgeId DeltaStore::annihilated_ops() const {
  return annihilated_ops_.load(std::memory_order_relaxed);
}

DeltaStore::Snapshot DeltaStore::snapshot(bool advance_epoch) {
  std::unique_lock structure(structure_mutex_);
  Snapshot snap;
  snap.epoch = epoch_.load(std::memory_order_relaxed);
  last_snapshot_epoch_ = std::max(last_snapshot_epoch_, snap.epoch);
  snap.num_vertices = num_vertices_.load(std::memory_order_relaxed);
  snap.insert_offsets.push_back(0);
  snap.remove_offsets.push_back(0);
  std::vector<VertexId> ops;
  for (const Stripe& stripe : stripes_) {
    for (VertexId v : stripe.touched) {
      const Bucket& bucket = buckets_[static_cast<std::size_t>(v)];
      if (bucket.neighbors.empty()) continue;
      // Reduce the op log to its net effect: odd parity flips base
      // membership (base edge -> tombstone, non-base -> insertion);
      // even parity cancels out.  Processing the sorted copy run by run
      // leaves each per-vertex span sorted — the property the overlay's
      // merged-adjacency iteration relies on.
      snap.raw_ops += static_cast<EdgeId>(bucket.neighbors.size());
      ops.assign(bucket.neighbors.begin(), bucket.neighbors.end());
      std::sort(ops.begin(), ops.end());
      const std::size_t inserts_before = snap.inserts.size();
      const std::size_t removes_before = snap.removes.size();
      for_each_odd_parity_run(ops, [&](VertexId u) {
        (base_contains(v, u) ? snap.removes : snap.inserts).push_back(u);
      });
      if (snap.inserts.size() == inserts_before && snap.removes.size() == removes_before)
        continue;  // all ops cancelled — no net change for v
      snap.touched.push_back(v);
      snap.insert_offsets.push_back(static_cast<EdgeId>(snap.inserts.size()));
      snap.remove_offsets.push_back(static_cast<EdgeId>(snap.removes.size()));
    }
  }
  snap.num_inserts = static_cast<EdgeId>(snap.inserts.size());
  snap.num_removes = static_cast<EdgeId>(snap.removes.size());
  snap.dead = dead_list_;
  std::sort(snap.dead.begin(), snap.dead.end());
  if (advance_epoch) epoch_.fetch_add(1, std::memory_order_relaxed);
  return snap;
}

void DeltaStore::truncate_unlocked(Epoch epoch) {
  EdgeId dropped_inserts = 0;
  EdgeId dropped_removes = 0;
  for (Stripe& stripe : stripes_) {
    std::vector<VertexId> survivors;
    for (VertexId v : stripe.touched) {
      Bucket& bucket = buckets_[static_cast<std::size_t>(v)];
      // Stamps are nondecreasing within a bucket: the cut is a prefix.
      const auto cut = std::upper_bound(bucket.epochs.begin(), bucket.epochs.end(), epoch);
      const auto count = static_cast<std::size_t>(cut - bucket.epochs.begin());
      if (count > 0) {
        for (std::size_t i = 0; i < count; ++i) {
          if (bucket.removes[i] != 0) {
            ++dropped_removes;
          } else {
            ++dropped_inserts;
          }
        }
        bucket.neighbors.erase(bucket.neighbors.begin(),
                               bucket.neighbors.begin() + static_cast<std::ptrdiff_t>(count));
        bucket.epochs.erase(bucket.epochs.begin(), cut);
        bucket.removes.erase(bucket.removes.begin(),
                             bucket.removes.begin() + static_cast<std::ptrdiff_t>(count));
      }
      if (bucket.neighbors.empty()) {
        bucket.listed = false;
      } else {
        survivors.push_back(v);
      }
    }
    stripe.touched = std::move(survivors);
  }
  delta_inserts_.fetch_sub(dropped_inserts, std::memory_order_relaxed);
  delta_removes_.fetch_sub(dropped_removes, std::memory_order_relaxed);
}

void DeltaStore::truncate(Epoch epoch) {
  std::unique_lock structure(structure_mutex_);
  truncate_unlocked(epoch);
}

void DeltaStore::rebase(std::shared_ptr<const CsrGraph> base, Epoch merged_up_to) {
  if (!base) throw std::invalid_argument("DeltaStore::rebase: null base graph");
  std::unique_lock structure(structure_mutex_);
  if (base->num_vertices() > static_cast<VertexId>(buckets_.size()))
    throw std::invalid_argument("DeltaStore::rebase: base larger than vertex space");
  // Re-validate an off-lock fold's cut: the merged base must have been
  // built from exactly the frontier begin_fold declared, or truncating
  // `merged_up_to` would drop ops the base never absorbed.
  if (fold_in_flight_ && fold_cut_ != merged_up_to)
    throw std::logic_error("DeltaStore::rebase: merged epoch does not match the in-flight fold cut");
  fold_in_flight_ = false;
  fold_cut_ = 0;
  base_ = std::move(base);
  truncate_unlocked(merged_up_to);
  // Deaths folded by this compaction are fully scrubbed: the merged
  // base isolates the vertex and the truncate above dropped every op
  // that referenced it (all were stamped <= the death epoch).  The id
  // is now safe to hand back to add_vertex.
  auto pending = pending_dead_.begin();
  for (auto it = pending_dead_.begin(); it != pending_dead_.end(); ++it) {
    if (dead_since_[static_cast<std::size_t>(*it)] <= merged_up_to) {
      free_ids_.push_back(*it);
    } else {
      *pending++ = *it;
    }
  }
  pending_dead_.erase(pending, pending_dead_.end());
}

std::shared_ptr<const CsrGraph> DeltaStore::base() const {
  std::shared_lock structure(structure_mutex_);
  return base_;
}

VertexId DeltaStore::num_vertices() const { return num_vertices_.load(std::memory_order_relaxed); }

EdgeId DeltaStore::delta_edges() const { return delta_inserts_.load(std::memory_order_relaxed); }

EdgeId DeltaStore::delta_removes() const { return delta_removes_.load(std::memory_order_relaxed); }

EdgeId DeltaStore::delta_ops() const { return delta_edges() + delta_removes(); }

std::int64_t DeltaStore::dead_vertices() const {
  std::shared_lock structure(structure_mutex_);
  return static_cast<std::int64_t>(dead_list_.size());
}

std::int64_t DeltaStore::recyclable_vertices() const {
  std::shared_lock structure(structure_mutex_);
  return static_cast<std::int64_t>(free_ids_.size());
}

bool DeltaStore::has_pending_scrubs() const {
  std::shared_lock structure(structure_mutex_);
  return !pending_dead_.empty();
}

Epoch DeltaStore::epoch() const { return epoch_.load(std::memory_order_relaxed); }

}  // namespace hyscale
