#include "stream/delta_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace hyscale {

DeltaStore::DeltaStore(std::shared_ptr<const CsrGraph> base, std::size_t num_stripes)
    : base_(std::move(base)),
      stripes_(std::max<std::size_t>(1, num_stripes)) {
  if (!base_) throw std::invalid_argument("DeltaStore: null base graph");
  buckets_.resize(static_cast<std::size_t>(base_->num_vertices()));
  num_vertices_.store(base_->num_vertices(), std::memory_order_relaxed);
}

bool DeltaStore::add_edge_unlocked(VertexId u, VertexId v) {
  if (u < base_->num_vertices()) {
    const auto neighbors = base_->neighbors(u);
    if (std::find(neighbors.begin(), neighbors.end(), v) != neighbors.end()) return false;
  }

  Stripe& stripe = stripe_for(u);
  std::lock_guard stripe_lock(stripe.mutex);
  Bucket& bucket = buckets_[static_cast<std::size_t>(u)];
  if (std::find(bucket.neighbors.begin(), bucket.neighbors.end(), v) != bucket.neighbors.end())
    return false;
  bucket.neighbors.push_back(v);
  bucket.epochs.push_back(epoch_.load(std::memory_order_relaxed));
  if (!bucket.listed) {
    bucket.listed = true;
    stripe.touched.push_back(u);
  }
  delta_edges_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void DeltaStore::check_range_unlocked(VertexId u, VertexId v) const {
  const VertexId n = num_vertices_.load(std::memory_order_relaxed);
  if (u < 0 || u >= n || v < 0 || v >= n)
    throw std::invalid_argument("DeltaStore::add_edge: endpoint out of range");
}

bool DeltaStore::add_edge(VertexId u, VertexId v) {
  if (u == v) return false;
  std::shared_lock structure(structure_mutex_);
  check_range_unlocked(u, v);
  return add_edge_unlocked(u, v);
}

int DeltaStore::add_edge_pair(VertexId u, VertexId v) {
  if (u == v) return 0;
  const VertexId lo = std::min(u, v);
  const VertexId hi = std::max(u, v);
  // One shared section for both directions: a snapshot (exclusive) sees
  // either neither direction or both.  Stripe locks are taken one at a
  // time, never nested, so no ordering cycle is possible.
  std::shared_lock structure(structure_mutex_);
  check_range_unlocked(lo, hi);
  if (!add_edge_unlocked(lo, hi)) return 0;
  return add_edge_unlocked(hi, lo) ? 2 : 1;
}

VertexId DeltaStore::add_vertices(std::int64_t count) {
  if (count <= 0) throw std::invalid_argument("DeltaStore::add_vertices: count must be positive");
  std::unique_lock structure(structure_mutex_);
  const VertexId first = num_vertices_.load(std::memory_order_relaxed);
  buckets_.resize(buckets_.size() + static_cast<std::size_t>(count));
  num_vertices_.store(first + count, std::memory_order_relaxed);
  return first;
}

DeltaStore::Snapshot DeltaStore::snapshot(bool advance_epoch) {
  std::unique_lock structure(structure_mutex_);
  Snapshot snap;
  snap.epoch = epoch_.load(std::memory_order_relaxed);
  snap.num_vertices = num_vertices_.load(std::memory_order_relaxed);
  snap.offsets.push_back(0);
  for (const Stripe& stripe : stripes_) {
    for (VertexId v : stripe.touched) {
      const Bucket& bucket = buckets_[static_cast<std::size_t>(v)];
      if (bucket.neighbors.empty()) continue;
      snap.touched.push_back(v);
      snap.neighbors.insert(snap.neighbors.end(), bucket.neighbors.begin(),
                            bucket.neighbors.end());
      snap.offsets.push_back(static_cast<EdgeId>(snap.neighbors.size()));
    }
  }
  snap.num_edges = static_cast<EdgeId>(snap.neighbors.size());
  if (advance_epoch) epoch_.fetch_add(1, std::memory_order_relaxed);
  return snap;
}

void DeltaStore::truncate_unlocked(Epoch epoch) {
  EdgeId removed = 0;
  for (Stripe& stripe : stripes_) {
    std::vector<VertexId> survivors;
    for (VertexId v : stripe.touched) {
      Bucket& bucket = buckets_[static_cast<std::size_t>(v)];
      // Stamps are nondecreasing within a bucket: the cut is a prefix.
      const auto cut = std::upper_bound(bucket.epochs.begin(), bucket.epochs.end(), epoch);
      const auto count = static_cast<std::size_t>(cut - bucket.epochs.begin());
      if (count > 0) {
        bucket.neighbors.erase(bucket.neighbors.begin(),
                               bucket.neighbors.begin() + static_cast<std::ptrdiff_t>(count));
        bucket.epochs.erase(bucket.epochs.begin(), cut);
        removed += static_cast<EdgeId>(count);
      }
      if (bucket.neighbors.empty()) {
        bucket.listed = false;
      } else {
        survivors.push_back(v);
      }
    }
    stripe.touched = std::move(survivors);
  }
  delta_edges_.fetch_sub(removed, std::memory_order_relaxed);
}

void DeltaStore::truncate(Epoch epoch) {
  std::unique_lock structure(structure_mutex_);
  truncate_unlocked(epoch);
}

void DeltaStore::rebase(std::shared_ptr<const CsrGraph> base, Epoch merged_up_to) {
  if (!base) throw std::invalid_argument("DeltaStore::rebase: null base graph");
  std::unique_lock structure(structure_mutex_);
  if (base->num_vertices() > static_cast<VertexId>(buckets_.size()))
    throw std::invalid_argument("DeltaStore::rebase: base larger than vertex space");
  base_ = std::move(base);
  truncate_unlocked(merged_up_to);
}

std::shared_ptr<const CsrGraph> DeltaStore::base() const {
  std::shared_lock structure(structure_mutex_);
  return base_;
}

VertexId DeltaStore::num_vertices() const { return num_vertices_.load(std::memory_order_relaxed); }

EdgeId DeltaStore::delta_edges() const { return delta_edges_.load(std::memory_order_relaxed); }

Epoch DeltaStore::epoch() const { return epoch_.load(std::memory_order_relaxed); }

}  // namespace hyscale
