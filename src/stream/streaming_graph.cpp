#include "stream/streaming_graph.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/strutil.hpp"
#include "graph/builder.hpp"

namespace hyscale {

// ------------------------------------------------------------ GraphVersion

GraphVersion::GraphVersion(std::shared_ptr<const CsrGraph> base, EdgeId base_max_degree,
                           DeltaStore::Snapshot overlay, std::uint64_t id)
    : base_(std::move(base)),
      num_vertices_(overlay.num_vertices),
      inserted_edges_(overlay.num_inserts),
      removed_edges_(overlay.num_removes),
      max_degree_(base_max_degree),
      epoch_(overlay.epoch),
      id_(id),
      touched_(std::move(overlay.touched)),
      insert_offsets_(std::move(overlay.insert_offsets)),
      inserts_(std::move(overlay.inserts)),
      remove_offsets_(std::move(overlay.remove_offsets)),
      removes_(std::move(overlay.removes)),
      dead_(std::move(overlay.dead)) {
  slot_of_.reserve(touched_.size());
  for (std::size_t s = 0; s < touched_.size(); ++s) {
    slot_of_.emplace(touched_[s], static_cast<std::int64_t>(s));
    // Live degree is exact for touched vertices; untouched vertices
    // keep their base degree, so max(base max, touched live degrees) is
    // a valid upper bound for full-neighborhood fanouts.
    max_degree_ = std::max(max_degree_, degree(touched_[s]));
  }
}

std::span<const VertexId> GraphVersion::inserted_neighbors(VertexId v) const {
  const std::int64_t s = slot(v);
  if (s < 0) return {};
  const auto lo = insert_offsets_[static_cast<std::size_t>(s)];
  return {inserts_.data() + lo, static_cast<std::size_t>(span_size(insert_offsets_, s))};
}

std::span<const VertexId> GraphVersion::removed_neighbors(VertexId v) const {
  const std::int64_t s = slot(v);
  if (s < 0) return {};
  const auto lo = remove_offsets_[static_cast<std::size_t>(s)];
  return {removes_.data() + lo, static_cast<std::size_t>(span_size(remove_offsets_, s))};
}

void GraphVersion::append_neighbors(VertexId v, std::vector<VertexId>& out) const {
  const auto base = base_neighbors(v);
  const std::int64_t s = slot(v);
  if (s < 0) {
    out.insert(out.end(), base.begin(), base.end());
    return;
  }
  const auto ins = inserted_neighbors(v);
  const auto rem = removed_neighbors(v);
  // Skip-over-tombstone merge: all three spans are sorted (base by
  // build_csr, the overlay spans by the snapshot reduction), so one
  // forward pass yields the live adjacency in globally sorted order —
  // exactly what a from-scratch rebuild would store.
  std::size_t bi = 0;
  std::size_t ri = 0;
  std::size_t ii = 0;
  while (bi < base.size() || ii < ins.size()) {
    if (bi < base.size()) {
      while (ri < rem.size() && rem[ri] < base[bi]) ++ri;
      if (ri < rem.size() && rem[ri] == base[bi]) {
        ++bi;
        ++ri;
        continue;
      }
    }
    if (ii >= ins.size() || (bi < base.size() && base[bi] < ins[ii])) {
      out.push_back(base[bi++]);
    } else {
      out.push_back(ins[ii++]);
    }
  }
}

bool GraphVersion::alive(VertexId v) const {
  return !std::binary_search(dead_.begin(), dead_.end(), v);
}

bool GraphVersion::validate() const {
  if (!base_->validate()) return false;
  if (num_vertices_ < base_->num_vertices()) return false;
  if (insert_offsets_.size() != touched_.size() + 1) return false;
  if (remove_offsets_.size() != touched_.size() + 1) return false;
  if (insert_offsets_.front() != 0 || remove_offsets_.front() != 0) return false;
  if (insert_offsets_.back() != static_cast<EdgeId>(inserts_.size())) return false;
  if (remove_offsets_.back() != static_cast<EdgeId>(removes_.size())) return false;
  if (inserted_edges_ != static_cast<EdgeId>(inserts_.size())) return false;
  if (removed_edges_ != static_cast<EdgeId>(removes_.size())) return false;
  if (!std::is_sorted(dead_.begin(), dead_.end())) return false;
  for (std::size_t s = 0; s < touched_.size(); ++s) {
    const VertexId v = touched_[s];
    if (v < 0 || v >= num_vertices_) return false;
    if (insert_offsets_[s] > insert_offsets_[s + 1]) return false;
    if (remove_offsets_[s] > remove_offsets_[s + 1]) return false;
    if (insert_offsets_[s] == insert_offsets_[s + 1] &&
        remove_offsets_[s] == remove_offsets_[s + 1])
      return false;  // touched vertices must carry a net change
    const auto base = base_neighbors(v);
    const auto ins = inserted_neighbors(v);
    const auto rem = removed_neighbors(v);
    for (std::size_t i = 0; i < ins.size(); ++i) {
      const VertexId u = ins[i];
      if (u < 0 || u >= num_vertices_ || u == v) return false;
      if (i > 0 && ins[i - 1] >= u) return false;  // sorted, duplicate-free
      // Insertions must stay disjoint from base.
      if (std::find(base.begin(), base.end(), u) != base.end()) return false;
    }
    for (std::size_t i = 0; i < rem.size(); ++i) {
      const VertexId u = rem[i];
      if (i > 0 && rem[i - 1] >= u) return false;
      // Tombstones must retract actual base edges.
      if (std::find(base.begin(), base.end(), u) == base.end()) return false;
    }
  }
  // Dead vertices are fully retracted: live degree 0 as of this version.
  for (VertexId v : dead_) {
    if (v < 0 || v >= num_vertices_) return false;
    if (degree(v) != 0) return false;
  }
  return true;
}

// ---------------------------------------------------------- StreamingGraph

StreamingGraph::StreamingGraph(const Dataset& dataset, StreamingConfig config)
    : dataset_(&dataset),
      config_(config),
      delta_(std::make_shared<const CsrGraph>(dataset.graph), config.num_stripes,
             config.symmetric),
      features_(dataset.features) {
  if (dataset.features.rows() != dataset.graph.num_vertices())
    throw std::invalid_argument("StreamingGraph: features/graph size mismatch");
  // The overlay merge (and the rebuild equivalence it guarantees)
  // requires sorted base adjacency — what build_csr always produces.
  for (VertexId v = 0; v < dataset.graph.num_vertices(); ++v) {
    const auto neighbors = dataset.graph.neighbors(v);
    if (!std::is_sorted(neighbors.begin(), neighbors.end()))
      throw std::invalid_argument("StreamingGraph: base adjacency must be sorted per vertex");
  }
  const auto base = delta_.base();
  base_max_degree_ = base->max_degree();
  bind_telemetry();
  install_version(base, base_max_degree_, delta_.snapshot(/*advance_epoch=*/false),
                  std::nullopt);
}

StreamingGraph::~StreamingGraph() {
  if (config_.telemetry != nullptr) config_.telemetry->registry().detach(this);
}

void StreamingGraph::bind_telemetry() {
  if (config_.telemetry == nullptr) return;
  tracer_ = &config_.telemetry->tracer();
  journal_ = &config_.telemetry->journal();
  MetricsRegistry& reg = config_.telemetry->registry();
  // Per-shard graphs prefix every name ("shard0.stream.publishes") so N
  // graphs sharing one registry never collide; the flat single-graph
  // names are the empty-prefix case.
  const auto name = [this](const char* suffix) { return config_.metric_prefix + suffix; };
  m_ingested_ = &reg.counter(name("stream.ingested_edges"));
  m_duplicates_ = &reg.counter(name("stream.duplicate_edges"));
  m_removed_ = &reg.counter(name("stream.removed_edges"));
  m_rejected_removals_ = &reg.counter(name("stream.rejected_removals"));
  m_added_vertices_ = &reg.counter(name("stream.added_vertices"));
  m_removed_vertices_ = &reg.counter(name("stream.removed_vertices"));
  m_recycled_vertices_ = &reg.counter(name("stream.recycled_vertices"));
  m_feature_updates_ = &reg.counter(name("stream.feature_updates"));
  m_publishes_ = &reg.counter(name("stream.publishes"));
  m_compactions_ = &reg.counter(name("stream.compactions"));
  m_annihilations_ = &reg.counter(name("stream.annihilations"));
  m_expired_ = &reg.counter(name("stream.expired_vertices"));
  m_cache_reranks_ = &reg.counter(name("stream.cache_reranks"));
  m_publish_lag_ = &reg.histogram(name("stream.publish_lag_ms"));
  // Structural state is pulled at snapshot time (callback gauges) —
  // overlay/tombstone/base sizes change on every op and counting them
  // twice would put a second atomic on the ingest path for nothing.
  // Detached (values frozen) in the destructor.
  reg.register_callback(name("stream.overlay_edges"), this,
                        [this] { return static_cast<double>(delta_.delta_edges()); });
  reg.register_callback(name("stream.tombstones"), this,
                        [this] { return static_cast<double>(delta_.delta_removes()); });
  reg.register_callback(name("stream.base_edges"), this,
                        [this] { return static_cast<double>(delta_.base()->num_edges()); });
  reg.register_callback(name("stream.dead_vertices"), this,
                        [this] { return static_cast<double>(delta_.dead_vertices()); });
  reg.register_callback(name("stream.num_vertices"), this,
                        [this] { return static_cast<double>(delta_.num_vertices()); });
  reg.register_callback(name("stream.version_id"), this,
                        [this] { return static_cast<double>(current()->id()); });
  reg.register_callback(name("stream.annihilated_ops"), this,
                        [this] { return static_cast<double>(delta_.annihilated_ops()); });
  reg.register_callback(name("stream.recyclable_vertices"), this,
                        [this] { return static_cast<double>(delta_.recyclable_vertices()); });
  reg.register_callback(name("featstore.rows"), this,
                        [this] { return static_cast<double>(features_.rows()); });
  reg.register_callback(name("featstore.released_rows"), this,
                        [this] { return static_cast<double>(features_.released_rows()); });
}

bool StreamingGraph::add_edge(VertexId u, VertexId v) {
  std::int64_t landed;
  if (config_.symmetric) {
    // Both directions under both stripes: no snapshot (or racing
    // removal) ever observes a half-inserted undirected edge.
    landed = delta_.add_edge_pair(u, v);
  } else {
    landed = delta_.add_edge(u, v) ? 1 : 0;
  }
  if (landed == 0) {
    duplicate_edges_.fetch_add(1, std::memory_order_relaxed);
    if (m_duplicates_ != nullptr) m_duplicates_->add(1);
    return false;
  }
  ingested_edges_.fetch_add(landed, std::memory_order_relaxed);
  if (m_ingested_ != nullptr) m_ingested_->add(landed);
  note_pending_ingest();
  return true;
}

bool StreamingGraph::remove_edge(VertexId u, VertexId v) {
  std::int64_t landed;
  if (config_.symmetric) {
    landed = delta_.remove_edge_pair(u, v);
  } else {
    landed = delta_.remove_edge(u, v) ? 1 : 0;
  }
  if (landed == 0) {
    rejected_removals_.fetch_add(1, std::memory_order_relaxed);
    if (m_rejected_removals_ != nullptr) m_rejected_removals_->add(1);
    return false;
  }
  removed_edges_.fetch_add(landed, std::memory_order_relaxed);
  if (m_removed_ != nullptr) m_removed_->add(landed);
  note_pending_ingest();
  return true;
}

VertexId StreamingGraph::add_vertex(std::span<const float> features) {
  VertexId id;
  bool recycled = false;
  {
    std::lock_guard lock(vertex_mutex_);
    // Prefer a recycled id: the dead vertex's edges were folded away by
    // a compaction, so the slot is indistinguishable from a fresh one,
    // and its extension feature row is reused instead of growing the
    // store.  Reclaim + reuse stay under vertex_mutex_ so they pair
    // atomically against remove_vertex's retire + release.  Sharded
    // facades disable recycling: all shards must hand out the SAME id
    // for the same logical add, and free lists drain on independent
    // per-shard compaction schedules.
    id = config_.recycle_ids ? delta_.reclaim_vertex() : VertexId{-1};
    if (id >= 0) {
      features_.reuse_row(id, features);
      recycled = true;
    } else {
      // Feature row first: any version published after add_vertices()
      // sees a vertex whose feature row already exists.
      const std::int64_t row = features_.append_row(features);
      id = delta_.add_vertices(1);
      if (row != id)
        throw std::logic_error("StreamingGraph: feature rows out of sync with vertex space");
    }
  }
  if (recycled) {
    recycled_vertices_.fetch_add(1, std::memory_order_relaxed);
    if (m_recycled_vertices_ != nullptr) m_recycled_vertices_->add(1);
  }
  added_vertices_.fetch_add(1, std::memory_order_relaxed);
  if (m_added_vertices_ != nullptr) m_added_vertices_->add(1);
  note_pending_ingest();
  return id;
}

bool StreamingGraph::remove_vertex(VertexId v) {
  {
    std::lock_guard lock(vertex_mutex_);
    const std::int64_t retracted = delta_.remove_vertex(v);
    if (retracted < 0) return false;
    // Zero the row and evict any pinned device copy under cache_mutex_
    // so neither a racing update_feature nor the cache can ever serve
    // the retracted entity's features; vertex_mutex_ is still held, so
    // release always happens-before any reclaim/reuse of the id.
    std::lock_guard cache_lock(cache_mutex_);
    features_.release_row(v);
    if (cache_ != nullptr) {
      const VertexId ids[1] = {v};
      cache_->evict(std::span<const VertexId>(ids, 1));
    }
    removed_edges_.fetch_add(retracted, std::memory_order_relaxed);
    if (m_removed_ != nullptr) m_removed_->add(retracted);
  }
  removed_vertices_.fetch_add(1, std::memory_order_relaxed);
  if (m_removed_vertices_ != nullptr) m_removed_vertices_->add(1);
  note_pending_ingest();
  return true;
}

bool StreamingGraph::update_feature(VertexId v, std::span<const float> values) {
  // cache_mutex_ serialises the row write with the cache refresh, so the
  // device copy can never lag a completed update.  It also serialises
  // against remove_vertex's release+evict, so the dead check below can
  // never interleave with a retraction: a retracted entity's zeroed row
  // is never repopulated.
  std::lock_guard lock(cache_mutex_);
  if (delta_.is_dead(v)) return false;
  features_.update_row(v, values);
  if (cache_ != nullptr) {
    const VertexId ids[1] = {v};
    cache_->invalidate(std::span<const VertexId>(ids, 1));
  }
  feature_updates_.fetch_add(1, std::memory_order_relaxed);
  if (m_feature_updates_ != nullptr) m_feature_updates_->add(1);
  return true;
}

void StreamingGraph::refresh_mirror_row(VertexId v, std::span<const float> values) {
  // Same locking discipline as update_feature (row write + cache
  // invalidate are one atom against remove_vertex's release+evict), but
  // no ingest counter and no freshness credit: this is a mirror
  // catching up to the owner's row, not a new write.
  std::lock_guard lock(cache_mutex_);
  if (delta_.is_dead(v)) return;
  features_.update_row(v, values);
  if (cache_ != nullptr) {
    const VertexId ids[1] = {v};
    cache_->invalidate(std::span<const VertexId>(ids, 1));
  }
}

std::shared_ptr<const GraphVersion> StreamingGraph::publish() {
  const bool traced = tracer_ != nullptr && tracer_->enabled();
  const std::int64_t begin_ns = traced ? StageTracer::now_ns() : 0;
  std::lock_guard maintenance(maintenance_mutex_);
  auto base = delta_.base();
  const EdgeId base_max = base_max_degree_;
  // Claim the marker BEFORE the snapshot: an op racing the snapshot
  // re-arms it, so it can never be reset away while still unpublished.
  const auto marker = take_pending_marker();
  auto snapshot = delta_.snapshot(/*advance_epoch=*/true);
  {
    std::function<void()> hook;
    {
      std::lock_guard hook_lock(hook_mutex_);
      hook = publish_hook_;
    }
    if (hook) hook();
  }
  const std::uint64_t ops =
      static_cast<std::uint64_t>(snapshot.num_inserts + snapshot.num_removes);
  auto version = install_version(std::move(base), base_max, std::move(snapshot), marker);
  publishes_.fetch_add(1, std::memory_order_relaxed);
  if (m_publishes_ != nullptr) m_publishes_->add(1);
  if (traced)
    tracer_->record(TraceStage::kPublish, version->id(), ops, begin_ns,
                    StageTracer::now_ns());
  if (journal_ != nullptr)
    journal_->log("publish", "version=" + std::to_string(version->id()) +
                                 " overlay_ops=" + std::to_string(ops));
  return version;
}

std::shared_ptr<const GraphVersion> StreamingGraph::current() const {
  std::lock_guard lock(version_mutex_);
  return current_;
}

bool StreamingGraph::compact() {
  // ---- 1. CUT (locked, O(overlay)): snapshot + epoch cut + in-flight
  // mark.  No pending-marker claim here: the cut ops stay INVISIBLE
  // until a publish or the rebase installs them, so they must keep
  // driving pending_staleness() — that is exactly what lets the SLO
  // publisher make them visible while the build below runs off-lock.
  DeltaStore::Snapshot snap;
  std::shared_ptr<const CsrGraph> base;
  const bool traced = tracer_ != nullptr && tracer_->enabled();
  std::int64_t phase_begin_ns = traced ? StageTracer::now_ns() : 0;
  {
    std::lock_guard maintenance(maintenance_mutex_);
    if (fold_in_flight_.load(std::memory_order_relaxed)) return false;  // one fold at a time
    base = delta_.base();
    const bool scrubs = delta_.has_pending_scrubs();
    snap = delta_.snapshot(/*advance_epoch=*/true);
    // Raw ops, not net: cancelled insert/delete pairs reduce to no
    // topology change but must still be truncated, or the op-count
    // compaction trigger could never clear under churn.
    if (snap.raw_ops == 0 && snap.num_vertices == base->num_vertices() && !scrubs) return false;
    delta_.begin_fold(snap.epoch);
    fold_in_flight_.store(true, std::memory_order_release);
  }
  // The fold's three phases share the cut epoch as trace context, so
  // context_path(epoch) reconstructs CUT -> BUILD -> REBASE end to end.
  const auto fold_ctx = static_cast<std::uint64_t>(snap.epoch);
  if (traced) {
    tracer_->record(TraceStage::kCut, fold_ctx,
                    static_cast<std::uint64_t>(snap.raw_ops), phase_begin_ns,
                    StageTracer::now_ns());
    phase_begin_ns = StageTracer::now_ns();
  }

  // ---- 2. BUILD (off-lock, O(base)): `base` and `snap` are private
  // immutable copies, so publishes, ingest and gated annihilation
  // passes interleave freely while the merged CSR is assembled.
  std::shared_ptr<const CsrGraph> merged;
  try {
    // Per-vertex tombstone/insert spans from the snapshot, so the union
    // enumeration can drop retracted edges as it walks the base.
    std::unordered_map<VertexId, std::size_t> slot_of;
    slot_of.reserve(snap.touched.size());
    for (std::size_t s = 0; s < snap.touched.size(); ++s) slot_of.emplace(snap.touched[s], s);

    std::vector<std::pair<VertexId, VertexId>> edges;
    edges.reserve(
        static_cast<std::size_t>(base->num_edges() + snap.num_inserts - snap.num_removes));
    for (VertexId v = 0; v < base->num_vertices(); ++v) {
      const auto it = slot_of.find(v);
      if (it == slot_of.end()) {
        for (VertexId u : base->neighbors(v)) edges.emplace_back(v, u);
        continue;
      }
      const std::size_t s = it->second;
      const auto rem_lo = static_cast<std::size_t>(snap.remove_offsets[s]);
      const auto rem_hi = static_cast<std::size_t>(snap.remove_offsets[s + 1]);
      std::size_t ri = rem_lo;
      for (VertexId u : base->neighbors(v)) {
        while (ri < rem_hi && snap.removes[ri] < u) ++ri;
        if (ri < rem_hi && snap.removes[ri] == u) {
          ++ri;  // tombstoned: dropped from the fresh CSR
          continue;
        }
        edges.emplace_back(v, u);
      }
    }
    for (std::size_t s = 0; s < snap.touched.size(); ++s) {
      const VertexId v = snap.touched[s];
      for (EdgeId e = snap.insert_offsets[s]; e < snap.insert_offsets[s + 1]; ++e) {
        edges.emplace_back(v, snap.inserts[static_cast<std::size_t>(e)]);
      }
    }
    // The union is duplicate-free by the ingest-time check; dedup stays
    // on as a structural belt (it is what the round-trip tests check).
    EdgeListOptions options;
    options.symmetrize = false;
    options.remove_self_loops = false;
    options.deduplicate = true;
    merged = std::make_shared<const CsrGraph>(
        build_csr(snap.num_vertices, std::move(edges), options));

    std::function<void()> hook;
    {
      std::lock_guard hook_lock(hook_mutex_);
      hook = fold_hook_;
    }
    if (traced)
      tracer_->record(TraceStage::kBuild, fold_ctx,
                      static_cast<std::uint64_t>(merged->num_edges()), phase_begin_ns,
                      StageTracer::now_ns());
    if (hook) hook();  // test seam: park the fold here, still off-lock
  } catch (...) {
    // Abandon cleanly: the buffered ops were never touched, so the next
    // snapshot reduces them as if this fold never started.
    delta_.abort_fold();
    fold_in_flight_.store(false, std::memory_order_release);
    throw;
  }

  // ---- 3. REBASE (locked, O(overlay)): re-validate the cut against
  // the store (rebase throws if the frontier moved), swap-then-truncate
  // in one exclusive section — the membership check never sees a base
  // without the merged prefix still pending — and republish.  rebase
  // also promotes fully-folded dead streamed-in ids to the free list.
  try {
    phase_begin_ns = traced ? StageTracer::now_ns() : 0;
    std::lock_guard maintenance(maintenance_mutex_);
    delta_.rebase(merged, snap.epoch);
    base_max_degree_ = merged->max_degree();
    // Ops ingested after the cut are still pending and ride along as
    // the new overlay.  The install snapshot publishes everything
    // accepted during the build too; claim the marker (oldest op still
    // unpublished — a mid-build publish already credited anything it
    // made visible) before that snapshot, as always.
    const auto marker = take_pending_marker();
    install_version(merged, base_max_degree_, delta_.snapshot(/*advance_epoch=*/false), marker);
    fold_in_flight_.store(false, std::memory_order_release);
  } catch (...) {
    // A rebase-section throw (failed re-validation, allocation) must
    // not wedge the fold machinery: abandon the fold so later
    // compact() calls are not refused forever.  abort_fold is a no-op
    // when rebase already cleared the store-side guard.
    delta_.abort_fold();
    fold_in_flight_.store(false, std::memory_order_release);
    throw;
  }
  compactions_.fetch_add(1, std::memory_order_relaxed);
  if (m_compactions_ != nullptr) m_compactions_->add(1);
  if (traced)
    tracer_->record(TraceStage::kRebase, fold_ctx,
                    static_cast<std::uint64_t>(merged->num_edges()), phase_begin_ns,
                    StageTracer::now_ns());
  if (journal_ != nullptr)
    journal_->log("fold", "epoch=" + std::to_string(fold_ctx) +
                              " base_edges=" + std::to_string(merged->num_edges()));
  // The fold just rewrote the degree landscape the original admission
  // set was ranked by — the natural install point for the cache's
  // observed-traffic re-rank (and the moment freed slots get refilled).
  if (config_.cache_rerank) rerank_cache(*merged);
  return true;
}

void StreamingGraph::rerank_now() {
  const auto base = base_snapshot();
  rerank_cache(*base);
}

void StreamingGraph::rerank_cache(const CsrGraph& base) {
  // cache_mutex_ excludes update_feature/remove_vertex, so no host row
  // the re-admission copies from is mid-write, and the cache pointer
  // cannot be detached underneath the call.
  std::lock_guard lock(cache_mutex_);
  if (cache_ == nullptr || cache_->capacity() == 0) return;
  // Candidates: base-matrix rows the cache can pin (extension rows are
  // never admitted), minus dead vertices — a retracted entity must not
  // re-enter the cache no matter how hot its counter was.
  const VertexId limit = std::min<VertexId>(cache_->trackable_rows(), base.num_vertices());
  std::vector<VertexId> candidates;
  candidates.reserve(static_cast<std::size_t>(limit));
  for (VertexId v = 0; v < limit; ++v) {
    if (!delta_.is_dead(v)) candidates.push_back(v);
  }
  const auto top = std::min<std::size_t>(static_cast<std::size_t>(cache_->capacity()),
                                         candidates.size());
  // Observed traffic first, live degree as the cold-start tiebreak (new
  // caches and freshly-decayed counters fall back to PaGraph's degree
  // policy), vertex id last so the ranking is total and deterministic.
  const auto hotter = [&](VertexId a, VertexId b) {
    const std::uint64_t ca = cache_->access_count(a);
    const std::uint64_t cb = cache_->access_count(b);
    if (ca != cb) return ca > cb;
    const EdgeId da = base.degree(a);
    const EdgeId db = base.degree(b);
    if (da != db) return da > db;
    return a < b;
  };
  std::partial_sort(candidates.begin(),
                    candidates.begin() + static_cast<std::ptrdiff_t>(top), candidates.end(),
                    hotter);
  candidates.resize(top);
  const std::int64_t admitted = cache_->rerank(candidates);
  if (m_cache_reranks_ != nullptr) m_cache_reranks_->add(1);
  if (journal_ != nullptr)
    journal_->log("rerank", "admitted=" + std::to_string(admitted) +
                                " candidates=" + std::to_string(top));
}

EdgeId StreamingGraph::annihilate() {
  // maintenance_mutex_ excludes compact()'s cut and rebase endpoints,
  // but NOT its off-lock build: when a fold is in flight the store
  // clamps the pass to ops stamped after the fold's cut, so a pair the
  // fold captured is never erased out from under its rebase.  With no
  // fold in flight every matched pair is erasable (gate 0), including
  // pairs older than published snapshots — a GraphVersion owns copies
  // of its spans, and the net reduction of the surviving ops is
  // unchanged.
  const bool traced = tracer_ != nullptr && tracer_->enabled();
  const std::int64_t begin_ns = traced ? StageTracer::now_ns() : 0;
  std::lock_guard maintenance(maintenance_mutex_);
  const EdgeId erased = delta_.annihilate(/*gate=*/0);
  if (erased > 0) {
    annihilations_.fetch_add(1, std::memory_order_relaxed);
    if (m_annihilations_ != nullptr) m_annihilations_->add(1);
    if (journal_ != nullptr)
      journal_->log("annihilate", "erased_ops=" + std::to_string(erased));
  }
  if (traced)
    tracer_->record(TraceStage::kAnnihilate, static_cast<std::uint64_t>(erased), 0,
                    begin_ns, StageTracer::now_ns());
  return erased;
}

std::int64_t StreamingGraph::sweep_expired(Seconds ttl, std::int64_t max_retire,
                                           EdgeId pending_op_budget) {
  if (ttl < 0.0) throw std::invalid_argument("StreamingGraph::sweep_expired: negative ttl");
  if (max_retire <= 0) return 0;
  // Stamp the cutoff once: entities touched DURING the sweep compare
  // against the same horizon, so one pass retires a deterministic set.
  const std::int64_t horizon_ns =
      MutableFeatureStore::now_ns() - static_cast<std::int64_t>(ttl * 1e9);
  const bool traced = tracer_ != nullptr && tracer_->enabled();
  const std::int64_t begin_ns = traced ? StageTracer::now_ns() : 0;
  const VertexId first = dataset_->graph.num_vertices();  // dataset vertices never expire
  std::int64_t retired = 0;
  const VertexId n = num_vertices();
  for (VertexId v = first; v < n && retired < max_retire; ++v) {
    if (pending_op_budget > 0 && delta_.delta_ops() >= pending_op_budget) break;
    if (delta_.is_dead(v)) continue;
    if (features_.last_touch_ns(v) > horizon_ns) continue;
    if (remove_vertex(v)) ++retired;
  }
  expired_vertices_.fetch_add(retired, std::memory_order_relaxed);
  if (retired > 0) {
    if (m_expired_ != nullptr) m_expired_->add(retired);
    if (journal_ != nullptr)
      journal_->log("ttl_sweep", "retired=" + std::to_string(retired));
  }
  if (traced)
    tracer_->record(TraceStage::kTtlSweep, static_cast<std::uint64_t>(retired), 0,
                    begin_ns, StageTracer::now_ns());
  return retired;
}

Seconds StreamingGraph::pending_staleness() const {
  std::lock_guard lock(lag_mutex_);
  if (!pending_since_.has_value()) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - *pending_since_)
      .count();
}

StaticFeatureCache::LoadStats StreamingGraph::gather(std::span<const VertexId> nodes,
                                                     Tensor& out) const {
  std::vector<char> hit_scratch;
  return gather(nodes, out, hit_scratch);
}

StaticFeatureCache::LoadStats StreamingGraph::gather(std::span<const VertexId> nodes,
                                                     Tensor& out,
                                                     std::vector<char>& hit_scratch) const {
  StaticFeatureCache* cache;
  {
    std::lock_guard lock(cache_mutex_);
    cache = cache_;
  }
  // Two locked passes (cache device rows, then live store rows) instead
  // of a lock acquire per row — this is the serving hot path.
  if (out.rows() != static_cast<std::int64_t>(nodes.size()) || out.cols() != features_.cols())
    out.resize(static_cast<std::int64_t>(nodes.size()), features_.cols());
  StaticFeatureCache::LoadStats stats;
  const auto total = static_cast<std::int64_t>(nodes.size());
  if (cache != nullptr) {
    hit_scratch.assign(nodes.size(), 0);
    stats.hits = cache->copy_cached_rows(nodes, hit_scratch, out);
  }
  features_.gather(nodes, out, cache != nullptr ? &hit_scratch : nullptr);
  stats.misses = total - stats.hits;
  // Wire accounting at each side's own precision: device hits move the
  // cache's row size (cols+4 at int8), host misses the store's.
  stats.device_bytes = static_cast<double>(stats.hits) *
                       (cache != nullptr ? cache->device_row_wire_bytes() : 0.0);
  stats.host_bytes = static_cast<double>(stats.misses) * features_.row_wire_bytes();
  if (cache != nullptr) cache->record(stats);
  // LRU read-path touches, batched: one pass re-stamps every gathered
  // streamed-in row so read-hot entities survive TTL sweeps.  The store
  // skips base rows (dataset vertices never expire) and short-circuits
  // to zero locking when the request has no extension rows — the common
  // static-serving case pays nothing.
  features_.touch_rows(nodes);
  return stats;
}

void StreamingGraph::attach_cache(StaticFeatureCache* cache) {
  std::lock_guard lock(cache_mutex_);
  cache_ = cache;
}

void StreamingGraph::set_fold_hook(std::function<void()> hook) {
  std::lock_guard lock(hook_mutex_);
  fold_hook_ = std::move(hook);
}

void StreamingGraph::set_publish_hook(std::function<void()> hook) {
  std::lock_guard lock(hook_mutex_);
  publish_hook_ = std::move(hook);
}

double StreamingGraph::overlay_ratio() const {
  const auto base_edges = static_cast<double>(delta_.base()->num_edges());
  if (base_edges == 0.0) return delta_.delta_ops() > 0 ? 1.0 : 0.0;
  return static_cast<double>(delta_.delta_ops()) / base_edges;
}

StreamStats StreamingGraph::stats() const {
  StreamStats s;
  s.ingested_edges = ingested_edges_.load(std::memory_order_relaxed);
  s.duplicate_edges = duplicate_edges_.load(std::memory_order_relaxed);
  s.removed_edges = removed_edges_.load(std::memory_order_relaxed);
  s.rejected_removals = rejected_removals_.load(std::memory_order_relaxed);
  s.added_vertices = added_vertices_.load(std::memory_order_relaxed);
  s.removed_vertices = removed_vertices_.load(std::memory_order_relaxed);
  s.recycled_vertices = recycled_vertices_.load(std::memory_order_relaxed);
  s.feature_updates = feature_updates_.load(std::memory_order_relaxed);
  s.publishes = publishes_.load(std::memory_order_relaxed);
  s.compactions = compactions_.load(std::memory_order_relaxed);
  s.annihilations = annihilations_.load(std::memory_order_relaxed);
  s.annihilated_ops = static_cast<std::int64_t>(delta_.annihilated_ops());
  s.expired_vertices = expired_vertices_.load(std::memory_order_relaxed);
  s.overlay_edges = delta_.delta_edges();
  s.tombstones = delta_.delta_removes();
  s.base_edges = delta_.base()->num_edges();
  s.dead_vertices = delta_.dead_vertices();
  s.version_id = current()->id();
  {
    std::lock_guard lock(lag_mutex_);
    s.publish_lag_mean = lag_samples_ > 0 ? lag_sum_ / static_cast<double>(lag_samples_) : 0.0;
    s.publish_lag_max = lag_max_;
  }
  return s;
}

std::shared_ptr<const CsrGraph> StreamingGraph::base_snapshot() const { return delta_.base(); }

std::shared_ptr<const GraphVersion> StreamingGraph::install_version(
    std::shared_ptr<const CsrGraph> base, EdgeId base_max_degree, DeltaStore::Snapshot snapshot,
    std::optional<std::chrono::steady_clock::time_point> pending_marker) {
  auto version = std::make_shared<const GraphVersion>(
      std::move(base), base_max_degree, std::move(snapshot),
      version_counter_.fetch_add(1, std::memory_order_relaxed) + 1);
  if (pending_marker.has_value()) {
    // Publish lag: delay from the oldest ingest this version satisfies
    // (the marker the caller claimed before its snapshot) to the
    // install.  An op racing the snapshot re-armed a fresh marker, so
    // it keeps driving the publisher instead of being reset away.
    const Seconds lag =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - *pending_marker)
            .count();
    if (m_publish_lag_ != nullptr) m_publish_lag_->observe_seconds(lag);
    std::lock_guard lock(lag_mutex_);
    lag_sum_ += lag;
    lag_max_ = std::max(lag_max_, lag);
    ++lag_samples_;
  }
  {
    std::lock_guard lock(version_mutex_);
    current_ = version;
  }
  return version;
}

void StreamingGraph::note_pending_ingest() {
  std::lock_guard lock(lag_mutex_);
  if (!pending_since_.has_value()) pending_since_ = std::chrono::steady_clock::now();
}

std::optional<std::chrono::steady_clock::time_point> StreamingGraph::take_pending_marker() {
  std::lock_guard lock(lag_mutex_);
  auto marker = pending_since_;
  pending_since_.reset();
  return marker;
}

std::string StreamStats::to_string() const {
  std::string out;
  out += "ingested=" + format_count(static_cast<std::uint64_t>(ingested_edges));
  out += " dup=" + format_count(static_cast<std::uint64_t>(duplicate_edges));
  out += " removed=" + format_count(static_cast<std::uint64_t>(removed_edges));
  out += " vertices+=" + format_count(static_cast<std::uint64_t>(added_vertices));
  out += " vertices-=" + format_count(static_cast<std::uint64_t>(removed_vertices));
  out += " recycled=" + format_count(static_cast<std::uint64_t>(recycled_vertices));
  out += " feat_updates=" + format_count(static_cast<std::uint64_t>(feature_updates));
  out += " publishes=" + format_count(static_cast<std::uint64_t>(publishes));
  out += " compactions=" + format_count(static_cast<std::uint64_t>(compactions));
  out += " annihilated=" + format_count(static_cast<std::uint64_t>(annihilated_ops));
  out += " expired=" + format_count(static_cast<std::uint64_t>(expired_vertices));
  out += " overlay=" + format_count(static_cast<std::uint64_t>(overlay_edges));
  out += "+" + format_count(static_cast<std::uint64_t>(tombstones)) + "t";
  out += "/" + format_count(static_cast<std::uint64_t>(base_edges));
  out += " lag_mean=" + format_double(publish_lag_mean * 1e3, 3) + "ms";
  out += " lag_max=" + format_double(publish_lag_max * 1e3, 3) + "ms";
  return out;
}

}  // namespace hyscale
