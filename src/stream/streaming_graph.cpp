#include "stream/streaming_graph.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/strutil.hpp"
#include "graph/builder.hpp"

namespace hyscale {

// ------------------------------------------------------------ GraphVersion

GraphVersion::GraphVersion(std::shared_ptr<const CsrGraph> base, EdgeId base_max_degree,
                           DeltaStore::Snapshot overlay, std::uint64_t id)
    : base_(std::move(base)),
      num_vertices_(overlay.num_vertices),
      overlay_edges_(overlay.num_edges),
      max_degree_(base_max_degree),
      epoch_(overlay.epoch),
      id_(id),
      overlay_touched_(std::move(overlay.touched)),
      overlay_offsets_(std::move(overlay.offsets)),
      overlay_indices_(std::move(overlay.neighbors)) {
  slot_of_.reserve(overlay_touched_.size());
  for (std::size_t s = 0; s < overlay_touched_.size(); ++s) {
    slot_of_.emplace(overlay_touched_[s], static_cast<std::int64_t>(s));
    const VertexId v = overlay_touched_[s];
    max_degree_ = std::max(max_degree_,
                           base_degree(v) + (overlay_offsets_[s + 1] - overlay_offsets_[s]));
  }
}

std::span<const VertexId> GraphVersion::overlay_neighbors(VertexId v) const {
  const auto it = slot_of_.find(v);
  if (it == slot_of_.end()) return {};
  const auto s = static_cast<std::size_t>(it->second);
  return {overlay_indices_.data() + overlay_offsets_[s],
          static_cast<std::size_t>(overlay_offsets_[s + 1] - overlay_offsets_[s])};
}

void GraphVersion::append_neighbors(VertexId v, std::vector<VertexId>& out) const {
  const auto base = base_neighbors(v);
  out.insert(out.end(), base.begin(), base.end());
  const auto overlay = overlay_neighbors(v);
  out.insert(out.end(), overlay.begin(), overlay.end());
}

bool GraphVersion::validate() const {
  if (!base_->validate()) return false;
  if (num_vertices_ < base_->num_vertices()) return false;
  if (overlay_offsets_.size() != overlay_touched_.size() + 1) return false;
  if (overlay_offsets_.front() != 0) return false;
  if (overlay_offsets_.back() != static_cast<EdgeId>(overlay_indices_.size())) return false;
  if (overlay_edges_ != static_cast<EdgeId>(overlay_indices_.size())) return false;
  for (std::size_t s = 0; s < overlay_touched_.size(); ++s) {
    const VertexId v = overlay_touched_[s];
    if (v < 0 || v >= num_vertices_) return false;
    if (overlay_offsets_[s] > overlay_offsets_[s + 1]) return false;
    const auto base = base_neighbors(v);
    const auto overlay = overlay_neighbors(v);
    for (std::size_t i = 0; i < overlay.size(); ++i) {
      const VertexId u = overlay[i];
      if (u < 0 || u >= num_vertices_ || u == v) return false;
      // Overlay must stay disjoint from base and duplicate-free.
      if (std::find(base.begin(), base.end(), u) != base.end()) return false;
      if (std::find(overlay.begin(), overlay.begin() + static_cast<std::ptrdiff_t>(i), u) !=
          overlay.begin() + static_cast<std::ptrdiff_t>(i))
        return false;
    }
  }
  return true;
}

// ---------------------------------------------------------- StreamingGraph

StreamingGraph::StreamingGraph(const Dataset& dataset, StreamingConfig config)
    : dataset_(&dataset),
      config_(config),
      delta_(std::make_shared<const CsrGraph>(dataset.graph), config.num_stripes),
      features_(dataset.features) {
  if (dataset.features.rows() != dataset.graph.num_vertices())
    throw std::invalid_argument("StreamingGraph: features/graph size mismatch");
  const auto base = delta_.base();
  base_max_degree_ = base->max_degree();
  install_version(base, base_max_degree_, delta_.snapshot(/*advance_epoch=*/false));
}

bool StreamingGraph::add_edge(VertexId u, VertexId v) {
  std::int64_t landed;
  if (config_.symmetric) {
    // Both directions in one DeltaStore critical section: no snapshot
    // ever publishes a half-inserted undirected edge.
    landed = delta_.add_edge_pair(u, v);
  } else {
    landed = delta_.add_edge(u, v) ? 1 : 0;
  }
  if (landed == 0) {
    duplicate_edges_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  ingested_edges_.fetch_add(landed, std::memory_order_relaxed);
  note_pending_ingest();
  return true;
}

VertexId StreamingGraph::add_vertex(std::span<const float> features) {
  std::lock_guard lock(vertex_mutex_);
  // Feature row first: any version published after add_vertices() sees a
  // vertex whose feature row already exists.
  const std::int64_t row = features_.append_row(features);
  const VertexId id = delta_.add_vertices(1);
  if (row != id)
    throw std::logic_error("StreamingGraph: feature rows out of sync with vertex space");
  added_vertices_.fetch_add(1, std::memory_order_relaxed);
  note_pending_ingest();
  return id;
}

void StreamingGraph::update_feature(VertexId v, std::span<const float> values) {
  // cache_mutex_ serialises the row write with the cache refresh, so the
  // device copy can never lag a completed update.
  std::lock_guard lock(cache_mutex_);
  features_.update_row(v, values);
  if (cache_ != nullptr) {
    const VertexId ids[1] = {v};
    cache_->invalidate(std::span<const VertexId>(ids, 1));
  }
  feature_updates_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const GraphVersion> StreamingGraph::publish() {
  std::lock_guard maintenance(maintenance_mutex_);
  auto base = delta_.base();
  const EdgeId base_max = base_max_degree_;
  auto version =
      install_version(std::move(base), base_max, delta_.snapshot(/*advance_epoch=*/true));
  publishes_.fetch_add(1, std::memory_order_relaxed);
  return version;
}

std::shared_ptr<const GraphVersion> StreamingGraph::current() const {
  std::lock_guard lock(version_mutex_);
  return current_;
}

bool StreamingGraph::compact() {
  std::lock_guard maintenance(maintenance_mutex_);
  const auto base = delta_.base();
  const DeltaStore::Snapshot snap = delta_.snapshot(/*advance_epoch=*/true);
  if (snap.num_edges == 0 && snap.num_vertices == base->num_vertices()) return false;

  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(static_cast<std::size_t>(base->num_edges() + snap.num_edges));
  for (VertexId v = 0; v < base->num_vertices(); ++v) {
    for (VertexId u : base->neighbors(v)) edges.emplace_back(v, u);
  }
  for (std::size_t s = 0; s < snap.touched.size(); ++s) {
    const VertexId v = snap.touched[s];
    for (EdgeId e = snap.offsets[s]; e < snap.offsets[s + 1]; ++e) {
      edges.emplace_back(v, snap.neighbors[static_cast<std::size_t>(e)]);
    }
  }
  // The union is duplicate-free by the ingest-time check; dedup stays on
  // as a structural belt (it is what the round-trip tests exercise).
  EdgeListOptions options;
  options.symmetrize = false;
  options.remove_self_loops = false;
  options.deduplicate = true;
  auto merged =
      std::make_shared<const CsrGraph>(build_csr(snap.num_vertices, std::move(edges), options));

  // Swap-then-truncate in one exclusive section: the duplicate check
  // never sees a base without the merged prefix still pending.
  delta_.rebase(merged, snap.epoch);
  base_max_degree_ = merged->max_degree();
  // Republish over the new base; edges ingested after the snapshot are
  // still pending and ride along as the new overlay.
  install_version(merged, base_max_degree_, delta_.snapshot(/*advance_epoch=*/false));
  compactions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

StaticFeatureCache::LoadStats StreamingGraph::gather(std::span<const VertexId> nodes,
                                                     Tensor& out) const {
  StaticFeatureCache* cache;
  {
    std::lock_guard lock(cache_mutex_);
    cache = cache_;
  }
  // Two locked passes (cache device rows, then live store rows) instead
  // of a lock acquire per row — this is the serving hot path.
  out.resize(static_cast<std::int64_t>(nodes.size()), features_.cols());
  StaticFeatureCache::LoadStats stats;
  const double row_bytes = static_cast<double>(features_.cols()) * 4.0;
  const auto total = static_cast<std::int64_t>(nodes.size());
  std::vector<char> hit;
  if (cache != nullptr) {
    hit.assign(nodes.size(), 0);
    stats.hits = cache->copy_cached_rows(nodes, hit, out);
  }
  features_.gather(nodes, out, cache != nullptr ? &hit : nullptr);
  stats.misses = total - stats.hits;
  stats.device_bytes = static_cast<double>(stats.hits) * row_bytes;
  stats.host_bytes = static_cast<double>(stats.misses) * row_bytes;
  if (cache != nullptr) cache->record(stats);
  return stats;
}

void StreamingGraph::attach_cache(StaticFeatureCache* cache) {
  std::lock_guard lock(cache_mutex_);
  cache_ = cache;
}

double StreamingGraph::overlay_ratio() const {
  const auto base_edges = static_cast<double>(delta_.base()->num_edges());
  if (base_edges == 0.0) return delta_.delta_edges() > 0 ? 1.0 : 0.0;
  return static_cast<double>(delta_.delta_edges()) / base_edges;
}

StreamStats StreamingGraph::stats() const {
  StreamStats s;
  s.ingested_edges = ingested_edges_.load(std::memory_order_relaxed);
  s.duplicate_edges = duplicate_edges_.load(std::memory_order_relaxed);
  s.added_vertices = added_vertices_.load(std::memory_order_relaxed);
  s.feature_updates = feature_updates_.load(std::memory_order_relaxed);
  s.publishes = publishes_.load(std::memory_order_relaxed);
  s.compactions = compactions_.load(std::memory_order_relaxed);
  s.overlay_edges = delta_.delta_edges();
  s.base_edges = delta_.base()->num_edges();
  s.version_id = current()->id();
  {
    std::lock_guard lock(lag_mutex_);
    s.publish_lag_mean = lag_samples_ > 0 ? lag_sum_ / static_cast<double>(lag_samples_) : 0.0;
    s.publish_lag_max = lag_max_;
  }
  return s;
}

std::shared_ptr<const CsrGraph> StreamingGraph::base_snapshot() const { return delta_.base(); }

std::shared_ptr<const GraphVersion> StreamingGraph::install_version(
    std::shared_ptr<const CsrGraph> base, EdgeId base_max_degree, DeltaStore::Snapshot snapshot) {
  auto version = std::make_shared<const GraphVersion>(
      std::move(base), base_max_degree, std::move(snapshot),
      version_counter_.fetch_add(1, std::memory_order_relaxed) + 1);
  {
    // Publish lag: delay from the oldest ingest still waiting for a
    // version to this install.  Approximate for edges racing the
    // snapshot itself (they are timed from the NEXT pending marker).
    std::lock_guard lock(lag_mutex_);
    if (pending_since_.has_value()) {
      const Seconds lag = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                        *pending_since_)
                              .count();
      lag_sum_ += lag;
      lag_max_ = std::max(lag_max_, lag);
      ++lag_samples_;
      pending_since_.reset();
    }
  }
  {
    std::lock_guard lock(version_mutex_);
    current_ = version;
  }
  return version;
}

void StreamingGraph::note_pending_ingest() {
  std::lock_guard lock(lag_mutex_);
  if (!pending_since_.has_value()) pending_since_ = std::chrono::steady_clock::now();
}

std::string StreamStats::to_string() const {
  std::string out;
  out += "ingested=" + format_count(static_cast<std::uint64_t>(ingested_edges));
  out += " dup=" + format_count(static_cast<std::uint64_t>(duplicate_edges));
  out += " vertices+=" + format_count(static_cast<std::uint64_t>(added_vertices));
  out += " feat_updates=" + format_count(static_cast<std::uint64_t>(feature_updates));
  out += " publishes=" + format_count(static_cast<std::uint64_t>(publishes));
  out += " compactions=" + format_count(static_cast<std::uint64_t>(compactions));
  out += " overlay=" + format_count(static_cast<std::uint64_t>(overlay_edges));
  out += "/" + format_count(static_cast<std::uint64_t>(base_edges));
  out += " lag_mean=" + format_double(publish_lag_mean * 1e3, 3) + "ms";
  out += " lag_max=" + format_double(publish_lag_max * 1e3, 3) + "ms";
  return out;
}

}  // namespace hyscale
