// Versioned dynamic graph: immutable base CSR + delta overlay, published
// as copy-on-publish snapshots.
//
// Writers (ingest threads) append into the DeltaStore and update the
// MutableFeatureStore; readers (samplers, serving workers) hold a
// shared_ptr<const GraphVersion> — a fully immutable view of base CSR +
// overlay adjacency — obtained from current().  publish() builds a fresh
// version from a point-in-time delta snapshot and swaps the current
// pointer atomically, so a reader either sees the whole new version or
// the whole old one, never a mix.  compact() folds the delta into a
// fresh CSR via graph/builder and installs it as the new base, keeping
// post-snapshot arrivals in the buffers (epoch cut).
//
// Lifetime: versions are shared_ptrs over a shared_ptr'd base CSR, so a
// sampler can keep sampling an old version while newer ones are
// published or the base is swapped underneath.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/timer.hpp"
#include "graph/datasets.hpp"
#include "runtime/feature_cache.hpp"
#include "stream/delta_store.hpp"
#include "stream/feature_store.hpp"

namespace hyscale {

/// Immutable point-in-time view of the evolving graph.  All methods are
/// const and safe for concurrent readers.
class GraphVersion {
 public:
  GraphVersion(std::shared_ptr<const CsrGraph> base, EdgeId base_max_degree,
               DeltaStore::Snapshot overlay, std::uint64_t id);

  VertexId num_vertices() const { return num_vertices_; }
  EdgeId num_edges() const { return base_->num_edges() + overlay_edges_; }
  EdgeId base_edges() const { return base_->num_edges(); }
  EdgeId overlay_edges() const { return overlay_edges_; }

  EdgeId base_degree(VertexId v) const {
    return v < base_->num_vertices() ? base_->degree(v) : 0;
  }
  EdgeId overlay_degree(VertexId v) const {
    const auto it = slot_of_.find(v);
    if (it == slot_of_.end()) return 0;
    return overlay_offsets_[static_cast<std::size_t>(it->second) + 1] -
           overlay_offsets_[static_cast<std::size_t>(it->second)];
  }
  EdgeId degree(VertexId v) const { return base_degree(v) + overlay_degree(v); }

  std::span<const VertexId> base_neighbors(VertexId v) const {
    return v < base_->num_vertices() ? base_->neighbors(v) : std::span<const VertexId>{};
  }
  std::span<const VertexId> overlay_neighbors(VertexId v) const;

  /// Appends v's combined (base then overlay) adjacency to `out`.
  void append_neighbors(VertexId v, std::vector<VertexId>& out) const;

  /// Highest combined degree; precomputed at publish (O(overlay)).
  EdgeId max_degree() const { return max_degree_; }

  const CsrGraph& base() const { return *base_; }
  std::uint64_t id() const { return id_; }
  Epoch epoch() const { return epoch_; }

  /// Structural sanity for tests: offsets monotone, neighbor ids in
  /// range, overlay disjoint from base per vertex.
  bool validate() const;

 private:
  std::shared_ptr<const CsrGraph> base_;
  VertexId num_vertices_ = 0;
  EdgeId overlay_edges_ = 0;
  EdgeId max_degree_ = 0;
  Epoch epoch_ = 0;
  std::uint64_t id_ = 0;
  std::vector<VertexId> overlay_touched_;
  std::vector<EdgeId> overlay_offsets_;    ///< size touched + 1
  std::vector<VertexId> overlay_indices_;
  std::unordered_map<VertexId, std::int64_t> slot_of_;  ///< vertex -> touched slot
};

struct StreamingConfig {
  /// Insert both directions of every edge (datasets here are undirected).
  bool symmetric = true;
  std::size_t num_stripes = 64;
};

/// Point-in-time ingest/publish counters.
struct StreamStats {
  std::int64_t ingested_edges = 0;     ///< accepted directed insertions
  std::int64_t duplicate_edges = 0;    ///< rejected (already in base or delta)
  std::int64_t added_vertices = 0;
  std::int64_t feature_updates = 0;
  std::int64_t publishes = 0;
  std::int64_t compactions = 0;
  EdgeId overlay_edges = 0;            ///< pending (unmerged) delta edges
  EdgeId base_edges = 0;
  std::uint64_t version_id = 0;
  Seconds publish_lag_mean = 0.0;  ///< oldest-pending-ingest -> publish delay
  Seconds publish_lag_max = 0.0;

  std::string to_string() const;
};

class StreamingGraph {
 public:
  /// Copies the dataset's topology and features as the initial base.
  /// `dataset` must outlive the graph (info/labels are referenced).
  explicit StreamingGraph(const Dataset& dataset, StreamingConfig config = {});

  StreamingGraph(const StreamingGraph&) = delete;
  StreamingGraph& operator=(const StreamingGraph&) = delete;

  // ---- ingest (thread-safe, lock-striped) ----

  /// Inserts edge {u, v} (both directions when config.symmetric).
  /// Returns false for self loops and edges already present.  The edge
  /// becomes visible to samplers at the next publish().
  bool add_edge(VertexId u, VertexId v);

  /// Adds one vertex with the given feature row; returns its id.  The
  /// vertex becomes sample-able after the next publish().
  VertexId add_vertex(std::span<const float> features);

  /// Overwrites v's feature row and refreshes any attached
  /// StaticFeatureCache so the new values are served immediately
  /// (features are NOT versioned — freshness beats snapshot isolation
  /// for embeddings/profiles).
  void update_feature(VertexId v, std::span<const float> values);

  // ---- versions ----

  /// Builds an immutable snapshot of base + pending delta and makes it
  /// the current version.  O(overlay) copy, single atomic swap.
  std::shared_ptr<const GraphVersion> publish();

  /// The latest published version.  Never null; never half-published.
  std::shared_ptr<const GraphVersion> current() const;

  /// Merges base + delta into a fresh CSR (graph/builder), installs it
  /// as the new base and republishes.  Edges ingested after the internal
  /// snapshot survive in the delta (epoch cut).  Returns false when
  /// there was nothing to merge.
  bool compact();

  // ---- feature access ----

  MutableFeatureStore& features() { return features_; }
  const MutableFeatureStore& features() const { return features_; }

  /// Serving gather: pinned rows from the attached cache's device copy,
  /// everything else from the feature store.  Returns hit/miss traffic
  /// for ServingStats.
  StaticFeatureCache::LoadStats gather(std::span<const VertexId> nodes, Tensor& out) const;

  /// Registers the cache refreshed by update_feature (pass nullptr to
  /// detach).  The cache must be built over features().base().
  void attach_cache(StaticFeatureCache* cache);

  // ---- observability ----

  EdgeId overlay_edges() const { return delta_.delta_edges(); }
  double overlay_ratio() const;
  VertexId num_vertices() const { return delta_.num_vertices(); }
  const Dataset& dataset() const { return *dataset_; }
  const StreamingConfig& config() const { return config_; }
  StreamStats stats() const;

 private:
  std::shared_ptr<const CsrGraph> base_snapshot() const;
  std::shared_ptr<const GraphVersion> install_version(std::shared_ptr<const CsrGraph> base,
                                                      EdgeId base_max_degree,
                                                      DeltaStore::Snapshot snapshot);
  void note_pending_ingest();

  const Dataset* dataset_;
  StreamingConfig config_;
  DeltaStore delta_;
  MutableFeatureStore features_;

  mutable std::mutex version_mutex_;  ///< guards base_/base_max_degree_/current_
  std::shared_ptr<const CsrGraph> base_;
  EdgeId base_max_degree_ = 0;
  std::shared_ptr<const GraphVersion> current_;
  std::atomic<std::uint64_t> version_counter_{0};

  std::mutex maintenance_mutex_;  ///< serializes publish() and compact()
  std::mutex vertex_mutex_;       ///< keeps feature rows and vertex ids in lockstep

  mutable std::mutex cache_mutex_;  ///< guards cache_ pointer + feature update/refresh pairs
  StaticFeatureCache* cache_ = nullptr;

  mutable std::mutex lag_mutex_;  ///< publish-lag bookkeeping
  std::optional<std::chrono::steady_clock::time_point> pending_since_;
  Seconds lag_sum_ = 0.0;
  Seconds lag_max_ = 0.0;
  std::int64_t lag_samples_ = 0;

  std::atomic<std::int64_t> ingested_edges_{0};
  std::atomic<std::int64_t> duplicate_edges_{0};
  std::atomic<std::int64_t> added_vertices_{0};
  std::atomic<std::int64_t> feature_updates_{0};
  std::atomic<std::int64_t> publishes_{0};
  std::atomic<std::int64_t> compactions_{0};
};

}  // namespace hyscale
