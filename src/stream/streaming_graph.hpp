// Versioned dynamic graph: immutable base CSR + delta overlay (edge
// insertions AND tombstones), published as copy-on-publish snapshots.
//
// Writers (ingest threads) append signed edge ops into the DeltaStore
// and update the MutableFeatureStore; readers (samplers, serving
// workers) hold a shared_ptr<const GraphVersion> — a fully immutable
// view of base CSR + overlay — obtained from current().  publish()
// builds a fresh version from a point-in-time delta snapshot and swaps
// the current pointer atomically, so a reader either sees the whole new
// version or the whole old one, never a mix.  compact() folds the delta
// into a fresh CSR via graph/builder — adding net insertions, dropping
// tombstoned edges and isolating fully-deleted vertices — and installs
// it as the new base, keeping post-snapshot arrivals in the buffers
// (epoch cut).
//
// The live adjacency of a vertex is (base minus tombstones) merged with
// the overlay insertions IN SORTED ORDER — identical, element for
// element, to the adjacency a from-scratch build_csr over the live edge
// set would produce.  That makes OverlaySampler bit-identical to
// NeighborSampler over a rebuilt CSR for any fanout and seed, which is
// the invariant the stream-vs-rebuild differential harness checks at
// every publish point.
//
// Deleted vertices stay in the vertex space (ids are stable handles for
// serving) with live degree 0 and a zeroed feature row; streamed-in ids
// are recycled through add_vertex once a compaction has folded the
// death, so churning entity feeds don't grow the extension area
// forever.
//
// Lifetime: versions are shared_ptrs over a shared_ptr'd base CSR, so a
// sampler can keep sampling an old version while newer ones are
// published or the base is swapped underneath.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/timer.hpp"
#include "graph/datasets.hpp"
#include "obs/telemetry.hpp"
#include "runtime/feature_cache.hpp"
#include "stream/delta_store.hpp"
#include "stream/expiry_target.hpp"
#include "stream/feature_store.hpp"

namespace hyscale {

/// Immutable point-in-time view of the evolving graph.  All methods are
/// const and safe for concurrent readers.
class GraphVersion {
 public:
  GraphVersion(std::shared_ptr<const CsrGraph> base, EdgeId base_max_degree,
               DeltaStore::Snapshot overlay, std::uint64_t id);

  VertexId num_vertices() const { return num_vertices_; }
  /// Live directed edges: base + insertions - tombstones.
  EdgeId num_edges() const { return base_->num_edges() + inserted_edges_ - removed_edges_; }
  EdgeId base_edges() const { return base_->num_edges(); }
  EdgeId overlay_edges() const { return inserted_edges_; }   ///< net inserted
  EdgeId removed_edges() const { return removed_edges_; }    ///< net tombstoned

  EdgeId base_degree(VertexId v) const {
    return v < base_->num_vertices() ? base_->degree(v) : 0;
  }
  EdgeId inserted_degree(VertexId v) const {
    const std::int64_t s = slot(v);
    return s < 0 ? 0 : span_size(insert_offsets_, s);
  }
  EdgeId removed_degree(VertexId v) const {
    const std::int64_t s = slot(v);
    return s < 0 ? 0 : span_size(remove_offsets_, s);
  }
  /// Exact live degree — what a rebuilt CSR would report.
  EdgeId degree(VertexId v) const {
    return base_degree(v) - removed_degree(v) + inserted_degree(v);
  }

  std::span<const VertexId> base_neighbors(VertexId v) const {
    return v < base_->num_vertices() ? base_->neighbors(v) : std::span<const VertexId>{};
  }
  std::span<const VertexId> inserted_neighbors(VertexId v) const;
  std::span<const VertexId> removed_neighbors(VertexId v) const;

  /// Appends v's LIVE adjacency to `out` in sorted order: base with
  /// tombstoned entries skipped, merged with the (sorted) overlay
  /// insertions — element-identical to a from-scratch CSR rebuild.
  void append_neighbors(VertexId v, std::vector<VertexId>& out) const;

  /// False for vertices deleted by remove_vertex as of this version.
  /// Dead vertices have live degree 0 and zeroed features; sampling
  /// them yields an empty neighborhood rather than an error.
  bool alive(VertexId v) const;
  std::int64_t num_dead() const { return static_cast<std::int64_t>(dead_.size()); }

  /// Upper bound on the live max degree (exact for overlay-touched
  /// vertices, base max for the rest); precomputed at publish.
  EdgeId max_degree() const { return max_degree_; }

  const CsrGraph& base() const { return *base_; }
  std::uint64_t id() const { return id_; }
  Epoch epoch() const { return epoch_; }

  /// Structural sanity for tests: offsets monotone, ids in range,
  /// insertions disjoint from base, tombstones a subset of base, both
  /// sorted per vertex, dead vertices fully retracted.
  bool validate() const;

 private:
  std::int64_t slot(VertexId v) const {
    const auto it = slot_of_.find(v);
    return it == slot_of_.end() ? -1 : it->second;
  }
  static EdgeId span_size(const std::vector<EdgeId>& offsets, std::int64_t s) {
    return offsets[static_cast<std::size_t>(s) + 1] - offsets[static_cast<std::size_t>(s)];
  }

  std::shared_ptr<const CsrGraph> base_;
  VertexId num_vertices_ = 0;
  EdgeId inserted_edges_ = 0;
  EdgeId removed_edges_ = 0;
  EdgeId max_degree_ = 0;
  Epoch epoch_ = 0;
  std::uint64_t id_ = 0;
  std::vector<VertexId> touched_;
  std::vector<EdgeId> insert_offsets_;  ///< size touched + 1
  std::vector<VertexId> inserts_;       ///< sorted per touched vertex
  std::vector<EdgeId> remove_offsets_;  ///< size touched + 1
  std::vector<VertexId> removes_;      ///< sorted per touched vertex
  std::vector<VertexId> dead_;         ///< sorted dead vertex ids
  std::unordered_map<VertexId, std::int64_t> slot_of_;  ///< vertex -> touched slot
};

struct StreamingConfig {
  /// Insert/remove both directions of every edge (datasets here are
  /// undirected).
  bool symmetric = true;
  std::size_t num_stripes = 64;
  /// Re-rank the attached StaticFeatureCache's admission set at every
  /// fold's REBASE: the hot set is recomputed from the cache's observed
  /// per-vertex access counters with the merged base's live degrees as
  /// tiebreak, stale pinned rows are dropped and every free slot
  /// (including ones evict() freed) is re-admitted.  Default on — the
  /// drift this corrects is a bug, not a policy choice; value-neutral
  /// at fp32 (membership only moves rows between device and host
  /// copies of identical values).  Off restores the fixed
  /// construction-time admission set.
  bool cache_rerank = true;
  /// Serve add_vertex from the free list of fully-compacted deleted
  /// streamed-in ids (the default).  A ShardedStreamingGraph turns this
  /// OFF for its per-shard graphs: every shard holds the full vertex
  /// space, so add_vertex must return the SAME id on every shard — an
  /// id only one shard's compaction schedule happened to reclaim would
  /// diverge the spaces.
  bool recycle_ids = true;
  /// Prepended to every instrument this graph (and its Publisher /
  /// Compactor) registers — "shard0." gives "shard0.stream.publishes" —
  /// so N shards sharing one Telemetry plane never collide in the
  /// registry.  Empty (default) keeps the flat single-graph names.
  std::string metric_prefix;
  /// Telemetry plane to report through: stream.* counters and callback
  /// gauges, publish/fold/annihilate/sweep spans, lifecycle journal
  /// events.  The background maintenance components (Publisher,
  /// Compactor, ExpirySweeper) and the UpdateGenerator reach the same
  /// plane via StreamingGraph::telemetry().  Null = off (default);
  /// must outlive the graph when set.
  Telemetry* telemetry = nullptr;
};

/// Point-in-time ingest/publish counters.
struct StreamStats {
  std::int64_t ingested_edges = 0;     ///< accepted directed insertions
  std::int64_t duplicate_edges = 0;    ///< rejected inserts (already live)
  std::int64_t removed_edges = 0;      ///< accepted directed retractions
  std::int64_t rejected_removals = 0;  ///< removals of edges not live
  std::int64_t added_vertices = 0;
  std::int64_t removed_vertices = 0;
  std::int64_t recycled_vertices = 0;  ///< add_vertex calls served by a reclaimed id
  std::int64_t feature_updates = 0;
  std::int64_t publishes = 0;
  std::int64_t compactions = 0;        ///< full delta->CSR rebuilds
  std::int64_t annihilations = 0;      ///< annihilate() passes that erased ops
  std::int64_t annihilated_ops = 0;    ///< op records erased without a rebuild
  std::int64_t expired_vertices = 0;   ///< entities retired by TTL sweeps
  EdgeId overlay_edges = 0;            ///< pending (unmerged) insert ops
  EdgeId tombstones = 0;               ///< pending (unmerged) remove ops
  EdgeId base_edges = 0;
  std::int64_t dead_vertices = 0;
  std::uint64_t version_id = 0;
  Seconds publish_lag_mean = 0.0;  ///< oldest-pending-ingest -> publish delay
  Seconds publish_lag_max = 0.0;

  std::string to_string() const;
};

class StreamingGraph : public ExpiryTarget {
 public:
  /// Copies the dataset's topology and features as the initial base.
  /// `dataset` must outlive the graph (info/labels are referenced); its
  /// adjacency must be sorted per vertex (build_csr output always is).
  explicit StreamingGraph(const Dataset& dataset, StreamingConfig config = {});
  ~StreamingGraph();  ///< detaches this graph's callback gauges

  StreamingGraph(const StreamingGraph&) = delete;
  StreamingGraph& operator=(const StreamingGraph&) = delete;

  // ---- ingest (thread-safe, lock-striped) ----

  /// Inserts edge {u, v} (both directions when config.symmetric).
  /// Returns false for self loops, edges already live, and dead
  /// endpoints.  The edge becomes visible to samplers at the next
  /// publish().  Re-inserting a previously deleted edge is valid and
  /// cancels the tombstone.
  bool add_edge(VertexId u, VertexId v);

  /// Retracts edge {u, v} (both directions when config.symmetric).
  /// Returns false when the edge is not currently live — double
  /// deletes are rejected, not crashed on.  Deleting a pending
  /// (unpublished) insertion is valid.
  bool remove_edge(VertexId u, VertexId v);

  /// Adds one vertex with the given feature row; returns its id.
  /// Recycles the id (and feature row) of a fully-compacted deleted
  /// streamed-in vertex when one is available (symmetric config only —
  /// directed ingest cannot prove a retirement scrubbed every
  /// in-edge), else grows the vertex space.  The vertex becomes
  /// sample-able after the next publish().
  VertexId add_vertex(std::span<const float> features);

  /// Retracts every live edge of v, marks it dead, zeroes (and for
  /// streamed-in vertices, reclaims) its feature row, and evicts it
  /// from the attached cache so retracted entities are never served.
  /// Returns false when v is already dead.  The id itself stays valid
  /// (live degree 0) until recycled.
  bool remove_vertex(VertexId v);

  /// Overwrites v's feature row and refreshes any attached
  /// StaticFeatureCache so the new values are served immediately
  /// (features are NOT versioned — freshness beats snapshot isolation
  /// for embeddings/profiles).  Returns false for dead vertices — a
  /// retracted entity's zeroed row is never repopulated.
  bool update_feature(VertexId v, std::span<const float> values);

  /// Halo-mirror refresh: overwrites v's feature row and invalidates
  /// any cached device copy WITHOUT counting a feature update or
  /// touching freshness markers — this is a replica catching up to the
  /// owner shard's row, not new ingest.  Dead vertices are skipped
  /// (their zeroed row must stay zeroed).  Only meaningful when this
  /// graph is a non-owner shard inside a ShardedStreamingGraph.
  void refresh_mirror_row(VertexId v, std::span<const float> values);

  // ---- versions ----

  /// Builds an immutable snapshot of base + pending delta (insertions
  /// and tombstones) and makes it the current version.  O(overlay)
  /// copy, single atomic swap.
  std::shared_ptr<const GraphVersion> publish();

  /// The latest published version.  Never null; never half-published.
  std::shared_ptr<const GraphVersion> current() const;

  /// Merges base + delta into a fresh CSR (graph/builder) — net
  /// insertions added, tombstoned edges dropped, dead vertices
  /// isolated — installs it as the new base and republishes.  Ops
  /// ingested after the internal snapshot survive in the delta (epoch
  /// cut).  Returns false when there was nothing to merge, or when
  /// another fold is already in flight.
  ///
  /// NON-BLOCKING fold state machine: the maintenance mutex is held
  /// only for the two cheap endpoints, never for the O(base) build —
  ///
  ///   1. CUT (locked): snapshot the delta, advance the epoch, mark the
  ///      fold in flight (DeltaStore::begin_fold pins the cut so
  ///      annihilation cannot erase a pair straddling it);
  ///   2. BUILD (off-lock): enumerate base-minus-tombstones plus
  ///      insertions and build the merged CSR — publishes, ingest,
  ///      gated annihilation passes, sweeps all interleave freely, so
  ///      the publisher's staleness bound no longer carries a fold
  ///      stall;
  ///   3. REBASE (locked): re-validate the cut against the store
  ///      (rebase throws if the frontier moved), swap-then-truncate,
  ///      republish everything pending, clear the in-flight flag.
  ///
  /// Ops that land mid-build are stamped above the cut, survive the
  /// truncate, and apply identically over the merged base — the
  /// per-pair alternation invariant continues across the swap.
  bool compact();

  /// Whether a fold cut is outstanding (compact() is between its cut
  /// and its rebase).  The compactor consults this instead of starting
  /// a second fold that would only be refused.
  bool fold_in_flight() const { return fold_in_flight_.load(std::memory_order_acquire); }

  /// Cheap tombstone GC: erases cancelled insert/tombstone pairs from
  /// the op buffers in place (DeltaStore::annihilate) — no rebuild, no
  /// republish (published versions never saw the erased ops, and the
  /// net overlay is unchanged).  The compactor runs this as its first
  /// resort so delete-heavy churn stops forcing full CSR rebuilds
  /// whose only effect is truncation.  Safe to run while a fold's
  /// off-lock build is in flight: the store clamps the pass to ops
  /// stamped after the fold's cut, so a pair the fold captured is
  /// never erased out from under its rebase.  Returns op records
  /// erased.
  EdgeId annihilate();

  /// One TTL eviction pass: retires (remove_vertex) up to `max_retire`
  /// streamed-in vertices whose feature row was last touched more than
  /// `ttl` seconds ago, scanning ids in ascending order (deterministic
  /// — the differential harness's shadow expiry mirrors it).  Dataset
  /// vertices never expire; dead vertices are skipped.  When
  /// `pending_op_budget` > 0 the sweep stops as soon as the overlay
  /// holds that many ops, so a retirement burst paces itself against
  /// the compaction trigger instead of stampeding rebuilds.  Returns
  /// the number of vertices retired.
  std::int64_t sweep_expired(Seconds ttl, std::int64_t max_retire,
                             EdgeId pending_op_budget = 0) override;

  /// Age of the oldest accepted-but-unpublished op, 0 when everything
  /// ingested is already visible — the signal the SLO publisher closes
  /// its staleness budget against.
  Seconds pending_staleness() const;

  // ---- feature access ----

  MutableFeatureStore& features() { return features_; }
  const MutableFeatureStore& features() const { return features_; }

  /// Serving gather: pinned rows from the attached cache's device copy,
  /// everything else from the feature store.  Returns hit/miss traffic
  /// for ServingStats.  Also refreshes the last-touch stamps of every
  /// gathered streamed-in vertex (one batched pass), so a read-hot
  /// entity that is never re-written still survives TTL sweeps — true
  /// LRU, not write-only TTL.
  StaticFeatureCache::LoadStats gather(std::span<const VertexId> nodes, Tensor& out) const;

  /// Scratch-reusing variant for the serving hot path: `hit_scratch` is
  /// the per-row hit bitmap, resized in place — a worker that passes the
  /// same vector every batch amortises the allocation to zero.  Byte
  /// accounting follows the active precisions (cache device rows, store
  /// wire rows), so the hits/misses traffic split reflects what an int8
  /// transfer actually moves.
  StaticFeatureCache::LoadStats gather(std::span<const VertexId> nodes, Tensor& out,
                                       std::vector<char>& hit_scratch) const;

  /// Registers the cache refreshed by update_feature and evicted from
  /// by remove_vertex (pass nullptr to detach).  The cache must be
  /// built over features().base().
  void attach_cache(StaticFeatureCache* cache);

  /// On-demand re-rank of the attached cache over the CURRENT base —
  /// the fold-independent path (periodic or traffic-triggered callers:
  /// InferenceServer's gathered-rows cadence, a shard facade's
  /// rerank_all).  Same ranking as the REBASE-time re-rank; no-op when
  /// no cache is attached.
  void rerank_now();

  // ---- test seams ----

  /// Test-only: invoked during compact() after the off-lock CSR build
  /// completes, before the rebase critical section — with the
  /// maintenance mutex RELEASED and the fold cut in flight.  Tests park
  /// the hook to hold a fold open and interleave publishes, ingest and
  /// annihilation passes against it.  Pass nullptr to clear.
  void set_fold_hook(std::function<void()> hook);

  /// Test-only: invoked inside publish() while the maintenance mutex is
  /// held, before the version install — inflates publish cost so the
  /// publisher's completion-time staleness accounting can be pinned.
  /// Pass nullptr to clear.
  void set_publish_hook(std::function<void()> hook);

  // ---- observability ----

  EdgeId overlay_edges() const { return delta_.delta_edges(); }
  EdgeId overlay_tombstones() const { return delta_.delta_removes(); }
  /// Pending ops of either sign — the compaction trigger: tombstones
  /// cost sampling-path skips just like insertions cost merges.
  EdgeId overlay_ops() const { return delta_.delta_ops(); }
  /// Dead streamed-in ids waiting for a compaction to fold their death
  /// (the other compaction trigger: an op-less retirement — an already
  /// isolated vertex — would otherwise never be recycled).
  bool has_pending_scrubs() const { return delta_.has_pending_scrubs(); }
  /// Scrubbed ids add_vertex can hand out right now.
  std::int64_t recyclable_vertices() const { return delta_.recyclable_vertices(); }
  double overlay_ratio() const;
  VertexId num_vertices() const { return delta_.num_vertices(); }
  const Dataset& dataset() const { return *dataset_; }
  const StreamingConfig& config() const { return config_; }
  /// The telemetry plane this graph was configured with (null = off).
  /// Background maintenance components report through it.
  Telemetry* telemetry() const override { return config_.telemetry; }
  const char* expiry_scope() const override { return "stream"; }
  StreamStats stats() const;

 private:
  void bind_telemetry();
  /// Recomputes the attached cache's hot set from its observed access
  /// counters (live degrees over `base` as tiebreak, dead vertices
  /// excluded) and calls StaticFeatureCache::rerank.  Invoked by
  /// compact() right after the REBASE installs the merged CSR, under
  /// cache_mutex_ so no update/remove is mid-flight on a host row the
  /// re-admission copies from.
  void rerank_cache(const CsrGraph& base);
  std::shared_ptr<const CsrGraph> base_snapshot() const;
  std::shared_ptr<const GraphVersion> install_version(
      std::shared_ptr<const CsrGraph> base, EdgeId base_max_degree,
      DeltaStore::Snapshot snapshot,
      std::optional<std::chrono::steady_clock::time_point> pending_marker);
  void note_pending_ingest();
  /// Claims the oldest-pending-ingest marker and clears it.  MUST be
  /// called BEFORE the delta snapshot that will satisfy it: an op
  /// accepted after the claim re-arms the marker even if the snapshot
  /// happens to capture it (one redundant publish at worst), so no
  /// accepted op can ever lose its marker and sit invisible past the
  /// publisher's staleness budget.  compact()'s CUT deliberately does
  /// NOT claim: the cut ops stay invisible until a publish or the
  /// rebase, so their marker must keep driving the publisher while the
  /// build runs off-lock.
  std::optional<std::chrono::steady_clock::time_point> take_pending_marker();

  const Dataset* dataset_;
  StreamingConfig config_;
  DeltaStore delta_;
  MutableFeatureStore features_;

  mutable std::mutex version_mutex_;  ///< guards base_/base_max_degree_/current_
  std::shared_ptr<const CsrGraph> base_;
  EdgeId base_max_degree_ = 0;
  std::shared_ptr<const GraphVersion> current_;
  std::atomic<std::uint64_t> version_counter_{0};

  /// Serializes publish() with compact()'s cut and rebase endpoints —
  /// NOT with the O(base) build between them, which runs off-lock so
  /// publishes never stall behind a fold.
  std::mutex maintenance_mutex_;
  std::atomic<bool> fold_in_flight_{false};  ///< compact() between cut and rebase
  std::mutex vertex_mutex_;       ///< keeps feature rows and vertex ids in lockstep

  mutable std::mutex hook_mutex_;  ///< guards the test seams below
  std::function<void()> fold_hook_;
  std::function<void()> publish_hook_;

  mutable std::mutex cache_mutex_;  ///< guards cache_ pointer + feature update/refresh pairs
  StaticFeatureCache* cache_ = nullptr;

  mutable std::mutex lag_mutex_;  ///< publish-lag bookkeeping
  std::optional<std::chrono::steady_clock::time_point> pending_since_;
  Seconds lag_sum_ = 0.0;
  Seconds lag_max_ = 0.0;
  std::int64_t lag_samples_ = 0;

  std::atomic<std::int64_t> ingested_edges_{0};
  std::atomic<std::int64_t> duplicate_edges_{0};
  std::atomic<std::int64_t> removed_edges_{0};
  std::atomic<std::int64_t> rejected_removals_{0};
  std::atomic<std::int64_t> added_vertices_{0};
  std::atomic<std::int64_t> removed_vertices_{0};
  std::atomic<std::int64_t> recycled_vertices_{0};
  std::atomic<std::int64_t> feature_updates_{0};
  std::atomic<std::int64_t> publishes_{0};
  std::atomic<std::int64_t> compactions_{0};
  std::atomic<std::int64_t> annihilations_{0};
  std::atomic<std::int64_t> expired_vertices_{0};

  // Registry mirrors + tracer/journal; all null when telemetry is off.
  StageTracer* tracer_ = nullptr;
  EventJournal* journal_ = nullptr;
  Counter* m_ingested_ = nullptr;
  Counter* m_duplicates_ = nullptr;
  Counter* m_removed_ = nullptr;
  Counter* m_rejected_removals_ = nullptr;
  Counter* m_added_vertices_ = nullptr;
  Counter* m_removed_vertices_ = nullptr;
  Counter* m_recycled_vertices_ = nullptr;
  Counter* m_feature_updates_ = nullptr;
  Counter* m_publishes_ = nullptr;
  Counter* m_compactions_ = nullptr;
  Counter* m_annihilations_ = nullptr;
  Counter* m_expired_ = nullptr;
  Counter* m_cache_reranks_ = nullptr;
  Histogram* m_publish_lag_ = nullptr;
};

}  // namespace hyscale
