// SLO-driven background publisher.
//
// publish() is cheap but caller-paced: with the generator's fixed
// publish-every-N cadence, staleness is unbounded the moment the caller
// stalls (or rejects every op and never reaches N).  The Publisher
// closes that loop: a background thread watches the age of the oldest
// accepted-but-unpublished op (StreamingGraph::pending_staleness) and
// publishes a new version before that age exceeds a staleness budget —
// "no accepted op waits more than `staleness_budget` to become
// visible".  When nothing is pending it idles; it never publishes
// empty versions, so a quiet graph stays on its current version.
//
// The scheduler halves the remaining slack between checks (down to
// `poll_floor`), so each publish cycle costs O(log(budget/floor))
// wakeups instead of a busy poll, and a burst arriving mid-sleep is
// still caught with slack to spare.  Because the op only becomes
// visible when publish() RETURNS, the publisher starts each publish
// early by a margin tracking recent publish cost (EWMA, clamped to
// half the budget) — aiming to finish by the deadline, not to start
// by it.  The budget is still a soft real-time target: a publish can
// block behind an in-flight compaction fold, which is why
// `worst_staleness()` (age observed at each publish) and `breaches()`
// are exported — BENCH_streaming records them so the bound is
// measured, not assumed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/timer.hpp"
#include "stream/streaming_graph.hpp"

namespace hyscale {

struct PublisherPolicy {
  /// No accepted op should wait longer than this to become visible to
  /// queries.  <= 0 disables the background publisher (caller-paced
  /// publishing only) — StreamingSession skips construction entirely.
  Seconds staleness_budget = 5e-3;
  /// Scheduling resolution: once the remaining slack is within this,
  /// publish rather than sleep again.
  Seconds poll_floor = 2e-4;
};

class Publisher {
 public:
  /// `graph` must outlive the publisher.  The background thread starts
  /// immediately and stops (joined) on destruction or stop().
  explicit Publisher(StreamingGraph& graph, PublisherPolicy policy = {});
  ~Publisher();

  Publisher(const Publisher&) = delete;
  Publisher& operator=(const Publisher&) = delete;

  void stop();

  std::int64_t publishes() const { return publishes_.load(std::memory_order_relaxed); }
  /// Worst pending-op age observed at the moment a publish started —
  /// the measured staleness bound (visibility adds the publish cost
  /// itself on top).
  Seconds worst_staleness() const;
  /// Publishes that started with the budget already blown (scheduling
  /// overrun or a publish slower than the budget).
  std::int64_t breaches() const { return breaches_.load(std::memory_order_relaxed); }
  const PublisherPolicy& policy() const { return policy_; }

 private:
  void loop();

  StreamingGraph& graph_;
  PublisherPolicy policy_;
  std::atomic<std::int64_t> publishes_{0};
  std::atomic<std::int64_t> breaches_{0};
  mutable std::mutex stats_mutex_;
  Seconds worst_staleness_ = 0.0;
  Seconds publish_cost_ema_ = 0.0;  ///< loop-thread only: recent publish duration
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;  ///< keep last: starts in the constructor's tail
};

}  // namespace hyscale
