// SLO-driven background publisher.
//
// publish() is cheap but caller-paced: with the generator's fixed
// publish-every-N cadence, staleness is unbounded the moment the caller
// stalls (or rejects every op and never reaches N).  The Publisher
// closes that loop: a background thread watches the age of the oldest
// accepted-but-unpublished op (StreamingGraph::pending_staleness) and
// publishes a new version before that age exceeds a staleness budget —
// "no accepted op waits more than `staleness_budget` to become
// visible".  When nothing is pending it idles; it never publishes
// empty versions, so a quiet graph stays on its current version.
//
// The scheduler halves the remaining slack between checks (down to
// `poll_floor`), so each publish cycle costs O(log(budget/floor))
// wakeups instead of a busy poll, and a burst arriving mid-sleep is
// still caught with slack to spare.  Because the op only becomes
// visible when publish() RETURNS — and the loop only regains control
// when the scheduler actually wakes it — the publisher starts each
// publish early by a margin covering BOTH terms it cannot avoid
// paying: the worst recent publish cost and the observed wakeup
// lateness on this host (decaying high-waters, clamped to 80% of the
// budget).  Staleness is accounted the same way: `worst_staleness()`
// and `breaches()` are sampled at publish COMPLETION (pending age at
// start + publish cost), so a slow publish that blows the budget is a
// breach, not an invisible under-report.  The budget is still a soft
// real-time target (publishes serialize with the compactor's short
// cut/rebase endpoints, never with its off-lock O(base) build), which
// is why BENCH_streaming records the measured bound instead of
// assuming it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/timer.hpp"
#include "stream/streaming_graph.hpp"

namespace hyscale {

struct PublisherPolicy {
  /// No accepted op should wait longer than this to become visible to
  /// queries.  <= 0 disables the background publisher (caller-paced
  /// publishing only) — StreamingSession skips construction entirely.
  Seconds staleness_budget = 5e-3;
  /// Scheduling resolution: once the remaining slack is within this,
  /// publish rather than sleep again.
  Seconds poll_floor = 2e-4;
};

class Publisher {
 public:
  /// `graph` must outlive the publisher.  The background thread starts
  /// immediately and stops (joined) on destruction or stop().
  explicit Publisher(StreamingGraph& graph, PublisherPolicy policy = {});
  ~Publisher();

  Publisher(const Publisher&) = delete;
  Publisher& operator=(const Publisher&) = delete;

  void stop();

  std::int64_t publishes() const { return publishes_.load(std::memory_order_relaxed); }
  /// Worst visibility staleness measured at publish COMPLETION: the
  /// pending-op age when the publish started plus the publish cost —
  /// how long the oldest op actually waited to become queryable.
  Seconds worst_staleness() const;
  /// Publishes whose completion-time staleness exceeded the budget
  /// (scheduling overrun or a publish slower than its margin allowed).
  std::int64_t breaches() const { return breaches_.load(std::memory_order_relaxed); }
  /// Slowest publish() this publisher has issued — the cost term of the
  /// staleness bound (worst_staleness <= start age + this), exported so
  /// a breach can be attributed: slow publishes vs late starts.
  Seconds worst_publish_cost() const;
  const PublisherPolicy& policy() const { return policy_; }

 private:
  void loop();

  StreamingGraph& graph_;
  PublisherPolicy policy_;
  // Registry mirrors from graph_.telemetry(); null when telemetry off.
  Counter* m_publishes_ = nullptr;
  Counter* m_breaches_ = nullptr;
  Gauge* m_worst_staleness_ = nullptr;
  Gauge* m_worst_cost_ = nullptr;
  Histogram* m_staleness_ = nullptr;  ///< completion-time visible staleness
  EventJournal* journal_ = nullptr;
  Telemetry* telemetry_ = nullptr;  ///< trip channel: a breach escalates
  Heartbeat* heart_ = nullptr;      ///< liveness stamp when telemetry on
  std::atomic<std::int64_t> publishes_{0};
  std::atomic<std::int64_t> breaches_{0};
  mutable std::mutex stats_mutex_;
  Seconds worst_staleness_ = 0.0;
  Seconds worst_publish_cost_ = 0.0;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;  ///< keep last: starts in the constructor's tail
};

}  // namespace hyscale
