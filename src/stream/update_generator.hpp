// Synthetic update-stream driver for the streaming subsystem.
//
// Emits a deterministic (seeded) mix of edge insertions, edge
// retractions, vertex arrivals (with random feature rows), vertex
// retirements, and feature refreshes against a StreamingGraph,
// publishing a new version every `publish_every` accepted operations.
// Deletion targets are drawn from the latest published version (a real
// feed retracts edges it knows exist), so a removal can still lose a
// race with an unpublished retraction — those land in the rejected
// counters, exactly like duplicate inserts.  Paired with
// serving/LoadGenerator it produces the mixed query/update (and churn)
// workloads bench_streaming measures; on its own it is the
// ingest-throughput microbenchmark.
#pragma once

#include <cstdint>
#include <string>

#include "common/timer.hpp"
#include "stream/streaming_graph.hpp"

namespace hyscale {

struct UpdateGeneratorConfig {
  std::int64_t operations = 1024;     ///< total ops across all threads
  int num_threads = 1;
  double vertex_add_fraction = 0.05;  ///< ops that add a vertex (plus attach edges)
  /// Ops that retire a streamed-in vertex (no-op while none exist, the
  /// op falls through to an edge insertion).  Dataset vertices are
  /// never retired by the generator — entities that age out of a
  /// fraud/recommendation feed are the streamed-in ones.
  double vertex_delete_fraction = 0.0;
  double feature_update_fraction = 0.10;  ///< ops that rewrite a feature row
  /// Ops that retract a live edge drawn from the latest published
  /// version — the churn knob (CLI: --delete-frac).
  double edge_delete_fraction = 0.0;
  int edges_per_op = 1;               ///< edge insertions per edge op
  int edges_per_new_vertex = 3;       ///< attachment edges for a streamed-in vertex
  std::int64_t publish_every = 64;    ///< accepted ops between publishes (0 = never)
  std::uint64_t seed = 13;
  Seconds pacing = 0.0;               ///< optional sleep between ops (rate limiting)
};

struct UpdateReport {
  Seconds wall_time = 0.0;
  std::int64_t operations = 0;
  std::int64_t accepted_edges = 0;      ///< directed insertions that landed
  std::int64_t duplicate_edges = 0;     ///< inserts rejected (already live)
  std::int64_t removed_edges = 0;       ///< directed retractions that landed
  std::int64_t rejected_removals = 0;   ///< retractions of edges no longer live
  std::int64_t added_vertices = 0;
  std::int64_t removed_vertices = 0;
  std::int64_t recycled_vertices = 0;   ///< vertex adds served by a reclaimed id
  std::int64_t feature_updates = 0;
  std::int64_t publishes = 0;
  double edges_per_second = 0.0;        ///< (accepted + removed) / wall_time

  std::string to_string() const;
};

class UpdateGenerator {
 public:
  /// `graph` must outlive the generator.
  UpdateGenerator(StreamingGraph& graph, UpdateGeneratorConfig config = {});

  /// Runs the full update session; blocks until every thread is done.
  /// Wrap in a std::thread to overlap with a query load.
  UpdateReport run();

 private:
  StreamingGraph& graph_;
  UpdateGeneratorConfig config_;
};

}  // namespace hyscale
