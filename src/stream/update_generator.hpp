// Synthetic update-stream driver for the streaming subsystem.
//
// Emits a deterministic (seeded) mix of edge insertions, edge
// retractions, vertex arrivals (with random feature rows), vertex
// retirements, and feature refreshes against a StreamingGraph.
// Publishing defaults to whoever owns the graph — normally the
// SLO-driven background Publisher a StreamingSession runs — with an
// optional fixed cadence (`publish_every` > 0) for deterministic
// tests.  The cadence counts ATTEMPTED operations, accepted or not:
// counting accepted ops only would let an adversarial mix of rejected
// updates (double deletes, duplicate inserts) starve publishing
// entirely, which is exactly the unbounded-staleness failure the
// Publisher exists to rule out.
// Deletion targets are drawn from the latest published version (a real
// feed retracts edges it knows exist), so a removal can still lose a
// race with an unpublished retraction — those land in the rejected
// counters, exactly like duplicate inserts.  Paired with
// serving/LoadGenerator it produces the mixed query/update (and churn)
// workloads bench_streaming measures; on its own it is the
// ingest-throughput microbenchmark.
#pragma once

#include <cstdint>
#include <string>

#include "common/timer.hpp"
#include "stream/streaming_graph.hpp"

namespace hyscale {

struct UpdateGeneratorConfig {
  std::int64_t operations = 1024;     ///< total ops across all threads
  int num_threads = 1;
  double vertex_add_fraction = 0.05;  ///< ops that add a vertex (plus attach edges)
  /// Ops that retire a streamed-in vertex (no-op while none exist, the
  /// op falls through to an edge insertion).  Dataset vertices are
  /// never retired by the generator — entities that age out of a
  /// fraud/recommendation feed are the streamed-in ones.
  double vertex_delete_fraction = 0.0;
  double feature_update_fraction = 0.10;  ///< ops that rewrite a feature row
  /// Ops that retract a live edge drawn from the latest published
  /// version — the churn knob (CLI: --delete-frac).
  double edge_delete_fraction = 0.0;
  /// Of the edge-delete ops, the fraction that retracts an edge this
  /// thread itself inserted recently (kept in a small ring) instead of
  /// drawing from the published version — models feeds that cancel
  /// what they just wrote (aborted orders, reverted follows), the
  /// insert/tombstone-pair pattern the annihilation pass GCs without a
  /// rebuild (CLI: --delete-recent-frac).
  double delete_recent_fraction = 0.0;
  int edges_per_op = 1;               ///< edge insertions per edge op
  int edges_per_new_vertex = 3;       ///< attachment edges for a streamed-in vertex
  /// Fixed publish cadence in ATTEMPTED ops (accepted AND rejected, so
  /// rejection storms cannot starve visibility).  0 — the default —
  /// leaves mid-run publishing to the session's SLO Publisher; run()
  /// always publishes once at the end either way.
  std::int64_t publish_every = 0;
  std::uint64_t seed = 13;
  Seconds pacing = 0.0;               ///< optional sleep between ops (rate limiting)
};

struct UpdateReport {
  Seconds wall_time = 0.0;
  std::int64_t operations = 0;
  std::int64_t accepted_edges = 0;      ///< directed insertions that landed
  std::int64_t duplicate_edges = 0;     ///< inserts rejected (already live)
  std::int64_t removed_edges = 0;       ///< directed retractions that landed
  std::int64_t rejected_removals = 0;   ///< retractions of edges no longer live
  std::int64_t added_vertices = 0;
  std::int64_t removed_vertices = 0;
  std::int64_t recycled_vertices = 0;   ///< vertex adds served by a reclaimed id
  std::int64_t feature_updates = 0;
  std::int64_t publishes = 0;
  double edges_per_second = 0.0;        ///< (accepted + removed) / wall_time

  std::string to_string() const;
};

class UpdateGenerator {
 public:
  /// `graph` must outlive the generator.
  UpdateGenerator(StreamingGraph& graph, UpdateGeneratorConfig config = {});

  /// Runs the full update session; blocks until every thread is done.
  /// Wrap in a std::thread to overlap with a query load.
  UpdateReport run();

 private:
  StreamingGraph& graph_;
  UpdateGeneratorConfig config_;
};

}  // namespace hyscale
