// Per-vertex edge-operation buffers for streaming graph updates —
// insertions AND deletions.
//
// The DeltaStore absorbs edge/vertex mutations that arrive while the
// immutable base CSR keeps serving readers.  Each accepted mutation is
// an epoch-stamped, signed OP appended to the owning vertex's bucket:
// (+, v) inserts a directed edge, (−, v) retracts one (a tombstone).
// Ops are append-only — a deletion never erases the insertion it
// cancels, it counter-records it — which is what makes deletions safe
// against an in-flight compaction: a snapshot at epoch E captures
// exactly the op prefix stamped <= E, the compactor folds that prefix
// into a fresh base, and the surviving suffix (stamped > E) applies
// identically against old base + prefix or the merged base.  Erasing a
// captured record instead would silently resurrect (or re-lose) the
// edge after the rebase — the classic delete-racing-compaction bug the
// differential tests pin down.
//
// Ingest-time validation keeps per-pair ops strictly alternating: an
// insert is accepted only when the directed edge is currently dead
// (absent from base XOR flipped by pending ops), a removal only when it
// is currently live.  Membership of (u, v) is therefore always
// base_has(u, v) XOR parity(pending ops for v in bucket u) — reduction
// to the overlay view is a per-neighbor parity count, no op ordering
// required.
//
// Vertex deletions (remove_vertex) retract every live incident edge in
// both directions inside one exclusive section and mark the id dead;
// dead ids reject further edge ops.  After a compaction has folded the
// death (merged_up_to >= death epoch), streamed-in ids become
// recyclable: reclaim_vertex() hands them back so add_vertex can reuse
// the feature row instead of growing the extension area forever.
//
// Synchronisation model: a shared_mutex arbitrates between ingest
// (shared + per-stripe mutex) and structural operations — snapshot,
// truncate, rebase, add_vertices, remove_vertex, reclaim_vertex — which
// take it exclusively.  Pair operations (add_edge_pair /
// remove_edge_pair) hold BOTH endpoint stripes for the whole pair, so
// concurrent add/remove races on the same undirected edge can never
// leave it half-present.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "graph/csr.hpp"

namespace hyscale {

/// Monotone update-cut counter; every delta op carries the epoch it
/// arrived in.
using Epoch = std::uint64_t;

class DeltaStore {
 public:
  /// `symmetric` declares that callers keep the adjacency symmetric
  /// (pair ops only).  Only then does remove_vertex provably scrub
  /// every reference to the dead id, so id recycling is gated on it:
  /// with `symmetric = false` retired ids are never reused (a pending
  /// directed in-edge is not discoverable from the dead vertex's
  /// bucket and would be inherited by the recycled entity).
  explicit DeltaStore(std::shared_ptr<const CsrGraph> base, std::size_t num_stripes = 64,
                      bool symmetric = true);

  DeltaStore(const DeltaStore&) = delete;
  DeltaStore& operator=(const DeltaStore&) = delete;

  /// Appends an insert op (u -> v) stamped with the current epoch.
  /// Returns false — and leaves the store untouched — when the edge is
  /// a self loop, currently live (in base and not tombstoned, or
  /// pending in the delta), or either endpoint is dead.  Throws on
  /// out-of-range ids.
  bool add_edge(VertexId u, VertexId v);

  /// Appends a remove op (tombstone) for directed edge u -> v.  Returns
  /// false when the edge is not currently live (double delete, never
  /// existed).  Removing a pending (unpublished) insertion is valid:
  /// the counter-op cancels it at the next reduction.  Unlike inserts,
  /// removals do NOT require live endpoints — retracting a dangling
  /// directed in-edge of a dead vertex is cleanup, not mutation.
  bool remove_edge(VertexId u, VertexId v);

  /// Inserts BOTH directions of undirected edge {u, v} while holding
  /// both endpoint stripes, so a concurrent remove_edge_pair (or an
  /// exclusive snapshot) can never observe the pair half-inserted.
  /// Returns the number of directed edges that landed: 0
  /// (live/self-loop/dead endpoint) or 2 (1 only if the base itself is
  /// asymmetric, which no dataset here produces).
  int add_edge_pair(VertexId u, VertexId v);

  /// Tombstones BOTH directions of undirected edge {u, v} under both
  /// stripes.  Returns 0 (not live / dead endpoint) or 2 (1 only over
  /// an asymmetric base).
  int remove_edge_pair(VertexId u, VertexId v);

  /// Extends the vertex space by `count` empty vertices; returns the
  /// first new id.  New vertices have no base adjacency until a
  /// compaction folds them into a fresh CSR.
  VertexId add_vertices(std::int64_t count);

  /// Retracts every live edge incident to v — each live out-edge plus
  /// its reverse when that direction is itself live (always, over a
  /// symmetric base) — and marks v dead: further edge ops touching v
  /// are rejected and v's live out-degree is 0 from the next snapshot
  /// on.  Returns the number of directed removals appended, or -1 when
  /// v is already dead.  Throws on out-of-range ids.  Exclusive
  /// (structural) operation.
  std::int64_t remove_vertex(VertexId v);

  /// Whether v has been retired by remove_vertex (false for ids out of
  /// range).  Recycled ids read alive again.
  bool is_dead(VertexId v) const;

  /// Pops a recyclable id — a streamed-in vertex whose death has been
  /// fully folded by a compaction (so no base adjacency, no pending
  /// ops, and no other bucket still references it) — marks it alive
  /// again and returns it; -1 when none is available.  The caller owns
  /// re-initialising the feature row.
  VertexId reclaim_vertex();

  /// In-place tombstone GC: erases matched insert/tombstone pairs that
  /// reduce to nothing, WITHOUT a CSR rebuild.  Erasure is dangerous
  /// exactly when a pair straddles an IN-FLIGHT compaction cut — the
  /// fold's snapshot captured the insert, rebase will merge it into
  /// the base and truncate the captured prefix, and an erased
  /// counter-op would resurrect the edge (the bug the lifecycle
  /// property tests pin).  Publish-only snapshots are immune: a
  /// GraphVersion owns copies of its spans, and un-truncated ops
  /// re-reduce to the same net at the next snapshot.  This standalone
  /// form cannot tell which snapshots feed folds, so it protects every
  /// op stamped at or below the newest snapshot epoch and cancels only
  /// within the unsnapshotted suffix.  Per neighbor, an even-length
  /// eligible run vanishes entirely and an odd-length run keeps its
  /// last op, so per-pair alternation, the membership parity, and
  /// epoch monotonicity are all preserved.  Returns the number of op
  /// records erased (equal counts of inserts and tombstones).
  /// Exclusive (structural) operation.
  EdgeId annihilate();

  /// Expert form: protects only ops stamped <= `gate`.  Pass 0 to make
  /// every matched pair erasable — ONLY valid when no fold cut is
  /// outstanding.  When a fold IS in flight (begin_fold), the store
  /// clamps the gate to the fold's cut regardless of what the caller
  /// passes: the fold's snapshot captured the prefix, rebase will merge
  /// it into the base, and erasing a pair straddling the cut would
  /// resurrect (or re-lose) the edge after the rebase.
  EdgeId annihilate(Epoch gate);

  /// Cumulative op records erased by annihilate().
  EdgeId annihilated_ops() const;

  /// Declares an off-lock fold in flight over the op prefix stamped
  /// <= `cut` (the epoch of the snapshot the fold is building from).
  /// Until the matching rebase() or abort_fold(), every annihilate()
  /// call — whatever gate it passes — refuses to erase ops at or below
  /// the cut, so a cancelled pair straddling the cut survives for the
  /// rebase to truncate.  At most one fold may be in flight; a second
  /// begin_fold throws std::logic_error.
  void begin_fold(Epoch cut);

  /// Abandons an in-flight fold without rebasing (the build failed or
  /// was discarded).  The buffered ops are untouched — the next
  /// snapshot reduces them exactly as if the fold never started.
  /// No-op when no fold is in flight.
  void abort_fold();

  /// Whether a begin_fold cut is outstanding (no rebase/abort yet).
  bool fold_in_flight() const;

  /// Point-in-time REDUCED view of the pending ops, taken under the
  /// exclusive lock (single linearisation point): per touched vertex,
  /// the net insertions (sorted, disjoint from base) and net removals
  /// (sorted, subset of base adjacency).  Ops that cancelled out
  /// (insert-then-delete of the same pair) reduce to nothing.  With
  /// `advance_epoch`, the store epoch is bumped inside the same
  /// critical section, so the snapshot covers exactly the ops stamped
  /// <= its `epoch`.
  struct Snapshot {
    Epoch epoch = 0;            ///< all covered ops are stamped <= this
    VertexId num_vertices = 0;  ///< vertex space at capture time
    EdgeId raw_ops = 0;         ///< unreduced op records captured (incl. cancelled pairs)
    EdgeId num_inserts = 0;     ///< net inserted directed edges
    EdgeId num_removes = 0;     ///< net tombstoned directed edges
    std::vector<VertexId> touched;        ///< vertices with a net change
    std::vector<EdgeId> insert_offsets;   ///< size touched.size() + 1
    std::vector<VertexId> inserts;        ///< sorted per touched vertex
    std::vector<EdgeId> remove_offsets;   ///< size touched.size() + 1
    std::vector<VertexId> removes;        ///< sorted per touched vertex
    std::vector<VertexId> dead;           ///< dead vertex ids, sorted
  };
  Snapshot snapshot(bool advance_epoch);

  /// Removes every pending op stamped <= `epoch`.  Within a bucket,
  /// stamps are nondecreasing (appends happen in epoch order), so the
  /// removed ops always form a prefix.
  void truncate(Epoch epoch);

  /// Compaction install: atomically replaces the base (which now has
  /// every op stamped <= `merged_up_to` applied — insertions added,
  /// tombstoned edges dropped) and truncates that prefix, so no edge is
  /// ever both absent from the membership check's base and absent from
  /// the buffers.  Dead streamed-in vertices whose death epoch is
  /// covered become recyclable.  When a fold is in flight, the rebase
  /// re-validates the cut (`merged_up_to` must equal the begin_fold
  /// epoch — anything else means the merged base was built from a
  /// different frontier and would corrupt the overlay; throws
  /// std::logic_error) and clears the fold guard.
  void rebase(std::shared_ptr<const CsrGraph> base, Epoch merged_up_to);

  /// The base the pending ops overlay.
  std::shared_ptr<const CsrGraph> base() const;

  VertexId num_vertices() const;
  EdgeId delta_edges() const;    ///< pending insert ops
  EdgeId delta_removes() const;  ///< pending remove ops (tombstones)
  EdgeId delta_ops() const;      ///< inserts + removes — the compaction trigger
  std::int64_t dead_vertices() const;
  std::int64_t recyclable_vertices() const;
  /// Dead streamed-in ids still waiting for a compaction to fold their
  /// death (compact even when no edge ops are pending).
  bool has_pending_scrubs() const;
  Epoch epoch() const;
  std::size_t num_stripes() const { return stripes_.size(); }

 private:
  /// One vertex's pending op log.  `epochs` and `removes` parallel
  /// `neighbors`; removes[i] != 0 marks op i as a tombstone.
  struct Bucket {
    std::vector<VertexId> neighbors;
    std::vector<Epoch> epochs;
    std::vector<std::uint8_t> removes;
    bool listed = false;  ///< already on its stripe's touched list
  };
  struct Stripe {
    std::mutex mutex;
    std::vector<VertexId> touched;  ///< vertices of this stripe with pending ops
  };

  Stripe& stripe_for(VertexId v) {
    return stripes_[static_cast<std::size_t>(v) % stripes_.size()];
  }
  bool base_contains(VertexId u, VertexId v) const;
  /// Current membership of directed edge u -> v (base XOR pending-op
  /// parity).  Caller holds structure_mutex_ and, for shared holders,
  /// u's stripe.
  bool live_unlocked(VertexId u, VertexId v) const;
  /// Caller holds structure_mutex_ (shared suffices) AND u's stripe.
  bool edge_op_locked(Stripe& stripe, VertexId u, VertexId v, bool remove);
  bool edge_op(VertexId u, VertexId v, bool remove);
  int edge_pair_op(VertexId u, VertexId v, bool remove);
  void check_range_unlocked(VertexId u, VertexId v) const;
  bool dead_unlocked(VertexId v) const {
    return dead_since_[static_cast<std::size_t>(v)] != 0;
  }
  void truncate_unlocked(Epoch epoch);
  EdgeId annihilate_unlocked(Epoch gate);
  /// Erases cancelled pairs among ops stamped > `gate` in one bucket;
  /// returns records erased.  Caller holds structure_mutex_ exclusively.
  static VertexId annihilate_bucket(Bucket& bucket, Epoch gate, EdgeId& dropped_inserts,
                                    EdgeId& dropped_removes);

  mutable std::shared_mutex structure_mutex_;  ///< shared: ingest; exclusive: structural ops
  std::shared_ptr<const CsrGraph> base_;       ///< swapped only under the exclusive lock
  std::vector<Bucket> buckets_;                ///< one per vertex (base + streamed)
  std::vector<Stripe> stripes_;
  std::vector<Epoch> dead_since_;      ///< 0 = alive (epochs start at 1)
  std::vector<VertexId> dead_list_;    ///< all currently-dead ids (unsorted, swap-removed)
  std::unordered_map<VertexId, std::size_t> dead_pos_;  ///< id -> dead_list_ slot
  std::vector<VertexId> pending_dead_; ///< dead streamed-in ids awaiting a folding compaction
  std::vector<VertexId> free_ids_;     ///< scrubbed ids ready for reclaim_vertex()
  VertexId reclaim_floor_ = 0;         ///< ids below this (dataset vertices) never recycle
  bool symmetric_ = true;              ///< adjacency kept symmetric -> recycling is safe
  /// Newest epoch any snapshot has covered; ops stamped above it were
  /// never captured, which is what makes annihilate() safe.
  Epoch last_snapshot_epoch_ = 0;
  bool fold_in_flight_ = false;  ///< begin_fold cut outstanding (guarded by structure_mutex_)
  Epoch fold_cut_ = 0;           ///< in-flight fold's snapshot epoch — annihilation floor
  std::atomic<EdgeId> annihilated_ops_{0};
  std::atomic<Epoch> epoch_{1};
  std::atomic<EdgeId> delta_inserts_{0};
  std::atomic<EdgeId> delta_removes_{0};
  std::atomic<VertexId> num_vertices_{0};
};

}  // namespace hyscale
