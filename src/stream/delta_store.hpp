// Per-vertex insertion buffers for streaming graph updates.
//
// The DeltaStore absorbs edge/vertex insertions that arrive while the
// immutable base CSR keeps serving readers.  Writes go through a
// lock-striped path (vertex id -> stripe mutex) so concurrent ingest
// threads rarely contend, and every accepted edge is stamped with the
// store's current epoch.  Epochs advance when a snapshot is taken, which
// gives the compactor an exact cut: all edges stamped <= E were captured
// by the snapshot at epoch E and can be truncated after the merge, while
// later arrivals (stamped > E) survive in the buffers.
//
// The store owns the base CSR pointer so the duplicate check (edge
// already in base or pending) always runs against the base that the
// pending buffers overlay.  rebase() swaps in a freshly compacted base
// and truncates the merged prefix in ONE exclusive section — the
// ordering that makes ingest-during-compaction duplicate-free.
//
// Synchronisation model: a shared_mutex arbitrates between ingest
// (shared + per-stripe mutex) and structural operations — snapshot,
// truncate, rebase, add_vertices — which take it exclusively.  An
// exclusive section is therefore a true linearisation point across all
// vertices: add_edge_pair inserts both directions of an undirected edge
// inside one shared section, so a snapshot can never observe the pair
// half-inserted.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "graph/csr.hpp"

namespace hyscale {

/// Monotone update-cut counter; every delta edge carries the epoch it
/// arrived in.
using Epoch = std::uint64_t;

class DeltaStore {
 public:
  explicit DeltaStore(std::shared_ptr<const CsrGraph> base, std::size_t num_stripes = 64);

  DeltaStore(const DeltaStore&) = delete;
  DeltaStore& operator=(const DeltaStore&) = delete;

  /// Appends v to u's insertion buffer, stamped with the current epoch.
  /// Returns false — and leaves the store untouched — when the edge is a
  /// self loop, already present in the base, or already pending in the
  /// delta.  Base adjacency is scanned linearly per call; delta buffers
  /// are bounded by compaction, base degrees by the graph.
  bool add_edge(VertexId u, VertexId v);

  /// Inserts BOTH directions of undirected edge {u, v} inside one shared
  /// critical section, so an (exclusive) snapshot can never observe the
  /// pair half-inserted.  min(u,v) -> max(u,v) goes first: concurrent
  /// inserts of the same pair serialise on that stripe entry and exactly
  /// one writes the reverse.  Returns the number of directed edges that
  /// landed: 0 (duplicate/self loop) or 2 (1 only if the base itself is
  /// asymmetric, which no dataset here produces).
  int add_edge_pair(VertexId u, VertexId v);

  /// Extends the vertex space by `count` empty vertices; returns the
  /// first new id.  New vertices have no base adjacency until a
  /// compaction folds them into a fresh CSR.
  VertexId add_vertices(std::int64_t count);

  /// Point-in-time copy of every insertion buffer, taken under the
  /// exclusive lock (single linearisation point).  With `advance_epoch`,
  /// the store epoch is bumped inside the same critical section, so the
  /// snapshot holds exactly the edges stamped <= its `epoch`.
  struct Snapshot {
    Epoch epoch = 0;               ///< all captured edges are stamped <= this
    VertexId num_vertices = 0;     ///< vertex space at capture time
    EdgeId num_edges = 0;
    std::vector<VertexId> touched;    ///< vertices with >= 1 pending edge
    std::vector<EdgeId> offsets;      ///< size touched.size() + 1
    std::vector<VertexId> neighbors;  ///< flat adjacency, grouped by touched[i]
  };
  Snapshot snapshot(bool advance_epoch);

  /// Removes every delta edge stamped <= `epoch`.  Within a buffer,
  /// stamps are nondecreasing (appends happen in epoch order), so the
  /// removed edges always form a prefix.
  void truncate(Epoch epoch);

  /// Compaction install: atomically replaces the base (which now
  /// contains every delta edge stamped <= `merged_up_to`) and truncates
  /// that prefix, so no edge is ever both absent from the duplicate
  /// check's base and absent from the buffers.
  void rebase(std::shared_ptr<const CsrGraph> base, Epoch merged_up_to);

  /// The base the pending buffers overlay.
  std::shared_ptr<const CsrGraph> base() const;

  VertexId num_vertices() const;
  EdgeId delta_edges() const;
  Epoch epoch() const;
  std::size_t num_stripes() const { return stripes_.size(); }

 private:
  /// One vertex's pending adjacency.  `epochs` parallels `neighbors`.
  struct Bucket {
    std::vector<VertexId> neighbors;
    std::vector<Epoch> epochs;
    bool listed = false;  ///< already on its stripe's touched list
  };
  struct Stripe {
    std::mutex mutex;
    std::vector<VertexId> touched;  ///< vertices of this stripe with pending edges
  };

  Stripe& stripe_for(VertexId v) {
    return stripes_[static_cast<std::size_t>(v) % stripes_.size()];
  }
  /// Callers hold structure_mutex_ (shared suffices).
  bool add_edge_unlocked(VertexId u, VertexId v);
  void check_range_unlocked(VertexId u, VertexId v) const;
  void truncate_unlocked(Epoch epoch);

  mutable std::shared_mutex structure_mutex_;  ///< shared: ingest; exclusive: structural ops
  std::shared_ptr<const CsrGraph> base_;       ///< swapped only under the exclusive lock
  std::vector<Bucket> buckets_;                ///< one per vertex (base + streamed)
  std::vector<Stripe> stripes_;
  std::atomic<Epoch> epoch_{1};
  std::atomic<EdgeId> delta_edges_{0};
  std::atomic<VertexId> num_vertices_{0};
};

}  // namespace hyscale
