#include "stream/overlay_sampler.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"

namespace hyscale {

OverlaySampler::OverlaySampler(std::shared_ptr<const GraphVersion> version,
                               std::vector<int> fanouts, std::uint64_t seed)
    : version_(std::move(version)), fanouts_(std::move(fanouts)), stream_(seed) {
  if (!version_) throw std::invalid_argument("OverlaySampler: null version");
  if (fanouts_.empty()) throw std::invalid_argument("OverlaySampler: fanouts empty");
  for (int f : fanouts_) {
    if (f <= 0) throw std::invalid_argument("OverlaySampler: fanouts must be positive");
  }
  local_of_.assign(static_cast<std::size_t>(version_->num_vertices()), 0);
}

void OverlaySampler::set_version(std::shared_ptr<const GraphVersion> version) {
  if (!version) throw std::invalid_argument("OverlaySampler::set_version: null version");
  version_ = std::move(version);
  if (static_cast<std::size_t>(version_->num_vertices()) > local_of_.size()) {
    local_of_.resize(static_cast<std::size_t>(version_->num_vertices()), 0);
  }
}

OverlaySampler::Frontier OverlaySampler::expand(const std::vector<VertexId>& dst, int fanout) {
  Frontier frontier;
  LayerBlock& block = frontier.block;
  block.num_dst = static_cast<std::int64_t>(dst.size());
  block.src_nodes = dst;  // dst prefix convention
  block.indptr.reserve(dst.size() + 1);
  block.indptr.push_back(0);

  for (std::size_t i = 0; i < dst.size(); ++i) {
    local_of_[static_cast<std::size_t>(dst[i])] = static_cast<std::int64_t>(i) + 1;
    touched_.push_back(dst[i]);
  }

  Xoshiro256 rng(splitmix64(stream_));
  for (VertexId v : dst) {
    // The virtual neighbor list is the version's merged live adjacency
    // (base minus tombstones plus insertions, sorted) — element for
    // element what a rebuilt CSR would store, so the partial
    // Fisher-Yates below draws the same sample a NeighborSampler over
    // the rebuild would.
    combined_.clear();
    version_->append_neighbors(v, combined_);
    const auto degree = static_cast<std::int64_t>(combined_.size());
    const std::int64_t take = std::min<std::int64_t>(fanout, degree);
    // Partial Fisher-Yates: the first `take` entries become a uniform
    // sample without replacement.
    for (std::int64_t i = 0; i < take; ++i) {
      const auto j = i + static_cast<std::int64_t>(
                             rng.bounded(static_cast<std::uint64_t>(degree - i)));
      std::swap(combined_[static_cast<std::size_t>(i)], combined_[static_cast<std::size_t>(j)]);
      const VertexId u = combined_[static_cast<std::size_t>(i)];
      std::int64_t& slot = local_of_[static_cast<std::size_t>(u)];
      if (slot == 0) {
        block.src_nodes.push_back(u);
        slot = static_cast<std::int64_t>(block.src_nodes.size());
        touched_.push_back(u);
      }
      block.indices.push_back(slot - 1);
    }
    block.indptr.push_back(static_cast<EdgeId>(block.indices.size()));
  }

  for (VertexId v : touched_) local_of_[static_cast<std::size_t>(v)] = 0;
  touched_.clear();

  // True (base + overlay) degrees for the GCN normalisation — the live
  // graph's D(v), not the sampled degree.
  block.src_degrees.reserve(block.src_nodes.size());
  for (VertexId v : block.src_nodes) block.src_degrees.push_back(version_->degree(v));

  frontier.nodes = block.src_nodes;
  return frontier;
}

MiniBatch OverlaySampler::sample(const std::vector<VertexId>& seeds) {
  if (seeds.empty()) throw std::invalid_argument("OverlaySampler::sample: empty seeds");
  for (VertexId s : seeds) {
    if (s < 0 || s >= version_->num_vertices())
      throw std::invalid_argument("OverlaySampler::sample: seed out of range");
  }
  MiniBatch batch;
  batch.seeds = seeds;
  const int num_layers = static_cast<int>(fanouts_.size());
  batch.blocks.resize(static_cast<std::size_t>(num_layers));

  std::vector<VertexId> frontier = seeds;
  // Top-down: output layer first, then inward toward the input features.
  for (int l = num_layers - 1; l >= 0; --l) {
    ++stream_;
    Frontier next = expand(frontier, fanouts_[static_cast<std::size_t>(l)]);
    batch.blocks[static_cast<std::size_t>(l)] = std::move(next.block);
    frontier = std::move(next.nodes);
  }
  return batch;
}

MiniBatch sample_full_overlay(const GraphVersion& version, const std::vector<VertexId>& seeds,
                              int num_layers) {
  if (num_layers <= 0)
    throw std::invalid_argument("sample_full_overlay: num_layers must be positive");
  // Like sample_full: fanout >= max combined degree takes every neighbor.
  const int fanout = static_cast<int>(std::max<EdgeId>(1, version.max_degree()));
  // The version is borrowed for the sampler's (stack-bound) lifetime.
  OverlaySampler sampler(
      std::shared_ptr<const GraphVersion>(&version, [](const GraphVersion*) {}),
      std::vector<int>(static_cast<std::size_t>(num_layers), fanout), /*seed=*/0);
  return sampler.sample(seeds);
}

}  // namespace hyscale
