#include "stream/overlay_sampler.hpp"

namespace hyscale {

// The fanout/RNG discipline itself lives in sampling/fanout_core.hpp;
// pinning the instantiation here keeps one copy of the heavy template
// in the library instead of one per including TU.
template class FanoutSamplerCore<GraphVersion>;

MiniBatch sample_full_overlay(const GraphVersion& version, const std::vector<VertexId>& seeds,
                              int num_layers) {
  return sample_full_via<OverlaySampler>(version, seeds, num_layers, "sample_full_overlay");
}

}  // namespace hyscale
