#include "serving/batcher.hpp"

#include <algorithm>
#include <stdexcept>

namespace hyscale {

DynamicBatcher::DynamicBatcher(BatchPolicy policy) : policy_(policy) {
  if (policy_.max_batch_requests < 1)
    throw std::invalid_argument("DynamicBatcher: max_batch_requests must be >= 1");
  if (policy_.max_batch_seeds < 1)
    throw std::invalid_argument("DynamicBatcher: max_batch_seeds must be >= 1");
  if (policy_.max_wait < 0.0)
    throw std::invalid_argument("DynamicBatcher: negative max_wait");
  if (policy_.queue_capacity < 1)
    throw std::invalid_argument("DynamicBatcher: queue_capacity must be >= 1");
}

bool DynamicBatcher::submit(InferenceRequest&& request) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_ || queue_.size() >= policy_.queue_capacity) return false;
    queued_seeds_ += static_cast<std::int64_t>(request.seeds.size());
    queue_.push_back(std::move(request));
    publish_depth_locked();
  }
  // One new request can complete at most one batch, so one worker
  // suffices; all waiting workers are equivalent consumers.
  cv_.notify_one();
  return true;
}

bool DynamicBatcher::next_batch(std::vector<InferenceRequest>& out) {
  out.clear();
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
    if (queue_.empty()) return false;  // stopped and drained

    // A batch is open: it dispatches at the policy limits, at the oldest
    // request's deadline, or immediately on shutdown.
    const auto oldest = queue_.front().enqueue_time;
    const auto deadline =
        oldest + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(policy_.max_wait));
    auto batch_ready = [this] {
      return stopped_ ||
             static_cast<std::int64_t>(queue_.size()) >= policy_.max_batch_requests ||
             queued_seeds_ >= policy_.max_batch_seeds;
    };
    while (!batch_ready() &&
           std::chrono::steady_clock::now() < deadline) {
      cv_.wait_until(lock, deadline);
    }
    // Another worker may have raced us to the batch while we slept.  If
    // the front changed, our deadline belonged to a request that is
    // already gone — recompute from the new front rather than dispatch a
    // fresh arrival with zero coalescing wait.  (Equal enqueue times mean
    // equal deadlines, so a false "unchanged" there is harmless.)
    if (queue_.empty() || queue_.front().enqueue_time != oldest) continue;

    // Close the batch: take requests up to both limits, but always at
    // least one so an oversized request cannot wedge the queue.
    std::int64_t seeds = 0;
    while (!queue_.empty() &&
           static_cast<std::int64_t>(out.size()) < policy_.max_batch_requests) {
      const auto next_seeds = static_cast<std::int64_t>(queue_.front().seeds.size());
      if (!out.empty() && seeds + next_seeds > policy_.max_batch_seeds) break;
      seeds += next_seeds;
      queued_seeds_ -= next_seeds;
      out.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    publish_depth_locked();
    lock.unlock();
    // Submitters blocked on a full queue are not waited on a cv (submit
    // fails fast), so only workers need waking — for the case where two
    // workers waited on the same deadline and one drained the queue.
    cv_.notify_all();
    return true;
  }
}

void DynamicBatcher::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
  }
  cv_.notify_all();
}

std::size_t DynamicBatcher::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void DynamicBatcher::bind(Telemetry* telemetry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (telemetry == nullptr) {
    m_depth_ = m_depth_peak_ = nullptr;
    return;
  }
  m_depth_ = &telemetry->registry().gauge("serving.queue_depth");
  m_depth_peak_ = &telemetry->registry().gauge("serving.queue_depth_peak");
  publish_depth_locked();
}

void DynamicBatcher::publish_depth_locked() {
  if (m_depth_ == nullptr) return;
  const auto depth = static_cast<double>(queue_.size());
  m_depth_->set(depth);
  m_depth_peak_->set_max(depth);
}

}  // namespace hyscale
