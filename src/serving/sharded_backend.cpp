#include "serving/sharded_backend.hpp"

#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "shard/sharded_graph.hpp"
#include "shard/sharded_sampler.hpp"

namespace hyscale {

namespace {

class ShardedBackendSession final : public BackendSession {
 public:
  ShardedBackendSession(ShardedStreamingGraph& sharded, bool cached,
                        const std::vector<int>& fanouts, std::uint64_t sampler_seed,
                        int num_layers)
      : sharded_(sharded), cached_(cached), num_layers_(num_layers) {
    if (!fanouts.empty()) {
      sampler_ =
          std::make_unique<ShardedSampler>(sharded.current_cut(), fanouts, sampler_seed);
    }
  }

  std::uint64_t acquire() override {
    // Latest ADOPTED cut for the whole micro-batch: one frozen
    // cross-shard version vector, so a query never mixes a pre-publish
    // shard with a post-publish one.
    cut_ = sharded_.current_cut();
    return cut_->cut_id();
  }

  MiniBatch sample(const std::vector<VertexId>& seeds, std::uint64_t stream_seed) override {
    if (sampler_) {
      sampler_->set_cut(cut_);
      sampler_->reseed(stream_seed);
      return sampler_->sample(seeds);
    }
    return sample_full_sharded(*cut_, seeds, num_layers_);
  }

  std::optional<StaticFeatureCache::LoadStats> gather(
      const MiniBatch& batch, Tensor& out, std::vector<char>& hit_scratch) override {
    // Route through the home shard of the batch's first seed; the
    // facade patches still-dirty halo rows from their owners so the
    // block is bit-identical to a flat gather.
    const auto& nodes = batch.input_nodes();
    const int home = sharded_.owner(batch.seeds.front());
    const auto stats = sharded_.gather(
        home, std::span<const VertexId>(nodes.data(), nodes.size()), out, hit_scratch);
    if (cached_) return stats;
    return std::nullopt;
  }

  void release() override { cut_.reset(); }

 private:
  ShardedStreamingGraph& sharded_;
  bool cached_;
  std::unique_ptr<ShardedSampler> sampler_;  ///< null in full-neighborhood mode
  std::shared_ptr<const ShardedCut> cut_;    ///< held acquire -> release
  int num_layers_;
};

class ShardedBackend final : public ServingBackend {
 public:
  ShardedBackend(ShardedStreamingGraph& sharded, const ServingConfig& config)
      : sharded_(sharded), fanouts_(config.fanouts) {
    if (config.cache_capacity_rows > 0) {
      // One device cache per shard, ranked by the shard's own (filtered)
      // degrees and attached to that shard for invalidation/eviction.
      // Membership differences versus a flat cache are value-neutral:
      // device rows and store wire fetches apply the same per-row
      // precision rule, so a hit and a miss gather identical bytes.
      caches_.reserve(static_cast<std::size_t>(sharded.num_shards()));
      for (int s = 0; s < sharded.num_shards(); ++s) {
        StreamingGraph& shard = sharded.shard(s);
        caches_.push_back(std::make_unique<StaticFeatureCache>(
            sharded.shard_dataset(s).graph, shard.features().base(),
            config.cache_capacity_rows, config.transfer_precision));
        shard.attach_cache(caches_.back().get());
      }
    }
    for (int s = 0; s < sharded.num_shards(); ++s) {
      sharded.shard(s).features().set_transfer_precision(config.transfer_precision);
    }
  }

  ~ShardedBackend() override {
    if (!caches_.empty()) {
      for (int s = 0; s < sharded_.num_shards(); ++s) {
        sharded_.shard(s).attach_cache(nullptr);
      }
    }
    if (registry_ != nullptr) registry_->detach(this);
  }

  const char* name() const override { return "sharded"; }
  const Dataset& dataset() const override { return sharded_.dataset(); }
  VertexId query_limit() const override { return sharded_.current_cut()->num_vertices(); }

  std::unique_ptr<BackendSession> make_session(std::uint64_t sampler_seed,
                                               int num_layers) override {
    return std::make_unique<ShardedBackendSession>(sharded_, !caches_.empty(), fanouts_,
                                                   sampler_seed, num_layers);
  }

  bool has_cache() const override { return !caches_.empty(); }
  const StaticFeatureCache* shard_cache(int s) const override {
    return s >= 0 && static_cast<std::size_t>(s) < caches_.size()
               ? caches_[static_cast<std::size_t>(s)].get()
               : nullptr;
  }

  void rerank() override { sharded_.rerank_all(); }

  void bind_metrics(MetricsRegistry& registry) override {
    if (caches_.empty() || registry_ == &registry) return;
    if (registry_ != nullptr) registry_->detach(this);
    registry_ = &registry;
    // The cache.* names aggregate across shards (the per-shard split is
    // visible through each shard's own counters); frozen by detach() in
    // the destructor before the caches die.
    const auto* caches = &caches_;
    auto sum = [caches](auto getter) {
      return [caches, getter] {
        double total = 0.0;
        for (const auto& cache : *caches) total += static_cast<double>(getter(*cache));
        return total;
      };
    };
    registry.register_callback("cache.invalidations", this,
                               sum([](const StaticFeatureCache& c) { return c.invalidations(); }));
    registry.register_callback("cache.evictions", this,
                               sum([](const StaticFeatureCache& c) { return c.evictions(); }));
    registry.register_callback("cache.reranks", this,
                               sum([](const StaticFeatureCache& c) { return c.reranks(); }));
    registry.register_callback("cache.readmitted_rows", this,
                               sum([](const StaticFeatureCache& c) {
                                 return c.readmitted_rows();
                               }));
    registry.register_callback("cache.rerank_evicted_rows", this,
                               sum([](const StaticFeatureCache& c) {
                                 return c.rerank_evicted_rows();
                               }));
  }

  // ExpiryTarget: forward to the facade's facade-wide sweep — broadcast
  // retirement keeps every shard's vertex space in lockstep, which is
  // exactly why per-shard sweepers would be wrong here.
  std::int64_t sweep_expired(Seconds ttl, std::int64_t max_retire,
                             EdgeId pending_op_budget) override {
    return sharded_.sweep_expired(ttl, max_retire, pending_op_budget);
  }
  Telemetry* telemetry() const override { return sharded_.telemetry(); }
  const char* expiry_scope() const override { return sharded_.expiry_scope(); }

 private:
  ShardedStreamingGraph& sharded_;
  std::vector<int> fanouts_;
  std::vector<std::unique_ptr<StaticFeatureCache>> caches_;  ///< one per shard
  MetricsRegistry* registry_ = nullptr;
};

}  // namespace

std::unique_ptr<ServingBackend> make_sharded_backend(ShardedStreamingGraph& sharded,
                                                     const ServingConfig& config) {
  return std::make_unique<ShardedBackend>(sharded, config);
}

}  // namespace hyscale
