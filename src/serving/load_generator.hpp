// Closed-loop load generator for the inference server.
//
// N client threads each keep exactly one request in flight: draw random
// seed vertices, submit, block on the result, repeat.  Offered load is
// therefore controlled by the client count (classic closed-loop
// benchmarking), and backpressure shows up as rejected submissions that
// the client retries after a short backoff — so completed work is also
// a goodput number, not just an offered rate.
#pragma once

#include <cstdint>
#include <string>

#include "common/timer.hpp"
#include "graph/datasets.hpp"
#include "serving/inference_server.hpp"

namespace hyscale {

struct LoadGeneratorConfig {
  int num_clients = 4;
  int requests_per_client = 64;
  int seeds_per_request = 4;
  std::uint64_t seed = 7;
  Seconds retry_backoff = 200e-6;  ///< sleep after a rejected submit
  /// When set, run() mirrors its totals into load.* instruments (the
  /// server reports serving.* through its own config independently).
  Telemetry* telemetry = nullptr;
};

struct LoadReport {
  Seconds wall_time = 0.0;
  std::int64_t completed_requests = 0;
  std::int64_t rejected_submits = 0;  ///< retries forced by backpressure
  double qps = 0.0;                   ///< completed / wall_time
  ServingSnapshot server;             ///< server-side stats over the run

  std::string to_string() const;
};

class LoadGenerator {
 public:
  /// `server` and `dataset` must outlive the generator.  Seeds are drawn
  /// uniformly from the dataset's materialised vertices.
  LoadGenerator(InferenceServer& server, const Dataset& dataset, LoadGeneratorConfig config = {});

  /// Runs the full closed-loop session; blocks until every client is done.
  LoadReport run();

 private:
  InferenceServer& server_;
  const Dataset& dataset_;
  LoadGeneratorConfig config_;
};

}  // namespace hyscale
