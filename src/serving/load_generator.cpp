#include "serving/load_generator.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/strutil.hpp"

namespace hyscale {

LoadGenerator::LoadGenerator(InferenceServer& server, const Dataset& dataset,
                             LoadGeneratorConfig config)
    : server_(server), dataset_(dataset), config_(config) {
  if (config_.num_clients < 1)
    throw std::invalid_argument("LoadGenerator: num_clients must be >= 1");
  if (config_.requests_per_client < 1)
    throw std::invalid_argument("LoadGenerator: requests_per_client must be >= 1");
  if (config_.seeds_per_request < 1)
    throw std::invalid_argument("LoadGenerator: seeds_per_request must be >= 1");
}

LoadReport LoadGenerator::run() {
  const auto num_vertices = static_cast<std::uint64_t>(dataset_.graph.num_vertices());
  std::atomic<std::int64_t> completed{0};
  std::atomic<std::int64_t> rejected{0};

  Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(config_.num_clients));
  for (int c = 0; c < config_.num_clients; ++c) {
    // Closed-loop clients spend most of their life blocked on a result;
    // that wait is idle time for the watchdog, and each completed
    // request is a beat — a client wedged on a lost future goes stale.
    Heartbeat* heart =
        config_.telemetry != nullptr
            ? &config_.telemetry->heartbeats().register_thread(
                  "load.client." + std::to_string(c), /*interval_hint_ns=*/100'000'000)
            : nullptr;
    clients.emplace_back([&, c, heart] {
      Xoshiro256 rng(config_.seed + static_cast<std::uint64_t>(c) * 0x9e3779b9ULL);
      std::vector<VertexId> seeds(static_cast<std::size_t>(config_.seeds_per_request));
      if (heart != nullptr) heart->beat();
      for (int r = 0; r < config_.requests_per_client; ++r) {
        for (auto& s : seeds) s = static_cast<VertexId>(rng.bounded(num_vertices));
        for (;;) {
          auto future = server_.try_submit(seeds);
          if (future) {
            if (heart != nullptr) heart->idle_enter();
            future->get();
            if (heart != nullptr) heart->idle_exit();
            completed.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          rejected.fetch_add(1, std::memory_order_relaxed);
          if (heart != nullptr) heart->idle_enter();
          std::this_thread::sleep_for(
              std::chrono::duration<double>(config_.retry_backoff));
          if (heart != nullptr) heart->idle_exit();
        }
      }
      if (heart != nullptr) heart->retire();
    });
  }
  for (auto& client : clients) client.join();

  LoadReport report;
  report.wall_time = wall.elapsed();
  report.completed_requests = completed.load();
  report.rejected_submits = rejected.load();
  if (report.wall_time > 0.0)
    report.qps = static_cast<double>(report.completed_requests) / report.wall_time;
  report.server = server_.stats();
  if (config_.telemetry != nullptr) {
    MetricsRegistry& reg = config_.telemetry->registry();
    reg.counter("load.completed_requests").add(report.completed_requests);
    reg.counter("load.rejected_submits").add(report.rejected_submits);
    reg.gauge("load.wall_seconds").set(report.wall_time);
    reg.gauge("load.qps").set(report.qps);
  }
  return report;
}

std::string LoadReport::to_string() const {
  std::string out;
  out += format_count(static_cast<std::uint64_t>(completed_requests)) + " requests in " +
         format_double(wall_time, 3) + "s  qps=" + format_double(qps, 1);
  out += "  p50=" + format_double(server.latency_p50 * 1e3, 3) + "ms";
  out += "  p99=" + format_double(server.latency_p99 * 1e3, 3) + "ms";
  out += "  mean_batch=" + format_double(server.mean_batch_requests, 2);
  out += "  rejected=" + format_count(static_cast<std::uint64_t>(rejected_submits));
  return out;
}

}  // namespace hyscale
