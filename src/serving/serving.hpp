// Umbrella header for the online inference serving subsystem.
//
//   ModelSnapshot    — immutable weights, from a live trainer or checkpoint
//   DynamicBatcher   — bounded request queue + micro-batch coalescing
//   ServingBackend   — the mode-blind data plane: acquire snapshot ->
//                      sample -> gather -> release (static / streaming /
//                      sharded implementations behind one seam)
//   InferenceServer  — worker pool over one backend, with live model
//                      hot-swap at batch boundaries
//   ServingStats     — latency percentiles, QPS, batch shapes, hit rate
//   LoadGenerator    — closed-loop benchmark driver
#pragma once

#include "serving/backend.hpp"
#include "serving/batcher.hpp"
#include "serving/inference_server.hpp"
#include "serving/load_generator.hpp"
#include "serving/model_snapshot.hpp"
#include "serving/serving_stats.hpp"
#include "serving/sharded_backend.hpp"
#include "serving/static_backend.hpp"
#include "serving/streaming_backend.hpp"
