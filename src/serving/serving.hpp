// Umbrella header for the online inference serving subsystem.
//
//   ModelSnapshot    — immutable weights, from a live trainer or checkpoint
//   DynamicBatcher   — bounded request queue + micro-batch coalescing
//   InferenceServer  — worker pool: sample -> gather (cached) -> forward
//   ServingStats     — latency percentiles, QPS, batch shapes, hit rate
//   LoadGenerator    — closed-loop benchmark driver
#pragma once

#include "serving/batcher.hpp"
#include "serving/inference_server.hpp"
#include "serving/load_generator.hpp"
#include "serving/model_snapshot.hpp"
#include "serving/serving_stats.hpp"
