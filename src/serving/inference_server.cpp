#include "serving/inference_server.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "common/rng.hpp"
#include "obs/telemetry.hpp"
#include "serving/sharded_backend.hpp"
#include "serving/static_backend.hpp"
#include "serving/streaming_backend.hpp"

namespace hyscale {

namespace {

/// Batch-content hash for per-micro-batch sampler reseeding: the same
/// coalesced seed list always samples the same neighborhoods, whatever
/// worker picks the batch up.
std::uint64_t batch_stream_seed(std::uint64_t base, const std::vector<VertexId>& seeds) {
  std::uint64_t state = base ^ 0x9e3779b97f4a7c15ULL;
  for (VertexId v : seeds) {
    state ^= static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (state << 6) + (state >> 2);
    state = splitmix64(state);
  }
  return state;
}

int argmax_row(const Tensor& logits, std::int64_t row) {
  int best = 0;
  for (std::int64_t c = 1; c < logits.cols(); ++c) {
    if (logits.at(row, c) > logits.at(row, best)) best = static_cast<int>(c);
  }
  return best;
}

/// steady_clock time_point on the StageTracer::now_ns timeline.
std::int64_t to_trace_ns(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(tp.time_since_epoch())
      .count();
}

/// Snapshot handles must drop even when sampling/forward throws — the
/// next acquire() needs the session back in its released state.
struct SessionReleaseGuard {
  BackendSession* session;
  ~SessionReleaseGuard() { session->release(); }
};

}  // namespace

InferenceServer::InferenceServer(const Dataset& dataset, const ModelSnapshot& snapshot,
                                 ServingConfig config)
    : InferenceServer(
          [&dataset](const ServingConfig& c) { return make_static_backend(dataset, c); },
          nullptr, snapshot, std::move(config)) {}

InferenceServer::InferenceServer(StreamingGraph& stream, const ModelSnapshot& snapshot,
                                 ServingConfig config)
    : InferenceServer(
          [&stream](const ServingConfig& c) { return make_streaming_backend(stream, c); },
          nullptr, snapshot, std::move(config)) {}

InferenceServer::InferenceServer(ShardedStreamingGraph& sharded,
                                 const ModelSnapshot& snapshot, ServingConfig config)
    : InferenceServer(
          [&sharded](const ServingConfig& c) { return make_sharded_backend(sharded, c); },
          nullptr, snapshot, std::move(config)) {}

InferenceServer::InferenceServer(ServingBackend& backend, const ModelSnapshot& snapshot,
                                 ServingConfig config)
    : InferenceServer(BackendFactory{}, &backend, snapshot, std::move(config)) {}

InferenceServer::InferenceServer(const BackendFactory& factory, ServingBackend* backend,
                                 const ModelSnapshot& snapshot, ServingConfig config)
    : config_(std::move(config)),
      num_classes_(snapshot.num_classes()),
      num_layers_(snapshot.num_layers()),
      batcher_(config_.batch) {
  if (factory) {
    owned_backend_ = factory(config_);
    backend_ = owned_backend_.get();
  } else {
    backend_ = backend;
  }
  bind_telemetry();
  init_workers(snapshot);
}

bool InferenceServer::streaming() const {
  return std::strcmp(backend_->name(), "streaming") == 0;
}

bool InferenceServer::sharded() const {
  return std::strcmp(backend_->name(), "sharded") == 0;
}

void InferenceServer::bind_telemetry() {
  if (config_.telemetry == nullptr) return;
  stats_.bind(config_.telemetry);
  batcher_.bind(config_.telemetry);
  tracer_ = &config_.telemetry->tracer();
  if (config_.telemetry->exemplars().capacity() > 0)
    exemplars_ = &config_.telemetry->exemplars();
  MetricsRegistry& reg = config_.telemetry->registry();
  m_served_version_ = &reg.gauge("serving.last_served_version");
  m_model_epoch_ = &reg.gauge("model.epoch");
  m_model_epoch_->set(1.0);
  backend_->bind_metrics(reg);
  config_.telemetry->journal().log(
      "serving_start", std::string("backend=") + backend_->name() +
                           " workers=" + std::to_string(config_.num_workers));
}

void InferenceServer::init_workers(const ModelSnapshot& snapshot) {
  if (config_.num_workers < 1)
    throw std::invalid_argument("InferenceServer: num_workers must be >= 1");
  if (!config_.fanouts.empty() &&
      static_cast<int>(config_.fanouts.size()) != num_layers_) {
    throw std::invalid_argument("InferenceServer: fanouts must have one entry per layer");
  }

  workers_.resize(static_cast<std::size_t>(config_.num_workers));
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    workers_[w].model = snapshot.instantiate();
    workers_[w].session = backend_->make_session(config_.seed + w, num_layers_);
    if (config_.telemetry != nullptr) {
      // Hint: the longest stage-to-stage gap while busy.  Workers beat
      // between pipeline stages, so only a single wedged stage (a
      // gather deadlock, a stuck forward) grows the age past it.
      workers_[w].heart = &config_.telemetry->heartbeats().register_thread(
          "serving.worker." + std::to_string(w), /*interval_hint_ns=*/100'000'000);
    }
  }

  pool_ = std::make_unique<ThreadPool>(workers_.size());
  for (auto& worker : workers_) {
    pool_->submit([this, &worker] { worker_loop(worker); });
  }
}

InferenceServer::~InferenceServer() {
  batcher_.shutdown();
  pool_.reset();     // joins the worker loops after they drain the queue
  workers_.clear();  // sessions die before the backend they came from
  // The owned backend detaches its caches and cache.* callbacks here; a
  // borrowed backend keeps them until IT dies (it outlives the server).
  owned_backend_.reset();
}

std::optional<std::future<InferenceResult>> InferenceServer::try_submit(
    std::vector<VertexId> seeds) {
  if (seeds.empty())
    throw std::invalid_argument("InferenceServer: empty seed list");
  // Streaming vertices become queryable once a version containing them
  // is published (sharded: adopted — execute-time cuts/versions are
  // monotonically newer).
  const VertexId limit = backend_->query_limit();
  for (VertexId v : seeds) {
    if (v < 0 || v >= limit)
      throw std::invalid_argument("InferenceServer: seed vertex out of range");
  }
  InferenceRequest request;
  request.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  request.seeds = std::move(seeds);
  request.enqueue_time = std::chrono::steady_clock::now();
  auto future = request.promise.get_future();
  if (!batcher_.submit(std::move(request))) {
    stats_.record_rejection();
    return std::nullopt;
  }
  return future;
}

InferenceResult InferenceServer::infer(std::vector<VertexId> seeds) {
  for (;;) {
    auto future = try_submit(seeds);
    if (future) return future->get();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

std::uint64_t InferenceServer::swap_model(const ModelSnapshot& snapshot) {
  if (snapshot.num_classes() != num_classes_ || snapshot.num_layers() != num_layers_) {
    throw std::invalid_argument(
        "InferenceServer::swap_model: snapshot architecture does not match the serving "
        "model (layer/class counts must be equal)");
  }
  // ModelSnapshot is move-only, so stage a deep copy: the caller keeps
  // their snapshot, the server owns the staged weights for as long as
  // workers may still instantiate from them.
  auto staged = std::make_shared<const ModelSnapshot>(*snapshot.instantiate());
  std::uint64_t epoch;
  {
    std::lock_guard lock(model_mutex_);
    staged_model_ = std::move(staged);
    // Publish the epoch AFTER the snapshot it names: a worker that sees
    // the new epoch and takes the lock is guaranteed to find at least
    // this snapshot staged.
    epoch = model_epoch_.load(std::memory_order_relaxed) + 1;
    model_epoch_.store(epoch, std::memory_order_release);
  }
  if (m_model_epoch_ != nullptr) m_model_epoch_->set(static_cast<double>(epoch));
  if (config_.telemetry != nullptr) {
    config_.telemetry->journal().log(
        "model_swap", std::string("backend=") + backend_->name() +
                          " epoch=" + std::to_string(epoch));
  }
  return epoch;
}

void InferenceServer::refresh_worker_model(Worker& worker) {
  // One relaxed-ish load per batch; only a swap pays the lock.
  if (model_epoch_.load(std::memory_order_acquire) == worker.model_epoch) return;
  std::shared_ptr<const ModelSnapshot> staged;
  std::uint64_t epoch;
  {
    std::lock_guard lock(model_mutex_);
    staged = staged_model_;
    epoch = model_epoch_.load(std::memory_order_relaxed);
  }
  if (!staged) return;  // construction epoch: nothing staged yet
  worker.model = staged->instantiate();
  worker.model_epoch = epoch;
}

void InferenceServer::worker_loop(Worker& worker) {
  std::vector<InferenceRequest> batch;
  for (;;) {
    // Blocking on an empty queue is not a stall: idle while parked in
    // next_batch, busy (and freshly stamped) the moment a batch lands.
    if (worker.heart != nullptr) worker.heart->idle_enter();
    const bool alive = batcher_.next_batch(batch);
    if (worker.heart != nullptr) worker.heart->idle_exit();
    if (!alive) break;
    execute_batch(worker, batch);
  }
  if (worker.heart != nullptr) worker.heart->retire();
}

void InferenceServer::execute_batch(Worker& worker, std::vector<InferenceRequest>& batch) {
  const std::uint64_t batch_id = next_batch_id_.fetch_add(1, std::memory_order_relaxed);
  const auto pickup = std::chrono::steady_clock::now();
  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  // Stage boundaries are stamped explicitly (not RAII scopes) so ONE
  // set of timestamps feeds both the tracer rings and the exemplar
  // traces — a retained exemplar matches the assembled ring spans
  // exactly.  When neither consumer is on, no extra clocks are read.
  const bool diag = tracing || exemplars_ != nullptr;
  const std::int64_t pickup_ns = diag ? to_trace_ns(pickup) : 0;
  // Queue spans close at pickup: one per request, correlated to this
  // batch by context so context_path(batch_id) reconstructs the full
  // queue -> sample -> gather -> forward -> reply critical path.
  if (tracing) {
    for (const auto& request : batch) {
      tracer_->record(TraceStage::kQueue, batch_id, request.id,
                      to_trace_ns(request.enqueue_time), pickup_ns);
    }
  }
  try {
    // Hot-swap pickup happens at the batch boundary, BEFORE the
    // snapshot acquire: the whole batch runs on one replica, so a
    // concurrent swap_model can never tear it.
    refresh_worker_model(worker);

    // Coalesce: request seeds concatenate in arrival order, so logits
    // row blocks map back to requests by offset.  Worker-owned scratch:
    // capacity persists across batches.
    std::vector<VertexId>& combined = worker.combined;
    combined.clear();
    for (const auto& request : batch) {
      combined.insert(combined.end(), request.seeds.begin(), request.seeds.end());
    }

    BackendSession& session = *worker.session;
    const std::int64_t sample_begin_ns = diag ? StageTracer::now_ns() : 0;
    const std::uint64_t freshness = session.acquire();
    SessionReleaseGuard release_guard{&session};
    if (freshness > 0) {
      // Max-merge across workers: two batches can acquire in one order
      // and store in the other, and a plain store would let the gauge
      // go backwards.
      std::uint64_t seen = last_served_version_.load(std::memory_order_relaxed);
      while (seen < freshness &&
             !last_served_version_.compare_exchange_weak(seen, freshness,
                                                         std::memory_order_relaxed)) {
      }
      if (m_served_version_ != nullptr)
        m_served_version_->set_max(static_cast<double>(freshness));
    }
    MiniBatch mb = session.sample(combined, batch_stream_seed(config_.seed, combined));
    const std::int64_t sample_end_ns = diag ? StageTracer::now_ns() : 0;
    if (tracing)
      tracer_->record(TraceStage::kSample, batch_id, combined.size(), sample_begin_ns,
                      sample_end_ns);
    if (worker.heart != nullptr) worker.heart->beat();

    Tensor& x = worker.x;
    const auto gather_stats = session.gather(mb, x, worker.hit_scratch);
    if (gather_stats) stats_.record_gather(*gather_stats);
    maybe_rerank(static_cast<std::int64_t>(mb.input_nodes().size()));
    const std::int64_t gather_end_ns = diag ? StageTracer::now_ns() : 0;
    if (tracing)
      tracer_->record(TraceStage::kGather, batch_id, mb.input_nodes().size(), sample_end_ns,
                      gather_end_ns);
    if (worker.heart != nullptr) worker.heart->beat();

    Tensor logits = worker.model->forward(mb, x);
    const std::int64_t forward_end_ns = diag ? StageTracer::now_ns() : 0;
    if (tracing)
      tracer_->record(TraceStage::kForward, batch_id, batch.size(), gather_end_ns,
                      forward_end_ns);
    if (worker.heart != nullptr) worker.heart->beat();

    const auto completion = std::chrono::steady_clock::now();
    const auto batch_seeds = static_cast<std::int64_t>(combined.size());
    stats_.record_batch(static_cast<std::int64_t>(batch.size()), batch_seeds);

    std::int64_t row = 0;
    for (auto& request : batch) {
      InferenceResult result;
      const auto rows = static_cast<std::int64_t>(request.seeds.size());
      result.logits.resize(rows, logits.cols());
      for (std::int64_t r = 0; r < rows; ++r) {
        const auto src = logits.row(row + r);
        std::copy(src.begin(), src.end(), result.logits.row(r).begin());
        result.predictions.push_back(argmax_row(result.logits, r));
      }
      row += rows;
      result.latency =
          std::chrono::duration<double>(completion - request.enqueue_time).count();
      result.queue_wait =
          std::chrono::duration<double>(pickup - request.enqueue_time).count();
      result.request_id = request.id;
      result.batch_id = batch_id;
      result.batch_requests = static_cast<std::int64_t>(batch.size());
      result.batch_seeds = batch_seeds;
      stats_.record_completion(result.latency, result.queue_wait);
      request.promise.set_value(std::move(result));
    }
    const std::int64_t reply_end_ns = diag ? StageTracer::now_ns() : 0;
    if (tracing)
      tracer_->record(TraceStage::kReply, batch_id, batch.size(), forward_end_ns,
                      reply_end_ns);
    if (exemplars_ != nullptr) {
      // Offer every member's assembled trace; the ring's threshold
      // fast-path rejects the fast ones with one relaxed load.  Batch
      // stages are shared; only the queue span is per-request.
      RequestTrace trace;
      trace.batch_id = batch_id;
      trace.batch_requests = static_cast<std::int64_t>(batch.size());
      trace.batch_seeds = batch_seeds;
      trace.sample = {sample_begin_ns, sample_end_ns, true};
      trace.gather = {sample_end_ns, gather_end_ns, true};
      trace.forward = {gather_end_ns, forward_end_ns, true};
      trace.reply = {forward_end_ns, reply_end_ns, true};
      trace.done_ns = reply_end_ns;
      for (const auto& request : batch) {
        trace.request_id = request.id;
        trace.enqueue_ns = to_trace_ns(request.enqueue_time);
        trace.queue = {trace.enqueue_ns, pickup_ns, true};
        exemplars_->offer(trace);
      }
    }
  } catch (...) {
    for (auto& request : batch) {
      try {
        request.promise.set_exception(std::current_exception());
      } catch (const std::future_error&) {
        // promise already satisfied before the failure — nothing to do
      }
    }
  }
}

void InferenceServer::maybe_rerank(std::int64_t gathered_rows) {
  const std::int64_t every = config_.cache_rerank_every_rows;
  if (every <= 0 || gathered_rows <= 0) return;
  if (!backend_->has_cache()) return;
  const std::int64_t total =
      rerank_rows_.fetch_add(gathered_rows, std::memory_order_relaxed) + gathered_rows;
  std::int64_t due = rerank_due_.load(std::memory_order_relaxed);
  while (total >= due + every) {
    // Claim every boundary this total crosses in one CAS so a huge
    // batch issues one re-rank, not a burst, and concurrent workers
    // never double-trigger the same crossing.
    const std::int64_t next = due + every * ((total - due) / every);
    if (!rerank_due_.compare_exchange_weak(due, next, std::memory_order_relaxed)) continue;
    traffic_reranks_.fetch_add(1, std::memory_order_relaxed);
    backend_->rerank();
    break;
  }
}

}  // namespace hyscale
