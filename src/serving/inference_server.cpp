#include "serving/inference_server.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <span>
#include <stdexcept>
#include <thread>

#include "common/rng.hpp"
#include "shard/sharded_graph.hpp"
#include "shard/sharded_sampler.hpp"
#include "stream/overlay_sampler.hpp"
#include "stream/streaming_graph.hpp"

namespace hyscale {

namespace {

/// Batch-content hash for per-micro-batch sampler reseeding: the same
/// coalesced seed list always samples the same neighborhoods, whatever
/// worker picks the batch up.
std::uint64_t batch_stream_seed(std::uint64_t base, const std::vector<VertexId>& seeds) {
  std::uint64_t state = base ^ 0x9e3779b97f4a7c15ULL;
  for (VertexId v : seeds) {
    state ^= static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (state << 6) + (state >> 2);
    state = splitmix64(state);
  }
  return state;
}

int argmax_row(const Tensor& logits, std::int64_t row) {
  int best = 0;
  for (std::int64_t c = 1; c < logits.cols(); ++c) {
    if (logits.at(row, c) > logits.at(row, best)) best = static_cast<int>(c);
  }
  return best;
}

/// steady_clock time_point on the StageTracer::now_ns timeline.
std::int64_t to_trace_ns(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(tp.time_since_epoch())
      .count();
}

}  // namespace

InferenceServer::InferenceServer(const Dataset& dataset, const ModelSnapshot& snapshot,
                                 ServingConfig config)
    : dataset_(dataset),
      config_(std::move(config)),
      num_classes_(snapshot.num_classes()),
      num_layers_(snapshot.num_layers()),
      batcher_(config_.batch) {
  if (config_.cache_capacity_rows > 0) {
    cache_ = std::make_unique<StaticFeatureCache>(dataset_.graph, dataset_.features,
                                                  config_.cache_capacity_rows,
                                                  config_.transfer_precision);
  } else if (config_.transfer_precision != TransferPrecision::kFp32) {
    throw std::invalid_argument(
        "InferenceServer: static mode applies transfer_precision to the device cache; "
        "set cache_capacity_rows > 0 or use fp32");
  }
  bind_telemetry();
  init_workers(snapshot);
}

InferenceServer::InferenceServer(StreamingGraph& stream, const ModelSnapshot& snapshot,
                                 ServingConfig config)
    : dataset_(stream.dataset()),
      stream_(&stream),
      config_(std::move(config)),
      num_classes_(snapshot.num_classes()),
      num_layers_(snapshot.num_layers()),
      batcher_(config_.batch) {
  if (config_.cache_capacity_rows > 0) {
    // Built over the streaming feature store's base matrix (stable
    // address) and attached so update_feature refreshes device rows.
    cache_ = std::make_unique<StaticFeatureCache>(dataset_.graph, stream.features().base(),
                                                  config_.cache_capacity_rows,
                                                  config_.transfer_precision);
    stream.attach_cache(cache_.get());
  }
  // Host-side wire simulation matches the cache precision, so a row
  // gathers to the same values whether it hits or misses.
  stream.features().set_transfer_precision(config_.transfer_precision);
  bind_telemetry();
  init_workers(snapshot);
}

InferenceServer::InferenceServer(ShardedStreamingGraph& sharded,
                                 const ModelSnapshot& snapshot, ServingConfig config)
    : dataset_(sharded.dataset()),
      sharded_(&sharded),
      config_(std::move(config)),
      num_classes_(snapshot.num_classes()),
      num_layers_(snapshot.num_layers()),
      batcher_(config_.batch) {
  if (config_.cache_capacity_rows > 0) {
    // One device cache per shard, ranked by the shard's own (filtered)
    // degrees and attached to that shard for invalidation/eviction.
    // Membership differences versus a flat cache are value-neutral:
    // device rows and store wire fetches apply the same per-row
    // precision rule, so a hit and a miss gather identical bytes.
    shard_caches_.reserve(static_cast<std::size_t>(sharded.num_shards()));
    for (int s = 0; s < sharded.num_shards(); ++s) {
      StreamingGraph& shard = sharded.shard(s);
      shard_caches_.push_back(std::make_unique<StaticFeatureCache>(
          sharded.shard_dataset(s).graph, shard.features().base(),
          config_.cache_capacity_rows, config_.transfer_precision));
      shard.attach_cache(shard_caches_.back().get());
    }
  }
  for (int s = 0; s < sharded.num_shards(); ++s) {
    sharded.shard(s).features().set_transfer_precision(config_.transfer_precision);
  }
  bind_telemetry();
  init_workers(snapshot);
}

void InferenceServer::bind_telemetry() {
  if (config_.telemetry == nullptr) return;
  stats_.bind(config_.telemetry);
  batcher_.bind(config_.telemetry);
  tracer_ = &config_.telemetry->tracer();
  if (config_.telemetry->exemplars().capacity() > 0)
    exemplars_ = &config_.telemetry->exemplars();
  MetricsRegistry& reg = config_.telemetry->registry();
  m_served_version_ = &reg.gauge("serving.last_served_version");
  if (cache_) {
    // Pulled at snapshot time; frozen by detach() in the destructor
    // before the cache dies.
    const StaticFeatureCache* cache = cache_.get();
    reg.register_callback("cache.invalidations", this,
                          [cache] { return static_cast<double>(cache->invalidations()); });
    reg.register_callback("cache.evictions", this,
                          [cache] { return static_cast<double>(cache->evictions()); });
    reg.register_callback("cache.reranks", this,
                          [cache] { return static_cast<double>(cache->reranks()); });
    reg.register_callback("cache.readmitted_rows", this, [cache] {
      return static_cast<double>(cache->readmitted_rows());
    });
    reg.register_callback("cache.rerank_evicted_rows", this, [cache] {
      return static_cast<double>(cache->rerank_evicted_rows());
    });
  } else if (!shard_caches_.empty()) {
    // Sharded mode: the cache.* names aggregate across shards (the
    // per-shard split is visible through each shard's own counters).
    const auto* caches = &shard_caches_;
    auto sum = [caches](auto getter) {
      return [caches, getter] {
        double total = 0.0;
        for (const auto& cache : *caches) total += static_cast<double>(getter(*cache));
        return total;
      };
    };
    reg.register_callback("cache.invalidations", this,
                          sum([](const StaticFeatureCache& c) { return c.invalidations(); }));
    reg.register_callback("cache.evictions", this,
                          sum([](const StaticFeatureCache& c) { return c.evictions(); }));
    reg.register_callback("cache.reranks", this,
                          sum([](const StaticFeatureCache& c) { return c.reranks(); }));
    reg.register_callback("cache.readmitted_rows", this, sum([](const StaticFeatureCache& c) {
                            return c.readmitted_rows();
                          }));
    reg.register_callback("cache.rerank_evicted_rows", this,
                          sum([](const StaticFeatureCache& c) {
                            return c.rerank_evicted_rows();
                          }));
  }
}

void InferenceServer::init_workers(const ModelSnapshot& snapshot) {
  if (config_.num_workers < 1)
    throw std::invalid_argument("InferenceServer: num_workers must be >= 1");
  if (!config_.fanouts.empty() &&
      static_cast<int>(config_.fanouts.size()) != num_layers_) {
    throw std::invalid_argument("InferenceServer: fanouts must have one entry per layer");
  }

  workers_.resize(static_cast<std::size_t>(config_.num_workers));
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    workers_[w].model = snapshot.instantiate();
    if (!config_.fanouts.empty()) {
      if (sharded_ != nullptr) {
        workers_[w].sharded = std::make_unique<ShardedSampler>(
            sharded_->current_cut(), config_.fanouts, config_.seed + w);
      } else if (stream_ != nullptr) {
        workers_[w].overlay = std::make_unique<OverlaySampler>(
            stream_->current(), config_.fanouts, config_.seed + w);
      } else {
        workers_[w].sampler = std::make_unique<NeighborSampler>(
            dataset_.graph, config_.fanouts, config_.seed + w);
      }
    }
    if (!cache_ && stream_ == nullptr && sharded_ == nullptr) {
      workers_[w].loader = std::make_unique<FeatureLoader>(dataset_.features);
    }
    if (config_.telemetry != nullptr) {
      // Hint: the longest stage-to-stage gap while busy.  Workers beat
      // between pipeline stages, so only a single wedged stage (a
      // gather deadlock, a stuck forward) grows the age past it.
      workers_[w].heart = &config_.telemetry->heartbeats().register_thread(
          "serving.worker." + std::to_string(w), /*interval_hint_ns=*/100'000'000);
    }
  }

  pool_ = std::make_unique<ThreadPool>(workers_.size());
  for (auto& worker : workers_) {
    pool_->submit([this, &worker] { worker_loop(worker); });
  }
}

InferenceServer::~InferenceServer() {
  batcher_.shutdown();
  pool_.reset();  // joins the worker loops after they drain the queue
  if (stream_ != nullptr && cache_) stream_->attach_cache(nullptr);
  if (sharded_ != nullptr && !shard_caches_.empty()) {
    for (int s = 0; s < sharded_->num_shards(); ++s) {
      sharded_->shard(s).attach_cache(nullptr);
    }
  }
  if (config_.telemetry != nullptr) config_.telemetry->registry().detach(this);
}

std::optional<std::future<InferenceResult>> InferenceServer::try_submit(
    std::vector<VertexId> seeds) {
  if (seeds.empty())
    throw std::invalid_argument("InferenceServer: empty seed list");
  // Streaming vertices become queryable once a version containing them
  // is published (sharded: adopted — execute-time cuts/versions are
  // monotonically newer).
  const VertexId limit = sharded_ != nullptr ? sharded_->current_cut()->num_vertices()
                         : stream_ != nullptr ? stream_->current()->num_vertices()
                                              : dataset_.graph.num_vertices();
  for (VertexId v : seeds) {
    if (v < 0 || v >= limit)
      throw std::invalid_argument("InferenceServer: seed vertex out of range");
  }
  InferenceRequest request;
  request.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  request.seeds = std::move(seeds);
  request.enqueue_time = std::chrono::steady_clock::now();
  auto future = request.promise.get_future();
  if (!batcher_.submit(std::move(request))) {
    stats_.record_rejection();
    return std::nullopt;
  }
  return future;
}

InferenceResult InferenceServer::infer(std::vector<VertexId> seeds) {
  for (;;) {
    auto future = try_submit(seeds);
    if (future) return future->get();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

void InferenceServer::worker_loop(Worker& worker) {
  std::vector<InferenceRequest> batch;
  for (;;) {
    // Blocking on an empty queue is not a stall: idle while parked in
    // next_batch, busy (and freshly stamped) the moment a batch lands.
    if (worker.heart != nullptr) worker.heart->idle_enter();
    const bool alive = batcher_.next_batch(batch);
    if (worker.heart != nullptr) worker.heart->idle_exit();
    if (!alive) break;
    execute_batch(worker, batch);
  }
  if (worker.heart != nullptr) worker.heart->retire();
}

void InferenceServer::execute_batch(Worker& worker, std::vector<InferenceRequest>& batch) {
  const std::uint64_t batch_id = next_batch_id_.fetch_add(1, std::memory_order_relaxed);
  const auto pickup = std::chrono::steady_clock::now();
  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  // Stage boundaries are stamped explicitly (not RAII scopes) so ONE
  // set of timestamps feeds both the tracer rings and the exemplar
  // traces — a retained exemplar matches the assembled ring spans
  // exactly.  When neither consumer is on, no extra clocks are read.
  const bool diag = tracing || exemplars_ != nullptr;
  const std::int64_t pickup_ns = diag ? to_trace_ns(pickup) : 0;
  // Queue spans close at pickup: one per request, correlated to this
  // batch by context so context_path(batch_id) reconstructs the full
  // queue -> sample -> gather -> forward -> reply critical path.
  if (tracing) {
    for (const auto& request : batch) {
      tracer_->record(TraceStage::kQueue, batch_id, request.id,
                      to_trace_ns(request.enqueue_time), pickup_ns);
    }
  }
  try {
    // Coalesce: request seeds concatenate in arrival order, so logits
    // row blocks map back to requests by offset.  Worker-owned scratch:
    // capacity persists across batches.
    std::vector<VertexId>& combined = worker.combined;
    combined.clear();
    for (const auto& request : batch) {
      combined.insert(combined.end(), request.seeds.begin(), request.seeds.end());
    }

    const std::int64_t sample_begin_ns = diag ? StageTracer::now_ns() : 0;
    MiniBatch mb;
    {
      if (sharded_ != nullptr) {
        // Latest ADOPTED cut for the whole micro-batch: one frozen
        // cross-shard version vector, so a query never mixes a
        // pre-publish shard with a post-publish one.
        const std::shared_ptr<const ShardedCut> cut = sharded_->current_cut();
        std::uint64_t seen = last_served_version_.load(std::memory_order_relaxed);
        while (seen < cut->cut_id() &&
               !last_served_version_.compare_exchange_weak(seen, cut->cut_id(),
                                                           std::memory_order_relaxed)) {
        }
        if (m_served_version_ != nullptr)
          m_served_version_->set_max(static_cast<double>(cut->cut_id()));
        if (worker.sharded) {
          worker.sharded->set_cut(cut);
          worker.sharded->reseed(batch_stream_seed(config_.seed, combined));
          mb = worker.sharded->sample(combined);
        } else {
          mb = sample_full_sharded(*cut, combined, num_layers_);
        }
      } else if (stream_ != nullptr) {
        // Latest published version for the whole micro-batch: consistent
        // view per batch, freshest data per pickup.
        const std::shared_ptr<const GraphVersion> version = stream_->current();
        // Max-merge across workers: two batches can read current() in
        // one order and store in the other, and a plain store would let
        // the gauge go backwards.
        std::uint64_t seen = last_served_version_.load(std::memory_order_relaxed);
        while (seen < version->id() &&
               !last_served_version_.compare_exchange_weak(seen, version->id(),
                                                           std::memory_order_relaxed)) {
        }
        if (m_served_version_ != nullptr)
          m_served_version_->set_max(static_cast<double>(version->id()));
        if (worker.overlay) {
          worker.overlay->set_version(version);
          worker.overlay->reseed(batch_stream_seed(config_.seed, combined));
          mb = worker.overlay->sample(combined);
        } else {
          mb = sample_full_overlay(*version, combined, num_layers_);
        }
      } else if (worker.sampler) {
        worker.sampler->reseed(batch_stream_seed(config_.seed, combined));
        mb = worker.sampler->sample(combined);
      } else {
        mb = sample_full(dataset_.graph, combined, num_layers_);
      }
    }
    const std::int64_t sample_end_ns = diag ? StageTracer::now_ns() : 0;
    if (tracing)
      tracer_->record(TraceStage::kSample, batch_id, combined.size(), sample_begin_ns,
                      sample_end_ns);
    if (worker.heart != nullptr) worker.heart->beat();

    Tensor& x = worker.x;
    {
      if (sharded_ != nullptr) {
        // Route through the home shard of the batch's first seed; the
        // facade patches still-dirty halo rows from their owners so the
        // block is bit-identical to a flat gather.
        const auto& nodes = mb.input_nodes();
        const int home = sharded_->owner(combined.front());
        const auto gather_stats = sharded_->gather(
            home, std::span<const VertexId>(nodes.data(), nodes.size()), x,
            worker.hit_scratch);
        if (!shard_caches_.empty()) stats_.record_gather(gather_stats);
      } else if (stream_ != nullptr) {
        // Fused sample->gather: the minibatch's input-node span feeds the
        // gather directly and lands in the worker's reusable tensor — no
        // temporary id or feature buffers between the stages.
        const auto& nodes = mb.input_nodes();
        const auto gather_stats = stream_->gather(
            std::span<const VertexId>(nodes.data(), nodes.size()), x, worker.hit_scratch);
        if (cache_) stats_.record_gather(gather_stats);
      } else if (cache_) {
        stats_.record_gather(cache_->load(mb, x));
      } else {
        worker.loader->load(mb, x);
      }
    }
    maybe_rerank(static_cast<std::int64_t>(mb.input_nodes().size()));
    const std::int64_t gather_end_ns = diag ? StageTracer::now_ns() : 0;
    if (tracing)
      tracer_->record(TraceStage::kGather, batch_id, mb.input_nodes().size(), sample_end_ns,
                      gather_end_ns);
    if (worker.heart != nullptr) worker.heart->beat();

    Tensor logits = worker.model->forward(mb, x);
    const std::int64_t forward_end_ns = diag ? StageTracer::now_ns() : 0;
    if (tracing)
      tracer_->record(TraceStage::kForward, batch_id, batch.size(), gather_end_ns,
                      forward_end_ns);
    if (worker.heart != nullptr) worker.heart->beat();

    const auto completion = std::chrono::steady_clock::now();
    const auto batch_seeds = static_cast<std::int64_t>(combined.size());
    stats_.record_batch(static_cast<std::int64_t>(batch.size()), batch_seeds);

    std::int64_t row = 0;
    for (auto& request : batch) {
      InferenceResult result;
      const auto rows = static_cast<std::int64_t>(request.seeds.size());
      result.logits.resize(rows, logits.cols());
      for (std::int64_t r = 0; r < rows; ++r) {
        const auto src = logits.row(row + r);
        std::copy(src.begin(), src.end(), result.logits.row(r).begin());
        result.predictions.push_back(argmax_row(result.logits, r));
      }
      row += rows;
      result.latency =
          std::chrono::duration<double>(completion - request.enqueue_time).count();
      result.queue_wait =
          std::chrono::duration<double>(pickup - request.enqueue_time).count();
      result.request_id = request.id;
      result.batch_id = batch_id;
      result.batch_requests = static_cast<std::int64_t>(batch.size());
      result.batch_seeds = batch_seeds;
      stats_.record_completion(result.latency, result.queue_wait);
      request.promise.set_value(std::move(result));
    }
    const std::int64_t reply_end_ns = diag ? StageTracer::now_ns() : 0;
    if (tracing)
      tracer_->record(TraceStage::kReply, batch_id, batch.size(), forward_end_ns,
                      reply_end_ns);
    if (exemplars_ != nullptr) {
      // Offer every member's assembled trace; the ring's threshold
      // fast-path rejects the fast ones with one relaxed load.  Batch
      // stages are shared; only the queue span is per-request.
      RequestTrace trace;
      trace.batch_id = batch_id;
      trace.batch_requests = static_cast<std::int64_t>(batch.size());
      trace.batch_seeds = batch_seeds;
      trace.sample = {sample_begin_ns, sample_end_ns, true};
      trace.gather = {sample_end_ns, gather_end_ns, true};
      trace.forward = {gather_end_ns, forward_end_ns, true};
      trace.reply = {forward_end_ns, reply_end_ns, true};
      trace.done_ns = reply_end_ns;
      for (const auto& request : batch) {
        trace.request_id = request.id;
        trace.enqueue_ns = to_trace_ns(request.enqueue_time);
        trace.queue = {trace.enqueue_ns, pickup_ns, true};
        exemplars_->offer(trace);
      }
    }
  } catch (...) {
    for (auto& request : batch) {
      try {
        request.promise.set_exception(std::current_exception());
      } catch (const std::future_error&) {
        // promise already satisfied before the failure — nothing to do
      }
    }
  }
}

void InferenceServer::maybe_rerank(std::int64_t gathered_rows) {
  const std::int64_t every = config_.cache_rerank_every_rows;
  if (every <= 0 || gathered_rows <= 0) return;
  if (!cache_ && shard_caches_.empty()) return;
  const std::int64_t total =
      rerank_rows_.fetch_add(gathered_rows, std::memory_order_relaxed) + gathered_rows;
  std::int64_t due = rerank_due_.load(std::memory_order_relaxed);
  while (total >= due + every) {
    // Claim every boundary this total crosses in one CAS so a huge
    // batch issues one re-rank, not a burst, and concurrent workers
    // never double-trigger the same crossing.
    const std::int64_t next = due + every * ((total - due) / every);
    if (!rerank_due_.compare_exchange_weak(due, next, std::memory_order_relaxed)) continue;
    traffic_reranks_.fetch_add(1, std::memory_order_relaxed);
    if (sharded_ != nullptr) {
      sharded_->rerank_all();
    } else if (stream_ != nullptr) {
      stream_->rerank_now();
    } else {
      rerank_static_cache();
    }
    break;
  }
}

void InferenceServer::rerank_static_cache() {
  if (!cache_ || cache_->capacity() == 0) return;
  // Static mode has no dead vertices, so the candidate pool is simply
  // every trackable row; the ranking matches StreamingGraph's fold-time
  // re-rank (traffic first, dataset degree breaks ties, id stabilises).
  const auto limit =
      std::min<VertexId>(static_cast<VertexId>(cache_->trackable_rows()),
                         dataset_.graph.num_vertices());
  if (limit <= 0) return;
  std::vector<VertexId> candidates(static_cast<std::size_t>(limit));
  std::iota(candidates.begin(), candidates.end(), VertexId{0});
  const auto hotter = [this](VertexId a, VertexId b) {
    const std::uint64_t ca = cache_->access_count(a);
    const std::uint64_t cb = cache_->access_count(b);
    if (ca != cb) return ca > cb;
    const EdgeId da = dataset_.graph.degree(a);
    const EdgeId db = dataset_.graph.degree(b);
    if (da != db) return da > db;
    return a < b;
  };
  const auto top = std::min<std::size_t>(candidates.size(),
                                         static_cast<std::size_t>(cache_->capacity()));
  std::partial_sort(candidates.begin(),
                    candidates.begin() + static_cast<std::ptrdiff_t>(top),
                    candidates.end(), hotter);
  candidates.resize(top);
  cache_->rerank(candidates);
}

}  // namespace hyscale
