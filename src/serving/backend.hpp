// The serving seam: one mode-blind per-batch contract.
//
// The serving tier runs in three modes — static (the immutable dataset
// CSR), streaming (the latest published GraphVersion of an evolving
// graph), and sharded (the latest adopted cross-shard ShardedCut).
// What a worker does per micro-batch is the same in all three:
//
//   acquire a consistent snapshot handle -> sample a computation graph
//   over it -> gather input features at wire precision through the
//   right cache -> release the handle
//
// ServingBackend captures exactly that contract plus the lifecycle
// around it (cache ownership and telemetry registration, the
// traffic-cadence re-rank hook, TTL expiry forwarding, the mode label
// journal events and benches key on), so InferenceServer — and every
// future consumer: the wire/snapshot plane (ROADMAP item 2), model
// refresh loops (item 4), per-shard replication (item 1b) — is written
// once against this interface instead of three times against concrete
// graphs.  Factories for the three shipped backends live in
// static_backend.hpp / streaming_backend.hpp / sharded_backend.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "graph/datasets.hpp"
#include "runtime/feature_cache.hpp"
#include "sampling/minibatch.hpp"
#include "serving/batcher.hpp"
#include "stream/expiry_target.hpp"

namespace hyscale {

class MetricsRegistry;
class Telemetry;

struct ServingConfig {
  /// Inference fanouts, input layer first (like HybridTrainerConfig).
  /// EMPTY means full-neighborhood inference — exact logits, higher
  /// cost; the equivalence tests rely on it.
  std::vector<int> fanouts;
  int num_workers = 2;
  BatchPolicy batch;
  /// Rows pinned by the PaGraph-style static cache; 0 disables it and
  /// gathers go through a per-worker FeatureLoader.
  std::int64_t cache_capacity_rows = 0;
  /// Feature transfer precision for the gather hot path: device cache
  /// rows are stored (and streaming host fetches are wire-simulated) at
  /// this precision.  kInt8 moves ~4x fewer bytes per row at the
  /// documented per-row quantization error; kFp16 is rejected at
  /// construction.  Default kFp32 (lossless).
  TransferPrecision transfer_precision = TransferPrecision::kFp32;
  std::uint64_t seed = 1;
  /// Traffic-triggered cache re-rank cadence, in gathered input rows
  /// summed across all workers: every N rows the serving tier recomputes
  /// the attached cache's hot set from its observed access counters
  /// (streaming: StreamingGraph::rerank_now; sharded: every shard's
  /// cache; static: the same traffic-first/degree-tiebreak ranking over
  /// the dataset graph).  Decouples admission-drift correction from
  /// compaction folds — a serving-heavy session whose quiet ingest never
  /// triggers a fold still re-ranks.  0 (default) leaves re-ranking to
  /// the fold-time path alone.
  std::int64_t cache_rerank_every_rows = 0;
  /// Telemetry plane (obs/) to report through: serving.* instruments,
  /// request/batch stage spans.  Null = telemetry off (default); must
  /// outlive the server when set.
  Telemetry* telemetry = nullptr;
};

/// One worker's handle on a backend: the per-batch acquire -> sample ->
/// gather -> release contract.  A session is single-threaded (each
/// serving worker owns one) and must not outlive its backend.
class BackendSession {
 public:
  virtual ~BackendSession() = default;

  /// Pins the freshest consistent snapshot for ONE micro-batch (the
  /// latest published GraphVersion, the latest adopted ShardedCut, or
  /// the immutable dataset CSR) and returns its monotone freshness id
  /// (version id / cut id; 0 for the static snapshot).  In-flight
  /// batches keep their snapshot until release() — snapshot isolation
  /// per micro-batch.
  virtual std::uint64_t acquire() = 0;

  /// Samples one computation graph for `seeds` over the acquired
  /// snapshot: at the configured fanouts when non-empty (the sampler is
  /// reseeded with `stream_seed`, so a given batch composition yields
  /// the same blocks on any worker), full-neighborhood (exact)
  /// otherwise.
  virtual MiniBatch sample(const std::vector<VertexId>& seeds,
                           std::uint64_t stream_seed) = 0;

  /// Gathers the batch's input features into `out` at the backend's
  /// wire precision, through its cache when one is configured.
  /// Returns the cache traffic to account (nullopt when the backend
  /// has no cache in the path).  `hit_scratch` is worker-owned reusable
  /// hit-bitmap scratch.
  virtual std::optional<StaticFeatureCache::LoadStats> gather(
      const MiniBatch& batch, Tensor& out, std::vector<char>& hit_scratch) = 0;

  /// Drops the acquired snapshot handle.  Must be called (even on
  /// failure paths) before the next acquire().
  virtual void release() = 0;
};

/// A serving data plane: everything mode-specific the InferenceServer
/// needs, behind one interface.  Backends own the device caches they
/// build (attaching them to their graphs for invalidation/eviction and
/// detaching on destruction) and implement ExpiryTarget so one
/// ExpirySweeper paces TTL retirement over whichever graph is behind
/// the seam.  A backend serves one InferenceServer at a time and must
/// outlive it (the compat InferenceServer constructors own their
/// backend internally).
class ServingBackend : public ExpiryTarget {
 public:
  /// Mode label: "static", "streaming", or "sharded" — the `backend=`
  /// tag on journal events and the stable name dashboards key on.
  virtual const char* name() const = 0;

  virtual const Dataset& dataset() const = 0;

  /// Upper bound (exclusive) on queryable seed ids right now: vertices
  /// become queryable once a snapshot containing them is published /
  /// adopted (execute-time snapshots are monotonically newer, so
  /// admission at submit time stays valid at batch time).
  virtual VertexId query_limit() const = 0;

  /// One session per worker.  `sampler_seed` seeds the worker's sampler
  /// construction (per-batch reseeds override it); `num_layers` sizes
  /// the full-neighborhood fallback when the fanouts are empty.
  virtual std::unique_ptr<BackendSession> make_session(std::uint64_t sampler_seed,
                                                       int num_layers) = 0;

  /// True when a device cache sits in this backend's gather path (the
  /// traffic re-rank cadence is meaningless without one).
  virtual bool has_cache() const { return false; }
  /// The flat device cache (static/streaming modes; null in sharded
  /// mode or when disabled).
  virtual const StaticFeatureCache* cache() const { return nullptr; }
  /// Shard `s`'s device cache (sharded mode with a cache configured;
  /// null otherwise).
  virtual const StaticFeatureCache* shard_cache(int /*s*/) const { return nullptr; }

  /// Traffic-cadence hook: recompute the hot set of every cache in the
  /// gather path from observed access counters.
  virtual void rerank() = 0;

  /// Registers this backend's cache.* callback gauges on `registry`
  /// (owner = the backend; detached when the backend dies).  Re-binding
  /// to the same registry is a no-op; `registry` must outlive the
  /// backend once bound.
  virtual void bind_metrics(MetricsRegistry& registry) = 0;

  // ExpiryTarget: defaults for backends with nothing to expire (the
  // static dataset doesn't age).  Streaming/sharded backends forward to
  // their graph so session facades hang ONE sweeper off the seam.
  std::int64_t sweep_expired(Seconds /*ttl*/, std::int64_t /*max_retire*/,
                             EdgeId /*pending_op_budget*/) override {
    return 0;
  }
  Telemetry* telemetry() const override { return nullptr; }
  const char* expiry_scope() const override { return name(); }
};

}  // namespace hyscale
