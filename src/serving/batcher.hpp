// Request queue + dynamic micro-batcher for online inference.
//
// Callers submit seed-vertex requests; InferenceWorkers pull coalesced
// micro-batches.  The batching policy is the classic serving trade-off:
// wait for more requests (bigger batches amortise sampling/gather/GEMM
// fixed costs) versus dispatch now (bound tail latency).  A micro-batch
// closes when EITHER
//   * it holds `max_batch_requests` requests,
//   * its seed total reaches `max_batch_seeds`, or
//   * the OLDEST queued request has waited `max_wait` seconds
// — whichever comes first.  The queue itself is bounded: submit() fails
// fast when `queue_capacity` requests are pending, giving callers
// backpressure instead of unbounded latency collapse under overload.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "common/timer.hpp"
#include "graph/csr.hpp"
#include "obs/telemetry.hpp"
#include "tensor/tensor.hpp"

namespace hyscale {

/// What a caller gets back for one request.
struct InferenceResult {
  Tensor logits;                 ///< [request seeds, num_classes]
  std::vector<int> predictions;  ///< argmax class per seed
  Seconds latency = 0.0;         ///< enqueue -> result ready
  Seconds queue_wait = 0.0;      ///< enqueue -> worker pickup share of latency
  std::uint64_t request_id = 0;  ///< id assigned at submit; keys trace lookup
  std::uint64_t batch_id = 0;    ///< micro-batch that served this request
  std::int64_t batch_requests = 0;  ///< requests coalesced into that batch
  std::int64_t batch_seeds = 0;     ///< seeds across the batch
};

/// A queued unit of work.  Movable only (owns the result promise).
struct InferenceRequest {
  std::uint64_t id = 0;
  std::vector<VertexId> seeds;
  std::chrono::steady_clock::time_point enqueue_time;
  std::promise<InferenceResult> promise;
};

struct BatchPolicy {
  std::int64_t max_batch_requests = 16;
  std::int64_t max_batch_seeds = 512;
  Seconds max_wait = 2e-3;          ///< deadline from the oldest request's enqueue
  std::size_t queue_capacity = 1024;  ///< pending requests before rejection
};

class DynamicBatcher {
 public:
  explicit DynamicBatcher(BatchPolicy policy);

  /// Enqueues a request; returns false (request untouched apart from the
  /// move) when the queue is at capacity or the batcher is shut down.
  bool submit(InferenceRequest&& request);

  /// Blocks until a micro-batch is ready under the policy; fills `out`
  /// (cleared first) and returns true.  Returns false only after
  /// shutdown() AND the queue has drained, so no accepted request is
  /// ever dropped.
  bool next_batch(std::vector<InferenceRequest>& out);

  /// Wakes all waiting workers; queued requests are still handed out.
  void shutdown();

  /// Publishes queue depth (live + peak) into `telemetry`'s registry on
  /// every submit/dispatch.  nullptr unbinds; the Telemetry must
  /// outlive the batcher.
  void bind(Telemetry* telemetry);

  std::size_t depth() const;
  const BatchPolicy& policy() const { return policy_; }

 private:
  void publish_depth_locked();

  BatchPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<InferenceRequest> queue_;
  std::int64_t queued_seeds_ = 0;  ///< running sum over queue_ (O(1) dispatch check)
  bool stopped_ = false;
  Gauge* m_depth_ = nullptr;       ///< serving.queue_depth
  Gauge* m_depth_peak_ = nullptr;  ///< serving.queue_depth_peak (high-water)
};

}  // namespace hyscale
