// Sharded serving backend: a ShardedStreamingGraph facade behind the seam.
//
// acquire() pins the facade's latest ADOPTED cross-shard cut — one
// frozen version vector, so a query never mixes a pre-publish shard
// with a post-publish one — sampling goes through a ShardedSampler
// over that cut (sample_full_sharded when the fanouts are empty), and
// gathers route through the home shard of the batch's first seed with
// still-dirty halo rows patched from their owners.  The backend owns
// one device cache per shard (ranked by the shard's own filtered
// degrees, attached to that shard for invalidation/eviction, detached
// when the backend dies); the cache.* gauges it registers aggregate
// across shards.  ExpiryTarget forwards to the facade's facade-wide
// sweep (broadcast retirement keeps the shards' vertex spaces in
// lockstep), closing the sharded-TTL gap: one ExpirySweeper over this
// backend paces expiry for the whole deployment.
#pragma once

#include <memory>

#include "serving/backend.hpp"

namespace hyscale {

class ShardedStreamingGraph;

/// `sharded` (and its dataset) must outlive the backend.  Sets every
/// shard store's wire precision to config.transfer_precision.
std::unique_ptr<ServingBackend> make_sharded_backend(ShardedStreamingGraph& sharded,
                                                     const ServingConfig& config);

}  // namespace hyscale
