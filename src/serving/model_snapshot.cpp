#include "serving/model_snapshot.hpp"

#include "nn/checkpoint.hpp"

namespace hyscale {

ModelSnapshot::ModelSnapshot(const GnnModel& model)
    : config_(model.config()), master_(std::make_unique<GnnModel>(config_)) {
  master_->copy_values_from(model);
}

ModelSnapshot::ModelSnapshot(const ModelConfig& config, const std::string& checkpoint_path)
    : config_(config), master_(std::make_unique<GnnModel>(config_)) {
  load_checkpoint(*master_, checkpoint_path);
}

std::unique_ptr<GnnModel> ModelSnapshot::instantiate() const {
  auto replica = std::make_unique<GnnModel>(config_);
  replica->copy_values_from(*master_);
  return replica;
}

}  // namespace hyscale
