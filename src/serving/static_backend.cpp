#include "serving/static_backend.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/feature_loader.hpp"
#include "sampling/neighbor_sampler.hpp"

namespace hyscale {

namespace {

class StaticBackend;

class StaticBackendSession final : public BackendSession {
 public:
  StaticBackendSession(const Dataset& dataset, StaticFeatureCache* cache,
                       const std::vector<int>& fanouts, std::uint64_t sampler_seed,
                       int num_layers)
      : dataset_(dataset), cache_(cache), num_layers_(num_layers) {
    if (!fanouts.empty()) {
      sampler_ = std::make_unique<NeighborSampler>(dataset.graph, fanouts, sampler_seed);
    }
    if (cache_ == nullptr) {
      loader_ = std::make_unique<FeatureLoader>(dataset.features);
    }
  }

  std::uint64_t acquire() override { return 0; }  // the dataset never changes

  MiniBatch sample(const std::vector<VertexId>& seeds, std::uint64_t stream_seed) override {
    if (sampler_) {
      sampler_->reseed(stream_seed);
      return sampler_->sample(seeds);
    }
    return sample_full(dataset_.graph, seeds, num_layers_);
  }

  std::optional<StaticFeatureCache::LoadStats> gather(
      const MiniBatch& batch, Tensor& out, std::vector<char>& /*hit_scratch*/) override {
    if (cache_ != nullptr) return cache_->load(batch, out);
    loader_->load(batch, out);
    return std::nullopt;
  }

  void release() override {}

 private:
  const Dataset& dataset_;
  StaticFeatureCache* cache_;
  std::unique_ptr<NeighborSampler> sampler_;  ///< null in full-neighborhood mode
  std::unique_ptr<FeatureLoader> loader_;     ///< fallback when no cache
  int num_layers_;
};

class StaticBackend final : public ServingBackend {
 public:
  StaticBackend(const Dataset& dataset, const ServingConfig& config)
      : dataset_(dataset), fanouts_(config.fanouts) {
    if (config.cache_capacity_rows > 0) {
      cache_ = std::make_unique<StaticFeatureCache>(dataset_.graph, dataset_.features,
                                                    config.cache_capacity_rows,
                                                    config.transfer_precision);
    } else if (config.transfer_precision != TransferPrecision::kFp32) {
      throw std::invalid_argument(
          "InferenceServer: static mode applies transfer_precision to the device cache; "
          "set cache_capacity_rows > 0 or use fp32");
    }
  }

  ~StaticBackend() override {
    if (registry_ != nullptr) registry_->detach(this);
  }

  const char* name() const override { return "static"; }
  const Dataset& dataset() const override { return dataset_; }
  VertexId query_limit() const override { return dataset_.graph.num_vertices(); }

  std::unique_ptr<BackendSession> make_session(std::uint64_t sampler_seed,
                                               int num_layers) override {
    return std::make_unique<StaticBackendSession>(dataset_, cache_.get(), fanouts_,
                                                  sampler_seed, num_layers);
  }

  bool has_cache() const override { return cache_ != nullptr; }
  const StaticFeatureCache* cache() const override { return cache_.get(); }

  void rerank() override {
    if (!cache_ || cache_->capacity() == 0) return;
    // Static mode has no dead vertices, so the candidate pool is simply
    // every trackable row; the ranking matches StreamingGraph's
    // fold-time re-rank (traffic first, dataset degree breaks ties, id
    // stabilises).
    const auto limit =
        std::min<VertexId>(static_cast<VertexId>(cache_->trackable_rows()),
                           dataset_.graph.num_vertices());
    if (limit <= 0) return;
    std::vector<VertexId> candidates(static_cast<std::size_t>(limit));
    std::iota(candidates.begin(), candidates.end(), VertexId{0});
    const auto hotter = [this](VertexId a, VertexId b) {
      const std::uint64_t ca = cache_->access_count(a);
      const std::uint64_t cb = cache_->access_count(b);
      if (ca != cb) return ca > cb;
      const EdgeId da = dataset_.graph.degree(a);
      const EdgeId db = dataset_.graph.degree(b);
      if (da != db) return da > db;
      return a < b;
    };
    const auto top = std::min<std::size_t>(candidates.size(),
                                           static_cast<std::size_t>(cache_->capacity()));
    std::partial_sort(candidates.begin(),
                      candidates.begin() + static_cast<std::ptrdiff_t>(top),
                      candidates.end(), hotter);
    candidates.resize(top);
    cache_->rerank(candidates);
  }

  void bind_metrics(MetricsRegistry& registry) override {
    if (!cache_ || registry_ == &registry) return;
    if (registry_ != nullptr) registry_->detach(this);
    registry_ = &registry;
    // Pulled at snapshot time; frozen by detach() in the destructor
    // before the cache dies.
    const StaticFeatureCache* cache = cache_.get();
    registry.register_callback("cache.invalidations", this, [cache] {
      return static_cast<double>(cache->invalidations());
    });
    registry.register_callback("cache.evictions", this,
                               [cache] { return static_cast<double>(cache->evictions()); });
    registry.register_callback("cache.reranks", this,
                               [cache] { return static_cast<double>(cache->reranks()); });
    registry.register_callback("cache.readmitted_rows", this, [cache] {
      return static_cast<double>(cache->readmitted_rows());
    });
    registry.register_callback("cache.rerank_evicted_rows", this, [cache] {
      return static_cast<double>(cache->rerank_evicted_rows());
    });
  }

 private:
  const Dataset& dataset_;
  std::vector<int> fanouts_;
  std::unique_ptr<StaticFeatureCache> cache_;
  MetricsRegistry* registry_ = nullptr;
};

}  // namespace

std::unique_ptr<ServingBackend> make_static_backend(const Dataset& dataset,
                                                    const ServingConfig& config) {
  return std::make_unique<StaticBackend>(dataset, config);
}

}  // namespace hyscale
