// Immutable, shareable copy of a trained GnnModel for serving.
//
// GnnModel::forward caches per-layer activations internally, so a model
// instance is NOT safe for concurrent forward passes.  A ModelSnapshot
// freezes the parameter values once — from a live model (e.g. a
// HybridTrainer's replica 0) or from a checkpoint file — and stamps out
// per-worker replicas via instantiate().  Replicas are bit-identical to
// the source, so served logits match a direct forward of the original
// model for the same mini-batch.
#pragma once

#include <memory>
#include <string>

#include "nn/model.hpp"

namespace hyscale {

class ModelSnapshot {
 public:
  /// Deep-copies the parameter values of a live model.
  explicit ModelSnapshot(const GnnModel& model);

  /// Loads `checkpoint_path` (written by save_checkpoint) into a model
  /// of the given architecture; throws std::runtime_error on missing or
  /// mismatched files.
  ModelSnapshot(const ModelConfig& config, const std::string& checkpoint_path);

  /// Fresh replica carrying the snapshot's weights; callers own it and
  /// may run forward on it from exactly one thread at a time.
  std::unique_ptr<GnnModel> instantiate() const;

  const ModelConfig& config() const { return config_; }
  int num_layers() const { return config_.num_layers(); }
  int num_classes() const { return config_.dims.back(); }
  std::int64_t num_parameters() const { return master_->num_parameters(); }

 private:
  ModelConfig config_;
  std::unique_ptr<GnnModel> master_;  ///< never mutated after construction
};

}  // namespace hyscale
