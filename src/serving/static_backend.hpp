// Static serving backend: the immutable dataset CSR behind the seam.
//
// The snapshot is the dataset itself, so acquire() is free and the
// freshness id is always 0.  Sampling goes through NeighborSampler (or
// sample_full when the fanouts are empty); gathers go through one
// PaGraph-style StaticFeatureCache when configured — which is also
// where transfer_precision applies, hence the construction-time
// rejection of a non-fp32 precision with no cache — and a plain
// FeatureLoader otherwise.  The traffic-cadence re-rank recomputes the
// cache's hot set with the same traffic-first/degree-tiebreak ranking
// StreamingGraph uses at fold time.
#pragma once

#include <memory>

#include "serving/backend.hpp"

namespace hyscale {

/// `dataset` must outlive the backend.  Copies what it needs from
/// `config` (fanouts, cache sizing, precision); throws
/// std::invalid_argument when transfer_precision != kFp32 without a
/// cache to apply it to.
std::unique_ptr<ServingBackend> make_static_backend(const Dataset& dataset,
                                                    const ServingConfig& config);

}  // namespace hyscale
