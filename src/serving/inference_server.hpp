// In-process multi-threaded GNN inference server.
//
// Pipeline per micro-batch (one InferenceWorker, end to end):
//   coalesce requests -> neighbor sampling at inference fanouts ->
//   feature gather (StaticFeatureCache when configured, plain
//   FeatureLoader otherwise) -> forward pass on a worker-local
//   ModelSnapshot replica -> scatter logits back to the requests.
//
// Streaming mode (construct over a StreamingGraph): every micro-batch
// grabs the graph's latest published GraphVersion and samples the live
// adjacency (base CSR minus tombstones plus delta insertions) through
// an OverlaySampler, so queries see insertions AND retractions as soon
// as they are published — while in-flight batches keep their version
// until done (snapshot isolation per micro-batch).  Deleted vertices
// stay addressable: a query for a dead id serves the isolated,
// zero-feature entity of the batch's version rather than erroring, so
// racing a retraction is benign.  Gathers go through
// StreamingGraph::gather (cache device rows + live feature store); the
// cache is attached for update_feature invalidation / remove_vertex
// eviction and detached on server destruction.
//
// Workers run as long-lived tasks on a dedicated ThreadPool
// (common/thread_pool.hpp).  The pool is deliberately NOT
// ThreadPool::global(): the forward pass's GEMM and the row gather
// parallelise over the global pool internally, and long-running loops
// parked there would starve those inner parallel_for calls.
//
// Determinism: with empty fanouts the exact (full-neighborhood)
// computation graph is used, so results are reproducible by
// construction.  With sampled fanouts, the sampler is reseeded per
// micro-batch from (config.seed, batch seed ids), so a given batch
// composition always yields the same logits regardless of which worker
// runs it or how many are configured.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/thread_pool.hpp"
#include "graph/datasets.hpp"
#include "runtime/feature_cache.hpp"
#include "runtime/feature_loader.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "serving/batcher.hpp"
#include "serving/model_snapshot.hpp"
#include "serving/serving_stats.hpp"

namespace hyscale {

class StreamingGraph;
class OverlaySampler;
class ShardedStreamingGraph;
class ShardedSampler;

struct ServingConfig {
  /// Inference fanouts, input layer first (like HybridTrainerConfig).
  /// EMPTY means full-neighborhood inference — exact logits, higher
  /// cost; the equivalence tests rely on it.
  std::vector<int> fanouts;
  int num_workers = 2;
  BatchPolicy batch;
  /// Rows pinned by the PaGraph-style static cache; 0 disables it and
  /// gathers go through a per-worker FeatureLoader.
  std::int64_t cache_capacity_rows = 0;
  /// Feature transfer precision for the gather hot path: device cache
  /// rows are stored (and streaming host fetches are wire-simulated) at
  /// this precision.  kInt8 moves ~4x fewer bytes per row at the
  /// documented per-row quantization error; kFp16 is rejected at
  /// construction.  Default kFp32 (lossless).
  TransferPrecision transfer_precision = TransferPrecision::kFp32;
  std::uint64_t seed = 1;
  /// Traffic-triggered cache re-rank cadence, in gathered input rows
  /// summed across all workers: every N rows the serving tier recomputes
  /// the attached cache's hot set from its observed access counters
  /// (streaming: StreamingGraph::rerank_now; sharded: every shard's
  /// cache; static: the same traffic-first/degree-tiebreak ranking over
  /// the dataset graph).  Decouples admission-drift correction from
  /// compaction folds — a serving-heavy session whose quiet ingest never
  /// triggers a fold still re-ranks.  0 (default) leaves re-ranking to
  /// the fold-time path alone.
  std::int64_t cache_rerank_every_rows = 0;
  /// Telemetry plane (obs/) to report through: serving.* instruments,
  /// request/batch stage spans.  Null = telemetry off (default); must
  /// outlive the server when set.
  Telemetry* telemetry = nullptr;
};

class InferenceServer {
 public:
  /// `dataset` must outlive the server; the snapshot is consumed at
  /// construction (per-worker replicas are stamped out immediately).
  InferenceServer(const Dataset& dataset, const ModelSnapshot& snapshot,
                  ServingConfig config = {});

  /// Streaming mode: serve over `stream`'s latest published version.
  /// `stream` (and its dataset) must outlive the server.  When a cache
  /// is configured it is built over the streaming feature store's base
  /// matrix and attached to the graph for invalidation on feature
  /// updates.
  InferenceServer(StreamingGraph& stream, const ModelSnapshot& snapshot,
                  ServingConfig config = {});

  /// Sharded mode: serve over `sharded`'s latest ADOPTED cut.  Every
  /// micro-batch samples one frozen cross-shard version vector through
  /// a ShardedSampler and gathers through the facade's halo plane,
  /// routed via the home shard of the batch's first seed.  When a cache
  /// is configured, one per-shard StaticFeatureCache is built over each
  /// shard's store base and attached for invalidation/eviction.
  /// `sharded` (and its dataset) must outlive the server.
  InferenceServer(ShardedStreamingGraph& sharded, const ModelSnapshot& snapshot,
                  ServingConfig config = {});
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Non-blocking submit.  Returns std::nullopt when the bounded queue
  /// is full (backpressure — recorded in stats).  Throws
  /// std::invalid_argument for empty seed lists or out-of-range ids.
  std::optional<std::future<InferenceResult>> try_submit(std::vector<VertexId> seeds);

  /// Blocking convenience: retries submission under backpressure, then
  /// waits for the result.
  InferenceResult infer(std::vector<VertexId> seeds);

  ServingSnapshot stats() const { return stats_.snapshot(); }
  const StaticFeatureCache* cache() const { return cache_.get(); }
  /// Shard `s`'s device cache (sharded mode with a cache configured;
  /// null otherwise).
  const StaticFeatureCache* shard_cache(int s) const {
    return static_cast<std::size_t>(s) < shard_caches_.size()
               ? shard_caches_[static_cast<std::size_t>(s)].get()
               : nullptr;
  }
  const ServingConfig& config() const { return config_; }
  int num_classes() const { return num_classes_; }
  bool streaming() const { return stream_ != nullptr; }
  bool sharded() const { return sharded_ != nullptr; }
  /// Traffic-triggered cache re-ranks this server has issued
  /// (cache_rerank_every_rows crossings; 0 when the cadence is off).
  std::int64_t traffic_reranks() const {
    return traffic_reranks_.load(std::memory_order_relaxed);
  }
  /// Id of the newest GraphVersion any micro-batch has sampled (0 in
  /// static mode or before the first streaming batch) — how the SLO
  /// publisher's freshness actually reaches queries.
  std::uint64_t last_served_version() const {
    return last_served_version_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-worker state: everything GnnModel::forward / sampling mutates.
  struct Worker {
    std::unique_ptr<GnnModel> model;
    std::unique_ptr<NeighborSampler> sampler;  ///< null in full-neighborhood mode
    std::unique_ptr<OverlaySampler> overlay;   ///< streaming mode, sampled fanouts
    std::unique_ptr<ShardedSampler> sharded;   ///< sharded mode, sampled fanouts
    std::unique_ptr<FeatureLoader> loader;     ///< fallback when no cache
    Heartbeat* heart = nullptr;                ///< liveness stamp when telemetry on
    // Reusable batch scratch: coalesced seed ids, the gathered feature
    // block, and the gather hit bitmap live across batches so the hot
    // path stops paying a fresh allocation per micro-batch (the fused
    // sample->gather path consumes mb.input_nodes() in place).
    std::vector<VertexId> combined;
    Tensor x;
    std::vector<char> hit_scratch;
  };

  void init_workers(const ModelSnapshot& snapshot);
  void bind_telemetry();
  void worker_loop(Worker& worker);
  void execute_batch(Worker& worker, std::vector<InferenceRequest>& batch);
  /// Folds `gathered_rows` into the traffic-rerank cadence and issues a
  /// re-rank when a cache_rerank_every_rows boundary is crossed (one
  /// trigger per crossing, CAS-claimed so concurrent workers never
  /// stampede).
  void maybe_rerank(std::int64_t gathered_rows);
  /// Static-mode re-rank: same traffic-first/degree-tiebreak ranking as
  /// StreamingGraph::rerank_cache, over the (immutable) dataset graph.
  void rerank_static_cache();

  const Dataset& dataset_;
  StreamingGraph* stream_ = nullptr;          ///< null unless streaming mode
  ShardedStreamingGraph* sharded_ = nullptr;  ///< null unless sharded mode
  ServingConfig config_;
  int num_classes_ = 0;
  int num_layers_ = 0;

  DynamicBatcher batcher_;
  ServingStats stats_;
  std::unique_ptr<StaticFeatureCache> cache_;
  /// Sharded mode: one device cache per shard (attached to that shard's
  /// StreamingGraph for invalidation/eviction); cache_ stays null.
  std::vector<std::unique_ptr<StaticFeatureCache>> shard_caches_;
  std::vector<Worker> workers_;
  std::unique_ptr<ThreadPool> pool_;  ///< dedicated; keep last so it joins first
  std::atomic<std::uint64_t> next_request_id_{0};
  std::atomic<std::uint64_t> next_batch_id_{0};
  std::atomic<std::uint64_t> last_served_version_{0};
  std::atomic<std::int64_t> rerank_rows_{0};      ///< gathered rows, all workers
  std::atomic<std::int64_t> rerank_due_{0};       ///< next cadence boundary
  std::atomic<std::int64_t> traffic_reranks_{0};  ///< cadence triggers issued

  StageTracer* tracer_ = nullptr;        ///< from config_.telemetry, may be null
  ExemplarRing* exemplars_ = nullptr;    ///< tail-trace ring, null when off
  Gauge* m_served_version_ = nullptr;    ///< serving.last_served_version
};

}  // namespace hyscale
