// In-process multi-threaded GNN inference server.
//
// Pipeline per micro-batch (one InferenceWorker, end to end):
//   coalesce requests -> acquire the backend's consistent snapshot ->
//   neighbor sampling at inference fanouts -> feature gather at wire
//   precision through the backend's cache -> forward pass on a
//   worker-local ModelSnapshot replica -> scatter logits back to the
//   requests -> release the snapshot.
//
// The server is MODE-BLIND: every mode-specific step above lives
// behind ServingBackend (serving/backend.hpp).  The compat
// constructors build the matching backend internally — static over the
// dataset CSR, streaming over a StreamingGraph's latest published
// version, sharded over a ShardedStreamingGraph's latest adopted cut —
// and the seam constructor serves over any ServingBackend you hand it.
// Each worker holds ONE BackendSession; snapshot isolation per
// micro-batch (in-flight batches keep their version/cut until done) is
// the session's acquire/release contract.
//
// Live model hot-swap: swap_model() stages a new ModelSnapshot under an
// atomic model epoch; workers notice the epoch at the NEXT batch
// boundary and re-instantiate their replica, so a batch in flight
// finishes entirely on the weights it started with (no torn batches)
// and the very next batch that worker picks up serves the new epoch.
//
// Workers run as long-lived tasks on a dedicated ThreadPool
// (common/thread_pool.hpp).  The pool is deliberately NOT
// ThreadPool::global(): the forward pass's GEMM and the row gather
// parallelise over the global pool internally, and long-running loops
// parked there would starve those inner parallel_for calls.
//
// Determinism: with empty fanouts the exact (full-neighborhood)
// computation graph is used, so results are reproducible by
// construction.  With sampled fanouts, the sampler is reseeded per
// micro-batch from (config.seed, batch seed ids), so a given batch
// composition always yields the same logits regardless of which worker
// runs it or how many are configured.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/thread_pool.hpp"
#include "graph/datasets.hpp"
#include "serving/backend.hpp"
#include "serving/batcher.hpp"
#include "serving/model_snapshot.hpp"
#include "serving/serving_stats.hpp"

namespace hyscale {

class StreamingGraph;
class ShardedStreamingGraph;

class InferenceServer {
 public:
  /// Static mode over `dataset` (must outlive the server); the snapshot
  /// is consumed at construction (per-worker replicas are stamped out
  /// immediately).
  InferenceServer(const Dataset& dataset, const ModelSnapshot& snapshot,
                  ServingConfig config = {});

  /// Streaming mode: serve over `stream`'s latest published version.
  /// `stream` (and its dataset) must outlive the server.
  InferenceServer(StreamingGraph& stream, const ModelSnapshot& snapshot,
                  ServingConfig config = {});

  /// Sharded mode: serve over `sharded`'s latest ADOPTED cut.
  /// `sharded` (and its dataset) must outlive the server.
  InferenceServer(ShardedStreamingGraph& sharded, const ModelSnapshot& snapshot,
                  ServingConfig config = {});

  /// The seam: serve over any ServingBackend.  `backend` must outlive
  /// the server and serve only this server; its cache.* gauges are
  /// bound to config.telemetry's registry (if set) and stay registered
  /// until the BACKEND dies.
  InferenceServer(ServingBackend& backend, const ModelSnapshot& snapshot,
                  ServingConfig config = {});
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Non-blocking submit.  Returns std::nullopt when the bounded queue
  /// is full (backpressure — recorded in stats).  Throws
  /// std::invalid_argument for empty seed lists or out-of-range ids.
  std::optional<std::future<InferenceResult>> try_submit(std::vector<VertexId> seeds);

  /// Blocking convenience: retries submission under backpressure, then
  /// waits for the result.
  InferenceResult infer(std::vector<VertexId> seeds);

  /// Live hot-swap: stages `snapshot` as the new serving weights and
  /// bumps the model epoch.  Safe under concurrent traffic — workers
  /// adopt the new weights at their next batch boundary; a batch in
  /// flight completes entirely on its old replica.  Returns the new
  /// epoch (journaled as a model_swap event and exported as the
  /// model.epoch gauge when telemetry is on).  Throws
  /// std::invalid_argument when the architecture (layer/class counts)
  /// does not match the serving model's.
  std::uint64_t swap_model(const ModelSnapshot& snapshot);
  /// Current model epoch (1 = the construction snapshot).
  std::uint64_t model_epoch() const { return model_epoch_.load(std::memory_order_acquire); }

  ServingSnapshot stats() const { return stats_.snapshot(); }
  const StaticFeatureCache* cache() const { return backend_->cache(); }
  /// Shard `s`'s device cache (sharded mode with a cache configured;
  /// null otherwise).
  const StaticFeatureCache* shard_cache(int s) const { return backend_->shard_cache(s); }
  const ServingConfig& config() const { return config_; }
  int num_classes() const { return num_classes_; }
  const ServingBackend& backend() const { return *backend_; }
  bool streaming() const;
  bool sharded() const;
  /// Traffic-triggered cache re-ranks this server has issued
  /// (cache_rerank_every_rows crossings; 0 when the cadence is off).
  std::int64_t traffic_reranks() const {
    return traffic_reranks_.load(std::memory_order_relaxed);
  }
  /// Id of the newest snapshot (GraphVersion / ShardedCut) any
  /// micro-batch has sampled (0 in static mode or before the first
  /// streaming batch) — how the SLO publisher's freshness actually
  /// reaches queries.
  std::uint64_t last_served_version() const {
    return last_served_version_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-worker state: everything GnnModel::forward / sampling mutates.
  struct Worker {
    std::unique_ptr<GnnModel> model;
    std::uint64_t model_epoch = 1;  ///< epoch `model` was instantiated at
    std::unique_ptr<BackendSession> session;
    Heartbeat* heart = nullptr;  ///< liveness stamp when telemetry on
    // Reusable batch scratch: coalesced seed ids, the gathered feature
    // block, and the gather hit bitmap live across batches so the hot
    // path stops paying a fresh allocation per micro-batch (the fused
    // sample->gather path consumes mb.input_nodes() in place).
    std::vector<VertexId> combined;
    Tensor x;
    std::vector<char> hit_scratch;
  };

  using BackendFactory = std::function<std::unique_ptr<ServingBackend>(const ServingConfig&)>;
  /// Common construction: `factory` (compat modes) builds the owned
  /// backend from the final config; null factory = borrowed `backend`.
  InferenceServer(const BackendFactory& factory, ServingBackend* backend,
                  const ModelSnapshot& snapshot, ServingConfig config);

  void init_workers(const ModelSnapshot& snapshot);
  void bind_telemetry();
  void worker_loop(Worker& worker);
  void execute_batch(Worker& worker, std::vector<InferenceRequest>& batch);
  /// Batch-boundary hot-swap pickup: re-instantiates the worker's model
  /// replica when the server's epoch moved past the worker's.
  void refresh_worker_model(Worker& worker);
  /// Folds `gathered_rows` into the traffic-rerank cadence and issues a
  /// re-rank when a cache_rerank_every_rows boundary is crossed (one
  /// trigger per crossing, CAS-claimed so concurrent workers never
  /// stampede).
  void maybe_rerank(std::int64_t gathered_rows);

  ServingConfig config_;
  int num_classes_ = 0;
  int num_layers_ = 0;
  std::unique_ptr<ServingBackend> owned_backend_;  ///< compat ctors only
  ServingBackend* backend_ = nullptr;              ///< never null after construction

  DynamicBatcher batcher_;
  ServingStats stats_;
  std::vector<Worker> workers_;
  std::unique_ptr<ThreadPool> pool_;  ///< dedicated; keep after workers_ so it joins first
  std::atomic<std::uint64_t> next_request_id_{0};
  std::atomic<std::uint64_t> next_batch_id_{0};
  std::atomic<std::uint64_t> last_served_version_{0};
  std::atomic<std::int64_t> rerank_rows_{0};      ///< gathered rows, all workers
  std::atomic<std::int64_t> rerank_due_{0};       ///< next cadence boundary
  std::atomic<std::int64_t> traffic_reranks_{0};  ///< cadence triggers issued

  // Hot-swap plane: the staged snapshot is guarded by model_mutex_; the
  // epoch is the lock-free "did anything change" fast path workers read
  // once per batch.
  std::mutex model_mutex_;
  std::shared_ptr<const ModelSnapshot> staged_model_;  ///< guarded by model_mutex_
  std::atomic<std::uint64_t> model_epoch_{1};

  StageTracer* tracer_ = nullptr;      ///< from config_.telemetry, may be null
  ExemplarRing* exemplars_ = nullptr;  ///< tail-trace ring, null when off
  Gauge* m_served_version_ = nullptr;  ///< serving.last_served_version
  Gauge* m_model_epoch_ = nullptr;     ///< model.epoch
};

}  // namespace hyscale
