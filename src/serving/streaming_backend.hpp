// Streaming serving backend: an evolving StreamingGraph behind the seam.
//
// acquire() pins the graph's latest PUBLISHED GraphVersion for the
// whole micro-batch (snapshot isolation: in-flight batches keep their
// version until release), sampling goes through an OverlaySampler over
// that version (sample_full_overlay when the fanouts are empty), and
// gathers go through StreamingGraph::gather — device cache rows plus
// live feature store at wire precision.  The backend owns the device
// cache: built over the store's base matrix, attached to the graph for
// update_feature invalidation / remove_vertex eviction, detached when
// the backend dies.  ExpiryTarget forwards to the graph, so a session
// facade hangs its TTL ExpirySweeper directly off this backend.
#pragma once

#include <memory>

#include "serving/backend.hpp"

namespace hyscale {

class StreamingGraph;

/// `stream` (and its dataset) must outlive the backend.  Sets the
/// feature store's wire precision to config.transfer_precision so a
/// row gathers to the same values whether it hits or misses the cache.
std::unique_ptr<ServingBackend> make_streaming_backend(StreamingGraph& stream,
                                                       const ServingConfig& config);

}  // namespace hyscale
