#include "serving/streaming_backend.hpp"

#include <span>

#include "obs/metrics.hpp"
#include "stream/overlay_sampler.hpp"
#include "stream/streaming_graph.hpp"

namespace hyscale {

namespace {

class StreamingBackendSession final : public BackendSession {
 public:
  StreamingBackendSession(StreamingGraph& stream, bool cached,
                          const std::vector<int>& fanouts, std::uint64_t sampler_seed,
                          int num_layers)
      : stream_(stream), cached_(cached), num_layers_(num_layers) {
    if (!fanouts.empty()) {
      sampler_ = std::make_unique<OverlaySampler>(stream.current(), fanouts, sampler_seed);
    }
  }

  std::uint64_t acquire() override {
    // Latest published version for the whole micro-batch: consistent
    // view per batch, freshest data per pickup.
    version_ = stream_.current();
    return version_->id();
  }

  MiniBatch sample(const std::vector<VertexId>& seeds, std::uint64_t stream_seed) override {
    if (sampler_) {
      sampler_->set_version(version_);
      sampler_->reseed(stream_seed);
      return sampler_->sample(seeds);
    }
    return sample_full_overlay(*version_, seeds, num_layers_);
  }

  std::optional<StaticFeatureCache::LoadStats> gather(
      const MiniBatch& batch, Tensor& out, std::vector<char>& hit_scratch) override {
    // Fused sample->gather: the minibatch's input-node span feeds the
    // gather directly and lands in the worker's reusable tensor — no
    // temporary id or feature buffers between the stages.
    const auto& nodes = batch.input_nodes();
    const auto stats = stream_.gather(std::span<const VertexId>(nodes.data(), nodes.size()),
                                      out, hit_scratch);
    if (cached_) return stats;
    return std::nullopt;
  }

  void release() override { version_.reset(); }

 private:
  StreamingGraph& stream_;
  bool cached_;
  std::unique_ptr<OverlaySampler> sampler_;  ///< null in full-neighborhood mode
  std::shared_ptr<const GraphVersion> version_;  ///< held acquire -> release
  int num_layers_;
};

class StreamingBackend final : public ServingBackend {
 public:
  StreamingBackend(StreamingGraph& stream, const ServingConfig& config)
      : stream_(stream), fanouts_(config.fanouts) {
    if (config.cache_capacity_rows > 0) {
      // Built over the streaming feature store's base matrix (stable
      // address) and attached so update_feature refreshes device rows.
      cache_ = std::make_unique<StaticFeatureCache>(
          stream.dataset().graph, stream.features().base(), config.cache_capacity_rows,
          config.transfer_precision);
      stream.attach_cache(cache_.get());
    }
    // Host-side wire simulation matches the cache precision, so a row
    // gathers to the same values whether it hits or misses.
    stream.features().set_transfer_precision(config.transfer_precision);
  }

  ~StreamingBackend() override {
    if (cache_) stream_.attach_cache(nullptr);
    if (registry_ != nullptr) registry_->detach(this);
  }

  const char* name() const override { return "streaming"; }
  const Dataset& dataset() const override { return stream_.dataset(); }
  VertexId query_limit() const override { return stream_.current()->num_vertices(); }

  std::unique_ptr<BackendSession> make_session(std::uint64_t sampler_seed,
                                               int num_layers) override {
    return std::make_unique<StreamingBackendSession>(stream_, cache_ != nullptr, fanouts_,
                                                     sampler_seed, num_layers);
  }

  bool has_cache() const override { return cache_ != nullptr; }
  const StaticFeatureCache* cache() const override { return cache_.get(); }

  void rerank() override { stream_.rerank_now(); }

  void bind_metrics(MetricsRegistry& registry) override {
    if (!cache_ || registry_ == &registry) return;
    if (registry_ != nullptr) registry_->detach(this);
    registry_ = &registry;
    const StaticFeatureCache* cache = cache_.get();
    registry.register_callback("cache.invalidations", this, [cache] {
      return static_cast<double>(cache->invalidations());
    });
    registry.register_callback("cache.evictions", this,
                               [cache] { return static_cast<double>(cache->evictions()); });
    registry.register_callback("cache.reranks", this,
                               [cache] { return static_cast<double>(cache->reranks()); });
    registry.register_callback("cache.readmitted_rows", this, [cache] {
      return static_cast<double>(cache->readmitted_rows());
    });
    registry.register_callback("cache.rerank_evicted_rows", this, [cache] {
      return static_cast<double>(cache->rerank_evicted_rows());
    });
  }

  // ExpiryTarget: forward to the graph so one sweeper paces TTL expiry
  // through the seam (keeps the flat stack's "stream.*" instrument
  // names).
  std::int64_t sweep_expired(Seconds ttl, std::int64_t max_retire,
                             EdgeId pending_op_budget) override {
    return stream_.sweep_expired(ttl, max_retire, pending_op_budget);
  }
  Telemetry* telemetry() const override { return stream_.telemetry(); }
  const char* expiry_scope() const override { return stream_.expiry_scope(); }

 private:
  StreamingGraph& stream_;
  std::vector<int> fanouts_;
  std::unique_ptr<StaticFeatureCache> cache_;
  MetricsRegistry* registry_ = nullptr;
};

}  // namespace

std::unique_ptr<ServingBackend> make_streaming_backend(StreamingGraph& stream,
                                                       const ServingConfig& config) {
  return std::make_unique<StreamingBackend>(stream, config);
}

}  // namespace hyscale
