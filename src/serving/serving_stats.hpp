// Serving-side observability: request latency percentiles, throughput,
// micro-batch shape distribution, and feature-cache traffic.
//
// One ServingStats instance is shared by every InferenceWorker of a
// server, so all mutators are guarded; snapshot() returns a consistent
// copy with the derived quantities (p50/p95/p99, QPS, hit rate) already
// computed, which is what the CLI, the load generator and the serving
// bench all print.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "obs/telemetry.hpp"
#include "runtime/feature_cache.hpp"

namespace hyscale {

/// Point-in-time view of a server's counters with derived metrics.
struct ServingSnapshot {
  std::int64_t completed_requests = 0;
  std::int64_t rejected_requests = 0;  ///< backpressure: bounded queue was full
  std::int64_t completed_batches = 0;
  std::int64_t total_seeds = 0;

  Seconds uptime = 0.0;
  double qps = 0.0;               ///< completed requests / uptime
  double seeds_per_second = 0.0;

  Seconds latency_mean = 0.0;     ///< enqueue -> result, over ALL completions
  /// Percentiles over a bounded UNIFORM reservoir of all completions
  /// (Vitter's Algorithm R), so memory stays constant on long-lived
  /// servers while the estimate keeps covering the whole run instead of
  /// sliding to the most recent window.
  Seconds latency_p50 = 0.0;
  Seconds latency_p95 = 0.0;
  Seconds latency_p99 = 0.0;
  Seconds latency_max = 0.0;      ///< over all completions

  /// Queue wait (enqueue -> worker pickup) reported separately from
  /// compute (pickup -> result) so streaming-induced stalls — workers
  /// busy against a hot version, compaction pressure — are attributable
  /// to queuing rather than folded into one latency number.
  Seconds queue_wait_mean = 0.0;
  Seconds queue_wait_p50 = 0.0;
  Seconds queue_wait_p95 = 0.0;
  Seconds queue_wait_p99 = 0.0;
  Seconds queue_wait_max = 0.0;
  Seconds compute_mean = 0.0;     ///< latency_mean - queue_wait_mean, per request

  double mean_batch_requests = 0.0;  ///< requests coalesced per micro-batch
  double mean_batch_seeds = 0.0;
  std::int64_t min_batch_requests = 0;
  std::int64_t max_batch_requests = 0;

  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  double cache_hit_rate = 0.0;
  double device_bytes = 0.0;
  double host_bytes = 0.0;

  std::string to_string() const;
};

class ServingStats {
 public:
  /// `queue_wait` is the enqueue -> worker-pickup share of `latency`.
  void record_completion(Seconds latency, Seconds queue_wait = 0.0);
  void record_rejection();
  void record_batch(std::int64_t requests, std::int64_t seeds);
  void record_gather(const StaticFeatureCache::LoadStats& stats);

  /// Mirrors every subsequent record_* into `telemetry`'s registry
  /// (serving.* counters, latency/queue-wait histograms, batch-shape
  /// gauges), so the server is instrumented at exactly one choke point.
  /// Pass nullptr to unbind.  The Telemetry must outlive the stats.
  void bind(Telemetry* telemetry);

  ServingSnapshot snapshot() const;
  void reset();

  /// Latency/queue-wait samples retained for percentile estimates.
  /// Retention is a uniform bounded reservoir (Vitter's Algorithm R):
  /// once full, completion number n replaces a random slot with
  /// probability kLatencyWindow/n, so every completion of the run is
  /// equally likely to be in the sample — percentiles stay stable past
  /// the cap instead of tracking whichever window arrived last.  The
  /// latency and queue-wait reservoirs share one accept/slot draw so
  /// the two samples describe the same subset of requests.
  static constexpr std::size_t kLatencyWindow = 1 << 16;

 private:
  mutable std::mutex mutex_;
  Timer uptime_;
  std::vector<Seconds> latencies_;    ///< bounded to kLatencyWindow
  std::vector<Seconds> queue_waits_;  ///< paired with latencies_
  std::uint64_t reservoir_seen_ = 0;  ///< completions offered to the reservoir
  std::uint64_t reservoir_rng_ = 0x9e3779b97f4a7c15ULL;  ///< splitmix64 state
  std::int64_t completed_ = 0;
  Seconds latency_sum_ = 0.0;
  Seconds latency_max_ = 0.0;
  Seconds queue_wait_sum_ = 0.0;
  Seconds queue_wait_max_ = 0.0;
  std::int64_t rejected_ = 0;
  std::int64_t batches_ = 0;
  std::int64_t batch_requests_sum_ = 0;
  std::int64_t batch_seeds_sum_ = 0;
  std::int64_t min_batch_requests_ = 0;
  std::int64_t max_batch_requests_ = 0;
  StaticFeatureCache::LoadStats gather_;

  // Registry mirrors; null until bind().  Instrument operations are
  // atomic, so mirroring happens inside the record_* critical sections
  // without extra synchronization cost beyond the increments.
  Counter* m_completed_ = nullptr;
  Counter* m_rejected_ = nullptr;
  Counter* m_batches_ = nullptr;
  Counter* m_seeds_ = nullptr;
  Counter* m_batch_requests_ = nullptr;
  Counter* m_cache_hits_ = nullptr;
  Counter* m_cache_misses_ = nullptr;
  Gauge* m_device_bytes_ = nullptr;
  Gauge* m_host_bytes_ = nullptr;
  Gauge* m_min_batch_ = nullptr;
  Gauge* m_max_batch_ = nullptr;
  Histogram* m_latency_ = nullptr;
  Histogram* m_queue_wait_ = nullptr;
};

}  // namespace hyscale
