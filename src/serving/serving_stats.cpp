#include "serving/serving_stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "common/strutil.hpp"

namespace hyscale {

namespace {

/// Nearest-rank percentile over an already-sorted sample: the value at
/// rank ceil(q * n), where ranks are 1-BASED — so the rank converts to
/// a 0-based index by subtracting one.  Using the rank as an index
/// directly reads one sample too high (p50 over 4 samples would serve
/// the 3rd-smallest instead of the 2nd); the small-sample regression
/// tests in test_serving.cpp pin the conversion.
Seconds percentile(const std::vector<Seconds>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

void ServingStats::record_completion(Seconds latency, Seconds queue_wait) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++completed_;
  latency_sum_ += latency;
  latency_max_ = std::max(latency_max_, latency);
  queue_wait_sum_ += queue_wait;
  queue_wait_max_ = std::max(queue_wait_max_, queue_wait);
  // Algorithm R: keep the first kLatencyWindow samples, then replace a
  // uniformly drawn slot with probability window/seen.  One draw covers
  // both reservoirs so latency and queue wait stay paired per request.
  ++reservoir_seen_;
  if (latencies_.size() < kLatencyWindow) {
    latencies_.push_back(latency);
    queue_waits_.push_back(queue_wait);
  } else {
    const std::uint64_t j = splitmix64(reservoir_rng_) % reservoir_seen_;
    if (j < kLatencyWindow) {
      latencies_[j] = latency;
      queue_waits_[j] = queue_wait;
    }
  }
  if (m_completed_ != nullptr) {
    m_completed_->add(1);
    m_latency_->observe_seconds(latency);
    m_queue_wait_->observe_seconds(queue_wait);
  }
}

void ServingStats::record_rejection() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++rejected_;
  if (m_rejected_ != nullptr) m_rejected_->add(1);
}

void ServingStats::record_batch(std::int64_t requests, std::int64_t seeds) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++batches_;
  batch_requests_sum_ += requests;
  batch_seeds_sum_ += seeds;
  min_batch_requests_ =
      batches_ == 1 ? requests : std::min(min_batch_requests_, requests);
  max_batch_requests_ = std::max(max_batch_requests_, requests);
  if (m_batches_ != nullptr) {
    m_batches_->add(1);
    m_batch_requests_->add(requests);
    m_seeds_->add(seeds);
    m_min_batch_->set(static_cast<double>(min_batch_requests_));
    m_max_batch_->set(static_cast<double>(max_batch_requests_));
  }
}

void ServingStats::record_gather(const StaticFeatureCache::LoadStats& stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  gather_.hits += stats.hits;
  gather_.misses += stats.misses;
  gather_.device_bytes += stats.device_bytes;
  gather_.host_bytes += stats.host_bytes;
  if (m_cache_hits_ != nullptr) {
    m_cache_hits_->add(stats.hits);
    m_cache_misses_->add(stats.misses);
    m_device_bytes_->set(static_cast<double>(gather_.device_bytes));
    m_host_bytes_->set(static_cast<double>(gather_.host_bytes));
  }
}

void ServingStats::bind(Telemetry* telemetry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (telemetry == nullptr) {
    m_completed_ = m_rejected_ = m_batches_ = m_seeds_ = m_batch_requests_ = nullptr;
    m_cache_hits_ = m_cache_misses_ = nullptr;
    m_device_bytes_ = m_host_bytes_ = m_min_batch_ = m_max_batch_ = nullptr;
    m_latency_ = m_queue_wait_ = nullptr;
    return;
  }
  MetricsRegistry& reg = telemetry->registry();
  m_completed_ = &reg.counter("serving.requests_completed");
  m_rejected_ = &reg.counter("serving.requests_rejected");
  m_batches_ = &reg.counter("serving.batches");
  m_seeds_ = &reg.counter("serving.seeds");
  m_batch_requests_ = &reg.counter("serving.batch_requests_total");
  m_cache_hits_ = &reg.counter("serving.cache_hits");
  m_cache_misses_ = &reg.counter("serving.cache_misses");
  m_device_bytes_ = &reg.gauge("serving.cache_device_bytes");
  m_host_bytes_ = &reg.gauge("serving.cache_host_bytes");
  m_min_batch_ = &reg.gauge("serving.min_batch_requests");
  m_max_batch_ = &reg.gauge("serving.max_batch_requests");
  m_latency_ = &reg.histogram("serving.latency_ms");
  m_queue_wait_ = &reg.histogram("serving.queue_wait_ms");
}

ServingSnapshot ServingStats::snapshot() const {
  std::vector<Seconds> sorted;
  std::vector<Seconds> sorted_waits;
  ServingSnapshot s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sorted = latencies_;
    sorted_waits = queue_waits_;
    s.completed_requests = completed_;
    if (completed_ > 0) {
      s.latency_mean = latency_sum_ / static_cast<double>(completed_);
      s.queue_wait_mean = queue_wait_sum_ / static_cast<double>(completed_);
      s.compute_mean = s.latency_mean - s.queue_wait_mean;
    }
    s.latency_max = latency_max_;
    s.queue_wait_max = queue_wait_max_;
    s.rejected_requests = rejected_;
    s.completed_batches = batches_;
    s.total_seeds = batch_seeds_sum_;
    s.min_batch_requests = min_batch_requests_;
    s.max_batch_requests = max_batch_requests_;
    s.cache_hits = gather_.hits;
    s.cache_misses = gather_.misses;
    s.device_bytes = gather_.device_bytes;
    s.host_bytes = gather_.host_bytes;
    s.cache_hit_rate = gather_.hit_rate();
    s.uptime = uptime_.elapsed();
    if (batches_ > 0) {
      s.mean_batch_requests =
          static_cast<double>(batch_requests_sum_) / static_cast<double>(batches_);
      s.mean_batch_seeds =
          static_cast<double>(batch_seeds_sum_) / static_cast<double>(batches_);
    }
  }
  std::sort(sorted.begin(), sorted.end());
  if (!sorted.empty()) {
    s.latency_p50 = percentile(sorted, 0.50);
    s.latency_p95 = percentile(sorted, 0.95);
    s.latency_p99 = percentile(sorted, 0.99);
  }
  std::sort(sorted_waits.begin(), sorted_waits.end());
  if (!sorted_waits.empty()) {
    s.queue_wait_p50 = percentile(sorted_waits, 0.50);
    s.queue_wait_p95 = percentile(sorted_waits, 0.95);
    s.queue_wait_p99 = percentile(sorted_waits, 0.99);
  }
  if (s.uptime > 0.0) {
    s.qps = static_cast<double>(s.completed_requests) / s.uptime;
    s.seeds_per_second = static_cast<double>(s.total_seeds) / s.uptime;
  }
  return s;
}

void ServingStats::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  latencies_.clear();
  queue_waits_.clear();
  reservoir_seen_ = 0;
  reservoir_rng_ = 0x9e3779b97f4a7c15ULL;
  completed_ = 0;
  latency_sum_ = 0.0;
  latency_max_ = 0.0;
  queue_wait_sum_ = 0.0;
  queue_wait_max_ = 0.0;
  rejected_ = 0;
  batches_ = 0;
  batch_requests_sum_ = 0;
  batch_seeds_sum_ = 0;
  min_batch_requests_ = 0;
  max_batch_requests_ = 0;
  gather_ = {};
  uptime_.reset();
}

std::string ServingSnapshot::to_string() const {
  std::string out;
  out += "requests=" + format_count(static_cast<std::uint64_t>(completed_requests));
  out += " rejected=" + format_count(static_cast<std::uint64_t>(rejected_requests));
  out += " qps=" + format_double(qps, 1);
  out += " p50=" + format_double(latency_p50 * 1e3, 3) + "ms";
  out += " p95=" + format_double(latency_p95 * 1e3, 3) + "ms";
  out += " p99=" + format_double(latency_p99 * 1e3, 3) + "ms";
  out += " queue_p99=" + format_double(queue_wait_p99 * 1e3, 3) + "ms";
  out += " compute_mean=" + format_double(compute_mean * 1e3, 3) + "ms";
  out += " batch=" + format_double(mean_batch_requests, 2);
  out += " hit_rate=" + format_double(cache_hit_rate, 3);
  return out;
}

}  // namespace hyscale
