// Small string/format helpers (gcc 12 lacks a complete <format>).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hyscale {

/// Formats a double with fixed precision, e.g. format_double(3.14159, 2) == "3.14".
std::string format_double(double value, int precision);

/// Human-readable byte count: "1.5 GB", "202.0 GB", "512.0 MB".
std::string format_bytes(double bytes);

/// Comma-grouped integer: 1615685872 -> "1,615,685,872".
std::string format_count(std::uint64_t value);

/// Left-pads `s` with spaces to `width`.
std::string pad_left(const std::string& s, std::size_t width);

/// Right-pads `s` with spaces to `width`.
std::string pad_right(const std::string& s, std::size_t width);

/// Splits on a single-character delimiter; empty tokens preserved.
std::vector<std::string> split(const std::string& s, char delim);

}  // namespace hyscale
