#include "common/strutil.hpp"

#include <cstdio>
#include <sstream>

namespace hyscale {

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string format_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return format_double(bytes, 1) + " " + kUnits[unit];
}

std::string format_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string token;
  while (std::getline(ss, token, delim)) out.push_back(token);
  if (!s.empty() && s.back() == delim) out.emplace_back();
  return out;
}

}  // namespace hyscale
