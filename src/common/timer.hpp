// Wall-clock timing utilities.
//
// Real time is used for the micro-benchmarks and for the measured CPU
// stage times; the heterogeneous devices report *simulated* time through
// hyscale::SimTime (see device/sim_device.hpp), so both share the
// `Seconds` vocabulary type defined here.
#pragma once

#include <chrono>

namespace hyscale {

using Seconds = double;

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed wall time in seconds since construction or last reset().
  Seconds elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple start/stop intervals (per pipeline
/// stage, per epoch).
class Accumulator {
 public:
  void start() { timer_.reset(); running_ = true; }
  void stop() {
    if (running_) {
      total_ += timer_.elapsed();
      ++count_;
      running_ = false;
    }
  }
  void add(Seconds s) { total_ += s; ++count_; }
  Seconds total() const { return total_; }
  Seconds mean() const { return count_ ? total_ / static_cast<double>(count_) : 0.0; }
  long count() const { return count_; }
  void reset() { total_ = 0.0; count_ = 0; running_ = false; }

 private:
  Timer timer_;
  Seconds total_ = 0.0;
  long count_ = 0;
  bool running_ = false;
};

}  // namespace hyscale
