// Minimal leveled logger for the HyScale-GNN runtime.
//
// The runtime, DRM engine, and benchmark harnesses use this to report
// stage timings and workload re-assignments.  Logging is opt-in per
// severity and thread-safe (a single global mutex serialises sinks);
// hot paths should cache `Logger::enabled(level)` before formatting.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace hyscale {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global logger singleton.  Writes to stderr.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return static_cast<int>(level) >= static_cast<int>(level_); }

  /// Thread-safe write of one formatted record.
  void write(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mutex_;
};

namespace detail {
inline void log_stream_append(std::ostringstream&) {}
template <typename T, typename... Rest>
void log_stream_append(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  log_stream_append(os, rest...);
}
}  // namespace detail

/// Variadic convenience: HYSCALE_LOG(kInfo, "drm", "moved ", n, " threads").
template <typename... Args>
void log_message(LogLevel level, std::string_view component, const Args&... args) {
  Logger& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  std::ostringstream os;
  detail::log_stream_append(os, args...);
  logger.write(level, component, os.str());
}

}  // namespace hyscale
