#include "common/rng.hpp"

#include <cmath>

namespace hyscale {

double Xoshiro256::normal() {
  // Box–Muller; draw until u1 is nonzero to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return radius * std::cos(2.0 * 3.14159265358979323846 * u2);
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                            0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (jump & (1ULL << bit)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      operator()();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

}  // namespace hyscale
