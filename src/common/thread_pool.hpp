// Fixed-size worker pool with a blocking parallel_for.
//
// The paper implements its Runtime with Pthreads (Listing 1); we use the
// same building blocks (std::thread + condition variables) wrapped in an
// RAII pool.  The pool backs:
//   * the Feature Loader's threaded row gather (§III-B stage 2),
//   * the CPU GNN Trainer's threaded GEMM and aggregation,
//   * the Mini-batch Sampler's per-batch parallelism.
// DRM's balance_thread re-partitions *logical* thread shares between
// stages (see runtime/drm.hpp); the pool itself stays fixed-size.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hyscale {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1).  A pool of size 1 still runs
  /// tasks on the worker thread, preserving concurrency semantics on
  /// single-core hosts.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue an arbitrary task.  Fire-and-forget; use parallel_for for
  /// joinable data-parallel loops.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

  /// Splits [begin, end) into roughly `chunks` contiguous ranges and runs
  /// `body(lo, hi)` on the pool, blocking until all complete.  `chunks`
  /// defaults to the pool size.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t chunks = 0);

  /// Process-wide default pool sized to the hardware concurrency (min 1).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Convenience wrapper over the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace hyscale
