#include "common/thread_pool.hpp"

#include <algorithm>

namespace hyscale {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t, std::size_t)>& body,
                              std::size_t chunks) {
  if (begin >= end) return;
  if (chunks == 0) chunks = size();
  const std::size_t n = end - begin;
  chunks = std::min(chunks, n);
  if (chunks <= 1) {
    body(begin, end);
    return;
  }
  // Counting latch: the calling thread blocks until all chunks finish.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t remaining = chunks;

  const std::size_t step = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * step;
    const std::size_t hi = std::min(end, lo + step);
    if (lo >= hi) {
      std::lock_guard<std::mutex> lock(done_mutex);
      --remaining;
      continue;
    }
    submit([&, lo, hi] {
      body(lo, hi);
      {
        std::lock_guard<std::mutex> lock(done_mutex);
        --remaining;
      }
      done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
    }
    cv_idle_.notify_all();
  }
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  ThreadPool::global().parallel_for(begin, end, body);
}

}  // namespace hyscale
