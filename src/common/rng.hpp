// Deterministic, fast pseudo-random number generation.
//
// All stochastic components (graph generators, neighbor samplers, weight
// initialisers, dropout) draw from these generators so that every
// experiment in the repository is bit-reproducible from a seed.  We use
// splitmix64 for seeding and xoshiro256** as the workhorse generator —
// both are tiny, fast, and have well-studied statistical quality.
#pragma once

#include <cstdint>
#include <limits>

namespace hyscale {

/// splitmix64: used to expand a single 64-bit seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — public-domain generator by Blackman & Vigna.
/// Satisfies UniformRandomBitGenerator so it can feed <random> adaptors.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift rejection-free
  /// variant (tiny bias < 2^-64, irrelevant for sampling workloads).
  std::uint64_t bounded(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Uniform float in [0, 1).
  double uniform() { return static_cast<double>(operator()() >> 11) * 0x1.0p-53; }

  /// Uniform float in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box–Muller (no cached second value; simple and
  /// deterministic across platforms).
  double normal();

  /// Jump function equivalent to 2^128 calls; used to give each worker
  /// thread a decorrelated stream derived from one seed.
  void jump();

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4] = {};
};

}  // namespace hyscale
