#include "tensor/init.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace hyscale {

void xavier_uniform(Tensor& w, std::uint64_t seed) {
  const double fan_in = static_cast<double>(w.rows());
  const double fan_out = static_cast<double>(w.cols());
  const double s = std::sqrt(6.0 / (fan_in + fan_out));
  uniform_init(w, static_cast<float>(-s), static_cast<float>(s), seed);
}

void uniform_init(Tensor& w, float lo, float hi, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (float& v : w.flat()) v = static_cast<float>(rng.uniform(lo, hi));
}

void normal_init(Tensor& w, float stddev, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (float& v : w.flat()) v = static_cast<float>(rng.normal() * stddev);
}

}  // namespace hyscale
