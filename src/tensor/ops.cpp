#include "tensor/ops.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "tensor/simd.hpp"

namespace hyscale {

void gather_rows(const Tensor& src, std::span<const std::int64_t> index, Tensor& out) {
  const std::int64_t cols = src.cols();
  out.resize(static_cast<std::int64_t>(index.size()), cols);
  const float* s = src.data();
  float* d = out.data();
  auto copy_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const std::int64_t r = index[i];
      std::memcpy(d + static_cast<std::int64_t>(i) * cols, s + r * cols,
                  static_cast<std::size_t>(cols) * sizeof(float));
    }
  };
  if (index.size() * static_cast<std::size_t>(cols) > (1u << 16)) {
    parallel_for(0, index.size(), copy_range);
  } else {
    copy_range(0, index.size());
  }
}

void scatter_add_rows(const Tensor& src, std::span<const std::int64_t> index, Tensor& dst) {
  if (src.rows() != static_cast<std::int64_t>(index.size()))
    throw std::invalid_argument("scatter_add_rows: index length mismatch");
  const std::int64_t cols = src.cols();
  if (dst.cols() != cols) throw std::invalid_argument("scatter_add_rows: column mismatch");
  for (std::size_t i = 0; i < index.size(); ++i) {
    const float* s = src.data() + static_cast<std::int64_t>(i) * cols;
    float* d = dst.data() + index[i] * cols;
    // 1.0f * s[j] is exact, so the vector axpy is the same rounding
    // sequence as the old `d[j] += s[j]` loop.
    simd::axpy(1.0f, s, d, cols);
  }
}

void relu_forward(const Tensor& x, Tensor& y) {
  if (y.rows() != x.rows() || y.cols() != x.cols()) y.resize(x.rows(), x.cols());
  const float* px = x.data();
  float* py = y.data();
  const std::int64_t n = x.size();
  for (std::int64_t i = 0; i < n; ++i) py[i] = px[i] > 0.0f ? px[i] : 0.0f;
}

void relu_backward(const Tensor& x, const Tensor& dy, Tensor& dx) {
  if (x.rows() != dy.rows() || x.cols() != dy.cols())
    throw std::invalid_argument("relu_backward: shape mismatch");
  dx.resize(x.rows(), x.cols());
  const float* px = x.data();
  const float* pdy = dy.data();
  float* pdx = dx.data();
  const std::int64_t n = x.size();
  for (std::int64_t i = 0; i < n; ++i) pdx[i] = px[i] > 0.0f ? pdy[i] : 0.0f;
}

void dropout_forward(Tensor& x, Tensor& mask, double keep_prob, std::uint64_t seed) {
  if (keep_prob <= 0.0 || keep_prob > 1.0)
    throw std::invalid_argument("dropout_forward: keep_prob must be in (0,1]");
  mask.resize(x.rows(), x.cols());
  if (keep_prob == 1.0) {
    mask.fill(1.0f);
    return;
  }
  Xoshiro256 rng(seed);
  const auto scale = static_cast<float>(1.0 / keep_prob);
  float* px = x.data();
  float* pm = mask.data();
  const std::int64_t n = x.size();
  for (std::int64_t i = 0; i < n; ++i) {
    if (rng.uniform() < keep_prob) {
      pm[i] = scale;
      px[i] *= scale;
    } else {
      pm[i] = 0.0f;
      px[i] = 0.0f;
    }
  }
}

void dropout_backward(const Tensor& mask, Tensor& grad) {
  if (mask.rows() != grad.rows() || mask.cols() != grad.cols())
    throw std::invalid_argument("dropout_backward: shape mismatch");
  const float* pm = mask.data();
  float* pg = grad.data();
  const std::int64_t n = grad.size();
  for (std::int64_t i = 0; i < n; ++i) pg[i] *= pm[i];
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols())
    throw std::invalid_argument("axpy: shape mismatch");
  const float* px = x.data();
  float* py = y.data();
  const std::int64_t n = x.size();
  for (std::int64_t i = 0; i < n; ++i) py[i] += alpha * px[i];
}

void concat_cols(const Tensor& a, const Tensor& b, Tensor& y) {
  if (a.rows() != b.rows()) throw std::invalid_argument("concat_cols: row mismatch");
  y.resize(a.rows(), a.cols() + b.cols());
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    std::memcpy(y.data() + i * y.cols(), a.data() + i * a.cols(),
                static_cast<std::size_t>(a.cols()) * sizeof(float));
    std::memcpy(y.data() + i * y.cols() + a.cols(), b.data() + i * b.cols(),
                static_cast<std::size_t>(b.cols()) * sizeof(float));
  }
}

void split_cols(const Tensor& dy, std::int64_t a_cols, Tensor& da, Tensor& db) {
  if (a_cols < 0 || a_cols > dy.cols()) throw std::invalid_argument("split_cols: bad split");
  const std::int64_t b_cols = dy.cols() - a_cols;
  da.resize(dy.rows(), a_cols);
  db.resize(dy.rows(), b_cols);
  for (std::int64_t i = 0; i < dy.rows(); ++i) {
    std::memcpy(da.data() + i * a_cols, dy.data() + i * dy.cols(),
                static_cast<std::size_t>(a_cols) * sizeof(float));
    std::memcpy(db.data() + i * b_cols, dy.data() + i * dy.cols() + a_cols,
                static_cast<std::size_t>(b_cols) * sizeof(float));
  }
}

void scale_rows(const Tensor& x, std::span<const float> scale, Tensor& y) {
  if (static_cast<std::int64_t>(scale.size()) != x.rows())
    throw std::invalid_argument("scale_rows: scale length mismatch");
  y.resize(x.rows(), x.cols());
  for (std::int64_t i = 0; i < x.rows(); ++i) {
    const float s = scale[static_cast<std::size_t>(i)];
    const float* px = x.data() + i * x.cols();
    float* py = y.data() + i * x.cols();
    for (std::int64_t j = 0; j < x.cols(); ++j) py[j] = px[j] * s;
  }
}

}  // namespace hyscale
