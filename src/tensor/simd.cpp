// Vector kernel bodies.  Compiled with -ffp-contract=off (CMake source
// property) so neither the scalar tails inside the vector functions nor
// the reference bodies are ever contracted into FMA — the bit-identity
// contract in simd.hpp depends on multiply and add staying two rounding
// steps on every path.
//
// x86-64: AVX2 bodies carry a per-function target attribute (the
// library itself stays baseline x86-64), guarded at runtime by
// __builtin_cpu_supports("avx2").  The attribute deliberately does NOT
// enable FMA: with the ISA absent the compiler cannot fuse the tails
// even if the contract flag were lost.
//
// aarch64: NEON is architecturally mandatory, so the bodies dispatch
// unconditionally (explicit vmul + vadd, never vfma).
#include "tensor/simd.hpp"

#include <atomic>

#if defined(__x86_64__) || defined(_M_X64)
#define HYSCALE_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define HYSCALE_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace hyscale::simd {

namespace {

std::atomic<bool> g_force_scalar{false};

#if defined(HYSCALE_SIMD_X86)

bool cpu_has_avx2() {
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
}

__attribute__((target("avx2"))) void copy_avx2(const float* src, float* dst,
                                               std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) _mm256_storeu_ps(dst + i, _mm256_loadu_ps(src + i));
  for (; i < n; ++i) dst[i] = src[i];
}

__attribute__((target("avx2"))) void axpy_avx2(float a, const float* x, float* y,
                                               std::int64_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // mul then add — two rounding steps per lane, same as the scalar body.
    const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

__attribute__((target("avx2"))) void dequant_avx2(const std::int8_t* q, float scale,
                                                  float* dst, std::int64_t n) {
  const __m256 vs = _mm256_set1_ps(scale);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + i));
    const __m256i ints = _mm256_cvtepi8_epi32(bytes);
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_cvtepi32_ps(ints), vs));
  }
  for (; i < n; ++i) dst[i] = static_cast<float>(q[i]) * scale;
}

__attribute__((target("avx2"))) float max_abs_avx2(const float* x, std::int64_t n) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 best = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    best = _mm256_max_ps(best, _mm256_and_ps(_mm256_loadu_ps(x + i), abs_mask));
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, best);
  float m = 0.0f;
  for (float lane : lanes) m = lane > m ? lane : m;
  for (; i < n; ++i) {
    const float v = x[i] < 0.0f ? -x[i] : x[i];
    if (v > m) m = v;
  }
  return m;
}

#elif defined(HYSCALE_SIMD_NEON)

void copy_neon(const float* src, float* dst, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) vst1q_f32(dst + i, vld1q_f32(src + i));
  for (; i < n; ++i) dst[i] = src[i];
}

void axpy_neon(float a, const float* x, float* y, std::int64_t n) {
  const float32x4_t va = vdupq_n_f32(a);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Explicit vmul + vadd (not vfma): two rounding steps per lane.
    const float32x4_t prod = vmulq_f32(va, vld1q_f32(x + i));
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void dequant_neon(const std::int8_t* q, float scale, float* dst, std::int64_t n) {
  const float32x4_t vs = vdupq_n_f32(scale);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int8x8_t bytes = vld1_s8(q + i);
    const int16x8_t half = vmovl_s8(bytes);
    const int32x4_t lo = vmovl_s16(vget_low_s16(half));
    const int32x4_t hi = vmovl_s16(vget_high_s16(half));
    vst1q_f32(dst + i, vmulq_f32(vcvtq_f32_s32(lo), vs));
    vst1q_f32(dst + i + 4, vmulq_f32(vcvtq_f32_s32(hi), vs));
  }
  for (; i < n; ++i) dst[i] = static_cast<float>(q[i]) * scale;
}

float max_abs_neon(const float* x, std::int64_t n) {
  float32x4_t best = vdupq_n_f32(0.0f);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) best = vmaxq_f32(best, vabsq_f32(vld1q_f32(x + i)));
  float m = vmaxvq_f32(best);
  for (; i < n; ++i) {
    const float v = x[i] < 0.0f ? -x[i] : x[i];
    if (v > m) m = v;
  }
  return m;
}

#endif

bool use_vector() {
  if (g_force_scalar.load(std::memory_order_relaxed)) return false;
#if defined(HYSCALE_SIMD_X86)
  return cpu_has_avx2();
#elif defined(HYSCALE_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

}  // namespace

const char* backend_name() {
  if (!use_vector()) return "scalar";
#if defined(HYSCALE_SIMD_X86)
  return "avx2";
#elif defined(HYSCALE_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

void force_scalar(bool on) { g_force_scalar.store(on, std::memory_order_relaxed); }
bool forced_scalar() { return g_force_scalar.load(std::memory_order_relaxed); }

void copy_scalar(const float* src, float* dst, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = src[i];
}

void axpy_scalar(float a, const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void dequant_scalar(const std::int8_t* q, float scale, float* dst, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = static_cast<float>(q[i]) * scale;
}

float max_abs_scalar(const float* x, std::int64_t n) {
  float m = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = x[i] < 0.0f ? -x[i] : x[i];
    if (v > m) m = v;
  }
  return m;
}

void copy(const float* src, float* dst, std::int64_t n) {
#if defined(HYSCALE_SIMD_X86)
  if (use_vector()) return copy_avx2(src, dst, n);
#elif defined(HYSCALE_SIMD_NEON)
  if (use_vector()) return copy_neon(src, dst, n);
#endif
  copy_scalar(src, dst, n);
}

void axpy(float a, const float* x, float* y, std::int64_t n) {
#if defined(HYSCALE_SIMD_X86)
  if (use_vector()) return axpy_avx2(a, x, y, n);
#elif defined(HYSCALE_SIMD_NEON)
  if (use_vector()) return axpy_neon(a, x, y, n);
#endif
  axpy_scalar(a, x, y, n);
}

void dequant(const std::int8_t* q, float scale, float* dst, std::int64_t n) {
#if defined(HYSCALE_SIMD_X86)
  if (use_vector()) return dequant_avx2(q, scale, dst, n);
#elif defined(HYSCALE_SIMD_NEON)
  if (use_vector()) return dequant_neon(q, scale, dst, n);
#endif
  dequant_scalar(q, scale, dst, n);
}

float max_abs(const float* x, std::int64_t n) {
#if defined(HYSCALE_SIMD_X86)
  if (use_vector()) return max_abs_avx2(x, n);
#elif defined(HYSCALE_SIMD_NEON)
  if (use_vector()) return max_abs_neon(x, n);
#endif
  return max_abs_scalar(x, n);
}

}  // namespace hyscale::simd
