// Blocked, threaded single-precision GEMM.
//
// This is the feature-update kernel (Eq. 2 / Eq. 12 in the paper): the
// MLP in every GNN layer is one GEMM per direction.  The paper maps it to
// MKL on CPUs, cuBLAS-backed ops on GPUs, and a systolic array on FPGAs;
// here the CPU reference implementation carries the real numerics while
// the device cost models (device/cost_model.hpp) supply accelerator
// timings.
#pragma once

#include "tensor/tensor.hpp"

namespace hyscale {

/// C = alpha * op(A) * op(B) + beta * C.
/// op(X) = X or X^T depending on the trans flags.  Shapes are validated.
/// Parallelised over row blocks of C via the global thread pool.
void gemm(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
          Tensor& c, float alpha = 1.0f, float beta = 0.0f);

/// y = x * W + broadcast(bias); the common forward-layer case.
/// `bias` may be empty (no bias).
void linear_forward(const Tensor& x, const Tensor& w, const Tensor& bias, Tensor& y);

}  // namespace hyscale
