#include "tensor/quantize.hpp"

#include <algorithm>
#include <cmath>

namespace hyscale {

const char* transfer_precision_name(TransferPrecision precision) {
  switch (precision) {
    case TransferPrecision::kFp32: return "fp32";
    case TransferPrecision::kFp16: return "fp16";
    case TransferPrecision::kInt8: return "int8";
  }
  return "?";
}

QuantizedRows quantize_int8(const Tensor& x) {
  QuantizedRows q;
  q.rows = x.rows();
  q.cols = x.cols();
  q.values.resize(static_cast<std::size_t>(x.size()));
  q.scales.resize(static_cast<std::size_t>(x.rows()));
  for (std::int64_t i = 0; i < x.rows(); ++i) {
    const float* row = x.data() + i * x.cols();
    float max_abs = 0.0f;
    for (std::int64_t j = 0; j < x.cols(); ++j) max_abs = std::max(max_abs, std::abs(row[j]));
    const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    q.scales[static_cast<std::size_t>(i)] = scale;
    std::int8_t* out = q.values.data() + i * x.cols();
    for (std::int64_t j = 0; j < x.cols(); ++j) {
      const float scaled = row[j] / scale;
      out[j] = static_cast<std::int8_t>(
          std::clamp(std::nearbyint(scaled), -127.0f, 127.0f));
    }
  }
  return q;
}

void dequantize_int8(const QuantizedRows& q, Tensor& out) {
  out.resize(q.rows, q.cols);
  for (std::int64_t i = 0; i < q.rows; ++i) {
    const float scale = q.scales[static_cast<std::size_t>(i)];
    const std::int8_t* src = q.values.data() + i * q.cols;
    float* dst = out.data() + i * q.cols;
    for (std::int64_t j = 0; j < q.cols; ++j) dst[j] = static_cast<float>(src[j]) * scale;
  }
}

double quantize_roundtrip_int8(Tensor& x) {
  const QuantizedRows q = quantize_int8(x);
  Tensor reconstructed;
  dequantize_int8(q, reconstructed);
  const double error = Tensor::max_abs_diff(x, reconstructed);
  x = std::move(reconstructed);
  return error;
}

}  // namespace hyscale
