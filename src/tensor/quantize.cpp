#include "tensor/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/simd.hpp"

namespace hyscale {

const char* transfer_precision_name(TransferPrecision precision) {
  switch (precision) {
    case TransferPrecision::kFp32: return "fp32";
    case TransferPrecision::kFp16: return "fp16";
    case TransferPrecision::kInt8: return "int8";
  }
  return "?";
}

float int8_row_scale(const float* row, std::int64_t n) {
  const float max_abs = simd::max_abs(row, n);
  return max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
}

void quantize_row_int8(const float* src, std::int64_t n, float scale, std::int8_t* dst) {
  for (std::int64_t j = 0; j < n; ++j) {
    // std::round (half away from zero) — NOT std::nearbyint, whose
    // result follows the ambient FP rounding mode and made quantized
    // logits differ across threads that had touched fesetround.
    const float scaled = src[j] / scale;
    dst[j] = static_cast<std::int8_t>(std::clamp(std::round(scaled), -127.0f, 127.0f));
  }
}

void wire_roundtrip_row_int8(const float* src, float* dst, std::int64_t n) {
  const float scale = int8_row_scale(src, n);
  for (std::int64_t j = 0; j < n; ++j) {
    const float scaled = src[j] / scale;
    const float q = std::clamp(std::round(scaled), -127.0f, 127.0f);
    dst[j] = q * scale;
  }
}

QuantizedRows quantize_int8(const Tensor& x) {
  QuantizedRows q;
  q.rows = x.rows();
  q.cols = x.cols();
  q.values.resize(static_cast<std::size_t>(x.size()));
  q.scales.resize(static_cast<std::size_t>(x.rows()));
  for (std::int64_t i = 0; i < x.rows(); ++i) {
    const float* row = x.data() + i * x.cols();
    const float scale = int8_row_scale(row, x.cols());
    q.scales[static_cast<std::size_t>(i)] = scale;
    quantize_row_int8(row, x.cols(), scale, q.values.data() + i * x.cols());
  }
  return q;
}

void dequantize_int8(const QuantizedRows& q, Tensor& out) {
  if (out.rows() != q.rows || out.cols() != q.cols) {
    if (!out.empty())
      throw std::invalid_argument("dequantize_int8: pre-sized out has the wrong shape");
    out.resize(q.rows, q.cols);
  }
  for (std::int64_t i = 0; i < q.rows; ++i) {
    simd::dequant(q.values.data() + i * q.cols, q.scales[static_cast<std::size_t>(i)],
                  out.data() + i * q.cols, q.cols);
  }
}

double quantize_roundtrip_int8(Tensor& x) {
  const QuantizedRows q = quantize_int8(x);
  Tensor reconstructed;
  dequantize_int8(q, reconstructed);
  const double error = Tensor::max_abs_diff(x, reconstructed);
  x = std::move(reconstructed);
  return error;
}

}  // namespace hyscale
