// Dense row-major float matrix — the feature/weight/activation container.
//
// GNN training is dominated by two kernels over this type: irregular row
// gather/scatter (feature aggregation) and dense GEMM (feature update).
// Row-major layout keeps a vertex's feature vector contiguous, which is
// what both kernels want.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hyscale {

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::int64_t rows, std::int64_t cols, float fill = 0.0f);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(std::int64_t r, std::int64_t c) { return data_[static_cast<std::size_t>(r * cols_ + c)]; }
  float at(std::int64_t r, std::int64_t c) const { return data_[static_cast<std::size_t>(r * cols_ + c)]; }

  std::span<float> row(std::int64_t r) {
    return {data_.data() + r * cols_, static_cast<std::size_t>(cols_)};
  }
  std::span<const float> row(std::int64_t r) const {
    return {data_.data() + r * cols_, static_cast<std::size_t>(cols_)};
  }

  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Resize, discarding contents.
  void resize(std::int64_t rows, std::int64_t cols);

  /// Frobenius norm; used by gradient-sanity tests.
  double norm() const;

  /// Max |a_ij - b_ij|; throws on shape mismatch.
  static double max_abs_diff(const Tensor& a, const Tensor& b);

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace hyscale
