#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hyscale {

namespace {
std::size_t checked_size(std::int64_t rows, std::int64_t cols) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("Tensor: negative shape");
  return static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
}
}  // namespace

Tensor::Tensor(std::int64_t rows, std::int64_t cols, float fill)
    : rows_(rows), cols_(cols), data_(checked_size(rows, cols), fill) {}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Tensor::resize(std::int64_t rows, std::int64_t cols) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("Tensor::resize: negative shape");
  rows_ = rows;
  cols_ = cols;
  data_.assign(static_cast<std::size_t>(rows * cols), 0.0f);
}

double Tensor::norm() const {
  double sum = 0.0;
  for (float v : data_) sum += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(sum);
}

double Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument("Tensor::max_abs_diff: shape mismatch");
  double best = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    best = std::max(best, std::abs(static_cast<double>(a.data_[i]) - b.data_[i]));
  }
  return best;
}

}  // namespace hyscale
