#include "tensor/gemm.hpp"

#include <stdexcept>

#include "common/thread_pool.hpp"
#include "tensor/simd.hpp"

namespace hyscale {

namespace {

// Cache-blocked inner kernel over C[r0:r1). A is MxK, B is KxN (already
// logically transposed via the index lambdas).
template <typename AIdx, typename BIdx>
void gemm_rows(std::int64_t r0, std::int64_t r1, std::int64_t n, std::int64_t k,
               const float* a, AIdx a_at, const float* b, BIdx b_at, float* c,
               std::int64_t ldc, float alpha, float beta) {
  constexpr std::int64_t kBlockK = 128;
  for (std::int64_t i = r0; i < r1; ++i) {
    float* c_row = c + i * ldc;
    for (std::int64_t j = 0; j < n; ++j) c_row[j] *= beta;
    for (std::int64_t kk = 0; kk < k; kk += kBlockK) {
      const std::int64_t k_hi = std::min(kk + kBlockK, k);
      for (std::int64_t p = kk; p < k_hi; ++p) {
        const float a_ip = alpha * a[a_at(i, p)];
        if (a_ip == 0.0f) continue;
        const float* b_row = b;  // indexed through b_at
        for (std::int64_t j = 0; j < n; ++j) {
          c_row[j] += a_ip * b_row[b_at(p, j)];
        }
      }
    }
  }
}

// Contiguous-B specialization (trans_b == false): row p of B is the
// dense span b[p*ldb, p*ldb+n), so the j loop is a vector axpy.  The
// SIMD body keeps multiply and add as separate rounding steps, so this
// kernel is bit-identical to gemm_rows above (the differential tests
// hold it there across backends).
template <typename AIdx>
void gemm_rows_contig_b(std::int64_t r0, std::int64_t r1, std::int64_t n, std::int64_t k,
                        const float* a, AIdx a_at, const float* b, std::int64_t ldb,
                        float* c, std::int64_t ldc, float alpha, float beta) {
  constexpr std::int64_t kBlockK = 128;
  for (std::int64_t i = r0; i < r1; ++i) {
    float* c_row = c + i * ldc;
    for (std::int64_t j = 0; j < n; ++j) c_row[j] *= beta;
    for (std::int64_t kk = 0; kk < k; kk += kBlockK) {
      const std::int64_t k_hi = std::min(kk + kBlockK, k);
      for (std::int64_t p = kk; p < k_hi; ++p) {
        const float a_ip = alpha * a[a_at(i, p)];
        if (a_ip == 0.0f) continue;
        simd::axpy(a_ip, b + p * ldb, c_row, n);
      }
    }
  }
}

}  // namespace

void gemm(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
          Tensor& c, float alpha, float beta) {
  const std::int64_t m = trans_a ? a.cols() : a.rows();
  const std::int64_t k = trans_a ? a.rows() : a.cols();
  const std::int64_t kb = trans_b ? b.cols() : b.rows();
  const std::int64_t n = trans_b ? b.rows() : b.cols();
  if (k != kb) throw std::invalid_argument("gemm: inner dimension mismatch");
  if (c.rows() != m || c.cols() != n) throw std::invalid_argument("gemm: output shape mismatch");

  const std::int64_t lda = a.cols();
  const std::int64_t ldb = b.cols();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();

  auto run = [&](std::size_t lo, std::size_t hi) {
    const auto r0 = static_cast<std::int64_t>(lo);
    const auto r1 = static_cast<std::int64_t>(hi);
    if (!trans_a && !trans_b) {
      gemm_rows_contig_b(r0, r1, n, k, pa,
                         [lda](std::int64_t i, std::int64_t p) { return i * lda + p; }, pb, ldb,
                         pc, n, alpha, beta);
    } else if (trans_a && !trans_b) {
      gemm_rows_contig_b(r0, r1, n, k, pa,
                         [lda](std::int64_t i, std::int64_t p) { return p * lda + i; }, pb, ldb,
                         pc, n, alpha, beta);
    } else if (!trans_a && trans_b) {
      gemm_rows(r0, r1, n, k, pa, [lda](std::int64_t i, std::int64_t p) { return i * lda + p; },
                pb, [ldb](std::int64_t p, std::int64_t j) { return j * ldb + p; }, pc, n, alpha, beta);
    } else {
      gemm_rows(r0, r1, n, k, pa, [lda](std::int64_t i, std::int64_t p) { return p * lda + i; },
                pb, [ldb](std::int64_t p, std::int64_t j) { return j * ldb + p; }, pc, n, alpha, beta);
    }
  };

  // Only parallelise when the work amortises task overhead.
  if (m * n * k > (64LL << 10)) {
    parallel_for(0, static_cast<std::size_t>(m), run);
  } else {
    run(0, static_cast<std::size_t>(m));
  }
}

void linear_forward(const Tensor& x, const Tensor& w, const Tensor& bias, Tensor& y) {
  if (y.rows() != x.rows() || y.cols() != w.cols()) y.resize(x.rows(), w.cols());
  gemm(x, false, w, false, y);
  if (!bias.empty()) {
    if (bias.cols() != w.cols()) throw std::invalid_argument("linear_forward: bias shape");
    for (std::int64_t i = 0; i < y.rows(); ++i) {
      float* row = y.data() + i * y.cols();
      const float* b = bias.data();
      for (std::int64_t j = 0; j < y.cols(); ++j) row[j] += b[j];
    }
  }
}

}  // namespace hyscale
