// Deterministic weight initialisers.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace hyscale {

/// Glorot/Xavier uniform: U(-s, s) with s = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(Tensor& w, std::uint64_t seed);

/// Uniform fill in [lo, hi).
void uniform_init(Tensor& w, float lo, float hi, std::uint64_t seed);

/// Standard-normal fill scaled by `stddev`.
void normal_init(Tensor& w, float stddev, std::uint64_t seed);

}  // namespace hyscale
