// Runtime-dispatched SIMD kernels for the gather/GEMM hot path.
//
// Every kernel has three faces:
//   * the dispatching entry point (copy/axpy/dequant/max_abs) — picks
//     AVX2 on x86-64 when the CPU supports it, NEON on aarch64, scalar
//     otherwise;
//   * a `_scalar` reference implementation — always compiled, used as
//     the differential oracle by the bit-identity tests;
//   * the vector body itself (simd.cpp).
//
// Bit-identity contract: the vector kernels are written so every lane
// performs EXACTLY the scalar sequence of IEEE operations — multiplies
// and adds stay separate (no FMA contraction; simd.cpp is compiled with
// -ffp-contract=off), reductions use only max (order-independent for
// finite inputs), and int8->float conversion is exact.  That is what
// lets the stream-vs-rebuild differential harness keep its bit-identical
// guarantee on the fp32 path while the kernels are live in production:
// scalar and SIMD builds of the same gather/GEMM produce the same bits.
//
// Dispatch is per-call (one relaxed load + predictable branch), so the
// test seam force_scalar() can flip the backend at runtime without
// rebuilding — the differential tests run the same binary both ways.
#pragma once

#include <cstdint>

namespace hyscale::simd {

/// Name of the backend the dispatching kernels currently select:
/// "avx2", "neon", or "scalar" (also "scalar" while force_scalar(true)).
const char* backend_name();

/// Test seam: route the dispatching kernels through the scalar bodies
/// regardless of CPU support.  Global and sticky until cleared; the
/// bit-identity tests toggle it around a second run of the same kernel.
void force_scalar(bool on);
bool forced_scalar();

// ---- dispatching kernels (the hot-path entry points) ----

/// dst[0..n) = src[0..n).
void copy(const float* src, float* dst, std::int64_t n);

/// y[0..n) += a * x[0..n) — the GEMM inner loop.  Multiply and add are
/// separate rounding steps in every lane (no FMA), matching the scalar
/// kernel bit for bit.
void axpy(float a, const float* x, float* y, std::int64_t n);

/// dst[0..n) = float(q[0..n)) * scale — int8 device-row dequantization,
/// fused into the gather copy.  int8 -> float conversion is exact, so
/// the result is bit-identical to the scalar body.
void dequant(const std::int8_t* q, float scale, float* dst, std::int64_t n);

/// max over |x[0..n)| (0 for n == 0) — the per-row quantization scale
/// numerator.  max is order-independent for finite floats, so the tree
/// reduction matches the scalar left-to-right scan bit for bit.
float max_abs(const float* x, std::int64_t n);

// ---- scalar reference bodies (the differential oracles) ----

void copy_scalar(const float* src, float* dst, std::int64_t n);
void axpy_scalar(float a, const float* x, float* y, std::int64_t n);
void dequant_scalar(const std::int8_t* q, float scale, float* dst, std::int64_t n);
float max_abs_scalar(const float* x, std::int64_t n);

}  // namespace hyscale::simd
