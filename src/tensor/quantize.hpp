// Feature quantization for PCIe transfer compression.
//
// The paper's future-work section (§VIII) proposes "techniques like data
// quantization to relieve the stress on the PCIe bandwidth" — the stated
// fix for its Data-Transfer-bound limitation.  This module implements
// that extension: per-row symmetric quantization of feature matrices to
// int8 (or fp16-equivalent 2-byte) payloads before the PCIe hop, with
// dequantization on the device side.
//
// Per-row scaling keeps the quantization error proportional to each
// vertex's feature magnitude, which is what makes int8 transfers
// accuracy-neutral for GNN inputs in practice.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace hyscale {

enum class TransferPrecision : int {
  kFp32 = 4,  ///< no compression
  kFp16 = 2,  ///< 2 bytes/element on the wire
  kInt8 = 1,  ///< 1 byte/element + one fp32 scale per row
};

const char* transfer_precision_name(TransferPrecision precision);

/// Bytes per element on the PCIe wire for a precision.
inline double wire_bytes_per_element(TransferPrecision precision) {
  return static_cast<double>(static_cast<int>(precision));
}

/// Per-row symmetric int8 quantization: q[i,j] = round(x[i,j]/scale[i]),
/// scale[i] = max_j |x[i,j]| / 127.
struct QuantizedRows {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<std::int8_t> values;
  std::vector<float> scales;  ///< one per row

  double wire_bytes() const {
    return static_cast<double>(values.size()) + static_cast<double>(scales.size()) * 4.0;
  }
};

QuantizedRows quantize_int8(const Tensor& x);

/// Reconstructs the float matrix.  A pre-sized `out` of the right shape
/// is written in place (no reallocation — the fused hot path dequants
/// into a pre-allocated batch tensor); an empty `out` is resized; a
/// non-empty `out` of the WRONG shape throws std::invalid_argument
/// instead of silently discarding the caller's sizing.
void dequantize_int8(const QuantizedRows& q, Tensor& out);

// ---- per-row primitives (shared by the device cache and the feature
// store's wire simulation; one quantization rule everywhere, so a row
// served from a pinned int8 device copy is bit-identical to the same
// row round-tripped through an int8 host fetch) ----

/// Symmetric per-row scale: max_j |row[j]| / 127, 1 for all-zero rows.
float int8_row_scale(const float* row, std::int64_t n);

/// Quantizes one row: dst[j] = clamp(round(src[j]/scale), -127, 127)
/// with round-half-AWAY-from-zero (std::round) — independent of the
/// ambient FP rounding mode, unlike std::nearbyint, so quantized values
/// are identical across threads and platforms.
void quantize_row_int8(const float* src, std::int64_t n, float scale, std::int8_t* dst);

/// Fused quantize+dequantize of one row (no int8 intermediate): what
/// the device sees after an int8 wire transfer.  src and dst may alias.
void wire_roundtrip_row_int8(const float* src, float* dst, std::int64_t n);

/// Round-trips x through int8 quantization in place (what the device
/// trainer actually sees); returns the max absolute reconstruction error.
double quantize_roundtrip_int8(Tensor& x);

}  // namespace hyscale
