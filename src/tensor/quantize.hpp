// Feature quantization for PCIe transfer compression.
//
// The paper's future-work section (§VIII) proposes "techniques like data
// quantization to relieve the stress on the PCIe bandwidth" — the stated
// fix for its Data-Transfer-bound limitation.  This module implements
// that extension: per-row symmetric quantization of feature matrices to
// int8 (or fp16-equivalent 2-byte) payloads before the PCIe hop, with
// dequantization on the device side.
//
// Per-row scaling keeps the quantization error proportional to each
// vertex's feature magnitude, which is what makes int8 transfers
// accuracy-neutral for GNN inputs in practice.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace hyscale {

enum class TransferPrecision : int {
  kFp32 = 4,  ///< no compression
  kFp16 = 2,  ///< 2 bytes/element on the wire
  kInt8 = 1,  ///< 1 byte/element + one fp32 scale per row
};

const char* transfer_precision_name(TransferPrecision precision);

/// Bytes per element on the PCIe wire for a precision.
inline double wire_bytes_per_element(TransferPrecision precision) {
  return static_cast<double>(static_cast<int>(precision));
}

/// Per-row symmetric int8 quantization: q[i,j] = round(x[i,j]/scale[i]),
/// scale[i] = max_j |x[i,j]| / 127.
struct QuantizedRows {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<std::int8_t> values;
  std::vector<float> scales;  ///< one per row

  double wire_bytes() const {
    return static_cast<double>(values.size()) + static_cast<double>(scales.size()) * 4.0;
  }
};

QuantizedRows quantize_int8(const Tensor& x);

/// Reconstructs the float matrix; out is resized.
void dequantize_int8(const QuantizedRows& q, Tensor& out);

/// Round-trips x through int8 quantization in place (what the device
/// trainer actually sees); returns the max absolute reconstruction error.
double quantize_roundtrip_int8(Tensor& x);

}  // namespace hyscale
