// Elementwise and row-indexed tensor operations used by the GNN layers.
//
// The `gather_rows` / `scatter_add_rows` pair is the Feature Loader and
// feature-aggregation primitive: gather extracts X' from X (§III-A
// Feature Loader), scatter-add accumulates neighbor messages into a_v
// (Eq. 1).  Both are threaded; gather is bandwidth-bound and is the
// operation whose cost the paper models as Eq. 7.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.hpp"

namespace hyscale {

/// out[i, :] = src[index[i], :].  out is resized to (index.size(), src.cols()).
void gather_rows(const Tensor& src, std::span<const std::int64_t> index, Tensor& out);

/// dst[index[i], :] += src[i, :].  Sequential per destination row; caller
/// guarantees dst is pre-sized.
void scatter_add_rows(const Tensor& src, std::span<const std::int64_t> index, Tensor& dst);

/// y = max(x, 0), in place allowed (y may alias x via same object).
void relu_forward(const Tensor& x, Tensor& y);

/// dx = dy * (x > 0).
void relu_backward(const Tensor& x, const Tensor& dy, Tensor& dx);

/// In-place inverted dropout with mask output; keep_prob in (0, 1].
/// mask holds 0 or 1/keep_prob so backward is an elementwise product.
void dropout_forward(Tensor& x, Tensor& mask, double keep_prob, std::uint64_t seed);
void dropout_backward(const Tensor& mask, Tensor& grad);

/// axpy: y += alpha * x (flat).
void axpy(float alpha, const Tensor& x, Tensor& y);

/// y = [a | b] column-wise concatenation; rows must match.
void concat_cols(const Tensor& a, const Tensor& b, Tensor& y);

/// Splits grad of a column concat back into (da, db).
void split_cols(const Tensor& dy, std::int64_t a_cols, Tensor& da, Tensor& db);

/// Row-wise scaling: y[i,:] = x[i,:] * scale[i].
void scale_rows(const Tensor& x, std::span<const float> scale, Tensor& y);

}  // namespace hyscale
