#include "nn/conv.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/gemm.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"

namespace hyscale {

namespace {

// GCN normalisation 1/sqrt((D_u+1)(D_v+1)) with the TRUE graph degrees
// (Eq. 3; the +1 is the standard self-loop of A~ = A + I).  Samplers fill
// src_degrees; hand-built blocks without it fall back to block-local
// degrees (dst in-degree; leaf sources count 0).
std::int64_t dst_degree(const LayerBlock& block, std::int64_t dst) {
  return block.indptr[static_cast<std::size_t>(dst) + 1] -
         block.indptr[static_cast<std::size_t>(dst)];
}

double norm_of(const LayerBlock& block, std::int64_t local) {
  std::int64_t degree = 0;
  if (!block.src_degrees.empty()) {
    degree = block.src_degrees[static_cast<std::size_t>(local)];
  } else if (local < block.num_dst) {
    degree = dst_degree(block, local);
  }
  return 1.0 / std::sqrt(static_cast<double>(degree) + 1.0);
}

}  // namespace

ConvLayer::ConvLayer(ConvKind kind, std::int64_t in_dim, std::int64_t out_dim,
                     bool apply_activation, std::uint64_t seed)
    : kind_(kind), in_dim_(in_dim), out_dim_(out_dim), apply_activation_(apply_activation) {
  if (in_dim <= 0 || out_dim <= 0) throw std::invalid_argument("ConvLayer: dims must be positive");
  const std::int64_t agg_dim = kind == ConvKind::kSage ? 2 * in_dim : in_dim;
  weight_ = Param("W", agg_dim, out_dim);
  bias_ = Param("b", 1, out_dim);
  xavier_uniform(weight_.value, seed);
  bias_.value.zero();
  if (kind == ConvKind::kGat) {
    attn_left_ = Param("a_l", 1, out_dim);
    attn_right_ = Param("a_r", 1, out_dim);
    xavier_uniform(attn_left_.value, seed + 1);
    xavier_uniform(attn_right_.value, seed + 2);
  }
}

std::vector<Param*> ConvLayer::extra_params() {
  if (kind_ != ConvKind::kGat) return {};
  return {&attn_left_, &attn_right_};
}

std::vector<const Param*> ConvLayer::extra_params() const {
  if (kind_ != ConvKind::kGat) return {};
  return {&attn_left_, &attn_right_};
}

void ConvLayer::aggregate_gcn(const LayerBlock& block, const Tensor& h_in, Tensor& out) const {
  out.resize(block.num_dst, in_dim_);
  for (std::int64_t v = 0; v < block.num_dst; ++v) {
    const double nv = norm_of(block, v);
    float* dst_row = out.data() + v * in_dim_;
    // Self loop term: h_v / sqrt((d_v+1)(d_v+1)).
    {
      const auto w = static_cast<float>(nv * nv);
      const float* src_row = h_in.data() + v * in_dim_;
      for (std::int64_t j = 0; j < in_dim_; ++j) dst_row[j] = w * src_row[j];
    }
    for (EdgeId e = block.indptr[static_cast<std::size_t>(v)];
         e < block.indptr[static_cast<std::size_t>(v) + 1]; ++e) {
      const std::int64_t u = block.indices[static_cast<std::size_t>(e)];
      const auto w = static_cast<float>(nv * norm_of(block, u));
      const float* src_row = h_in.data() + u * in_dim_;
      for (std::int64_t j = 0; j < in_dim_; ++j) dst_row[j] += w * src_row[j];
    }
  }
}

void ConvLayer::aggregate_gcn_backward(const LayerBlock& block, const Tensor& dout,
                                       Tensor& dh_in) const {
  // dout: num_dst x in_dim (grad w.r.t. aggregated a_v).
  for (std::int64_t v = 0; v < block.num_dst; ++v) {
    const double nv = norm_of(block, v);
    const float* g = dout.data() + v * in_dim_;
    {
      const auto w = static_cast<float>(nv * nv);
      float* dst = dh_in.data() + v * in_dim_;
      for (std::int64_t j = 0; j < in_dim_; ++j) dst[j] += w * g[j];
    }
    for (EdgeId e = block.indptr[static_cast<std::size_t>(v)];
         e < block.indptr[static_cast<std::size_t>(v) + 1]; ++e) {
      const std::int64_t u = block.indices[static_cast<std::size_t>(e)];
      const auto w = static_cast<float>(nv * norm_of(block, u));
      float* dst = dh_in.data() + u * in_dim_;
      for (std::int64_t j = 0; j < in_dim_; ++j) dst[j] += w * g[j];
    }
  }
}

void ConvLayer::aggregate_sage(const LayerBlock& block, const Tensor& h_in, Tensor& out) const {
  out.resize(block.num_dst, 2 * in_dim_);
  for (std::int64_t v = 0; v < block.num_dst; ++v) {
    float* dst_row = out.data() + v * 2 * in_dim_;
    // Left half: self feature.
    const float* self_row = h_in.data() + v * in_dim_;
    for (std::int64_t j = 0; j < in_dim_; ++j) dst_row[j] = self_row[j];
    // Right half: neighbor mean.
    float* mean = dst_row + in_dim_;
    for (std::int64_t j = 0; j < in_dim_; ++j) mean[j] = 0.0f;
    const EdgeId lo = block.indptr[static_cast<std::size_t>(v)];
    const EdgeId hi = block.indptr[static_cast<std::size_t>(v) + 1];
    if (hi > lo) {
      for (EdgeId e = lo; e < hi; ++e) {
        const std::int64_t u = block.indices[static_cast<std::size_t>(e)];
        const float* src_row = h_in.data() + u * in_dim_;
        for (std::int64_t j = 0; j < in_dim_; ++j) mean[j] += src_row[j];
      }
      const auto inv = static_cast<float>(1.0 / static_cast<double>(hi - lo));
      for (std::int64_t j = 0; j < in_dim_; ++j) mean[j] *= inv;
    }
  }
}

void ConvLayer::aggregate_sage_backward(const LayerBlock& block, const Tensor& dout,
                                        Tensor& dh_in) const {
  // dout: num_dst x 2*in_dim; columns [0,in) for self, [in,2in) for mean.
  for (std::int64_t v = 0; v < block.num_dst; ++v) {
    const float* g = dout.data() + v * 2 * in_dim_;
    float* self_dst = dh_in.data() + v * in_dim_;
    for (std::int64_t j = 0; j < in_dim_; ++j) self_dst[j] += g[j];
    const EdgeId lo = block.indptr[static_cast<std::size_t>(v)];
    const EdgeId hi = block.indptr[static_cast<std::size_t>(v) + 1];
    if (hi > lo) {
      const auto inv = static_cast<float>(1.0 / static_cast<double>(hi - lo));
      const float* mean_grad = g + in_dim_;
      for (EdgeId e = lo; e < hi; ++e) {
        const std::int64_t u = block.indices[static_cast<std::size_t>(e)];
        float* dst = dh_in.data() + u * in_dim_;
        for (std::int64_t j = 0; j < in_dim_; ++j) dst[j] += inv * mean_grad[j];
      }
    }
  }
}

namespace {
constexpr float kLeakySlope = 0.2f;
inline float leaky_relu(float x) { return x > 0.0f ? x : kLeakySlope * x; }
inline float leaky_slope_of(float activated) { return activated > 0.0f ? 1.0f : kLeakySlope; }
}  // namespace

void ConvLayer::forward_gat(const LayerBlock& block, const Tensor& h_in, Tensor& h_out) {
  gat_h_in_ = h_in;  // needed by backward for dW = H^T dZ
  // 1. Linear projection z = h W for every source vertex.
  gat_z_.resize(block.num_src(), out_dim_);
  gemm(h_in, false, weight_.value, false, gat_z_);

  // 2. Per-vertex score halves: s_u = a_l . z_u (source role),
  //    d_v = a_r . z_v (destination role).
  std::vector<float> s(static_cast<std::size_t>(block.num_src()));
  std::vector<float> d(static_cast<std::size_t>(block.num_dst));
  const float* al = attn_left_.value.data();
  const float* ar = attn_right_.value.data();
  for (std::int64_t u = 0; u < block.num_src(); ++u) {
    const float* z = gat_z_.data() + u * out_dim_;
    double acc = 0.0;
    for (std::int64_t j = 0; j < out_dim_; ++j) acc += static_cast<double>(al[j]) * z[j];
    s[static_cast<std::size_t>(u)] = static_cast<float>(acc);
  }
  for (std::int64_t v = 0; v < block.num_dst; ++v) {
    const float* z = gat_z_.data() + v * out_dim_;  // dst prefix convention
    double acc = 0.0;
    for (std::int64_t j = 0; j < out_dim_; ++j) acc += static_cast<double>(ar[j]) * z[j];
    d[static_cast<std::size_t>(v)] = static_cast<float>(acc);
  }

  // 3. Edge scores, stable softmax per destination (self loop included),
  //    and the attention-weighted aggregation.
  gat_escore_.assign(block.indices.size(), 0.0f);
  gat_escore_self_.assign(static_cast<std::size_t>(block.num_dst), 0.0f);
  gat_alpha_.assign(block.indices.size(), 0.0f);
  gat_alpha_self_.assign(static_cast<std::size_t>(block.num_dst), 0.0f);
  aggregated_.resize(block.num_dst, out_dim_);
  aggregated_.zero();

  for (std::int64_t v = 0; v < block.num_dst; ++v) {
    const EdgeId lo = block.indptr[static_cast<std::size_t>(v)];
    const EdgeId hi = block.indptr[static_cast<std::size_t>(v) + 1];
    const float dv = d[static_cast<std::size_t>(v)];
    float max_score =
        leaky_relu(s[static_cast<std::size_t>(v)] + dv);  // self loop score
    gat_escore_self_[static_cast<std::size_t>(v)] = max_score;
    for (EdgeId e = lo; e < hi; ++e) {
      const auto u = static_cast<std::size_t>(block.indices[static_cast<std::size_t>(e)]);
      const float score = leaky_relu(s[u] + dv);
      gat_escore_[static_cast<std::size_t>(e)] = score;
      max_score = std::max(max_score, score);
    }
    double denom = std::exp(static_cast<double>(
        gat_escore_self_[static_cast<std::size_t>(v)] - max_score));
    for (EdgeId e = lo; e < hi; ++e) {
      denom += std::exp(
          static_cast<double>(gat_escore_[static_cast<std::size_t>(e)] - max_score));
    }
    const float alpha_self = static_cast<float>(
        std::exp(static_cast<double>(gat_escore_self_[static_cast<std::size_t>(v)] - max_score)) /
        denom);
    gat_alpha_self_[static_cast<std::size_t>(v)] = alpha_self;
    float* out_row = aggregated_.data() + v * out_dim_;
    const float* z_self = gat_z_.data() + v * out_dim_;
    for (std::int64_t j = 0; j < out_dim_; ++j) out_row[j] += alpha_self * z_self[j];
    for (EdgeId e = lo; e < hi; ++e) {
      const auto u = static_cast<std::size_t>(block.indices[static_cast<std::size_t>(e)]);
      const float alpha = static_cast<float>(
          std::exp(static_cast<double>(gat_escore_[static_cast<std::size_t>(e)] - max_score)) /
          denom);
      gat_alpha_[static_cast<std::size_t>(e)] = alpha;
      const float* z_u = gat_z_.data() + static_cast<std::int64_t>(u) * out_dim_;
      for (std::int64_t j = 0; j < out_dim_; ++j) out_row[j] += alpha * z_u[j];
    }
  }

  // 4. Bias + activation.
  pre_activation_ = aggregated_;
  for (std::int64_t v = 0; v < block.num_dst; ++v) {
    float* row = pre_activation_.data() + v * out_dim_;
    const float* b = bias_.value.data();
    for (std::int64_t j = 0; j < out_dim_; ++j) row[j] += b[j];
  }
  if (apply_activation_) {
    relu_forward(pre_activation_, h_out);
  } else {
    h_out = pre_activation_;
  }
}

void ConvLayer::backward_gat(const LayerBlock& block, const Tensor& dh_out, Tensor& dh_in) {
  // Through activation and bias.
  Tensor d_pre;
  if (apply_activation_) {
    relu_backward(pre_activation_, dh_out, d_pre);
  } else {
    d_pre = dh_out;
  }
  for (std::int64_t v = 0; v < block.num_dst; ++v) {
    const float* row = d_pre.data() + v * out_dim_;
    float* db = bias_.grad.data();
    for (std::int64_t j = 0; j < out_dim_; ++j) db[j] += row[j];
  }

  // dZ accumulates three contributions: the weighted aggregation path and
  // the two attention-score paths (through a_l on sources, a_r on dsts).
  Tensor d_z(block.num_src(), out_dim_);
  std::vector<float> d_s(static_cast<std::size_t>(block.num_src()), 0.0f);
  std::vector<float> d_d(static_cast<std::size_t>(block.num_dst), 0.0f);

  for (std::int64_t v = 0; v < block.num_dst; ++v) {
    const EdgeId lo = block.indptr[static_cast<std::size_t>(v)];
    const EdgeId hi = block.indptr[static_cast<std::size_t>(v) + 1];
    const float* g = d_pre.data() + v * out_dim_;

    // d alpha for each incident edge (and self), plus the aggregation
    // path into dZ.
    const float alpha_self = gat_alpha_self_[static_cast<std::size_t>(v)];
    const float* z_self = gat_z_.data() + v * out_dim_;
    double d_alpha_self = 0.0;
    {
      float* dz = d_z.data() + v * out_dim_;
      for (std::int64_t j = 0; j < out_dim_; ++j) {
        d_alpha_self += static_cast<double>(z_self[j]) * g[j];
        dz[j] += alpha_self * g[j];
      }
    }
    double weighted_sum = alpha_self * d_alpha_self;  // sum_u alpha d_alpha
    std::vector<double> d_alpha(static_cast<std::size_t>(hi - lo));
    for (EdgeId e = lo; e < hi; ++e) {
      const auto u64 = block.indices[static_cast<std::size_t>(e)];
      const float alpha = gat_alpha_[static_cast<std::size_t>(e)];
      const float* z_u = gat_z_.data() + u64 * out_dim_;
      float* dz = d_z.data() + u64 * out_dim_;
      double da = 0.0;
      for (std::int64_t j = 0; j < out_dim_; ++j) {
        da += static_cast<double>(z_u[j]) * g[j];
        dz[j] += alpha * g[j];
      }
      d_alpha[static_cast<std::size_t>(e - lo)] = da;
      weighted_sum += alpha * da;
    }

    // Softmax backward: d e = alpha * (d alpha - sum alpha d alpha);
    // then through LeakyReLU into d_s (source half) and d_d (dst half).
    {
      const double de = alpha_self * (d_alpha_self - weighted_sum) *
                        leaky_slope_of(gat_escore_self_[static_cast<std::size_t>(v)]);
      d_s[static_cast<std::size_t>(v)] += static_cast<float>(de);
      d_d[static_cast<std::size_t>(v)] += static_cast<float>(de);
    }
    for (EdgeId e = lo; e < hi; ++e) {
      const auto u = static_cast<std::size_t>(block.indices[static_cast<std::size_t>(e)]);
      const double de = gat_alpha_[static_cast<std::size_t>(e)] *
                        (d_alpha[static_cast<std::size_t>(e - lo)] - weighted_sum) *
                        leaky_slope_of(gat_escore_[static_cast<std::size_t>(e)]);
      d_s[u] += static_cast<float>(de);
      d_d[static_cast<std::size_t>(v)] += static_cast<float>(de);
    }
  }

  // Score-path contributions: dZ_u += d_s[u] * a_l; dZ_v += d_d[v] * a_r;
  // and the attention-vector gradients.
  const float* al = attn_left_.value.data();
  const float* ar = attn_right_.value.data();
  float* dal = attn_left_.grad.data();
  float* dar = attn_right_.grad.data();
  for (std::int64_t u = 0; u < block.num_src(); ++u) {
    const float ds = d_s[static_cast<std::size_t>(u)];
    if (ds == 0.0f) continue;
    float* dz = d_z.data() + u * out_dim_;
    const float* z = gat_z_.data() + u * out_dim_;
    for (std::int64_t j = 0; j < out_dim_; ++j) {
      dz[j] += ds * al[j];
      dal[j] += ds * z[j];
    }
  }
  for (std::int64_t v = 0; v < block.num_dst; ++v) {
    const float dd = d_d[static_cast<std::size_t>(v)];
    if (dd == 0.0f) continue;
    float* dz = d_z.data() + v * out_dim_;
    const float* z = gat_z_.data() + v * out_dim_;
    for (std::int64_t j = 0; j < out_dim_; ++j) {
      dz[j] += dd * ar[j];
      dar[j] += dd * z[j];
    }
  }

  // Through the projection: dW += H^T dZ; dH = dZ W^T.
  gemm(gat_h_in_, /*trans_a=*/true, d_z, false, weight_.grad, 1.0f, 1.0f);
  dh_in.resize(block.num_src(), in_dim_);
  gemm(d_z, false, weight_.value, /*trans_b=*/true, dh_in);
}

void ConvLayer::forward(const LayerBlock& block, const Tensor& h_in, Tensor& h_out) {
  if (h_in.rows() != block.num_src() || h_in.cols() != in_dim_)
    throw std::invalid_argument("ConvLayer::forward: input shape mismatch");
  if (kind_ == ConvKind::kGat) {
    forward_gat(block, h_in, h_out);
    return;
  }
  if (kind_ == ConvKind::kGcn) {
    aggregate_gcn(block, h_in, aggregated_);
  } else {
    aggregate_sage(block, h_in, aggregated_);
  }
  linear_forward(aggregated_, weight_.value, bias_.value, pre_activation_);
  if (apply_activation_) {
    relu_forward(pre_activation_, h_out);
  } else {
    h_out = pre_activation_;
  }
}

void ConvLayer::backward(const LayerBlock& block, const Tensor& dh_out, Tensor& dh_in) {
  if (dh_out.rows() != block.num_dst || dh_out.cols() != out_dim_)
    throw std::invalid_argument("ConvLayer::backward: grad shape mismatch");
  if (kind_ == ConvKind::kGat) {
    backward_gat(block, dh_out, dh_in);
    return;
  }

  // Through the activation.
  Tensor d_pre;
  if (apply_activation_) {
    relu_backward(pre_activation_, dh_out, d_pre);
  } else {
    d_pre = dh_out;
  }

  // Parameter grads: dW += a^T dPre, db += colsum(dPre).
  gemm(aggregated_, /*trans_a=*/true, d_pre, /*trans_b=*/false, weight_.grad, 1.0f, 1.0f);
  for (std::int64_t i = 0; i < d_pre.rows(); ++i) {
    const float* row = d_pre.data() + i * out_dim_;
    float* b = bias_.grad.data();
    for (std::int64_t j = 0; j < out_dim_; ++j) b[j] += row[j];
  }

  // Through the update: dA = dPre W^T.
  Tensor d_agg(d_pre.rows(), weight_.value.rows());
  gemm(d_pre, false, weight_.value, /*trans_b=*/true, d_agg);

  // Through the aggregation.
  dh_in.resize(block.num_src(), in_dim_);
  dh_in.zero();
  if (kind_ == ConvKind::kGcn) {
    aggregate_gcn_backward(block, d_agg, dh_in);
  } else {
    aggregate_sage_backward(block, d_agg, dh_in);
  }
}

}  // namespace hyscale
