#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hyscale {

LossResult softmax_cross_entropy(const Tensor& logits, std::span<const int> labels) {
  if (static_cast<std::int64_t>(labels.size()) != logits.rows())
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  const std::int64_t n = logits.rows();
  const std::int64_t c = logits.cols();
  LossResult result;
  result.d_logits.resize(n, c);
  if (n == 0) return result;

  double total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const int label = labels[static_cast<std::size_t>(i)];
    if (label < 0 || label >= c)
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    const float* row = logits.data() + i * c;
    float* grad = result.d_logits.data() + i * c;

    float max_logit = row[0];
    std::int64_t argmax = 0;
    for (std::int64_t j = 1; j < c; ++j) {
      if (row[j] > max_logit) {
        max_logit = row[j];
        argmax = j;
      }
    }
    if (argmax == label) ++result.correct;

    double denom = 0.0;
    for (std::int64_t j = 0; j < c; ++j) denom += std::exp(static_cast<double>(row[j] - max_logit));
    const double log_denom = std::log(denom);
    total += -(static_cast<double>(row[label] - max_logit) - log_denom);

    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::int64_t j = 0; j < c; ++j) {
      const double p = std::exp(static_cast<double>(row[j] - max_logit)) / denom;
      grad[j] = static_cast<float>((p - (j == label ? 1.0 : 0.0)) * inv_n);
    }
  }
  result.loss = total / static_cast<double>(n);
  return result;
}

}  // namespace hyscale
