// Trainable parameter: value + gradient accumulator.
#pragma once

#include <string>

#include "tensor/tensor.hpp"

namespace hyscale {

struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param() = default;
  Param(std::string n, std::int64_t rows, std::int64_t cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}

  void zero_grad() { grad.zero(); }
  std::int64_t size() const { return value.size(); }
};

}  // namespace hyscale
