// Model checkpointing: save/restore all trainable parameters of a
// GnnModel to a versioned binary file.  Long-running large-graph
// training (days per run on billion-edge graphs) is not restartable
// without this.
#pragma once

#include <string>

#include "nn/model.hpp"

namespace hyscale {

/// Writes every parameter tensor (values only, not optimizer state);
/// throws std::runtime_error on I/O failure.
void save_checkpoint(const GnnModel& model, const std::string& path);

/// Restores parameters written by save_checkpoint into `model`.  The
/// model must have the same architecture (same parameter shapes);
/// mismatches throw std::runtime_error.
void load_checkpoint(GnnModel& model, const std::string& path);

}  // namespace hyscale
