// Softmax cross-entropy loss over the seed vertices.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.hpp"

namespace hyscale {

struct LossResult {
  double loss = 0.0;   ///< mean negative log-likelihood over the batch
  Tensor d_logits;     ///< gradient of the mean loss w.r.t. logits
  std::int64_t correct = 0;  ///< argmax == label count (for accuracy)
};

/// Numerically-stable softmax cross entropy.  `labels[i]` indexes the
/// class of row i; out-of-range labels throw.
LossResult softmax_cross_entropy(const Tensor& logits, std::span<const int> labels);

}  // namespace hyscale
