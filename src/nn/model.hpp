// L-layer GNN model: forward / backward over a mini-batch, parameter
// access for the Synchronizer, replica management for multi-trainer
// synchronous SGD.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/conv.hpp"
#include "sampling/minibatch.hpp"
#include "tensor/tensor.hpp"

namespace hyscale {

enum class GnnKind { kGcn, kSage, kGat };

/// Parses "gcn" / "sage" / "gat" (case-insensitive); throws on anything else.
GnnKind parse_gnn_kind(const std::string& name);
const char* gnn_kind_name(GnnKind kind);

struct ModelConfig {
  GnnKind kind = GnnKind::kSage;
  /// dims[0] = f0 (input), dims.back() = number of classes.  The paper
  /// uses 2 layers with hidden 256, i.e. dims = {f0, 256, f2}.
  std::vector<int> dims = {100, 256, 47};
  std::uint64_t seed = 1234;

  int num_layers() const { return static_cast<int>(dims.size()) - 1; }
};

class GnnModel {
 public:
  explicit GnnModel(const ModelConfig& config);

  /// Forward over a mini-batch.  `x` must be the gathered feature matrix
  /// over batch.input_nodes().  Returns logits with batch.seeds.size()
  /// rows.  State needed for backward is cached internally.
  Tensor forward(const MiniBatch& batch, const Tensor& x);

  /// Backward from d(logits).  Parameter gradients are *accumulated*;
  /// call zero_grad() first for a fresh iteration.
  void backward(const MiniBatch& batch, const Tensor& d_logits);

  void zero_grad();

  /// All trainable parameters, layer by layer (W0, b0, W1, b1, ...).
  std::vector<Param*> parameters();
  std::vector<const Param*> parameters() const;

  /// Copies parameter *values* from `other` (shapes must match) —
  /// used to replicate the model onto each trainer.
  void copy_values_from(const GnnModel& other);

  /// Total parameter count and model bytes (the Eq. 13 numerator).
  std::int64_t num_parameters() const;
  double model_bytes() const { return static_cast<double>(num_parameters()) * 4.0; }

  const ModelConfig& config() const { return config_; }

 private:
  ModelConfig config_;
  std::vector<ConvLayer> layers_;
  std::vector<Tensor> activations_;  ///< activations_[l] = input to layer l
};

}  // namespace hyscale
