// GNN convolution layers over bipartite mini-batch blocks.
//
// All layers follow the aggregate-update paradigm (Eqs. 1-2):
//   GCN  (Eq. 3): a_v = sum_{u in N(v) u {v}} h_u / sqrt(d(v) d(u));
//                 h'_v = act(a_v W + b)
//   SAGE (Eq. 4): a_v = h_v || mean_{u in N(v)} h_u;
//                 h'_v = act(a_v W + b)
//   GAT  (Velickovic et al., single head): z = h W;
//                 e_uv = LeakyReLU(a_l . z_u + a_r . z_v);
//                 alpha = softmax_v(e);  h'_v = act(sum alpha_uv z_u + b)
// GAT demonstrates the paper's claim that the aggregate-update design is
// model-agnostic (§II-A): attention is just a data-dependent aggregation
// operator, so the runtime, cost models and protocol are untouched.
// Degrees are the block-local sampled degrees plus the self loop — the
// standard mini-batch estimator (matching PyG's GCNConv on sampled
// blocks).  Forward caches everything backward needs; backward produces
// both parameter gradients and the gradient w.r.t. the layer input so
// layers chain.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/param.hpp"
#include "sampling/minibatch.hpp"
#include "tensor/tensor.hpp"

namespace hyscale {

enum class ConvKind { kGcn, kSage, kGat };

class ConvLayer {
 public:
  /// `apply_activation` is false for the output layer (raw logits).
  ConvLayer(ConvKind kind, std::int64_t in_dim, std::int64_t out_dim, bool apply_activation,
            std::uint64_t seed);

  /// h_in has block.num_src() rows; output has block.num_dst rows.
  void forward(const LayerBlock& block, const Tensor& h_in, Tensor& h_out);

  /// dh_out has block.num_dst rows; dh_in is resized to num_src rows.
  /// Accumulates into weight_.grad / bias_.grad (call zero_grad between
  /// iterations unless accumulation is intended).
  void backward(const LayerBlock& block, const Tensor& dh_out, Tensor& dh_in);

  ConvKind kind() const { return kind_; }
  std::int64_t in_dim() const { return in_dim_; }
  std::int64_t out_dim() const { return out_dim_; }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  const Param& weight() const { return weight_; }
  const Param& bias() const { return bias_; }

  /// Extra trainable parameters beyond (W, b): the attention vectors for
  /// GAT, empty for GCN/SAGE.
  std::vector<Param*> extra_params();
  std::vector<const Param*> extra_params() const;

  /// MAC count of the update GEMM for a batch with `num_dst` rows
  /// (the Eq. 12 numerator).
  double update_macs(std::int64_t num_dst) const {
    return static_cast<double>(num_dst) * static_cast<double>(weight_.value.rows()) *
           static_cast<double>(weight_.value.cols());
  }

 private:
  void aggregate_gcn(const LayerBlock& block, const Tensor& h_in, Tensor& out) const;
  void aggregate_gcn_backward(const LayerBlock& block, const Tensor& dout, Tensor& dh_in) const;
  void aggregate_sage(const LayerBlock& block, const Tensor& h_in, Tensor& out) const;
  void aggregate_sage_backward(const LayerBlock& block, const Tensor& dout, Tensor& dh_in) const;
  void forward_gat(const LayerBlock& block, const Tensor& h_in, Tensor& h_out);
  void backward_gat(const LayerBlock& block, const Tensor& dh_out, Tensor& dh_in);

  ConvKind kind_;
  std::int64_t in_dim_;
  std::int64_t out_dim_;
  bool apply_activation_;
  Param weight_;  ///< [agg_dim, out_dim]; agg_dim = in (GCN/GAT) or 2*in (SAGE)
  Param bias_;    ///< [1, out_dim]
  Param attn_left_;   ///< GAT only: a_l, [1, out_dim]
  Param attn_right_;  ///< GAT only: a_r, [1, out_dim]

  // Forward caches for the most recent batch.
  Tensor aggregated_;     ///< a_v, num_dst x agg_dim
  Tensor pre_activation_; ///< a_v W + b before act
  // GAT forward caches.
  Tensor gat_h_in_;                   ///< layer input (needed for dW)
  Tensor gat_z_;                      ///< h_in W, num_src x out_dim
  std::vector<float> gat_alpha_;      ///< attention coefficient per edge slot
  std::vector<float> gat_alpha_self_; ///< self-loop attention per dst
  std::vector<float> gat_escore_;     ///< pre-softmax LeakyReLU'd scores per edge
  std::vector<float> gat_escore_self_;
};

}  // namespace hyscale
