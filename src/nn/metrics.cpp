#include "nn/metrics.hpp"

#include <stdexcept>

namespace hyscale {

ClassificationReport classification_report(const Tensor& logits, std::span<const int> labels) {
  if (static_cast<std::int64_t>(labels.size()) != logits.rows())
    throw std::invalid_argument("classification_report: label count mismatch");
  ClassificationReport report;
  const std::int64_t classes = logits.cols();
  report.per_class.assign(static_cast<std::size_t>(classes), ClassStats{});
  if (logits.rows() == 0) return report;

  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < logits.rows(); ++i) {
    const int label = labels[static_cast<std::size_t>(i)];
    if (label < 0 || label >= classes)
      throw std::invalid_argument("classification_report: label out of range");
    const float* row = logits.data() + i * classes;
    std::int64_t predicted = 0;
    for (std::int64_t j = 1; j < classes; ++j) {
      if (row[j] > row[predicted]) predicted = j;
    }
    if (predicted == label) {
      ++correct;
      ++report.per_class[static_cast<std::size_t>(label)].true_positive;
    } else {
      ++report.per_class[static_cast<std::size_t>(predicted)].false_positive;
      ++report.per_class[static_cast<std::size_t>(label)].false_negative;
    }
  }
  report.accuracy = static_cast<double>(correct) / static_cast<double>(logits.rows());
  double f1_sum = 0.0;
  for (const ClassStats& stats : report.per_class) f1_sum += stats.f1();
  report.macro_f1 = f1_sum / static_cast<double>(classes);
  return report;
}

double accuracy(const Tensor& logits, std::span<const int> labels) {
  if (static_cast<std::int64_t>(labels.size()) != logits.rows())
    throw std::invalid_argument("accuracy: label count mismatch");
  if (logits.rows() == 0) return 0.0;
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < logits.rows(); ++i) {
    const float* row = logits.data() + i * logits.cols();
    std::int64_t argmax = 0;
    for (std::int64_t j = 1; j < logits.cols(); ++j) {
      if (row[j] > row[argmax]) argmax = j;
    }
    if (argmax == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(logits.rows());
}

}  // namespace hyscale
