// Optimizers over Param sets.  Synchronous SGD (§II-B) averages
// gradients across trainers *before* stepping, so the optimizer only
// ever sees one (averaged) gradient per parameter per iteration —
// identical to single-device large-batch training.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/param.hpp"

namespace hyscale {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update using each param's current .grad.
  virtual void step(const std::vector<Param*>& params) = 0;
};

class SgdOptimizer final : public Optimizer {
 public:
  explicit SgdOptimizer(double lr, double momentum = 0.0, double weight_decay = 0.0);
  void step(const std::vector<Param*>& params) override;

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::vector<Tensor> velocity_;  ///< lazily sized per param
};

class AdamOptimizer final : public Optimizer {
 public:
  explicit AdamOptimizer(double lr, double beta1 = 0.9, double beta2 = 0.999,
                         double epsilon = 1e-8);
  void step(const std::vector<Param*>& params) override;

 private:
  double lr_, beta1_, beta2_, epsilon_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace hyscale
