#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace hyscale {

SgdOptimizer::SgdOptimizer(double lr, double momentum, double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
  if (lr <= 0.0) throw std::invalid_argument("SgdOptimizer: lr must be positive");
}

void SgdOptimizer::step(const std::vector<Param*>& params) {
  if (velocity_.size() < params.size()) velocity_.resize(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param& p = *params[i];
    Tensor& vel = velocity_[i];
    if (vel.rows() != p.value.rows() || vel.cols() != p.value.cols())
      vel.resize(p.value.rows(), p.value.cols());
    float* value = p.value.data();
    const float* grad = p.grad.data();
    float* v = vel.data();
    const std::int64_t n = p.value.size();
    for (std::int64_t j = 0; j < n; ++j) {
      const double g = grad[j] + weight_decay_ * value[j];
      const double vj = momentum_ * v[j] + g;
      v[j] = static_cast<float>(vj);
      value[j] -= static_cast<float>(lr_ * vj);
    }
  }
}

AdamOptimizer::AdamOptimizer(double lr, double beta1, double beta2, double epsilon)
    : lr_(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {
  if (lr <= 0.0) throw std::invalid_argument("AdamOptimizer: lr must be positive");
}

void AdamOptimizer::step(const std::vector<Param*>& params) {
  if (m_.size() < params.size()) {
    m_.resize(params.size());
    v_.resize(params.size());
  }
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param& p = *params[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    if (m.rows() != p.value.rows() || m.cols() != p.value.cols()) {
      m.resize(p.value.rows(), p.value.cols());
      v.resize(p.value.rows(), p.value.cols());
    }
    float* value = p.value.data();
    const float* grad = p.grad.data();
    float* pm = m.data();
    float* pv = v.data();
    const std::int64_t n = p.value.size();
    for (std::int64_t j = 0; j < n; ++j) {
      const double g = grad[j];
      pm[j] = static_cast<float>(beta1_ * pm[j] + (1.0 - beta1_) * g);
      pv[j] = static_cast<float>(beta2_ * pv[j] + (1.0 - beta2_) * g * g);
      const double m_hat = pm[j] / bias1;
      const double v_hat = pv[j] / bias2;
      value[j] -= static_cast<float>(lr_ * m_hat / (std::sqrt(v_hat) + epsilon_));
    }
  }
}

}  // namespace hyscale
