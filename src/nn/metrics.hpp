// Classification metrics: accuracy, per-class precision/recall/F1 and
// the macro-F1 the OGB leaderboards report alongside accuracy.
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace hyscale {

/// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, std::span<const int> labels);

struct ClassStats {
  std::int64_t true_positive = 0;
  std::int64_t false_positive = 0;
  std::int64_t false_negative = 0;

  double precision() const {
    const std::int64_t denom = true_positive + false_positive;
    return denom == 0 ? 0.0 : static_cast<double>(true_positive) / static_cast<double>(denom);
  }
  double recall() const {
    const std::int64_t denom = true_positive + false_negative;
    return denom == 0 ? 0.0 : static_cast<double>(true_positive) / static_cast<double>(denom);
  }
  double f1() const {
    const double p = precision(), r = recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

struct ClassificationReport {
  double accuracy = 0.0;
  double macro_f1 = 0.0;  ///< unweighted mean of per-class F1
  std::vector<ClassStats> per_class;
};

/// Full report from logits; `num_classes` defaults to logits.cols().
ClassificationReport classification_report(const Tensor& logits, std::span<const int> labels);

}  // namespace hyscale
