#include "nn/checkpoint.hpp"

#include <cstdint>
#include <fstream>

namespace hyscale {

namespace {
constexpr std::uint64_t kMagic = 0x48595343'4B505401ULL;  // "HYSC" "KPT" v1
}

void save_checkpoint(const GnnModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);
  const auto params = model.parameters();
  const std::uint64_t magic = kMagic;
  const auto count = static_cast<std::uint64_t>(params.size());
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Param* param : params) {
    const std::int64_t rows = param->value.rows();
    const std::int64_t cols = param->value.cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(param->value.data()),
              static_cast<std::streamsize>(param->value.size() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("save_checkpoint: write failed for " + path);
}

void load_checkpoint(GnnModel& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  std::uint64_t magic = 0, count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagic) throw std::runtime_error("load_checkpoint: bad header in " + path);
  auto params = model.parameters();
  if (count != params.size())
    throw std::runtime_error("load_checkpoint: parameter count mismatch in " + path);
  for (Param* param : params) {
    std::int64_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    if (!in || rows != param->value.rows() || cols != param->value.cols())
      throw std::runtime_error("load_checkpoint: shape mismatch in " + path);
    in.read(reinterpret_cast<char*>(param->value.data()),
            static_cast<std::streamsize>(param->value.size() * sizeof(float)));
  }
  if (!in) throw std::runtime_error("load_checkpoint: truncated file " + path);
}

}  // namespace hyscale
