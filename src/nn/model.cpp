#include "nn/model.hpp"

#include <algorithm>
#include <stdexcept>

namespace hyscale {

GnnKind parse_gnn_kind(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "gcn") return GnnKind::kGcn;
  if (lower == "sage" || lower == "graphsage") return GnnKind::kSage;
  if (lower == "gat") return GnnKind::kGat;
  throw std::invalid_argument("parse_gnn_kind: unknown model '" + name + "'");
}

const char* gnn_kind_name(GnnKind kind) {
  switch (kind) {
    case GnnKind::kGcn: return "GCN";
    case GnnKind::kSage: return "GraphSAGE";
    case GnnKind::kGat: return "GAT";
  }
  return "?";
}

GnnModel::GnnModel(const ModelConfig& config) : config_(config) {
  if (config.dims.size() < 2) throw std::invalid_argument("GnnModel: need >= 2 dims");
  const int num_layers = config.num_layers();
  ConvKind conv = ConvKind::kGcn;
  if (config.kind == GnnKind::kSage) conv = ConvKind::kSage;
  if (config.kind == GnnKind::kGat) conv = ConvKind::kGat;
  layers_.reserve(static_cast<std::size_t>(num_layers));
  for (int l = 0; l < num_layers; ++l) {
    const bool activation = l + 1 < num_layers;  // raw logits at the top
    layers_.emplace_back(conv, config.dims[static_cast<std::size_t>(l)],
                         config.dims[static_cast<std::size_t>(l) + 1], activation,
                         config.seed + static_cast<std::uint64_t>(l) * 1000003ULL);
  }
}

Tensor GnnModel::forward(const MiniBatch& batch, const Tensor& x) {
  if (batch.num_layers() != static_cast<int>(layers_.size()))
    throw std::invalid_argument("GnnModel::forward: batch layer count mismatch");
  activations_.assign(layers_.size() + 1, Tensor());
  activations_[0] = x;
  Tensor h = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Tensor h_next;
    layers_[l].forward(batch.blocks[l], h, h_next);
    // The next block's src set is the prefix of this block's dst set, so
    // the rows already line up; truncate when the next block is smaller.
    if (l + 1 < layers_.size()) {
      const std::int64_t need = batch.blocks[l + 1].num_src();
      if (h_next.rows() < need)
        throw std::invalid_argument("GnnModel::forward: block chaining broken");
      if (h_next.rows() > need) {
        Tensor trimmed(need, h_next.cols());
        std::copy(h_next.data(), h_next.data() + need * h_next.cols(), trimmed.data());
        h_next = std::move(trimmed);
      }
    }
    activations_[l + 1] = h_next;
    h = std::move(h_next);
  }
  return h;
}

void GnnModel::backward(const MiniBatch& batch, const Tensor& d_logits) {
  if (activations_.size() != layers_.size() + 1)
    throw std::logic_error("GnnModel::backward: call forward first");
  Tensor grad = d_logits;
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const LayerBlock& block = batch.blocks[li];
    // grad currently has as many rows as the *consumer* of this layer's
    // output needed; pad with zeros up to block.num_dst (vertices sampled
    // but unused downstream receive no gradient).
    if (grad.rows() < block.num_dst) {
      Tensor padded(block.num_dst, grad.cols());
      std::copy(grad.data(), grad.data() + grad.size(), padded.data());
      grad = std::move(padded);
    }
    Tensor d_in;
    layers_[li].backward(block, grad, d_in);
    grad = std::move(d_in);
  }
}

void GnnModel::zero_grad() {
  for (auto& layer : layers_) {
    layer.weight().zero_grad();
    layer.bias().zero_grad();
    for (Param* extra : layer.extra_params()) extra->zero_grad();
  }
}

std::vector<Param*> GnnModel::parameters() {
  std::vector<Param*> params;
  params.reserve(layers_.size() * 4);
  for (auto& layer : layers_) {
    params.push_back(&layer.weight());
    params.push_back(&layer.bias());
    for (Param* extra : layer.extra_params()) params.push_back(extra);
  }
  return params;
}

std::vector<const Param*> GnnModel::parameters() const {
  std::vector<const Param*> params;
  params.reserve(layers_.size() * 4);
  for (const auto& layer : layers_) {
    params.push_back(&layer.weight());
    params.push_back(&layer.bias());
    for (const Param* extra : layer.extra_params()) params.push_back(extra);
  }
  return params;
}

void GnnModel::copy_values_from(const GnnModel& other) {
  auto dst = parameters();
  auto src = other.parameters();
  if (dst.size() != src.size())
    throw std::invalid_argument("GnnModel::copy_values_from: layer mismatch");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    if (dst[i]->value.rows() != src[i]->value.rows() ||
        dst[i]->value.cols() != src[i]->value.cols())
      throw std::invalid_argument("GnnModel::copy_values_from: shape mismatch");
    std::copy(src[i]->value.data(), src[i]->value.data() + src[i]->value.size(),
              dst[i]->value.data());
  }
}

std::int64_t GnnModel::num_parameters() const {
  std::int64_t total = 0;
  for (const auto* p : parameters()) total += p->size();
  return total;
}

}  // namespace hyscale
