#include "baselines/baseline.hpp"

namespace hyscale {

ModelConfig baseline_model_config(const BaselineWorkload& workload) {
  ModelConfig config;
  config.kind = workload.model;
  const int num_layers = static_cast<int>(workload.fanouts.size());
  config.dims.clear();
  config.dims.push_back(workload.dataset.f0);
  for (int l = 1; l < num_layers; ++l) config.dims.push_back(workload.hidden_dim);
  config.dims.push_back(workload.dataset.f2);
  return config;
}

}  // namespace hyscale
