// DistDGLv2 (Zheng et al., KDD'22) — distributed hybrid CPU/GPU training
// on a partitioned graph (Table V: 8 nodes x (96 vCPU + 8x T4), sample
// (15,10,5), hidden 256).
//
// Architectural characteristics the model captures (§VI-E2):
//   * METIS-partitioned graph; sampling a mini-batch touches remote
//     partitions, so halo features cross the cluster network every
//     iteration (the edge-cut fraction drives the remote share);
//   * hybrid CPU+GPU execution with a STATIC task mapping ("which can be
//     inefficient") — the CPUs help but nothing rebalances at runtime;
//   * with 64 T4 GPUs its raw throughput on medium graphs beats a
//     4-FPGA single node (HyScale reaches 0.45x of it, Table VI) but it
//     pays network overhead on billion-edge graphs.
#pragma once

#include "baselines/baseline.hpp"
#include "device/spec.hpp"

namespace hyscale {

class DistDglBaseline {
 public:
  DistDglBaseline();

  BaselineResult evaluate(const BaselineWorkload& workload) const;

  /// Fraction of sampled input vertices owned by a remote partition.
  /// Mini-batch frontiers cross METIS boundaries far more often than the
  /// raw edge cut suggests on power-law graphs; 50% remote inputs is the
  /// DistDGL-reported range for 8 partitions at (15,10,5) fanouts.
  static constexpr double kRemoteFraction = 0.5;
  /// T4 gather efficiency: DistDGLv2 trains on locality-optimised METIS
  /// partitions whose frontiers largely fit the T4's L2, so its gathers
  /// retain an order of magnitude more bandwidth than monolithic-graph
  /// training; calibrated to DistDGLv2's reported epoch times (Table V).
  static constexpr double kGpuGatherEfficiency = 0.06;
  static constexpr double kNetworkGbps = 10.0;   ///< 100 GbE EC2-style fabric
  static constexpr Seconds kNetworkLatency = 30e-6;
  static constexpr Seconds kFrameworkOverhead = 8e-3;
  static constexpr double kSamplerEdgesPerSec = 25e6;  ///< 96 vCPU sampler

  const PlatformSpec& platform() const { return platform_; }
  int num_nodes() const { return 8; }

 private:
  PlatformSpec platform_;  ///< one node
};

}  // namespace hyscale
