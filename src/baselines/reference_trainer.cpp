#include "baselines/reference_trainer.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"

namespace hyscale {

ReferenceTrainer::ReferenceTrainer(const Dataset& dataset, ReferenceTrainerConfig config)
    : dataset_(dataset), config_(std::move(config)) {
  ModelConfig model_config;
  model_config.kind = config_.model_kind;
  model_config.dims = {dataset_.info.f0, dataset_.info.f1, dataset_.info.f2};
  while (static_cast<int>(model_config.dims.size()) - 1 <
         static_cast<int>(config_.fanouts.size())) {
    model_config.dims.insert(model_config.dims.begin() + 1, dataset_.info.f1);
  }
  model_config.seed = config_.seed;
  model_ = std::make_unique<GnnModel>(model_config);
  optimizer_ = std::make_unique<SgdOptimizer>(config_.learning_rate);
  sampler_ = std::make_unique<NeighborSampler>(dataset_.graph, config_.fanouts, config_.seed);
  loader_ = std::make_unique<FeatureLoader>(dataset_.features);
}

double ReferenceTrainer::train_on_seeds(const std::vector<VertexId>& seeds) {
  MiniBatch batch = sampler_->sample(seeds);
  Tensor x;
  loader_->load(batch, x);
  model_->zero_grad();
  const Tensor logits = model_->forward(batch, x);
  std::vector<int> labels(batch.seeds.size());
  for (std::size_t i = 0; i < batch.seeds.size(); ++i) {
    labels[i] = dataset_.labels[static_cast<std::size_t>(batch.seeds[i])];
  }
  LossResult loss = softmax_cross_entropy(logits, labels);
  model_->backward(batch, loss.d_logits);
  auto params = model_->parameters();
  optimizer_->step(params);
  return loss.loss;
}

ReferenceEpochReport ReferenceTrainer::train_epoch() {
  ReferenceEpochReport report;
  std::vector<VertexId> order = dataset_.train_ids;
  Xoshiro256 rng(config_.seed + 5150 + (shuffle_round_++));
  for (std::size_t i = order.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.bounded(i));
    std::swap(order[i - 1], order[j]);
  }

  double loss_sum = 0.0;
  double acc_sum = 0.0;
  for (std::size_t start = 0; start < order.size();
       start += static_cast<std::size_t>(config_.batch_size)) {
    const std::size_t end =
        std::min(order.size(), start + static_cast<std::size_t>(config_.batch_size));
    std::vector<VertexId> seeds(order.begin() + static_cast<std::ptrdiff_t>(start),
                                order.begin() + static_cast<std::ptrdiff_t>(end));
    loss_sum += train_on_seeds(seeds);
    ++report.iterations;
  }
  report.loss = report.iterations ? loss_sum / static_cast<double>(report.iterations) : 0.0;
  report.train_accuracy = evaluate_accuracy();
  (void)acc_sum;
  return report;
}

double ReferenceTrainer::evaluate_accuracy(std::int64_t max_seeds) {
  const auto count = std::min<std::int64_t>(
      max_seeds, static_cast<std::int64_t>(dataset_.train_ids.size()));
  std::vector<VertexId> seeds(dataset_.train_ids.begin(),
                              dataset_.train_ids.begin() + static_cast<std::ptrdiff_t>(count));
  MiniBatch batch = sampler_->sample(seeds);
  Tensor x;
  loader_->load(batch, x);
  const Tensor logits = model_->forward(batch, x);
  std::vector<int> labels(batch.seeds.size());
  for (std::size_t i = 0; i < batch.seeds.size(); ++i) {
    labels[i] = dataset_.labels[static_cast<std::size_t>(batch.seeds[i])];
  }
  return accuracy(logits, labels);
}

}  // namespace hyscale
