#include "baselines/distdgl.hpp"

#include <algorithm>

#include "device/cost_model.hpp"
#include "device/link.hpp"
#include "runtime/perf_model.hpp"
#include "sampling/neighbor_sampler.hpp"

namespace hyscale {

DistDglBaseline::DistDglBaseline() {
  platform_.name = "8 nodes x (96 vCPU + 8x T4) (DistDGLv2)";
  platform_.cpu = {"EC2 96-vCPU host", DeviceKind::kCpu, 3.0, 150.0, 64.0, 3.0, 0.0};
  platform_.num_sockets = 1;
  platform_.cpu_threads = 96;
  platform_.accelerators.assign(8, t4_spec());
  platform_.pcie_bw_gbps = 12.0;
  platform_.cpu_mem_bw_gbps = 150.0;
}

BaselineResult DistDglBaseline::evaluate(const BaselineWorkload& workload) const {
  const int nodes = num_nodes();
  const int gpus_per_node = platform_.num_accelerators();
  const int total_gpus = nodes * gpus_per_node;
  const ModelConfig model = baseline_model_config(workload);
  const BatchStats stats = NeighborSampler::expected_stats(
      workload.batch_per_device, workload.fanouts, workload.dataset.mean_degree(),
      workload.dataset.num_vertices);

  BaselineResult result;
  result.system = "DistDGLv2";
  result.platform_tflops = platform_.total_tflops() * nodes;

  result.per_iteration.sample =
      static_cast<double>(stats.total_edges()) / kSamplerEdgesPerSec;

  const double feat_bytes =
      static_cast<double>(stats.input_vertices()) * workload.dataset.f0 * 4.0;
  // Remote halo features cross the network; local ones come from DRAM.
  const double net_bw = kNetworkGbps * 1e9;
  result.per_iteration.network =
      kNetworkLatency + feat_bytes * kRemoteFraction / net_bw;
  HostMemoryChannel host(platform_.cpu_mem_bw_gbps);
  result.per_iteration.load =
      host.load_time(feat_bytes * (1.0 - kRemoteFraction) * gpus_per_node,
                     platform_.cpu_threads / 2);
  PcieLink pcie(platform_.pcie_bw_gbps);
  result.per_iteration.transfer =
      pcie.transfer_time(feat_bytes + static_cast<double>(stats.total_edges()) * 8.0);

  // Hybrid execution, static split: DistDGLv2 offloads propagation to the
  // GPUs and keeps sampling/gather on the CPUs (its CPUs contribute via
  // the service processes, folded into the sampler/loader rates above).
  GpuTrainerModel gpu(platform_.accelerators.front(), kGpuGatherEfficiency);
  result.per_iteration.train = gpu.propagation_time(stats, model);

  result.per_iteration.sync = kNetworkLatency + 2.0 * model_param_bytes(model) / net_bw;
  result.per_iteration.framework = kFrameworkOverhead;

  const std::int64_t total_batch = workload.batch_per_device * total_gpus;
  result.iterations = static_cast<long>(
      (workload.dataset.train_count + static_cast<std::uint64_t>(total_batch) - 1) /
      static_cast<std::uint64_t>(total_batch));
  // DistDGLv2 pipelines sampling/loading against training; network halo
  // fetch sits with loading on the critical path of batch preparation.
  const Seconds iteration =
      std::max({result.per_iteration.sample,
                result.per_iteration.load + result.per_iteration.network +
                    result.per_iteration.transfer,
                result.per_iteration.train}) +
      result.per_iteration.sync + result.per_iteration.framework;
  result.epoch_time = iteration * static_cast<double>(result.iterations);
  return result;
}

}  // namespace hyscale
