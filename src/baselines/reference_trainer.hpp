// Single-device reference trainer: plain sequential mini-batch SGD with
// real numerics — no hybrid split, no simulation.
//
// Serves two purposes:
//   * ground truth for the §II-B equivalence property ("training on 4
//     GPUs with mini-batch size 1024 is equivalent to training on 1 GPU
//     with mini-batch size 4096"): tests drive HybridTrainer and
//     ReferenceTrainer with the same seeds and compare weights;
//   * a convergence harness for the examples.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/datasets.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "runtime/feature_loader.hpp"
#include "sampling/neighbor_sampler.hpp"

namespace hyscale {

struct ReferenceTrainerConfig {
  GnnKind model_kind = GnnKind::kSage;
  std::vector<int> fanouts = {25, 10};
  std::int64_t batch_size = 256;
  double learning_rate = 0.1;
  std::uint64_t seed = 1;
};

struct ReferenceEpochReport {
  double loss = 0.0;
  double train_accuracy = 0.0;
  long iterations = 0;
};

class ReferenceTrainer {
 public:
  ReferenceTrainer(const Dataset& dataset, ReferenceTrainerConfig config);

  /// One pass over the shuffled training set.
  ReferenceEpochReport train_epoch();

  /// Runs one iteration on explicit seeds (for equivalence tests);
  /// returns the loss.
  double train_on_seeds(const std::vector<VertexId>& seeds);

  GnnModel& model() { return *model_; }
  double evaluate_accuracy(std::int64_t max_seeds = 512);

 private:
  const Dataset& dataset_;
  ReferenceTrainerConfig config_;
  std::unique_ptr<GnnModel> model_;
  std::unique_ptr<SgdOptimizer> optimizer_;
  std::unique_ptr<NeighborSampler> sampler_;
  std::unique_ptr<FeatureLoader> loader_;
  std::uint64_t shuffle_round_ = 0;
};

}  // namespace hyscale
