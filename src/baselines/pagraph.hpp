// PaGraph (Lin et al., SoCC'20) — single-node multi-GPU training with
// computation-aware static feature caching (Table V: 2x Xeon Platinum
// 8163 + 8x V100, sample (25,10), hidden 256).
//
// Architectural characteristics the model captures (§VI-E2):
//   * the hot vertices' features are cached in spare GPU memory; hits
//     are served at GDDR speed, misses cross PCIe;
//   * on graphs whose features exceed the cache (ogbn-papers100M), the
//     miss traffic dominates — "the PCIe communication overhead becomes
//     large ... since cache miss occurs frequently";
//   * no hybrid training: the host CPUs only sample and fill misses.
// The cache hit-rate model assumes degree-proportional access frequency
// (PaGraph caches by out-degree) over a Zipf-like degree distribution,
// which is what its own evaluation reports (~80-90% hit with 20% cached).
#pragma once

#include "baselines/baseline.hpp"
#include "device/spec.hpp"

namespace hyscale {

class PaGraphBaseline {
 public:
  PaGraphBaseline();

  BaselineResult evaluate(const BaselineWorkload& workload) const;

  /// Fraction of each V100's 32 GB left for the feature cache after
  /// model, activations and workspace.
  static constexpr double kCacheFractionOfDeviceMem = 0.5;
  /// Hit-rate skew exponent: hit_rate = cached_fraction^kSkew captures
  /// that caching the top-degree d% of vertices covers far more than d%
  /// of accesses on power-law graphs (kSkew < 1).
  static constexpr double kHitRateSkew = 0.25;
  static constexpr Seconds kFrameworkOverhead = 12e-3;
  static constexpr double kSamplerEdgesPerSec = 12e6;  ///< its parallel sampler

  const PlatformSpec& platform() const { return platform_; }

 private:
  PlatformSpec platform_;
};

}  // namespace hyscale
