// Common interface for the comparison systems of §VI-E.
//
// HyScale-GNN is compared against four systems the authors did not ship:
// a PyTorch-Geometric multi-GPU baseline (their own), PaGraph, P3 and
// DistDGLv2.  None of these can be run here (no GPUs, no clusters), so
// each is reproduced as an *architectural epoch-time model*: the
// components that dominate each system in the paper's analysis (PyG's
// serialized Python pipeline, PaGraph's cache misses over PCIe, P3's and
// DistDGL's inter-node traffic) are modelled explicitly from the same
// device specs and dataset statistics that drive the HyScale simulator.
// Calibration constants are documented at their definitions; the
// reproduction criterion is the *shape* of Tables VI/VII and Fig. 10,
// not absolute seconds.
#pragma once

#include <string>

#include "common/timer.hpp"
#include "graph/datasets.hpp"
#include "nn/model.hpp"

namespace hyscale {

struct BaselineBreakdown {
  Seconds sample = 0.0;
  Seconds load = 0.0;
  Seconds transfer = 0.0;       ///< PCIe (features and/or gradients)
  Seconds network = 0.0;        ///< inter-node traffic (distributed systems)
  Seconds train = 0.0;
  Seconds framework = 0.0;      ///< per-iteration framework overhead
  Seconds sync = 0.0;

  Seconds iteration() const {
    return sample + load + transfer + network + train + framework + sync;
  }
};

struct BaselineResult {
  std::string system;
  Seconds epoch_time = 0.0;
  long iterations = 0;
  BaselineBreakdown per_iteration;
  double platform_tflops = 0.0;  ///< for the Table VII normalisation

  /// Table VII metric: epoch time x platform peak TFLOPS.
  double normalized_epoch() const { return epoch_time * platform_tflops; }
};

/// Workload description shared by every baseline evaluation.
struct BaselineWorkload {
  DatasetInfo dataset;
  GnnKind model = GnnKind::kSage;
  std::vector<int> fanouts = {25, 10};
  int hidden_dim = 256;
  std::int64_t batch_per_device = 1024;
};

/// Builds the ModelConfig a baseline trains (dims from dataset + hidden).
ModelConfig baseline_model_config(const BaselineWorkload& workload);

}  // namespace hyscale
