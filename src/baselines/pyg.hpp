// PyTorch-Geometric multi-GPU baseline (§VI-E1, the 1x reference of
// Fig. 10).
//
// Architectural characteristics the model captures:
//   * GPU-only training — the host CPUs only sample and load (no hybrid);
//   * the per-iteration pipeline is SERIALIZED: the DataLoader produces a
//     batch, features are gathered, transferred, then the GPUs train —
//     stages do not overlap across iterations the way HyScale's software
//     pipeline does;
//   * a per-iteration framework overhead (Python dispatch, autograd graph
//     construction, DataLoader IPC) that is independent of batch size.
#pragma once

#include "baselines/baseline.hpp"
#include "device/spec.hpp"

namespace hyscale {

class PygMultiGpuBaseline {
 public:
  explicit PygMultiGpuBaseline(PlatformSpec platform);

  BaselineResult evaluate(const BaselineWorkload& workload) const;

  /// PyG's torch-based NeighborSampler throughput per DataLoader worker
  /// (edges/s); well below this repository's native sampler.
  static constexpr double kSamplerEdgesPerSecPerWorker = 5e6;
  static constexpr int kWorkersPerGpu = 8;
  /// Per-iteration Python/DataLoader/autograd overhead.  Calibrated so
  /// the baseline's absolute epoch times land near Fig. 10's reference
  /// bars (products ~4 s, papers100M ~20 s with 4 A5000s) while keeping
  /// GPU propagation — not overhead — the dominant term, as the paper's
  /// speedup ratios imply.
  static constexpr Seconds kFrameworkOverhead = 12e-3;

 private:
  PlatformSpec platform_;
};

}  // namespace hyscale
