// P3 (Gandhi & Iyer, OSDI'21) — distributed GNN training with intra-layer
// model/data hybrid parallelism (Table V: 4 nodes x (1 Xeon E5-2690 +
// 4 P100), sample (25,10), hidden 32).
//
// Architectural characteristics the model captures (§VI-E2):
//   * the graph AND features are hash-partitioned across nodes; P3 avoids
//     shipping raw features by pushing layer-1 *partial activations*
//     instead (its "push-pull parallelism"), so inter-node traffic scales
//     with |V^1| x hidden rather than |V^0| x f0 — that is why P3 runs
//     with hidden = 16/32;
//   * every iteration still all-to-alls those partial activations across
//     the cluster network, the overhead HyScale's single node avoids;
//   * gradient synchronisation crosses the network every iteration.
#pragma once

#include "baselines/baseline.hpp"
#include "device/spec.hpp"

namespace hyscale {

class P3Baseline {
 public:
  P3Baseline();

  BaselineResult evaluate(const BaselineWorkload& workload) const;

  /// Cluster interconnect effective bandwidth per node (10 GbE testbed).
  static constexpr double kNetworkGbps = 1.1;
  static constexpr Seconds kNetworkLatency = 50e-6;
  static constexpr Seconds kFrameworkOverhead = 10e-3;
  static constexpr double kSamplerEdgesPerSec = 10e6;

  const PlatformSpec& platform() const { return platform_; }
  int num_nodes() const { return 4; }

 private:
  PlatformSpec platform_;  ///< one node
};

}  // namespace hyscale
