#include "baselines/pagraph.hpp"

#include <algorithm>
#include <cmath>

#include "device/cost_model.hpp"
#include "device/link.hpp"
#include "runtime/perf_model.hpp"
#include "sampling/neighbor_sampler.hpp"

namespace hyscale {

PaGraphBaseline::PaGraphBaseline() {
  platform_.name = "2x Xeon 8163 + 8x V100 (PaGraph)";
  platform_.cpu = xeon8163_spec();
  platform_.num_sockets = 2;
  platform_.cpu_threads = 96;
  platform_.accelerators.assign(8, v100_spec());
  platform_.pcie_bw_gbps = 12.0;  // PCIe 3.0 x16 effective
  platform_.cpu_mem_bw_gbps = 119.0;
}

BaselineResult PaGraphBaseline::evaluate(const BaselineWorkload& workload) const {
  const int num_gpus = platform_.num_accelerators();
  const ModelConfig model = baseline_model_config(workload);
  const BatchStats stats = NeighborSampler::expected_stats(
      workload.batch_per_device, workload.fanouts, workload.dataset.mean_degree(),
      workload.dataset.num_vertices);

  BaselineResult result;
  result.system = "PaGraph";
  result.platform_tflops = platform_.total_tflops();

  // ---- Cache model: fraction of vertices whose features fit on-device.
  const double cache_bytes =
      platform_.accelerators.front().device_mem_gb * 1e9 * kCacheFractionOfDeviceMem;
  const double bytes_per_vertex = workload.dataset.f0 * 4.0;
  const double cached_vertices = cache_bytes / bytes_per_vertex;
  const double cached_fraction =
      std::min(1.0, cached_vertices / static_cast<double>(workload.dataset.num_vertices));
  const double hit_rate = std::pow(cached_fraction, kHitRateSkew);

  // ---- Per-iteration components.
  result.per_iteration.sample =
      static_cast<double>(stats.total_edges()) / kSamplerEdgesPerSec;

  const double feat_bytes =
      static_cast<double>(stats.input_vertices()) * workload.dataset.f0 * 4.0;
  const double miss_bytes = feat_bytes * (1.0 - hit_rate);
  HostMemoryChannel host(platform_.cpu_mem_bw_gbps);
  result.per_iteration.load = host.load_time(miss_bytes * num_gpus, platform_.cpu_threads / 2);
  PcieLink pcie(platform_.pcie_bw_gbps);
  result.per_iteration.transfer =
      pcie.transfer_time(miss_bytes + static_cast<double>(stats.total_edges()) * 8.0);

  GpuTrainerModel gpu(platform_.accelerators.front());
  result.per_iteration.train = gpu.propagation_time(stats, model);

  // NVLink-assisted all-reduce among the 8 GPUs (fast), final hop PCIe.
  result.per_iteration.sync = pcie.allreduce_time(model_param_bytes(model)) * 0.5;
  result.per_iteration.framework = kFrameworkOverhead;

  const std::int64_t total_batch = workload.batch_per_device * num_gpus;
  result.iterations = static_cast<long>(
      (workload.dataset.train_count + static_cast<std::uint64_t>(total_batch) - 1) /
      static_cast<std::uint64_t>(total_batch));
  // PaGraph overlaps sampling with training but serialises the miss path.
  const Seconds iteration = std::max(result.per_iteration.sample,
                                     result.per_iteration.load + result.per_iteration.transfer +
                                         result.per_iteration.train) +
                            result.per_iteration.sync + result.per_iteration.framework;
  result.epoch_time = iteration * static_cast<double>(result.iterations);
  return result;
}

}  // namespace hyscale
