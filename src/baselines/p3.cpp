#include "baselines/p3.hpp"

#include <algorithm>

#include "device/cost_model.hpp"
#include "device/link.hpp"
#include "runtime/perf_model.hpp"
#include "sampling/neighbor_sampler.hpp"

namespace hyscale {

P3Baseline::P3Baseline() {
  platform_.name = "4 nodes x (Xeon E5-2690 + 4x P100) (P3)";
  platform_.cpu = {"Intel Xeon E5-2690", DeviceKind::kCpu, 0.7, 68.0, 35.0, 2.6, 0.0};
  platform_.num_sockets = 1;
  platform_.cpu_threads = 28;
  platform_.accelerators.assign(4, p100_spec());
  platform_.pcie_bw_gbps = 12.0;
  platform_.cpu_mem_bw_gbps = 68.0;
}

BaselineResult P3Baseline::evaluate(const BaselineWorkload& workload) const {
  const int nodes = num_nodes();
  const int gpus_per_node = platform_.num_accelerators();
  const int total_gpus = nodes * gpus_per_node;
  const ModelConfig model = baseline_model_config(workload);
  const BatchStats stats = NeighborSampler::expected_stats(
      workload.batch_per_device, workload.fanouts, workload.dataset.mean_degree(),
      workload.dataset.num_vertices);

  BaselineResult result;
  result.system = "P3";
  result.platform_tflops = platform_.total_tflops() * nodes;

  result.per_iteration.sample =
      static_cast<double>(stats.total_edges()) / kSamplerEdgesPerSec;

  // Push-pull: layer-1 partial activations (|V^1| x hidden) are
  // all-to-all'd; each node keeps 1/nodes and ships (nodes-1)/nodes.
  const double v1 = static_cast<double>(
      stats.vertices_per_layer.size() > 1 ? stats.vertices_per_layer[1] : 0);
  const double activation_bytes = v1 * workload.hidden_dim * 4.0;
  const double shipped = activation_bytes * static_cast<double>(nodes - 1) / nodes;
  const double net_bw = kNetworkGbps * 1e9;
  result.per_iteration.network = kNetworkLatency + shipped / net_bw;

  // Local feature read (only the owned partition's slice) + PCIe.
  const double feat_bytes =
      static_cast<double>(stats.input_vertices()) * workload.dataset.f0 * 4.0 / nodes;
  HostMemoryChannel host(platform_.cpu_mem_bw_gbps);
  result.per_iteration.load = host.load_time(feat_bytes, platform_.cpu_threads / 2);
  PcieLink pcie(platform_.pcie_bw_gbps);
  result.per_iteration.transfer = pcie.transfer_time(feat_bytes / gpus_per_node);

  GpuTrainerModel gpu(platform_.accelerators.front());
  result.per_iteration.train = gpu.propagation_time(stats, model);

  // Gradient all-reduce across the cluster (ring over 10 GbE).
  result.per_iteration.sync =
      kNetworkLatency + 2.0 * model_param_bytes(model) / net_bw;
  result.per_iteration.framework = kFrameworkOverhead;

  const std::int64_t total_batch = workload.batch_per_device * total_gpus;
  result.iterations = static_cast<long>(
      (workload.dataset.train_count + static_cast<std::uint64_t>(total_batch) - 1) /
      static_cast<std::uint64_t>(total_batch));
  // P3 pipelines its phases but the network all-to-all and the gradient
  // sync sit on the critical path.
  const Seconds iteration =
      std::max({result.per_iteration.sample,
                result.per_iteration.load + result.per_iteration.transfer,
                result.per_iteration.train + result.per_iteration.network}) +
      result.per_iteration.sync + result.per_iteration.framework;
  result.epoch_time = iteration * static_cast<double>(result.iterations);
  return result;
}

}  // namespace hyscale
