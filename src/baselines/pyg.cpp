#include "baselines/pyg.hpp"

#include <algorithm>
#include <stdexcept>

#include "device/cost_model.hpp"
#include "device/link.hpp"
#include "runtime/perf_model.hpp"
#include "sampling/neighbor_sampler.hpp"

namespace hyscale {

PygMultiGpuBaseline::PygMultiGpuBaseline(PlatformSpec platform)
    : platform_(std::move(platform)) {
  if (platform_.num_accelerators() == 0 ||
      platform_.accelerators.front().kind != DeviceKind::kGpu)
    throw std::invalid_argument("PygMultiGpuBaseline: platform needs GPUs");
}

BaselineResult PygMultiGpuBaseline::evaluate(const BaselineWorkload& workload) const {
  const int num_gpus = platform_.num_accelerators();
  const ModelConfig model = baseline_model_config(workload);
  const BatchStats stats = NeighborSampler::expected_stats(
      workload.batch_per_device, workload.fanouts, workload.dataset.mean_degree(),
      workload.dataset.num_vertices);

  BaselineResult result;
  result.system = "PyG multi-GPU";
  result.platform_tflops = platform_.total_tflops();

  // Each GPU has its own DataLoader with kWorkersPerGpu workers sampling
  // its batch concurrently with the other GPUs' loaders.
  const double edges = static_cast<double>(stats.total_edges());
  result.per_iteration.sample =
      edges / (kSamplerEdgesPerSecPerWorker * kWorkersPerGpu);

  // Feature gather happens inside the worker processes: same host DRAM
  // channel as HyScale's loader but with only the workers' threads.
  HostMemoryChannel host(platform_.cpu_mem_bw_gbps);
  const double feat_bytes =
      static_cast<double>(stats.input_vertices()) * workload.dataset.f0 * 4.0;
  result.per_iteration.load =
      host.load_time(feat_bytes * num_gpus, kWorkersPerGpu * num_gpus);

  // Blocking host->device copy (no prefetch overlap).
  PcieLink pcie(platform_.pcie_bw_gbps);
  const double topo_bytes = static_cast<double>(stats.total_edges()) * 8.0;
  result.per_iteration.transfer = pcie.transfer_time(feat_bytes + topo_bytes);

  // GPU propagation (all GPUs run in parallel on their own batch).
  GpuTrainerModel gpu(platform_.accelerators.front());
  result.per_iteration.train = gpu.propagation_time(stats, model);

  // Gradient all-reduce (DDP over PCIe).
  result.per_iteration.sync = pcie.allreduce_time(model_param_bytes(model));

  result.per_iteration.framework = kFrameworkOverhead;

  const std::int64_t total_batch = workload.batch_per_device * num_gpus;
  result.iterations = static_cast<long>(
      (workload.dataset.train_count + static_cast<std::uint64_t>(total_batch) - 1) /
      static_cast<std::uint64_t>(total_batch));
  result.epoch_time = result.per_iteration.iteration() * static_cast<double>(result.iterations);
  return result;
}

}  // namespace hyscale
