#include "runtime/protocol.hpp"

#include <stdexcept>

namespace hyscale {

TrainingProtocol::TrainingProtocol(int num_trainers) : num_trainers_(num_trainers) {
  if (num_trainers <= 0)
    throw std::invalid_argument("TrainingProtocol: need at least one trainer");
}

void TrainingProtocol::trainer_done() {
  std::unique_lock<std::mutex> lock(mutex_);
  // A trainer may race ahead into the next iteration while peers are
  // still consuming the previous ACK; wait for the handshake to retire
  // (ack_broadcast_ drops when the last ACK resets the generation).
  cv_.wait(lock, [this] { return !ack_broadcast_; });
  if (done_ >= num_trainers_)
    throw std::logic_error("TrainingProtocol: more DONE signals than trainers");
  ++done_;
  cv_.notify_all();
}

void TrainingProtocol::wait_all_done() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return done_ == num_trainers_; });
}

std::int64_t TrainingProtocol::broadcast_ack() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (done_ != num_trainers_)
    throw std::logic_error("TrainingProtocol: broadcast_ack before all trainers DONE");
  ack_broadcast_ = true;
  cv_.notify_all();
  return generation_;
}

void TrainingProtocol::wait_ack() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::int64_t my_generation = generation_;
  cv_.wait(lock, [this, my_generation] {
    return ack_broadcast_ || generation_ != my_generation;
  });
  if (generation_ == my_generation) {
    ++acked_;
    if (acked_ == num_trainers_) {
      // Last trainer out arms the next iteration.
      done_ = 0;
      acked_ = 0;
      ack_broadcast_ = false;
      ++generation_;
    }
    cv_.notify_all();
  }
}

void TrainingProtocol::wait_iteration_complete(std::int64_t generation) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this, generation] { return generation_ > generation; });
}

std::int64_t TrainingProtocol::iteration() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return generation_;
}

}  // namespace hyscale
