// Per-iteration stage timings — the vocabulary Algorithm 1 operates on.
//
// The six inputs of the DRM engine (Algorithm 1): Sampling on Accelerator
// (TSA), Sampling on CPU (TSC), Feature Loading (TLoad), Data Transfer
// (TTran), Training on CPU (TTC), Training on Accelerator (TTA), plus the
// synchroniser cost that extends the propagation stage.
#pragma once

#include <string>

#include "common/timer.hpp"

namespace hyscale {

enum class Stage {
  kSampleAccel,   // TSA
  kSampleCpu,     // TSC
  kLoad,          // TLoad
  kTransfer,      // TTran
  kTrainCpu,      // TTC
  kTrainAccel,    // TTA
};

const char* stage_name(Stage stage);

struct StageTimes {
  Seconds sample_accel = 0.0;
  Seconds sample_cpu = 0.0;
  Seconds load = 0.0;
  Seconds transfer = 0.0;
  Seconds train_cpu = 0.0;
  Seconds train_accel = 0.0;
  Seconds sync = 0.0;

  Seconds get(Stage stage) const;

  /// T_Accel = max(TTran, TTA) — Algorithm 1 line 1 bundles transfer and
  /// accelerator training because their durations co-vary with the
  /// accelerator workload.
  Seconds accel_bundle() const { return transfer > train_accel ? transfer : train_accel; }

  /// Combined sampling stage (CPU and accelerator samplers run
  /// concurrently on disjoint batches).
  Seconds sampling() const { return sample_cpu > sample_accel ? sample_cpu : sample_accel; }

  /// GNN propagation stage: slowest trainer plus the all-reduce (Eq. 9).
  Seconds propagation() const {
    return (train_cpu > train_accel ? train_cpu : train_accel) + sync;
  }

  std::string to_string() const;
};

/// Pipeline organisations the ablation study (Fig. 11) compares.
enum class PipelineMode {
  /// No prefetching: the four stages execute back-to-back each iteration.
  kSequential,
  /// Feature prefetching as ONE stage: loading and transfer are fused and
  /// overlap with sampling and propagation (pre-TFP design).
  kSinglePrefetch,
  /// Two-stage Feature Prefetching (§IV-B): loading and transfer occupy
  /// separate pipeline stages (they use different channels — host DRAM
  /// vs PCIe), giving the 4-deep pipeline of Fig. 7.
  kTwoStagePrefetch,
};

const char* pipeline_mode_name(PipelineMode mode);

/// Steady-state time of one training iteration under the given pipeline
/// organisation (Eq. 6 for the two-stage case).
Seconds iteration_time(const StageTimes& t, PipelineMode mode);

/// Epoch time: `iterations` pipelined iterations including fill/drain of
/// a pipeline with the mode's depth.
Seconds epoch_time(const StageTimes& t, PipelineMode mode, long iterations);

}  // namespace hyscale
