#include "runtime/csv_report.hpp"

#include <fstream>
#include <sstream>

#include "common/strutil.hpp"

namespace hyscale {

std::string csv_header() {
  return "epoch,epoch_time_s,iterations,mteps,loss,train_accuracy,"
         "t_sample_cpu_ms,t_load_ms,t_transfer_ms,t_train_cpu_ms,t_train_accel_ms,t_sync_ms,"
         "cpu_batch,accel_batch,num_accelerators";
}

std::string csv_row(int epoch, const EpochReport& report) {
  std::ostringstream out;
  const StageTimes& t = report.mean_times;
  out << epoch << ',' << format_double(report.epoch_time, 6) << ',' << report.iterations << ','
      << format_double(report.mteps, 2) << ',' << format_double(report.loss, 6) << ','
      << format_double(report.train_accuracy, 4) << ',' << format_double(t.sample_cpu * 1e3, 4)
      << ',' << format_double(t.load * 1e3, 4) << ',' << format_double(t.transfer * 1e3, 4)
      << ',' << format_double(t.train_cpu * 1e3, 4) << ','
      << format_double(t.train_accel * 1e3, 4) << ',' << format_double(t.sync * 1e3, 4) << ','
      << report.final_workload.cpu_batch << ',' << report.final_workload.accel_batch << ','
      << report.final_workload.num_accelerators;
  return out.str();
}

std::string to_csv(const std::vector<EpochReport>& reports) {
  std::string out = csv_header() + "\n";
  for (std::size_t e = 0; e < reports.size(); ++e) {
    out += csv_row(static_cast<int>(e), reports[e]) + "\n";
  }
  return out;
}

void write_csv(const std::vector<EpochReport>& reports, const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) throw std::runtime_error("write_csv: cannot open " + path);
  file << to_csv(reports);
  if (!file) throw std::runtime_error("write_csv: write failed for " + path);
}

}  // namespace hyscale
