// HybridTrainer — the HyScale-GNN runtime (§III).
//
// Owns the dataset, one GNN-model replica per trainer (1 CPU trainer +
// one per accelerator), the Mini-batch Sampler, Feature Loader,
// Synchronizer, DRM engine and the performance model, and runs epochs of
// hybrid synchronous-SGD training.
//
// Two time domains coexist by design (see DESIGN.md, substitutions):
//   * REAL numerics — mini-batches are actually sampled from the
//     materialised (scaled) graph, forward/backward actually run, and
//     gradients are actually all-reduced through the Processor-
//     Accelerator Training Protocol, so losses, accuracies and
//     convergence are genuine;
//   * SIMULATED time — per-stage durations come from the §V cost models
//     evaluated at *paper scale* (Table III cardinalities), perturbed by
//     the measured sampling variance of the real batches plus explicit
//     launch/flush overheads.  The DRM engine consumes these simulated
//     stage times exactly as it would consume wall-clock measurements on
//     the paper's testbed.
// This preserves the paper's control loop (what DRM sees and does) while
// replacing only the hardware under it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "device/spec.hpp"
#include "graph/datasets.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "runtime/drm.hpp"
#include "runtime/feature_loader.hpp"
#include "runtime/perf_model.hpp"
#include "runtime/stage_times.hpp"
#include "runtime/task_mapper.hpp"
#include "runtime/workload.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "tensor/quantize.hpp"

namespace hyscale {

struct HybridTrainerConfig {
  // ---- Feature flags (the Fig. 11 ablation axes).
  bool hybrid = true;  ///< CPU trainer participates (vs pure offload)
  bool drm = true;     ///< dynamic resource management at runtime
  PipelineMode pipeline = PipelineMode::kTwoStagePrefetch;  ///< TFP when two-stage
  bool accel_sampling = true;  ///< allow Sampler instances on accelerators
  /// Seed the workload from the §V performance model (the paper's
  /// compile-time mapping).  When false, a heuristic split (half a
  /// trainer's batch on the CPU, 1/4-1/4-1/2 threads) stands in for an
  /// uninformed deployment — the ablation uses this to isolate how much
  /// DRM recovers at runtime.
  bool use_task_mapper = true;

  // ---- Training algorithm (paper defaults, §VI-A2).
  GnnKind model_kind = GnnKind::kSage;
  std::vector<int> fanouts = {25, 10};
  std::int64_t per_trainer_batch = 1024;  ///< paper-scale mini-batch per trainer
  double learning_rate = 0.1;
  std::uint64_t seed = 1;

  // ---- Real-execution controls.
  bool real_compute = true;
  std::int64_t real_batch_total = 256;  ///< seeds per iteration across all trainers
  int real_iterations_cap = 8;          ///< real fwd/bwd only for the first k iters/epoch

  // ---- Future-work extension (§VIII): quantize features before the
  // PCIe hop.  int8 additionally round-trips the real accelerator
  // features through quantization so the numeric effect is genuine.
  TransferPrecision transfer_precision = TransferPrecision::kFp32;

  // ---- Simulation overheads — the effects the paper's model does NOT
  // capture and blames for its 5-14% error (§VI-C): kernel-launch set-up
  // and pipeline flushing.
  Seconds launch_overhead = 150e-6;        ///< per iteration, per accelerator
  Seconds flush_overhead_fraction = 0.04;  ///< fraction of propagation lost to flush
  /// Per-iteration cost of the stage barriers and DONE/ACK handshake
  /// (§III-C sets a barrier at the end of every pipeline stage); applied
  /// to the whole iteration, also outside the analytic model.
  double barrier_overhead_fraction = 0.05;
  Seconds barrier_latency = 100e-6;

  // ---- Bookkeeping.
  int trajectory_cap = 512;  ///< iteration records kept per epoch
};

struct IterationRecord {
  long iteration = 0;
  StageTimes times;
  Seconds iteration_time = 0.0;
  WorkloadAssignment workload;  ///< assignment used THIS iteration
  DrmAction drm_action;         ///< adjustment applied for the next one
};

struct EpochReport {
  Seconds epoch_time = 0.0;  ///< simulated wall time at paper scale
  long iterations = 0;
  double mteps = 0.0;        ///< Eq. 5 throughput
  double loss = 0.0;         ///< mean real loss over the real-compute iterations
  double train_accuracy = 0.0;
  StageTimes mean_times;
  WorkloadAssignment final_workload;
  std::vector<IterationRecord> trajectory;
};

class HybridTrainer {
 public:
  /// `dataset` must outlive the trainer.
  HybridTrainer(const Dataset& dataset, PlatformSpec platform, HybridTrainerConfig config);

  /// Runs one epoch; returns the report.  Real compute (if enabled)
  /// advances the model; simulated time advances the DRM state.
  EpochReport train_epoch();

  /// Runs `epochs` epochs.
  std::vector<EpochReport> train(int epochs);

  /// Predicted epoch time from the pure §V model with the *initial*
  /// mapping — the "Predicted" series of Fig. 8.
  Seconds predicted_epoch_time() const;

  const WorkloadAssignment& workload() const { return workload_; }
  void set_workload(const WorkloadAssignment& workload) { workload_ = workload; }
  const PerformanceModel& perf_model() const { return *perf_model_; }
  GnnModel& model() { return *replicas_.front(); }
  int num_trainers() const { return static_cast<int>(replicas_.size()); }

  /// Evaluate train accuracy of the current model on up to `max_seeds`
  /// training vertices (full-neighborhood forward).
  double evaluate_accuracy(std::int64_t max_seeds = 512);

 private:
  struct RealIterationResult {
    double loss = 0.0;
    double accuracy = 0.0;
    double edge_jitter = 1.0;  ///< measured / expected sampled edges
  };
  RealIterationResult run_real_iteration();
  BatchStats jittered_expected_stats(std::int64_t batch, double jitter) const;
  StageTimes simulate_stage_times(double jitter) const;
  std::vector<VertexId> next_real_seeds(std::int64_t count, std::uint64_t salt);

  const Dataset& dataset_;
  PlatformSpec platform_;
  HybridTrainerConfig config_;

  std::unique_ptr<PerformanceModel> perf_model_;
  WorkloadAssignment initial_workload_;
  WorkloadAssignment workload_;
  DrmEngine drm_;

  std::vector<std::unique_ptr<GnnModel>> replicas_;
  std::vector<std::unique_ptr<SgdOptimizer>> optimizers_;
  std::unique_ptr<NeighborSampler> sampler_;
  std::unique_ptr<FeatureLoader> loader_;

  std::vector<VertexId> shuffled_train_;
  std::size_t train_cursor_ = 0;
  std::uint64_t shuffle_round_ = 0;
  long epoch_counter_ = 0;
};

}  // namespace hyscale
