// Dynamic Resource Management engine — Algorithm 1 of the paper.
//
// A bottleneck-guided optimizer: each iteration it receives the measured
// stage times, identifies the slowest and fastest stages, and applies one
// of two moves to speed the bottleneck up:
//   * balance_work   — shift mini-batch size between the CPU trainer and
//     the accelerator trainers (or sampling fraction between CPU and
//     accelerator samplers), keeping the total constant;
//   * balance_thread — move CPU threads from the fastest CPU-resident
//     task (sampler / loader / CPU trainer) to the bottleneck task.
// The dispatch structure below follows Algorithm 1 line by line,
// including the two lookahead cases for TSC / TTC bottlenecks.
#pragma once

#include <string>
#include <vector>

#include "runtime/stage_times.hpp"
#include "runtime/workload.hpp"

namespace hyscale {

struct DrmConfig {
  /// Fraction of the gap to the rate-balanced ideal closed per step.
  double work_gain = 0.5;
  /// Seed-count granularity of balance_work moves.
  std::int64_t batch_granularity = 16;
  /// Threads moved per balance_thread step.
  int thread_step = 2;
  /// Granularity of sampling-fraction moves.
  double sample_fraction_step = 0.125;
  /// Whether any accelerator can sample (enables the TSA dimension).
  bool accel_sampling_available = false;
};

/// What the engine did in one invocation (for logging and tests).
struct DrmAction {
  enum class Kind { kNone, kBalanceWork, kBalanceThread, kBalanceSampling };
  Kind kind = Kind::kNone;
  Stage bottleneck = Stage::kTrainAccel;
  Stage fastest = Stage::kTrainAccel;
  std::int64_t batch_moved = 0;  ///< seeds moved CPU->accel (negative: accel->CPU)
  int threads_moved = 0;
  Stage thread_from = Stage::kTrainCpu;
  Stage thread_to = Stage::kTrainCpu;
  double sample_fraction_delta = 0.0;

  std::string to_string() const;
};

class DrmEngine {
 public:
  explicit DrmEngine(DrmConfig config = {});

  /// One Algorithm-1 step: inspects `times`, mutates `workload`, and
  /// returns the action taken.
  DrmAction step(const StageTimes& times, WorkloadAssignment& workload);

  const DrmConfig& config() const { return config_; }

 private:
  DrmAction balance_trainer_work(const StageTimes& times, WorkloadAssignment& workload);
  DrmAction balance_sampling_work(const StageTimes& times, WorkloadAssignment& workload,
                                  bool toward_accel);
  DrmAction balance_thread(Stage from, Stage to, WorkloadAssignment& workload);

  DrmConfig config_;
};

}  // namespace hyscale
