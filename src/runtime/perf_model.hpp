// Performance model — Section V of the paper (Eqs. 5-13).
//
// Predicts per-stage times, iteration time, epoch time and training
// throughput (MTEPS) for a workload assignment on a platform, using only
// algorithmic parameters (per-layer |V^l|, |E^l|, f^l) and platform
// metadata (bandwidths, FLOPS).  Two uses, mirroring the paper:
//   1. design-time: seed the coarse-grained task mapping (TaskMapper);
//   2. evaluation: the "Predicted" series of Fig. 8 and the scalability
//      study of Fig. 9.
// The same stage-time composition is reused by the runtime simulator with
// *measured* batch statistics substituted for the expected ones.
#pragma once

#include <memory>
#include <vector>

#include "device/cost_model.hpp"
#include "device/link.hpp"
#include "device/sampler_model.hpp"
#include "device/spec.hpp"
#include "graph/datasets.hpp"
#include "nn/model.hpp"
#include "runtime/stage_times.hpp"
#include "runtime/workload.hpp"

namespace hyscale {

/// Total parameter bytes of a model config (the Eq. 13 numerator).
double model_param_bytes(const ModelConfig& model);

class PerformanceModel {
 public:
  PerformanceModel(PlatformSpec platform, ModelConfig model, DatasetInfo dataset,
                   std::vector<int> fanouts);

  /// Expected per-trainer batch statistics for a mini-batch of
  /// `batch_size` seeds on the paper-scale dataset.
  BatchStats expected_stats(std::int64_t batch_size) const;

  /// Stage times for one iteration given explicit per-trainer stats.
  /// `accel_stats` has one entry per accelerator (its own mini-batch).
  StageTimes stage_times(const WorkloadAssignment& workload, const BatchStats& cpu_stats,
                         const std::vector<BatchStats>& accel_stats) const;

  /// Stage times using expected statistics (the pure model).
  StageTimes stage_times(const WorkloadAssignment& workload) const;

  Seconds predict_iteration(const WorkloadAssignment& workload, PipelineMode mode) const;
  Seconds predict_epoch(const WorkloadAssignment& workload, PipelineMode mode) const;

  /// ceil(train_count / total mini-batch) — iterations per epoch.
  long iterations_per_epoch(const WorkloadAssignment& workload) const;

  /// Eq. 5: million traversed edges per second at steady state.
  double throughput_mteps(const WorkloadAssignment& workload, PipelineMode mode) const;

  /// Future-work extension (§VIII): bytes per feature element on the
  /// PCIe wire.  4 = fp32 (default), 2 = fp16, 1 = int8.  Affects only
  /// the Data Transfer stage (Eq. 8); Feature Loading still moves fp32
  /// rows out of host DRAM, and quantization happens before the hop.
  void set_transfer_bytes_per_element(double bytes);
  double transfer_bytes_per_element() const { return transfer_bytes_per_element_; }

  const PlatformSpec& platform() const { return platform_; }
  const ModelConfig& model() const { return model_; }
  const DatasetInfo& dataset() const { return dataset_; }
  const std::vector<int>& fanouts() const { return fanouts_; }
  SamplerModel& sampler_model() { return sampler_; }

  /// The CPU trainer cost model (thread count mutable by DRM).
  CpuTrainerModel& cpu_trainer() { return *cpu_trainer_; }
  const TrainerCostModel& accel_trainer() const { return *accel_trainer_; }

 private:
  PlatformSpec platform_;
  ModelConfig model_;
  DatasetInfo dataset_;
  std::vector<int> fanouts_;

  std::unique_ptr<CpuTrainerModel> cpu_trainer_;
  std::unique_ptr<TrainerCostModel> accel_trainer_;  ///< per-accelerator (homogeneous)
  SamplerModel sampler_;
  PcieLink pcie_;
  HostMemoryChannel host_memory_;
  double transfer_bytes_per_element_ = 4.0;
};

}  // namespace hyscale
