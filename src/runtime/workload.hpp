// Workload assignment: how the training work of one iteration is split
// across the CPU trainer, the accelerator trainers, and the CPU-resident
// pipeline stages' thread shares.  This is the state the performance
// model seeds (coarse-grained mapping, design time) and the DRM engine
// fine-tunes (runtime).
#pragma once

#include <cstdint>
#include <string>

namespace hyscale {

struct ThreadAllocation {
  int total = 128;    ///< hardware threads the runtime may use
  int sampler = 32;
  int loader = 32;
  int trainer = 64;

  int used() const { return sampler + loader + trainer; }
  bool valid() const {
    return sampler >= 0 && loader >= 0 && trainer >= 0 && used() <= total;
  }
  std::string to_string() const;
};

struct WorkloadAssignment {
  /// Mini-batch size (seed vertices) assigned to the CPU trainer; 0 when
  /// hybrid training is off.
  std::int64_t cpu_batch = 0;
  /// Mini-batch size assigned to EACH accelerator trainer.
  std::int64_t accel_batch = 1024;
  int num_accelerators = 0;
  /// Fraction of the sampling work executed on the accelerators (TSA);
  /// the rest runs on the CPU sampler (TSC).
  double accel_sample_fraction = 0.0;

  ThreadAllocation threads;

  /// Total seeds processed per iteration — invariant under balance_work
  /// ("the total mini-batch size executed on the hybrid system remains
  /// the same after the re-assignment", §IV-A).
  std::int64_t total_batch() const {
    return cpu_batch + accel_batch * num_accelerators;
  }

  std::string to_string() const;
};

}  // namespace hyscale
