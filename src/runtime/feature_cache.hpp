// Static feature cache: device-resident copies of hot vertices' features.
//
// PaGraph-style degree-ordered caching (§VI-E2 discusses why this helps
// and where it stops helping): the top-`capacity` vertices by degree are
// pinned in device memory; a mini-batch load serves those rows from the
// device copy and fetches the rest from host DRAM over PCIe.  HyScale-GNN
// itself does not need this (it streams everything through the prefetch
// pipeline), but the module lets the repository measure REAL hit rates
// from its own sampler — which is what the PaGraph comparison's miss
// traffic is all about — and quantifies the skew assumption behind the
// baseline's analytic hit-rate model.
//
// Streaming serving (src/stream/) updates host features in place, so the
// pinned device rows CAN go stale.  invalidate() is the refresh hook:
// StreamingGraph::update_feature calls it after every row write, and the
// since_invalidate() counters report hit traffic accumulated after the
// most recent refresh — the "is anyone reading stale rows" signal.
// Deletions go further: StreamingGraph::remove_vertex calls evict() so a
// retracted entity's pinned row stops hitting entirely instead of being
// refreshed — the cache must never serve features for deleted vertices.
#pragma once

#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "sampling/minibatch.hpp"
#include "tensor/tensor.hpp"

namespace hyscale {

class StaticFeatureCache {
 public:
  /// Pins the features of the `capacity_rows` highest-degree vertices
  /// (device copies taken at construction).
  StaticFeatureCache(const CsrGraph& graph, const Tensor& features,
                     std::int64_t capacity_rows);

  struct LoadStats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    double device_bytes = 0.0;  ///< served from the cache
    double host_bytes = 0.0;    ///< fetched from host (the PCIe traffic)

    double hit_rate() const {
      const std::int64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  /// Gathers X' for the batch's input vertices — pinned rows from the
  /// device copy, the rest from the host matrix — while attributing each
  /// row to cache or host.  Numerically identical to FeatureLoader::load
  /// as long as the device copies are fresh (see invalidate()).  Safe for
  /// concurrent callers (serving workers share one cache); each caller
  /// must pass its own `out`.
  LoadStats load(const MiniBatch& batch, Tensor& out);

  /// Copies v's device-resident row into `dst` (size = feature cols) and
  /// returns true when v is pinned; false otherwise.  The streaming
  /// gather path uses this so host rows are only ever read under the
  /// feature store's lock.
  bool copy_if_cached(VertexId v, std::span<float> dst) const;

  /// Batch variant for the serving hot path: fills out.row(i) and sets
  /// hit[i] for every pinned nodes[i] under ONE shared lock (instead of
  /// one acquire per row).  `out` must be pre-sized [nodes, cols]; `hit`
  /// to nodes.size().  Returns the number of rows served.
  std::int64_t copy_cached_rows(std::span<const VertexId> nodes, std::vector<char>& hit,
                                Tensor& out) const;

  /// Refreshes the device copies of the pinned vertices among `ids` from
  /// the host matrix and resets the since_invalidate() window.  Returns
  /// the number of rows refreshed; calls that refresh nothing (no pinned
  /// vertex among `ids`) leave the window and counters untouched.  The
  /// caller must guarantee no concurrent writer is mutating those host
  /// rows (StreamingGraph serialises update+invalidate pairs).
  std::int64_t invalidate(std::span<const VertexId> ids);

  /// Unpins `ids` entirely: the device copies are zeroed and the
  /// vertices stop hitting, so a deleted entity can never be served
  /// from a stale pinned row.  Returns the number of rows evicted.
  /// Slots are not re-admitted (the admission set is fixed at
  /// construction; re-ranking is a tracked follow-on).
  std::int64_t evict(std::span<const VertexId> ids);

  /// Folds externally-attributed traffic into totals()/since_invalidate().
  /// Used by gather paths that consult the cache row-by-row (the
  /// streaming server) instead of going through load().
  void record(const LoadStats& stats) { account(stats); }

  bool cached(VertexId v) const {
    return static_cast<std::size_t>(v) < cached_.size() &&
           cached_[static_cast<std::size_t>(v)];
  }
  std::int64_t capacity() const { return capacity_; }

  /// Cumulative statistics across all load() calls (consistent snapshot).
  LoadStats totals() const {
    std::lock_guard<std::mutex> lock(totals_mutex_);
    return totals_;
  }

  /// Traffic since the most recent invalidate() — the post-invalidation
  /// hit-rate counter (equals totals() before the first invalidation).
  LoadStats since_invalidate() const {
    std::lock_guard<std::mutex> lock(totals_mutex_);
    return since_invalidate_;
  }

  std::int64_t invalidations() const {
    std::lock_guard<std::mutex> lock(totals_mutex_);
    return invalidations_;
  }
  std::int64_t invalidated_rows() const {
    std::lock_guard<std::mutex> lock(totals_mutex_);
    return invalidated_rows_;
  }
  std::int64_t evictions() const {
    std::lock_guard<std::mutex> lock(totals_mutex_);
    return evictions_;
  }

 private:
  void account(const LoadStats& stats);

  const Tensor& features_;
  /// Admission set — fixed at construction (degree-ordered); the device
  /// ROW CONTENTS behind it are refreshed by invalidate().
  std::vector<bool> cached_;
  std::vector<std::int64_t> slot_of_;  ///< vertex -> device row, -1 when not pinned
  std::vector<VertexId> pinned_;       ///< device row -> vertex
  Tensor device_rows_;                 ///< [capacity, cols] pinned copies
  std::int64_t capacity_ = 0;
  mutable std::shared_mutex rows_mutex_;  ///< device rows: shared read, exclusive refresh
  mutable std::mutex totals_mutex_;
  LoadStats totals_;
  LoadStats since_invalidate_;
  std::int64_t invalidations_ = 0;
  std::int64_t invalidated_rows_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace hyscale
