// Static feature cache: device-resident copies of hot vertices' features.
//
// PaGraph-style degree-ordered caching (§VI-E2 discusses why this helps
// and where it stops helping): the top-`capacity` vertices by degree are
// pinned in device memory; a mini-batch load serves those rows from the
// device copy and fetches the rest from host DRAM over PCIe.  HyScale-GNN
// itself does not need this (it streams everything through the prefetch
// pipeline), but the module lets the repository measure REAL hit rates
// from its own sampler — which is what the PaGraph comparison's miss
// traffic is all about — and quantifies the skew assumption behind the
// baseline's analytic hit-rate model.
//
// Streaming serving (src/stream/) updates host features in place, so the
// pinned device rows CAN go stale.  invalidate() is the refresh hook:
// StreamingGraph::update_feature calls it after every row write, and the
// since_invalidate() counters report hit traffic accumulated after the
// most recent refresh — the "is anyone reading stale rows" signal.
// Deletions go further: StreamingGraph::remove_vertex calls evict() so a
// retracted entity's pinned row stops hitting entirely instead of being
// refreshed — the cache must never serve features for deleted vertices.
//
// ADMISSION DRIFT: the initial admission set is the base graph's degree
// order, but under streaming churn the live hot set walks away from it —
// folds rewrite degrees, TTL sweeps and deletions evict pinned rows, and
// the freed slots used to leak (never re-admitted).  rerank() is the
// correction: every request bumps a per-vertex access counter (and a
// per-slot hit counter), and StreamingGraph recomputes the hot set from
// those observed counters plus live degrees at each fold's REBASE,
// evicting pinned rows that fell out of the set and re-admitting into
// every free slot.  Access counters halve at each rerank so the next
// window's traffic dominates the next decision.
//
// TRANSFER PRECISION: with TransferPrecision::kInt8 the device rows are
// stored as int8 + one fp32 scale per row (tensor/quantize's per-row
// symmetric scheme — the paper's §VIII PCIe-relief proposal), so a hit
// moves cols + 4 bytes instead of 4*cols; dequantization is fused into
// the gather copy (simd::dequant).  Quantization uses the same per-row
// rule as MutableFeatureStore's int8 wire simulation, so a row served
// from the device copy is bit-identical to the same row round-tripped
// through an int8 host fetch — hit/miss composition never changes
// logits at a given precision.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "sampling/minibatch.hpp"
#include "tensor/quantize.hpp"
#include "tensor/tensor.hpp"

namespace hyscale {

class StaticFeatureCache {
 public:
  /// Pins the features of the `capacity_rows` highest-degree vertices
  /// (device copies taken at construction, quantized when `precision`
  /// is kInt8).  kFp16 storage is not implemented — the knob is
  /// {fp32, int8} — and throws std::invalid_argument.
  StaticFeatureCache(const CsrGraph& graph, const Tensor& features,
                     std::int64_t capacity_rows,
                     TransferPrecision precision = TransferPrecision::kFp32);

  struct LoadStats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    double device_bytes = 0.0;  ///< served from the cache (wire bytes at precision())
    double host_bytes = 0.0;    ///< fetched from host (the PCIe traffic)

    double hit_rate() const {
      const std::int64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  /// Gathers X' for the batch's input vertices — pinned rows from the
  /// device copy, the rest from the host matrix — while attributing each
  /// row to cache or host.  Numerically identical to FeatureLoader::load
  /// as long as the device copies are fresh (see invalidate()) and the
  /// precision is kFp32 (int8 hits carry the documented quantization
  /// error).  Safe for concurrent callers (serving workers share one
  /// cache); each caller must pass its own `out`.
  LoadStats load(const MiniBatch& batch, Tensor& out);

  /// Copies v's device-resident row into `dst` (size = feature cols) and
  /// returns true when v is pinned; false otherwise.  The streaming
  /// gather path uses this so host rows are only ever read under the
  /// feature store's lock.
  bool copy_if_cached(VertexId v, std::span<float> dst) const;

  /// Batch variant for the serving hot path: fills out.row(i) and sets
  /// hit[i] for every pinned nodes[i] under ONE shared lock (instead of
  /// one acquire per row).  `out` must be pre-sized [nodes, cols]; `hit`
  /// to nodes.size().  Returns the number of rows served.
  std::int64_t copy_cached_rows(std::span<const VertexId> nodes, std::vector<char>& hit,
                                Tensor& out) const;

  /// Refreshes the device copies of the pinned vertices among `ids` from
  /// the host matrix and resets the since_invalidate() window.  Returns
  /// the number of rows refreshed; calls that refresh nothing (no pinned
  /// vertex among `ids`) leave the window and counters untouched.  The
  /// caller must guarantee no concurrent writer is mutating those host
  /// rows (StreamingGraph serialises update+invalidate pairs).
  std::int64_t invalidate(std::span<const VertexId> ids);

  /// Unpins `ids` entirely: the device copies are zeroed and the
  /// vertices stop hitting, so a deleted entity can never be served
  /// from a stale pinned row.  Returns the number of rows evicted.
  /// Freed slots are re-admitted by the next rerank().
  std::int64_t evict(std::span<const VertexId> ids);

  /// Re-ranks the admission set against `hot` (best first): pinned
  /// vertices still in the set keep their slots (no copy — their device
  /// rows stay fresh via invalidate()), pinned vertices that fell out
  /// are evicted, and the freed slots — including slots evict() freed
  /// earlier — are re-admitted from the front of `hot`, copying (and at
  /// kInt8, quantizing) from the host matrix.  Out-of-range ids and
  /// duplicates in `hot` are skipped; at most capacity() ids are
  /// considered.  Access counters halve afterwards so the next window's
  /// traffic dominates the next rerank.  Same host-row freshness
  /// contract as invalidate().  Returns the number of rows admitted.
  std::int64_t rerank(std::span<const VertexId> hot);

  /// Folds externally-attributed traffic into totals()/since_invalidate().
  /// Used by gather paths that consult the cache row-by-row (the
  /// streaming server) instead of going through load().
  void record(const LoadStats& stats) { account(stats); }

  /// Membership check, safe against concurrent evict()/invalidate()/
  /// rerank(): reads the slot table under the rows lock (shared).
  bool cached(VertexId v) const {
    if (v < 0 || static_cast<std::size_t>(v) >= slot_of_.size()) return false;
    std::shared_lock rows(rows_mutex_);
    return slot_of_[static_cast<std::size_t>(v)] >= 0;
  }
  std::int64_t capacity() const { return capacity_; }
  TransferPrecision precision() const { return precision_; }
  /// Vertices the cache can pin and count: the host matrix's rows
  /// (streamed-in extension rows are never admitted).
  std::int64_t trackable_rows() const { return static_cast<std::int64_t>(slot_of_.size()); }
  /// Bytes one cache hit moves on the wire: 4*cols at fp32, cols + 4
  /// (values + the fp32 scale) at int8.
  double device_row_wire_bytes() const;

  /// Requests observed for v (hits AND misses) since the last rerank
  /// decay — the admission signal.  Relaxed read.
  std::uint64_t access_count(VertexId v) const {
    if (v < 0 || static_cast<std::size_t>(v) >= slot_of_.size()) return 0;
    return access_[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
  }
  /// Hits served by device slot `slot` since it was last (re)admitted.
  std::uint64_t slot_hit_count(std::int64_t slot) const {
    if (slot < 0 || slot >= capacity_) return 0;
    return slot_hits_[static_cast<std::size_t>(slot)].load(std::memory_order_relaxed);
  }

  /// Cumulative statistics across all load() calls (consistent snapshot).
  LoadStats totals() const {
    std::lock_guard<std::mutex> lock(totals_mutex_);
    return totals_;
  }

  /// Traffic since the most recent invalidate() — the post-invalidation
  /// hit-rate counter (equals totals() before the first invalidation).
  LoadStats since_invalidate() const {
    std::lock_guard<std::mutex> lock(totals_mutex_);
    return since_invalidate_;
  }

  std::int64_t invalidations() const {
    std::lock_guard<std::mutex> lock(totals_mutex_);
    return invalidations_;
  }
  std::int64_t invalidated_rows() const {
    std::lock_guard<std::mutex> lock(totals_mutex_);
    return invalidated_rows_;
  }
  std::int64_t evictions() const {
    std::lock_guard<std::mutex> lock(totals_mutex_);
    return evictions_;
  }
  std::int64_t reranks() const {
    std::lock_guard<std::mutex> lock(totals_mutex_);
    return reranks_;
  }
  std::int64_t readmitted_rows() const {
    std::lock_guard<std::mutex> lock(totals_mutex_);
    return readmitted_rows_;
  }
  std::int64_t rerank_evicted_rows() const {
    std::lock_guard<std::mutex> lock(totals_mutex_);
    return rerank_evicted_rows_;
  }

 private:
  void account(const LoadStats& stats);
  /// Copies slot's device row into dst (dequantizing at kInt8).  Caller
  /// holds rows_mutex_ (shared suffices: slot contents are stable under
  /// shared).
  void copy_device_row_unlocked(std::int64_t slot, float* dst) const;
  /// (Re)fills slot from features_.row(v) (quantizing at kInt8).  Caller
  /// holds rows_mutex_ exclusively.
  void fill_slot_unlocked(std::int64_t slot, VertexId v);
  /// Zeroes slot's device payload.  Caller holds rows_mutex_ exclusively.
  void zero_slot_unlocked(std::int64_t slot);
  void bump_access(VertexId v) const {
    access_[static_cast<std::size_t>(v)].fetch_add(1, std::memory_order_relaxed);
  }

  const Tensor& features_;
  TransferPrecision precision_ = TransferPrecision::kFp32;
  std::vector<std::int64_t> slot_of_;  ///< vertex -> device row, -1 when not pinned
  std::vector<VertexId> pinned_;       ///< device row -> vertex, -1 when free
  Tensor device_rows_;                 ///< [capacity, cols] pinned copies (fp32 mode)
  std::vector<std::int8_t> qvalues_;   ///< [capacity * cols] pinned copies (int8 mode)
  std::vector<float> qscales_;         ///< [capacity] per-row scales (int8 mode)
  std::int64_t capacity_ = 0;
  /// Per-vertex request counters (admission signal) and per-slot hit
  /// counters.  Relaxed atomics bumped under the shared rows lock.
  std::unique_ptr<std::atomic<std::uint64_t>[]> access_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> slot_hits_;
  mutable std::shared_mutex rows_mutex_;  ///< device rows + slot tables
  mutable std::mutex totals_mutex_;
  LoadStats totals_;
  LoadStats since_invalidate_;
  std::int64_t invalidations_ = 0;
  std::int64_t invalidated_rows_ = 0;
  std::int64_t evictions_ = 0;
  std::int64_t reranks_ = 0;
  std::int64_t readmitted_rows_ = 0;
  std::int64_t rerank_evicted_rows_ = 0;
};

}  // namespace hyscale
