// Static feature cache: device-resident copies of hot vertices' features.
//
// PaGraph-style degree-ordered caching (§VI-E2 discusses why this helps
// and where it stops helping): the top-`capacity` vertices by degree are
// pinned in device memory; a mini-batch load serves those rows from the
// device and fetches the rest from host DRAM over PCIe.  HyScale-GNN
// itself does not need this (it streams everything through the prefetch
// pipeline), but the module lets the repository measure REAL hit rates
// from its own sampler — which is what the PaGraph comparison's miss
// traffic is all about — and quantifies the skew assumption behind the
// baseline's analytic hit-rate model.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "graph/csr.hpp"
#include "sampling/minibatch.hpp"
#include "tensor/tensor.hpp"

namespace hyscale {

class StaticFeatureCache {
 public:
  /// Pins the features of the `capacity_rows` highest-degree vertices.
  StaticFeatureCache(const CsrGraph& graph, const Tensor& features,
                     std::int64_t capacity_rows);

  struct LoadStats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    double device_bytes = 0.0;  ///< served from the cache
    double host_bytes = 0.0;    ///< fetched from host (the PCIe traffic)

    double hit_rate() const {
      const std::int64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  /// Gathers X' for the batch's input vertices (numerically identical to
  /// FeatureLoader::load) while attributing each row to cache or host.
  /// Safe for concurrent callers (serving workers share one cache); each
  /// caller must pass its own `out`.
  LoadStats load(const MiniBatch& batch, Tensor& out);

  bool cached(VertexId v) const { return cached_[static_cast<std::size_t>(v)]; }
  std::int64_t capacity() const { return capacity_; }

  /// Cumulative statistics across all load() calls (consistent snapshot).
  LoadStats totals() const {
    std::lock_guard<std::mutex> lock(totals_mutex_);
    return totals_;
  }

 private:
  const Tensor& features_;
  std::vector<bool> cached_;  ///< immutable after construction
  std::int64_t capacity_ = 0;
  mutable std::mutex totals_mutex_;
  LoadStats totals_;
};

}  // namespace hyscale
