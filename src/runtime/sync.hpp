// Synchronizer: gradient all-reduce across trainer replicas (§III-A).
//
// Gathers the gradients from every trainer's model replica, forms the
// *batch-size-weighted* average, and broadcasts it back.  With equal
// batch sizes this is the plain average of synchronous SGD; the weights
// make hybrid training with DRM-skewed batch sizes algorithmically
// identical to single-device training on the concatenated batch (the
// §II-B equivalence the paper relies on) — each trainer's loss is a mean
// over its own seeds, so the global mean re-weights by seed count.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/model.hpp"

namespace hyscale {

class Synchronizer {
 public:
  /// Weighted all-reduce: every replica's .grad is replaced by
  /// sum_i(w_i * grad_i) / sum_i(w_i).  Weights are typically the batch
  /// sizes.  Replicas with weight 0 contribute nothing but still receive
  /// the averaged gradients.
  static void allreduce(std::vector<GnnModel*>& replicas,
                        const std::vector<std::int64_t>& weights);

  /// Convenience: uniform weights.
  static void allreduce(std::vector<GnnModel*>& replicas);
};

}  // namespace hyscale
