// Chrome-trace export of the pipeline execution.
//
// Converts an EpochReport's iteration trajectory into the Trace Event
// Format (chrome://tracing, Perfetto): one timeline row per pipeline
// stage, with the two-stage prefetch overlap visible exactly as in
// Fig. 7 of the paper.  The timestamps are the *simulated* platform
// times, so the trace shows what the paper's testbed would record.
#pragma once

#include <string>

#include "runtime/hybrid_trainer.hpp"

namespace hyscale {

/// Serialises the report's trajectory to Trace Event JSON.
/// `pipeline_depth` stages are laid out in steady-state overlap: stage k
/// of iteration i starts when stage k of iteration i-1 finished.
std::string to_chrome_trace(const EpochReport& report, PipelineMode mode);

/// Writes the trace to a file; throws std::runtime_error on I/O failure.
void write_chrome_trace(const EpochReport& report, PipelineMode mode,
                        const std::string& path);

}  // namespace hyscale
