#include "runtime/workload.hpp"

#include "common/strutil.hpp"

namespace hyscale {

std::string ThreadAllocation::to_string() const {
  return "threads{sampler=" + std::to_string(sampler) + ", loader=" + std::to_string(loader) +
         ", trainer=" + std::to_string(trainer) + "/" + std::to_string(total) + "}";
}

std::string WorkloadAssignment::to_string() const {
  return "workload{cpu_batch=" + std::to_string(cpu_batch) +
         ", accel_batch=" + std::to_string(accel_batch) + "x" +
         std::to_string(num_accelerators) +
         ", accel_sample=" + format_double(accel_sample_fraction, 2) + ", " +
         threads.to_string() + "}";
}

}  // namespace hyscale
