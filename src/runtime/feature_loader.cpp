#include "runtime/feature_loader.hpp"

#include "tensor/ops.hpp"

namespace hyscale {

FeatureLoader::FeatureLoader(const Tensor& features) : features_(features) {}

void FeatureLoader::load(const MiniBatch& batch, Tensor& out) {
  const auto& nodes = batch.input_nodes();
  gather_rows(features_, std::span<const std::int64_t>(nodes.data(), nodes.size()), out);
  last_bytes_ = static_cast<double>(out.size()) * 4.0;
  total_bytes_ += last_bytes_;
}

}  // namespace hyscale
