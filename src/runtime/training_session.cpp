#include "runtime/training_session.hpp"

#include <stdexcept>

#include "common/log.hpp"
#include "nn/checkpoint.hpp"

namespace hyscale {

TrainingSession::TrainingSession(HybridTrainer& trainer, SessionConfig config)
    : trainer_(trainer), config_(std::move(config)) {
  if (config_.max_epochs <= 0)
    throw std::invalid_argument("TrainingSession: max_epochs must be positive");
  if (config_.patience < 0)
    throw std::invalid_argument("TrainingSession: patience must be >= 0");
}

SessionResult TrainingSession::run() {
  SessionResult result;
  int stale_epochs = 0;
  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    result.reports.push_back(trainer_.train_epoch());
    ++result.epochs_run;

    const double acc = trainer_.evaluate_accuracy(config_.eval_seeds);
    log_message(LogLevel::kInfo, "session", "epoch ", epoch, " accuracy ", acc);
    if (acc > result.best_accuracy + config_.min_delta) {
      result.best_accuracy = acc;
      result.best_epoch = epoch;
      stale_epochs = 0;
      if (!config_.checkpoint_path.empty()) {
        save_checkpoint(trainer_.model(), config_.checkpoint_path);
      }
    } else {
      ++stale_epochs;
      if (config_.patience > 0 && stale_epochs >= config_.patience) {
        result.early_stopped = true;
        break;
      }
    }
  }
  if (!config_.csv_path.empty()) {
    write_csv(result.reports, config_.csv_path);
  }
  return result;
}

}  // namespace hyscale
