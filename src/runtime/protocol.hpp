// Processor-Accelerator Training Protocol — the handshake of §III-C /
// Listing 1, implemented with the same primitives the paper uses
// (mutex + condition variable + a DONE counter).
//
// Per iteration:
//   1. every Trainer finishes propagation, deposits gradients, increments
//      DONE and signals the Synchronizer;
//   2. the Synchronizer waits until DONE == n, runs the all-reduce;
//   3. the Synchronizer broadcasts ACK; every Trainer applies the
//      averaged gradients, acknowledges, and the Runtime proceeds to the
//      next iteration once all ACKs are in.
// The object is reusable across iterations (reset happens on the
// iteration-boundary transition), which is exactly the barrier-generation
// pattern Pthreads programs use.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace hyscale {

class TrainingProtocol {
 public:
  explicit TrainingProtocol(int num_trainers);

  /// Trainer side, step 1: gradients are ready.
  void trainer_done();

  /// Synchronizer side, step 2: blocks until all trainers are DONE.
  void wait_all_done();

  /// Synchronizer side, step 3: releases the trainers.  Returns the
  /// generation (iteration index) being retired — pass it to
  /// wait_iteration_complete so completion cannot be missed even if all
  /// trainers consume the ACK before the caller blocks.
  std::int64_t broadcast_ack();

  /// Trainer side: blocks until the Synchronizer's ACK for the current
  /// iteration.
  void wait_ack();

  /// Runtime side: blocks until the handshake for `generation` has fully
  /// retired (every trainer consumed the ACK).  Returns immediately when
  /// that already happened.
  void wait_iteration_complete(std::int64_t generation);

  int num_trainers() const { return num_trainers_; }
  std::int64_t iteration() const;

 private:
  const int num_trainers_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int done_ = 0;
  int acked_ = 0;
  bool ack_broadcast_ = false;
  std::int64_t generation_ = 0;  ///< iteration counter / ABA guard
};

}  // namespace hyscale
