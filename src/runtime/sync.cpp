#include "runtime/sync.hpp"

#include <stdexcept>

namespace hyscale {

void Synchronizer::allreduce(std::vector<GnnModel*>& replicas,
                             const std::vector<std::int64_t>& weights) {
  if (replicas.empty()) return;
  if (weights.size() != replicas.size())
    throw std::invalid_argument("Synchronizer: weight count mismatch");
  double total_weight = 0.0;
  for (std::int64_t w : weights) {
    if (w < 0) throw std::invalid_argument("Synchronizer: negative weight");
    total_weight += static_cast<double>(w);
  }
  if (total_weight == 0.0) return;

  auto first_params = replicas.front()->parameters();
  const std::size_t num_params = first_params.size();

  // Gather + average into the first replica's grad buffers, then
  // broadcast.  (The paper's Synchronizer runs on a CPU and does exactly
  // this gather/average/scatter over PCIe; Eq. 13 charges the traffic.)
  for (std::size_t p = 0; p < num_params; ++p) {
    Tensor& accum = first_params[p]->grad;
    const std::int64_t n = accum.size();
    const double w0 = static_cast<double>(weights[0]) / total_weight;
    float* acc = accum.data();
    for (std::int64_t j = 0; j < n; ++j) acc[j] = static_cast<float>(acc[j] * w0);

    for (std::size_t r = 1; r < replicas.size(); ++r) {
      auto params = replicas[r]->parameters();
      if (params.size() != num_params)
        throw std::invalid_argument("Synchronizer: replica layer mismatch");
      const Tensor& grad = params[p]->grad;
      if (grad.size() != n) throw std::invalid_argument("Synchronizer: grad shape mismatch");
      const double wr = static_cast<double>(weights[r]) / total_weight;
      const float* g = grad.data();
      for (std::int64_t j = 0; j < n; ++j) acc[j] += static_cast<float>(wr * g[j]);
    }
    // Broadcast.
    for (std::size_t r = 1; r < replicas.size(); ++r) {
      auto params = replicas[r]->parameters();
      float* dst = params[p]->grad.data();
      for (std::int64_t j = 0; j < n; ++j) dst[j] = acc[j];
    }
  }
}

void Synchronizer::allreduce(std::vector<GnnModel*>& replicas) {
  allreduce(replicas, std::vector<std::int64_t>(replicas.size(), 1));
}

}  // namespace hyscale
