// Feature Loader (§III-A): extracts the mini-batch feature matrix X'
// from the host-resident feature matrix X.
//
// Runs only on the CPU because X for large-scale graphs lives in host
// memory (§III-B stage 2).  The gather is threaded; `bytes_loaded`
// accounting feeds the Eq. 7 stage-time bookkeeping.
#pragma once

#include <cstdint>
#include <span>

#include "common/thread_pool.hpp"
#include "sampling/minibatch.hpp"
#include "tensor/tensor.hpp"

namespace hyscale {

class FeatureLoader {
 public:
  explicit FeatureLoader(const Tensor& features);

  /// Gathers X' for the batch's input vertices.  Thread-parallel over
  /// rows via the global pool.
  void load(const MiniBatch& batch, Tensor& out);

  /// Bytes the most recent load() moved (|V^0| * f0 * 4).
  double last_bytes() const { return last_bytes_; }
  /// Cumulative bytes across all load() calls.
  double total_bytes() const { return total_bytes_; }

 private:
  const Tensor& features_;
  double last_bytes_ = 0.0;
  double total_bytes_ = 0.0;
};

}  // namespace hyscale
