#include "runtime/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sampling/neighbor_sampler.hpp"

namespace hyscale {

double model_param_bytes(const ModelConfig& model) {
  double params = 0.0;
  for (int l = 1; l <= model.num_layers(); ++l) {
    const double f_in = model.dims[static_cast<std::size_t>(l - 1)];
    const double f_out = model.dims[static_cast<std::size_t>(l)];
    const double f_agg = model.kind == GnnKind::kSage ? 2.0 * f_in : f_in;
    params += f_agg * f_out + f_out;  // W + b
    if (model.kind == GnnKind::kGat) params += 2.0 * f_out;  // a_l, a_r
  }
  return params * 4.0;
}

PerformanceModel::PerformanceModel(PlatformSpec platform, ModelConfig model, DatasetInfo dataset,
                                   std::vector<int> fanouts)
    : platform_(std::move(platform)),
      model_(std::move(model)),
      dataset_(std::move(dataset)),
      fanouts_(std::move(fanouts)),
      sampler_(),
      pcie_(platform_.pcie_bw_gbps),
      host_memory_(platform_.cpu_mem_bw_gbps) {
  if (fanouts_.empty()) throw std::invalid_argument("PerformanceModel: fanouts empty");
  if (static_cast<int>(fanouts_.size()) != model_.num_layers())
    throw std::invalid_argument("PerformanceModel: fanouts/model layer mismatch");
  cpu_trainer_ = std::make_unique<CpuTrainerModel>(platform_, platform_.cpu_threads / 2);
  if (platform_.num_accelerators() > 0) {
    accel_trainer_ = make_trainer_model(platform_, platform_.accelerators.front());
  }
}

void PerformanceModel::set_transfer_bytes_per_element(double bytes) {
  if (bytes <= 0.0 || bytes > 4.0)
    throw std::invalid_argument("set_transfer_bytes_per_element: bytes must be in (0, 4]");
  transfer_bytes_per_element_ = bytes;
}

BatchStats PerformanceModel::expected_stats(std::int64_t batch_size) const {
  return NeighborSampler::expected_stats(batch_size, fanouts_, dataset_.mean_degree(),
                                         dataset_.num_vertices);
}

namespace {

double feature_bytes(const BatchStats& stats, int f0) {
  return static_cast<double>(stats.input_vertices()) * f0 * 4.0;
}

double topology_bytes(const BatchStats& stats) {
  // Each sampled edge is a (src, dst) pair of 32-bit local indices plus
  // per-layer index pointers (small; folded into the 8 B/edge figure).
  return static_cast<double>(stats.total_edges()) * 8.0;
}

}  // namespace

StageTimes PerformanceModel::stage_times(const WorkloadAssignment& workload,
                                         const BatchStats& cpu_stats,
                                         const std::vector<BatchStats>& accel_stats) const {
  StageTimes t;

  // ---- Sampling (T_SC / T_SA): measured-rate model (§V: "we estimate
  // T_samp by running the sampling algorithm...").
  std::int64_t total_edges = cpu_stats.total_edges();
  for (const auto& s : accel_stats) total_edges += s.total_edges();
  const double accel_fraction =
      workload.num_accelerators > 0 ? workload.accel_sample_fraction : 0.0;
  const auto accel_edges = static_cast<std::int64_t>(accel_fraction * total_edges);
  const std::int64_t cpu_edges = total_edges - accel_edges;
  t.sample_cpu = cpu_edges > 0
                     ? sampler_.cpu_sample_time(cpu_edges, workload.threads.sampler)
                     : 0.0;
  if (accel_edges > 0 && workload.num_accelerators > 0) {
    t.sample_accel = sampler_.accel_sample_time(accel_edges / workload.num_accelerators,
                                                platform_.accelerators.front());
  }

  // ---- Feature Loading (Eq. 7): ALL trainers' X' are gathered from the
  // host feature matrix by the CPU-resident loader.
  double load_bytes = workload.cpu_batch > 0 ? feature_bytes(cpu_stats, dataset_.f0) : 0.0;
  for (const auto& s : accel_stats) load_bytes += feature_bytes(s, dataset_.f0);
  t.load = host_memory_.load_time(load_bytes, workload.threads.loader);

  // ---- Data Transfer (Eq. 8): each accelerator receives its own batch
  // over its own PCIe link; the slowest (max) gates the stage.  Feature
  // elements may be quantized down to 2 or 1 wire bytes (§VIII).
  Seconds worst_transfer = 0.0;
  for (const auto& s : accel_stats) {
    const double wire_feature_bytes =
        static_cast<double>(s.input_vertices()) * dataset_.f0 * transfer_bytes_per_element_;
    worst_transfer =
        std::max(worst_transfer, pcie_.transfer_time(wire_feature_bytes + topology_bytes(s)));
  }
  t.transfer = worst_transfer;

  // ---- GNN Propagation (Eqs. 9-12).
  cpu_trainer_->set_threads(workload.threads.trainer);
  t.train_cpu = workload.cpu_batch > 0 ? cpu_trainer_->propagation_time(cpu_stats, model_) : 0.0;
  Seconds worst_train = 0.0;
  for (const auto& s : accel_stats) {
    worst_train = std::max(worst_train, accel_trainer_->propagation_time(s, model_));
  }
  t.train_accel = worst_train;

  // ---- Synchronisation (Eq. 13).
  const int num_trainers = (workload.cpu_batch > 0 ? 1 : 0) + workload.num_accelerators;
  t.sync = num_trainers > 1 ? pcie_.allreduce_time(model_param_bytes(model_)) : 0.0;
  return t;
}

StageTimes PerformanceModel::stage_times(const WorkloadAssignment& workload) const {
  const BatchStats cpu_stats =
      workload.cpu_batch > 0 ? expected_stats(workload.cpu_batch) : BatchStats{};
  std::vector<BatchStats> accel_stats;
  if (workload.num_accelerators > 0 && workload.accel_batch > 0) {
    accel_stats.assign(static_cast<std::size_t>(workload.num_accelerators),
                       expected_stats(workload.accel_batch));
  }
  return stage_times(workload, cpu_stats, accel_stats);
}

Seconds PerformanceModel::predict_iteration(const WorkloadAssignment& workload,
                                            PipelineMode mode) const {
  return iteration_time(stage_times(workload), mode);
}

long PerformanceModel::iterations_per_epoch(const WorkloadAssignment& workload) const {
  const std::int64_t total = workload.total_batch();
  if (total <= 0) throw std::invalid_argument("iterations_per_epoch: empty workload");
  return static_cast<long>((dataset_.train_count + static_cast<std::uint64_t>(total) - 1) /
                           static_cast<std::uint64_t>(total));
}

Seconds PerformanceModel::predict_epoch(const WorkloadAssignment& workload,
                                        PipelineMode mode) const {
  return epoch_time(stage_times(workload), mode, iterations_per_epoch(workload));
}

double PerformanceModel::throughput_mteps(const WorkloadAssignment& workload,
                                          PipelineMode mode) const {
  // Eq. 5: edges traversed by all trainers in one iteration over the
  // iteration time.
  double edges = 0.0;
  if (workload.cpu_batch > 0)
    edges += static_cast<double>(expected_stats(workload.cpu_batch).total_edges());
  if (workload.num_accelerators > 0 && workload.accel_batch > 0)
    edges += static_cast<double>(expected_stats(workload.accel_batch).total_edges()) *
             workload.num_accelerators;
  const Seconds iter = predict_iteration(workload, mode);
  return iter > 0.0 ? edges / iter / 1e6 : 0.0;
}

}  // namespace hyscale
